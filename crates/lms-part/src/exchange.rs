//! The halo-exchange schedule: the precomputed communication pattern of a
//! resident (distributed-memory-shaped) smoothing run.
//!
//! A part that keeps its block resident across sweeps no longer re-gathers
//! the whole mesh between iterations — it only needs the *current*
//! positions of its **halo** (ghost) vertices, each of which is owned — and
//! updated — by exactly one neighbouring part. The schedule materialises
//! that dependency once, from the ghost-vertex `local_of` maps of the
//! [`Partition`]: for every owned vertex that appears in some other part's
//! halo, the list of `(destination part, destination local index)` slots
//! its new coordinate must be delivered to.
//!
//! The schedule is the *superset* of what any one exchange round moves: at
//! run time the engine routes only the entries of vertices that **actually
//! moved** in the round (smart smoothing rejects many candidates, and a
//! color step only touches one color class), so per-round traffic is a
//! moved-restricted slice of this static pattern — the shared-memory form
//! of an MPI neighbour-alltoallv send list, and the piece a future
//! multi-process backend would serialise onto the wire.
//!
//! Local indices follow the [`Partition::local_of`] convention: a part's
//! owned vertices first (ascending global id), then its halo (ascending),
//! so destination indices point straight into a resident block's
//! `owned+halo` coordinate buffer.

use crate::partition::Partition;

/// Per-part-pair halo-exchange schedule built from a [`Partition`]'s ghost
/// maps. See the module docs for the contract.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ExchangeSchedule {
    /// Per sender part: CSR offsets over the sender's owned locals
    /// (`offsets[p][i]..offsets[p][i+1]` indexes `targets[p]`).
    offsets: Vec<Vec<u32>>,
    /// Per sender part: `(destination part, destination local index)`
    /// entries, grouped by source local ascending, destinations ascending
    /// within a source.
    targets: Vec<Vec<(u32, u32)>>,
    total_entries: usize,
}

impl ExchangeSchedule {
    /// Build the schedule for `partition`. Every halo slot of every part
    /// receives exactly one entry, so the schedule covers exactly the
    /// halo = out-of-part 1-ring closure of the interfaces
    /// (property-tested in `tests/props.rs`).
    pub fn build(partition: &Partition) -> Self {
        let k = partition.num_parts() as usize;
        // collect (src_local, dst_part, dst_local) per sender by walking
        // every receiver's halo list (ascending, so entries arrive sorted
        // by destination within a sender)
        let mut raw: Vec<Vec<(u32, u32, u32)>> = vec![Vec::new(); k];
        for q in 0..partition.num_parts() {
            let owned_len = partition.part(q).len();
            for (h, &u) in partition.halo(q).iter().enumerate() {
                let src = partition.part_of(u);
                // the canonical ghost-map lookup: for an owned vertex this
                // is its owned-local index
                let src_local =
                    partition.local_of(src, u).expect("halo vertex must be owned by its part");
                raw[src as usize].push((src_local as u32, q, (owned_len + h) as u32));
            }
        }

        let mut offsets = Vec::with_capacity(k);
        let mut targets = Vec::with_capacity(k);
        let mut total_entries = 0usize;
        for (p, mut entries) in raw.into_iter().enumerate() {
            entries.sort_unstable();
            total_entries += entries.len();
            let owned_len = partition.part(p as u32).len();
            let mut offs = Vec::with_capacity(owned_len + 1);
            offs.push(0u32);
            let mut tgts = Vec::with_capacity(entries.len());
            let mut cursor = 0usize;
            for i in 0..owned_len as u32 {
                while cursor < entries.len() && entries[cursor].0 == i {
                    tgts.push((entries[cursor].1, entries[cursor].2));
                    cursor += 1;
                }
                offs.push(tgts.len() as u32);
            }
            debug_assert_eq!(cursor, entries.len());
            offsets.push(offs);
            targets.push(tgts);
        }
        ExchangeSchedule { offsets, targets, total_entries }
    }

    /// Number of parts the schedule was built for.
    #[inline]
    pub fn num_parts(&self) -> usize {
        self.offsets.len()
    }

    /// Delivery slots of part `p`'s owned local `src_local`:
    /// `(destination part, destination local index)`, destinations
    /// ascending. Empty for vertices no other part ghosts (all interiors,
    /// and interface vertices of parts with no geometric neighbour —
    /// impossible by construction, but harmless).
    #[inline]
    pub fn outgoing(&self, p: u32, src_local: u32) -> &[(u32, u32)] {
        let offs = &self.offsets[p as usize];
        &self.targets[p as usize]
            [offs[src_local as usize] as usize..offs[src_local as usize + 1] as usize]
    }

    /// Whether part `p`'s owned local `src_local` is ghosted anywhere.
    #[inline]
    pub fn has_outgoing(&self, p: u32, src_local: u32) -> bool {
        let offs = &self.offsets[p as usize];
        offs[src_local as usize] != offs[src_local as usize + 1]
    }

    /// Total `(vertex, receiver)` delivery slots — one per halo entry of
    /// the partition.
    #[inline]
    pub fn num_entries(&self) -> usize {
        self.total_entries
    }
}

/// The rank-addressed view of an [`ExchangeSchedule`]: for every sender
/// part, the destination parts it actually delivers to (ascending, pairs
/// with zero deliveries dropped) and the delivery-slot count of each
/// (src → dst) pair.
///
/// This is the *message* pattern of a distributed run, where the
/// schedule is the *entry* pattern: a transport coalesces all moved
/// deltas of one pair within a color step into a single frame, so the
/// plan bounds per-round message counts (`Σ_p neighbors(p).len()`) and
/// sizes (`pair_entry_counts`) — the in-process engine batches its
/// outboxes along the same plan, which keeps the
/// `ExchangeVolume` message/byte accounting identical across transports.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MessagePlan {
    /// CSR offsets over parts into `nbrs` / `pair_entries`.
    nbr_offsets: Vec<u32>,
    /// Destination parts per sender, ascending, non-empty pairs only.
    nbrs: Vec<u32>,
    /// Delivery-slot count per (sender, destination) pair, aligned with
    /// `nbrs` — the static upper bound of one coalesced frame.
    pair_entries: Vec<u32>,
}

impl MessagePlan {
    /// Extract the rank-addressed pair structure of `schedule`.
    pub fn build(schedule: &ExchangeSchedule) -> Self {
        let k = schedule.num_parts();
        let mut nbr_offsets = Vec::with_capacity(k + 1);
        nbr_offsets.push(0u32);
        let mut nbrs = Vec::new();
        let mut pair_entries = Vec::new();
        let mut counts = vec![0u32; k];
        for p in 0..k {
            for &(q, _) in &schedule.targets[p] {
                counts[q as usize] += 1;
            }
            for (q, count) in counts.iter_mut().enumerate() {
                if *count > 0 {
                    nbrs.push(q as u32);
                    pair_entries.push(*count);
                    *count = 0;
                }
            }
            nbr_offsets.push(nbrs.len() as u32);
        }
        MessagePlan { nbr_offsets, nbrs, pair_entries }
    }

    /// Number of parts the plan was built for.
    #[inline]
    pub fn num_parts(&self) -> usize {
        self.nbr_offsets.len() - 1
    }

    /// Destination parts sender `p` delivers to, ascending.
    #[inline]
    pub fn neighbors(&self, p: u32) -> &[u32] {
        &self.nbrs[self.nbr_offsets[p as usize] as usize..self.nbr_offsets[p as usize + 1] as usize]
    }

    /// Delivery-slot counts aligned with [`neighbors`](Self::neighbors):
    /// how many halo slots of that destination sender `p` owns — the
    /// maximum entries one coalesced frame of the pair can carry.
    #[inline]
    pub fn pair_entry_counts(&self, p: u32) -> &[u32] {
        &self.pair_entries
            [self.nbr_offsets[p as usize] as usize..self.nbr_offsets[p as usize + 1] as usize]
    }

    /// Total directed (sender, destination) pairs with at least one
    /// delivery slot — the per-round message-count ceiling.
    #[inline]
    pub fn num_pairs(&self) -> usize {
        self.nbrs.len()
    }

    /// Total delivery slots across all pairs — equals
    /// [`ExchangeSchedule::num_entries`].
    #[inline]
    pub fn num_entries(&self) -> usize {
        self.pair_entries.iter().map(|&c| c as usize).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::methods::{partition_mesh, PartitionMethod};
    use lms_mesh::{generators, Adjacency};

    fn setup(k: usize, method: PartitionMethod) -> (Partition, ExchangeSchedule) {
        let m = generators::perturbed_grid(15, 13, 0.3, 8);
        let adj = Adjacency::build(&m);
        let p = partition_mesh(&m, &adj, k, method);
        let s = ExchangeSchedule::build(&p);
        (p, s)
    }

    #[test]
    fn entries_equal_total_halo() {
        for k in [1usize, 2, 4, 7] {
            let (p, s) = setup(k, PartitionMethod::Rcb);
            assert_eq!(s.num_entries(), p.total_halo(), "k={k}");
            assert_eq!(s.num_parts(), k);
        }
    }

    #[test]
    fn every_halo_slot_receives_exactly_once() {
        let (p, s) = setup(5, PartitionMethod::Hilbert);
        // deliveries per (receiver, dst_local)
        let mut seen: Vec<Vec<u32>> =
            (0..p.num_parts()).map(|q| vec![0u32; p.part(q).len() + p.halo(q).len()]).collect();
        for src in 0..p.num_parts() {
            for (i, &v) in p.part(src).iter().enumerate() {
                for &(q, dst) in s.outgoing(src, i as u32) {
                    // the slot must resolve back to the same global vertex
                    assert_eq!(p.local_of(q, v), Some(dst as usize));
                    seen[q as usize][dst as usize] += 1;
                }
            }
        }
        for q in 0..p.num_parts() {
            let owned = p.part(q).len();
            for (slot, &count) in seen[q as usize].iter().enumerate() {
                let expected = if slot < owned { 0 } else { 1 };
                assert_eq!(count, expected, "part {q} slot {slot}");
            }
        }
    }

    #[test]
    fn only_interface_vertices_send() {
        let (p, s) = setup(4, PartitionMethod::Rcb);
        for src in 0..p.num_parts() {
            for (i, &v) in p.part(src).iter().enumerate() {
                if s.has_outgoing(src, i as u32) {
                    assert!(p.is_interface(v), "non-interface vertex {v} has outgoing entries");
                }
            }
        }
    }

    #[test]
    fn single_part_schedule_is_empty() {
        let (_, s) = setup(1, PartitionMethod::Morton);
        assert_eq!(s.num_entries(), 0);
        assert_eq!(MessagePlan::build(&s).num_pairs(), 0);
    }

    #[test]
    fn message_plan_matches_schedule_pairs() {
        for (k, method) in
            [(2, PartitionMethod::Rcb), (5, PartitionMethod::Hilbert), (8, PartitionMethod::Morton)]
        {
            let (p, s) = setup(k, method);
            let plan = MessagePlan::build(&s);
            assert_eq!(plan.num_parts(), k);
            assert_eq!(plan.num_entries(), s.num_entries(), "k={k}");
            // oracle: recount every (src, dst) pair straight from the
            // per-vertex delivery lists
            for src in 0..p.num_parts() {
                let mut counts = vec![0u32; k];
                for i in 0..p.part(src).len() {
                    for &(q, _) in s.outgoing(src, i as u32) {
                        counts[q as usize] += 1;
                    }
                }
                let expect: Vec<(u32, u32)> = counts
                    .iter()
                    .enumerate()
                    .filter(|(_, &c)| c > 0)
                    .map(|(q, &c)| (q as u32, c))
                    .collect();
                let got: Vec<(u32, u32)> = plan
                    .neighbors(src)
                    .iter()
                    .copied()
                    .zip(plan.pair_entry_counts(src).iter().copied())
                    .collect();
                assert_eq!(got, expect, "part {src}");
                assert!(plan.neighbors(src).windows(2).all(|w| w[0] < w[1]));
                assert!(!plan.neighbors(src).contains(&src), "no self-sends");
            }
        }
    }
}
