//! The versioned binary wire format of the distributed resident-smoothing
//! backend — the serialisation of the halo-exchange protocol that
//! [`crate::ExchangeSchedule`] defines and `lms_smooth::resident` drives.
//!
//! One frame type per message of the protocol:
//!
//! | frame | direction | payload |
//! |---|---|---|
//! | [`Frame::Hello`] | coordinator → rank | magic, version, coordinate dimension, rank id, profiling flag |
//! | [`Frame::Gather`] | coordinator → rank | the rank's owned+halo coordinates and local element scores (the one full gather) |
//! | [`Frame::Interior`] | coordinator → rank | run the interior sweep phase of the current iteration |
//! | [`Frame::ColorStep`] | coordinator → rank | apply pending halo deltas, sweep one interface color class, emit moved deltas |
//! | [`Frame::HaloDelta`] | both | one coalesced (source part → destination part) batch of moved-vertex coordinates |
//! | [`Frame::RoundDone`] | rank → coordinator | end marker of a rank's delta output for one color step |
//! | [`Frame::FinishIteration`] | coordinator → rank | apply the last round's deltas, re-score, report |
//! | [`Frame::Report`] | rank → coordinator | the rank's per-iteration `Σ w_t·Δq_t` stat delta, plus its phase-timing deltas when profiling |
//! | [`Frame::ScatterRequest`] | coordinator → rank | send your owned coordinates back (the one full scatter) |
//! | [`Frame::Scatter`] | rank → coordinator | the rank's owned coordinates |
//! | [`Frame::ScatterDeltaRequest`] | coordinator → rank | send only the owned coordinates changed since your sparse baseline |
//! | [`Frame::ScatterDelta`] | rank → coordinator | changed owned-local slot ids and their coordinates |
//! | [`Frame::Shutdown`] | coordinator → rank | exit the worker loop |
//!
//! Encoding (wire v3): every frame is `[u32 LE payload length][u32 LE
//! CRC32c][u8 tag][fields…]`, integers little-endian, booleans one byte,
//! and **every `f64` as its exact IEEE-754 bit pattern**
//! ([`f64::to_bits`], little-endian) — NaN payloads, negative zero and
//! signalling bit patterns all round-trip bit-identically, which is what
//! keeps multi-process smoothing bit-identical to the in-process engines
//! (property-tested in `tests/props.rs`).
//!
//! The checksum is CRC32c (Castagnoli) over the length prefix **and** the
//! payload, so a torn, truncated, or silently corrupted frame — including
//! one whose length prefix itself was corrupted — is rejected at decode
//! with a typed [`WireError`] instead of desynchronising the stream or
//! feeding garbage coordinates into a smoothing run. This is the
//! detection half of the fail-stop + silent-error failure model the
//! distributed backend recovers from.
//!
//! Coordinates travel as flat component vectors (`dim` components per
//! point, declared once in the [`Frame::Hello`] handshake); a
//! [`Frame::HaloDelta`] carries the destination-local slot ids alongside,
//! so a receiver writes straight into its resident block buffer.

use lms_trace::RankPhaseNanos;
use std::io::{Read, Write};

/// Magic number opening every [`Frame::Hello`] (`b"LMSW"`, little-endian).
pub const WIRE_MAGIC: u32 = u32::from_le_bytes(*b"LMSW");

/// Current wire-format version. Bump on any frame-layout change; a
/// coordinator and a rank negotiate nothing — decoding a mismatched
/// [`Frame::Hello`] fails with [`WireError::Version`]. Version 2 added
/// the per-frame CRC32c checksum; version 3 added the profiling flag to
/// [`Frame::Hello`] and the per-phase timing deltas to [`Frame::Report`];
/// version 4 added the sparse checkpoint round
/// ([`Frame::ScatterDeltaRequest`] / [`Frame::ScatterDelta`]).
pub const WIRE_VERSION: u16 = 4;

/// Hard cap on one frame's payload (64 MiB): a corrupted length prefix
/// must not turn into an unbounded allocation.
pub const MAX_FRAME_LEN: usize = 64 << 20;

/// CRC32c (Castagnoli) lookup table, built at compile time — the build
/// container has no crates registry, so the checksum is implemented here
/// rather than pulled in as a dependency.
const fn crc32c_table() -> [u32; 256] {
    // reflected Castagnoli polynomial
    const POLY: u32 = 0x82f6_3b78;
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 { (crc >> 1) ^ POLY } else { crc >> 1 };
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
}

/// Slice-by-8 lookup tables: `CRC32C_TABLES[k][b]` advances byte `b`
/// through `k` additional zero bytes, letting the fold consume 8 input
/// bytes per step instead of 1 — frame payloads are multi-kilobyte
/// coordinate blocks, so the byte-at-a-time loop would tax every
/// gather/scatter/halo message measurably.
const fn crc32c_tables() -> [[u32; 256]; 8] {
    let base = crc32c_table();
    let mut tables = [[0u32; 256]; 8];
    tables[0] = base;
    let mut k = 1;
    while k < 8 {
        let mut b = 0;
        while b < 256 {
            let prev = tables[k - 1][b];
            tables[k][b] = base[(prev & 0xff) as usize] ^ (prev >> 8);
            b += 1;
        }
        k += 1;
    }
    tables
}

static CRC32C_TABLES: [[u32; 256]; 8] = crc32c_tables();

fn crc32c_fold(mut crc: u32, bytes: &[u8]) -> u32 {
    let t = &CRC32C_TABLES;
    let mut chunks = bytes.chunks_exact(8);
    for c in &mut chunks {
        let lo = u32::from_le_bytes([c[0], c[1], c[2], c[3]]) ^ crc;
        crc = t[7][(lo & 0xff) as usize]
            ^ t[6][((lo >> 8) & 0xff) as usize]
            ^ t[5][((lo >> 16) & 0xff) as usize]
            ^ t[4][(lo >> 24) as usize]
            ^ t[3][c[4] as usize]
            ^ t[2][c[5] as usize]
            ^ t[1][c[6] as usize]
            ^ t[0][c[7] as usize];
    }
    for &b in chunks.remainder() {
        crc = (crc >> 8) ^ t[0][((crc ^ b as u32) & 0xff) as usize];
    }
    crc
}

/// CRC32c (Castagnoli) of `bytes`, with the standard `!0` init and final
/// inversion (`crc32c(b"123456789") == 0xe306_9283`).
pub fn crc32c(bytes: &[u8]) -> u32 {
    !crc32c_fold(!0, bytes)
}

/// The checksum [`Frame::write_to`] stamps on a frame: CRC32c over the
/// little-endian length prefix followed by the payload. Covering the
/// prefix means a corrupted length byte fails the checksum (or the
/// [`MAX_FRAME_LEN`] cap) instead of silently re-framing the stream.
fn frame_crc(len: u32, payload: &[u8]) -> u32 {
    !crc32c_fold(crc32c_fold(!0, &len.to_le_bytes()), payload)
}

/// One message of the distributed resident-smoothing protocol. See the
/// module docs for the frame table and encoding rules.
#[derive(Debug, Clone, PartialEq)]
pub enum Frame {
    /// Connection handshake: wire magic + version, the coordinate
    /// dimension of every coordinate payload on this connection, the
    /// receiving rank's id, and whether the rank should self-time its
    /// sweep phases (wire v3; profiled ranks fill the timing fields of
    /// every [`Frame::Report`] they send).
    Hello { version: u16, dim: u8, rank: u32, profile: bool },
    /// The one full gather: the rank's owned+halo coordinates (flat,
    /// `dim` components per point, owned then halo in block-local order)
    /// and its local elements' `(quality, positively_oriented)` scores.
    Gather { coords: Vec<f64>, scores: Vec<(f64, bool)> },
    /// Run the interior sweep phase of the current iteration.
    Interior,
    /// Apply pending halo deltas, then sweep interface color class
    /// `color` and emit the moved deltas.
    ColorStep { color: u32 },
    /// One coalesced halo-delta batch for a (source → destination) part
    /// pair: destination-local slot ids and the matching coordinates
    /// (flat, `dim` components per slot). `part` names the destination
    /// when a rank emits the frame, the source when the coordinator
    /// forwards it.
    HaloDelta { part: u32, slots: Vec<u32>, coords: Vec<f64> },
    /// End marker of a rank's delta output for one color step.
    RoundDone,
    /// Apply the last round's deltas, run the end-of-iteration re-score,
    /// and send a [`Frame::Report`].
    FinishIteration,
    /// The rank's per-iteration quality-stat delta `Σ w_t·Δq_t`, plus
    /// (wire v3) its phase-timing **deltas** since the previous report —
    /// all-zero unless the rank was profiled via [`Frame::Hello`].
    /// Shipping deltas rather than running totals keeps coordinator-side
    /// accounting correct across rank respawns.
    Report { delta: f64, phases: RankPhaseNanos },
    /// Send your owned coordinates back.
    ScatterRequest,
    /// The one full scatter: the rank's owned coordinates (flat).
    Scatter { coords: Vec<f64> },
    /// Send back only the owned coordinates whose bits changed since the
    /// rank's sparse baseline — the state last shipped to the
    /// coordinator, i.e. the last [`Frame::Gather`] load or the last
    /// [`Frame::ScatterDelta`] reply, whichever came later. The overlap
    /// coordinator's per-iteration checkpoint round: between boundaries
    /// only the vertices a sweep actually moved differ, so the reply
    /// collapses from the whole owned block to the moved set.
    ScatterDeltaRequest,
    /// The sparse scatter: owned-local slot ids whose coordinates
    /// changed since the sparse baseline, and those coordinates (flat,
    /// `dim` components per slot).
    ScatterDelta { slots: Vec<u32>, coords: Vec<f64> },
    /// Exit the worker loop.
    Shutdown,
}

/// Decode failure: the stream does not hold a well-formed frame.
#[derive(Debug)]
pub enum WireError {
    /// Underlying stream error (includes EOF mid-frame).
    Io(std::io::Error),
    /// Unknown frame tag.
    BadTag(u8),
    /// Payload shorter or longer than its fields demand.
    BadLength,
    /// Length prefix exceeds [`MAX_FRAME_LEN`].
    TooLarge(usize),
    /// The frame's CRC32c does not match its contents: the frame was
    /// torn, truncated, or silently corrupted in transit.
    BadChecksum { expected: u32, got: u32 },
    /// A [`Frame::Hello`] declared a wire version other than
    /// [`WIRE_VERSION`] (e.g. a checksum-less v1 peer).
    Version { got: u16 },
}

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WireError::Io(e) => write!(f, "wire i/o error: {e}"),
            WireError::BadTag(t) => write!(f, "unknown frame tag {t}"),
            WireError::BadLength => write!(f, "frame payload length mismatch"),
            WireError::TooLarge(n) => write!(f, "frame length {n} exceeds {MAX_FRAME_LEN}"),
            WireError::BadChecksum { expected, got } => write!(
                f,
                "frame checksum mismatch (stamped {expected:#010x}, computed {got:#010x}): \
                 frame torn or corrupted in transit"
            ),
            WireError::Version { got } => {
                write!(f, "peer speaks wire version {got}, this build requires {WIRE_VERSION}")
            }
        }
    }
}

impl std::error::Error for WireError {}

impl From<std::io::Error> for WireError {
    fn from(e: std::io::Error) -> Self {
        WireError::Io(e)
    }
}

const TAG_HELLO: u8 = 0;
const TAG_GATHER: u8 = 1;
const TAG_INTERIOR: u8 = 2;
const TAG_COLOR_STEP: u8 = 3;
const TAG_HALO_DELTA: u8 = 4;
const TAG_ROUND_DONE: u8 = 5;
const TAG_FINISH_ITERATION: u8 = 6;
const TAG_REPORT: u8 = 7;
const TAG_SCATTER_REQUEST: u8 = 8;
const TAG_SCATTER: u8 = 9;
const TAG_SHUTDOWN: u8 = 10;
const TAG_SCATTER_DELTA_REQUEST: u8 = 11;
const TAG_SCATTER_DELTA: u8 = 12;

fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_f64(out: &mut Vec<u8>, v: f64) {
    out.extend_from_slice(&v.to_bits().to_le_bytes());
}

fn put_f64s(out: &mut Vec<u8>, vs: &[f64]) {
    put_u32(out, vs.len() as u32);
    for &v in vs {
        put_f64(out, v);
    }
}

/// Cursor-style reader over a decoded payload.
struct Payload<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Payload<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8], WireError> {
        let end = self.pos.checked_add(n).ok_or(WireError::BadLength)?;
        if end > self.buf.len() {
            return Err(WireError::BadLength);
        }
        let s = &self.buf[self.pos..end];
        self.pos = end;
        Ok(s)
    }

    fn u8(&mut self) -> Result<u8, WireError> {
        Ok(self.take(1)?[0])
    }

    fn u16(&mut self) -> Result<u16, WireError> {
        Ok(u16::from_le_bytes(self.take(2)?.try_into().unwrap()))
    }

    fn u32(&mut self) -> Result<u32, WireError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    fn u64(&mut self) -> Result<u64, WireError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    fn f64(&mut self) -> Result<f64, WireError> {
        Ok(f64::from_bits(u64::from_le_bytes(self.take(8)?.try_into().unwrap())))
    }

    fn u32s(&mut self) -> Result<Vec<u32>, WireError> {
        let n = self.u32()? as usize;
        let raw = self.take(n.checked_mul(4).ok_or(WireError::BadLength)?)?;
        Ok(raw.chunks_exact(4).map(|c| u32::from_le_bytes(c.try_into().unwrap())).collect())
    }

    fn f64s(&mut self) -> Result<Vec<f64>, WireError> {
        let n = self.u32()? as usize;
        let raw = self.take(n.checked_mul(8).ok_or(WireError::BadLength)?)?;
        Ok(raw
            .chunks_exact(8)
            .map(|c| f64::from_bits(u64::from_le_bytes(c.try_into().unwrap())))
            .collect())
    }

    fn done(&self) -> Result<(), WireError> {
        if self.pos == self.buf.len() {
            Ok(())
        } else {
            Err(WireError::BadLength)
        }
    }
}

impl Frame {
    /// Encode the frame's payload (tag + fields, no length prefix).
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(16);
        match self {
            Frame::Hello { version, dim, rank, profile } => {
                out.push(TAG_HELLO);
                put_u32(&mut out, WIRE_MAGIC);
                out.extend_from_slice(&version.to_le_bytes());
                out.push(*dim);
                put_u32(&mut out, *rank);
                out.push(*profile as u8);
            }
            Frame::Gather { coords, scores } => {
                out.push(TAG_GATHER);
                put_f64s(&mut out, coords);
                put_u32(&mut out, scores.len() as u32);
                for &(q, pos) in scores {
                    put_f64(&mut out, q);
                    out.push(pos as u8);
                }
            }
            Frame::Interior => out.push(TAG_INTERIOR),
            Frame::ColorStep { color } => {
                out.push(TAG_COLOR_STEP);
                put_u32(&mut out, *color);
            }
            Frame::HaloDelta { part, slots, coords } => {
                out.push(TAG_HALO_DELTA);
                put_u32(&mut out, *part);
                put_u32(&mut out, slots.len() as u32);
                for &s in slots {
                    put_u32(&mut out, s);
                }
                put_f64s(&mut out, coords);
            }
            Frame::RoundDone => out.push(TAG_ROUND_DONE),
            Frame::FinishIteration => out.push(TAG_FINISH_ITERATION),
            Frame::Report { delta, phases } => {
                out.push(TAG_REPORT);
                put_f64(&mut out, *delta);
                put_u64(&mut out, phases.interior_ns);
                put_u64(&mut out, phases.color_ns);
                put_u64(&mut out, phases.finish_ns);
                put_u64(&mut out, phases.moved);
            }
            Frame::ScatterRequest => out.push(TAG_SCATTER_REQUEST),
            Frame::Scatter { coords } => {
                out.push(TAG_SCATTER);
                put_f64s(&mut out, coords);
            }
            Frame::ScatterDeltaRequest => out.push(TAG_SCATTER_DELTA_REQUEST),
            Frame::ScatterDelta { slots, coords } => {
                out.push(TAG_SCATTER_DELTA);
                put_u32(&mut out, slots.len() as u32);
                for &s in slots {
                    put_u32(&mut out, s);
                }
                put_f64s(&mut out, coords);
            }
            Frame::Shutdown => out.push(TAG_SHUTDOWN),
        }
        out
    }

    /// Decode one payload produced by [`encode`](Self::encode). A
    /// [`Frame::Hello`] with the wrong magic decodes to
    /// [`WireError::BadLength`]-class failure ([`WireError::BadTag`] is
    /// reserved for unknown tags).
    pub fn decode(payload: &[u8]) -> Result<Frame, WireError> {
        let mut p = Payload { buf: payload, pos: 0 };
        let frame = match p.u8()? {
            TAG_HELLO => {
                let magic = p.u32()?;
                if magic != WIRE_MAGIC {
                    return Err(WireError::BadLength);
                }
                let version = p.u16()?;
                if version != WIRE_VERSION {
                    return Err(WireError::Version { got: version });
                }
                let dim = p.u8()?;
                let rank = p.u32()?;
                let profile = match p.u8()? {
                    0 => false,
                    1 => true,
                    _ => return Err(WireError::BadLength),
                };
                Frame::Hello { version, dim, rank, profile }
            }
            TAG_GATHER => {
                let coords = p.f64s()?;
                let n = p.u32()? as usize;
                let mut scores = Vec::with_capacity(n.min(MAX_FRAME_LEN / 9));
                for _ in 0..n {
                    let q = p.f64()?;
                    let pos = match p.u8()? {
                        0 => false,
                        1 => true,
                        _ => return Err(WireError::BadLength),
                    };
                    scores.push((q, pos));
                }
                Frame::Gather { coords, scores }
            }
            TAG_INTERIOR => Frame::Interior,
            TAG_COLOR_STEP => Frame::ColorStep { color: p.u32()? },
            TAG_HALO_DELTA => {
                let part = p.u32()?;
                let slots = p.u32s()?;
                let coords = p.f64s()?;
                Frame::HaloDelta { part, slots, coords }
            }
            TAG_ROUND_DONE => Frame::RoundDone,
            TAG_FINISH_ITERATION => Frame::FinishIteration,
            TAG_REPORT => {
                let delta = p.f64()?;
                let phases = RankPhaseNanos {
                    interior_ns: p.u64()?,
                    color_ns: p.u64()?,
                    finish_ns: p.u64()?,
                    moved: p.u64()?,
                };
                Frame::Report { delta, phases }
            }
            TAG_SCATTER_REQUEST => Frame::ScatterRequest,
            TAG_SCATTER => Frame::Scatter { coords: p.f64s()? },
            TAG_SCATTER_DELTA_REQUEST => Frame::ScatterDeltaRequest,
            TAG_SCATTER_DELTA => {
                let slots = p.u32s()?;
                let coords = p.f64s()?;
                Frame::ScatterDelta { slots, coords }
            }
            TAG_SHUTDOWN => Frame::Shutdown,
            t => return Err(WireError::BadTag(t)),
        };
        p.done()?;
        Ok(frame)
    }

    /// Write the frame to a stream: `u32` LE payload length, `u32` LE
    /// CRC32c (over length prefix + payload), then the payload. Enforces
    /// [`MAX_FRAME_LEN`] on the send side too, so an oversized
    /// gather/scatter (≈ 38 bytes per 2D vertex of one rank's block)
    /// fails with a diagnosable error instead of the receiver rejecting
    /// it and the sender dying on a broken pipe.
    pub fn write_to<W: Write>(&self, w: &mut W) -> std::io::Result<()> {
        let payload = self.encode();
        if payload.len() > MAX_FRAME_LEN {
            return Err(std::io::Error::new(
                std::io::ErrorKind::InvalidData,
                format!(
                    "frame payload of {} bytes exceeds the {MAX_FRAME_LEN}-byte wire limit \
                     (rank block too large for one gather/scatter frame — use more parts)",
                    payload.len()
                ),
            ));
        }
        let len = payload.len() as u32;
        w.write_all(&len.to_le_bytes())?;
        w.write_all(&frame_crc(len, &payload).to_le_bytes())?;
        w.write_all(&payload)
    }

    /// Read one checksummed, length-prefixed frame from a stream. Any
    /// single-bit change to the bytes on the wire — length prefix
    /// included — yields a [`WireError`] rather than a mis-decoded frame.
    pub fn read_from<R: Read>(r: &mut R) -> Result<Frame, WireError> {
        let mut header = [0u8; 8];
        r.read_exact(&mut header)?;
        let len = u32::from_le_bytes(header[..4].try_into().unwrap());
        let stamped = u32::from_le_bytes(header[4..].try_into().unwrap());
        if len as usize > MAX_FRAME_LEN {
            return Err(WireError::TooLarge(len as usize));
        }
        let mut payload = vec![0u8; len as usize];
        r.read_exact(&mut payload)?;
        let got = frame_crc(len, &payload);
        if got != stamped {
            return Err(WireError::BadChecksum { expected: stamped, got });
        }
        Frame::decode(&payload)
    }

    /// Total bytes [`write_to`](Self::write_to) puts on the wire for this
    /// frame (length prefix and checksum included).
    pub fn wire_len(&self) -> usize {
        8 + self.encode().len()
    }
}

/// Bytes a coalesced [`Frame::HaloDelta`] of `entries` delivery slots at
/// coordinate dimension `dim` occupies on the wire (length prefix and
/// checksum included) — the formula both transports charge
/// `ExchangeVolume::halo_bytes_sent` with, so in-process and
/// multi-process runs report identical byte counts.
pub const fn halo_frame_wire_len(dim: usize, entries: usize) -> usize {
    // prefix + crc + tag + part + slots(len + 4/entry) + coords(len + 8·dim/entry)
    4 + 4 + 1 + 4 + 4 + 4 * entries + 4 + 8 * dim * entries
}

/// Incremental frame reassembly over a non-blocking byte stream.
///
/// [`Frame::read_from`] blocks until a whole frame has arrived — fine for
/// one stream, useless for a coordinator multiplexing many rank fds with
/// one `poll(2)`: a readable fd may hold *any* prefix of a frame (TCP
/// segments, short pipe writes, a scripted one-byte-per-syscall fault).
/// `Reassembly` accepts whatever bytes arrived via [`extend`] and hands
/// back complete frames via [`next_frame`], applying exactly the same
/// validation ladder as `read_from` — [`MAX_FRAME_LEN`] before the
/// payload is buffered, CRC32c over length prefix + payload, then
/// [`Frame::decode`] — so fragmentation and interleaving are invisible:
/// any chunking of the same byte stream yields the same frame sequence
/// (property-tested in `tests/props.rs`).
///
/// [`extend`]: Self::extend
/// [`next_frame`]: Self::next_frame
#[derive(Debug, Default)]
pub struct Reassembly {
    buf: Vec<u8>,
    /// Bytes of `buf` already consumed by emitted frames. Compacted when
    /// it crosses half the buffer, so the amortised cost stays linear.
    consumed: usize,
}

impl Reassembly {
    /// An empty reassembly buffer.
    pub fn new() -> Self {
        Reassembly::default()
    }

    /// Append freshly-read bytes (any amount, including a partial frame).
    pub fn extend(&mut self, bytes: &[u8]) {
        if self.consumed > 0 && self.consumed >= self.buf.len() / 2 {
            self.buf.drain(..self.consumed);
            self.consumed = 0;
        }
        self.buf.extend_from_slice(bytes);
    }

    /// Decode the next complete frame, or `Ok(None)` if the buffered
    /// bytes end mid-frame. A corrupted frame (bad checksum, oversized
    /// length prefix, malformed payload) is a hard error: the stream is
    /// desynchronised and the caller must tear the connection down, just
    /// as after a [`Frame::read_from`] failure.
    pub fn next_frame(&mut self) -> Result<Option<Frame>, WireError> {
        let avail = &self.buf[self.consumed..];
        if avail.len() < 8 {
            return Ok(None);
        }
        let len = u32::from_le_bytes(avail[..4].try_into().unwrap());
        let stamped = u32::from_le_bytes(avail[4..8].try_into().unwrap());
        if len as usize > MAX_FRAME_LEN {
            return Err(WireError::TooLarge(len as usize));
        }
        if avail.len() < 8 + len as usize {
            return Ok(None);
        }
        let payload = &avail[8..8 + len as usize];
        let got = frame_crc(len, payload);
        if got != stamped {
            return Err(WireError::BadChecksum { expected: stamped, got });
        }
        let frame = Frame::decode(payload)?;
        self.consumed += 8 + len as usize;
        Ok(Some(frame))
    }

    /// No bytes buffered at all — the stream is at a frame boundary.
    pub fn is_empty(&self) -> bool {
        self.buf.len() == self.consumed
    }

    /// Bytes buffered but not yet emitted as frames.
    pub fn buffered(&self) -> usize {
        self.buf.len() - self.consumed
    }

    /// Discard everything buffered (recovery tears down mid-frame state).
    pub fn clear(&mut self) {
        self.buf.clear();
        self.consumed = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(frame: Frame) {
        let payload = frame.encode();
        let back = Frame::decode(&payload).expect("decode");
        // PartialEq on f64 payloads would call NaN != NaN; compare bits
        // through the encoding instead
        assert_eq!(payload, back.encode());
        let mut stream = Vec::new();
        frame.write_to(&mut stream).unwrap();
        assert_eq!(stream.len(), frame.wire_len());
        let back = Frame::read_from(&mut stream.as_slice()).expect("read_from");
        assert_eq!(payload, back.encode());
    }

    fn zero_phases() -> RankPhaseNanos {
        RankPhaseNanos::default()
    }

    #[test]
    fn every_frame_type_roundtrips() {
        roundtrip(Frame::Hello { version: WIRE_VERSION, dim: 3, rank: 7, profile: false });
        roundtrip(Frame::Hello { version: WIRE_VERSION, dim: 2, rank: 0, profile: true });
        roundtrip(Frame::Gather {
            coords: vec![0.5, -1.25, f64::NAN, -0.0, f64::INFINITY],
            scores: vec![(0.75, true), (f64::NAN, false), (-0.0, true)],
        });
        roundtrip(Frame::Interior);
        roundtrip(Frame::ColorStep { color: u32::MAX });
        roundtrip(Frame::HaloDelta {
            part: 3,
            slots: vec![0, 17, u32::MAX],
            coords: vec![1.0, -0.0, f64::NEG_INFINITY, f64::MIN_POSITIVE, 2.5e-308, f64::NAN],
        });
        roundtrip(Frame::RoundDone);
        roundtrip(Frame::FinishIteration);
        roundtrip(Frame::Report { delta: -0.0, phases: zero_phases() });
        roundtrip(Frame::Report { delta: f64::NAN, phases: zero_phases() });
        roundtrip(Frame::Report {
            delta: 0.125,
            phases: RankPhaseNanos {
                interior_ns: u64::MAX,
                color_ns: 1,
                finish_ns: 0,
                moved: 12_345,
            },
        });
        roundtrip(Frame::ScatterRequest);
        roundtrip(Frame::Scatter { coords: vec![] });
        roundtrip(Frame::ScatterDeltaRequest);
        roundtrip(Frame::ScatterDelta { slots: vec![], coords: vec![] });
        roundtrip(Frame::ScatterDelta {
            slots: vec![2, 40, u32::MAX],
            coords: vec![-0.0, f64::NAN, 3.5, f64::MIN_POSITIVE, -1.0, 0.0],
        });
        roundtrip(Frame::Shutdown);
    }

    #[test]
    fn nan_and_negative_zero_bits_survive() {
        // a signalling-style NaN bit pattern must come back bit-identical
        let weird = f64::from_bits(0x7ff0_0000_0000_0001);
        let frame = Frame::Scatter { coords: vec![weird, -0.0] };
        let Frame::Scatter { coords } = Frame::decode(&frame.encode()).unwrap() else {
            panic!("wrong frame type");
        };
        assert_eq!(coords[0].to_bits(), weird.to_bits());
        assert_eq!(coords[1].to_bits(), (-0.0f64).to_bits());
    }

    #[test]
    fn halo_frame_len_formula_matches_encoding() {
        for (dim, entries) in [(2usize, 0usize), (2, 1), (2, 9), (3, 4), (3, 117)] {
            let frame = Frame::HaloDelta {
                part: 1,
                slots: vec![5; entries],
                coords: vec![0.25; entries * dim],
            };
            assert_eq!(frame.wire_len(), halo_frame_wire_len(dim, entries), "{dim}D x{entries}");
        }
    }

    #[test]
    fn truncated_and_oversized_frames_are_rejected() {
        let good = Frame::ColorStep { color: 9 }.encode();
        assert!(matches!(Frame::decode(&good[..good.len() - 1]), Err(WireError::BadLength)));
        let mut padded = good.clone();
        padded.push(0);
        assert!(matches!(Frame::decode(&padded), Err(WireError::BadLength)));
        assert!(matches!(Frame::decode(&[200u8]), Err(WireError::BadTag(200))));
        let mut stream = Vec::new();
        stream.extend_from_slice(&(MAX_FRAME_LEN as u32 + 1).to_le_bytes());
        stream.extend_from_slice(&[0u8; 4]); // checksum slot
        assert!(matches!(Frame::read_from(&mut stream.as_slice()), Err(WireError::TooLarge(_))));
    }

    #[test]
    fn hello_rejects_bad_magic() {
        let mut payload =
            Frame::Hello { version: WIRE_VERSION, dim: 2, rank: 0, profile: false }.encode();
        payload[1] ^= 0xff;
        assert!(Frame::decode(&payload).is_err());
    }

    #[test]
    fn crc32c_matches_reference_vector() {
        // the canonical CRC32c check value (RFC 3720 appendix B.4 style)
        assert_eq!(crc32c(b"123456789"), 0xe306_9283);
        assert_eq!(crc32c(b""), 0);
        assert_eq!(crc32c(&[0u8; 32]), 0x8a91_36aa);
    }

    #[test]
    fn v1_hello_is_rejected_with_version_error() {
        // a checksum-less v1 peer's Hello payload, framed in v2 style:
        // the version field alone must reject it with a clear error
        let payload =
            Frame::Hello { version: WIRE_VERSION, dim: 2, rank: 3, profile: false }.encode();
        let mut v1 = payload.clone();
        v1[5..7].copy_from_slice(&1u16.to_le_bytes()); // tag(1) + magic(4), then version
        match Frame::decode(&v1) {
            Err(WireError::Version { got: 1 }) => {}
            other => panic!("expected Version {{ got: 1 }}, got {other:?}"),
        }
        // and the raw v1 *stream* framing ([len][payload], no checksum)
        // cannot be mistaken for a valid v2 frame either
        let mut v1_stream = Vec::new();
        v1_stream.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        v1_stream.extend_from_slice(&payload);
        assert!(Frame::read_from(&mut v1_stream.as_slice()).is_err());
    }

    #[test]
    fn corrupted_frames_fail_the_checksum() {
        let frame = Frame::HaloDelta { part: 2, slots: vec![1, 4], coords: vec![0.5; 4] };
        let mut stream = Vec::new();
        frame.write_to(&mut stream).unwrap();
        // flip one payload byte: decode-level structure stays valid, so
        // only the checksum catches it
        let mut torn = stream.clone();
        let last = torn.len() - 1;
        torn[last] ^= 0x04;
        match Frame::read_from(&mut torn.as_slice()) {
            Err(WireError::BadChecksum { expected, got }) => assert_ne!(expected, got),
            other => panic!("expected BadChecksum, got {other:?}"),
        }
        // flip one stamped-checksum byte
        let mut bad_crc = stream.clone();
        bad_crc[4] ^= 0x80;
        assert!(matches!(
            Frame::read_from(&mut bad_crc.as_slice()),
            Err(WireError::BadChecksum { .. })
        ));
        // the pristine stream still reads back
        assert_eq!(Frame::read_from(&mut stream.as_slice()).unwrap().encode(), frame.encode());
    }

    #[test]
    fn reassembly_decodes_any_chunking_identically_to_read_from() {
        let frames = vec![
            Frame::Gather { coords: vec![0.5, f64::NAN, -0.0], scores: vec![(1.5, true)] },
            Frame::ColorStep { color: 3 },
            Frame::HaloDelta { part: 1, slots: vec![2, 9], coords: vec![0.25; 4] },
            Frame::RoundDone,
            Frame::Report { delta: -2.5, phases: RankPhaseNanos::default() },
        ];
        let mut stream = Vec::new();
        for f in &frames {
            f.write_to(&mut stream).unwrap();
        }
        for chunk in [1usize, 3, 7, stream.len()] {
            let mut asm = Reassembly::new();
            let mut decoded = Vec::new();
            for piece in stream.chunks(chunk) {
                asm.extend(piece);
                while let Some(f) = asm.next_frame().expect("clean stream") {
                    decoded.push(f.encode());
                }
            }
            assert!(asm.is_empty(), "chunk {chunk}: all bytes consumed");
            assert_eq!(asm.buffered(), 0);
            let expect: Vec<Vec<u8>> = frames.iter().map(|f| f.encode()).collect();
            assert_eq!(decoded, expect, "chunk {chunk}");
        }
    }

    #[test]
    fn reassembly_waits_mid_frame_without_error() {
        let frame = Frame::HaloDelta { part: 0, slots: vec![1], coords: vec![0.5, 1.5] };
        let mut stream = Vec::new();
        frame.write_to(&mut stream).unwrap();
        let mut asm = Reassembly::new();
        // every strict prefix is "not yet", never an error
        for cut in 0..stream.len() {
            asm.clear();
            asm.extend(&stream[..cut]);
            assert!(asm.next_frame().expect("prefix is not an error").is_none(), "cut {cut}");
            assert_eq!(asm.buffered(), cut);
        }
        asm.clear();
        assert!(asm.is_empty());
        asm.extend(&stream);
        assert_eq!(asm.next_frame().unwrap().unwrap().encode(), frame.encode());
    }

    #[test]
    fn reassembly_rejects_corruption_like_read_from() {
        let frame = Frame::HaloDelta { part: 2, slots: vec![1, 4], coords: vec![0.5; 4] };
        let mut stream = Vec::new();
        frame.write_to(&mut stream).unwrap();
        // payload corruption → BadChecksum
        let mut torn = stream.clone();
        let last = torn.len() - 1;
        torn[last] ^= 0x04;
        let mut asm = Reassembly::new();
        asm.extend(&torn);
        assert!(matches!(asm.next_frame(), Err(WireError::BadChecksum { .. })));
        // oversized length prefix → TooLarge before the payload buffers
        let mut asm = Reassembly::new();
        let mut huge = Vec::new();
        huge.extend_from_slice(&(MAX_FRAME_LEN as u32 + 1).to_le_bytes());
        huge.extend_from_slice(&[0u8; 4]);
        asm.extend(&huge);
        assert!(matches!(asm.next_frame(), Err(WireError::TooLarge(_))));
    }

    #[test]
    fn wire_error_display_covers_every_variant() {
        let cases: Vec<(WireError, &str)> = vec![
            (WireError::Io(std::io::Error::new(std::io::ErrorKind::UnexpectedEof, "eof")), "i/o"),
            (WireError::BadTag(77), "77"),
            (WireError::BadLength, "length mismatch"),
            (WireError::TooLarge(MAX_FRAME_LEN + 1), "exceeds"),
            (WireError::BadChecksum { expected: 0xdead_beef, got: 0x0bad_f00d }, "0xdeadbeef"),
            (WireError::Version { got: 1 }, "wire version 1"),
        ];
        for (err, needle) in cases {
            let shown = err.to_string();
            assert!(shown.contains(needle), "{shown:?} should mention {needle:?}");
            // std::error::Error plumbing stays intact
            let _: &dyn std::error::Error = &err;
        }
    }
}
