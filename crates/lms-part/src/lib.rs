//! # lms-part — geometric domain decomposition
//!
//! The scaling layer between the ordering zoo (`lms-order`) and the
//! smoothing engines (`lms-smooth`): split a mesh into `k` geometrically
//! compact vertex parts so that each part's **interior** can be smoothed
//! as one contiguous, cache-resident block per worker, with only the thin
//! **interface** layer needing cross-part coordination (the colored
//! schedule). This is the classical domain-decomposition structure —
//! owned vertices, interface vertices, and a **halo** of ghost vertices
//! (the out-of-part 1-ring of the interface) per part.
//!
//! * [`Partition`] — the decomposition itself: per-part vertex /
//!   interior / interface / halo CSR structures, a ghost-vertex lookup
//!   ([`Partition::local_of`]), and the edge cut.
//! * [`PartitionMethod`] — the partitioners: balanced k-way recursive
//!   coordinate bisection ([`lms_order::rcb_parts`]) and SFC chunking
//!   over the Hilbert / Morton orders.
//! * [`PartitionStats`] — decomposition-quality metrics: edge cut, halo
//!   ratio, part-size imbalance, interior/interface split.
//! * [`ExchangeSchedule`] / [`MessagePlan`] / [`wire`] — the halo-exchange
//!   communication layer: the per-vertex delivery pattern, its
//!   rank-addressed (src part → dst part) message plan, and the versioned
//!   binary wire format a multi-process transport carries it with.
//!
//! ```
//! use lms_part::{partition_mesh, PartitionMethod};
//! let mesh = lms_mesh::generators::perturbed_grid(20, 20, 0.3, 1);
//! let adj = lms_mesh::Adjacency::build(&mesh);
//! let p = partition_mesh(&mesh, &adj, 4, PartitionMethod::Rcb);
//! let stats = p.stats();
//! assert_eq!(stats.num_parts, 4);
//! assert!(stats.interior_fraction > 0.5, "parts should be mostly interior");
//! ```

pub mod exchange;
pub mod methods;
pub mod partition;
pub mod stats;
pub mod wire;

pub use exchange::{ExchangeSchedule, MessagePlan};
pub use methods::{
    measured_vertex_weights, partition_coords, partition_mesh, repartition_measured,
    sfc_chunk_assignment, vertex_area_weights, PartitionMethod,
};
pub use partition::Partition;
pub use stats::PartitionStats;
