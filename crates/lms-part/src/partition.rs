//! The [`Partition`] type: a k-way vertex decomposition with the CSR
//! side structures domain-decomposed algorithms need.
//!
//! Terminology (per part `p`):
//!
//! * **owned** — the vertices assigned to `p` (the parts partition the
//!   vertex set);
//! * **interface** — owned vertices with at least one neighbour owned by
//!   a different part (the only vertices whose in-place update another
//!   part could observe);
//! * **interior** — owned vertices that are not interface: their whole
//!   1-ring is owned by `p`, so `p` can update them without seeing any
//!   other part's writes;
//! * **halo** — the ghost layer: vertices *not* owned by `p` that are
//!   adjacent to some vertex of `p`. Equivalently (and property-tested):
//!   exactly the out-of-part 1-ring of `p`'s interface.
//!
//! All per-part lists are stored CSR with vertices ascending within a
//! part, so a part's view is a handful of contiguous slices.
//!
//! The decomposition is **dimension-generic**: construction only needs a
//! vertex–vertex adjacency, abstracted behind [`lms_order::Graph`], so the
//! same [`Partition`] (and the [`crate::ExchangeSchedule`] built from it)
//! serves the 2D [`lms_mesh::Adjacency`] and the tetrahedral adjacency of
//! `lms-mesh3d` unchanged.

use lms_order::Graph;

/// A k-way vertex partition with interface/halo structures. Build with
/// [`Partition::from_assignment`] or the [`crate::partition_mesh`]
/// convenience.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Partition {
    num_parts: u32,
    part_of: Vec<u32>,
    is_interface: Vec<bool>,
    edge_cut: usize,
    part_offsets: Vec<u32>,
    part_vertices: Vec<u32>,
    interior_offsets: Vec<u32>,
    interior_vertices: Vec<u32>,
    interface_offsets: Vec<u32>,
    interface_vertices: Vec<u32>,
    halo_offsets: Vec<u32>,
    halo_vertices: Vec<u32>,
}

/// Counting-sort `(bucket, value)` pairs that arrive grouped per vertex in
/// ascending vertex order into a CSR (values stay ascending per bucket).
fn csr_from<F: Fn(u32) -> u32>(
    n_buckets: u32,
    items: &[u32],
    bucket_of: F,
) -> (Vec<u32>, Vec<u32>) {
    let mut offsets = vec![0u32; n_buckets as usize + 1];
    for &v in items {
        offsets[bucket_of(v) as usize + 1] += 1;
    }
    for i in 0..n_buckets as usize {
        offsets[i + 1] += offsets[i];
    }
    let mut cursor = offsets.clone();
    let mut values = vec![0u32; items.len()];
    for &v in items {
        let c = &mut cursor[bucket_of(v) as usize];
        values[*c as usize] = v;
        *c += 1;
    }
    (offsets, values)
}

impl Partition {
    /// Build the full decomposition from a per-vertex part assignment,
    /// over any [`Graph`] adjacency (2D triangle meshes, tetrahedral
    /// meshes, arbitrary CSR graphs).
    ///
    /// `part_of[v]` is the owning part of vertex `v` and must be below
    /// `num_parts`; parts may be empty.
    pub fn from_assignment<G: Graph + ?Sized>(adj: &G, part_of: Vec<u32>, num_parts: u32) -> Self {
        let n = adj.num_vertices();
        assert_eq!(part_of.len(), n, "assignment length does not match the adjacency");
        assert!(num_parts >= 1, "need at least one part");
        assert!(
            part_of.iter().all(|&p| p < num_parts),
            "part id out of range (num_parts = {num_parts})"
        );

        // interface flags, edge cut and raw halo pairs in one sweep over
        // the CSR rows: a cross-part edge (v, w) makes v interface and w
        // a ghost of v's part
        let mut is_interface = vec![false; n];
        let mut edge_cut = 0usize;
        let mut pairs: Vec<(u32, u32)> = Vec::new();
        for v in 0..n as u32 {
            let pv = part_of[v as usize];
            for &w in adj.neighbors(v) {
                if part_of[w as usize] != pv {
                    is_interface[v as usize] = true;
                    pairs.push((pv, w));
                    if v < w {
                        edge_cut += 1;
                    }
                }
            }
        }

        let all: Vec<u32> = (0..n as u32).collect();
        let (part_offsets, part_vertices) = csr_from(num_parts, &all, |v| part_of[v as usize]);
        let interiors: Vec<u32> = (0..n as u32).filter(|&v| !is_interface[v as usize]).collect();
        let (interior_offsets, interior_vertices) =
            csr_from(num_parts, &interiors, |v| part_of[v as usize]);
        let interfaces: Vec<u32> = (0..n as u32).filter(|&v| is_interface[v as usize]).collect();
        let (interface_offsets, interface_vertices) =
            csr_from(num_parts, &interfaces, |v| part_of[v as usize]);

        // halo CSR from the deduplicated (part, ghost-vertex) pairs
        pairs.sort_unstable();
        pairs.dedup();
        let mut halo_offsets = vec![0u32; num_parts as usize + 1];
        for &(p, _) in &pairs {
            halo_offsets[p as usize + 1] += 1;
        }
        for i in 0..num_parts as usize {
            halo_offsets[i + 1] += halo_offsets[i];
        }
        let halo_vertices: Vec<u32> = pairs.into_iter().map(|(_, u)| u).collect();

        Partition {
            num_parts,
            part_of,
            is_interface,
            edge_cut,
            part_offsets,
            part_vertices,
            interior_offsets,
            interior_vertices,
            interface_offsets,
            interface_vertices,
            halo_offsets,
            halo_vertices,
        }
    }

    /// Number of parts (some may be empty).
    #[inline]
    pub fn num_parts(&self) -> u32 {
        self.num_parts
    }

    /// Number of vertices partitioned.
    #[inline]
    pub fn len(&self) -> usize {
        self.part_of.len()
    }

    /// True for the zero-vertex partition.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.part_of.is_empty()
    }

    /// Owning part of vertex `v`.
    #[inline]
    pub fn part_of(&self, v: u32) -> u32 {
        self.part_of[v as usize]
    }

    /// The full per-vertex assignment (index = vertex).
    #[inline]
    pub fn assignment(&self) -> &[u32] {
        &self.part_of
    }

    /// True when `v` has a neighbour owned by a different part.
    #[inline]
    pub fn is_interface(&self, v: u32) -> bool {
        self.is_interface[v as usize]
    }

    /// Number of undirected edges whose endpoints lie in different parts.
    #[inline]
    pub fn edge_cut(&self) -> usize {
        self.edge_cut
    }

    #[inline]
    fn slice<'a>(offsets: &[u32], values: &'a [u32], p: u32) -> &'a [u32] {
        &values[offsets[p as usize] as usize..offsets[p as usize + 1] as usize]
    }

    /// Vertices owned by part `p`, ascending.
    #[inline]
    pub fn part(&self, p: u32) -> &[u32] {
        Self::slice(&self.part_offsets, &self.part_vertices, p)
    }

    /// Interior vertices of part `p` (whole 1-ring owned by `p`), ascending.
    #[inline]
    pub fn interior(&self, p: u32) -> &[u32] {
        Self::slice(&self.interior_offsets, &self.interior_vertices, p)
    }

    /// Interface vertices of part `p`, ascending.
    #[inline]
    pub fn interface(&self, p: u32) -> &[u32] {
        Self::slice(&self.interface_offsets, &self.interface_vertices, p)
    }

    /// Halo (ghost) vertices of part `p`: not owned by `p`, adjacent to it.
    /// Ascending.
    #[inline]
    pub fn halo(&self, p: u32) -> &[u32] {
        Self::slice(&self.halo_offsets, &self.halo_vertices, p)
    }

    /// Total halo entries summed over parts (a vertex bordering several
    /// parts is counted once per part it borders).
    #[inline]
    pub fn total_halo(&self) -> usize {
        self.halo_vertices.len()
    }

    /// Total interface vertices (each counted once).
    #[inline]
    pub fn total_interface(&self) -> usize {
        self.interface_vertices.len()
    }

    /// Total interior vertices (each counted once).
    #[inline]
    pub fn total_interior(&self) -> usize {
        self.interior_vertices.len()
    }

    /// Ghost-vertex map of part `p`: the local index of global vertex `v`
    /// in `p`'s contiguous storage convention — owned vertices first (in
    /// ascending global order), then the halo (ascending). `None` when `v`
    /// is neither owned by nor adjacent to `p`.
    pub fn local_of(&self, p: u32, v: u32) -> Option<usize> {
        let owned = self.part(p);
        if let Ok(i) = owned.binary_search(&v) {
            return Some(i);
        }
        self.halo(p).binary_search(&v).ok().map(|i| owned.len() + i)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::methods::{partition_mesh, PartitionMethod};
    use lms_mesh::{generators, Adjacency};

    fn setup(k: u32) -> (lms_mesh::TriMesh, Adjacency, Partition) {
        let m = generators::perturbed_grid(14, 12, 0.3, 5);
        let adj = Adjacency::build(&m);
        let p = partition_mesh(&m, &adj, k as usize, PartitionMethod::Rcb);
        (m, adj, p)
    }

    #[test]
    fn parts_partition_the_vertex_set() {
        let (m, _, p) = setup(5);
        let mut seen: Vec<u32> = (0..p.num_parts()).flat_map(|q| p.part(q).to_vec()).collect();
        assert_eq!(seen.len(), m.num_vertices());
        seen.sort_unstable();
        assert!(seen.iter().enumerate().all(|(i, &v)| v as usize == i));
        for q in 0..p.num_parts() {
            assert!(p.part(q).iter().all(|&v| p.part_of(v) == q));
            assert!(p.part(q).windows(2).all(|w| w[0] < w[1]));
        }
    }

    #[test]
    fn interior_plus_interface_is_owned() {
        let (_, adj, p) = setup(4);
        for q in 0..p.num_parts() {
            let mut merged: Vec<u32> = p.interior(q).to_vec();
            merged.extend_from_slice(p.interface(q));
            merged.sort_unstable();
            assert_eq!(merged, p.part(q));
        }
        // interface flag ⟺ cross-part neighbour
        for v in 0..adj.num_vertices() as u32 {
            let crosses = adj.neighbors(v).iter().any(|&w| p.part_of(w) != p.part_of(v));
            assert_eq!(p.is_interface(v), crosses, "vertex {v}");
        }
    }

    #[test]
    fn halo_is_the_out_of_part_ring() {
        let (_, adj, p) = setup(4);
        for q in 0..p.num_parts() {
            let mut expect: Vec<u32> = p
                .part(q)
                .iter()
                .flat_map(|&v| adj.neighbors(v).iter().copied())
                .filter(|&u| p.part_of(u) != q)
                .collect();
            expect.sort_unstable();
            expect.dedup();
            assert_eq!(p.halo(q), &expect[..], "part {q}");
        }
    }

    #[test]
    fn edge_cut_counts_cross_edges_once() {
        let (m, _, p) = setup(3);
        let direct = m.edges().iter().filter(|&&(a, b)| p.part_of(a) != p.part_of(b)).count();
        assert_eq!(p.edge_cut(), direct);
    }

    #[test]
    fn local_of_covers_owned_then_halo() {
        let (_, adj, p) = setup(4);
        for q in 0..p.num_parts() {
            let owned = p.part(q);
            for (i, &v) in owned.iter().enumerate() {
                assert_eq!(p.local_of(q, v), Some(i));
            }
            for (i, &u) in p.halo(q).iter().enumerate() {
                assert_eq!(p.local_of(q, u), Some(owned.len() + i));
            }
            // a vertex neither owned nor adjacent resolves to None
            let foreign = (0..adj.num_vertices() as u32)
                .find(|&v| p.part_of(v) != q && p.halo(q).binary_search(&v).is_err());
            if let Some(v) = foreign {
                assert_eq!(p.local_of(q, v), None);
            }
        }
    }

    #[test]
    fn single_part_has_no_interface() {
        let (m, _, p) = setup(1);
        assert_eq!(p.edge_cut(), 0);
        assert_eq!(p.total_interface(), 0);
        assert_eq!(p.total_halo(), 0);
        assert_eq!(p.part(0).len(), m.num_vertices());
    }

    #[test]
    fn assignment_validation_panics_out_of_range() {
        let m = generators::perturbed_grid(5, 5, 0.2, 1);
        let adj = Adjacency::build(&m);
        let bad = vec![7u32; m.num_vertices()];
        let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            Partition::from_assignment(&adj, bad, 4);
        }));
        assert!(r.is_err());
    }
}
