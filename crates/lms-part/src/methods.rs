//! The partitioners: geometric k-way RCB and space-filling-curve
//! chunking over the Hilbert / Morton orders.
//!
//! Both families are **deterministic** and produce balanced parts (sizes
//! within one of each other): RCB splits recursively at coordinate
//! medians, SFC chunking walks the curve order and cuts it into `k`
//! equal-length runs — the 1D analogue of the curve's locality argument,
//! so each run is a compact 2D blob too.

use crate::partition::Partition;
use lms_mesh::{Adjacency, Point2, TriMesh};
use lms_order::{hilbert_ordering, morton_ordering, rcb_parts, rcb_parts_weighted, Permutation};

/// The geometric partitioners `lms-part` implements.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PartitionMethod {
    /// Balanced k-way recursive coordinate bisection
    /// ([`lms_order::rcb_parts`]).
    Rcb,
    /// Area-weighted k-way RCB ([`lms_order::rcb_parts_weighted`]): splits
    /// at the **weighted median** with each vertex weighted by its share
    /// of the incident triangle area ([`vertex_area_weights`]), so k-way
    /// balance holds under non-uniform vertex densities. Through the
    /// point-set API ([`partition_coords`]) the weights are uniform and
    /// the method degenerates to [`Rcb`](Self::Rcb) exactly.
    RcbWeighted,
    /// Equal-size chunks of the Hilbert-curve order.
    Hilbert,
    /// Equal-size chunks of the Morton (Z-order) curve order.
    Morton,
}

impl PartitionMethod {
    /// Short lowercase name for reports and CLIs.
    pub fn name(self) -> &'static str {
        match self {
            PartitionMethod::Rcb => "rcb",
            PartitionMethod::RcbWeighted => "rcbw",
            PartitionMethod::Hilbert => "hilbert",
            PartitionMethod::Morton => "morton",
        }
    }

    /// Parse a CLI name.
    pub fn parse(name: &str) -> Option<PartitionMethod> {
        Some(match name.to_ascii_lowercase().as_str() {
            "rcb" | "bisection" => PartitionMethod::Rcb,
            "rcbw" | "rcb-weighted" | "weighted" => PartitionMethod::RcbWeighted,
            "hilbert" | "sfc" => PartitionMethod::Hilbert,
            "morton" | "zorder" => PartitionMethod::Morton,
            _ => return None,
        })
    }

    /// Every implemented method.
    pub const ALL: [PartitionMethod; 4] = [
        PartitionMethod::Rcb,
        PartitionMethod::RcbWeighted,
        PartitionMethod::Hilbert,
        PartitionMethod::Morton,
    ];
}

/// Per-vertex area weights: each vertex receives one third of the absolute
/// area of every incident triangle (the barycentric lumping of the mesh
/// area). The input of [`PartitionMethod::RcbWeighted`] under
/// [`partition_mesh`]; vertices with no incident triangle weigh zero.
pub fn vertex_area_weights(mesh: &TriMesh, adj: &Adjacency) -> Vec<f64> {
    let tri_area: Vec<f64> = (0..mesh.num_triangles())
        .map(|t| {
            let [a, b, c] = mesh.tri_coords(t);
            lms_mesh::geometry::signed_area(a, b, c).abs() / 3.0
        })
        .collect();
    (0..mesh.num_vertices() as u32)
        .map(|v| adj.triangles_of(v).iter().map(|&t| tri_area[t as usize]).sum())
        .collect()
}

/// Per-vertex *measured-cost* weights from a profiled warm-up run: every
/// vertex inherits its part's measured sweep time divided by the part's
/// vertex count — the empirical nanoseconds-per-vertex of the region it
/// currently lives in. Feeding these into
/// [`lms_order::rcb_parts_weighted`] splits at *cost* medians instead of
/// count medians, so the repartition equalises measured work even when
/// per-vertex cost varies across the domain (graded meshes: interior
/// valence, cache behaviour and interface density all shift with vertex
/// density). Parts with no vertices weigh zero.
pub fn measured_vertex_weights(
    assignment: &[u32],
    num_parts: usize,
    per_part_sweep_ns: &[u64],
) -> Vec<f64> {
    assert_eq!(per_part_sweep_ns.len(), num_parts, "one sweep time per part");
    let mut counts = vec![0usize; num_parts];
    for &p in assignment {
        counts[p as usize] += 1;
    }
    let per_vertex: Vec<f64> = (0..num_parts)
        .map(|p| if counts[p] == 0 { 0.0 } else { per_part_sweep_ns[p] as f64 / counts[p] as f64 })
        .collect();
    assignment.iter().map(|&p| per_vertex[p as usize]).collect()
}

/// Re-partition `mesh` using measured per-part sweep times from a
/// profiled warm-up run on `partition` — the *measured repartition* that
/// closes the observability loop: profile → weight → re-split. The new
/// decomposition splits at measured-cost medians
/// ([`measured_vertex_weights`]); it is deterministic given the same
/// timings and independent of the old partition's shape beyond the
/// per-part cost attribution.
pub fn repartition_measured(
    mesh: &TriMesh,
    adj: &Adjacency,
    partition: &Partition,
    per_part_sweep_ns: &[u64],
) -> Partition {
    let k = partition.num_parts() as usize;
    let weights = measured_vertex_weights(partition.assignment(), k, per_part_sweep_ns);
    let assignment = rcb_parts_weighted(mesh.coords(), &weights, k);
    Partition::from_assignment(adj, assignment, k as u32)
}

/// Chunk an ordering into `k` balanced contiguous runs: the vertex at
/// curve position `pos` goes to part `pos·k / n` (sizes within one).
///
/// Public because the chunking is dimension-agnostic: any locality-
/// preserving permutation works — the 2D Hilbert/Morton orderings here,
/// or `lms-mesh3d`'s 3D curves for tetrahedral decompositions.
pub fn sfc_chunk_assignment(perm: &Permutation, k: usize) -> Vec<u32> {
    let n = perm.len();
    let mut part = vec![0u32; n];
    for (pos, &old) in perm.new_to_old().iter().enumerate() {
        part[old as usize] = (pos * k / n) as u32;
    }
    part
}

/// Compute the per-vertex part assignment of `method` for a point set.
pub fn partition_coords(coords: &[Point2], num_parts: usize, method: PartitionMethod) -> Vec<u32> {
    assert!(num_parts >= 1, "need at least one part");
    if coords.is_empty() {
        return Vec::new();
    }
    match method {
        PartitionMethod::Rcb => rcb_parts(coords, num_parts),
        // no mesh in sight: uniform weights, i.e. exactly Rcb
        PartitionMethod::RcbWeighted => rcb_parts(coords, num_parts),
        PartitionMethod::Hilbert => sfc_chunk_assignment(&hilbert_ordering(coords), num_parts),
        PartitionMethod::Morton => sfc_chunk_assignment(&morton_ordering(coords), num_parts),
    }
}

/// Partition `mesh` into `num_parts` parts with `method`, building the
/// full interface/halo decomposition over `adj`.
/// [`PartitionMethod::RcbWeighted`] splits at area-weighted medians here
/// (it has a mesh to take areas from); every other method matches
/// [`partition_coords`] on the mesh's coordinates.
pub fn partition_mesh(
    mesh: &TriMesh,
    adj: &Adjacency,
    num_parts: usize,
    method: PartitionMethod,
) -> Partition {
    let assignment = if method == PartitionMethod::RcbWeighted {
        let weights = vertex_area_weights(mesh, adj);
        rcb_parts_weighted(mesh.coords(), &weights, num_parts)
    } else {
        partition_coords(mesh.coords(), num_parts, method)
    };
    Partition::from_assignment(adj, assignment, num_parts as u32)
}

#[cfg(test)]
mod tests {
    use super::*;
    use lms_mesh::generators;

    #[test]
    fn all_methods_are_balanced_and_deterministic() {
        let m = generators::perturbed_grid(18, 15, 0.35, 4);
        for method in PartitionMethod::ALL {
            for k in [1usize, 2, 5, 8] {
                let a = partition_coords(m.coords(), k, method);
                let b = partition_coords(m.coords(), k, method);
                assert_eq!(a, b, "{} k={k} not deterministic", method.name());
                let mut sizes = vec![0usize; k];
                for &p in &a {
                    sizes[p as usize] += 1;
                }
                let (lo, hi) = (*sizes.iter().min().unwrap(), *sizes.iter().max().unwrap());
                assert!(hi - lo <= 1, "{} k={k}: sizes {sizes:?}", method.name());
            }
        }
    }

    #[test]
    fn names_roundtrip() {
        for method in PartitionMethod::ALL {
            assert_eq!(PartitionMethod::parse(method.name()), Some(method));
        }
        assert_eq!(PartitionMethod::parse("nope"), None);
    }

    #[test]
    fn sfc_parts_are_contiguous_on_the_curve() {
        let m = generators::perturbed_grid(16, 16, 0.3, 2);
        let perm = hilbert_ordering(m.coords());
        let part = partition_coords(m.coords(), 4, PartitionMethod::Hilbert);
        // walking the curve, the part id never decreases
        let walked: Vec<u32> = perm.new_to_old().iter().map(|&v| part[v as usize]).collect();
        assert!(walked.windows(2).all(|w| w[0] <= w[1]));
    }

    /// A strongly graded mesh: grid x-coordinates pushed through x³, so
    /// vertex density (and per-vertex area share) varies by orders of
    /// magnitude across the domain.
    fn graded_mesh() -> TriMesh {
        let m = generators::perturbed_grid(24, 24, 0.0, 0);
        let (coords, tris) = m.into_parts();
        let graded: Vec<Point2> =
            coords.into_iter().map(|p| Point2::new(p.x * p.x * p.x, p.y)).collect();
        TriMesh::new(graded, tris).unwrap()
    }

    #[test]
    fn weighted_rcb_balances_area_on_graded_meshes() {
        let m = graded_mesh();
        let adj = Adjacency::build(&m);
        let weights = vertex_area_weights(&m, &adj);
        let total: f64 = weights.iter().sum();
        let k = 4usize;
        let area_of = |part: &Partition| -> f64 {
            let mut per = vec![0.0f64; k];
            for (v, &w) in weights.iter().enumerate() {
                per[part.part_of(v as u32) as usize] += w;
            }
            per.iter().copied().fold(0.0, f64::max)
        };
        let weighted = partition_mesh(&m, &adj, k, PartitionMethod::RcbWeighted);
        let unweighted = partition_mesh(&m, &adj, k, PartitionMethod::Rcb);
        let mean = total / k as f64;
        let wi = area_of(&weighted) / mean;
        let ui = area_of(&unweighted) / mean;
        assert!(wi < 1.3, "weighted area imbalance {wi:.3}");
        assert!(wi < ui, "weighted ({wi:.3}) must beat count-balanced rcb ({ui:.3}) on area");
    }

    #[test]
    fn weighted_rcb_equals_rcb_through_the_point_api() {
        // partition_coords has no areas to weight by: RcbWeighted must be
        // exactly Rcb there (uniform-weight oracle)
        let m = generators::perturbed_grid(18, 15, 0.35, 4);
        assert_eq!(
            partition_coords(m.coords(), 6, PartitionMethod::RcbWeighted),
            partition_coords(m.coords(), 6, PartitionMethod::Rcb),
        );
    }

    #[test]
    fn measured_weights_attribute_part_cost_per_vertex() {
        // 6 vertices, 2 parts: part 0 {0,1,2} took 300ns, part 1 {3,4,5}
        // took 600ns — so 100ns and 200ns per vertex respectively
        let assignment = [0u32, 0, 0, 1, 1, 1];
        let w = measured_vertex_weights(&assignment, 2, &[300, 600]);
        assert_eq!(w, vec![100.0, 100.0, 100.0, 200.0, 200.0, 200.0]);
        // an empty part contributes zero weight, not NaN
        let w = measured_vertex_weights(&[1u32, 1], 2, &[500, 80]);
        assert_eq!(w, vec![40.0, 40.0]);
    }

    #[test]
    fn measured_repartition_shifts_vertices_toward_cheap_regions() {
        // skew the measured cost: part holding the small-x (dense) half is
        // reported 9x slower, so the repartition must shrink it
        let m = graded_mesh();
        let adj = Adjacency::build(&m);
        let k = 4usize;
        let before = partition_mesh(&m, &adj, k, PartitionMethod::Rcb);
        // synthesize "measured" times: charge part p its vertex count
        // times a density factor (small-x parts cost more per vertex)
        let mut cost = vec![0u64; k];
        for (v, &p) in before.assignment().iter().enumerate() {
            let x = m.coords()[v].x;
            let per_vertex = if x < 0.1 { 900 } else { 100 };
            cost[p as usize] += per_vertex;
        }
        let after = repartition_measured(&m, &adj, &before, &cost);
        assert_eq!(after.num_parts(), k as u32);
        // deterministic
        let again = repartition_measured(&m, &adj, &before, &cost);
        assert_eq!(after.assignment(), again.assignment());
        // the measured-cost imbalance (charging the same synthetic cost
        // model to the new parts) must narrow strictly
        let spread = |part: &Partition| -> (u64, u64) {
            let mut per = vec![0u64; k];
            for (v, &p) in part.assignment().iter().enumerate() {
                let x = m.coords()[v].x;
                per[p as usize] += if x < 0.1 { 900 } else { 100 };
            }
            (*per.iter().min().unwrap(), *per.iter().max().unwrap())
        };
        let (blo, bhi) = spread(&before);
        let (alo, ahi) = spread(&after);
        assert!(
            ahi - alo < bhi - blo,
            "measured repartition must narrow the cost spread: {blo}..{bhi} -> {alo}..{ahi}"
        );
    }

    #[test]
    fn geometric_partitions_have_small_cut() {
        // any geometric method must beat a round-robin assignment on cut
        let m = generators::perturbed_grid(24, 24, 0.3, 6);
        let adj = Adjacency::build(&m);
        let round_robin: Vec<u32> = (0..m.num_vertices() as u32).map(|v| v % 4).collect();
        let rr = Partition::from_assignment(&adj, round_robin, 4).edge_cut();
        for method in PartitionMethod::ALL {
            let cut = partition_mesh(&m, &adj, 4, method).edge_cut();
            assert!(cut * 4 < rr, "{}: cut {cut} vs round-robin {rr}", method.name());
        }
    }
}
