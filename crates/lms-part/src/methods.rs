//! The partitioners: geometric k-way RCB and space-filling-curve
//! chunking over the Hilbert / Morton orders.
//!
//! Both families are **deterministic** and produce balanced parts (sizes
//! within one of each other): RCB splits recursively at coordinate
//! medians, SFC chunking walks the curve order and cuts it into `k`
//! equal-length runs — the 1D analogue of the curve's locality argument,
//! so each run is a compact 2D blob too.

use crate::partition::Partition;
use lms_mesh::{Adjacency, Point2, TriMesh};
use lms_order::{hilbert_ordering, morton_ordering, rcb_parts, Permutation};

/// The geometric partitioners `lms-part` implements.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PartitionMethod {
    /// Balanced k-way recursive coordinate bisection
    /// ([`lms_order::rcb_parts`]).
    Rcb,
    /// Equal-size chunks of the Hilbert-curve order.
    Hilbert,
    /// Equal-size chunks of the Morton (Z-order) curve order.
    Morton,
}

impl PartitionMethod {
    /// Short lowercase name for reports and CLIs.
    pub fn name(self) -> &'static str {
        match self {
            PartitionMethod::Rcb => "rcb",
            PartitionMethod::Hilbert => "hilbert",
            PartitionMethod::Morton => "morton",
        }
    }

    /// Parse a CLI name.
    pub fn parse(name: &str) -> Option<PartitionMethod> {
        Some(match name.to_ascii_lowercase().as_str() {
            "rcb" | "bisection" => PartitionMethod::Rcb,
            "hilbert" | "sfc" => PartitionMethod::Hilbert,
            "morton" | "zorder" => PartitionMethod::Morton,
            _ => return None,
        })
    }

    /// Every implemented method.
    pub const ALL: [PartitionMethod; 3] =
        [PartitionMethod::Rcb, PartitionMethod::Hilbert, PartitionMethod::Morton];
}

/// Chunk an ordering into `k` balanced contiguous runs: the vertex at
/// curve position `pos` goes to part `pos·k / n` (sizes within one).
fn sfc_chunks(perm: &Permutation, k: usize) -> Vec<u32> {
    let n = perm.len();
    let mut part = vec![0u32; n];
    for (pos, &old) in perm.new_to_old().iter().enumerate() {
        part[old as usize] = (pos * k / n) as u32;
    }
    part
}

/// Compute the per-vertex part assignment of `method` for a point set.
pub fn partition_coords(coords: &[Point2], num_parts: usize, method: PartitionMethod) -> Vec<u32> {
    assert!(num_parts >= 1, "need at least one part");
    if coords.is_empty() {
        return Vec::new();
    }
    match method {
        PartitionMethod::Rcb => rcb_parts(coords, num_parts),
        PartitionMethod::Hilbert => sfc_chunks(&hilbert_ordering(coords), num_parts),
        PartitionMethod::Morton => sfc_chunks(&morton_ordering(coords), num_parts),
    }
}

/// Partition `mesh` into `num_parts` parts with `method`, building the
/// full interface/halo decomposition over `adj`.
pub fn partition_mesh(
    mesh: &TriMesh,
    adj: &Adjacency,
    num_parts: usize,
    method: PartitionMethod,
) -> Partition {
    let assignment = partition_coords(mesh.coords(), num_parts, method);
    Partition::from_assignment(adj, assignment, num_parts as u32)
}

#[cfg(test)]
mod tests {
    use super::*;
    use lms_mesh::generators;

    #[test]
    fn all_methods_are_balanced_and_deterministic() {
        let m = generators::perturbed_grid(18, 15, 0.35, 4);
        for method in PartitionMethod::ALL {
            for k in [1usize, 2, 5, 8] {
                let a = partition_coords(m.coords(), k, method);
                let b = partition_coords(m.coords(), k, method);
                assert_eq!(a, b, "{} k={k} not deterministic", method.name());
                let mut sizes = vec![0usize; k];
                for &p in &a {
                    sizes[p as usize] += 1;
                }
                let (lo, hi) = (*sizes.iter().min().unwrap(), *sizes.iter().max().unwrap());
                assert!(hi - lo <= 1, "{} k={k}: sizes {sizes:?}", method.name());
            }
        }
    }

    #[test]
    fn names_roundtrip() {
        for method in PartitionMethod::ALL {
            assert_eq!(PartitionMethod::parse(method.name()), Some(method));
        }
        assert_eq!(PartitionMethod::parse("nope"), None);
    }

    #[test]
    fn sfc_parts_are_contiguous_on_the_curve() {
        let m = generators::perturbed_grid(16, 16, 0.3, 2);
        let perm = hilbert_ordering(m.coords());
        let part = partition_coords(m.coords(), 4, PartitionMethod::Hilbert);
        // walking the curve, the part id never decreases
        let walked: Vec<u32> = perm.new_to_old().iter().map(|&v| part[v as usize]).collect();
        assert!(walked.windows(2).all(|w| w[0] <= w[1]));
    }

    #[test]
    fn geometric_partitions_have_small_cut() {
        // any geometric method must beat a round-robin assignment on cut
        let m = generators::perturbed_grid(24, 24, 0.3, 6);
        let adj = Adjacency::build(&m);
        let round_robin: Vec<u32> = (0..m.num_vertices() as u32).map(|v| v % 4).collect();
        let rr = Partition::from_assignment(&adj, round_robin, 4).edge_cut();
        for method in PartitionMethod::ALL {
            let cut = partition_mesh(&m, &adj, 4, method).edge_cut();
            assert!(cut * 4 < rr, "{}: cut {cut} vs round-robin {rr}", method.name());
        }
    }
}
