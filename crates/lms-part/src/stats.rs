//! Decomposition-quality metrics — the numbers the `partition` bench
//! experiment reports and a pipeline can use to pick `k`.
//!
//! The quantities mirror the classic partitioning literature: **edge
//! cut** (communication volume proxy), **halo ratio** (ghost storage
//! overhead), **imbalance** (max part over mean part — parallel-time
//! bound), and the **interior fraction** (how much of the mesh smooths
//! without any cross-part coordination — the payload of the partitioned
//! engine).

use crate::partition::Partition;
use std::fmt;

/// Summary metrics of a [`Partition`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PartitionStats {
    /// Number of parts.
    pub num_parts: usize,
    /// Vertices partitioned.
    pub num_vertices: usize,
    /// Undirected edges crossing parts.
    pub edge_cut: usize,
    /// Vertices whose whole 1-ring stays in their own part.
    pub interior_vertices: usize,
    /// Vertices with at least one cross-part neighbour.
    pub interface_vertices: usize,
    /// Ghost entries summed over parts (a vertex bordering several parts
    /// counts once per part).
    pub halo_vertices: usize,
    /// Largest part size.
    pub max_part: usize,
    /// Smallest part size.
    pub min_part: usize,
    /// Mean part size.
    pub mean_part: f64,
    /// `max_part / mean_part` — 1.0 is perfectly balanced.
    pub imbalance: f64,
    /// `halo_vertices / num_vertices` — ghost storage overhead.
    pub halo_ratio: f64,
    /// `interior_vertices / num_vertices` — the coordination-free share.
    pub interior_fraction: f64,
}

impl PartitionStats {
    /// Interior-to-interface vertex ratio (`inf` when no interface).
    pub fn interior_interface_ratio(&self) -> f64 {
        self.interior_vertices as f64 / self.interface_vertices as f64
    }
}

impl fmt::Display for PartitionStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "k={} cut={} interior={} interface={} halo={} imbalance={:.3} halo-ratio={:.3}",
            self.num_parts,
            self.edge_cut,
            self.interior_vertices,
            self.interface_vertices,
            self.halo_vertices,
            self.imbalance,
            self.halo_ratio,
        )
    }
}

impl Partition {
    /// Compute the summary metrics of this decomposition.
    pub fn stats(&self) -> PartitionStats {
        let n = self.len();
        let k = self.num_parts() as usize;
        let sizes: Vec<usize> = (0..self.num_parts()).map(|p| self.part(p).len()).collect();
        let max_part = sizes.iter().copied().max().unwrap_or(0);
        let min_part = sizes.iter().copied().min().unwrap_or(0);
        let mean_part = if k == 0 { 0.0 } else { n as f64 / k as f64 };
        PartitionStats {
            num_parts: k,
            num_vertices: n,
            edge_cut: self.edge_cut(),
            interior_vertices: self.total_interior(),
            interface_vertices: self.total_interface(),
            halo_vertices: self.total_halo(),
            max_part,
            min_part,
            mean_part,
            imbalance: if mean_part > 0.0 { max_part as f64 / mean_part } else { 0.0 },
            halo_ratio: if n > 0 { self.total_halo() as f64 / n as f64 } else { 0.0 },
            interior_fraction: if n > 0 { self.total_interior() as f64 / n as f64 } else { 0.0 },
        }
    }
}

#[cfg(test)]
mod tests {
    use crate::methods::{partition_mesh, PartitionMethod};
    use lms_mesh::{generators, Adjacency};

    #[test]
    fn stats_are_consistent() {
        let m = generators::perturbed_grid(20, 20, 0.3, 3);
        let adj = Adjacency::build(&m);
        let p = partition_mesh(&m, &adj, 4, PartitionMethod::Rcb);
        let s = p.stats();
        assert_eq!(s.num_vertices, m.num_vertices());
        assert_eq!(s.interior_vertices + s.interface_vertices, s.num_vertices);
        assert!(s.max_part >= s.min_part);
        assert!(s.imbalance >= 1.0 - 1e-12);
        assert!(s.halo_ratio > 0.0 && s.halo_ratio < 1.0);
        assert!(s.interior_fraction > 0.5, "grid parts should be mostly interior");
        assert!(s.interior_interface_ratio() > 1.0);
        let shown = format!("{s}");
        assert!(shown.contains("cut=") && shown.contains("imbalance="));
    }

    #[test]
    fn finer_partitions_cut_more() {
        let m = generators::perturbed_grid(24, 24, 0.3, 1);
        let adj = Adjacency::build(&m);
        let cut = |k| partition_mesh(&m, &adj, k, PartitionMethod::Rcb).stats().edge_cut;
        assert!(cut(2) < cut(4));
        assert!(cut(4) < cut(16));
    }
}
