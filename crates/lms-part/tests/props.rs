//! Property tests for partition invariants, across every method and
//! arbitrary perturbed grids:
//!
//! * parts are disjoint and cover the vertex set, sizes within one
//!   (count-balanced methods; the area-weighted splitter balances weight);
//! * interior + interface = owned, and the interface flag is exactly
//!   "has a cross-part neighbour";
//! * halos are exactly the out-of-part 1-ring closure of the interfaces;
//! * the ghost-vertex map is a bijection onto owned-then-halo locals;
//! * the halo-exchange schedule delivers to every halo slot exactly once
//!   — it covers exactly the 1-ring-of-interface closure.

use lms_mesh::{Adjacency, TriMesh};
use lms_part::{partition_mesh, ExchangeSchedule, MessagePlan, Partition, PartitionMethod};
use proptest::prelude::*;

fn arb_mesh() -> impl Strategy<Value = TriMesh> {
    (4usize..16, 4usize..16, 0u64..1000, 0..40u32).prop_map(|(nx, ny, seed, jit)| {
        lms_mesh::generators::perturbed_grid(nx, ny, jit as f64 / 100.0, seed)
    })
}

fn build(mesh: &TriMesh, k: usize, method_ix: usize) -> (Adjacency, Partition) {
    let adj = Adjacency::build(mesh);
    let p = partition_mesh(mesh, &adj, k, PartitionMethod::ALL[method_ix]);
    (adj, p)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn parts_disjoint_cover_and_balanced(
        mesh in arb_mesh(), k in 1usize..9, method_ix in 0usize..4,
    ) {
        let (_, p) = build(&mesh, k, method_ix);
        let mut seen = vec![false; mesh.num_vertices()];
        let mut sizes = Vec::new();
        for q in 0..p.num_parts() {
            sizes.push(p.part(q).len());
            for &v in p.part(q) {
                prop_assert!(!seen[v as usize], "vertex {} owned twice", v);
                seen[v as usize] = true;
                prop_assert_eq!(p.part_of(v), q);
            }
        }
        prop_assert!(seen.iter().all(|&s| s), "some vertex unowned");
        // the weighted splitter balances area shares, not counts — its
        // balance property is unit-tested on graded meshes in lms-part
        if PartitionMethod::ALL[method_ix] != PartitionMethod::RcbWeighted {
            let (lo, hi) = (*sizes.iter().min().unwrap(), *sizes.iter().max().unwrap());
            prop_assert!(hi - lo <= 1, "unbalanced: {:?}", sizes);
        }
    }

    /// The exchange schedule covers exactly the halo — every halo slot of
    /// every part receives exactly one delivery, every delivery resolves
    /// to the right ghost-map local, and only interface vertices send.
    #[test]
    fn exchange_schedule_covers_exactly_the_halo(
        mesh in arb_mesh(), k in 1usize..9, method_ix in 0usize..4,
    ) {
        let (_, p) = build(&mesh, k, method_ix);
        let s = ExchangeSchedule::build(&p);
        prop_assert_eq!(s.num_entries(), p.total_halo());
        let mut deliveries: Vec<Vec<u32>> = (0..p.num_parts())
            .map(|q| vec![0u32; p.part(q).len() + p.halo(q).len()])
            .collect();
        for src in 0..p.num_parts() {
            for (i, &v) in p.part(src).iter().enumerate() {
                let out = s.outgoing(src, i as u32);
                if !out.is_empty() {
                    prop_assert!(p.is_interface(v), "non-interface {} sends", v);
                }
                for &(q, dst) in out {
                    prop_assert_eq!(p.local_of(q, v), Some(dst as usize));
                    deliveries[q as usize][dst as usize] += 1;
                }
            }
        }
        for q in 0..p.num_parts() {
            let owned = p.part(q).len();
            for (slot, &count) in deliveries[q as usize].iter().enumerate() {
                prop_assert_eq!(
                    count,
                    u32::from(slot >= owned),
                    "part {} slot {}", q, slot
                );
            }
        }
    }

    #[test]
    fn halo_is_one_ring_closure_of_interface(
        mesh in arb_mesh(), k in 2usize..9, method_ix in 0usize..4,
    ) {
        let (adj, p) = build(&mesh, k, method_ix);
        for q in 0..p.num_parts() {
            // 1-ring of the interface, outside the part
            let mut expect: Vec<u32> = p
                .interface(q)
                .iter()
                .flat_map(|&v| adj.neighbors(v).iter().copied())
                .filter(|&u| p.part_of(u) != q)
                .collect();
            expect.sort_unstable();
            expect.dedup();
            prop_assert_eq!(p.halo(q), &expect[..], "part {}", q);
        }
    }

    #[test]
    fn interface_flag_matches_topology(
        mesh in arb_mesh(), k in 1usize..9, method_ix in 0usize..4,
    ) {
        let (adj, p) = build(&mesh, k, method_ix);
        for v in 0..mesh.num_vertices() as u32 {
            let crosses = adj.neighbors(v).iter().any(|&w| p.part_of(w) != p.part_of(v));
            prop_assert_eq!(p.is_interface(v), crosses);
        }
        for q in 0..p.num_parts() {
            let mut merged: Vec<u32> = p.interior(q).to_vec();
            merged.extend_from_slice(p.interface(q));
            merged.sort_unstable();
            prop_assert_eq!(&merged[..], p.part(q));
        }
    }

    #[test]
    fn ghost_map_is_owned_then_halo(
        mesh in arb_mesh(), k in 2usize..7, method_ix in 0usize..4,
    ) {
        let (_, p) = build(&mesh, k, method_ix);
        for q in 0..p.num_parts() {
            let owned = p.part(q);
            for (i, &v) in owned.iter().enumerate() {
                prop_assert_eq!(p.local_of(q, v), Some(i));
            }
            for (i, &u) in p.halo(q).iter().enumerate() {
                prop_assert_eq!(p.local_of(q, u), Some(owned.len() + i));
            }
        }
    }

    #[test]
    fn edge_cut_matches_direct_count(
        mesh in arb_mesh(), k in 1usize..9, method_ix in 0usize..4,
    ) {
        let (_, p) = build(&mesh, k, method_ix);
        let direct = mesh
            .edges()
            .iter()
            .filter(|&&(a, b)| p.part_of(a) != p.part_of(b))
            .count();
        prop_assert_eq!(p.edge_cut(), direct);
    }

    /// The message plan is exactly the per-pair regrouping of the
    /// schedule: union of pair entry counts = schedule entries, every
    /// neighbour pair non-empty, destinations ascending without
    /// self-sends.
    #[test]
    fn message_plan_regroups_the_schedule(
        mesh in arb_mesh(), k in 1usize..9, method_ix in 0usize..4,
    ) {
        let (_, p) = build(&mesh, k, method_ix);
        let s = ExchangeSchedule::build(&p);
        let plan = MessagePlan::build(&s);
        prop_assert_eq!(plan.num_parts() as u32, p.num_parts());
        prop_assert_eq!(plan.num_entries(), s.num_entries());
        let mut total = 0usize;
        for src in 0..p.num_parts() {
            let nbrs = plan.neighbors(src);
            let counts = plan.pair_entry_counts(src);
            prop_assert_eq!(nbrs.len(), counts.len());
            prop_assert!(nbrs.windows(2).all(|w| w[0] < w[1]));
            prop_assert!(!nbrs.contains(&src), "self-send in plan");
            prop_assert!(counts.iter().all(|&c| c > 0), "empty pair kept");
            total += counts.iter().map(|&c| c as usize).sum::<usize>();
            // oracle per pair: recount from the delivery lists
            for (&q, &count) in nbrs.iter().zip(counts) {
                let direct: usize = (0..p.part(src).len())
                    .map(|i| {
                        s.outgoing(src, i as u32).iter().filter(|&&(d, _)| d == q).count()
                    })
                    .sum();
                prop_assert_eq!(direct, count as usize, "pair {}->{}", src, q);
            }
        }
        prop_assert_eq!(total, s.num_entries());
    }
}

/// Random `f64` bit patterns — NaNs (quiet and signalling patterns),
/// ±0, infinities, subnormals all included by construction.
fn arb_bits(len: std::ops::Range<usize>) -> impl Strategy<Value = Vec<u64>> {
    proptest::collection::vec(any::<u64>(), len)
}

/// A reader that fragments its byte stream: each `read` call hands out
/// at most the next cap from a cycling list — the socket-stream reality
/// (and the scripted short-write fault) where `read(2)` returns
/// whatever happens to have arrived, one byte included.
struct Dribble<'a> {
    data: &'a [u8],
    pos: usize,
    caps: Vec<usize>,
    turn: usize,
}

impl std::io::Read for Dribble<'_> {
    fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
        let cap = self.caps[self.turn % self.caps.len()];
        self.turn += 1;
        let n = buf.len().min(cap).min(self.data.len() - self.pos);
        buf[..n].copy_from_slice(&self.data[self.pos..self.pos + n]);
        self.pos += n;
        Ok(n)
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Wire-format roundtrip over arbitrary bit patterns: every frame
    /// type carrying `f64` payloads survives encode→decode with the
    /// exact bits, and stream framing (`write_to`/`read_from`) is
    /// lossless for frame sequences.
    #[test]
    fn wire_frames_roundtrip_arbitrary_bit_patterns(
        coord_bits in arb_bits(0..40),
        score_bits in arb_bits(0..20),
        slots in proptest::collection::vec(any::<u32>(), 0..20),
        part in any::<u32>(),
        color in any::<u32>(),
        delta_bits in any::<u64>(),
    ) {
        use lms_part::wire::Frame;
        let coords: Vec<f64> = coord_bits.iter().map(|&b| f64::from_bits(b)).collect();
        let scores: Vec<(f64, bool)> =
            score_bits.iter().map(|&b| (f64::from_bits(b), b % 2 == 0)).collect();
        let frames = vec![
            Frame::Gather { coords: coords.clone(), scores },
            Frame::ColorStep { color },
            Frame::HaloDelta {
                part,
                slots: slots.clone(),
                coords: coords.iter().copied().cycle().take(slots.len() * 2).collect(),
            },
            Frame::Report {
                delta: f64::from_bits(delta_bits),
                phases: lms_trace::RankPhaseNanos {
                    interior_ns: delta_bits,
                    color_ns: delta_bits.rotate_left(17),
                    finish_ns: part as u64,
                    moved: color as u64,
                },
            },
            Frame::Scatter { coords },
            Frame::RoundDone,
            Frame::Shutdown,
        ];
        let mut stream = Vec::new();
        for frame in &frames {
            frame.write_to(&mut stream).unwrap();
        }
        let mut cursor: &[u8] = &stream;
        for frame in &frames {
            let back = Frame::read_from(&mut cursor).expect("stream decode");
            // NaN payloads make PartialEq useless; exact-bit equality is
            // what the protocol guarantees, so compare re-encodings
            prop_assert_eq!(frame.encode(), back.encode());
        }
        prop_assert!(cursor.is_empty(), "stream must be fully consumed");
    }

    /// Stream fragmentation is invisible to frame decode: reading the
    /// same encoded stream through a reader that dribbles out arbitrary
    /// small chunks per syscall — down to one byte at a time, the
    /// worst case a TCP stream (or a scripted short-write fault) can
    /// present — yields exactly the frames a whole-buffer decode does.
    #[test]
    fn frames_decode_identically_through_any_fragmentation(
        coord_bits in arb_bits(0..24),
        slots in proptest::collection::vec(any::<u32>(), 0..12),
        part in any::<u32>(),
        color in any::<u32>(),
        chunks in proptest::collection::vec(1usize..7, 1..6),
    ) {
        use lms_part::wire::Frame;
        let coords: Vec<f64> = coord_bits.iter().map(|&b| f64::from_bits(b)).collect();
        let frames = vec![
            Frame::Gather {
                coords: coords.clone(),
                scores: coord_bits.iter().map(|&b| (f64::from_bits(b), b % 3 == 0)).collect(),
            },
            Frame::ColorStep { color },
            Frame::HaloDelta {
                part,
                slots: slots.clone(),
                coords: coords.iter().copied().cycle().take(slots.len() * 2).collect(),
            },
            Frame::RoundDone,
            Frame::Shutdown,
        ];
        let mut stream = Vec::new();
        for frame in &frames {
            frame.write_to(&mut stream).unwrap();
        }
        // arbitrary split points (cycling chunk caps), then the
        // maximally fragmented stream: one byte per read
        for caps in [chunks.clone(), vec![1]] {
            let mut rd = Dribble { data: &stream, pos: 0, caps: caps.clone(), turn: 0 };
            for frame in &frames {
                let back = Frame::read_from(&mut rd).expect("fragmented decode");
                prop_assert_eq!(frame.encode(), back.encode(), "caps {:?}", caps);
            }
            prop_assert_eq!(rd.pos, stream.len(), "stream fully consumed");
        }
    }

    /// Truncating an encoded frame at ANY point — mid length prefix,
    /// mid checksum, mid payload — makes `read_from` return a typed
    /// error (never a panic, never a bogus frame), whether the bytes
    /// arrive whole or dribbled.
    #[test]
    fn truncated_streams_are_rejected_never_panic(
        coord_bits in arb_bits(1..8),
        part in any::<u32>(),
    ) {
        use lms_part::wire::Frame;
        let frame = Frame::HaloDelta {
            part,
            slots: (0..coord_bits.len() as u32 / 2).collect(),
            coords: coord_bits.iter().map(|&b| f64::from_bits(b)).collect(),
        };
        let mut stream = Vec::new();
        frame.write_to(&mut stream).unwrap();
        // exhaustive over cut points for this payload
        for cut in 0..stream.len() {
            let torn = &stream[..cut];
            prop_assert!(
                Frame::read_from(&mut &torn[..]).is_err(),
                "cut at {} of {} must be rejected",
                cut,
                stream.len()
            );
            let mut rd = Dribble { data: torn, pos: 0, caps: vec![1], turn: 0 };
            prop_assert!(
                Frame::read_from(&mut rd).is_err(),
                "dribbled cut at {} must be rejected",
                cut
            );
        }
    }

    /// The overlap multiplexer's arrival model: several ranks' streams
    /// dribble into per-rank [`Reassembly`] buffers in an arbitrary
    /// global interleaving, partial frames included — exactly what one
    /// `poll(2)` pass over all rank fds produces. Whatever the
    /// interleaving and chunk sizes, every stream decodes to exactly
    /// the frames a sequential whole-buffer decode yields, in order,
    /// with no frame lost, duplicated, misrouted across streams, or
    /// left stalled in a buffer once all bytes have arrived.
    #[test]
    fn interleaved_multiplexed_arrival_decodes_like_sequential(
        coord_bits in arb_bits(0..16),
        parts_frames in proptest::collection::vec(1usize..6, 2..5),
        chunk_caps in proptest::collection::vec(1usize..23, 1..8),
        order_seed in any::<u64>(),
    ) {
        use lms_part::wire::{Frame, Reassembly};
        let nstreams = parts_frames.len();
        // per-stream frame sequences with distinguishable payloads
        let streams: Vec<Vec<Frame>> = parts_frames
            .iter()
            .enumerate()
            .map(|(s, &n)| {
                (0..n)
                    .map(|i| {
                        let slots: Vec<u32> = (0..(i as u32 % 5)).collect();
                        Frame::HaloDelta {
                            part: (s * 100 + i) as u32,
                            coords: coord_bits
                                .iter()
                                .map(|&b| f64::from_bits(b))
                                .cycle()
                                .take(slots.len() * 2)
                                .collect(),
                            slots,
                        }
                    })
                    .chain(std::iter::once(Frame::RoundDone))
                    .collect()
            })
            .collect();
        let encoded: Vec<Vec<u8>> = streams
            .iter()
            .map(|fs| {
                let mut buf = Vec::new();
                for f in fs {
                    f.write_to(&mut buf).unwrap();
                }
                buf
            })
            .collect();
        // interleave: a cheap LCG picks which stream dribbles its next
        // chunk; chunk sizes cycle through the cap list so cuts land
        // mid length-prefix, mid checksum, mid payload
        let mut pos = vec![0usize; nstreams];
        let mut reasm: Vec<Reassembly> = (0..nstreams).map(|_| Reassembly::new()).collect();
        let mut decoded: Vec<Vec<Frame>> = vec![Vec::new(); nstreams];
        let mut rng = order_seed | 1;
        let mut turn = 0usize;
        while (0..nstreams).any(|s| pos[s] < encoded[s].len()) {
            rng = rng.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            let pick = (rng >> 33) as usize % nstreams;
            let s = (0..nstreams)
                .map(|d| (pick + d) % nstreams)
                .find(|&s| pos[s] < encoded[s].len())
                .unwrap();
            let cap = chunk_caps[turn % chunk_caps.len()];
            turn += 1;
            let n = cap.min(encoded[s].len() - pos[s]);
            reasm[s].extend(&encoded[s][pos[s]..pos[s] + n]);
            pos[s] += n;
            // drain every stream's complete frames after each chunk —
            // the multiplexer decodes eagerly, mid-arrival
            for q in 0..nstreams {
                while let Some(f) = reasm[q].next_frame().expect("interleaved decode") {
                    decoded[q].push(f);
                }
            }
        }
        for s in 0..nstreams {
            prop_assert!(reasm[s].is_empty(), "stream {} stalled {} bytes", s, reasm[s].buffered());
            prop_assert_eq!(decoded[s].len(), streams[s].len(), "stream {} frame count", s);
            for (a, b) in streams[s].iter().zip(&decoded[s]) {
                prop_assert_eq!(a.encode(), b.encode(), "stream {} frame mismatch", s);
            }
        }
    }

    /// Corrupting ANY single byte of an encoded frame — length prefix,
    /// checksum, or payload, any bit — is rejected by `read_from` with a
    /// typed `WireError`: the CRC32c covers the length prefix and the
    /// payload, so no single-byte corruption can yield a decoded frame.
    #[test]
    fn corrupting_any_single_byte_of_a_frame_is_rejected(
        coord_bits in arb_bits(1..12),
        slots in proptest::collection::vec(any::<u32>(), 1..8),
        part in any::<u32>(),
        mask in 1u8..=255,
    ) {
        use lms_part::wire::Frame;
        let frames = vec![
            Frame::HaloDelta {
                part,
                slots: slots.clone(),
                coords: coord_bits
                    .iter()
                    .map(|&b| f64::from_bits(b))
                    .cycle()
                    .take(slots.len() * 2)
                    .collect(),
            },
            Frame::Gather {
                coords: coord_bits.iter().map(|&b| f64::from_bits(b)).collect(),
                scores: coord_bits.iter().map(|&b| (f64::from_bits(b), b % 2 == 0)).collect(),
            },
            Frame::Hello {
                version: lms_part::wire::WIRE_VERSION,
                dim: 2,
                rank: part,
                profile: part.is_multiple_of(2),
            },
            Frame::Report {
                delta: f64::from_bits(coord_bits[0]),
                phases: lms_trace::RankPhaseNanos::default(),
            },
        ];
        for frame in &frames {
            let mut stream = Vec::new();
            frame.write_to(&mut stream).unwrap();
            // exhaustive over byte positions for this (frame, mask) pair
            for i in 0..stream.len() {
                let mut torn = stream.clone();
                torn[i] ^= mask;
                prop_assert!(
                    Frame::read_from(&mut torn.as_slice()).is_err(),
                    "flipping byte {} with mask {:#04x} must be rejected",
                    i,
                    mask
                );
            }
        }
    }
}
