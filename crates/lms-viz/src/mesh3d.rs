//! Tetrahedral-mesh surface rendering.
//!
//! Renders the boundary surface of a [`lms_mesh3d::TetMesh`] as an SVG:
//! boundary faces are extracted (faces belonging to exactly one tet),
//! projected isometrically, depth-sorted (painter's algorithm) and filled
//! with the same quality colour map the 2D renders use, shaded by a simple
//! directional light so the 3D shape reads.

use crate::svg::{quality_color, Color, Svg};
use lms_mesh3d::geometry::Point3;
use lms_mesh3d::quality::{tet_qualities, TetQualityMetric};
use lms_mesh3d::TetMesh;

/// Styling of a 3D surface render.
#[derive(Debug, Clone)]
pub struct Mesh3Style {
    /// Image width in pixels (height follows the projected aspect ratio).
    pub width: f64,
    /// Colour faces by the owning tet's quality (else flat grey).
    pub color_by_quality: bool,
    /// Quality metric for colouring.
    pub metric: TetQualityMetric,
    /// Edge stroke width (0 disables edges).
    pub stroke_width: f64,
}

impl Default for Mesh3Style {
    fn default() -> Self {
        Mesh3Style {
            width: 640.0,
            color_by_quality: true,
            metric: TetQualityMetric::EdgeLengthRatio,
            stroke_width: 0.3,
        }
    }
}

/// Isometric-ish projection: returns `(screen_x, screen_y, depth)`.
fn project(p: Point3) -> (f64, f64, f64) {
    // rotate 30° about y then 25° about x, orthographic
    let (sy, cy) = (30f64.to_radians().sin(), 30f64.to_radians().cos());
    let (sx, cx) = (25f64.to_radians().sin(), 25f64.to_radians().cos());
    let x1 = p.x * cy + p.z * sy;
    let z1 = -p.x * sy + p.z * cy;
    let y2 = p.y * cx - z1 * sx;
    let z2 = p.y * sx + z1 * cx;
    (x1, -y2, z2)
}

/// A boundary face together with the tet that owns it.
fn boundary_faces(mesh: &TetMesh) -> Vec<([u32; 3], u32)> {
    let mut faces: Vec<([u32; 3], u32)> = Vec::with_capacity(4 * mesh.num_tets());
    for (t, &tet) in mesh.tets().iter().enumerate() {
        for f in TetMesh::tet_faces_sorted(tet) {
            faces.push((f, t as u32));
        }
    }
    faces.sort_unstable();
    let mut out = Vec::new();
    let mut i = 0;
    while i < faces.len() {
        let mut j = i + 1;
        while j < faces.len() && faces[j].0 == faces[i].0 {
            j += 1;
        }
        if j - i == 1 {
            out.push(faces[i]);
        }
        i = j;
    }
    out
}

/// Render the boundary surface of `mesh`.
pub fn render_tet_surface(mesh: &TetMesh, style: &Mesh3Style) -> Svg {
    let tq = if style.color_by_quality { tet_qualities(mesh, style.metric) } else { Vec::new() };
    let faces = boundary_faces(mesh);

    // project all vertices once
    let projected: Vec<(f64, f64, f64)> = mesh.coords().iter().map(|&p| project(p)).collect();

    // screen bounding box
    let (mut lo_x, mut lo_y, mut hi_x, mut hi_y) =
        (f64::INFINITY, f64::INFINITY, f64::NEG_INFINITY, f64::NEG_INFINITY);
    for &(x, y, _) in &projected {
        lo_x = lo_x.min(x);
        lo_y = lo_y.min(y);
        hi_x = hi_x.max(x);
        hi_y = hi_y.max(y);
    }
    if !lo_x.is_finite() {
        return Svg::new(style.width, style.width);
    }
    let margin = 8.0;
    let scale = (style.width - 2.0 * margin) / (hi_x - lo_x).max(f64::MIN_POSITIVE);
    let height = (hi_y - lo_y) * scale + 2.0 * margin;
    let to_screen = |x: f64, y: f64| ((x - lo_x) * scale + margin, (y - lo_y) * scale + margin);

    // painter's algorithm: far faces first (largest mean depth first, with
    // z2 pointing towards the viewer negative — draw descending depth)
    let mut order: Vec<usize> = (0..faces.len()).collect();
    let depth = |f: &[u32; 3]| f.iter().map(|&v| projected[v as usize].2).sum::<f64>() / 3.0;
    order.sort_by(|&a, &b| {
        depth(&faces[b].0).partial_cmp(&depth(&faces[a].0)).unwrap_or(std::cmp::Ordering::Equal)
    });

    let light = Point3::new(0.4, 0.8, -0.45);
    let light = light / light.norm();

    let mut svg = Svg::new(style.width, height);
    for idx in order {
        let (face, owner) = faces[idx];
        let pts: Vec<(f64, f64)> = face
            .iter()
            .map(|&v| {
                let (x, y, _) = projected[v as usize];
                to_screen(x, y)
            })
            .collect();
        // world-space normal for shading
        let [a, b, c] = face.map(|v| mesh.coords()[v as usize]);
        let n = (b - a).cross(c - a);
        let shade =
            if n.norm() > 0.0 { 0.55 + 0.45 * (n / n.norm()).dot(light).abs() } else { 0.55 };
        let base = if style.color_by_quality {
            quality_color(tq[owner as usize])
        } else {
            Color { r: 170, g: 175, b: 185 }
        };
        let fill = Color { r: 0, g: 0, b: 0 }.lerp(base, shade);
        let stroke = if style.stroke_width > 0.0 {
            Some((Color { r: 30, g: 30, b: 40 }, style.stroke_width))
        } else {
            None
        };
        svg.polygon(&pts, fill, stroke);
    }
    svg
}

#[cfg(test)]
mod tests {
    use super::*;
    use lms_mesh3d::corner_tet;
    use lms_mesh3d::generators::{perturbed_tet_grid, tet_grid};

    #[test]
    fn surface_of_single_tet_has_four_faces() {
        let faces = boundary_faces(&corner_tet());
        assert_eq!(faces.len(), 4);
    }

    #[test]
    fn grid_surface_matches_boundary_count() {
        let m = tet_grid(3, 3, 3);
        let b = lms_mesh3d::Boundary3::detect(&m);
        assert_eq!(boundary_faces(&m).len(), b.num_boundary_faces());
    }

    #[test]
    fn render_produces_polygons() {
        let m = perturbed_tet_grid(4, 4, 4, 0.3, 1);
        let svg = render_tet_surface(&m, &Mesh3Style::default()).render();
        assert!(svg.contains("<svg"));
        let polys = svg.matches("<polygon").count();
        let b = lms_mesh3d::Boundary3::detect(&m);
        assert_eq!(polys, b.num_boundary_faces());
    }

    #[test]
    fn flat_style_renders_without_quality() {
        let m = tet_grid(2, 2, 2);
        let style = Mesh3Style { color_by_quality: false, ..Default::default() };
        let svg = render_tet_surface(&m, &style).render();
        assert!(svg.contains("<polygon"));
    }

    #[test]
    fn empty_mesh_renders_empty_canvas() {
        let m = lms_mesh3d::TetMesh::new(Vec::new(), Vec::new()).unwrap();
        let svg = render_tet_surface(&m, &Mesh3Style::default()).render();
        assert!(svg.contains("<svg"));
        assert!(!svg.contains("<polygon"));
    }

    #[test]
    fn projection_preserves_depth_ordering() {
        // a point farther along +z (after rotation) must get larger depth
        let near = project(Point3::new(0.0, 0.0, -1.0));
        let far = project(Point3::new(0.0, 0.0, 1.0));
        assert!(far.2 > near.2);
    }
}
