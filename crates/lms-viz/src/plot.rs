//! Minimal 2D plotting: line/scatter charts with linear or log-10 axes
//! and grouped bar charts — the shapes of the paper's Figures 1, 6, 9
//! and 12.

use crate::svg::{Color, Svg, SERIES_COLORS};

/// Axis scale.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    /// Linear axis.
    Linear,
    /// Base-10 logarithmic axis (values must be positive; non-positive
    /// points are dropped).
    Log10,
}

/// One named data series.
#[derive(Debug, Clone, PartialEq)]
pub struct Series {
    /// Legend label.
    pub name: String,
    /// `(x, y)` samples in drawing order.
    pub points: Vec<(f64, f64)>,
}

impl Series {
    /// Construct from anything iterable.
    pub fn new(name: impl Into<String>, points: impl IntoIterator<Item = (f64, f64)>) -> Series {
        Series { name: name.into(), points: points.into_iter().collect() }
    }
}

/// A line/scatter chart under construction.
#[derive(Debug, Clone)]
pub struct Chart {
    /// Title printed above the plot area.
    pub title: String,
    /// X-axis label.
    pub x_label: String,
    /// Y-axis label.
    pub y_label: String,
    /// X-axis scale.
    pub x_scale: Scale,
    /// Y-axis scale.
    pub y_scale: Scale,
    /// Draw sample markers in addition to lines.
    pub markers: bool,
    series: Vec<Series>,
}

impl Chart {
    /// Empty linear-axes chart.
    pub fn new(title: impl Into<String>) -> Chart {
        Chart {
            title: title.into(),
            x_label: String::new(),
            y_label: String::new(),
            x_scale: Scale::Linear,
            y_scale: Scale::Linear,
            markers: false,
            series: Vec::new(),
        }
    }

    /// Builder: axis labels.
    pub fn labels(mut self, x: impl Into<String>, y: impl Into<String>) -> Chart {
        self.x_label = x.into();
        self.y_label = y.into();
        self
    }

    /// Builder: y-axis log scale.
    pub fn log_y(mut self) -> Chart {
        self.y_scale = Scale::Log10;
        self
    }

    /// Builder: draw markers.
    pub fn with_markers(mut self) -> Chart {
        self.markers = true;
        self
    }

    /// Builder: append a series.
    pub fn series(mut self, s: Series) -> Chart {
        self.series.push(s);
        self
    }

    /// Number of series added so far.
    pub fn num_series(&self) -> usize {
        self.series.len()
    }

    /// Render at the given pixel size.
    pub fn render(&self, width: f64, height: f64) -> Svg {
        let mut svg = Svg::new(width, height);
        let (ml, mr, mt, mb) = (58.0, 14.0, 30.0, 44.0);
        let (px0, px1) = (ml, width - mr);
        let (py0, py1) = (height - mb, mt); // y flipped

        let map = |v: f64, scale: Scale| match scale {
            Scale::Linear => Some(v),
            Scale::Log10 => (v > 0.0).then(|| v.log10()),
        };
        // transformed extents over all series
        let mut xs = Vec::new();
        let mut ys = Vec::new();
        for s in &self.series {
            for &(x, y) in &s.points {
                if let (Some(x), Some(y)) = (map(x, self.x_scale), map(y, self.y_scale)) {
                    xs.push(x);
                    ys.push(y);
                }
            }
        }
        let (x_min, x_max) = extent(&xs);
        let (y_min, y_max) = extent(&ys);
        let sx = |x: f64| px0 + (x - x_min) / (x_max - x_min).max(1e-300) * (px1 - px0);
        let sy = |y: f64| py0 + (y - y_min) / (y_max - y_min).max(1e-300) * (py1 - py0);

        // frame + ticks
        let axis = Color::rgb(80, 80, 80);
        svg.line(px0, py0, px1, py0, axis, 1.0);
        svg.line(px0, py0, px0, py1, axis, 1.0);
        for i in 0..=4 {
            let t = i as f64 / 4.0;
            let xv = x_min + t * (x_max - x_min);
            let yv = y_min + t * (y_max - y_min);
            svg.line(sx(xv), py0, sx(xv), py0 + 4.0, axis, 1.0);
            svg.text(sx(xv), py0 + 16.0, 10.0, "middle", &tick_label(xv, self.x_scale));
            svg.line(px0 - 4.0, sy(yv), px0, sy(yv), axis, 1.0);
            svg.text(px0 - 6.0, sy(yv) + 3.5, 10.0, "end", &tick_label(yv, self.y_scale));
        }
        svg.text((px0 + px1) / 2.0, height - 8.0, 12.0, "middle", &self.x_label);
        svg.text(14.0, mt - 8.0, 12.0, "start", &self.y_label);
        svg.text((px0 + px1) / 2.0, 16.0, 13.0, "middle", &self.title);

        // series
        for (i, s) in self.series.iter().enumerate() {
            let color = SERIES_COLORS[i % SERIES_COLORS.len()];
            let pts: Vec<(f64, f64)> = s
                .points
                .iter()
                .filter_map(|&(x, y)| Some((sx(map(x, self.x_scale)?), sy(map(y, self.y_scale)?))))
                .collect();
            svg.polyline(&pts, color, 1.6);
            if self.markers {
                for &(x, y) in &pts {
                    svg.circle(x, y, 2.2, color);
                }
            }
            // legend entry
            let ly = mt + 14.0 * i as f64;
            svg.line(px1 - 84.0, ly, px1 - 64.0, ly, color, 2.0);
            svg.text(px1 - 60.0, ly + 3.5, 10.0, "start", &s.name);
        }
        svg
    }
}

/// A grouped bar chart (Figure 9's per-mesh miss-rate bars).
#[derive(Debug, Clone)]
pub struct BarChart {
    /// Title printed above the plot area.
    pub title: String,
    /// Y-axis label.
    pub y_label: String,
    /// Category labels (x positions).
    pub categories: Vec<String>,
    /// `(series name, one value per category)`.
    pub groups: Vec<(String, Vec<f64>)>,
}

impl BarChart {
    /// Empty chart.
    pub fn new(title: impl Into<String>, y_label: impl Into<String>) -> BarChart {
        BarChart {
            title: title.into(),
            y_label: y_label.into(),
            categories: Vec::new(),
            groups: Vec::new(),
        }
    }

    /// Builder: the category axis.
    pub fn categories(mut self, cats: impl IntoIterator<Item = impl Into<String>>) -> BarChart {
        self.categories = cats.into_iter().map(Into::into).collect();
        self
    }

    /// Builder: one bar series (must match the category count).
    pub fn group(mut self, name: impl Into<String>, values: Vec<f64>) -> BarChart {
        assert_eq!(values.len(), self.categories.len(), "group length != #categories");
        self.groups.push((name.into(), values));
        self
    }

    /// Render at the given pixel size.
    pub fn render(&self, width: f64, height: f64) -> Svg {
        let mut svg = Svg::new(width, height);
        let (ml, mr, mt, mb) = (58.0, 14.0, 30.0, 44.0);
        let (px0, px1) = (ml, width - mr);
        let py0 = height - mb;
        let py1 = mt;
        let y_max = self
            .groups
            .iter()
            .flat_map(|(_, v)| v.iter().copied())
            .fold(0.0f64, f64::max)
            .max(1e-300);
        let sy = |v: f64| py0 - (v / y_max) * (py0 - py1);

        let axis = Color::rgb(80, 80, 80);
        svg.line(px0, py0, px1, py0, axis, 1.0);
        svg.line(px0, py0, px0, py1, axis, 1.0);
        for i in 0..=4 {
            let v = y_max * i as f64 / 4.0;
            svg.line(px0 - 4.0, sy(v), px0, sy(v), axis, 1.0);
            svg.text(px0 - 6.0, sy(v) + 3.5, 10.0, "end", &format!("{v:.2}"));
        }
        svg.text((px0 + px1) / 2.0, 16.0, 13.0, "middle", &self.title);
        svg.text(14.0, mt - 8.0, 12.0, "start", &self.y_label);

        let ncat = self.categories.len().max(1);
        let nser = self.groups.len().max(1);
        let slot = (px1 - px0) / ncat as f64;
        let bar_w = slot * 0.8 / nser as f64;
        for (ci, cat) in self.categories.iter().enumerate() {
            let cx = px0 + slot * (ci as f64 + 0.5);
            svg.text(cx, py0 + 16.0, 10.0, "middle", cat);
            for (si, (_, values)) in self.groups.iter().enumerate() {
                let v = values[ci];
                let x = cx - slot * 0.4 + bar_w * si as f64;
                svg.rect(x, sy(v), bar_w.max(0.5), (py0 - sy(v)).max(0.0), series_color(si));
            }
        }
        for (si, (name, _)) in self.groups.iter().enumerate() {
            let ly = mt + 14.0 * si as f64;
            svg.rect(px1 - 84.0, ly - 6.0, 12.0, 8.0, series_color(si));
            svg.text(px1 - 68.0, ly + 1.5, 10.0, "start", name);
        }
        svg
    }
}

fn series_color(i: usize) -> Color {
    SERIES_COLORS[i % SERIES_COLORS.len()]
}

fn extent(values: &[f64]) -> (f64, f64) {
    let mut min = f64::INFINITY;
    let mut max = f64::NEG_INFINITY;
    for &v in values {
        min = min.min(v);
        max = max.max(v);
    }
    if !min.is_finite() || !max.is_finite() {
        (0.0, 1.0)
    } else if min == max {
        (min - 0.5, max + 0.5)
    } else {
        (min, max)
    }
}

fn tick_label(v: f64, scale: Scale) -> String {
    match scale {
        Scale::Linear => {
            if v.abs() >= 1000.0 {
                format!("{:.0}k", v / 1000.0)
            } else if v.abs() >= 10.0 || v == 0.0 {
                format!("{v:.0}")
            } else {
                format!("{v:.2}")
            }
        }
        // v is already log10(value)
        Scale::Log10 => format!("1e{v:.1}"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chart_renders_every_series_as_a_polyline() {
        let svg = Chart::new("t")
            .labels("x", "y")
            .with_markers()
            .series(Series::new("a", [(0.0, 1.0), (1.0, 2.0), (2.0, 1.5)]))
            .series(Series::new("b", [(0.0, 3.0), (2.0, 0.5)]))
            .render(320.0, 200.0);
        let out = svg.render();
        assert_eq!(out.matches("<polyline").count(), 2);
        assert!(out.contains(">a</text>") && out.contains(">b</text>"));
        assert!(out.matches("<circle").count() >= 5);
    }

    #[test]
    fn log_scale_drops_nonpositive_points() {
        let svg = Chart::new("log")
            .log_y()
            .series(Series::new("s", [(0.0, 0.0), (1.0, 10.0), (2.0, 100.0)]))
            .render(320.0, 200.0);
        let out = svg.render();
        // the polyline survives with the two positive points
        assert_eq!(out.matches("<polyline").count(), 1);
        assert!(out.contains("1e"));
    }

    #[test]
    fn degenerate_extents_do_not_panic() {
        let svg = Chart::new("flat")
            .series(Series::new("s", [(1.0, 5.0), (2.0, 5.0)]))
            .render(320.0, 200.0);
        assert!(svg.render().contains("<polyline"));
        // empty chart renders the frame only
        let empty = Chart::new("none").render(100.0, 100.0);
        assert!(empty.render().contains("<line"));
    }

    #[test]
    fn bar_chart_draws_categories_times_groups_bars() {
        let svg = BarChart::new("misses", "rate")
            .categories(["M1", "M2", "M3"])
            .group("ori", vec![0.5, 0.4, 0.3])
            .group("rdr", vec![0.2, 0.1, 0.15])
            .render(400.0, 220.0);
        let out = svg.render();
        // background + 3×2 bars + 2 legend chips + 48? no colour bar here:
        // count rects minus background and legend chips
        let rects = out.matches("<rect").count();
        assert_eq!(rects, 1 + 6 + 2);
        assert!(out.contains("M2") && out.contains(">rdr</text>"));
    }

    #[test]
    #[should_panic(expected = "group length")]
    fn mismatched_group_length_panics() {
        let _ = BarChart::new("x", "y").categories(["a", "b"]).group("s", vec![1.0]);
    }
}
