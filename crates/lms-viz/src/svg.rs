//! A minimal SVG document builder — just enough vocabulary for mesh
//! renders and 2D plots, with no dependencies.
//!
//! All coordinates are in user units with the origin at the top-left
//! (standard SVG convention); the plotting layer flips the y axis itself.

use std::fmt::Write as _;
use std::io;
use std::path::Path;

/// An RGB colour.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Color {
    /// Red channel.
    pub r: u8,
    /// Green channel.
    pub g: u8,
    /// Blue channel.
    pub b: u8,
}

impl Color {
    /// Construct from channels.
    pub const fn rgb(r: u8, g: u8, b: u8) -> Color {
        Color { r, g, b }
    }

    /// `#rrggbb` form.
    pub fn hex(self) -> String {
        format!("#{:02x}{:02x}{:02x}", self.r, self.g, self.b)
    }

    /// Linear interpolation between two colours (`t` clamped to `[0, 1]`).
    pub fn lerp(self, other: Color, t: f64) -> Color {
        let t = t.clamp(0.0, 1.0);
        let mix = |a: u8, b: u8| (a as f64 + (b as f64 - a as f64) * t).round() as u8;
        Color::rgb(mix(self.r, other.r), mix(self.g, other.g), mix(self.b, other.b))
    }
}

/// A perceptually-reasonable blue→green→yellow quality ramp (a compact
/// viridis approximation): 0 = worst quality (dark blue), 1 = best
/// (yellow).
pub fn quality_color(q: f64) -> Color {
    const STOPS: [(f64, Color); 5] = [
        (0.00, Color::rgb(68, 1, 84)),
        (0.25, Color::rgb(59, 82, 139)),
        (0.50, Color::rgb(33, 145, 140)),
        (0.75, Color::rgb(94, 201, 98)),
        (1.00, Color::rgb(253, 231, 37)),
    ];
    let q = q.clamp(0.0, 1.0);
    for w in STOPS.windows(2) {
        let (t0, c0) = w[0];
        let (t1, c1) = w[1];
        if q <= t1 {
            return c0.lerp(c1, (q - t0) / (t1 - t0));
        }
    }
    STOPS[4].1
}

/// A categorical palette for plot series (ORI / BFS / RDR and friends).
pub const SERIES_COLORS: [Color; 6] = [
    Color::rgb(214, 69, 65),   // red (ori)
    Color::rgb(52, 119, 219),  // blue (bfs)
    Color::rgb(38, 166, 91),   // green (rdr)
    Color::rgb(243, 156, 18),  // orange
    Color::rgb(142, 68, 173),  // purple
    Color::rgb(127, 140, 141), // grey
];

/// An SVG document under construction.
#[derive(Debug, Clone)]
pub struct Svg {
    width: f64,
    height: f64,
    body: String,
}

fn fmt_num(x: f64) -> String {
    // trim trailing zeros for compact output
    let s = format!("{x:.2}");
    s.trim_end_matches('0').trim_end_matches('.').to_string()
}

impl Svg {
    /// New document of the given pixel size (white background).
    pub fn new(width: f64, height: f64) -> Svg {
        let mut svg = Svg { width, height, body: String::new() };
        svg.rect(0.0, 0.0, width, height, Color::rgb(255, 255, 255));
        svg
    }

    /// Document width.
    pub fn width(&self) -> f64 {
        self.width
    }

    /// Document height.
    pub fn height(&self) -> f64 {
        self.height
    }

    /// Filled rectangle.
    pub fn rect(&mut self, x: f64, y: f64, w: f64, h: f64, fill: Color) {
        let _ = writeln!(
            self.body,
            r#"<rect x="{}" y="{}" width="{}" height="{}" fill="{}"/>"#,
            fmt_num(x),
            fmt_num(y),
            fmt_num(w),
            fmt_num(h),
            fill.hex()
        );
    }

    /// Stroked line segment.
    pub fn line(&mut self, x1: f64, y1: f64, x2: f64, y2: f64, stroke: Color, width: f64) {
        let _ = writeln!(
            self.body,
            r#"<line x1="{}" y1="{}" x2="{}" y2="{}" stroke="{}" stroke-width="{}"/>"#,
            fmt_num(x1),
            fmt_num(y1),
            fmt_num(x2),
            fmt_num(y2),
            stroke.hex(),
            fmt_num(width)
        );
    }

    /// Filled (optionally stroked) polygon.
    pub fn polygon(&mut self, points: &[(f64, f64)], fill: Color, stroke: Option<(Color, f64)>) {
        let pts: Vec<String> =
            points.iter().map(|&(x, y)| format!("{},{}", fmt_num(x), fmt_num(y))).collect();
        match stroke {
            Some((c, w)) => {
                let _ = writeln!(
                    self.body,
                    r#"<polygon points="{}" fill="{}" stroke="{}" stroke-width="{}"/>"#,
                    pts.join(" "),
                    fill.hex(),
                    c.hex(),
                    fmt_num(w)
                );
            }
            None => {
                let _ = writeln!(
                    self.body,
                    r#"<polygon points="{}" fill="{}"/>"#,
                    pts.join(" "),
                    fill.hex()
                );
            }
        }
    }

    /// Stroked open polyline.
    pub fn polyline(&mut self, points: &[(f64, f64)], stroke: Color, width: f64) {
        if points.len() < 2 {
            return;
        }
        let pts: Vec<String> =
            points.iter().map(|&(x, y)| format!("{},{}", fmt_num(x), fmt_num(y))).collect();
        let _ = writeln!(
            self.body,
            r#"<polyline points="{}" fill="none" stroke="{}" stroke-width="{}"/>"#,
            pts.join(" "),
            stroke.hex(),
            fmt_num(width)
        );
    }

    /// Filled circle.
    pub fn circle(&mut self, cx: f64, cy: f64, r: f64, fill: Color) {
        let _ = writeln!(
            self.body,
            r#"<circle cx="{}" cy="{}" r="{}" fill="{}"/>"#,
            fmt_num(cx),
            fmt_num(cy),
            fmt_num(r),
            fill.hex()
        );
    }

    /// Text anchored at `(x, y)` (baseline). `anchor` is one of `start`,
    /// `middle`, `end`.
    pub fn text(&mut self, x: f64, y: f64, size: f64, anchor: &str, content: &str) {
        let _ = writeln!(
            self.body,
            r##"<text x="{}" y="{}" font-size="{}" font-family="sans-serif" text-anchor="{}" fill="#333333">{}</text>"##,
            fmt_num(x),
            fmt_num(y),
            fmt_num(size),
            anchor,
            escape(content)
        );
    }

    /// Serialise the document.
    pub fn render(&self) -> String {
        format!(
            "<?xml version=\"1.0\" encoding=\"UTF-8\"?>\n<svg xmlns=\"http://www.w3.org/2000/svg\" width=\"{w}\" height=\"{h}\" viewBox=\"0 0 {w} {h}\">\n{body}</svg>\n",
            w = fmt_num(self.width),
            h = fmt_num(self.height),
            body = self.body
        )
    }

    /// Write the document to `path`, creating parent directories.
    pub fn write_to(&self, path: &Path) -> io::Result<()> {
        if let Some(parent) = path.parent() {
            std::fs::create_dir_all(parent)?;
        }
        std::fs::write(path, self.render())
    }
}

/// Escape text content for XML.
fn escape(s: &str) -> String {
    s.replace('&', "&amp;").replace('<', "&lt;").replace('>', "&gt;")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn colors_roundtrip_hex_and_lerp() {
        assert_eq!(Color::rgb(255, 0, 128).hex(), "#ff0080");
        let mid = Color::rgb(0, 0, 0).lerp(Color::rgb(200, 100, 50), 0.5);
        assert_eq!(mid, Color::rgb(100, 50, 25));
        // clamping
        assert_eq!(Color::rgb(0, 0, 0).lerp(Color::rgb(10, 10, 10), 7.0), Color::rgb(10, 10, 10));
    }

    #[test]
    fn quality_ramp_is_monotone_in_brightness() {
        // brightness (sum of channels) should grow with quality
        let lum = |q: f64| {
            let c = quality_color(q);
            c.r as u32 + c.g as u32 + c.b as u32
        };
        let mut prev = lum(0.0);
        for i in 1..=10 {
            let cur = lum(i as f64 / 10.0);
            assert!(cur >= prev, "ramp darkened at {}", i);
            prev = cur;
        }
    }

    #[test]
    fn document_contains_emitted_elements() {
        let mut svg = Svg::new(100.0, 50.0);
        svg.line(0.0, 0.0, 10.0, 10.0, Color::rgb(1, 2, 3), 1.5);
        svg.polygon(&[(0.0, 0.0), (5.0, 0.0), (0.0, 5.0)], Color::rgb(9, 9, 9), None);
        svg.polyline(&[(0.0, 0.0), (5.0, 5.0), (9.0, 1.0)], Color::rgb(4, 4, 4), 1.0);
        svg.circle(3.0, 4.0, 2.0, Color::rgb(7, 7, 7));
        svg.text(1.0, 2.0, 10.0, "middle", "a<b & c");
        let out = svg.render();
        assert!(out.starts_with("<?xml"));
        assert!(out.contains("<line "));
        assert!(out.contains("<polygon "));
        assert!(out.contains("<polyline "));
        assert!(out.contains("<circle "));
        assert!(out.contains("a&lt;b &amp; c"));
        assert!(out.trim_end().ends_with("</svg>"));
        // balanced: one opening svg, one closing
        assert_eq!(out.matches("<svg").count(), 1);
        assert_eq!(out.matches("</svg>").count(), 1);
    }

    #[test]
    fn short_polylines_are_dropped() {
        let mut svg = Svg::new(10.0, 10.0);
        svg.polyline(&[(1.0, 1.0)], Color::rgb(0, 0, 0), 1.0);
        assert!(!svg.render().contains("polyline"));
    }

    #[test]
    fn write_creates_directories() {
        let dir = std::env::temp_dir().join("lms_viz_test_dir/deep");
        let path = dir.join("x.svg");
        let _ = std::fs::remove_dir_all(&dir);
        Svg::new(8.0, 8.0).write_to(&path).unwrap();
        assert!(path.exists());
        let _ = std::fs::remove_dir_all(dir.parent().unwrap());
    }
}
