//! Quality-coloured mesh rendering — the paper's Figure 3 (before/after
//! smoothing) and Figure 7 (the mesh gallery) as SVG.

use crate::svg::{quality_color, Color, Svg};
use lms_mesh::quality::{triangle_qualities, QualityMetric};
use lms_mesh::TriMesh;

/// Rendering knobs.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MeshStyle {
    /// Output width in pixels (height follows the mesh aspect ratio).
    pub width: f64,
    /// Margin around the mesh, pixels.
    pub margin: f64,
    /// Colour triangles by quality (`None` = flat light grey).
    pub color_by: Option<QualityMetric>,
    /// Stroke triangle edges.
    pub edges: bool,
    /// Draw a quality colour-bar legend below the mesh.
    pub legend: bool,
}

impl Default for MeshStyle {
    fn default() -> Self {
        MeshStyle {
            width: 640.0,
            margin: 12.0,
            color_by: Some(QualityMetric::EdgeLengthRatio),
            edges: true,
            legend: true,
        }
    }
}

/// Render `mesh` to an SVG document.
///
/// Triangles are filled by their quality under `style.color_by` (dark =
/// bad, bright = good), so the localised bad regions the suite generators
/// grade into the meshes — and their disappearance after smoothing — are
/// visible at a glance.
pub fn render_mesh(mesh: &TriMesh, style: &MeshStyle) -> Svg {
    let (lo, hi) = mesh.bbox();
    let span_x = (hi.x - lo.x).max(f64::MIN_POSITIVE);
    let span_y = (hi.y - lo.y).max(f64::MIN_POSITIVE);
    let draw_w = style.width - 2.0 * style.margin;
    let scale = draw_w / span_x;
    let draw_h = span_y * scale;
    let legend_h = if style.legend { 34.0 } else { 0.0 };
    let mut svg = Svg::new(style.width, draw_h + 2.0 * style.margin + legend_h);

    // y flipped: mesh y grows up, SVG y grows down
    let tx = |x: f64| style.margin + (x - lo.x) * scale;
    let ty = |y: f64| style.margin + (hi.y - y) * scale;

    let qualities = style.color_by.map(|metric| triangle_qualities(mesh, metric));
    let edge_stroke = (Color::rgb(60, 60, 60), 0.4);

    for (t, tri) in mesh.triangles().iter().enumerate() {
        let pts: Vec<(f64, f64)> = tri
            .iter()
            .map(|&v| {
                let p = mesh.coords()[v as usize];
                (tx(p.x), ty(p.y))
            })
            .collect();
        let fill = match &qualities {
            Some(q) => quality_color(q[t]),
            None => Color::rgb(225, 225, 225),
        };
        svg.polygon(&pts, fill, style.edges.then_some(edge_stroke));
    }

    if style.legend {
        let y = draw_h + 2.0 * style.margin + 6.0;
        let bar_w = draw_w * 0.6;
        let steps = 48;
        for i in 0..steps {
            let q = i as f64 / (steps - 1) as f64;
            svg.rect(
                style.margin + bar_w * i as f64 / steps as f64,
                y,
                bar_w / steps as f64 + 0.5,
                10.0,
                quality_color(q),
            );
        }
        let label = style
            .color_by
            .map(|m| format!("quality ({})", m.name()))
            .unwrap_or_else(|| "quality".into());
        svg.text(style.margin, y + 22.0, 11.0, "start", &format!("0 — {label} — 1"));
    }
    svg
}

/// Render a labelled gallery of meshes (Figure 7): a grid of small
/// quality-coloured renders, `cols` per row.
pub fn render_gallery(meshes: &[(&str, &TriMesh)], cols: usize, tile_width: f64) -> Svg {
    assert!(cols > 0, "need at least one column");
    let style = MeshStyle { width: tile_width, legend: false, edges: false, ..Default::default() };
    // tile height: the tallest mesh's aspect-scaled height plus a caption
    let tile_h = meshes
        .iter()
        .map(|(_, mesh)| {
            let (lo, hi) = mesh.bbox();
            let span_x = (hi.x - lo.x).max(f64::MIN_POSITIVE);
            (hi.y - lo.y) / span_x * (tile_width - 2.0 * style.margin) + 2.0 * style.margin
        })
        .fold(0.0, f64::max)
        + 18.0;
    let rows = meshes.len().div_ceil(cols);
    let mut svg = Svg::new(tile_width * cols as f64, tile_h * rows as f64);
    for (i, (name, mesh)) in meshes.iter().enumerate() {
        let (col, row) = (i % cols, i / cols);
        let (ox, oy) = (col as f64 * tile_width, row as f64 * tile_h);
        draw_mesh_at(&mut svg, mesh, ox, oy, tile_width, &style);
        svg.text(ox + tile_width / 2.0, oy + tile_h - 4.0, 12.0, "middle", name);
    }
    svg
}

/// Draw `mesh` into `svg` at offset `(ox, oy)` with the given tile width.
fn draw_mesh_at(svg: &mut Svg, mesh: &TriMesh, ox: f64, oy: f64, width: f64, style: &MeshStyle) {
    let (lo, hi) = mesh.bbox();
    let span_x = (hi.x - lo.x).max(f64::MIN_POSITIVE);
    let draw_w = width - 2.0 * style.margin;
    let scale = draw_w / span_x;
    let tx = |x: f64| ox + style.margin + (x - lo.x) * scale;
    let ty = |y: f64| oy + style.margin + (hi.y - y) * scale;
    let qualities = style.color_by.map(|metric| triangle_qualities(mesh, metric));
    for (t, tri) in mesh.triangles().iter().enumerate() {
        let pts: Vec<(f64, f64)> = tri
            .iter()
            .map(|&v| {
                let p = mesh.coords()[v as usize];
                (tx(p.x), ty(p.y))
            })
            .collect();
        let fill = match &qualities {
            Some(q) => quality_color(q[t]),
            None => Color::rgb(225, 225, 225),
        };
        svg.polygon(&pts, fill, None);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lms_mesh::generators;

    #[test]
    fn render_emits_one_polygon_per_triangle() {
        let m = generators::perturbed_grid(8, 8, 0.2, 1);
        let svg = render_mesh(&m, &MeshStyle::default());
        let out = svg.render();
        assert_eq!(out.matches("<polygon").count(), m.num_triangles());
        assert!(out.contains("quality (elr)"));
    }

    #[test]
    fn no_legend_no_colorbar() {
        let m = generators::perturbed_grid(6, 6, 0.2, 2);
        let svg = render_mesh(&m, &MeshStyle { legend: false, ..Default::default() });
        assert!(!svg.render().contains("<text"));
    }

    #[test]
    fn aspect_ratio_follows_the_mesh() {
        let wide = generators::perturbed_grid_over(
            20,
            5,
            (lms_mesh::Point2::ZERO, lms_mesh::Point2::new(4.0, 1.0)),
            0.2,
            1,
        );
        let svg = render_mesh(&wide, &MeshStyle { legend: false, ..Default::default() });
        assert!(svg.height() < svg.width() / 2.0, "wide mesh must render wide");
    }

    #[test]
    fn gallery_labels_every_mesh() {
        let a = generators::perturbed_grid(5, 5, 0.2, 1);
        let b = generators::perturbed_grid(6, 6, 0.2, 2);
        let svg = render_gallery(&[("alpha", &a), ("beta", &b)], 2, 160.0);
        let out = svg.render();
        assert!(out.contains("alpha") && out.contains("beta"));
        assert_eq!(out.matches("<polygon").count(), a.num_triangles() + b.num_triangles());
    }

    #[test]
    fn smoothing_brightens_the_render() {
        // quality-coloured fills should move toward the bright end after
        // smoothing: compare mean green channel of the triangle fills
        use lms_mesh::quality::QualityMetric;
        let m0 = generators::perturbed_grid(16, 16, 0.4, 3);
        let mut m1 = m0.clone();
        // a few Laplacian sweeps by hand (no lms-smooth dependency here):
        // move every interior vertex to its ring centroid twice
        let adj = lms_mesh::Adjacency::build(&m1);
        let boundary = lms_mesh::Boundary::detect(&m1);
        for _ in 0..3 {
            for v in 0..m1.num_vertices() as u32 {
                if !boundary.is_interior(v) {
                    continue;
                }
                let ns = adj.neighbors(v);
                let mut acc = lms_mesh::Point2::ZERO;
                for &w in ns {
                    acc += m1.coords()[w as usize];
                }
                m1.coords_mut()[v as usize] = acc / ns.len() as f64;
            }
        }
        let brightness = |m: &TriMesh| {
            triangle_qualities(m, QualityMetric::EdgeLengthRatio)
                .iter()
                .map(|&q| {
                    let c = quality_color(q);
                    c.r as f64 + c.g as f64 + c.b as f64
                })
                .sum::<f64>()
                / m.num_triangles() as f64
        };
        assert!(brightness(&m1) > brightness(&m0));
    }
}
