//! # lms-viz — SVG visualisation for the LMS reproduction
//!
//! The paper's evaluation is half pictures: mesh renders (Figures 3
//! and 7), reuse-distance profiles (Figures 1 and 6), miss-rate bars
//! (Figure 9) and speedup curves (Figures 10 and 12). This crate
//! regenerates those *as images*, complementing the text/CSV output of
//! `lms-bench`:
//!
//! * [`svg`] — a dependency-free SVG document builder with the quality
//!   colour ramp;
//! * [`mesh`] — quality-coloured mesh renders and mesh galleries;
//! * [`partition`] — domain-decomposition overlays: triangles colored by
//!   owning part, cut edges emphasised (debug/figure aid for `lms-part`);
//! * [`plot`] — line charts (linear/log axes) and grouped bar charts.
//!
//! See `examples/render_figures.rs` for the figure-regeneration driver.
//!
//! ```
//! use lms_viz::mesh::{render_mesh, MeshStyle};
//!
//! let m = lms_mesh::generators::perturbed_grid(12, 12, 0.3, 1);
//! let svg = render_mesh(&m, &MeshStyle::default());
//! assert!(svg.render().contains("<polygon"));
//! ```

pub mod mesh;
pub mod mesh3d;
pub mod partition;
pub mod plot;
pub mod svg;

pub use mesh::{render_gallery, render_mesh, MeshStyle};
pub use mesh3d::{render_tet_surface, Mesh3Style};
pub use partition::{part_color, render_partition, triangle_owner, PartitionStyle};
pub use plot::{BarChart, Chart, Scale, Series};
pub use svg::{quality_color, Color, Svg};
