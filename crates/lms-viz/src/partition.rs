//! Partition overlay rendering — triangles colored by owning part, cut
//! edges emphasised. The debug/figure aid for `lms-part`'s domain
//! decomposition: a glance shows part shapes, balance and the interface
//! layer the partitioned smoother has to coordinate.
//!
//! The module deliberately takes a plain `&[u32]` part assignment rather
//! than depending on `lms-part`, so any vertex labelling (partition,
//! color class, NUMA placement) can be rendered.

use crate::svg::{Color, Svg};
use lms_mesh::TriMesh;

/// Rendering knobs for [`render_partition`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PartitionStyle {
    /// Output width in pixels (height follows the mesh aspect ratio).
    pub width: f64,
    /// Margin around the mesh, pixels.
    pub margin: f64,
    /// Stroke triangle edges faintly.
    pub edges: bool,
    /// Emphasise cut edges (endpoints in different parts).
    pub cut_edges: bool,
    /// Draw part-color swatches below the mesh (capped at 12 parts).
    pub legend: bool,
}

impl Default for PartitionStyle {
    fn default() -> Self {
        PartitionStyle { width: 640.0, margin: 12.0, edges: true, cut_edges: true, legend: true }
    }
}

/// A categorical part color: golden-angle hue walk with alternating
/// value, so adjacent part ids contrast even for large `k`.
pub fn part_color(p: u32) -> Color {
    let hue = (p as f64 * 137.50776405003785) % 360.0;
    let value = if p.is_multiple_of(2) { 0.93 } else { 0.72 };
    hsv_to_rgb(hue, 0.55, value)
}

fn hsv_to_rgb(h: f64, s: f64, v: f64) -> Color {
    let c = v * s;
    let hp = h / 60.0;
    let x = c * (1.0 - (hp % 2.0 - 1.0).abs());
    let (r, g, b) = match hp as u32 {
        0 => (c, x, 0.0),
        1 => (x, c, 0.0),
        2 => (0.0, c, x),
        3 => (0.0, x, c),
        4 => (x, 0.0, c),
        _ => (c, 0.0, x),
    };
    let m = v - c;
    let to8 = |f: f64| ((f + m) * 255.0).round().clamp(0.0, 255.0) as u8;
    Color::rgb(to8(r), to8(g), to8(b))
}

/// Owning part of a triangle: the part holding the most corners, ties
/// broken toward the smallest part id.
pub fn triangle_owner(tri: [u32; 3], part_of: &[u32]) -> u32 {
    let ps = tri.map(|v| part_of[v as usize]);
    if ps[0] == ps[1] || ps[0] == ps[2] {
        ps[0]
    } else if ps[1] == ps[2] {
        ps[1]
    } else {
        ps[0].min(ps[1]).min(ps[2])
    }
}

/// Render `mesh` with each triangle filled by its owning part's color.
///
/// `part_of` assigns a part to every vertex (as produced by
/// `lms-part`'s partitioners); `num_parts` sizes the legend.
pub fn render_partition(
    mesh: &TriMesh,
    part_of: &[u32],
    num_parts: u32,
    style: &PartitionStyle,
) -> Svg {
    assert_eq!(part_of.len(), mesh.num_vertices(), "assignment does not match the mesh");
    let (lo, hi) = mesh.bbox();
    let span_x = (hi.x - lo.x).max(f64::MIN_POSITIVE);
    let span_y = (hi.y - lo.y).max(f64::MIN_POSITIVE);
    let draw_w = style.width - 2.0 * style.margin;
    let scale = draw_w / span_x;
    let draw_h = span_y * scale;
    let legend_h = if style.legend { 30.0 } else { 0.0 };
    let mut svg = Svg::new(style.width, draw_h + 2.0 * style.margin + legend_h);

    let tx = |x: f64| style.margin + (x - lo.x) * scale;
    let ty = |y: f64| style.margin + (hi.y - y) * scale;

    let edge_stroke = (Color::rgb(70, 70, 70), 0.3);
    for tri in mesh.triangles() {
        let pts: Vec<(f64, f64)> = tri
            .iter()
            .map(|&v| {
                let p = mesh.coords()[v as usize];
                (tx(p.x), ty(p.y))
            })
            .collect();
        let fill = part_color(triangle_owner(*tri, part_of));
        svg.polygon(&pts, fill, style.edges.then_some(edge_stroke));
    }

    if style.cut_edges {
        let cut = Color::rgb(30, 30, 30);
        for &(a, b) in &mesh.edges() {
            if part_of[a as usize] != part_of[b as usize] {
                let pa = mesh.coords()[a as usize];
                let pb = mesh.coords()[b as usize];
                svg.line(tx(pa.x), ty(pa.y), tx(pb.x), ty(pb.y), cut, 1.1);
            }
        }
    }

    if style.legend {
        let y = draw_h + 2.0 * style.margin + 4.0;
        let shown = num_parts.min(12);
        for p in 0..shown {
            svg.rect(style.margin + p as f64 * 34.0, y, 12.0, 12.0, part_color(p));
            svg.text(
                style.margin + p as f64 * 34.0 + 15.0,
                y + 10.0,
                10.0,
                "start",
                &p.to_string(),
            );
        }
        if num_parts > shown {
            svg.text(
                style.margin + shown as f64 * 34.0,
                y + 10.0,
                10.0,
                "start",
                &format!("… {num_parts} parts"),
            );
        }
    }
    svg
}

#[cfg(test)]
mod tests {
    use super::*;
    use lms_mesh::generators;

    /// A crude 2-way split by x for tests (no lms-part dependency here).
    fn split_by_x(mesh: &TriMesh) -> Vec<u32> {
        let (lo, hi) = mesh.bbox();
        let mid = (lo.x + hi.x) / 2.0;
        mesh.coords().iter().map(|p| u32::from(p.x > mid)).collect()
    }

    #[test]
    fn one_polygon_per_triangle_and_cut_edges_drawn() {
        let m = generators::perturbed_grid(10, 10, 0.2, 1);
        let part = split_by_x(&m);
        let svg = render_partition(&m, &part, 2, &PartitionStyle::default());
        let out = svg.render();
        assert_eq!(out.matches("<polygon").count(), m.num_triangles());
        assert!(out.matches("<line").count() > 0, "cut edges should be drawn");
    }

    #[test]
    fn triangle_owner_majority_and_ties() {
        let part = [0u32, 0, 1, 2, 3];
        assert_eq!(triangle_owner([0, 1, 2], &part), 0); // majority
        assert_eq!(triangle_owner([2, 3, 4], &part), 1); // all distinct → min
        assert_eq!(triangle_owner([3, 4, 4], &part), 3); // pair wins
    }

    #[test]
    fn parts_get_distinct_colors() {
        let mut seen = std::collections::HashSet::new();
        for p in 0..16u32 {
            seen.insert(part_color(p).hex());
        }
        assert_eq!(seen.len(), 16);
    }

    #[test]
    fn uniform_assignment_has_no_cut_edges() {
        let m = generators::perturbed_grid(8, 8, 0.2, 2);
        let part = vec![0u32; m.num_vertices()];
        let svg = render_partition(&m, &part, 1, &PartitionStyle::default());
        assert_eq!(svg.render().matches("<line").count(), 0);
    }

    #[test]
    fn legend_caps_at_twelve() {
        let m = generators::perturbed_grid(6, 6, 0.2, 3);
        let part: Vec<u32> = (0..m.num_vertices() as u32).map(|v| v % 20).collect();
        let svg = render_partition(&m, &part, 20, &PartitionStyle::default());
        assert!(svg.render().contains("… 20 parts"));
    }
}
