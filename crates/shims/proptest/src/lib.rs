//! Offline shim for the `proptest` crate.
//!
//! Supports the strategy surface this workspace's property tests use:
//! range strategies over the numeric primitives, strategy tuples,
//! [`Just`], [`prelude::any`], `prop_map`, [`prop_oneof!`],
//! [`collection::vec`], the [`proptest!`] test macro with
//! `#![proptest_config(..)]`, and the `prop_assert!` / `prop_assert_eq!` /
//! `prop_assume!` assertion forms.
//!
//! Differences from upstream, deliberately accepted: no shrinking (a
//! failing case panics with the generated values left in the assert
//! message), and a fixed per-test deterministic seed derived from the test
//! path, so failures reproduce exactly across runs.

use std::ops::{Range, RangeInclusive};

pub mod test_runner {
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    /// Outcome of one generated case.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum CaseOutcome {
        /// The body ran to completion (assertion panics abort the test).
        Pass,
        /// A `prop_assume!` rejected the inputs; the case is not counted.
        Reject,
    }

    /// Deterministic per-test random source.
    #[derive(Debug)]
    pub struct TestRng {
        inner: SmallRng,
    }

    impl TestRng {
        /// Seed from the fully-qualified test name (stable across runs).
        pub fn for_test(name: &str) -> Self {
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for b in name.bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x0000_0100_0000_01B3);
            }
            TestRng { inner: SmallRng::seed_from_u64(h) }
        }

        /// 64 random bits.
        pub fn next_u64(&mut self) -> u64 {
            rand::RngCore::next_u64(&mut self.inner)
        }

        /// Uniform `f64` in `[0, 1)`.
        pub fn next_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }

        /// Uniform index in `0..n` (`n > 0`).
        pub fn index(&mut self, n: usize) -> usize {
            assert!(n > 0);
            (self.next_u64() % n as u64) as usize
        }
    }

    /// Runner configuration (`cases` = generated inputs per test).
    #[derive(Debug, Clone)]
    pub struct Config {
        pub cases: u32,
    }

    impl Config {
        /// A config running `cases` cases.
        pub fn with_cases(cases: u32) -> Self {
            Config { cases }
        }
    }

    impl Default for Config {
        fn default() -> Self {
            // honour PROPTEST_CASES like upstream
            let cases =
                std::env::var("PROPTEST_CASES").ok().and_then(|s| s.parse().ok()).unwrap_or(256);
            Config { cases }
        }
    }
}

use test_runner::TestRng;

/// A generator of test values.
///
/// Object-safe (so [`prop_oneof!`] can box alternatives); combinators that
/// consume `self` are `Self: Sized`.
pub trait Strategy {
    type Value;

    /// Generate one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform generated values.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Reject values failing the predicate (regenerates, bounded retries).
    fn prop_filter<F>(self, _whence: &'static str, f: F) -> Filter<Self, F>
    where
        Self: Sized,
        F: Fn(&Self::Value) -> bool,
    {
        Filter { inner: self, f }
    }

    /// Box the strategy (type erasure for heterogeneous alternative lists).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        Box::new(self)
    }
}

/// A boxed, type-erased strategy.
pub type BoxedStrategy<T> = Box<dyn Strategy<Value = T>>;

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        (**self).generate(rng)
    }
}

/// Always yields a clone of its value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// [`Strategy::prop_map`] adapter.
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// [`Strategy::prop_filter`] adapter.
#[derive(Debug, Clone)]
pub struct Filter<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> S::Value {
        for _ in 0..1000 {
            let v = self.inner.generate(rng);
            if (self.f)(&v) {
                return v;
            }
        }
        panic!("prop_filter rejected 1000 consecutive values");
    }
}

/// Uniform choice among boxed alternatives ([`prop_oneof!`]).
pub struct Union<T> {
    alternatives: Vec<BoxedStrategy<T>>,
}

impl<T> Union<T> {
    pub fn new(alternatives: Vec<BoxedStrategy<T>>) -> Self {
        assert!(!alternatives.is_empty(), "prop_oneof! needs at least one alternative");
        Union { alternatives }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        let k = rng.index(self.alternatives.len());
        self.alternatives[k].generate(rng)
    }
}

impl Strategy for Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty f64 range");
        self.start + rng.next_f64() * (self.end - self.start)
    }
}

impl Strategy for Range<f32> {
    type Value = f32;
    fn generate(&self, rng: &mut TestRng) -> f32 {
        assert!(self.start < self.end, "empty f32 range");
        self.start + (rng.next_f64() as f32) * (self.end - self.start)
    }
}

macro_rules! impl_int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let r = ((rng.next_u64() as u128) % span) as i128;
                (self.start as i128 + r) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let r = ((rng.next_u64() as u128) % span) as i128;
                (lo as i128 + r) as $t
            }
        }
    )*};
}
impl_int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                #[allow(non_snake_case)]
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}
impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);
impl_tuple_strategy!(A, B, C, D, E, F);

/// Types with a canonical "any value" strategy ([`prelude::any`]).
pub trait Arbitrary: Sized {
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        // finite, sign-symmetric, spanning a wide magnitude range
        let mag = (rng.next_f64() * 600.0) - 300.0;
        let sign = if rng.next_u64() & 1 == 1 { -1.0 } else { 1.0 };
        sign * mag.exp2().min(f64::MAX / 4.0)
    }
}

/// Strategy returned by [`prelude::any`].
pub struct AnyStrategy<T> {
    _marker: std::marker::PhantomData<fn() -> T>,
}

impl<T: Arbitrary> Strategy for AnyStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

pub mod bool {
    /// The uniform boolean strategy (`proptest::bool::ANY`).
    #[derive(Debug, Clone, Copy)]
    pub struct Any;

    impl super::Strategy for Any {
        type Value = bool;
        fn generate(&self, rng: &mut super::TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    /// Uniformly random booleans.
    pub const ANY: Any = Any;
}

pub mod collection {
    use super::{Strategy, TestRng};
    use std::ops::Range;

    /// Strategy for `Vec`s of `element` with a length drawn from `size`.
    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        assert!(size.start < size.end, "empty size range");
        VecStrategy { element, size }
    }

    pub struct VecStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = self.size.end - self.size.start;
            let len = self.size.start + rng.index(span);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod prelude {
    pub use crate::test_runner::Config as ProptestConfig;
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest, Arbitrary,
        BoxedStrategy, Just, Strategy,
    };

    /// The canonical strategy for `T` (`any::<u64>()` etc.).
    pub fn any<T: crate::Arbitrary>() -> crate::AnyStrategy<T> {
        crate::AnyStrategy { _marker: std::marker::PhantomData }
    }
}

/// Assert within a proptest body (no shrinking: plain panic on failure).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)*) => { assert!($cond, $($fmt)*) };
}

/// Equality assert within a proptest body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => { assert_eq!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)*) => { assert_eq!($a, $b, $($fmt)*) };
}

/// Inequality assert within a proptest body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => { assert_ne!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)*) => { assert_ne!($a, $b, $($fmt)*) };
}

/// Reject the current case (does not count towards `cases`).
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return $crate::test_runner::CaseOutcome::Reject;
        }
    };
}

/// Uniform choice among strategies yielding the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {
        $crate::Union::new(vec![
            $(Box::new($strategy) as $crate::BoxedStrategy<_>,)+
        ])
    };
}

/// The proptest test macro: expands each `fn name(arg in strategy, ..)`
/// into a `#[test]` that runs `cases` generated inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_each! { ($config); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_each! { (<$crate::test_runner::Config as Default>::default()); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_each {
    (($config:expr); ) => {};
    (($config:expr);
     $(#[$meta:meta])*
     fn $name:ident($($arg:pat in $strategy:expr),+ $(,)?) $body:block
     $($rest:tt)*) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::test_runner::Config = $config;
            let mut rng = $crate::test_runner::TestRng::for_test(
                concat!(module_path!(), "::", stringify!($name)),
            );
            let mut passed: u32 = 0;
            let mut attempts: u32 = 0;
            while passed < config.cases {
                attempts += 1;
                assert!(
                    attempts <= config.cases.saturating_mul(20).saturating_add(100),
                    "prop_assume! rejected too many generated cases"
                );
                $(let $arg = $crate::Strategy::generate(&($strategy), &mut rng);)+
                let outcome = (|| {
                    $body
                    #[allow(unreachable_code)]
                    $crate::test_runner::CaseOutcome::Pass
                })();
                if outcome == $crate::test_runner::CaseOutcome::Pass {
                    passed += 1;
                }
            }
        }
        $crate::__proptest_each! { ($config); $($rest)* }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;
    use crate::test_runner::TestRng;

    #[test]
    fn ranges_and_tuples_generate_in_bounds() {
        let mut rng = TestRng::for_test("shim::ranges");
        let s = (3usize..16, -5i64..6, 0.0f64..0.45, 2u32..=6);
        for _ in 0..500 {
            let (a, b, c, d) = Strategy::generate(&s, &mut rng);
            assert!((3..16).contains(&a));
            assert!((-5..6).contains(&b));
            assert!((0.0..0.45).contains(&c));
            assert!((2..=6).contains(&d));
        }
    }

    #[test]
    fn oneof_and_map_cover_alternatives() {
        let mut rng = TestRng::for_test("shim::oneof");
        let s: crate::Union<u64> = prop_oneof![Just(0u64), any::<u64>().prop_map(|v| v | 1),];
        let mut zeros = 0;
        let mut odds = 0;
        for _ in 0..200 {
            match Strategy::generate(&s, &mut rng) {
                0 => zeros += 1,
                v if v % 2 == 1 => odds += 1,
                v => panic!("unexpected value {v}"),
            }
        }
        assert!(zeros > 20 && odds > 20, "{zeros} zeros, {odds} odds");
    }

    #[test]
    fn collection_vec_respects_size() {
        let mut rng = TestRng::for_test("shim::vec");
        let s = crate::collection::vec(0u32..12, 1..200);
        for _ in 0..200 {
            let v = Strategy::generate(&s, &mut rng);
            assert!((1..200).contains(&v.len()));
            assert!(v.iter().all(|&x| x < 12));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        /// The macro itself: generated args are in range, assume skips.
        #[test]
        fn macro_generates_and_assumes(a in 0usize..100, b in 0.0f64..1.0) {
            prop_assume!(a != 13);
            prop_assert!(a < 100);
            prop_assert!((0.0..1.0).contains(&b));
            prop_assert_eq!(a, a);
            prop_assert_ne!(a, a + 1);
        }
    }
}
