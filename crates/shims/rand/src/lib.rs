//! Offline shim for the `rand` crate.
//!
//! The build container has no registry access, so this crate provides the
//! subset of the `rand 0.8` API the workspace uses: [`Rng::gen`],
//! [`Rng::gen_range`], [`Rng::gen_bool`], [`SeedableRng::seed_from_u64`],
//! [`rngs::SmallRng`] and [`seq::SliceRandom::shuffle`]. The generator is
//! xoshiro256** seeded through splitmix64 — deterministic across platforms,
//! which is all the mesh generators require (they never depend on matching
//! upstream `rand`'s exact stream).

use std::ops::{Range, RangeInclusive};

/// Core random source: a stream of `u64`s.
pub trait RngCore {
    /// Next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;
}

/// Construction from seeds.
pub trait SeedableRng: Sized {
    /// Build a generator from a 64-bit seed (splitmix64 expansion).
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types `Rng::gen` can produce.
pub trait Standard: Sized {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    #[inline]
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 random mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    #[inline]
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

impl Standard for bool {
    #[inline]
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            #[inline]
            fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Ranges `Rng::gen_range` accepts.
pub trait SampleRange {
    type Output;
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> Self::Output;
}

impl SampleRange for Range<f64> {
    type Output = f64;
    #[inline]
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "empty range");
        self.start + f64::sample(rng) * (self.end - self.start)
    }
}

macro_rules! impl_sample_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange for Range<$t> {
            type Output = $t;
            #[inline]
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let r = ((rng.next_u64() as u128) % span) as i128;
                (self.start as i128 + r) as $t
            }
        }
        impl SampleRange for RangeInclusive<$t> {
            type Output = $t;
            #[inline]
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let r = ((rng.next_u64() as u128) % span) as i128;
                (lo as i128 + r) as $t
            }
        }
    )*};
}
impl_sample_range_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// The user-facing random-value interface.
pub trait Rng: RngCore {
    /// A uniformly random value of `T`.
    #[inline]
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// A uniformly random value in `range`.
    #[inline]
    fn gen_range<S: SampleRange>(&mut self, range: S) -> S::Output {
        range.sample(self)
    }

    /// `true` with probability `p`.
    #[inline]
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "probability out of range");
        f64::sample(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

#[inline]
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

pub mod rngs {
    use super::{splitmix64, RngCore, SeedableRng};

    /// xoshiro256** — small, fast, and plenty for mesh jitter.
    #[derive(Debug, Clone)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            let mut s = [0u64; 4];
            for slot in &mut s {
                *slot = splitmix64(&mut sm);
            }
            // avoid the all-zero state (cannot occur from splitmix64, but
            // keep the invariant explicit)
            if s == [0; 4] {
                s[0] = 1;
            }
            SmallRng { s }
        }
    }

    impl RngCore for SmallRng {
        #[inline]
        fn next_u64(&mut self) -> u64 {
            let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

pub mod seq {
    use super::Rng;

    /// Slice shuffling (Fisher–Yates).
    pub trait SliceRandom {
        type Item;

        /// Shuffle the slice in place.
        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R);

        /// A uniformly random element, or `None` when empty.
        fn choose<'a, R: Rng + ?Sized>(&'a self, rng: &mut R) -> Option<&'a Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..i + 1);
                self.swap(i, j);
            }
        }

        fn choose<'a, R: Rng + ?Sized>(&'a self, rng: &mut R) -> Option<&'a T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[rng.gen_range(0..self.len())])
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = SmallRng::seed_from_u64(42);
        let mut b = SmallRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
        let mut c = SmallRng::seed_from_u64(43);
        assert_ne!(a.gen::<u64>(), c.gen::<u64>());
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = SmallRng::seed_from_u64(7);
        for _ in 0..1000 {
            let f = rng.gen_range(-1.0..1.0);
            assert!((-1.0..1.0).contains(&f));
            let u = rng.gen_range(3usize..17);
            assert!((3..17).contains(&u));
            let i = rng.gen_range(-5i64..6);
            assert!((-5..6).contains(&i));
            let inc = rng.gen_range(2usize..=6);
            assert!((2..=6).contains(&inc));
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn gen_bool_rate_is_plausible() {
        let mut rng = SmallRng::seed_from_u64(1);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((2000..3000).contains(&hits), "{hits}");
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = SmallRng::seed_from_u64(5);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, sorted, "50 elements virtually never shuffle to identity");
    }
}
