//! Offline shim for the `criterion` crate.
//!
//! Implements the API surface the workspace's benches use —
//! [`Criterion::benchmark_group`], [`BenchmarkGroup::bench_with_input`],
//! [`Bencher::iter`], [`BenchmarkId`], [`Throughput`],
//! [`criterion_group!`]/[`criterion_main!`] — as a plain wall-clock harness:
//! a warm-up pass, `sample_size` timed samples, then a one-line report of
//! min / median / mean per benchmark.
//!
//! Runs under the default cargo bench harness model: benches must set
//! `harness = false` in their manifest, exactly as with real criterion.

use std::fmt::{self, Display};
use std::hint;
use std::time::{Duration, Instant};

/// Prevent the optimiser from deleting a benchmarked computation.
#[inline]
pub fn black_box<T>(x: T) -> T {
    hint::black_box(x)
}

/// Identifier for one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `function_name/parameter` form.
    pub fn new(function_name: impl Display, parameter: impl Display) -> Self {
        BenchmarkId { id: format!("{function_name}/{parameter}") }
    }

    /// Parameter-only form.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId { id: parameter.to_string() }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.id)
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { id: s.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId { id: s }
    }
}

/// Throughput annotation (recorded, displayed for `Elements`).
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    Elements(u64),
    Bytes(u64),
    BytesDecimal(u64),
}

/// One measured benchmark: identifier plus per-sample total times.
#[derive(Debug, Clone)]
pub struct SampleSummary {
    /// `group/function/parameter` path.
    pub id: String,
    /// Mean time per iteration, in nanoseconds.
    pub mean_ns: f64,
    /// Median time per iteration, in nanoseconds.
    pub median_ns: f64,
    /// Fastest sample, in nanoseconds per iteration.
    pub min_ns: f64,
}

/// The benchmark driver.
#[derive(Debug, Default)]
pub struct Criterion {
    results: Vec<SampleSummary>,
}

impl Criterion {
    pub fn new() -> Self {
        Self::default()
    }

    /// Open a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup { criterion: self, name: name.into(), sample_size: 10, throughput: None }
    }

    /// Register a stand-alone benchmark (its own single-entry group).
    pub fn bench_function(&mut self, id: impl Display, mut f: impl FnMut(&mut Bencher)) {
        let name = id.to_string();
        let mut g = self.benchmark_group(name);
        g.bench_with_input(BenchmarkId::from_parameter(""), &(), move |b, _| f(b));
        g.finish();
    }

    /// All summaries measured so far, in execution order.
    pub fn summaries(&self) -> &[SampleSummary] {
        &self.results
    }

    /// Marker for end-of-run (upstream criterion prints its summary here).
    pub fn final_summary(&self) {}
}

/// A group of benchmarks sharing configuration.
pub struct BenchmarkGroup<'c> {
    criterion: &'c mut Criterion,
    name: String,
    sample_size: usize,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Number of timed samples per benchmark (minimum 2).
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(2);
        self
    }

    /// Annotate following benchmarks with a throughput.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Benchmark `f` with `input`.
    pub fn bench_with_input<I: ?Sized>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: impl FnMut(&mut Bencher, &I),
    ) -> &mut Self {
        let id = id.into();
        let mut bencher = Bencher { samples: Vec::new(), sample_size: self.sample_size };
        f(&mut bencher, input);
        self.record(id, bencher);
        self
    }

    /// Benchmark `f` with no input.
    pub fn bench_function(
        &mut self,
        id: impl Into<BenchmarkId>,
        mut f: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        let id = id.into();
        let mut bencher = Bencher { samples: Vec::new(), sample_size: self.sample_size };
        f(&mut bencher);
        self.record(id, bencher);
        self
    }

    fn record(&mut self, id: BenchmarkId, bencher: Bencher) {
        let mut per_iter: Vec<f64> = bencher.samples.clone();
        if per_iter.is_empty() {
            return;
        }
        per_iter.sort_by(f64::total_cmp);
        let min = per_iter[0];
        let median = per_iter[per_iter.len() / 2];
        let mean = per_iter.iter().sum::<f64>() / per_iter.len() as f64;
        let full = format!("{}/{}", self.name, id);
        let thr = match self.throughput {
            Some(Throughput::Elements(n)) if mean > 0.0 => {
                format!("  {:>10.1} Melem/s", n as f64 / mean * 1e3)
            }
            _ => String::new(),
        };
        println!(
            "bench {:<60} min {:>12}  median {:>12}  mean {:>12}{}",
            full,
            fmt_ns(min),
            fmt_ns(median),
            fmt_ns(mean),
            thr
        );
        self.criterion.results.push(SampleSummary {
            id: full,
            mean_ns: mean,
            median_ns: median,
            min_ns: min,
        });
    }

    /// Close the group.
    pub fn finish(&mut self) {}
}

fn fmt_ns(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:.3} s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.3} ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.3} µs", ns / 1e3)
    } else {
        format!("{ns:.0} ns")
    }
}

/// Passed to the benchmark closure; [`iter`](Self::iter) times the payload.
pub struct Bencher {
    /// Per-sample mean nanoseconds per iteration.
    samples: Vec<f64>,
    sample_size: usize,
}

impl Bencher {
    /// Time `f`: one warm-up call, then `sample_size` timed samples. Each
    /// sample runs enough iterations to cover ~1 ms so short payloads are
    /// measurable.
    pub fn iter<O>(&mut self, mut f: impl FnMut() -> O) {
        black_box(f()); // warm-up
        let probe = Instant::now();
        black_box(f());
        let once = probe.elapsed().max(Duration::from_nanos(1));
        let iters_per_sample =
            (Duration::from_millis(1).as_nanos() / once.as_nanos()).clamp(1, 10_000) as usize;
        self.samples.clear();
        for _ in 0..self.sample_size {
            let start = Instant::now();
            for _ in 0..iters_per_sample {
                black_box(f());
            }
            let total = start.elapsed().as_nanos() as f64;
            self.samples.push(total / iters_per_sample as f64);
        }
    }
}

/// Mirrors `criterion_group!`: defines a function running each benchmark
/// with a fresh default [`Criterion`].
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::new();
            $($target(&mut criterion);)+
            criterion.final_summary();
        }
    };
}

/// Mirrors `criterion_main!`: the bench binary's `main`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measures_and_records() {
        let mut c = Criterion::new();
        {
            let mut g = c.benchmark_group("shim");
            g.sample_size(3);
            g.bench_with_input(BenchmarkId::new("sum", 100), &100u64, |b, &n| {
                b.iter(|| (0..n).sum::<u64>())
            });
            g.finish();
        }
        assert_eq!(c.summaries().len(), 1);
        let s = &c.summaries()[0];
        assert_eq!(s.id, "shim/sum/100");
        assert!(s.mean_ns > 0.0 && s.min_ns <= s.mean_ns);
    }

    #[test]
    fn ns_formatting() {
        assert_eq!(fmt_ns(12.0), "12 ns");
        assert_eq!(fmt_ns(1500.0), "1.500 µs");
        assert_eq!(fmt_ns(2_500_000.0), "2.500 ms");
        assert_eq!(fmt_ns(3.2e9), "3.200 s");
    }
}
