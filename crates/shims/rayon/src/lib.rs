//! Offline shim for the `rayon` crate.
//!
//! Provides the adapter surface this workspace uses — `par_iter`,
//! `into_par_iter` on ranges, `par_chunks`/`par_chunks_mut`, `map`,
//! `enumerate`, `for_each`, `collect`, `sum`, plus [`ThreadPoolBuilder`] /
//! [`ThreadPool::install`] — executed on `std::thread::scope` workers.
//!
//! Two properties the workspace's determinism tests rely on:
//!
//! * **Order-preserving collect**: `map(..).collect()` returns results in
//!   input order, whatever the worker interleaving.
//! * **Thread-count-independent reduction**: work is split into a fixed
//!   group grid (independent of the worker count) and partial results are
//!   combined in group order, so `sum()` is bitwise identical for any
//!   `num_threads` — strictly stronger than upstream rayon's guarantee, and
//!   what makes the parallel engines reproducible.

use std::cell::Cell;
use std::fmt;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

thread_local! {
    static CURRENT_THREADS: Cell<usize> = const { Cell::new(0) };
}

fn default_threads() -> usize {
    std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
}

/// Number of worker threads par-adapters on this thread currently use.
pub fn current_num_threads() -> usize {
    let t = CURRENT_THREADS.with(|c| c.get());
    if t == 0 {
        default_threads()
    } else {
        t
    }
}

/// Error from [`ThreadPoolBuilder::build`]; this shim never produces one.
#[derive(Debug)]
pub struct ThreadPoolBuildError;

impl fmt::Display for ThreadPoolBuildError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "thread pool build error")
    }
}

impl std::error::Error for ThreadPoolBuildError {}

/// Builder mirroring `rayon::ThreadPoolBuilder`.
#[derive(Debug, Default)]
pub struct ThreadPoolBuilder {
    num_threads: usize,
}

impl ThreadPoolBuilder {
    pub fn new() -> Self {
        Self::default()
    }

    /// Target worker count; 0 means "host parallelism".
    pub fn num_threads(mut self, n: usize) -> Self {
        self.num_threads = n;
        self
    }

    pub fn build(self) -> Result<ThreadPool, ThreadPoolBuildError> {
        let n = if self.num_threads == 0 { default_threads() } else { self.num_threads };
        Ok(ThreadPool { num_threads: n })
    }
}

/// A logical pool: par-adapters called inside [`install`](Self::install)
/// split work across this many scoped worker threads.
#[derive(Debug)]
pub struct ThreadPool {
    num_threads: usize,
}

impl ThreadPool {
    /// Run `f` with this pool's worker count active on the calling thread.
    pub fn install<R>(&self, f: impl FnOnce() -> R) -> R {
        CURRENT_THREADS.with(|c| {
            let prev = c.get();
            c.set(self.num_threads);
            let out = f();
            c.set(prev);
            out
        })
    }

    pub fn current_num_threads(&self) -> usize {
        self.num_threads
    }
}

/// Fixed group grid: split `len` items into at most 64 contiguous groups.
/// The grid depends only on `len`, never on the worker count — the key to
/// thread-count-independent reductions.
fn group_bounds(len: usize) -> Vec<(usize, usize)> {
    if len == 0 {
        return Vec::new();
    }
    let groups = len.min(64);
    (0..groups)
        .map(|g| (g * len / groups, (g + 1) * len / groups))
        .filter(|&(lo, hi)| lo < hi)
        .collect()
}

/// Run `work(group_index, lo, hi)` over the group grid on the active worker
/// count, returning per-group outputs in group order.
fn run_groups<O: Send>(len: usize, work: &(impl Fn(usize, usize, usize) -> O + Sync)) -> Vec<O> {
    let bounds = group_bounds(len);
    let workers = current_num_threads().min(bounds.len()).max(1);
    if workers <= 1 {
        return bounds.iter().enumerate().map(|(g, &(lo, hi))| work(g, lo, hi)).collect();
    }
    let cursor = AtomicUsize::new(0);
    let mut slots: Vec<Option<O>> = Vec::new();
    slots.resize_with(bounds.len(), || None);
    let slots = Mutex::new(&mut slots);
    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| loop {
                let g = cursor.fetch_add(1, Ordering::Relaxed);
                if g >= bounds.len() {
                    break;
                }
                let (lo, hi) = bounds[g];
                let out = work(g, lo, hi);
                slots.lock().unwrap()[g] = Some(out);
            });
        }
    });
    slots.into_inner().unwrap().iter_mut().map(|s| s.take().unwrap()).collect()
}

// ---------------------------------------------------------------------------
// Index-driven parallel iterators (ranges, slices)
// ---------------------------------------------------------------------------

/// A parallel iterator over `0..len` materialising items through `get`.
pub struct ParIndexed<F> {
    len: usize,
    get: F,
}

impl<T: Send, F: Fn(usize) -> T + Sync> ParIndexed<F> {
    pub fn map<R, M>(self, m: M) -> ParIndexed<impl Fn(usize) -> R + Sync>
    where
        R: Send,
        M: Fn(T) -> R + Sync,
    {
        let get = self.get;
        ParIndexed { len: self.len, get: move |i| m(get(i)) }
    }

    pub fn for_each(self, f: impl Fn(T) + Sync) {
        let get = &self.get;
        run_groups(self.len, &|_, lo, hi| {
            for i in lo..hi {
                f(get(i));
            }
        });
    }

    /// Order-preserving collect.
    pub fn collect<C: FromIterator<T>>(self) -> C {
        let get = &self.get;
        let parts: Vec<Vec<T>> = run_groups(self.len, &|_, lo, hi| (lo..hi).map(get).collect());
        parts.into_iter().flatten().collect()
    }

    /// Group-ordered sum — bitwise identical for any worker count.
    pub fn sum<S>(self) -> S
    where
        S: std::iter::Sum<T> + std::iter::Sum<S> + Send,
    {
        let get = &self.get;
        let parts: Vec<S> = run_groups(self.len, &|_, lo, hi| (lo..hi).map(get).sum::<S>());
        parts.into_iter().sum()
    }
}

/// `into_par_iter()` for ranges.
pub trait IntoParallelIterator {
    type Item: Send;
    type Iter;
    fn into_par_iter(self) -> Self::Iter;
}

macro_rules! impl_range_par_iter {
    ($($t:ty),*) => {$(
        impl IntoParallelIterator for std::ops::Range<$t> {
            type Item = $t;
            type Iter = ParIndexed<Box<dyn Fn(usize) -> $t + Sync>>;
            fn into_par_iter(self) -> Self::Iter {
                let start = self.start;
                let len = if self.end > self.start { (self.end - self.start) as usize } else { 0 };
                ParIndexed { len, get: Box::new(move |i| start + i as $t) }
            }
        }
    )*};
}
impl_range_par_iter!(u32, u64, usize);

// ---------------------------------------------------------------------------
// Slice adapters
// ---------------------------------------------------------------------------

/// `par_iter()` / `par_chunks()` on shared slices.
pub trait ParallelSlice<T: Sync> {
    fn as_par_slice(&self) -> &[T];

    fn par_iter<'a>(&'a self) -> ParIndexed<impl Fn(usize) -> &'a T + Sync + 'a>
    where
        T: 'a,
    {
        let s = self.as_par_slice();
        ParIndexed { len: s.len(), get: move |i| &s[i] }
    }

    fn par_chunks(&self, chunk_size: usize) -> ParChunks<'_, T> {
        assert!(chunk_size > 0, "chunk size must be positive");
        ParChunks { slice: self.as_par_slice(), chunk_size }
    }
}

impl<T: Sync> ParallelSlice<T> for [T] {
    fn as_par_slice(&self) -> &[T] {
        self
    }
}

impl<T: Sync> ParallelSlice<T> for Vec<T> {
    fn as_par_slice(&self) -> &[T] {
        self
    }
}

/// `par_chunks_mut()` on mutable slices.
pub trait ParallelSliceMut<T: Send> {
    fn as_par_slice_mut(&mut self) -> &mut [T];

    fn par_chunks_mut(&mut self, chunk_size: usize) -> ParChunksMut<'_, T> {
        assert!(chunk_size > 0, "chunk size must be positive");
        ParChunksMut { slice: self.as_par_slice_mut(), chunk_size }
    }
}

impl<T: Send> ParallelSliceMut<T> for [T] {
    fn as_par_slice_mut(&mut self) -> &mut [T] {
        self
    }
}

impl<T: Send> ParallelSliceMut<T> for Vec<T> {
    fn as_par_slice_mut(&mut self) -> &mut [T] {
        self
    }
}

pub struct ParChunks<'a, T> {
    slice: &'a [T],
    chunk_size: usize,
}

impl<'a, T: Sync> ParChunks<'a, T> {
    pub fn enumerate(self) -> ParChunksEnum<'a, T> {
        ParChunksEnum { slice: self.slice, chunk_size: self.chunk_size }
    }

    pub fn for_each(self, f: impl Fn(&'a [T]) + Sync) {
        self.enumerate().for_each(move |(_, c)| f(c));
    }
}

pub struct ParChunksEnum<'a, T> {
    slice: &'a [T],
    chunk_size: usize,
}

impl<'a, T: Sync> ParChunksEnum<'a, T> {
    pub fn for_each(self, f: impl Fn((usize, &'a [T])) + Sync) {
        let chunks: Vec<&[T]> = self.slice.chunks(self.chunk_size).collect();
        let chunks = &chunks;
        run_groups(chunks.len(), &|_, lo, hi| {
            for (ci, chunk) in chunks.iter().enumerate().take(hi).skip(lo) {
                f((ci, chunk));
            }
        });
    }
}

pub struct ParChunksMut<'a, T> {
    slice: &'a mut [T],
    chunk_size: usize,
}

impl<'a, T: Send> ParChunksMut<'a, T> {
    pub fn enumerate(self) -> ParChunksMutEnum<'a, T> {
        ParChunksMutEnum { slice: self.slice, chunk_size: self.chunk_size }
    }

    pub fn for_each(self, f: impl Fn(&'a mut [T]) + Sync) {
        self.enumerate().for_each(move |(_, c)| f(c));
    }
}

pub struct ParChunksMutEnum<'a, T> {
    slice: &'a mut [T],
    chunk_size: usize,
}

impl<'a, T: Send> ParChunksMutEnum<'a, T> {
    pub fn for_each(self, f: impl Fn((usize, &'a mut [T])) + Sync) {
        let workers = current_num_threads();
        if workers <= 1 {
            for (ci, chunk) in self.slice.chunks_mut(self.chunk_size).enumerate() {
                f((ci, chunk));
            }
            return;
        }
        // Disjoint &mut chunks distributed through a worklist; each worker
        // pops the next chunk. Mutex cost is per chunk, not per element.
        let work: Mutex<Vec<(usize, &'a mut [T])>> =
            Mutex::new(self.slice.chunks_mut(self.chunk_size).enumerate().rev().collect());
        let n_chunks = work.lock().unwrap().len();
        let workers = workers.min(n_chunks).max(1);
        std::thread::scope(|scope| {
            for _ in 0..workers {
                scope.spawn(|| loop {
                    let item = work.lock().unwrap().pop();
                    match item {
                        Some(pair) => f(pair),
                        None => break,
                    }
                });
            }
        });
    }
}

/// The rayon prelude: the traits the adapters hang off.
pub mod prelude {
    pub use crate::{IntoParallelIterator, ParallelSlice, ParallelSliceMut};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use super::*;

    #[test]
    fn range_map_collect_preserves_order() {
        let v: Vec<u64> = (0u64..1000).into_par_iter().map(|i| i * 2).collect();
        assert_eq!(v, (0..1000).map(|i| i * 2).collect::<Vec<u64>>());
    }

    #[test]
    fn sum_is_thread_count_independent() {
        let items: Vec<f64> = (0..10_000).map(|i| (i as f64).sin()).collect();
        let sum_with = |threads| {
            let pool = ThreadPoolBuilder::new().num_threads(threads).build().unwrap();
            pool.install(|| (0..items.len()).into_par_iter().map(|i| items[i] * 1.5).sum::<f64>())
        };
        let s1 = sum_with(1);
        let s2 = sum_with(2);
        let s8 = sum_with(8);
        assert_eq!(s1.to_bits(), s2.to_bits());
        assert_eq!(s1.to_bits(), s8.to_bits());
    }

    #[test]
    fn par_chunks_mut_writes_every_chunk() {
        let pool = ThreadPoolBuilder::new().num_threads(4).build().unwrap();
        let mut data = vec![0usize; 103];
        pool.install(|| {
            data.par_chunks_mut(10).enumerate().for_each(|(ci, chunk)| {
                for (off, slot) in chunk.iter_mut().enumerate() {
                    *slot = ci * 10 + off;
                }
            });
        });
        assert_eq!(data, (0..103).collect::<Vec<usize>>());
    }

    #[test]
    fn par_iter_on_vec_collects_in_order() {
        let input: Vec<(u32, u32)> = (0..97).map(|i| (i, i + 1)).collect();
        let out: Vec<u32> = input.par_iter().map(|&(a, b)| a + b).collect();
        assert_eq!(out, (0..97).map(|i| 2 * i + 1).collect::<Vec<u32>>());
    }

    #[test]
    fn install_nests_and_restores() {
        let outer = ThreadPoolBuilder::new().num_threads(3).build().unwrap();
        let inner = ThreadPoolBuilder::new().num_threads(1).build().unwrap();
        outer.install(|| {
            assert_eq!(current_num_threads(), 3);
            inner.install(|| assert_eq!(current_num_threads(), 1));
            assert_eq!(current_num_threads(), 3);
        });
    }

    #[test]
    fn par_chunks_shared_enumerates_all() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        let data: Vec<u32> = (0..55).collect();
        let seen = AtomicUsize::new(0);
        data.par_chunks(7).enumerate().for_each(|(ci, chunk)| {
            assert_eq!(chunk[0] as usize, ci * 7);
            seen.fetch_add(chunk.len(), Ordering::Relaxed);
        });
        assert_eq!(seen.load(Ordering::Relaxed), 55);
    }
}
