//! Offline shim for the `rayon` crate.
//!
//! Provides the adapter surface this workspace uses — `par_iter`,
//! `par_iter_mut`, `into_par_iter` on ranges, `par_chunks`/`par_chunks_mut`,
//! `map`, `enumerate`, `for_each`, `collect`, `sum`, plus
//! [`ThreadPoolBuilder`] / [`ThreadPool::install`].
//!
//! Two properties the workspace's determinism tests rely on:
//!
//! * **Order-preserving collect**: `map(..).collect()` returns results in
//!   input order, whatever the worker interleaving.
//! * **Thread-count-independent reduction**: work is split into a fixed
//!   group grid (independent of the worker count) and partial results are
//!   combined in group order, so `sum()` is bitwise identical for any
//!   `num_threads` — strictly stronger than upstream rayon's guarantee, and
//!   what makes the parallel engines reproducible.
//!
//! And one performance property the phase-heavy engines rely on:
//!
//! * **Persistent workers**: a [`ThreadPool`] spawns its OS threads once at
//!   construction and parks them between jobs. Every par-adapter call made
//!   inside [`ThreadPool::install`] dispatches to those parked workers
//!   through a condvar'd job slot instead of spawning a fresh
//!   `std::thread::scope` — a colored sweep with `1 + num_colors` parallel
//!   phases per iteration pays `num_threads − 1` thread spawns per pool
//!   *lifetime*, not per phase. [`spawned_thread_count`] exposes the
//!   shim-wide spawn counter the regression tests pin this with. Adapter
//!   calls made outside any `install` fall back to scoped one-shot workers
//!   (the pre-pool behaviour).

use std::cell::{Cell, RefCell};
use std::fmt;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};

thread_local! {
    static CURRENT_THREADS: Cell<usize> = const { Cell::new(0) };
    /// Stack of installed pools (innermost last); par-adapters dispatch to
    /// the top entry.
    static POOL_STACK: RefCell<Vec<Arc<PoolShared>>> = const { RefCell::new(Vec::new()) };
}

/// Every OS thread this shim has ever spawned (pool workers and fallback
/// scoped workers alike). Pool reuse is regression-tested by pinning the
/// delta of this counter across repeated `install`/par-adapter calls.
static SPAWNED_THREADS: AtomicUsize = AtomicUsize::new(0);

/// Total OS threads spawned by this shim since process start.
pub fn spawned_thread_count() -> usize {
    SPAWNED_THREADS.load(Ordering::Relaxed)
}

fn default_threads() -> usize {
    std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
}

/// Number of worker threads par-adapters on this thread currently use.
pub fn current_num_threads() -> usize {
    let t = CURRENT_THREADS.with(|c| c.get());
    if t == 0 {
        default_threads()
    } else {
        t
    }
}

/// Error from [`ThreadPoolBuilder::build`]; this shim never produces one.
#[derive(Debug)]
pub struct ThreadPoolBuildError;

impl fmt::Display for ThreadPoolBuildError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "thread pool build error")
    }
}

impl std::error::Error for ThreadPoolBuildError {}

/// Builder mirroring `rayon::ThreadPoolBuilder`.
#[derive(Debug, Default)]
pub struct ThreadPoolBuilder {
    num_threads: usize,
}

impl ThreadPoolBuilder {
    pub fn new() -> Self {
        Self::default()
    }

    /// Target worker count; 0 means "host parallelism".
    pub fn num_threads(mut self, n: usize) -> Self {
        self.num_threads = n;
        self
    }

    pub fn build(self) -> Result<ThreadPool, ThreadPoolBuildError> {
        let n = if self.num_threads == 0 { default_threads() } else { self.num_threads };
        Ok(ThreadPool::spawn(n))
    }
}

/// A dispatched job: a type-erased reference to the caller's task closure.
/// The `'static` lifetime is a lie the completion protocol makes sound —
/// the dispatching thread blocks in [`PoolShared::run`] until every worker
/// has finished executing the job, so the referent outlives every use.
#[derive(Clone, Copy)]
struct Job {
    task: &'static (dyn Fn() + Sync),
}

struct PoolState {
    job: Option<Job>,
    /// Bumped once per dispatched job; workers run each epoch exactly once.
    epoch: u64,
    /// Workers still executing the current job.
    active: usize,
    /// First panic payload a worker caught during the current job — the
    /// dispatcher re-raises it after the job completes, mirroring the
    /// panic propagation of `std::thread::scope`.
    panic: Option<Box<dyn std::any::Any + Send>>,
    shutdown: bool,
}

/// State shared between a pool's owner and its parked workers.
struct PoolShared {
    /// Persistent worker count (`num_threads − 1`; the caller participates).
    workers: usize,
    state: Mutex<PoolState>,
    /// Workers wait here for a new epoch.
    work_cv: Condvar,
    /// The dispatcher waits here for `active == 0`.
    done_cv: Condvar,
    /// Serialises concurrent `run` calls on one pool (the job slot holds a
    /// single job).
    dispatch: Mutex<()>,
}

/// Poison-tolerant lock: a panicking job poisons the pool's mutexes when
/// its guards unwind, but every per-job invariant (`job`, `epoch`,
/// `active`, `panic`) is re-established at the next dispatch, so the
/// poisoned state is safe to keep using — exactly the panic story of the
/// old `std::thread::scope` path.
fn relock<T>(m: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    m.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}

/// [`relock`] for condvar waits.
fn rewait<'a, T>(
    cv: &Condvar,
    guard: std::sync::MutexGuard<'a, T>,
) -> std::sync::MutexGuard<'a, T> {
    cv.wait(guard).unwrap_or_else(std::sync::PoisonError::into_inner)
}

impl PoolShared {
    /// Execute `task` on every worker plus the calling thread, returning
    /// once all of them have finished. `task` is expected to partition its
    /// own work (e.g. through an atomic cursor) — extra workers simply find
    /// nothing to do.
    fn run(&self, task: &(dyn Fn() + Sync)) {
        if self.workers == 0 {
            task();
            return;
        }
        let _serialise = relock(&self.dispatch);
        // SAFETY: the job reference escapes only to the pool's workers, and
        // this function does not return until `active` drops back to zero,
        // i.e. until no worker holds the reference any more.
        let job = Job {
            task: unsafe {
                std::mem::transmute::<&(dyn Fn() + Sync), &'static (dyn Fn() + Sync)>(task)
            },
        };
        {
            let mut st = relock(&self.state);
            st.job = Some(job);
            st.epoch += 1;
            st.active = self.workers;
            self.work_cv.notify_all();
        }
        // run the caller's share behind catch_unwind too: unwinding out of
        // this frame while workers still execute the job would dangle the
        // transmuted reference — the wait below must happen on every path
        let caller = std::panic::catch_unwind(std::panic::AssertUnwindSafe(task));
        let worker_panic = {
            let mut st = relock(&self.state);
            while st.active > 0 {
                st = rewait(&self.done_cv, st);
            }
            st.job = None;
            st.panic.take()
        };
        if let Err(payload) = caller {
            std::panic::resume_unwind(payload);
        }
        if let Some(payload) = worker_panic {
            std::panic::resume_unwind(payload);
        }
    }
}

fn worker_loop(shared: Arc<PoolShared>) {
    // A worker never exposes its pool's parallelism to nested adapters:
    // par-calls made from inside a job run inline on the worker.
    CURRENT_THREADS.with(|c| c.set(1));
    let mut seen_epoch = 0u64;
    loop {
        let job = {
            let mut st = relock(&shared.state);
            loop {
                if st.shutdown {
                    return;
                }
                if st.epoch != seen_epoch {
                    seen_epoch = st.epoch;
                    break st.job.expect("epoch bumped with a job in the slot");
                }
                st = rewait(&shared.work_cv, st);
            }
        };
        // a panicking job must not kill the worker (active would never
        // drop to zero and every later dispatch would deadlock): catch it,
        // hand the payload to the dispatcher, keep serving
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| (job.task)()));
        let mut st = relock(&shared.state);
        if let Err(payload) = result {
            st.panic.get_or_insert(payload);
        }
        st.active -= 1;
        if st.active == 0 {
            shared.done_cv.notify_all();
        }
    }
}

/// A pool of persistent parked workers: par-adapters called inside
/// [`install`](Self::install) split work across this many threads
/// (`num_threads − 1` parked workers plus the calling thread), spawned
/// **once** at construction.
pub struct ThreadPool {
    num_threads: usize,
    shared: Arc<PoolShared>,
    handles: Vec<std::thread::JoinHandle<()>>,
}

impl fmt::Debug for ThreadPool {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ThreadPool").field("num_threads", &self.num_threads).finish()
    }
}

impl ThreadPool {
    fn spawn(num_threads: usize) -> Self {
        let workers = num_threads.saturating_sub(1);
        let shared = Arc::new(PoolShared {
            workers,
            state: Mutex::new(PoolState {
                job: None,
                epoch: 0,
                active: 0,
                panic: None,
                shutdown: false,
            }),
            work_cv: Condvar::new(),
            done_cv: Condvar::new(),
            dispatch: Mutex::new(()),
        });
        let handles = (0..workers)
            .map(|_| {
                SPAWNED_THREADS.fetch_add(1, Ordering::Relaxed);
                let shared = Arc::clone(&shared);
                std::thread::spawn(move || worker_loop(shared))
            })
            .collect();
        ThreadPool { num_threads, shared, handles }
    }

    /// Run `f` with this pool's workers active for every par-adapter call
    /// made on the calling thread. Panic-safe: the pool-stack entry and
    /// the thread-count override are unwound with the panic, so a caught
    /// panic (tests, proptest shrinking) cannot leave a stale pool
    /// installed on the thread.
    pub fn install<R>(&self, f: impl FnOnce() -> R) -> R {
        struct InstallGuard {
            prev_threads: usize,
        }
        impl Drop for InstallGuard {
            fn drop(&mut self) {
                POOL_STACK.with(|s| {
                    s.borrow_mut().pop();
                });
                CURRENT_THREADS.with(|c| c.set(self.prev_threads));
            }
        }
        let prev_threads = CURRENT_THREADS.with(|c| c.get());
        CURRENT_THREADS.with(|c| c.set(self.num_threads));
        POOL_STACK.with(|s| s.borrow_mut().push(Arc::clone(&self.shared)));
        let _guard = InstallGuard { prev_threads };
        f()
    }

    pub fn current_num_threads(&self) -> usize {
        self.num_threads
    }
}

impl Drop for ThreadPool {
    fn drop(&mut self) {
        {
            let mut st = relock(&self.shared.state);
            st.shutdown = true;
            self.shared.work_cv.notify_all();
        }
        for handle in self.handles.drain(..) {
            let _ = handle.join();
        }
    }
}

/// The pool the innermost enclosing `install` put on this thread, if any.
fn current_pool() -> Option<Arc<PoolShared>> {
    POOL_STACK.with(|s| s.borrow().last().cloned())
}

/// Fixed group grid: split `len` items into at most 64 contiguous groups.
/// The grid depends only on `len`, never on the worker count — the key to
/// thread-count-independent reductions.
fn group_bounds(len: usize) -> Vec<(usize, usize)> {
    if len == 0 {
        return Vec::new();
    }
    let groups = len.min(64);
    (0..groups)
        .map(|g| (g * len / groups, (g + 1) * len / groups))
        .filter(|&(lo, hi)| lo < hi)
        .collect()
}

/// Run `work(group_index, lo, hi)` over the group grid on the active worker
/// count, returning per-group outputs in group order. Dispatches to the
/// installed pool's persistent workers when one is active, falling back to
/// one-shot scoped workers otherwise.
fn run_groups<O: Send>(len: usize, work: &(impl Fn(usize, usize, usize) -> O + Sync)) -> Vec<O> {
    let bounds = group_bounds(len);
    let threads = current_num_threads().min(bounds.len()).max(1);
    if threads <= 1 {
        return bounds.iter().enumerate().map(|(g, &(lo, hi))| work(g, lo, hi)).collect();
    }
    let cursor = AtomicUsize::new(0);
    let mut slots: Vec<Option<O>> = Vec::new();
    slots.resize_with(bounds.len(), || None);
    {
        let slots = Mutex::new(&mut slots);
        let task = || loop {
            let g = cursor.fetch_add(1, Ordering::Relaxed);
            if g >= bounds.len() {
                break;
            }
            let (lo, hi) = bounds[g];
            let out = work(g, lo, hi);
            slots.lock().unwrap()[g] = Some(out);
        };
        match current_pool() {
            Some(pool) => pool.run(&task),
            None => {
                std::thread::scope(|scope| {
                    for _ in 0..threads {
                        SPAWNED_THREADS.fetch_add(1, Ordering::Relaxed);
                        scope.spawn(task);
                    }
                });
            }
        }
    }
    slots.iter_mut().map(|s| s.take().unwrap()).collect()
}

/// A raw base pointer the disjoint-range adapters share across workers.
/// Soundness rests on `run_groups` handing out non-overlapping index
/// ranges, so no element is reachable from two workers.
struct SyncPtr<T>(*mut T);
unsafe impl<T> Sync for SyncPtr<T> {}
unsafe impl<T> Send for SyncPtr<T> {}

// ---------------------------------------------------------------------------
// Index-driven parallel iterators (ranges, slices)
// ---------------------------------------------------------------------------

/// A parallel iterator over `0..len` materialising items through `get`.
pub struct ParIndexed<F> {
    len: usize,
    get: F,
}

impl<T: Send, F: Fn(usize) -> T + Sync> ParIndexed<F> {
    pub fn map<R, M>(self, m: M) -> ParIndexed<impl Fn(usize) -> R + Sync>
    where
        R: Send,
        M: Fn(T) -> R + Sync,
    {
        let get = self.get;
        ParIndexed { len: self.len, get: move |i| m(get(i)) }
    }

    pub fn for_each(self, f: impl Fn(T) + Sync) {
        let get = &self.get;
        run_groups(self.len, &|_, lo, hi| {
            for i in lo..hi {
                f(get(i));
            }
        });
    }

    /// Order-preserving collect.
    pub fn collect<C: FromIterator<T>>(self) -> C {
        let get = &self.get;
        let parts: Vec<Vec<T>> = run_groups(self.len, &|_, lo, hi| (lo..hi).map(get).collect());
        parts.into_iter().flatten().collect()
    }

    /// Group-ordered sum — bitwise identical for any worker count.
    pub fn sum<S>(self) -> S
    where
        S: std::iter::Sum<T> + std::iter::Sum<S> + Send,
    {
        let get = &self.get;
        let parts: Vec<S> = run_groups(self.len, &|_, lo, hi| (lo..hi).map(get).sum::<S>());
        parts.into_iter().sum()
    }
}

/// `into_par_iter()` for ranges.
pub trait IntoParallelIterator {
    type Item: Send;
    type Iter;
    fn into_par_iter(self) -> Self::Iter;
}

macro_rules! impl_range_par_iter {
    ($($t:ty),*) => {$(
        impl IntoParallelIterator for std::ops::Range<$t> {
            type Item = $t;
            type Iter = ParIndexed<Box<dyn Fn(usize) -> $t + Sync>>;
            fn into_par_iter(self) -> Self::Iter {
                let start = self.start;
                let len = if self.end > self.start { (self.end - self.start) as usize } else { 0 };
                ParIndexed { len, get: Box::new(move |i| start + i as $t) }
            }
        }
    )*};
}
impl_range_par_iter!(u32, u64, usize);

// ---------------------------------------------------------------------------
// Slice adapters
// ---------------------------------------------------------------------------

/// `par_iter()` / `par_chunks()` on shared slices.
pub trait ParallelSlice<T: Sync> {
    fn as_par_slice(&self) -> &[T];

    fn par_iter<'a>(&'a self) -> ParIndexed<impl Fn(usize) -> &'a T + Sync + 'a>
    where
        T: 'a,
    {
        let s = self.as_par_slice();
        ParIndexed { len: s.len(), get: move |i| &s[i] }
    }

    fn par_chunks(&self, chunk_size: usize) -> ParChunks<'_, T> {
        assert!(chunk_size > 0, "chunk size must be positive");
        ParChunks { slice: self.as_par_slice(), chunk_size }
    }
}

impl<T: Sync> ParallelSlice<T> for [T] {
    fn as_par_slice(&self) -> &[T] {
        self
    }
}

impl<T: Sync> ParallelSlice<T> for Vec<T> {
    fn as_par_slice(&self) -> &[T] {
        self
    }
}

/// `par_iter_mut()` / `par_chunks_mut()` on mutable slices.
pub trait ParallelSliceMut<T: Send> {
    fn as_par_slice_mut(&mut self) -> &mut [T];

    /// Indexed mutable parallel iteration — the idiomatic replacement for
    /// the `par_chunks_mut(1)` anti-pattern (per-item chunk bookkeeping
    /// for what is really a disjoint indexed loop).
    fn par_iter_mut(&mut self) -> ParIterMut<'_, T> {
        ParIterMut { slice: self.as_par_slice_mut() }
    }

    fn par_chunks_mut(&mut self, chunk_size: usize) -> ParChunksMut<'_, T> {
        assert!(chunk_size > 0, "chunk size must be positive");
        ParChunksMut { slice: self.as_par_slice_mut(), chunk_size }
    }
}

impl<T: Send> ParallelSliceMut<T> for [T] {
    fn as_par_slice_mut(&mut self) -> &mut [T] {
        self
    }
}

impl<T: Send> ParallelSliceMut<T> for Vec<T> {
    fn as_par_slice_mut(&mut self) -> &mut [T] {
        self
    }
}

pub struct ParIterMut<'a, T> {
    slice: &'a mut [T],
}

impl<'a, T: Send> ParIterMut<'a, T> {
    pub fn enumerate(self) -> ParIterMutEnum<'a, T> {
        ParIterMutEnum { slice: self.slice }
    }

    pub fn for_each(self, f: impl Fn(&'a mut T) + Sync) {
        self.enumerate().for_each(move |(_, item)| f(item));
    }
}

pub struct ParIterMutEnum<'a, T> {
    slice: &'a mut [T],
}

impl<'a, T: Send> ParIterMutEnum<'a, T> {
    pub fn for_each(self, f: impl Fn((usize, &'a mut T)) + Sync) {
        let len = self.slice.len();
        let base = SyncPtr(self.slice.as_mut_ptr());
        let base = &base;
        run_groups(len, &|_, lo, hi| {
            for i in lo..hi {
                // SAFETY: group index ranges are disjoint, so each element
                // is handed out exactly once across all workers.
                f((i, unsafe { &mut *base.0.add(i) }));
            }
        });
    }
}

pub struct ParChunks<'a, T> {
    slice: &'a [T],
    chunk_size: usize,
}

impl<'a, T: Sync> ParChunks<'a, T> {
    pub fn enumerate(self) -> ParChunksEnum<'a, T> {
        ParChunksEnum { slice: self.slice, chunk_size: self.chunk_size }
    }

    pub fn for_each(self, f: impl Fn(&'a [T]) + Sync) {
        self.enumerate().for_each(move |(_, c)| f(c));
    }
}

pub struct ParChunksEnum<'a, T> {
    slice: &'a [T],
    chunk_size: usize,
}

impl<'a, T: Sync> ParChunksEnum<'a, T> {
    pub fn for_each(self, f: impl Fn((usize, &'a [T])) + Sync) {
        let chunks: Vec<&[T]> = self.slice.chunks(self.chunk_size).collect();
        let chunks = &chunks;
        run_groups(chunks.len(), &|_, lo, hi| {
            for (ci, chunk) in chunks.iter().enumerate().take(hi).skip(lo) {
                f((ci, chunk));
            }
        });
    }
}

pub struct ParChunksMut<'a, T> {
    slice: &'a mut [T],
    chunk_size: usize,
}

impl<'a, T: Send> ParChunksMut<'a, T> {
    pub fn enumerate(self) -> ParChunksMutEnum<'a, T> {
        ParChunksMutEnum { slice: self.slice, chunk_size: self.chunk_size }
    }

    pub fn for_each(self, f: impl Fn(&'a mut [T]) + Sync) {
        self.enumerate().for_each(move |(_, c)| f(c));
    }
}

pub struct ParChunksMutEnum<'a, T> {
    slice: &'a mut [T],
    chunk_size: usize,
}

impl<'a, T: Send> ParChunksMutEnum<'a, T> {
    pub fn for_each(self, f: impl Fn((usize, &'a mut [T])) + Sync) {
        let len = self.slice.len();
        if len == 0 {
            return;
        }
        let chunk = self.chunk_size;
        let n_chunks = len.div_ceil(chunk);
        let base = SyncPtr(self.slice.as_mut_ptr());
        let base = &base;
        run_groups(n_chunks, &|_, lo, hi| {
            for ci in lo..hi {
                let start = ci * chunk;
                let end = (start + chunk).min(len);
                // SAFETY: chunk index ranges are disjoint across groups and
                // chunks themselves never overlap, so each element is
                // reachable from exactly one worker.
                let s = unsafe { std::slice::from_raw_parts_mut(base.0.add(start), end - start) };
                f((ci, s));
            }
        });
    }
}

/// The rayon prelude: the traits the adapters hang off.
pub mod prelude {
    pub use crate::{IntoParallelIterator, ParallelSlice, ParallelSliceMut};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use super::*;

    #[test]
    fn range_map_collect_preserves_order() {
        let _serial = COUNTER_TESTS.lock().unwrap();
        let v: Vec<u64> = (0u64..1000).into_par_iter().map(|i| i * 2).collect();
        assert_eq!(v, (0..1000).map(|i| i * 2).collect::<Vec<u64>>());
    }

    #[test]
    fn sum_is_thread_count_independent() {
        let _serial = COUNTER_TESTS.lock().unwrap();
        let items: Vec<f64> = (0..10_000).map(|i| (i as f64).sin()).collect();
        let sum_with = |threads| {
            let pool = ThreadPoolBuilder::new().num_threads(threads).build().unwrap();
            pool.install(|| (0..items.len()).into_par_iter().map(|i| items[i] * 1.5).sum::<f64>())
        };
        let s1 = sum_with(1);
        let s2 = sum_with(2);
        let s8 = sum_with(8);
        assert_eq!(s1.to_bits(), s2.to_bits());
        assert_eq!(s1.to_bits(), s8.to_bits());
    }

    #[test]
    fn par_chunks_mut_writes_every_chunk() {
        let _serial = COUNTER_TESTS.lock().unwrap();
        let pool = ThreadPoolBuilder::new().num_threads(4).build().unwrap();
        let mut data = vec![0usize; 103];
        pool.install(|| {
            data.par_chunks_mut(10).enumerate().for_each(|(ci, chunk)| {
                for (off, slot) in chunk.iter_mut().enumerate() {
                    *slot = ci * 10 + off;
                }
            });
        });
        assert_eq!(data, (0..103).collect::<Vec<usize>>());
    }

    #[test]
    fn par_iter_mut_visits_every_item_once() {
        let _serial = COUNTER_TESTS.lock().unwrap();
        let pool = ThreadPoolBuilder::new().num_threads(3).build().unwrap();
        let mut data = vec![0u32; 157];
        pool.install(|| {
            data.par_iter_mut().enumerate().for_each(|(i, slot)| {
                *slot += i as u32 + 1;
            });
        });
        assert_eq!(data, (1..=157).collect::<Vec<u32>>());
    }

    #[test]
    fn par_iter_on_vec_collects_in_order() {
        let _serial = COUNTER_TESTS.lock().unwrap();
        let input: Vec<(u32, u32)> = (0..97).map(|i| (i, i + 1)).collect();
        let out: Vec<u32> = input.par_iter().map(|&(a, b)| a + b).collect();
        assert_eq!(out, (0..97).map(|i| 2 * i + 1).collect::<Vec<u32>>());
    }

    #[test]
    fn install_nests_and_restores() {
        let _serial = COUNTER_TESTS.lock().unwrap();
        let outer = ThreadPoolBuilder::new().num_threads(3).build().unwrap();
        let inner = ThreadPoolBuilder::new().num_threads(1).build().unwrap();
        outer.install(|| {
            assert_eq!(current_num_threads(), 3);
            inner.install(|| assert_eq!(current_num_threads(), 1));
            assert_eq!(current_num_threads(), 3);
        });
    }

    #[test]
    fn par_chunks_shared_enumerates_all() {
        let _serial = COUNTER_TESTS.lock().unwrap();
        use std::sync::atomic::{AtomicUsize, Ordering};
        let data: Vec<u32> = (0..55).collect();
        let seen = AtomicUsize::new(0);
        data.par_chunks(7).enumerate().for_each(|(ci, chunk)| {
            assert_eq!(chunk[0] as usize, ci * 7);
            seen.fetch_add(chunk.len(), Ordering::Relaxed);
        });
        assert_eq!(seen.load(Ordering::Relaxed), 55);
    }

    /// Serialises every test in this module: the spawn counter is global
    /// and adapter calls outside `install` spawn fallback workers on
    /// multi-core hosts, so any concurrently-running test would skew the
    /// exact-delta assertions of the counter tests.
    static COUNTER_TESTS: Mutex<()> = Mutex::new(());

    #[test]
    fn pool_spawns_threads_once_per_lifetime() {
        let _serial = COUNTER_TESTS.lock().unwrap();
        let before = spawned_thread_count();
        let pool = ThreadPoolBuilder::new().num_threads(4).build().unwrap();
        let after_build = spawned_thread_count();
        assert_eq!(after_build - before, 3, "a 4-thread pool spawns exactly 3 workers");
        // dozens of installs and parallel phases: not one more OS thread
        for round in 0..25 {
            let sum: u64 =
                pool.install(|| (0u64..500).into_par_iter().map(|i| i + round).sum::<u64>());
            assert_eq!(sum, (0u64..500).map(|i| i + round).sum::<u64>());
            let mut data = vec![0u8; 64];
            pool.install(|| {
                data.par_iter_mut().enumerate().for_each(|(i, s)| *s = i as u8);
            });
        }
        assert_eq!(
            spawned_thread_count(),
            after_build,
            "par-adapter calls inside install must reuse the parked workers"
        );
    }

    #[test]
    fn pool_results_match_serial_across_many_jobs() {
        let _serial = COUNTER_TESTS.lock().unwrap();
        let pool = ThreadPoolBuilder::new().num_threads(5).build().unwrap();
        for n in [0usize, 1, 7, 64, 65, 1000] {
            let par: Vec<usize> = pool.install(|| (0..n).into_par_iter().map(|i| i * i).collect());
            assert_eq!(par, (0..n).map(|i| i * i).collect::<Vec<usize>>());
        }
    }

    #[test]
    fn worker_panic_propagates_and_pool_survives() {
        let _serial = COUNTER_TESTS.lock().unwrap();
        let pool = ThreadPoolBuilder::new().num_threads(3).build().unwrap();
        let boom = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            pool.install(|| {
                (0..64usize).into_par_iter().for_each(|i| {
                    assert!(i < 10, "deliberate job panic");
                });
            });
        }));
        assert!(boom.is_err(), "the job panic must propagate to the dispatcher");
        // the pool must still dispatch (a dead worker would deadlock here)
        let v: Vec<usize> = pool.install(|| (0usize..100).into_par_iter().map(|i| i + 1).collect());
        assert_eq!(v, (1..=100).collect::<Vec<usize>>());
    }

    #[test]
    fn install_unwinds_cleanly_on_panic() {
        let _serial = COUNTER_TESTS.lock().unwrap();
        let pool = ThreadPoolBuilder::new().num_threads(2).build().unwrap();
        let boom = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            pool.install(|| panic!("deliberate install panic"));
        }));
        assert!(boom.is_err());
        // the guard must have popped the stale pool and restored the
        // thread count, so adapters keep working outside any install
        assert_eq!(current_num_threads(), default_threads());
        let sum: u64 = (0u64..100).into_par_iter().map(|i| i).sum();
        assert_eq!(sum, 4950);
    }

    #[test]
    fn single_thread_pool_runs_inline_without_workers() {
        let _serial = COUNTER_TESTS.lock().unwrap();
        let before = spawned_thread_count();
        let pool = ThreadPoolBuilder::new().num_threads(1).build().unwrap();
        let v: Vec<u32> = pool.install(|| (0u32..100).into_par_iter().map(|i| i).collect());
        assert_eq!(v.len(), 100);
        assert_eq!(spawned_thread_count(), before, "1-thread pool never spawns");
    }
}
