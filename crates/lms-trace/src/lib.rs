//! `lms-trace` — zero-dependency instrumentation for the smoothing
//! engine ladder.
//!
//! The crate provides four small layers, each usable on its own:
//!
//! - [`now_ns`] / [`clock_reads`] — a monotonic nanosecond clock over
//!   raw `clock_gettime(2)` FFI, with a sample counter that lets tests
//!   prove the *disabled* tracing path performs zero clock reads.
//! - [`TraceSink`] / [`NullTrace`] / [`Recorder`] — the compile-time
//!   span switch the resident drivers are generic over, and the
//!   buffering sink that captures thread/rank-tagged [`SpanEvent`]s.
//! - [`RankPhaseNanos`] / [`TransportProfile`] / [`PhaseBreakdown`] —
//!   aggregated per-phase / per-rank timings; `PhaseBreakdown` is what
//!   `SmoothReport` optionally carries after a profiled run.
//! - [`chrome_trace_json`] / [`validate_chrome_trace`] — Chrome
//!   `about://tracing` / Perfetto export and the well-formedness +
//!   balanced-B/E validator CI gates on.
//!
//! Everything here is **observation-only** by construction: nothing in
//! this crate touches coordinates, scores or exchange contents, and the
//! drivers' traced monomorphisations differ from the untraced ones only
//! by clock reads around existing calls.

mod chrome;
mod clock;
mod profile;
mod span;

pub use chrome::{chrome_trace_json, validate_chrome_trace};
pub use clock::{clock_reads, now_ns};
pub use profile::{PhaseBreakdown, RankPhaseNanos, TransportProfile};
pub use span::{EventPhase, NullTrace, Recorder, SpanEvent, TraceSink};
