//! Aggregated phase timings: what a profiled run *returns*, as opposed
//! to the raw event stream the [`crate::Recorder`] captures.
//!
//! Three layers, composed bottom-up:
//!
//! - [`RankPhaseNanos`] — one rank's accumulated sweep time split by
//!   phase, plus its moved-vertex count. Workers in `lms-dist` ship
//!   *deltas* of this in the `Report` wire frame (v3 additive fields);
//!   deltas make the accounting recovery-safe, since a respawned rank
//!   simply restarts its accumulator at zero.
//! - [`TransportProfile`] — what a transport measured about itself:
//!   per-rank phase nanos, the per-(src,dst) halo routing matrix, frame
//!   encode/decode time and poll-wait time (both zero for the
//!   in-process transport, which has no frames and never waits).
//! - [`PhaseBreakdown`] — the driver's span totals merged with the
//!   transport profile; this is what `SmoothReport::phase_breakdown`
//!   carries and what the bench exporters serialise.

/// One rank's accumulated sweep timings and moved-vertex count.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RankPhaseNanos {
    /// Time in the interior sweep (`sweep_interior`).
    pub interior_ns: u64,
    /// Time in interface color sweeps (`sweep_color`).
    pub color_ns: u64,
    /// Time finalising iterations (`finalize_iteration`).
    pub finish_ns: u64,
    /// Owned interface vertices whose moves were routed to neighbours.
    pub moved: u64,
}

impl RankPhaseNanos {
    /// Add another sample (a delta from a worker report) into this one.
    pub fn accumulate(&mut self, d: RankPhaseNanos) {
        self.interior_ns += d.interior_ns;
        self.color_ns += d.color_ns;
        self.finish_ns += d.finish_ns;
        self.moved += d.moved;
    }

    /// Total sweep time across all three phases.
    pub fn sweep_ns(&self) -> u64 {
        self.interior_ns + self.color_ns + self.finish_ns
    }
}

/// What a transport measured about its own plumbing during a profiled
/// run. Produced by `InProcessTransport::take_profile` /
/// `ProcessTransport::take_profile`.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct TransportProfile {
    /// Per-rank accumulated sweep phases, indexed by part id.
    pub rank_phases: Vec<RankPhaseNanos>,
    /// Halo routing time per ordered pair, `[src * parts + dst]`
    /// (empty when unprofiled). For the in-process transport this is the
    /// receiver-side cost of pulling src's batch; for the coordinator it
    /// is the time spent forwarding src's frames to dst.
    pub route_pair_ns: Vec<u64>,
    /// Coordinator time encoding frames onto pipes (0 in-process).
    pub encode_ns: u64,
    /// Coordinator time decoding frames off pipes (0 in-process).
    pub decode_ns: u64,
    /// Coordinator time blocked in `poll(2)` waiting for rank data with
    /// no released compute anywhere to hide behind — genuinely idle at
    /// a dependence (0 in-process).
    pub poll_wait_ns: u64,
    /// Coordinator poll-wait that overlapped rank compute already
    /// released ahead of the round being drained (the overlap
    /// multiplexer's hidden class; 0 in-process and in serialized
    /// mode). `poll_wait_ns + hidden_wait_ns` is the coordinator's
    /// total wall time in `poll(2)` — the split is what proves a
    /// poll-wait reduction came from hiding, not from shifting the
    /// wait elsewhere.
    pub hidden_wait_ns: u64,
    /// Elements scored by the ranks' sweep stars and dirty re-scores —
    /// the denominator-side of the scored-elements/sec throughput
    /// counter. Zero when the transport cannot observe it (remote ranks
    /// do not ship this counter over the wire).
    pub scored_elements: u64,
}

/// Per-phase timing summary of one smoothing run: driver span totals
/// plus the transport's self-measurements. Attached to
/// `SmoothReport::phase_breakdown` by the `smooth_profiled` entry
/// points; `None` on unprofiled runs so report equality gates are
/// unaffected.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct PhaseBreakdown {
    /// Driver time in the initial gather (coords + scores out to ranks).
    pub gather_ns: u64,
    /// Driver time across all interior phases.
    pub interior_ns: u64,
    /// Driver time across all color steps (sweep + halo exchange).
    pub color_step_ns: u64,
    /// Driver time across all iteration finishes (delta folds).
    pub finish_ns: u64,
    /// Driver time in the final scatter back into the mesh.
    pub scatter_ns: u64,
    /// Driver time taking checkpoints (fault-tolerant driver only).
    pub checkpoint_ns: u64,
    /// Driver time in recovery (respawn + resync + reload).
    pub recover_ns: u64,
    /// Transport self-measurements (see [`TransportProfile`]).
    pub transport: TransportProfile,
}

impl PhaseBreakdown {
    /// Fold the driver's recorded span totals into the matching fields.
    /// Unknown span names are ignored (forward compatibility).
    pub fn apply_span_totals(&mut self, totals: &[(&'static str, u64, u64)]) {
        for &(name, total, _count) in totals {
            match name {
                "gather" => self.gather_ns += total,
                "interior" => self.interior_ns += total,
                "color_step" => self.color_step_ns += total,
                "finish" => self.finish_ns += total,
                "scatter" => self.scatter_ns += total,
                "checkpoint" => self.checkpoint_ns += total,
                "recover" => self.recover_ns += total,
                _ => {}
            }
        }
    }

    /// Total accumulated sweep nanoseconds per part, indexed by part id.
    /// The input of measured repartitioning.
    pub fn per_part_sweep_ns(&self) -> Vec<u64> {
        self.transport.rank_phases.iter().map(|r| r.sweep_ns()).collect()
    }

    /// Driver wall time across all recorded phases.
    pub fn driver_total_ns(&self) -> u64 {
        self.gather_ns
            + self.interior_ns
            + self.color_step_ns
            + self.finish_ns
            + self.scatter_ns
            + self.checkpoint_ns
            + self.recover_ns
    }

    /// A compact fixed-width summary table: one row per driver phase
    /// with its share of the driver total, then the transport plumbing
    /// costs, then per-part sweep times with moved-vertex counts.
    pub fn summary_table(&self) -> String {
        let total = self.driver_total_ns().max(1);
        let mut out = String::new();
        out.push_str("phase         total_ms   share\n");
        let rows = [
            ("gather", self.gather_ns),
            ("interior", self.interior_ns),
            ("color_step", self.color_step_ns),
            ("finish", self.finish_ns),
            ("scatter", self.scatter_ns),
            ("checkpoint", self.checkpoint_ns),
            ("recover", self.recover_ns),
        ];
        for (name, ns) in rows {
            if ns == 0 && !matches!(name, "gather" | "interior" | "color_step") {
                continue;
            }
            out.push_str(&format!(
                "{name:<12} {:>9.3}  {:>5.1}%\n",
                ns as f64 / 1e6,
                ns as f64 * 100.0 / total as f64
            ));
        }
        let t = &self.transport;
        if t.encode_ns + t.decode_ns + t.poll_wait_ns + t.hidden_wait_ns > 0 {
            out.push_str(&format!(
                "transport    encode {:.3}ms  decode {:.3}ms  poll-wait {:.3}ms\n",
                t.encode_ns as f64 / 1e6,
                t.decode_ns as f64 / 1e6,
                t.poll_wait_ns as f64 / 1e6
            ));
        }
        if t.hidden_wait_ns > 0 {
            out.push_str(&format!(
                "overlap      hidden-wait {:.3}ms (poll-wait above is idle-at-dependence only)\n",
                t.hidden_wait_ns as f64 / 1e6
            ));
        }
        if !t.rank_phases.is_empty() {
            out.push_str("part  sweep_ms  interior_ms  color_ms  finish_ms     moved\n");
            for (p, r) in t.rank_phases.iter().enumerate() {
                out.push_str(&format!(
                    "{p:>4} {:>9.3} {:>12.3} {:>9.3} {:>10.3} {:>9}\n",
                    r.sweep_ns() as f64 / 1e6,
                    r.interior_ns as f64 / 1e6,
                    r.color_ns as f64 / 1e6,
                    r.finish_ns as f64 / 1e6,
                    r.moved
                ));
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rank_phases_accumulate_and_sum() {
        let mut r = RankPhaseNanos::default();
        r.accumulate(RankPhaseNanos { interior_ns: 5, color_ns: 3, finish_ns: 2, moved: 7 });
        r.accumulate(RankPhaseNanos { interior_ns: 1, color_ns: 1, finish_ns: 1, moved: 1 });
        assert_eq!(r.sweep_ns(), 13);
        assert_eq!(r.moved, 8);
    }

    #[test]
    fn span_totals_land_in_the_right_fields() {
        let mut b = PhaseBreakdown::default();
        b.apply_span_totals(&[
            ("gather", 10, 1),
            ("interior", 30, 3),
            ("color_step", 40, 9),
            ("finish", 15, 3),
            ("scatter", 5, 1),
            ("mystery", 999, 1),
        ]);
        assert_eq!(b.gather_ns, 10);
        assert_eq!(b.interior_ns, 30);
        assert_eq!(b.color_step_ns, 40);
        assert_eq!(b.finish_ns, 15);
        assert_eq!(b.scatter_ns, 5);
        assert_eq!(b.driver_total_ns(), 100);
    }

    #[test]
    fn summary_table_lists_phases_and_parts() {
        let mut b = PhaseBreakdown::default();
        b.apply_span_totals(&[("gather", 1_000_000, 1), ("interior", 3_000_000, 3)]);
        b.transport.rank_phases = vec![
            RankPhaseNanos {
                interior_ns: 2_000_000,
                color_ns: 500_000,
                finish_ns: 100_000,
                moved: 42,
            },
            RankPhaseNanos::default(),
        ];
        b.transport.poll_wait_ns = 250_000;
        let table = b.summary_table();
        assert!(table.contains("gather"));
        assert!(table.contains("interior"));
        assert!(table.contains("poll-wait"));
        assert!(table.contains("42"));
        assert!(!table.contains("recover"), "zero-valued optional phases stay hidden");
        assert!(!table.contains("hidden-wait"), "no overlap row without hidden wait");
        b.transport.hidden_wait_ns = 750_000;
        let table = b.summary_table();
        assert!(table.contains("hidden-wait"), "overlap split surfaces when nonzero");
    }

    #[test]
    fn per_part_sweep_feeds_repartitioning() {
        let mut b = PhaseBreakdown::default();
        b.transport.rank_phases = vec![
            RankPhaseNanos { interior_ns: 10, color_ns: 1, finish_ns: 1, moved: 0 },
            RankPhaseNanos { interior_ns: 4, color_ns: 2, finish_ns: 0, moved: 0 },
        ];
        assert_eq!(b.per_part_sweep_ns(), vec![12, 6]);
    }
}
