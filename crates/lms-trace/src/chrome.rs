//! Chrome `about://tracing` / Perfetto JSON export, plus the validator
//! CI uses to gate the exported file.
//!
//! The export format is the "JSON array of trace events" flavour: each
//! span becomes a pair of `"ph": "B"` / `"ph": "E"` duration events with
//! microsecond timestamps, `pid` 0 and the recorder's tag as `tid`.
//! Load the file in `chrome://tracing` or <https://ui.perfetto.dev>.
//!
//! The validator deliberately re-parses the serialised text with a tiny
//! hand-rolled JSON reader instead of trusting the in-memory events:
//! the CI contract is "the *file* is well-formed and every `B` has a
//! matching `E` in stack order per thread", which must hold for any
//! producer, not just this exporter.

use crate::span::{EventPhase, SpanEvent};

/// Serialise events as a chrome-trace JSON array (timestamps in µs,
/// fractional part preserved down to the nanosecond).
pub fn chrome_trace_json(events: &[SpanEvent]) -> String {
    let mut out = String::with_capacity(events.len() * 96 + 2);
    out.push_str("[\n");
    for (i, ev) in events.iter().enumerate() {
        if i > 0 {
            out.push_str(",\n");
        }
        let ph = match ev.phase {
            EventPhase::Begin => "B",
            EventPhase::End => "E",
        };
        let us = ev.ts_ns / 1_000;
        let frac = ev.ts_ns % 1_000;
        out.push_str(&format!(
            "{{\"name\":\"{}\",\"cat\":\"lms\",\"ph\":\"{ph}\",\"ts\":{us}.{frac:03},\
             \"pid\":0,\"tid\":{},\"args\":{{\"a\":{},\"b\":{}}}}}",
            ev.name, ev.tid, ev.a, ev.b
        ));
    }
    out.push_str("\n]\n");
    out
}

/// Validate a chrome-trace JSON document: well-formed JSON, an array of
/// objects each carrying string `name`/`ph` and numeric `ts`/`tid`, and
/// per-tid stack-ordered balance of `B`/`E` events. Returns the event
/// count.
pub fn validate_chrome_trace(json: &str) -> Result<usize, String> {
    let value = parse_json(json)?;
    let Value::Array(events) = value else {
        return Err("top-level value is not an array".into());
    };
    // per-tid stacks of open span names
    let mut stacks: Vec<(f64, Vec<String>)> = Vec::new();
    for (i, ev) in events.iter().enumerate() {
        let Value::Object(fields) = ev else {
            return Err(format!("event {i} is not an object"));
        };
        let get = |key: &str| fields.iter().find(|(k, _)| k == key).map(|(_, v)| v);
        let Some(Value::String(name)) = get("name") else {
            return Err(format!("event {i}: missing string \"name\""));
        };
        let Some(Value::String(ph)) = get("ph") else {
            return Err(format!("event {i}: missing string \"ph\""));
        };
        let Some(Value::Number(_)) = get("ts") else {
            return Err(format!("event {i}: missing numeric \"ts\""));
        };
        let Some(Value::Number(tid)) = get("tid") else {
            return Err(format!("event {i}: missing numeric \"tid\""));
        };
        let stack = match stacks.iter_mut().find(|(t, _)| t == tid) {
            Some((_, s)) => s,
            None => {
                stacks.push((*tid, Vec::new()));
                &mut stacks.last_mut().unwrap().1
            }
        };
        match ph.as_str() {
            "B" => stack.push(name.clone()),
            "E" => match stack.pop() {
                Some(open) if open == *name => {}
                Some(open) => {
                    return Err(format!(
                        "event {i}: tid {tid} closes {name:?} but {open:?} is open"
                    ));
                }
                None => {
                    return Err(format!("event {i}: tid {tid} closes {name:?} with no open span"))
                }
            },
            other => return Err(format!("event {i}: unsupported ph {other:?}")),
        }
    }
    for (tid, stack) in &stacks {
        if let Some(open) = stack.last() {
            return Err(format!("tid {tid}: span {open:?} never closed"));
        }
    }
    Ok(events.len())
}

// ---------------------------------------------------------------------
// A minimal recursive-descent JSON reader — just enough for validation.
// Objects keep insertion order as (key, value) pairs; numbers are f64.
// ---------------------------------------------------------------------

#[derive(Debug, Clone, PartialEq)]
enum Value {
    Null,
    Bool(bool),
    Number(f64),
    String(String),
    Array(Vec<Value>),
    Object(Vec<(String, Value)>),
}

struct Reader<'a> {
    bytes: &'a [u8],
    pos: usize,
}

fn parse_json(text: &str) -> Result<Value, String> {
    let mut r = Reader { bytes: text.as_bytes(), pos: 0 };
    let v = r.value()?;
    r.skip_ws();
    if r.pos != r.bytes.len() {
        return Err(format!("trailing bytes at offset {}", r.pos));
    }
    Ok(v)
}

impl Reader<'_> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&mut self) -> Result<u8, String> {
        self.skip_ws();
        self.bytes.get(self.pos).copied().ok_or_else(|| "unexpected end of input".to_string())
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek()? == b {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected {:?} at offset {}", b as char, self.pos))
        }
    }

    fn value(&mut self) -> Result<Value, String> {
        match self.peek()? {
            b'{' => self.object(),
            b'[' => self.array(),
            b'"' => Ok(Value::String(self.string()?)),
            b't' => self.literal("true", Value::Bool(true)),
            b'f' => self.literal("false", Value::Bool(false)),
            b'n' => self.literal("null", Value::Null),
            b'-' | b'0'..=b'9' => self.number(),
            other => Err(format!("unexpected byte {:?} at offset {}", other as char, self.pos)),
        }
    }

    fn literal(&mut self, word: &str, v: Value) -> Result<Value, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(format!("bad literal at offset {}", self.pos))
        }
    }

    fn number(&mut self) -> Result<Value, String> {
        let start = self.pos;
        while let Some(&b) = self.bytes.get(self.pos) {
            if matches!(b, b'-' | b'+' | b'.' | b'e' | b'E' | b'0'..=b'9') {
                self.pos += 1;
            } else {
                break;
            }
        }
        std::str::from_utf8(&self.bytes[start..self.pos])
            .ok()
            .and_then(|s| s.parse::<f64>().ok())
            .map(Value::Number)
            .ok_or_else(|| format!("bad number at offset {start}"))
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.bytes.get(self.pos).copied() {
                None => return Err("unterminated string".into()),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.bytes.get(self.pos).copied() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b't') => out.push('\t'),
                        Some(b'r') => out.push('\r'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .and_then(|h| u32::from_str_radix(h, 16).ok())
                                .ok_or("bad \\u escape")?;
                            out.push(char::from_u32(hex).unwrap_or('\u{fffd}'));
                            self.pos += 4;
                        }
                        _ => return Err("bad escape".into()),
                    }
                    self.pos += 1;
                }
                Some(b) => {
                    // multi-byte UTF-8 passes through untouched
                    let len = match b {
                        0x00..=0x7f => 1,
                        0xc0..=0xdf => 2,
                        0xe0..=0xef => 3,
                        _ => 4,
                    };
                    let chunk = self
                        .bytes
                        .get(self.pos..self.pos + len)
                        .and_then(|c| std::str::from_utf8(c).ok())
                        .ok_or("bad UTF-8 in string")?;
                    out.push_str(chunk);
                    self.pos += len;
                }
            }
        }
    }

    fn array(&mut self) -> Result<Value, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        if self.peek()? == b']' {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            items.push(self.value()?);
            match self.peek()? {
                b',' => self.pos += 1,
                b']' => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                other => return Err(format!("expected , or ] but found {:?}", other as char)),
            }
        }
    }

    fn object(&mut self) -> Result<Value, String> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        if self.peek()? == b'}' {
            self.pos += 1;
            return Ok(Value::Object(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.expect(b':')?;
            fields.push((key, self.value()?));
            match self.peek()? {
                b',' => self.pos += 1,
                b'}' => {
                    self.pos += 1;
                    return Ok(Value::Object(fields));
                }
                other => return Err(format!("expected , or }} but found {:?}", other as char)),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::span::{Recorder, TraceSink};

    #[test]
    fn exported_trace_validates_and_counts_events() {
        let mut r = Recorder::new(3);
        r.begin("gather", 0, 0);
        r.end("gather");
        r.begin("interior", 1, 0);
        r.begin("color_step", 1, 2);
        r.end("color_step");
        r.end("interior");
        let json = chrome_trace_json(r.events());
        assert_eq!(validate_chrome_trace(&json), Ok(6));
        assert!(json.contains("\"ph\":\"B\""));
        assert!(json.contains("\"tid\":3"));
    }

    #[test]
    fn empty_trace_is_valid() {
        assert_eq!(validate_chrome_trace(&chrome_trace_json(&[])), Ok(0));
    }

    #[test]
    fn malformed_json_is_rejected() {
        for bad in ["", "{", "[{\"name\":\"x\"", "[1,]", "[{\"name\":\"x\"}] trailing"] {
            assert!(validate_chrome_trace(bad).is_err(), "accepted malformed {bad:?}");
        }
    }

    #[test]
    fn unbalanced_events_are_rejected() {
        // E without B
        let orphan = r#"[{"name":"x","ph":"E","ts":1,"tid":0}]"#;
        assert!(validate_chrome_trace(orphan).unwrap_err().contains("no open span"));
        // B never closed
        let open = r#"[{"name":"x","ph":"B","ts":1,"tid":0}]"#;
        assert!(validate_chrome_trace(open).unwrap_err().contains("never closed"));
        // crossed nesting within one tid
        let crossed = r#"[
            {"name":"a","ph":"B","ts":1,"tid":0},
            {"name":"b","ph":"B","ts":2,"tid":0},
            {"name":"a","ph":"E","ts":3,"tid":0},
            {"name":"b","ph":"E","ts":4,"tid":0}
        ]"#;
        assert!(validate_chrome_trace(crossed).is_err());
        // same sequence is fine when the middle pair is another tid
        let threaded = r#"[
            {"name":"a","ph":"B","ts":1,"tid":0},
            {"name":"b","ph":"B","ts":2,"tid":1},
            {"name":"a","ph":"E","ts":3,"tid":0},
            {"name":"b","ph":"E","ts":4,"tid":1}
        ]"#;
        assert_eq!(validate_chrome_trace(threaded), Ok(4));
    }

    #[test]
    fn missing_required_fields_are_rejected() {
        let no_ph = r#"[{"name":"x","ts":1,"tid":0}]"#;
        assert!(validate_chrome_trace(no_ph).is_err());
        let no_name = r#"[{"ph":"B","ts":1,"tid":0}]"#;
        assert!(validate_chrome_trace(no_name).is_err());
        let bad_ph = r#"[{"name":"x","ph":"X","ts":1,"tid":0}]"#;
        assert!(validate_chrome_trace(bad_ph).is_err());
    }
}
