//! The span layer: a compile-time-selected [`TraceSink`] that the
//! resident drivers are generic over, plus the [`Recorder`] that buffers
//! thread-tagged begin/end events for export.
//!
//! Design constraints, in order:
//!
//! 1. **The disabled path must vanish.** [`NullTrace`] has
//!    `ENABLED = false` and empty inline bodies; every call site in the
//!    drivers is guarded by `if S::ENABLED`, so the monomorphised
//!    untraced driver contains no clock reads, no atomics, no branches.
//!    A guard test asserts this via [`crate::clock_reads`].
//! 2. **The enabled path must not allocate per event name.** Span names
//!    are `&'static str` and the two argument slots are plain `u32`s
//!    (iteration number, color, rank...), so recording an event is a
//!    clock read plus a `Vec` push.
//! 3. **Begin/end must stay balanced through errors.** The drivers end
//!    a span *after* capturing a fallible operation's `Result`, before
//!    acting on it — so a kill/recovery cycle cannot leave a dangling
//!    `B` event. [`Recorder::is_balanced`] checks the discipline.

use crate::clock::now_ns;

/// Whether an event opens or closes a span (chrome-trace `ph` B/E).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EventPhase {
    Begin,
    End,
}

/// One begin or end mark. 32 bytes, no heap.
#[derive(Debug, Clone, Copy)]
pub struct SpanEvent {
    /// Span name from the fixed taxonomy (`"gather"`, `"color_step"`, ...).
    pub name: &'static str,
    /// First argument slot (convention: iteration number, or 0).
    pub a: u32,
    /// Second argument slot (convention: color / rank, or 0).
    pub b: u32,
    /// Monotonic timestamp from [`crate::now_ns`].
    pub ts_ns: u64,
    /// Begin or end.
    pub phase: EventPhase,
    /// Logical thread/rank tag of the recorder that captured it.
    pub tid: u32,
}

/// The compile-time tracing switch the resident drivers are generic
/// over. `ENABLED` is an associated *const*: the untraced driver is a
/// distinct monomorphisation in which every `if S::ENABLED` block is
/// dead code.
pub trait TraceSink {
    /// `false` only for [`NullTrace`]; call sites guard on this.
    const ENABLED: bool;
    /// Open a span. `a`/`b` are free argument slots (see [`SpanEvent`]).
    fn begin(&mut self, name: &'static str, a: u32, b: u32);
    /// Close the most recent open span with this name.
    fn end(&mut self, name: &'static str);
}

/// The no-op sink: tracing disabled at compile time.
#[derive(Debug, Default, Clone, Copy)]
pub struct NullTrace;

impl TraceSink for NullTrace {
    const ENABLED: bool = false;
    #[inline(always)]
    fn begin(&mut self, _name: &'static str, _a: u32, _b: u32) {}
    #[inline(always)]
    fn end(&mut self, _name: &'static str) {}
}

/// A buffering sink: every begin/end becomes a timestamped [`SpanEvent`]
/// tagged with this recorder's `tid`.
#[derive(Debug, Default, Clone)]
pub struct Recorder {
    tid: u32,
    depth: u32,
    events: Vec<SpanEvent>,
}

impl Recorder {
    /// A recorder whose events carry thread/rank tag `tid`.
    pub fn new(tid: u32) -> Recorder {
        Recorder { tid, depth: 0, events: Vec::new() }
    }

    /// Everything recorded so far, in capture order.
    pub fn events(&self) -> &[SpanEvent] {
        &self.events
    }

    /// Number of currently open spans (0 once every span was closed).
    pub fn open_spans(&self) -> u32 {
        self.depth
    }

    /// True iff every `Begin` was closed by a matching `End` in proper
    /// stack order (names must match LIFO), and nothing is still open.
    pub fn is_balanced(&self) -> bool {
        let mut stack: Vec<&'static str> = Vec::new();
        for ev in &self.events {
            match ev.phase {
                EventPhase::Begin => stack.push(ev.name),
                EventPhase::End => {
                    if stack.pop() != Some(ev.name) {
                        return false;
                    }
                }
            }
        }
        stack.is_empty()
    }

    /// Append a complete span with explicit timestamps — a balanced
    /// `Begin`/`End` pair for a duration measured *outside* the
    /// recorder (the overlap coordinator accumulates its hidden-wait
    /// time as a counter, then materialises it as one span so the
    /// chrome-trace export shows the hidden window on the timeline).
    /// Keeps [`is_balanced`](Self::is_balanced) and
    /// [`span_totals`](Self::span_totals) honest by construction.
    pub fn record_span(&mut self, name: &'static str, a: u32, b: u32, t0_ns: u64, t1_ns: u64) {
        self.events.push(SpanEvent {
            name,
            a,
            b,
            ts_ns: t0_ns,
            phase: EventPhase::Begin,
            tid: self.tid,
        });
        self.events.push(SpanEvent {
            name,
            a: 0,
            b: 0,
            ts_ns: t1_ns.max(t0_ns),
            phase: EventPhase::End,
            tid: self.tid,
        });
    }

    /// Inclusive total nanoseconds and call count per span name, in
    /// first-completed order. Unclosed spans contribute nothing.
    pub fn span_totals(&self) -> Vec<(&'static str, u64, u64)> {
        let mut totals: Vec<(&'static str, u64, u64)> = Vec::new();
        let mut stack: Vec<(&'static str, u64)> = Vec::new();
        for ev in &self.events {
            match ev.phase {
                EventPhase::Begin => stack.push((ev.name, ev.ts_ns)),
                EventPhase::End => {
                    if let Some((name, t0)) = stack.pop() {
                        if name == ev.name {
                            let dt = ev.ts_ns.saturating_sub(t0);
                            match totals.iter_mut().find(|(n, _, _)| *n == name) {
                                Some((_, total, count)) => {
                                    *total += dt;
                                    *count += 1;
                                }
                                None => totals.push((name, dt, 1)),
                            }
                        }
                    }
                }
            }
        }
        totals
    }
}

impl TraceSink for Recorder {
    const ENABLED: bool = true;

    fn begin(&mut self, name: &'static str, a: u32, b: u32) {
        self.depth += 1;
        self.events.push(SpanEvent {
            name,
            a,
            b,
            ts_ns: now_ns(),
            phase: EventPhase::Begin,
            tid: self.tid,
        });
    }

    fn end(&mut self, name: &'static str) {
        self.depth = self.depth.saturating_sub(1);
        self.events.push(SpanEvent {
            name,
            a: 0,
            b: 0,
            ts_ns: now_ns(),
            phase: EventPhase::End,
            tid: self.tid,
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn recorder_buffers_balanced_spans() {
        let mut r = Recorder::new(7);
        r.begin("outer", 1, 0);
        r.begin("inner", 1, 2);
        r.end("inner");
        r.end("outer");
        assert_eq!(r.events().len(), 4);
        assert_eq!(r.open_spans(), 0);
        assert!(r.is_balanced());
        assert!(r.events().iter().all(|e| e.tid == 7));
        let totals = r.span_totals();
        assert_eq!(totals.len(), 2);
        // first-completed order: the nested span closes before its parent
        assert_eq!(totals[0].0, "inner");
        assert_eq!(totals[1].0, "outer");
        // outer encloses inner, so its inclusive time is at least inner's
        assert!(totals[1].1 >= totals[0].1);
    }

    #[test]
    fn unbalanced_and_misnested_spans_are_detected() {
        let mut open = Recorder::new(0);
        open.begin("gather", 0, 0);
        assert!(!open.is_balanced());
        assert_eq!(open.open_spans(), 1);

        let mut crossed = Recorder::new(0);
        crossed.begin("a", 0, 0);
        crossed.begin("b", 0, 0);
        crossed.end("a");
        crossed.end("b");
        assert!(!crossed.is_balanced());
    }

    #[test]
    fn span_totals_accumulate_repeat_calls() {
        let mut r = Recorder::new(0);
        for i in 0..3 {
            r.begin("interior", i, 0);
            r.end("interior");
        }
        let totals = r.span_totals();
        assert_eq!(totals.len(), 1);
        assert_eq!(totals[0].0, "interior");
        assert_eq!(totals[0].2, 3);
    }

    #[test]
    fn null_trace_is_a_no_op() {
        let before = crate::clock_reads();
        let mut n = NullTrace;
        n.begin("gather", 0, 0);
        n.end("gather");
        assert_eq!(crate::clock_reads(), before, "NullTrace must not touch the clock");
        const { assert!(!NullTrace::ENABLED) };
    }
}
