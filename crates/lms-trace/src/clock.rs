//! Monotonic clock, read straight through `clock_gettime(2)`.
//!
//! `std::time::Instant` would work too, but going through the raw FFI
//! (the same style `lms-dist`'s `sys` module uses for fork/pipe/poll)
//! keeps the returned value an integer nanosecond count we can ship over
//! the wire and subtract across processes on the same machine without
//! any opaque-type ceremony.
//!
//! Every sample additionally bumps a relaxed atomic counter,
//! [`clock_reads`]. That counter exists for exactly one consumer: the
//! bench guard proving that an *untraced* run performs **zero** clock
//! reads — i.e. that the disabled path of the tracing layer really is
//! compile-time free, not merely cheap.

use std::sync::atomic::{AtomicU64, Ordering};

mod ffi {
    #[repr(C)]
    pub struct Timespec {
        pub tv_sec: i64,
        pub tv_nsec: i64,
    }

    /// `CLOCK_MONOTONIC` on Linux.
    pub const CLOCK_MONOTONIC: i32 = 1;

    extern "C" {
        pub fn clock_gettime(clock_id: i32, tp: *mut Timespec) -> i32;
    }
}

static CLOCK_READS: AtomicU64 = AtomicU64::new(0);

/// Current monotonic time in nanoseconds since an arbitrary epoch.
///
/// Comparable across threads and across forked processes on the same
/// host (the kernel clock is per-machine, not per-process).
pub fn now_ns() -> u64 {
    CLOCK_READS.fetch_add(1, Ordering::Relaxed);
    let mut ts = ffi::Timespec { tv_sec: 0, tv_nsec: 0 };
    let rc = unsafe { ffi::clock_gettime(ffi::CLOCK_MONOTONIC, &mut ts) };
    debug_assert_eq!(rc, 0, "clock_gettime(CLOCK_MONOTONIC) failed");
    ts.tv_sec as u64 * 1_000_000_000 + ts.tv_nsec as u64
}

/// Process-wide count of [`now_ns`] samples taken so far.
///
/// The hook for the zero-cost guard: run an untraced smoothing pass and
/// assert this number did not move.
pub fn clock_reads() -> u64 {
    CLOCK_READS.load(Ordering::Relaxed)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clock_is_monotonic_and_counts_reads() {
        let before = clock_reads();
        let a = now_ns();
        let b = now_ns();
        assert!(b >= a, "monotonic clock went backwards: {a} -> {b}");
        assert!(a > 0);
        assert_eq!(clock_reads(), before + 2);
    }

    #[test]
    fn clock_advances_across_a_sleep() {
        let a = now_ns();
        std::thread::sleep(std::time::Duration::from_millis(2));
        let b = now_ns();
        assert!(b - a >= 1_000_000, "slept 2ms but clock moved only {}ns", b - a);
    }
}
