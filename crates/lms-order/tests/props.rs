//! Property-based tests for the ordering library: every ordering is a
//! bijection on arbitrary meshes (Theorem 1 of the paper for RDR), the
//! permutation algebra obeys its laws, and the locality metrics rank the
//! graph orderings above random.

use lms_mesh::{generators, Adjacency, TriMesh};
use lms_order::{
    compute_ordering_with, layout_stats_permuted, random_ordering, OrderingKind, Permutation,
};
use proptest::prelude::*;

fn arb_grid() -> impl Strategy<Value = TriMesh> {
    (3usize..16, 3usize..16, 0.0f64..0.45, 0u64..500)
        .prop_map(|(nx, ny, jitter, seed)| generators::perturbed_grid(nx, ny, jitter, seed))
}

fn is_bijection(p: &Permutation, n: usize) -> bool {
    if p.len() != n {
        return false;
    }
    let mut seen = vec![false; n];
    for &v in p.new_to_old() {
        if seen[v as usize] {
            return false;
        }
        seen[v as usize] = true;
    }
    seen.into_iter().all(|b| b)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Theorem 1, generalised to the whole zoo: every ordering orders
    /// every vertex exactly once on arbitrary meshes.
    #[test]
    fn every_ordering_is_a_bijection(m in arb_grid()) {
        let adj = Adjacency::build(&m);
        for kind in OrderingKind::ALL {
            let p = compute_ordering_with(&m, &adj, kind);
            prop_assert!(is_bijection(&p, m.num_vertices()), "{}", kind.name());
        }
    }

    /// `p ∘ p⁻¹ = id` and `p⁻¹ ∘ p = id`.
    #[test]
    fn inverse_composes_to_identity(m in arb_grid(), seed in 0u64..100) {
        let p = random_ordering(m.num_vertices(), seed);
        let inv = p.inverse();
        prop_assert!(p.compose(&inv).unwrap().is_identity());
        prop_assert!(inv.compose(&p).unwrap().is_identity());
    }

    /// Applying a permutation to a mesh preserves geometry: same multiset
    /// of coordinates, same edge set up to renaming, same total area.
    #[test]
    fn apply_to_mesh_preserves_geometry(m in arb_grid(), seed in 0u64..100) {
        let p = random_ordering(m.num_vertices(), seed);
        let permuted = p.apply_to_mesh(&m);
        prop_assert_eq!(permuted.num_vertices(), m.num_vertices());
        prop_assert_eq!(permuted.num_triangles(), m.num_triangles());
        prop_assert!((permuted.total_area() - m.total_area()).abs() < 1e-9);
        // coordinates are a permutation of the originals
        let key = |p: &lms_mesh::Point2| (p.x.to_bits(), p.y.to_bits());
        let mut a: Vec<_> = m.coords().iter().map(key).collect();
        let mut b: Vec<_> = permuted.coords().iter().map(key).collect();
        a.sort_unstable();
        b.sort_unstable();
        prop_assert_eq!(a, b);
        // edges map through the permutation
        let old_to_new = p.old_to_new();
        let mut renamed: Vec<(u32, u32)> = m
            .edges()
            .into_iter()
            .map(|(u, v)| {
                let (nu, nv) = (old_to_new[u as usize], old_to_new[v as usize]);
                (nu.min(nv), nu.max(nv))
            })
            .collect();
        let mut new_edges = permuted.edges();
        renamed.sort_unstable();
        new_edges.sort_unstable();
        prop_assert_eq!(renamed, new_edges);
    }

    /// `apply_to_values` relocates per-vertex data consistently with the
    /// mesh renaming.
    #[test]
    fn values_follow_their_vertices(m in arb_grid(), seed in 0u64..100) {
        let p = random_ordering(m.num_vertices(), seed);
        let values: Vec<u32> = (0..m.num_vertices() as u32).collect();
        let moved = p.apply_to_values(&values).unwrap();
        // new slot i holds the value of old vertex new_to_old[i]
        for (i, &v) in moved.iter().enumerate() {
            prop_assert_eq!(v, p.new_to_old()[i]);
        }
    }

    /// The structured orderings always beat RANDOM on the sweep-span
    /// metric (the Figure 5 quantity) on meshes of non-trivial size.
    #[test]
    fn structured_orderings_beat_random(m in arb_grid()) {
        prop_assume!(m.num_vertices() >= 64);
        let adj = Adjacency::build(&m);
        let span = |kind| {
            let p = compute_ordering_with(&m, &adj, kind);
            layout_stats_permuted(&m, &adj, &p).mean_span
        };
        let rnd = span(OrderingKind::Random { seed: 7 });
        for kind in [
            OrderingKind::Bfs,
            OrderingKind::Rcm,
            OrderingKind::Sloan,
            OrderingKind::Hilbert,
            OrderingKind::Morton,
            OrderingKind::Rdr,
        ] {
            prop_assert!(
                span(kind) < rnd,
                "{} span {} not below random {}",
                kind.name(),
                span(kind),
                rnd
            );
        }
    }

    /// Orderings are deterministic: two computations agree.
    #[test]
    fn orderings_are_deterministic(m in arb_grid()) {
        let adj = Adjacency::build(&m);
        for kind in OrderingKind::ALL {
            prop_assert_eq!(
                compute_ordering_with(&m, &adj, kind),
                compute_ordering_with(&m, &adj, kind),
                "{}",
                kind.name()
            );
        }
    }
}
