//! Morton (Z-order) space-filling-curve ordering.
//!
//! The second space-filling curve of the reproduction, next to
//! [`crate::hilbert`]. Sastry et al. \[14\] evaluate SFC reorderings for mesh
//! vertex and element numbering; the Morton curve is the cheap-to-compute
//! member of the family (pure bit interleaving, no rotations) and is the
//! standard ablation partner for Hilbert: it has the same asymptotic
//! locality but noticeably longer jumps at quadrant seams, so comparing the
//! two separates "any geometric clustering helps" from "the curve's
//! continuity matters".

use crate::permutation::Permutation;
use lms_mesh::{geometry::bounding_box, Point2};

/// Order of the Morton curve used for quantisation (2^16 × 2^16 cells) —
/// matches [`crate::hilbert`]'s grid so the two curves are compared on the
/// exact same quantisation.
const ORDER: u32 = 16;

/// Interleave the low 16 bits of `v` with zeros ("Part1By1" in the
/// bit-twiddling literature): `abcd` → `0a0b0c0d`.
#[inline]
fn part1by1(v: u32) -> u64 {
    let mut x = v as u64 & 0xffff;
    x = (x | (x << 8)) & 0x00ff_00ff;
    x = (x | (x << 4)) & 0x0f0f_0f0f;
    x = (x | (x << 2)) & 0x3333_3333;
    x = (x | (x << 1)) & 0x5555_5555;
    x
}

/// Map grid cell `(x, y)` (each `< 2^ORDER`) to its Morton code — the
/// distance along the Z-order curve.
#[inline]
pub fn morton_d(x: u32, y: u32) -> u64 {
    debug_assert!(x < (1 << ORDER) && y < (1 << ORDER));
    part1by1(x) | (part1by1(y) << 1)
}

/// Morton-curve ordering of `coords`.
///
/// Coordinates are normalised to the bounding box and quantised onto a
/// `2^16`-cell grid; ties (same cell) break by original index, keeping the
/// sort stable and deterministic.
pub fn morton_ordering(coords: &[Point2]) -> Permutation {
    let n = coords.len();
    if n == 0 {
        return Permutation::identity(0);
    }
    let (lo, hi) = bounding_box(coords);
    let wx = (hi.x - lo.x).max(f64::MIN_POSITIVE);
    let wy = (hi.y - lo.y).max(f64::MIN_POSITIVE);
    let cells = ((1u64 << ORDER) - 1) as f64;
    let mut keyed: Vec<(u64, u32)> = coords
        .iter()
        .enumerate()
        .map(|(i, p)| {
            let qx = (((p.x - lo.x) / wx) * cells) as u32;
            let qy = (((p.y - lo.y) / wy) * cells) as u32;
            (morton_d(qx, qy), i as u32)
        })
        .collect();
    keyed.sort_unstable();
    Permutation::from_new_to_old_unchecked(keyed.into_iter().map(|(_, i)| i).collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use lms_mesh::generators;

    #[test]
    fn morton_code_interleaves_bits() {
        // x = 0b101, y = 0b011 → z = y2x2 y1x1 y0x0 = 0b 01 11 01 = 0x1d... let's compute:
        // bits: x0=1,y0=1 -> 0b11; x1=0,y1=1 -> 0b10; x2=1,y2=0 -> 0b01
        // code = 01_10_11 = 0b011011 = 27
        assert_eq!(morton_d(0b101, 0b011), 27);
        assert_eq!(morton_d(0, 0), 0);
        assert_eq!(morton_d(1, 0), 1);
        assert_eq!(morton_d(0, 1), 2);
        assert_eq!(morton_d(1, 1), 3);
    }

    #[test]
    fn morton_code_is_monotone_within_quadrants() {
        // every cell of the lower-left quadrant precedes every cell of the
        // upper-right quadrant
        let half = 1u32 << (ORDER - 1);
        assert!(morton_d(half - 1, half - 1) < morton_d(half, half));
    }

    #[test]
    fn ordering_is_a_permutation() {
        let m = generators::perturbed_grid(17, 13, 0.3, 11);
        let p = morton_ordering(m.coords());
        assert_eq!(p.len(), m.num_vertices());
        let mut ids = p.new_to_old().to_vec();
        ids.sort_unstable();
        assert!(ids.iter().enumerate().all(|(i, &v)| v == i as u32));
    }

    #[test]
    fn ordering_clusters_neighbours_better_than_random() {
        use crate::metrics::layout_stats_permuted;
        use crate::traversals::random_ordering;
        use lms_mesh::Adjacency;
        let m = generators::perturbed_grid(24, 24, 0.3, 2);
        let adj = Adjacency::build(&m);
        let zorder = layout_stats_permuted(&m, &adj, &morton_ordering(m.coords())).mean_span;
        let random =
            layout_stats_permuted(&m, &adj, &random_ordering(m.num_vertices(), 3)).mean_span;
        assert!(zorder * 3.0 < random, "morton {zorder} vs random {random}");
    }

    #[test]
    fn degenerate_inputs() {
        assert!(morton_ordering(&[]).is_empty());
        // all points coincident: identity by tie-break
        let pts = vec![Point2::new(1.0, 2.0); 5];
        assert!(morton_ordering(&pts).is_identity());
    }
}
