//! Spectral (Fiedler-vector) ordering.
//!
//! A classic locality ordering from sparse-matrix land (related work of the
//! reordering literature the paper builds on): sort the vertices by the
//! entries of the Fiedler vector — the eigenvector of the graph Laplacian
//! `L = D − A` belonging to its second-smallest eigenvalue. The Fiedler
//! vector varies smoothly along the graph, so sorting by it produces a
//! sequential sweep across the mesh much like a continuous space-filling
//! curve — but derived from *connectivity alone*, no coordinates required.
//!
//! The Fiedler vector is computed by power iteration on the spectral
//! complement `M = σI − L` (σ ≥ λ_max makes `M` positive semidefinite with
//! the eigenvalue order reversed), deflating the trivial constant
//! eigenvector. This is `O(E)` per iteration with a fixed iteration budget
//! — deterministic and dependency-free, precise enough for an *ordering*
//! (only the sort order of the entries matters, not eigenpair accuracy).

use crate::graph::Graph;
use crate::permutation::Permutation;

/// Options for the spectral ordering.
#[derive(Debug, Clone, PartialEq)]
pub struct SpectralOptions {
    /// Power-iteration budget (default 200 — ample for ordering purposes).
    pub max_iters: usize,
    /// Early-exit tolerance on the iterate's relative change (default 1e-7).
    pub tol: f64,
    /// Seed for the deterministic pseudo-random start vector.
    pub seed: u64,
}

impl Default for SpectralOptions {
    fn default() -> Self {
        SpectralOptions { max_iters: 200, tol: 1e-7, seed: 0x5EED }
    }
}

/// Compute (an approximation of) the Fiedler vector of `graph`'s Laplacian.
///
/// Returns one value per vertex. For disconnected graphs the vector
/// separates components (the "Fiedler" value is then a component
/// indicator), which still yields a component-contiguous ordering.
pub fn fiedler_vector<G: Graph>(graph: &G, options: &SpectralOptions) -> Vec<f64> {
    let n = graph.num_vertices();
    if n == 0 {
        return Vec::new();
    }
    // σ = 2·max_degree ≥ λ_max(L) (Gershgorin), so M = σI − L ⪰ 0 and the
    // Fiedler eigenvector of L is the second-largest eigenvector of M.
    let max_deg = (0..n as u32).map(|v| graph.degree(v)).max().unwrap_or(0);
    let sigma = 2.0 * max_deg.max(1) as f64;

    // Start vector: BFS distance levels from a pseudo-peripheral vertex
    // (two BFS passes), perturbed by a tiny deterministic xorshift noise.
    // The level vector is smooth and strongly aligned with the Fiedler
    // direction, so the modest iteration budget refines rather than
    // rediscovers it; the noise breaks ties on symmetric graphs.
    let mut x: Vec<f64> = {
        let far = farthest_vertex(graph, 0);
        let start = farthest_vertex(graph, far);
        let levels = bfs_levels(graph, start);
        let mut state = options.seed | 1;
        levels
            .into_iter()
            .map(|lvl| {
                state ^= state << 13;
                state ^= state >> 7;
                state ^= state << 17;
                let noise = (state >> 11) as f64 / (1u64 << 53) as f64 - 0.5;
                lvl as f64 + 1e-3 * noise
            })
            .collect()
    };
    deflate_and_normalize(&mut x);

    let mut y = vec![0.0f64; n];
    for _ in 0..options.max_iters {
        // y = (σI − L) x = σx − Dx + Ax
        for v in 0..n as u32 {
            let ns = graph.neighbors(v);
            let mut acc = (sigma - ns.len() as f64) * x[v as usize];
            for &w in ns {
                acc += x[w as usize];
            }
            y[v as usize] = acc;
        }
        deflate_and_normalize(&mut y);
        let delta: f64 = x.iter().zip(&y).map(|(a, b)| (a - b) * (a - b)).sum::<f64>().sqrt();
        std::mem::swap(&mut x, &mut y);
        if delta < options.tol {
            break;
        }
    }
    x
}

/// BFS level (hop distance) of every vertex from `start`; unreachable
/// vertices keep level 0 (they sit in other components and the iteration
/// separates them on its own).
fn bfs_levels<G: Graph>(graph: &G, start: u32) -> Vec<u32> {
    let n = graph.num_vertices();
    let mut level = vec![0u32; n];
    let mut seen = vec![false; n];
    let mut queue = std::collections::VecDeque::new();
    if n > 0 {
        seen[start as usize] = true;
        queue.push_back(start);
    }
    while let Some(v) = queue.pop_front() {
        for &w in graph.neighbors(v) {
            if !seen[w as usize] {
                seen[w as usize] = true;
                level[w as usize] = level[v as usize] + 1;
                queue.push_back(w);
            }
        }
    }
    level
}

/// The vertex of maximum BFS level from `start` (ties to the lowest id) —
/// one half of the classic pseudo-peripheral-vertex heuristic.
fn farthest_vertex<G: Graph>(graph: &G, start: u32) -> u32 {
    if graph.num_vertices() == 0 {
        return 0;
    }
    let levels = bfs_levels(graph, start);
    let mut best = 0u32;
    for (v, &l) in levels.iter().enumerate() {
        if l > levels[best as usize] {
            best = v as u32;
        }
    }
    best
}

/// Project out the constant vector and normalise to unit length (leaves the
/// zero vector untouched for degenerate graphs).
fn deflate_and_normalize(x: &mut [f64]) {
    let n = x.len();
    if n == 0 {
        return;
    }
    let mean = x.iter().sum::<f64>() / n as f64;
    for v in x.iter_mut() {
        *v -= mean;
    }
    let norm = x.iter().map(|v| v * v).sum::<f64>().sqrt();
    if norm > 0.0 {
        for v in x.iter_mut() {
            *v /= norm;
        }
    }
}

/// Spectral ordering with options: vertices sorted by ascending Fiedler
/// value (ties broken by index for determinism).
pub fn spectral_ordering_opts<G: Graph>(graph: &G, options: &SpectralOptions) -> Permutation {
    let fiedler = fiedler_vector(graph, options);
    let mut order: Vec<u32> = (0..graph.num_vertices() as u32).collect();
    order.sort_by(|&a, &b| {
        fiedler[a as usize]
            .partial_cmp(&fiedler[b as usize])
            .unwrap_or(std::cmp::Ordering::Equal)
            .then(a.cmp(&b))
    });
    Permutation::from_new_to_old_unchecked(order)
}

/// Spectral ordering with default options.
pub fn spectral_ordering<G: Graph>(graph: &G) -> Permutation {
    spectral_ordering_opts(graph, &SpectralOptions::default())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::CsrGraph;
    use crate::metrics::layout_stats_permuted;
    use crate::traversals::random_ordering;
    use lms_mesh::{generators, Adjacency};

    /// Path graph 0–1–…–(n−1) as CSR arrays.
    fn path(n: usize) -> (Vec<u32>, Vec<u32>) {
        let mut offsets = vec![0u32];
        let mut nbrs = Vec::new();
        for v in 0..n as u32 {
            if v > 0 {
                nbrs.push(v - 1);
            }
            if (v as usize) < n - 1 {
                nbrs.push(v + 1);
            }
            offsets.push(nbrs.len() as u32);
        }
        (offsets, nbrs)
    }

    #[test]
    fn fiedler_of_path_is_monotone() {
        // The path graph's Fiedler vector is cos(π(v+½)/n): strictly
        // monotone along the path, so the spectral order is the path order
        // (or its reverse).
        let (offsets, nbrs) = path(20);
        let g = CsrGraph::new(&offsets, &nbrs);
        // the path's λ3 − λ2 eigengap is tiny; give power iteration room
        let opts = SpectralOptions { max_iters: 20_000, tol: 1e-13, ..Default::default() };
        let p = spectral_ordering_opts(&g, &opts);
        let order = p.new_to_old();
        let forward: Vec<u32> = (0..20).collect();
        let backward: Vec<u32> = (0..20).rev().collect();
        assert!(
            order == &forward[..] || order == &backward[..],
            "spectral order of a path must be sequential, got {order:?}"
        );
    }

    #[test]
    fn fiedler_vector_is_centered_and_normalized() {
        let m = generators::perturbed_grid(12, 12, 0.3, 4);
        let adj = Adjacency::build(&m);
        let f = fiedler_vector(&adj, &SpectralOptions::default());
        let mean: f64 = f.iter().sum::<f64>() / f.len() as f64;
        let norm: f64 = f.iter().map(|v| v * v).sum::<f64>().sqrt();
        assert!(mean.abs() < 1e-9, "mean {mean}");
        assert!((norm - 1.0).abs() < 1e-9, "norm {norm}");
    }

    #[test]
    fn spectral_is_deterministic() {
        let m = generators::perturbed_grid(10, 10, 0.3, 1);
        let adj = Adjacency::build(&m);
        assert_eq!(spectral_ordering(&adj), spectral_ordering(&adj));
    }

    #[test]
    fn spectral_beats_random_locality_on_grids() {
        let m = generators::perturbed_grid(24, 24, 0.35, 5);
        let adj = Adjacency::build(&m);
        let spec = layout_stats_permuted(&m, &adj, &spectral_ordering(&adj)).mean_span;
        let rnd = layout_stats_permuted(&m, &adj, &random_ordering(m.num_vertices(), 1)).mean_span;
        assert!(spec < rnd / 3.0, "spectral span {spec} vs random {rnd}");
    }

    #[test]
    fn disconnected_components_stay_contiguous() {
        // Two disjoint paths of 6: each component must occupy a contiguous
        // index range in the spectral order.
        let mut offsets = vec![0u32];
        let mut nbrs: Vec<u32> = Vec::new();
        for comp in 0..2u32 {
            let base = comp * 6;
            for v in 0..6u32 {
                if v > 0 {
                    nbrs.push(base + v - 1);
                }
                if v < 5 {
                    nbrs.push(base + v + 1);
                }
                offsets.push(nbrs.len() as u32);
            }
        }
        let g = CsrGraph::new(&offsets, &nbrs);
        let p = spectral_ordering(&g);
        let comp_of = |v: u32| v / 6;
        let seq: Vec<u32> = p.new_to_old().iter().map(|&v| comp_of(v)).collect();
        let switches = seq.windows(2).filter(|w| w[0] != w[1]).count();
        assert!(switches <= 1, "components interleaved: {seq:?}");
    }

    #[test]
    fn empty_graph_ok() {
        let offsets = vec![0u32];
        let nbrs: Vec<u32> = Vec::new();
        let g = CsrGraph::new(&offsets, &nbrs);
        assert!(spectral_ordering(&g).is_empty());
        assert!(fiedler_vector(&g, &SpectralOptions::default()).is_empty());
    }
}
