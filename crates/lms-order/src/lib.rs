//! # lms-order — vertex reorderings
//!
//! The paper's contribution ([`rdr::rdr_ordering`], Algorithm 2) together
//! with every baseline it is evaluated against, plus the related-work and
//! ablation orderings DESIGN.md §5 calls out:
//!
//! | kind | module | role in the paper |
//! |---|---|---|
//! | `Original` | — | the mesh generator's numbering (ORI) |
//! | `Random` | [`traversals::random_ordering`] | worst case, Figure 1a |
//! | `Bfs` | [`traversals::bfs_ordering`] | Strout & Hovland \[18\], the baseline RDR beats |
//! | `BfsReversed` | [`traversals::bfs_reversed_ordering`] | Munson & Hovland \[19\], FeasNewt |
//! | `Dfs` | [`traversals::dfs_ordering`] | Figure 4a trace comparison |
//! | `Rcm` | [`traversals::rcm_ordering`] | classic bandwidth reduction (related work) |
//! | `Sloan` | [`sloan::sloan_ordering`] | profile reduction, strong graph baseline |
//! | `Hilbert` | [`hilbert::hilbert_ordering`] | space-filling curve, Sastry et al. \[14\] |
//! | `Morton` | [`morton::morton_ordering`] | Z-order curve, cheap SFC ablation partner |
//! | `Rcb` | [`rcb::rcb_ordering`] | recursive coordinate bisection, cache-oblivious geometric baseline |
//! | `Spectral` | [`spectral::spectral_ordering`] | Fiedler-vector ordering, connectivity-only geometric sweep |
//! | `QualitySort` | [`sorts::quality_sort_ordering`] | RDR minus the chaining (ablation) |
//! | `DegreeSort` | [`sorts::degree_sort_ordering`] | scalar sort with a quality-free key |
//! | `Rdr` | [`rdr::rdr_ordering`] | **the contribution** |
//!
//! All orderings are returned as a [`Permutation`] (new-to-old map) that can
//! be applied to meshes or per-vertex value arrays.

pub mod coloring;
pub mod graph;
pub mod hilbert;
pub mod metrics;
pub mod morton;
pub mod par_rdr;
pub mod permutation;
pub mod rcb;
pub mod rdr;
pub mod sloan;
pub mod sorts;
pub mod spectral;
pub mod traversals;

pub use coloring::{greedy_coloring, greedy_coloring_on, Coloring};
pub use graph::{CsrGraph, Graph};
pub use hilbert::hilbert_ordering;
pub use metrics::{layout_stats, layout_stats_permuted, LayoutStats};
pub use morton::morton_ordering;
pub use par_rdr::{par_rdr_ordering, par_rdr_ordering_on, ChunkConcat, ParRdrOptions};
pub use permutation::{Permutation, PermutationError};
pub use rcb::{rcb_ordering, rcb_parts, rcb_parts_nd, rcb_parts_weighted, rcb_parts_weighted_nd};
pub use rdr::{rdr_ordering, rdr_ordering_opts, rdr_ordering_with, RdrOptions};
pub use sloan::sloan_ordering;
pub use sorts::{degree_sort_ordering, quality_sort_from_values, quality_sort_ordering};
pub use spectral::{fiedler_vector, spectral_ordering, spectral_ordering_opts, SpectralOptions};
pub use traversals::{
    bfs_ordering, bfs_reversed_ordering, cuthill_mckee_ordering, dfs_ordering, random_ordering,
    rcm_ordering,
};

use lms_mesh::quality::QualityMetric;
use lms_mesh::{Adjacency, TriMesh};

/// The orderings evaluated in the paper (plus the related-work and ablation
/// baselines), as a closed enum for experiment drivers and CLIs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OrderingKind {
    /// Keep the generator's numbering (paper: `ORI`).
    Original,
    /// Uniform random shuffle with the given seed (paper: Figure 1a).
    Random { seed: u64 },
    /// Breadth-first search from vertex 0 (paper: `BFS`, Strout & Hovland).
    Bfs,
    /// Reversed BFS (Munson & Hovland \[19\], the FeasNewt ordering).
    BfsReversed,
    /// Depth-first search from vertex 0 (paper: Figure 4a).
    Dfs,
    /// Reverse Cuthill–McKee.
    Rcm,
    /// Sloan profile-reduction ordering.
    Sloan,
    /// Hilbert space-filling curve (Sastry et al. \[14\]).
    Hilbert,
    /// Morton (Z-order) space-filling curve.
    Morton,
    /// Recursive coordinate bisection (cache-oblivious geometric layout).
    Rcb,
    /// Spectral (Fiedler-vector) ordering of the graph Laplacian.
    Spectral,
    /// Global sort by increasing initial quality — RDR without the
    /// neighbour-chaining walk (ablation).
    QualitySort,
    /// Global sort by increasing vertex degree (ablation).
    DegreeSort,
    /// Reuse-Distance-Reducing ordering (paper: `RDR`, Algorithm 2).
    Rdr,
}

impl OrderingKind {
    /// Short lowercase name used in reports and CLI arguments.
    pub fn name(self) -> &'static str {
        match self {
            OrderingKind::Original => "ori",
            OrderingKind::Random { .. } => "random",
            OrderingKind::Bfs => "bfs",
            OrderingKind::BfsReversed => "bfsrev",
            OrderingKind::Dfs => "dfs",
            OrderingKind::Rcm => "rcm",
            OrderingKind::Sloan => "sloan",
            OrderingKind::Hilbert => "hilbert",
            OrderingKind::Morton => "morton",
            OrderingKind::Rcb => "rcb",
            OrderingKind::Spectral => "spectral",
            OrderingKind::QualitySort => "qsort",
            OrderingKind::DegreeSort => "degsort",
            OrderingKind::Rdr => "rdr",
        }
    }

    /// Parse a CLI name; `random` gets seed 0.
    pub fn parse(name: &str) -> Option<OrderingKind> {
        Some(match name.to_ascii_lowercase().as_str() {
            "ori" | "original" => OrderingKind::Original,
            "random" | "rand" => OrderingKind::Random { seed: 0 },
            "bfs" => OrderingKind::Bfs,
            "bfsrev" | "rbfs" => OrderingKind::BfsReversed,
            "dfs" => OrderingKind::Dfs,
            "rcm" => OrderingKind::Rcm,
            "sloan" => OrderingKind::Sloan,
            "hilbert" | "sfc" => OrderingKind::Hilbert,
            "morton" | "zorder" => OrderingKind::Morton,
            "rcb" | "bisection" => OrderingKind::Rcb,
            "spectral" | "fiedler" => OrderingKind::Spectral,
            "qsort" | "qualitysort" => OrderingKind::QualitySort,
            "degsort" | "degreesort" => OrderingKind::DegreeSort,
            "rdr" => OrderingKind::Rdr,
            _ => return None,
        })
    }

    /// The three orderings of the paper's main evaluation (Figures 8–13).
    pub const PAPER_TRIO: [OrderingKind; 3] =
        [OrderingKind::Original, OrderingKind::Bfs, OrderingKind::Rdr];

    /// Every ordering the crate implements, with `random` at seed 0 — the
    /// "zoo" swept by the `ordering-zoo` experiment.
    pub const ALL: [OrderingKind; 14] = [
        OrderingKind::Original,
        OrderingKind::Random { seed: 0 },
        OrderingKind::Bfs,
        OrderingKind::BfsReversed,
        OrderingKind::Dfs,
        OrderingKind::Rcm,
        OrderingKind::Sloan,
        OrderingKind::Hilbert,
        OrderingKind::Morton,
        OrderingKind::Rcb,
        OrderingKind::Spectral,
        OrderingKind::QualitySort,
        OrderingKind::DegreeSort,
        OrderingKind::Rdr,
    ];
}

/// Compute the permutation of `kind` for `mesh`.
///
/// A fresh [`Adjacency`] is built when the ordering needs one; callers with
/// an adjacency at hand can use [`compute_ordering_with`].
pub fn compute_ordering(mesh: &TriMesh, kind: OrderingKind) -> Permutation {
    match kind {
        OrderingKind::Original => Permutation::identity(mesh.num_vertices()),
        OrderingKind::Random { seed } => random_ordering(mesh.num_vertices(), seed),
        OrderingKind::Hilbert => hilbert_ordering(mesh.coords()),
        OrderingKind::Morton => morton_ordering(mesh.coords()),
        OrderingKind::Rcb => rcb_ordering(mesh.coords()),
        OrderingKind::Rdr => rdr_ordering(mesh),
        OrderingKind::Bfs
        | OrderingKind::BfsReversed
        | OrderingKind::Dfs
        | OrderingKind::Rcm
        | OrderingKind::Sloan
        | OrderingKind::Spectral
        | OrderingKind::QualitySort
        | OrderingKind::DegreeSort => {
            let adj = Adjacency::build(mesh);
            compute_ordering_with(mesh, &adj, kind)
        }
    }
}

/// [`compute_ordering`] reusing a prebuilt adjacency.
pub fn compute_ordering_with(mesh: &TriMesh, adj: &Adjacency, kind: OrderingKind) -> Permutation {
    match kind {
        OrderingKind::Original => Permutation::identity(mesh.num_vertices()),
        OrderingKind::Random { seed } => random_ordering(mesh.num_vertices(), seed),
        OrderingKind::Bfs => bfs_ordering(adj, 0),
        OrderingKind::BfsReversed => bfs_reversed_ordering(adj, 0),
        OrderingKind::Dfs => dfs_ordering(adj, 0),
        OrderingKind::Rcm => rcm_ordering(adj),
        OrderingKind::Sloan => sloan_ordering(adj),
        OrderingKind::Spectral => spectral_ordering(adj),
        OrderingKind::Hilbert => hilbert_ordering(mesh.coords()),
        OrderingKind::Morton => morton_ordering(mesh.coords()),
        OrderingKind::Rcb => rcb_ordering(mesh.coords()),
        OrderingKind::QualitySort => {
            quality_sort_ordering(mesh, adj, QualityMetric::EdgeLengthRatio)
        }
        OrderingKind::DegreeSort => degree_sort_ordering(adj),
        OrderingKind::Rdr => rdr_ordering(mesh),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lms_mesh::generators;

    #[test]
    fn all_kinds_produce_valid_permutations() {
        let m = generators::perturbed_grid(12, 12, 0.3, 1);
        for kind in OrderingKind::ALL {
            let p = compute_ordering(&m, kind);
            assert_eq!(p.len(), m.num_vertices(), "{}", kind.name());
            let mut ids = p.new_to_old().to_vec();
            ids.sort_unstable();
            assert!(ids.windows(2).all(|w| w[1] == w[0] + 1), "{} not bijective", kind.name());
        }
    }

    #[test]
    fn with_and_without_adjacency_agree() {
        let m = generators::perturbed_grid(10, 14, 0.3, 3);
        let adj = Adjacency::build(&m);
        for kind in OrderingKind::ALL {
            assert_eq!(
                compute_ordering(&m, kind),
                compute_ordering_with(&m, &adj, kind),
                "{}",
                kind.name()
            );
        }
    }

    #[test]
    fn parse_roundtrips_names() {
        for kind in OrderingKind::ALL {
            assert_eq!(OrderingKind::parse(kind.name()), Some(kind));
        }
        assert_eq!(OrderingKind::parse("nope"), None);
    }

    #[test]
    fn names_are_unique() {
        let mut names: Vec<&str> = OrderingKind::ALL.iter().map(|k| k.name()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), OrderingKind::ALL.len());
    }

    #[test]
    fn reordered_mesh_locality_ranking_matches_paper() {
        // mean neighbour span: random ≫ ori; bfs and rdr both far below random.
        let m = generators::perturbed_grid(24, 24, 0.35, 5);
        let adj = Adjacency::build(&m);
        let stat = |kind| {
            let p = compute_ordering_with(&m, &adj, kind);
            metrics::layout_stats_permuted(&m, &adj, &p).mean_span
        };
        let ori = stat(OrderingKind::Original);
        let rnd = stat(OrderingKind::Random { seed: 1 });
        let bfs = stat(OrderingKind::Bfs);
        let rdr = stat(OrderingKind::Rdr);
        assert!(rnd > 3.0 * ori, "random {rnd} vs ori {ori}");
        assert!(bfs < rnd && rdr < rnd);
    }

    #[test]
    fn graph_orderings_beat_value_sorts_on_locality() {
        let m = generators::perturbed_grid(24, 24, 0.35, 5);
        let adj = Adjacency::build(&m);
        let stat = |kind| {
            let p = compute_ordering_with(&m, &adj, kind);
            metrics::layout_stats_permuted(&m, &adj, &p).mean_span
        };
        for graphy in [OrderingKind::Bfs, OrderingKind::Rcm, OrderingKind::Sloan] {
            assert!(
                stat(graphy) < stat(OrderingKind::QualitySort),
                "{} should beat the pure quality sort",
                graphy.name()
            );
        }
    }
}
