//! Adjacency-structure abstraction and graph-generic ordering cores.
//!
//! The paper's orderings (BFS, DFS, RCM, RDR, …) only need a vertex set and
//! per-vertex neighbour lists — nothing triangle-specific. This module
//! factors the traversal cores over a small [`Graph`] trait so the same
//! algorithms order the 2D [`lms_mesh::Adjacency`] and the tetrahedral
//! adjacency of `lms-mesh3d` (paper §6: "we expect our new
//! reuse-distance-aware algorithm to outperform extensions of Laplacian mesh
//! smoothing as well").
//!
//! The concrete `*_ordering` functions in [`crate::traversals`] and
//! [`crate::rdr`] are thin wrappers over the `*_ordering_on` cores here.

use crate::permutation::Permutation;
use crate::rdr::RdrOptions;
use std::collections::VecDeque;

/// An undirected graph with contiguous `u32` vertex ids and sorted,
/// deduplicated CSR neighbour slices.
///
/// Implementations must guarantee:
/// * `neighbors(v)` is sorted ascending with no duplicates and no self-loop;
/// * adjacency is symmetric (`w ∈ neighbors(v)` ⇔ `v ∈ neighbors(w)`).
pub trait Graph {
    /// Number of vertices; valid ids are `0..num_vertices() as u32`.
    fn num_vertices(&self) -> usize;

    /// Sorted neighbour list of `v`.
    fn neighbors(&self, v: u32) -> &[u32];

    /// Degree of `v`.
    #[inline]
    fn degree(&self, v: u32) -> usize {
        self.neighbors(v).len()
    }
}

impl Graph for lms_mesh::Adjacency {
    #[inline]
    fn num_vertices(&self) -> usize {
        lms_mesh::Adjacency::num_vertices(self)
    }

    #[inline]
    fn neighbors(&self, v: u32) -> &[u32] {
        lms_mesh::Adjacency::neighbors(self, v)
    }
}

/// A borrowed CSR graph view over raw offset/neighbour arrays.
///
/// Lets callers that already own CSR arrays (e.g. the tetrahedral adjacency
/// in `lms-mesh3d`, or a test fixture) run the ordering cores without
/// copying into an [`lms_mesh::Adjacency`].
#[derive(Debug, Clone, Copy)]
pub struct CsrGraph<'a> {
    offsets: &'a [u32],
    neighbors: &'a [u32],
}

impl<'a> CsrGraph<'a> {
    /// Wrap CSR arrays: `offsets.len() == n + 1`, neighbour ids of vertex
    /// `v` live in `neighbors[offsets[v]..offsets[v+1]]`.
    ///
    /// # Panics
    /// If the arrays are structurally inconsistent (empty offsets, final
    /// offset not matching the neighbour array length, or a decreasing
    /// offset pair).
    pub fn new(offsets: &'a [u32], neighbors: &'a [u32]) -> Self {
        assert!(!offsets.is_empty(), "offsets must have n+1 entries");
        assert_eq!(
            *offsets.last().unwrap() as usize,
            neighbors.len(),
            "final offset must equal the neighbour array length"
        );
        assert!(offsets.windows(2).all(|w| w[0] <= w[1]), "offsets must be non-decreasing");
        CsrGraph { offsets, neighbors }
    }
}

impl Graph for CsrGraph<'_> {
    #[inline]
    fn num_vertices(&self) -> usize {
        self.offsets.len() - 1
    }

    #[inline]
    fn neighbors(&self, v: u32) -> &[u32] {
        let lo = self.offsets[v as usize] as usize;
        let hi = self.offsets[v as usize + 1] as usize;
        &self.neighbors[lo..hi]
    }
}

/// Breadth-first-search ordering from `seed` on any [`Graph`]
/// (Strout & Hovland \[18\]). Restarts from the lowest-numbered unvisited
/// vertex, so disconnected graphs still yield a full permutation.
pub fn bfs_ordering_on<G: Graph>(graph: &G, seed: u32) -> Permutation {
    let n = graph.num_vertices();
    assert!((seed as usize) < n || n == 0, "seed out of range");
    let mut order = Vec::with_capacity(n);
    let mut visited = vec![false; n];
    let mut queue = VecDeque::new();
    let mut next_restart = 0u32;

    if n > 0 {
        queue.push_back(seed);
        visited[seed as usize] = true;
    }
    while order.len() < n {
        match queue.pop_front() {
            Some(v) => {
                order.push(v);
                for &w in graph.neighbors(v) {
                    if !visited[w as usize] {
                        visited[w as usize] = true;
                        queue.push_back(w);
                    }
                }
            }
            None => {
                while visited[next_restart as usize] {
                    next_restart += 1;
                }
                visited[next_restart as usize] = true;
                queue.push_back(next_restart);
            }
        }
    }
    Permutation::from_new_to_old_unchecked(order)
}

/// Reversed BFS on any [`Graph`] (Munson & Hovland \[19\]).
pub fn bfs_reversed_ordering_on<G: Graph>(graph: &G, seed: u32) -> Permutation {
    let mut order = bfs_ordering_on(graph, seed).into_new_to_old();
    order.reverse();
    Permutation::from_new_to_old_unchecked(order)
}

/// Pre-order depth-first-search ordering from `seed` on any [`Graph`].
pub fn dfs_ordering_on<G: Graph>(graph: &G, seed: u32) -> Permutation {
    let n = graph.num_vertices();
    assert!((seed as usize) < n || n == 0, "seed out of range");
    let mut order = Vec::with_capacity(n);
    let mut visited = vec![false; n];
    let mut stack = Vec::new();
    let mut next_restart = 0u32;

    if n > 0 {
        stack.push(seed);
    }
    while order.len() < n {
        match stack.pop() {
            Some(v) => {
                if visited[v as usize] {
                    continue;
                }
                visited[v as usize] = true;
                order.push(v);
                for &w in graph.neighbors(v).iter().rev() {
                    if !visited[w as usize] {
                        stack.push(w);
                    }
                }
            }
            None => {
                while visited[next_restart as usize] {
                    next_restart += 1;
                }
                stack.push(next_restart);
            }
        }
    }
    Permutation::from_new_to_old_unchecked(order)
}

/// Cuthill–McKee on any [`Graph`]: BFS from a minimum-degree vertex with
/// each frontier sorted by ascending degree.
pub fn cuthill_mckee_ordering_on<G: Graph>(graph: &G) -> Permutation {
    let n = graph.num_vertices();
    let mut order = Vec::with_capacity(n);
    let mut visited = vec![false; n];
    let mut queue = VecDeque::new();

    let start_of_component = |visited: &[bool]| {
        (0..n as u32).filter(|&v| !visited[v as usize]).min_by_key(|&v| (graph.degree(v), v))
    };

    while order.len() < n {
        if queue.is_empty() {
            let s = start_of_component(&visited).expect("unvisited vertex must exist");
            visited[s as usize] = true;
            queue.push_back(s);
        }
        while let Some(v) = queue.pop_front() {
            order.push(v);
            let mut frontier: Vec<u32> =
                graph.neighbors(v).iter().copied().filter(|&w| !visited[w as usize]).collect();
            frontier.sort_by_key(|&w| (graph.degree(w), w));
            for w in frontier {
                visited[w as usize] = true;
                queue.push_back(w);
            }
        }
    }
    Permutation::from_new_to_old_unchecked(order)
}

/// Reverse Cuthill–McKee on any [`Graph`].
pub fn rcm_ordering_on<G: Graph>(graph: &G) -> Permutation {
    let mut order = cuthill_mckee_ordering_on(graph).into_new_to_old();
    order.reverse();
    Permutation::from_new_to_old_unchecked(order)
}

/// Algorithm 2 (RDR) on any [`Graph`].
///
/// `interior[v]` marks the vertices the smoother moves (only those seed the
/// outer loop, exactly as in the pseudocode); `quality[v]` is the initial
/// per-vertex quality. Boundary vertices are ordered when reached as
/// neighbours; never-reached vertices are appended in index order so the
/// result is always a complete permutation.
pub fn rdr_ordering_on<G: Graph>(
    graph: &G,
    interior: &[bool],
    quality: &[f64],
    options: &RdrOptions,
) -> Permutation {
    let n = graph.num_vertices();
    assert_eq!(quality.len(), n, "need one quality value per vertex");
    assert_eq!(interior.len(), n, "need one interior flag per vertex");

    let mut vnew: Vec<u32> = Vec::with_capacity(n);
    let mut processed = vec![false; n];
    let mut sorted = vec![false; n];

    // Outer loop: interior vertices by increasing quality (line 6).
    let mut seeds: Vec<u32> = (0..n as u32).filter(|&v| interior[v as usize]).collect();
    options.sort_by_quality(&mut seeds, quality);
    if !options.global_quality_seeding {
        seeds.truncate(1);
    }

    // Reused scratch buffer for the neighbour worklist `l`.
    let mut l: Vec<u32> = Vec::new();

    for &i in &seeds {
        if processed[i as usize] {
            continue;
        }
        if !sorted[i as usize] {
            vnew.push(i);
            sorted[i as usize] = true;
        }
        processed[i as usize] = true;

        // l ← unprocessed neighbours of i sorted by increasing quality.
        l.clear();
        l.extend(graph.neighbors(i).iter().copied().filter(|&w| !processed[w as usize]));
        options.sort_by_quality(&mut l, quality);

        while !l.is_empty() {
            for &j in &l {
                if !sorted[j as usize] {
                    vnew.push(j);
                    sorted[j as usize] = true;
                }
            }
            let head = l[0];
            processed[head as usize] = true;
            let next: Vec<u32> =
                graph.neighbors(head).iter().copied().filter(|&w| !processed[w as usize]).collect();
            l.clear();
            l.extend(next);
            options.sort_by_quality(&mut l, quality);
        }
    }

    // Vertices never reached (isolated boundary patches, or everything
    // beyond the walk in single-seed mode): append in index order.
    for v in 0..n as u32 {
        if !sorted[v as usize] {
            vnew.push(v);
            sorted[v as usize] = true;
        }
    }

    Permutation::from_new_to_old_unchecked(vnew)
}

#[cfg(test)]
mod tests {
    use super::*;
    use lms_mesh::{figure5_mesh, Adjacency};

    /// A triangulated path graph 0–1–2–3–4 as raw CSR arrays.
    fn path_csr() -> (Vec<u32>, Vec<u32>) {
        let offsets = vec![0, 1, 3, 5, 7, 8];
        let neighbors = vec![1, 0, 2, 1, 3, 2, 4, 3];
        (offsets, neighbors)
    }

    #[test]
    fn csr_graph_wraps_raw_arrays() {
        let (offsets, neighbors) = path_csr();
        let g = CsrGraph::new(&offsets, &neighbors);
        assert_eq!(g.num_vertices(), 5);
        assert_eq!(g.neighbors(0), &[1]);
        assert_eq!(g.neighbors(2), &[1, 3]);
        assert_eq!(g.degree(4), 1);
    }

    #[test]
    #[should_panic(expected = "final offset")]
    fn csr_graph_rejects_inconsistent_arrays() {
        let offsets = vec![0, 2];
        let neighbors = vec![1];
        let _ = CsrGraph::new(&offsets, &neighbors);
    }

    #[test]
    fn bfs_on_path_is_sequential() {
        let (offsets, neighbors) = path_csr();
        let g = CsrGraph::new(&offsets, &neighbors);
        let p = bfs_ordering_on(&g, 0);
        assert_eq!(p.new_to_old(), &[0, 1, 2, 3, 4]);
    }

    #[test]
    fn dfs_on_path_is_sequential() {
        let (offsets, neighbors) = path_csr();
        let g = CsrGraph::new(&offsets, &neighbors);
        let p = dfs_ordering_on(&g, 0);
        assert_eq!(p.new_to_old(), &[0, 1, 2, 3, 4]);
    }

    #[test]
    fn rcm_on_path_starts_from_an_endpoint() {
        let (offsets, neighbors) = path_csr();
        let g = CsrGraph::new(&offsets, &neighbors);
        let p = rcm_ordering_on(&g);
        // CM starts from a degree-1 endpoint (vertex 0), RCM reverses it.
        assert_eq!(p.new_to_old(), &[4, 3, 2, 1, 0]);
    }

    #[test]
    fn generic_cores_match_adjacency_wrappers() {
        let m = figure5_mesh();
        let adj = Adjacency::build(&m);
        assert_eq!(bfs_ordering_on(&adj, 0), crate::traversals::bfs_ordering(&adj, 0));
        assert_eq!(dfs_ordering_on(&adj, 0), crate::traversals::dfs_ordering(&adj, 0));
        assert_eq!(rcm_ordering_on(&adj), crate::traversals::rcm_ordering(&adj));
        assert_eq!(
            bfs_reversed_ordering_on(&adj, 0),
            crate::traversals::bfs_reversed_ordering(&adj, 0)
        );
    }

    #[test]
    fn rdr_core_on_csr_view_matches_mesh_rdr() {
        let m = figure5_mesh();
        let adj = Adjacency::build(&m);
        let boundary = lms_mesh::Boundary::detect(&m);
        let quality = lms_mesh::quality::vertex_qualities(
            &m,
            &adj,
            lms_mesh::quality::QualityMetric::EdgeLengthRatio,
        );
        let interior: Vec<bool> =
            (0..m.num_vertices() as u32).map(|v| boundary.is_interior(v)).collect();
        let opts = RdrOptions::default();
        let generic = rdr_ordering_on(&adj, &interior, &quality, &opts);
        let concrete = crate::rdr::rdr_ordering_with(&adj, &boundary, &quality, &opts);
        assert_eq!(generic, concrete);
    }

    #[test]
    fn rdr_core_handles_all_boundary_graph() {
        let (offsets, neighbors) = path_csr();
        let g = CsrGraph::new(&offsets, &neighbors);
        let interior = vec![false; 5];
        let quality = vec![0.5; 5];
        let p = rdr_ordering_on(&g, &interior, &quality, &RdrOptions::default());
        assert!(p.is_identity());
    }

    #[test]
    fn empty_graph_ok_everywhere() {
        let offsets = vec![0u32];
        let neighbors: Vec<u32> = Vec::new();
        let g = CsrGraph::new(&offsets, &neighbors);
        assert!(bfs_ordering_on(&g, 0).is_empty());
        assert!(dfs_ordering_on(&g, 0).is_empty());
        assert!(rcm_ordering_on(&g).is_empty());
        assert!(rdr_ordering_on(&g, &[], &[], &RdrOptions::default()).is_empty());
    }
}
