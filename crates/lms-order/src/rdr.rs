//! **RDR — the Reuse-Distance-Reducing ordering (Algorithm 2, the paper's
//! contribution).**
//!
//! The ordering mimics the smoother's own greedy traversal: starting from
//! the interior vertex of worst quality, it appends each visited vertex's
//! not-yet-ordered neighbours *sorted by increasing quality*, then chains to
//! the worst-quality unprocessed neighbour and repeats. Because the
//! smoothing sweep touches a vertex and then its neighbours, laying the
//! vertices out in this traversal order makes the sweep's accesses almost
//! sequential — minimising reuse distance (Table 2) and cache misses
//! (Figure 9, Table 3).
//!
//! The implementation follows the pseudocode line by line; [`Theorem 1`]
//! (every vertex ordered exactly once) is enforced by construction and
//! checked by property tests.
//!
//! [`Theorem 1`]: https://arxiv.org/abs/1606.00803

use crate::permutation::Permutation;
use lms_mesh::quality::{vertex_qualities, QualityMetric};
use lms_mesh::{Adjacency, Boundary, TriMesh};

/// Options for the RDR ordering.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RdrOptions {
    /// Quality metric used to rank vertices (the paper uses
    /// edge-length ratio).
    pub metric: QualityMetric,
    /// When true (paper behaviour), the outer loop visits **all interior
    /// vertices globally sorted by increasing quality**. When false, only
    /// the single worst vertex seeds the walk and remaining unreached
    /// vertices are appended in index order — the "single-seed" ablation of
    /// DESIGN.md §5.
    pub global_quality_seeding: bool,
    /// Number of quality bins used for the worst-first comparisons
    /// (`None` = exact float order).
    ///
    /// With exact float qualities on a mesh whose quality varies at the
    /// edge scale (every jittered mesh), the "worst unprocessed neighbour"
    /// choice is noise-driven: the walk behaves like a random self-avoiding
    /// walk, traps within tens of steps, and the layout fragments into
    /// hundreds of patches with long seams between them. Binning the
    /// quality (ties then break by vertex index, i.e. by the generator's
    /// coherent numbering) keeps the paper's worst-quality-first semantics
    /// at bin granularity while making the chains spatially coherent — the
    /// behaviour the paper reports on Triangle's graded meshes. The
    /// ablation bench `bench_ablation` compares both.
    pub quality_bins: Option<u32>,
}

impl Default for RdrOptions {
    fn default() -> Self {
        RdrOptions {
            metric: QualityMetric::EdgeLengthRatio,
            global_quality_seeding: true,
            quality_bins: Some(4),
        }
    }
}

impl RdrOptions {
    /// The sort key of vertex `v`: binned (or exact) quality, ties broken
    /// by vertex index.
    #[inline]
    pub fn key(&self, v: u32, quality: &[f64]) -> (u64, u32) {
        let q = quality[v as usize];
        let qk = match self.quality_bins {
            Some(bins) => (q.clamp(0.0, 1.0) * bins as f64).floor() as u64,
            // exact: total-order the float via its bit pattern (qualities
            // are non-negative, so bit order = numeric order)
            None => q.max(0.0).to_bits(),
        };
        (qk, v)
    }

    /// Sort vertex ids in place by [`RdrOptions::key`] — the worst-first
    /// comparison Algorithm 2 uses for both the outer seeds and each
    /// neighbour worklist.
    pub fn sort_by_quality(&self, ids: &mut [u32], quality: &[f64]) {
        ids.sort_unstable_by_key(|&v| self.key(v, quality));
    }
}

/// Algorithm 2 with precomputed inputs.
///
/// `quality[v]` is the per-vertex quality; `boundary` marks the pinned
/// vertices (the outer loop only seeds from interior vertices, exactly as
/// in the pseudocode; boundary vertices are ordered when they appear as
/// neighbours, and any never-reached vertex is appended at the end in index
/// order so the result is always a complete permutation).
pub fn rdr_ordering_with(
    adj: &Adjacency,
    boundary: &Boundary,
    quality: &[f64],
    options: &RdrOptions,
) -> Permutation {
    let n = adj.num_vertices();
    let interior: Vec<bool> = (0..n as u32).map(|v| boundary.is_interior(v)).collect();
    crate::graph::rdr_ordering_on(adj, &interior, quality, options)
}

/// Algorithm 2 end to end: computes adjacency-derived qualities under
/// `options.metric` and returns the RDR permutation.
pub fn rdr_ordering_opts(mesh: &TriMesh, options: &RdrOptions) -> Permutation {
    let adj = Adjacency::build(mesh);
    let boundary = Boundary::detect(mesh);
    let quality = vertex_qualities(mesh, &adj, options.metric);
    rdr_ordering_with(&adj, &boundary, &quality, options)
}

/// Paper-default RDR ordering of `mesh`.
pub fn rdr_ordering(mesh: &TriMesh) -> Permutation {
    rdr_ordering_opts(mesh, &RdrOptions::default())
}

#[cfg(test)]
mod tests {
    use super::*;
    use lms_mesh::{figure5_mesh, generators};

    fn full_setup(mesh: &TriMesh) -> (Adjacency, Boundary, Vec<f64>) {
        let adj = Adjacency::build(mesh);
        let boundary = Boundary::detect(mesh);
        let q = vertex_qualities(mesh, &adj, QualityMetric::EdgeLengthRatio);
        (adj, boundary, q)
    }

    /// Theorem 1: every vertex ordered exactly once.
    #[test]
    fn theorem1_every_vertex_exactly_once() {
        for seed in [1u64, 2, 3] {
            let m = generators::perturbed_grid(15, 13, 0.35, seed);
            let p = rdr_ordering(&m);
            assert_eq!(p.len(), m.num_vertices());
            let mut seen = p.new_to_old().to_vec();
            seen.sort_unstable();
            let expect: Vec<u32> = (0..m.num_vertices() as u32).collect();
            assert_eq!(seen, expect);
        }
    }

    /// Exact-sort options (no quality binning), for tests pinning the
    /// literal pseudocode behaviour.
    fn exact_opts() -> RdrOptions {
        RdrOptions { quality_bins: None, ..Default::default() }
    }

    #[test]
    fn first_vertex_is_the_worst_interior_one() {
        let m = generators::perturbed_grid(12, 12, 0.4, 5);
        let (adj, boundary, q) = full_setup(&m);
        let p = rdr_ordering_with(&adj, &boundary, &q, &exact_opts());
        let first = p.new_to_old()[0];
        assert!(boundary.is_interior(first));
        let worst = (0..m.num_vertices() as u32)
            .filter(|&v| boundary.is_interior(v))
            .min_by(|&a, &b| q[a as usize].partial_cmp(&q[b as usize]).unwrap())
            .unwrap();
        assert_eq!(q[first as usize], q[worst as usize]);
    }

    #[test]
    fn binned_first_vertex_is_in_the_worst_occupied_bin() {
        let m = generators::perturbed_grid(12, 12, 0.4, 5);
        let (adj, boundary, q) = full_setup(&m);
        let opts = RdrOptions::default();
        let p = rdr_ordering_with(&adj, &boundary, &q, &opts);
        let first = p.new_to_old()[0];
        let bins = opts.quality_bins.unwrap() as f64;
        let bin = |v: u32| (q[v as usize].clamp(0.0, 1.0) * bins).floor() as u64;
        let worst_bin = (0..m.num_vertices() as u32)
            .filter(|&v| boundary.is_interior(v))
            .map(bin)
            .min()
            .unwrap();
        assert_eq!(bin(first), worst_bin);
    }

    #[test]
    fn neighbours_of_first_vertex_come_right_after_it() {
        let m = generators::perturbed_grid(10, 10, 0.35, 8);
        let (adj, boundary, q) = full_setup(&m);
        let opts = exact_opts();
        let p = rdr_ordering_with(&adj, &boundary, &q, &opts);
        let order = p.new_to_old();
        let first = order[0];
        let deg = adj.degree(first);
        // positions 1..=deg hold exactly first's neighbours, quality-ascending
        let mut expect: Vec<u32> = adj.neighbors(first).to_vec();
        opts.sort_by_quality(&mut expect, &q);
        assert_eq!(&order[1..=deg], &expect[..]);
    }

    #[test]
    fn deterministic() {
        let m = generators::perturbed_grid(14, 14, 0.3, 2);
        assert_eq!(rdr_ordering(&m), rdr_ordering(&m));
    }

    #[test]
    fn single_seed_mode_still_a_permutation() {
        let m = generators::perturbed_grid(11, 9, 0.3, 6);
        let opts = RdrOptions { global_quality_seeding: false, ..Default::default() };
        let p = rdr_ordering_opts(&m, &opts);
        let mut seen = p.new_to_old().to_vec();
        seen.sort_unstable();
        let expect: Vec<u32> = (0..m.num_vertices() as u32).collect();
        assert_eq!(seen, expect);
    }

    #[test]
    fn works_on_all_quality_metrics() {
        let m = figure5_mesh();
        for metric in
            [QualityMetric::EdgeLengthRatio, QualityMetric::MinAngle, QualityMetric::RadiusRatio]
        {
            let opts = RdrOptions { metric, ..Default::default() };
            let p = rdr_ordering_opts(&m, &opts);
            assert_eq!(p.len(), 13);
        }
    }

    #[test]
    fn mesh_with_no_interior_vertices_falls_back_to_identity() {
        // A single triangle: all vertices are boundary, nothing is seeded,
        // everything lands in the index-order tail.
        let m = lms_mesh::TriMesh::new(
            vec![
                lms_mesh::Point2::new(0.0, 0.0),
                lms_mesh::Point2::new(1.0, 0.0),
                lms_mesh::Point2::new(0.0, 1.0),
            ],
            vec![[0, 1, 2]],
        )
        .unwrap();
        let p = rdr_ordering(&m);
        assert!(p.is_identity());
    }

    #[test]
    fn rdr_improves_quality_locality_over_random() {
        // Consecutive RDR positions should hold vertices of similar quality
        // near the start (ascending-quality chains); at minimum, the first
        // decile must have below-average quality.
        // The literal pseudocode (exact quality order) walks worst-first,
        // so the head decile sits below the global mean. Averaged over
        // several meshes so one marginal draw cannot flip the comparison.
        // (The binned default trades this property for spatial coherence —
        // see `RdrOptions::quality_bins` — so it is not asserted there.)
        let mut head_sum = 0.0;
        let mut global_sum = 0.0;
        for seed in [7, 19, 42, 77] {
            let m = generators::perturbed_grid(20, 20, 0.4, seed);
            let (adj, boundary, q) = full_setup(&m);
            let p = rdr_ordering_with(&adj, &boundary, &q, &exact_opts());
            let order = p.new_to_old();
            let n = order.len();
            head_sum +=
                order[..n / 10].iter().map(|&v| q[v as usize]).sum::<f64>() / (n / 10) as f64;
            global_sum += q.iter().sum::<f64>() / n as f64;
        }
        assert!(
            head_sum < global_sum,
            "mean head quality {head_sum} should be below mean global quality {global_sum}"
        );
    }
}
