//! Hilbert space-filling-curve ordering.
//!
//! Sastry, Kultursay, Shontz & Kandemir \[14\] showed space-filling-curve
//! vertex reordering improves cache utilisation for mesh warping; it is the
//! natural *geometric* (rather than graph- or quality-based) baseline for
//! RDR. Vertices are sorted by the Hilbert index of their quantised
//! coordinates.

use crate::permutation::Permutation;
use lms_mesh::{geometry::bounding_box, Point2};

/// Order of the Hilbert curve used for quantisation (2^16 × 2^16 cells).
const ORDER: u32 = 16;

/// Map grid cell `(x, y)` (each `< 2^ORDER`) to its distance along the
/// Hilbert curve. Classic bit-twiddling transform (Wikipedia `xy2d`).
pub fn hilbert_d(mut x: u32, mut y: u32) -> u64 {
    let n: u32 = 1 << ORDER;
    debug_assert!(x < n && y < n);
    let mut d: u64 = 0;
    let mut s: u32 = n / 2;
    while s > 0 {
        let rx = u32::from((x & s) > 0);
        let ry = u32::from((y & s) > 0);
        d += (s as u64) * (s as u64) * ((3 * rx) ^ ry) as u64;
        // rotate/flip the quadrant so recursion sees canonical orientation
        if ry == 0 {
            if rx == 1 {
                x = n - 1 - x;
                y = n - 1 - y;
            }
            std::mem::swap(&mut x, &mut y);
        }
        s /= 2;
    }
    d
}

/// Hilbert-curve ordering of `coords`.
///
/// Coordinates are normalised to the bounding box and quantised onto a
/// `2^16`-cell grid; ties (same cell) break by original index, keeping the
/// sort stable and deterministic.
pub fn hilbert_ordering(coords: &[Point2]) -> Permutation {
    let n = coords.len();
    if n == 0 {
        return Permutation::identity(0);
    }
    let (lo, hi) = bounding_box(coords);
    let wx = (hi.x - lo.x).max(f64::MIN_POSITIVE);
    let wy = (hi.y - lo.y).max(f64::MIN_POSITIVE);
    let cells = ((1u64 << ORDER) - 1) as f64;
    let mut keyed: Vec<(u64, u32)> = coords
        .iter()
        .enumerate()
        .map(|(i, p)| {
            let qx = (((p.x - lo.x) / wx) * cells) as u32;
            let qy = (((p.y - lo.y) / wy) * cells) as u32;
            (hilbert_d(qx, qy), i as u32)
        })
        .collect();
    keyed.sort_unstable();
    Permutation::from_new_to_old_unchecked(keyed.into_iter().map(|(_, i)| i).collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use lms_mesh::generators;

    #[test]
    fn hilbert_d_on_2x2_quadrants() {
        // For a curve of order 16, the four top-level quadrants are visited
        // in the order (0,0) → (0,1) → (1,1) → (1,0) or a rotation thereof;
        // all four corner cells must receive distinct quarter-of-range ids.
        let q = 1u32 << 15;
        let ids = [hilbert_d(0, 0), hilbert_d(0, q), hilbert_d(q, q), hilbert_d(q, 0)];
        let mut sorted = ids;
        sorted.sort_unstable();
        for w in sorted.windows(2) {
            assert!(w[0] != w[1], "quadrant ids must differ: {ids:?}");
        }
    }

    #[test]
    fn hilbert_d_is_injective_on_a_small_grid() {
        let mut seen = std::collections::HashSet::new();
        for x in 0..16u32 {
            for y in 0..16u32 {
                // spread the small grid across the full order-16 domain
                assert!(seen.insert(hilbert_d(x << 12, y << 12)), "collision at ({x},{y})");
            }
        }
    }

    #[test]
    fn ordering_is_a_permutation() {
        let m = generators::perturbed_grid(10, 10, 0.3, 4);
        let p = hilbert_ordering(m.coords());
        assert_eq!(p.len(), m.num_vertices());
        let mut all = p.new_to_old().to_vec();
        all.sort_unstable();
        let expect: Vec<u32> = (0..m.num_vertices() as u32).collect();
        assert_eq!(all, expect);
    }

    #[test]
    fn nearby_points_get_nearby_positions() {
        // On a structured grid, the average |position difference| between
        // geometric neighbours must be far below the random expectation n/3.
        let m = generators::structured_grid(24, 24);
        let p = hilbert_ordering(m.coords());
        let pos = p.old_to_new();
        let n = m.num_vertices() as f64;
        let mean_gap: f64 = m
            .edges()
            .iter()
            .map(|&(a, b)| (pos[a as usize] as f64 - pos[b as usize] as f64).abs())
            .sum::<f64>()
            / m.edges().len() as f64;
        assert!(mean_gap < n / 10.0, "mean neighbour gap {mean_gap} too large");
    }

    #[test]
    fn degenerate_inputs() {
        assert!(hilbert_ordering(&[]).is_empty());
        let p = hilbert_ordering(&[Point2::new(1.0, 1.0)]);
        assert_eq!(p.len(), 1);
        // identical points: still a permutation
        let p = hilbert_ordering(&[Point2::ZERO; 5]);
        assert_eq!(p.len(), 5);
    }
}
