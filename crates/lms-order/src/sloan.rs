//! Sloan profile-reduction ordering.
//!
//! Sloan's algorithm (S. W. Sloan, *An algorithm for profile and wavefront
//! reduction of sparse matrices*, IJNME 1986) is the classic improvement
//! over (reverse) Cuthill–McKee: instead of strict BFS levels it numbers
//! vertices by a priority that mixes *distance to a pseudo-peripheral end
//! vertex* (global direction) with *current degree* (local wavefront
//! growth). It is a standard member of the reordering-baseline zoo the
//! paper's related work draws from (Strout & Hovland \[18\] compare families
//! of such graph orderings), and a natural "strong graph baseline" to pit
//! against RDR: Sloan optimises matrix profile, RDR optimises the
//! smoother's reuse distance.
//!
//! The implementation is the textbook two-stage version with Sloan's
//! default weights `W1 = 1` (distance) and `W2 = 2` (degree), a lazy
//! max-heap for the priority queue, and a Gibbs–Poole–Stockmeyer-style
//! pseudo-peripheral pair finder. Disconnected meshes are handled
//! per component.

use crate::permutation::Permutation;
use lms_mesh::Adjacency;
use std::collections::BinaryHeap;
use std::collections::VecDeque;

/// Distance weight of the Sloan priority (Sloan's default).
const W1: i64 = 1;
/// Degree weight of the Sloan priority (Sloan's default).
const W2: i64 = 2;

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Status {
    /// Not yet seen (≥ 2 hops from any numbered vertex).
    Inactive,
    /// In the queue but no numbered neighbour yet.
    Preactive,
    /// In the queue with at least one numbered neighbour.
    Active,
    /// Numbered.
    Postactive,
}

/// BFS distances from `root` restricted to `root`'s component
/// (`u32::MAX` marks unreachable vertices).
fn bfs_distances(adj: &Adjacency, root: u32) -> Vec<u32> {
    let mut dist = vec![u32::MAX; adj.num_vertices()];
    let mut queue = VecDeque::new();
    dist[root as usize] = 0;
    queue.push_back(root);
    while let Some(v) = queue.pop_front() {
        let dv = dist[v as usize];
        for &w in adj.neighbors(v) {
            if dist[w as usize] == u32::MAX {
                dist[w as usize] = dv + 1;
                queue.push_back(w);
            }
        }
    }
    dist
}

/// Find a pseudo-peripheral pair `(start, end)` of the component containing
/// `root`: repeatedly BFS, jump to a minimum-degree vertex of the deepest
/// level, and stop when the eccentricity no longer grows.
fn pseudo_peripheral_pair(adj: &Adjacency, root: u32) -> (u32, u32) {
    let mut start = root;
    let mut dist = bfs_distances(adj, start);
    let mut ecc = dist.iter().filter(|&&d| d != u32::MAX).max().copied().unwrap_or(0);
    loop {
        // minimum-degree vertex of the deepest BFS level
        let end = (0..adj.num_vertices() as u32)
            .filter(|&v| dist[v as usize] == ecc)
            .min_by_key(|&v| (adj.degree(v), v))
            .unwrap_or(start);
        let dist_from_end = bfs_distances(adj, end);
        let ecc_from_end =
            dist_from_end.iter().filter(|&&d| d != u32::MAX).max().copied().unwrap_or(0);
        if ecc_from_end > ecc {
            start = end;
            dist = dist_from_end;
            ecc = ecc_from_end;
        } else {
            return (start, end);
        }
    }
}

/// Number one connected component starting at `start`, guided by distances
/// to `end`. Appends into `order`, flips `status` to `Postactive`.
fn sloan_component(
    adj: &Adjacency,
    start: u32,
    end: u32,
    order: &mut Vec<u32>,
    status: &mut [Status],
) {
    let dist = bfs_distances(adj, end);
    let n = adj.num_vertices();
    let mut priority = vec![0i64; n];
    for v in 0..n as u32 {
        if dist[v as usize] != u32::MAX && status[v as usize] == Status::Inactive {
            priority[v as usize] = W1 * dist[v as usize] as i64 - W2 * (adj.degree(v) as i64 + 1);
        }
    }

    // lazy max-heap: stale entries are skipped on pop
    let mut heap: BinaryHeap<(i64, u32)> = BinaryHeap::new();
    status[start as usize] = Status::Preactive;
    heap.push((priority[start as usize], start));

    // bump a vertex's priority and (re)queue it, activating it if inactive
    macro_rules! bump {
        ($heap:ident, $v:expr) => {{
            let v = $v as usize;
            priority[v] += W2;
            if status[v] == Status::Inactive {
                status[v] = Status::Preactive;
            }
            $heap.push((priority[v], $v));
        }};
    }

    while let Some((p, v)) = heap.pop() {
        let vi = v as usize;
        if status[vi] == Status::Postactive || p != priority[vi] {
            continue; // stale heap entry
        }
        if status[vi] == Status::Preactive {
            // v gains its first numbered neighbour (itself being numbered):
            // every neighbour's current degree drops by one
            for &w in adj.neighbors(v) {
                if status[w as usize] != Status::Postactive {
                    bump!(heap, w);
                }
            }
        }
        status[vi] = Status::Postactive;
        order.push(v);
        for &w in adj.neighbors(v) {
            if status[w as usize] == Status::Preactive {
                status[w as usize] = Status::Active;
                bump!(heap, w);
                for &x in adj.neighbors(w) {
                    if status[x as usize] != Status::Postactive {
                        bump!(heap, x);
                    }
                }
            }
        }
    }
}

/// Sloan profile-reduction ordering of the mesh graph.
///
/// Every connected component is numbered from a pseudo-peripheral start
/// vertex toward its antipodal end vertex; isolated vertices come out in
/// index order. The result is always a complete permutation.
pub fn sloan_ordering(adj: &Adjacency) -> Permutation {
    let n = adj.num_vertices();
    let mut order = Vec::with_capacity(n);
    let mut status = vec![Status::Inactive; n];
    for root in 0..n as u32 {
        if status[root as usize] != Status::Inactive {
            continue;
        }
        let (start, end) = pseudo_peripheral_pair(adj, root);
        sloan_component(adj, start, end, &mut order, &mut status);
    }
    Permutation::from_new_to_old_unchecked(order)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::layout_stats_permuted;
    use crate::traversals::random_ordering;
    use lms_mesh::{figure5_mesh, generators, Point2, TriMesh};

    fn profile(m: &TriMesh, p: &Permutation) -> u64 {
        // matrix profile = sum over rows of (row index − smallest connected
        // column index); the quantity Sloan minimises
        let pos = p.old_to_new();
        let mut lowest: Vec<u32> = pos.clone();
        for (a, b) in m.edges() {
            let (pa, pb) = (pos[a as usize], pos[b as usize]);
            lowest[a as usize] = lowest[a as usize].min(pb);
            lowest[b as usize] = lowest[b as usize].min(pa);
        }
        (0..m.num_vertices()).map(|v| (pos[v] - lowest[v]) as u64).sum()
    }

    #[test]
    fn is_a_permutation() {
        let m = generators::perturbed_grid(15, 19, 0.3, 4);
        let adj = Adjacency::build(&m);
        let p = sloan_ordering(&adj);
        assert_eq!(p.len(), m.num_vertices());
        let mut ids = p.new_to_old().to_vec();
        ids.sort_unstable();
        assert!(ids.iter().enumerate().all(|(i, &v)| v == i as u32));
    }

    #[test]
    fn reduces_profile_vs_random_and_competes_with_identity() {
        let m = generators::perturbed_grid(20, 20, 0.25, 7);
        let adj = Adjacency::build(&m);
        let sloan = profile(&m, &sloan_ordering(&adj));
        let rnd = profile(&m, &random_ordering(m.num_vertices(), 5));
        let id = profile(&m, &Permutation::identity(m.num_vertices()));
        assert!(sloan * 4 < rnd, "sloan {sloan} vs random {rnd}");
        // row-major on a grid is already near-optimal; Sloan should be in
        // the same league (within 2×), not catastrophically worse
        assert!(sloan <= id * 2, "sloan {sloan} vs identity {id}");
    }

    #[test]
    fn neighbours_stay_close_in_layout() {
        let m = generators::perturbed_grid(24, 24, 0.3, 9);
        let adj = Adjacency::build(&m);
        let sloan = layout_stats_permuted(&m, &adj, &sloan_ordering(&adj)).mean_span;
        let rnd = layout_stats_permuted(&m, &adj, &random_ordering(m.num_vertices(), 2)).mean_span;
        assert!(sloan * 3.0 < rnd, "sloan {sloan} vs random {rnd}");
    }

    #[test]
    fn figure5_mesh_starts_peripheral() {
        let m = figure5_mesh();
        let adj = Adjacency::build(&m);
        let p = sloan_ordering(&adj);
        // the first numbered vertex must be an extremal (pseudo-peripheral)
        // one: its eccentricity equals the graph diameter
        let first = p.new_to_old()[0];
        let ecc =
            |v: u32| bfs_distances(&adj, v).into_iter().filter(|&d| d != u32::MAX).max().unwrap();
        let diameter = (0..m.num_vertices() as u32).map(ecc).max().unwrap();
        assert_eq!(ecc(first), diameter);
    }

    #[test]
    fn handles_disconnected_and_empty_graphs() {
        let coords = (0..6).map(|i| Point2::new(i as f64, (i % 2) as f64)).collect();
        let m = TriMesh::new(coords, vec![[0, 1, 2], [3, 4, 5]]).unwrap();
        let adj = Adjacency::build(&m);
        let p = sloan_ordering(&adj);
        assert_eq!(p.len(), 6);
        let mut ids = p.new_to_old().to_vec();
        ids.sort_unstable();
        assert_eq!(ids, vec![0, 1, 2, 3, 4, 5]);

        let empty = TriMesh::new(Vec::new(), Vec::new()).unwrap();
        assert!(sloan_ordering(&Adjacency::build(&empty)).is_empty());
    }
}
