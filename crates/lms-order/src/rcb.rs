//! Recursive coordinate bisection (RCB): ordering and k-way partitioning.
//!
//! The cache-oblivious divide-and-conquer layout: split the vertex set at
//! the median of its longest bounding-box axis, lay out each half
//! contiguously, recurse. Any subset of `2^k` consecutive positions is a
//! geometrically compact blob, so the layout has good locality at *every*
//! cache-size scale — the same property space-filling curves provide, but
//! adaptive to the actual point distribution instead of a fixed grid.
//!
//! Included as a strong geometric baseline next to Hilbert/Morton
//! (Sastry et al. \[14\]) in the ordering zoo. The same median-split
//! primitive also drives [`rcb_parts`], the balanced k-way geometric
//! partitioner behind `lms-part`'s domain decomposition.
//!
//! The recursion passes each subset's **exact** bounding box down instead
//! of re-scanning all ids at every level: along the split axis the child
//! extents fall out of the split itself (see [`median_split`]), so only
//! the off-axis extents and the left half's split-axis maximum need a
//! fold — one fused pass per split instead of a fresh full-box scan per
//! child, with a bit-identical resulting permutation.

use crate::permutation::Permutation;
use lms_mesh::Point2;

/// Minimum leaf size: subsets at or below this stay in index order.
const LEAF: usize = 8;

/// Recursive-coordinate-bisection ordering of a 2D point set.
pub fn rcb_ordering(coords: &[Point2]) -> Permutation {
    let mut ids: Vec<u32> = (0..coords.len() as u32).collect();
    if ids.len() > LEAF {
        let (lo, hi) = subset_bbox(&ids, coords);
        bisect(&mut ids, coords, lo, hi);
    }
    // subsets at or below LEAF keep ascending index order; `ids` starts
    // sorted, so nothing to do on that path
    Permutation::from_new_to_old_unchecked(ids)
}

/// Balanced k-way RCB partition of a 2D point set: recursively
/// median-split along the longest bounding-box axis, sending `⌊k/2⌋/k` of
/// the points (and parts) to the left subtree. Returns the owning part of
/// every point. Part sizes differ by at most one, every part is a
/// geometrically compact blob, and the assignment is deterministic (ties
/// broken by id, exactly like [`rcb_ordering`]).
///
/// Thin 2D wrapper over the dimension-generic [`rcb_parts_nd`] — the
/// split-axis rule (`extent.x >= extent.y` picks x) is exactly the ND
/// "first longest axis wins" rule at `D = 2`, so the assignment is
/// unchanged by the generalisation.
pub fn rcb_parts(coords: &[Point2], num_parts: usize) -> Vec<u32> {
    let nd: Vec<[f64; 2]> = coords.iter().map(|p| [p.x, p.y]).collect();
    rcb_parts_nd(&nd, num_parts)
}

/// Balanced k-way RCB partition of a `D`-dimensional point set (the
/// const-generic core behind [`rcb_parts`], and the 3D partitioner of
/// `lms-mesh3d`'s tetrahedral decompositions): recursively median-split
/// along the longest bounding-box axis (the first such axis on ties),
/// sending `⌊k/2⌋/k` of the points (and parts) to the left subtree.
/// Part sizes differ by at most one and the assignment is deterministic
/// (ties broken by id).
pub fn rcb_parts_nd<const D: usize>(coords: &[[f64; D]], num_parts: usize) -> Vec<u32> {
    assert!(num_parts >= 1, "need at least one part");
    let mut part = vec![0u32; coords.len()];
    if coords.is_empty() || num_parts == 1 {
        return part;
    }
    let mut ids: Vec<u32> = (0..coords.len() as u32).collect();
    let (lo, hi) = subset_bbox_nd(&ids, coords);
    kway_nd(&mut ids, coords, lo, hi, 0, num_parts as u32, &mut part);
    part
}

/// Balanced k-way **weighted** RCB partition: like [`rcb_parts`], but each
/// split places the cut at the **weighted median** along the longest axis —
/// the left subtree receives the prefix of the `(key, id)`-sorted subset
/// whose cumulative weight stays within `⌊k/2⌋/k` of the subset's total
/// weight. With non-uniform weights (e.g. per-vertex area shares of a
/// graded mesh) this balances *weight* per part where the unweighted
/// splitter balances *counts*.
///
/// With uniform weights the cut index reduces exactly to the unweighted
/// `len·⌊k/2⌋/k` (integer cumulative sums compared against an exactly-
/// representable target), so the assignment equals [`rcb_parts`] — the
/// oracle property the tests pin.
pub fn rcb_parts_weighted(coords: &[Point2], weights: &[f64], num_parts: usize) -> Vec<u32> {
    let nd: Vec<[f64; 2]> = coords.iter().map(|p| [p.x, p.y]).collect();
    rcb_parts_weighted_nd(&nd, weights, num_parts)
}

/// Balanced k-way weighted RCB over `D`-dimensional coordinates — the
/// const-generic core behind [`rcb_parts_weighted`], with the same
/// weighted-median cut rule per split.
pub fn rcb_parts_weighted_nd<const D: usize>(
    coords: &[[f64; D]],
    weights: &[f64],
    num_parts: usize,
) -> Vec<u32> {
    assert!(num_parts >= 1, "need at least one part");
    assert_eq!(coords.len(), weights.len(), "one weight per point");
    assert!(
        weights.iter().all(|w| w.is_finite() && *w >= 0.0),
        "weights must be finite and non-negative"
    );
    let mut part = vec![0u32; coords.len()];
    if coords.is_empty() || num_parts == 1 {
        return part;
    }
    let mut ids: Vec<u32> = (0..coords.len() as u32).collect();
    kway_weighted_nd(&mut ids, coords, weights, 0, num_parts as u32, &mut part);
    part
}

/// Exact bounding box of an ND subset — computed once at each k-way
/// recursion root; children derive theirs from [`median_split_nd`]'s
/// bookkeeping, mirroring the 2D extents-down recursion.
fn subset_bbox_nd<const D: usize>(ids: &[u32], coords: &[[f64; D]]) -> ([f64; D], [f64; D]) {
    let mut lo = coords[ids[0] as usize];
    let mut hi = lo;
    for &v in ids.iter() {
        let p = coords[v as usize];
        for d in 0..D {
            lo[d] = lo[d].min(p[d]);
            hi[d] = hi[d].max(p[d]);
        }
    }
    (lo, hi)
}

/// Longest axis of an exact bounding box (first axis wins ties — at
/// `D = 2` exactly the old `(hi.x - lo.x) >= (hi.y - lo.y)` rule).
fn longest_axis<const D: usize>(lo: &[f64; D], hi: &[f64; D]) -> usize {
    let mut axis = 0;
    for d in 1..D {
        if hi[d] - lo[d] > hi[axis] - lo[axis] {
            axis = d;
        }
    }
    axis
}

/// [`median_split`]'s ND form: split `ids` at position `mid` along the
/// longest axis of its (exact) bounding box `(lo, hi)`, ties broken by
/// id, and return the **exact** bounding boxes of the two halves via one
/// fused pass — the split-axis extremes carry over from the parent and
/// the pivot, so no fresh full-box scan per child is needed.
#[allow(clippy::type_complexity)]
fn median_split_nd<const D: usize>(
    ids: &mut [u32],
    coords: &[[f64; D]],
    lo: [f64; D],
    hi: [f64; D],
    mid: usize,
) -> (([f64; D], [f64; D]), ([f64; D], [f64; D])) {
    debug_assert!(mid >= 1 && mid < ids.len());
    let axis = longest_axis(&lo, &hi);
    let key = |v: u32| coords[v as usize][axis];
    ids.select_nth_unstable_by(mid, |&a, &b| {
        key(a).partial_cmp(&key(b)).unwrap_or(std::cmp::Ordering::Equal).then(a.cmp(&b))
    });

    // Split-axis extents carry over exactly: the subset's key-minimal
    // element lands in the left half (left min = parent min) and the
    // key-maximal in the right (right max = parent max); the pivot —
    // first of the right half under the (key, id) order — realises the
    // right half's split-axis minimum. Only the left half's split-axis
    // maximum and both halves' off-axis extents need a fold.
    let off_fold = |half: &[u32]| {
        let mut hlo = coords[half[0] as usize];
        let mut hhi = hlo;
        for &v in &half[1..] {
            let p = coords[v as usize];
            for d in 0..D {
                if d != axis {
                    hlo[d] = hlo[d].min(p[d]);
                    hhi[d] = hhi[d].max(p[d]);
                }
            }
        }
        (hlo, hhi)
    };
    let (mut llo, mut lhi) = off_fold(&ids[..mid]);
    llo[axis] = lo[axis];
    lhi[axis] = ids[..mid].iter().map(|&v| key(v)).fold(f64::MIN, f64::max);
    let (mut rlo, mut rhi) = off_fold(&ids[mid..]);
    rlo[axis] = key(ids[mid]);
    rhi[axis] = hi[axis];
    ((llo, lhi), (rlo, rhi))
}

fn kway_nd<const D: usize>(
    ids: &mut [u32],
    coords: &[[f64; D]],
    lo: [f64; D],
    hi: [f64; D],
    base: u32,
    k: u32,
    part: &mut [u32],
) {
    if k == 1 || ids.len() <= 1 {
        for &v in ids.iter() {
            part[v as usize] = base;
        }
        return;
    }
    let kl = k / 2;
    let mid = ids.len() * kl as usize / k as usize;
    if mid == 0 {
        // fewer points than parts on this side: everything goes to the
        // right subtree, the left part ids stay empty
        kway_nd(ids, coords, lo, hi, base + kl, k - kl, part);
        return;
    }
    let (lbox, rbox) = median_split_nd(ids, coords, lo, hi, mid);
    let (left, right) = ids.split_at_mut(mid);
    kway_nd(left, coords, lbox.0, lbox.1, base, kl, part);
    kway_nd(right, coords, rbox.0, rbox.1, base + kl, k - kl, part);
}

fn kway_weighted_nd<const D: usize>(
    ids: &mut [u32],
    coords: &[[f64; D]],
    weights: &[f64],
    base: u32,
    k: u32,
    part: &mut [u32],
) {
    if k == 1 || ids.len() <= 1 {
        for &v in ids.iter() {
            part[v as usize] = base;
        }
        return;
    }
    let kl = k / 2;
    let (lo, hi) = subset_bbox_nd(ids, coords);
    let axis = longest_axis(&lo, &hi);
    let key = |v: u32| coords[v as usize][axis];
    // full (key, id) sort instead of select_nth: the weighted-median cut
    // index is only known after a prefix scan of the sorted weights. The
    // left/right *sets* under this comparator match the unweighted
    // splitter's whenever the cut indices agree.
    ids.sort_unstable_by(|&a, &b| {
        key(a).partial_cmp(&key(b)).unwrap_or(std::cmp::Ordering::Equal).then(a.cmp(&b))
    });
    let total: f64 = ids.iter().map(|&v| weights[v as usize]).sum();
    let target = total * kl as f64 / k as f64;
    let mut acc = 0.0;
    let mut mid = 0usize;
    for &v in ids.iter() {
        let next = acc + weights[v as usize];
        if next <= target {
            acc = next;
            mid += 1;
        } else {
            break;
        }
    }
    let mid = mid.min(ids.len() - 1);
    if mid == 0 {
        // the first point already exceeds the left target (or fewer points
        // than parts): everything goes right, left part ids stay empty —
        // mirrors the unweighted splitter's degenerate branch
        kway_weighted_nd(ids, coords, weights, base + kl, k - kl, part);
        return;
    }
    let (left, right) = ids.split_at_mut(mid);
    kway_weighted_nd(left, coords, weights, base, kl, part);
    kway_weighted_nd(right, coords, weights, base + kl, k - kl, part);
}

/// Exact bounding box of a subset — the recursion root's only full scan
/// (children derive theirs from [`median_split`]'s bookkeeping).
fn subset_bbox(ids: &[u32], coords: &[Point2]) -> (Point2, Point2) {
    let (mut lo, mut hi) = (coords[ids[0] as usize], coords[ids[0] as usize]);
    for &v in ids.iter() {
        lo = lo.min(coords[v as usize]);
        hi = hi.max(coords[v as usize]);
    }
    (lo, hi)
}

/// Split `ids` at position `mid` along the longest axis of its (exact)
/// bounding box `(lo, hi)`, median style with ties broken by id, and
/// return the **exact** bounding boxes of the two halves.
///
/// The child boxes need no fresh full scan: under the `(key, id)` order
/// the subset's key-minimal element lands in the left half and the
/// key-maximal in the right (so the parent's split-axis extremes carry
/// over), and the median element — first of the right half — realises the
/// right half's split-axis minimum. Only the left half's split-axis
/// maximum and both halves' off-axis extents remain, gathered in one
/// fused pass.
fn median_split(
    ids: &mut [u32],
    coords: &[Point2],
    lo: Point2,
    hi: Point2,
    mid: usize,
) -> ((Point2, Point2), (Point2, Point2)) {
    debug_assert!(mid >= 1 && mid < ids.len());
    let split_x = (hi.x - lo.x) >= (hi.y - lo.y);
    let key = |v: u32| {
        let p = coords[v as usize];
        if split_x {
            p.x
        } else {
            p.y
        }
    };
    ids.select_nth_unstable_by(mid, |&a, &b| {
        key(a).partial_cmp(&key(b)).unwrap_or(std::cmp::Ordering::Equal).then(a.cmp(&b))
    });

    let off = |v: u32| {
        let p = coords[v as usize];
        if split_x {
            p.y
        } else {
            p.x
        }
    };
    let pivot = key(ids[mid]);
    let mut lk_max = key(ids[0]);
    let (mut lo_min, mut lo_max) = (off(ids[0]), off(ids[0]));
    for &v in &ids[1..mid] {
        lk_max = lk_max.max(key(v));
        let o = off(v);
        lo_min = lo_min.min(o);
        lo_max = lo_max.max(o);
    }
    let (mut ro_min, mut ro_max) = (off(ids[mid]), off(ids[mid]));
    for &v in &ids[mid + 1..] {
        let o = off(v);
        ro_min = ro_min.min(o);
        ro_max = ro_max.max(o);
    }
    let (lk_min, rk_max) = if split_x { (lo.x, hi.x) } else { (lo.y, hi.y) };
    let boxed = |k0: f64, k1: f64, o0: f64, o1: f64| {
        if split_x {
            (Point2::new(k0, o0), Point2::new(k1, o1))
        } else {
            (Point2::new(o0, k0), Point2::new(o1, k1))
        }
    };
    (boxed(lk_min, lk_max, lo_min, lo_max), boxed(pivot, rk_max, ro_min, ro_max))
}

fn bisect(ids: &mut [u32], coords: &[Point2], lo: Point2, hi: Point2) {
    let mid = ids.len() / 2;
    let (lbox, rbox) = median_split(ids, coords, lo, hi, mid);
    let (left, right) = ids.split_at_mut(mid);
    for (half, (hlo, hhi)) in [(left, lbox), (right, rbox)] {
        if half.len() <= LEAF {
            half.sort_unstable(); // deterministic leaf layout
        } else {
            bisect(half, coords, hlo, hhi);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::layout_stats_permuted;
    use crate::traversals::random_ordering;
    use lms_mesh::{generators, Adjacency};

    /// The pre-optimisation reference: recompute the subset bounding box
    /// from scratch at every recursion level. Kept as the oracle for the
    /// bit-identity test of the extent-passing recursion.
    fn reference_rcb(coords: &[Point2]) -> Permutation {
        fn bisect_ref(ids: &mut [u32], coords: &[Point2]) {
            if ids.len() <= LEAF {
                ids.sort_unstable();
                return;
            }
            let (mut lo, mut hi) = (coords[ids[0] as usize], coords[ids[0] as usize]);
            for &v in ids.iter() {
                lo = lo.min(coords[v as usize]);
                hi = hi.max(coords[v as usize]);
            }
            let split_x = (hi.x - lo.x) >= (hi.y - lo.y);
            let mid = ids.len() / 2;
            let key = |v: u32| {
                let p = coords[v as usize];
                if split_x {
                    p.x
                } else {
                    p.y
                }
            };
            ids.select_nth_unstable_by(mid, |&a, &b| {
                key(a).partial_cmp(&key(b)).unwrap_or(std::cmp::Ordering::Equal).then(a.cmp(&b))
            });
            let (left, right) = ids.split_at_mut(mid);
            bisect_ref(left, coords);
            bisect_ref(right, coords);
        }
        let mut ids: Vec<u32> = (0..coords.len() as u32).collect();
        bisect_ref(&mut ids, coords);
        Permutation::from_new_to_old_unchecked(ids)
    }

    #[test]
    fn extent_passing_matches_full_rescan_bitwise() {
        for (nx, ny, jit, seed) in
            [(15, 11, 0.3, 2), (40, 4, 0.0, 0), (24, 24, 0.35, 5), (13, 31, 0.45, 11)]
        {
            let m = generators::perturbed_grid(nx, ny, jit, seed);
            assert_eq!(
                rcb_ordering(m.coords()),
                reference_rcb(m.coords()),
                "grid {nx}x{ny} jitter {jit} seed {seed}"
            );
        }
        // degenerate inputs: identical and collinear points
        let same = vec![Point2::new(0.5, 0.5); 50];
        assert_eq!(rcb_ordering(&same), reference_rcb(&same));
        let line: Vec<Point2> = (0..77).map(|i| Point2::new(i as f64, 3.0)).collect();
        assert_eq!(rcb_ordering(&line), reference_rcb(&line));
    }

    #[test]
    fn rcb_is_a_bijection() {
        let m = generators::perturbed_grid(15, 11, 0.3, 2);
        let p = rcb_ordering(m.coords());
        let mut ids = p.new_to_old().to_vec();
        ids.sort_unstable();
        assert!(ids.iter().enumerate().all(|(i, &v)| i as u32 == v));
    }

    #[test]
    fn rcb_is_deterministic() {
        let m = generators::perturbed_grid(13, 13, 0.35, 7);
        assert_eq!(rcb_ordering(m.coords()), rcb_ordering(m.coords()));
    }

    #[test]
    fn first_half_is_one_side_of_the_split() {
        // On a wide strip, the first split is by x: every vertex in the
        // first half must lie left of (or at) every vertex in the second.
        let m = generators::perturbed_grid(40, 4, 0.0, 0);
        let p = rcb_ordering(m.coords());
        let order = p.new_to_old();
        let mid = order.len() / 2;
        let max_left =
            order[..mid].iter().map(|&v| m.coords()[v as usize].x).fold(f64::MIN, f64::max);
        let min_right =
            order[mid..].iter().map(|&v| m.coords()[v as usize].x).fold(f64::MAX, f64::min);
        assert!(max_left <= min_right + 1e-12, "halves overlap: {max_left} > {min_right}");
    }

    #[test]
    fn rcb_beats_random_locality() {
        let m = generators::perturbed_grid(24, 24, 0.35, 5);
        let adj = Adjacency::build(&m);
        let rcb = layout_stats_permuted(&m, &adj, &rcb_ordering(m.coords())).mean_span;
        let rnd = layout_stats_permuted(&m, &adj, &random_ordering(m.num_vertices(), 1)).mean_span;
        assert!(rcb < rnd / 4.0, "rcb span {rcb} vs random {rnd}");
    }

    #[test]
    fn small_and_empty_inputs() {
        assert!(rcb_ordering(&[]).is_empty());
        let few = vec![Point2::new(0.0, 0.0), Point2::new(1.0, 1.0)];
        assert_eq!(rcb_ordering(&few).new_to_old(), &[0, 1]);
    }

    #[test]
    fn identical_points_still_bijective() {
        let coords = vec![Point2::new(0.5, 0.5); 50];
        let p = rcb_ordering(&coords);
        let mut ids = p.new_to_old().to_vec();
        ids.sort_unstable();
        assert!(ids.iter().enumerate().all(|(i, &v)| i as u32 == v));
    }

    #[test]
    fn parts_are_balanced_and_cover() {
        for (n_pts, k) in [(100usize, 4usize), (97, 5), (64, 8), (33, 7), (10, 3)] {
            // deterministic scatter (no mesh needed for a point partition)
            let coords: Vec<Point2> = (0..n_pts)
                .map(|i| Point2::new((i * 37 % 101) as f64, (i * 53 % 97) as f64))
                .collect();
            let part = rcb_parts(&coords, k);
            assert_eq!(part.len(), coords.len());
            let mut sizes = vec![0usize; k];
            for &p in &part {
                assert!((p as usize) < k);
                sizes[p as usize] += 1;
            }
            let (lo, hi) = (sizes.iter().min().unwrap(), sizes.iter().max().unwrap());
            assert!(hi - lo <= 1, "unbalanced sizes {sizes:?} for n={} k={k}", coords.len());
        }
    }

    #[test]
    fn parts_are_geometric_blobs() {
        // On a flat strip (x span ≫ y span), 4-way RCB must slice by x:
        // part id is monotone non-decreasing in x.
        let m =
            generators::perturbed_grid_over(64, 2, (Point2::ZERO, Point2::new(16.0, 0.1)), 0.0, 0);
        let part = rcb_parts(m.coords(), 4);
        let mut labelled: Vec<(f64, u32)> =
            m.coords().iter().zip(&part).map(|(p, &q)| (p.x, q)).collect();
        labelled.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap());
        for w in labelled.windows(2) {
            assert!(w[0].1 <= w[1].1, "part ids not monotone along the strip");
        }
    }

    #[test]
    fn parts_degenerate_inputs() {
        assert!(rcb_parts(&[], 4).is_empty());
        // more parts than points: every point still gets a valid part id
        let few = vec![Point2::new(0.0, 0.0), Point2::new(1.0, 1.0)];
        let part = rcb_parts(&few, 8);
        assert!(part.iter().all(|&p| p < 8));
        // k = 1: everything in part 0
        assert!(rcb_parts(&few, 1).iter().all(|&p| p == 0));
        // identical points: still valid and balanced
        let same = vec![Point2::new(0.5, 0.5); 30];
        let part = rcb_parts(&same, 4);
        let mut sizes = [0usize; 4];
        for &p in &part {
            sizes[p as usize] += 1;
        }
        assert!(sizes.iter().max().unwrap() - sizes.iter().min().unwrap() <= 1);
    }

    #[test]
    fn parts_deterministic() {
        let m = generators::perturbed_grid(20, 20, 0.35, 3);
        assert_eq!(rcb_parts(m.coords(), 6), rcb_parts(m.coords(), 6));
    }

    #[test]
    fn weighted_parts_equal_unweighted_on_uniform_weights() {
        // the oracle: with every weight equal, the weighted-median cut
        // index reduces to the unweighted count split at every level, so
        // the assignments are identical
        for (nx, ny, jit, seed) in
            [(15usize, 11usize, 0.3, 2u64), (24, 24, 0.35, 5), (13, 31, 0.45, 11)]
        {
            let m = generators::perturbed_grid(nx, ny, jit, seed);
            let ones = vec![1.0; m.num_vertices()];
            for k in [2usize, 3, 5, 8] {
                assert_eq!(
                    rcb_parts_weighted(m.coords(), &ones, k),
                    rcb_parts(m.coords(), k),
                    "grid {nx}x{ny} seed {seed} k={k}"
                );
            }
        }
        // and degenerate inputs behave like the unweighted splitter
        let few = vec![Point2::new(0.0, 0.0), Point2::new(1.0, 1.0)];
        assert_eq!(rcb_parts_weighted(&few, &[1.0, 1.0], 8), rcb_parts(&few, 8));
        assert!(rcb_parts_weighted(&[], &[], 4).is_empty());
    }

    #[test]
    fn weighted_parts_balance_weight_not_count() {
        // a 1D line with weights concentrated at the right end: the
        // weighted splitter must put far fewer *points* in the heavy parts
        // so that per-part *weight* stays balanced
        let n = 256usize;
        let coords: Vec<Point2> = (0..n).map(|i| Point2::new(i as f64, 0.0)).collect();
        let weights: Vec<f64> = (0..n).map(|i| if i < n / 2 { 1.0 } else { 15.0 }).collect();
        let k = 4usize;
        let part = rcb_parts_weighted(&coords, &weights, k);
        let mut wsum = vec![0.0f64; k];
        for (i, &p) in part.iter().enumerate() {
            wsum[p as usize] += weights[i];
        }
        let total: f64 = weights.iter().sum();
        let mean = total / k as f64;
        let max_w = wsum.iter().copied().fold(0.0, f64::max);
        assert!(max_w / mean < 1.25, "weighted imbalance {:.3} (weights {wsum:?})", max_w / mean);
        // the unweighted splitter, balancing counts, is far worse on weight
        let part_u = rcb_parts(&coords, k);
        let mut wsum_u = vec![0.0f64; k];
        for (i, &p) in part_u.iter().enumerate() {
            wsum_u[p as usize] += weights[i];
        }
        let max_u = wsum_u.iter().copied().fold(0.0, f64::max);
        assert!(max_u / mean > 1.5, "unweighted should be weight-imbalanced here");
    }

    #[test]
    fn weighted_parts_cover_and_are_deterministic() {
        let m = generators::perturbed_grid(17, 13, 0.3, 7);
        let w: Vec<f64> = (0..m.num_vertices()).map(|i| 1.0 + (i % 5) as f64).collect();
        let a = rcb_parts_weighted(m.coords(), &w, 6);
        let b = rcb_parts_weighted(m.coords(), &w, 6);
        assert_eq!(a, b);
        assert_eq!(a.len(), m.num_vertices());
        assert!(a.iter().all(|&p| p < 6));
    }
}
