//! Recursive coordinate bisection (RCB) ordering.
//!
//! The cache-oblivious divide-and-conquer layout: split the vertex set at
//! the median of its longest bounding-box axis, lay out each half
//! contiguously, recurse. Any subset of `2^k` consecutive positions is a
//! geometrically compact blob, so the layout has good locality at *every*
//! cache-size scale — the same property space-filling curves provide, but
//! adaptive to the actual point distribution instead of a fixed grid.
//!
//! Included as a strong geometric baseline next to Hilbert/Morton
//! (Sastry et al. \[14\]) in the ordering zoo.

use crate::permutation::Permutation;
use lms_mesh::Point2;

/// Minimum leaf size: subsets at or below this stay in index order.
const LEAF: usize = 8;

/// Recursive-coordinate-bisection ordering of a 2D point set.
pub fn rcb_ordering(coords: &[Point2]) -> Permutation {
    let mut ids: Vec<u32> = (0..coords.len() as u32).collect();
    bisect(&mut ids, coords);
    Permutation::from_new_to_old_unchecked(ids)
}

fn bisect(ids: &mut [u32], coords: &[Point2]) {
    if ids.len() <= LEAF {
        ids.sort_unstable(); // deterministic leaf layout
        return;
    }
    // Longest axis of this subset's bounding box.
    let (mut lo, mut hi) = (coords[ids[0] as usize], coords[ids[0] as usize]);
    for &v in ids.iter() {
        lo = lo.min(coords[v as usize]);
        hi = hi.max(coords[v as usize]);
    }
    let split_x = (hi.x - lo.x) >= (hi.y - lo.y);

    let mid = ids.len() / 2;
    let key = |v: u32| {
        let p = coords[v as usize];
        if split_x {
            p.x
        } else {
            p.y
        }
    };
    // median split, ties broken by id for determinism
    ids.select_nth_unstable_by(mid, |&a, &b| {
        key(a).partial_cmp(&key(b)).unwrap_or(std::cmp::Ordering::Equal).then(a.cmp(&b))
    });
    let (left, right) = ids.split_at_mut(mid);
    bisect(left, coords);
    bisect(right, coords);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::layout_stats_permuted;
    use crate::traversals::random_ordering;
    use lms_mesh::{generators, Adjacency};

    #[test]
    fn rcb_is_a_bijection() {
        let m = generators::perturbed_grid(15, 11, 0.3, 2);
        let p = rcb_ordering(m.coords());
        let mut ids = p.new_to_old().to_vec();
        ids.sort_unstable();
        assert!(ids.iter().enumerate().all(|(i, &v)| i as u32 == v));
    }

    #[test]
    fn rcb_is_deterministic() {
        let m = generators::perturbed_grid(13, 13, 0.35, 7);
        assert_eq!(rcb_ordering(m.coords()), rcb_ordering(m.coords()));
    }

    #[test]
    fn first_half_is_one_side_of_the_split() {
        // On a wide strip, the first split is by x: every vertex in the
        // first half must lie left of (or at) every vertex in the second.
        let m = generators::perturbed_grid(40, 4, 0.0, 0);
        let p = rcb_ordering(m.coords());
        let order = p.new_to_old();
        let mid = order.len() / 2;
        let max_left =
            order[..mid].iter().map(|&v| m.coords()[v as usize].x).fold(f64::MIN, f64::max);
        let min_right =
            order[mid..].iter().map(|&v| m.coords()[v as usize].x).fold(f64::MAX, f64::min);
        assert!(max_left <= min_right + 1e-12, "halves overlap: {max_left} > {min_right}");
    }

    #[test]
    fn rcb_beats_random_locality() {
        let m = generators::perturbed_grid(24, 24, 0.35, 5);
        let adj = Adjacency::build(&m);
        let rcb = layout_stats_permuted(&m, &adj, &rcb_ordering(m.coords())).mean_span;
        let rnd = layout_stats_permuted(&m, &adj, &random_ordering(m.num_vertices(), 1)).mean_span;
        assert!(rcb < rnd / 4.0, "rcb span {rcb} vs random {rnd}");
    }

    #[test]
    fn small_and_empty_inputs() {
        assert!(rcb_ordering(&[]).is_empty());
        let few = vec![Point2::new(0.0, 0.0), Point2::new(1.0, 1.0)];
        assert_eq!(rcb_ordering(&few).new_to_old(), &[0, 1]);
    }

    #[test]
    fn identical_points_still_bijective() {
        let coords = vec![Point2::new(0.5, 0.5); 50];
        let p = rcb_ordering(&coords);
        let mut ids = p.new_to_old().to_vec();
        ids.sort_unstable();
        assert!(ids.iter().enumerate().all(|(i, &v)| i as u32 == v));
    }
}
