//! Vertex permutations.
//!
//! A reordering is stored as a *new-to-old* map: `perm[new] = old` means the
//! vertex stored at position `new` of the reordered mesh is the vertex that
//! was at position `old` originally (this is exactly Algorithm 2's
//! `Vnew[next_num] ← V[i]`).

use lms_mesh::TriMesh;
use std::fmt;

/// Errors raised when constructing a [`Permutation`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PermutationError {
    /// An index appears twice (or some index is missing).
    NotABijection { first_dup: u32 },
    /// An index is out of range.
    OutOfRange { index: u32, len: usize },
    /// The permutation length does not match the object it is applied to.
    LengthMismatch { perm: usize, object: usize },
}

impl fmt::Display for PermutationError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PermutationError::NotABijection { first_dup } => {
                write!(f, "index {first_dup} appears more than once")
            }
            PermutationError::OutOfRange { index, len } => {
                write!(f, "index {index} out of range for length {len}")
            }
            PermutationError::LengthMismatch { perm, object } => {
                write!(f, "permutation of length {perm} applied to object of length {object}")
            }
        }
    }
}

impl std::error::Error for PermutationError {}

/// A bijective vertex renumbering.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Permutation {
    new_to_old: Vec<u32>,
}

impl Permutation {
    /// The identity permutation on `n` vertices.
    pub fn identity(n: usize) -> Self {
        Permutation { new_to_old: (0..n as u32).collect() }
    }

    /// Build from a new-to-old map, validating bijectivity.
    pub fn from_new_to_old(new_to_old: Vec<u32>) -> Result<Self, PermutationError> {
        let n = new_to_old.len();
        let mut seen = vec![false; n];
        for &old in &new_to_old {
            if old as usize >= n {
                return Err(PermutationError::OutOfRange { index: old, len: n });
            }
            if seen[old as usize] {
                return Err(PermutationError::NotABijection { first_dup: old });
            }
            seen[old as usize] = true;
        }
        Ok(Permutation { new_to_old })
    }

    /// Build from a new-to-old map without validation.
    ///
    /// Callers must guarantee the map is a bijection on `0..len`.
    pub fn from_new_to_old_unchecked(new_to_old: Vec<u32>) -> Self {
        debug_assert!(Permutation::from_new_to_old(new_to_old.clone()).is_ok());
        Permutation { new_to_old }
    }

    /// Number of vertices the permutation acts on.
    #[inline]
    pub fn len(&self) -> usize {
        self.new_to_old.len()
    }

    /// True for the zero-length permutation.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.new_to_old.is_empty()
    }

    /// The new-to-old map (`result[new] = old`).
    #[inline]
    pub fn new_to_old(&self) -> &[u32] {
        &self.new_to_old
    }

    /// Consume the permutation, returning the new-to-old map.
    #[inline]
    pub fn into_new_to_old(self) -> Vec<u32> {
        self.new_to_old
    }

    /// The old-to-new map (`result[old] = new`).
    pub fn old_to_new(&self) -> Vec<u32> {
        let mut out = vec![0u32; self.len()];
        for (new, &old) in self.new_to_old.iter().enumerate() {
            out[old as usize] = new as u32;
        }
        out
    }

    /// The inverse permutation.
    pub fn inverse(&self) -> Permutation {
        Permutation { new_to_old: self.old_to_new() }
    }

    /// `self ∘ other`: apply `other` first, then `self`.
    ///
    /// Position `new` of the result holds the vertex that
    /// `other.new_to_old[self.new_to_old[new]]` held originally.
    pub fn compose(&self, other: &Permutation) -> Result<Permutation, PermutationError> {
        if self.len() != other.len() {
            return Err(PermutationError::LengthMismatch { perm: self.len(), object: other.len() });
        }
        let new_to_old =
            self.new_to_old.iter().map(|&mid| other.new_to_old[mid as usize]).collect();
        Ok(Permutation { new_to_old })
    }

    /// True when this is the identity.
    pub fn is_identity(&self) -> bool {
        self.new_to_old.iter().enumerate().all(|(new, &old)| new as u32 == old)
    }

    /// Reorder a value-per-vertex array: `result[new] = values[old]`.
    pub fn apply_to_values<T: Copy>(&self, values: &[T]) -> Result<Vec<T>, PermutationError> {
        if values.len() != self.len() {
            return Err(PermutationError::LengthMismatch {
                perm: self.len(),
                object: values.len(),
            });
        }
        Ok(self.new_to_old.iter().map(|&old| values[old as usize]).collect())
    }

    /// Renumber a mesh: permutes the coordinate array and rewrites every
    /// triangle's indices. Geometry and connectivity are unchanged — only
    /// the storage order moves.
    pub fn apply_to_mesh(&self, mesh: &TriMesh) -> TriMesh {
        assert_eq!(
            self.len(),
            mesh.num_vertices(),
            "permutation length must match mesh vertex count"
        );
        let coords = self.new_to_old.iter().map(|&old| mesh.coords()[old as usize]).collect();
        let old_to_new = self.old_to_new();
        let triangles = mesh
            .triangles()
            .iter()
            .map(|tri| {
                [
                    old_to_new[tri[0] as usize],
                    old_to_new[tri[1] as usize],
                    old_to_new[tri[2] as usize],
                ]
            })
            .collect();
        TriMesh::new_unchecked(coords, triangles)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lms_mesh::figure5_mesh;

    #[test]
    fn identity_is_identity() {
        let p = Permutation::identity(5);
        assert!(p.is_identity());
        assert_eq!(p.len(), 5);
        assert_eq!(p.apply_to_values(&[10, 20, 30, 40, 50]).unwrap(), vec![10, 20, 30, 40, 50]);
    }

    #[test]
    fn validation_catches_duplicates_and_range() {
        assert_eq!(
            Permutation::from_new_to_old(vec![0, 1, 1]).unwrap_err(),
            PermutationError::NotABijection { first_dup: 1 }
        );
        assert_eq!(
            Permutation::from_new_to_old(vec![0, 3]).unwrap_err(),
            PermutationError::OutOfRange { index: 3, len: 2 }
        );
    }

    #[test]
    fn inverse_roundtrips() {
        let p = Permutation::from_new_to_old(vec![2, 0, 3, 1]).unwrap();
        let inv = p.inverse();
        assert!(p.compose(&inv).unwrap().is_identity());
        assert!(inv.compose(&p).unwrap().is_identity());
    }

    #[test]
    fn apply_to_values_permutes() {
        // new position 0 holds old vertex 2, etc.
        let p = Permutation::from_new_to_old(vec![2, 0, 1]).unwrap();
        assert_eq!(p.apply_to_values(&['a', 'b', 'c']).unwrap(), vec!['c', 'a', 'b']);
        assert!(p.apply_to_values(&[1]).is_err());
    }

    #[test]
    fn compose_applies_right_then_left() {
        let first = Permutation::from_new_to_old(vec![1, 2, 0]).unwrap();
        let second = Permutation::from_new_to_old(vec![2, 1, 0]).unwrap();
        let both = second.compose(&first).unwrap();
        let vals = ['a', 'b', 'c'];
        let step1 = first.apply_to_values(&vals).unwrap();
        let step2 = second.apply_to_values(&step1).unwrap();
        assert_eq!(both.apply_to_values(&vals).unwrap(), step2);
    }

    #[test]
    fn mesh_application_preserves_geometry() {
        let m = figure5_mesh();
        let n = m.num_vertices();
        // reverse the vertices
        let p = Permutation::from_new_to_old((0..n as u32).rev().collect()).unwrap();
        let rm = p.apply_to_mesh(&m);
        assert_eq!(rm.num_vertices(), n);
        assert_eq!(rm.num_triangles(), m.num_triangles());
        // same geometry: total area and edge multiset survive
        assert!((rm.total_area() - m.total_area()).abs() < 1e-12);
        assert_eq!(rm.edges().len(), m.edges().len());
        // vertex 0 of the new mesh is vertex n-1 of the old one
        assert_eq!(rm.coords()[0], m.coords()[n - 1]);
    }

    #[test]
    fn mesh_application_by_identity_is_noop() {
        let m = figure5_mesh();
        let p = Permutation::identity(m.num_vertices());
        assert_eq!(p.apply_to_mesh(&m), m);
    }

    #[test]
    fn double_application_of_inverse_restores_mesh() {
        let m = figure5_mesh();
        let p =
            Permutation::from_new_to_old(vec![4, 7, 2, 0, 1, 3, 5, 6, 8, 9, 10, 11, 12]).unwrap();
        let rm = p.apply_to_mesh(&m);
        let back = p.inverse().apply_to_mesh(&rm);
        assert_eq!(back, m);
    }
}
