//! Graph-traversal orderings: BFS (Strout & Hovland), DFS, (reverse)
//! Cuthill–McKee, and the RANDOM baseline.
//!
//! All traversals cover every connected component (restarting from the
//! lowest-numbered unvisited vertex), so they always produce a full
//! permutation. The cores are graph-generic (see [`crate::graph`]); these
//! wrappers fix the graph type to the triangle-mesh [`Adjacency`].

use crate::graph;
use crate::permutation::Permutation;
use lms_mesh::Adjacency;
use rand::rngs::SmallRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

/// Breadth-first-search ordering from `seed` — the reordering of
/// Strout & Hovland \[18\] that the paper uses as its strongest baseline.
pub fn bfs_ordering(adj: &Adjacency, seed: u32) -> Permutation {
    graph::bfs_ordering_on(adj, seed)
}

/// Depth-first-search ordering from `seed` (pre-order, iterative).
///
/// Neighbours are pushed in reverse index order so the traversal expands
/// the lowest-numbered neighbour first, matching the textbook recursion.
pub fn dfs_ordering(adj: &Adjacency, seed: u32) -> Permutation {
    graph::dfs_ordering_on(adj, seed)
}

/// Cuthill–McKee ordering: BFS from a minimum-degree vertex with each
/// frontier sorted by ascending degree.
pub fn cuthill_mckee_ordering(adj: &Adjacency) -> Permutation {
    graph::cuthill_mckee_ordering_on(adj)
}

/// Reverse Cuthill–McKee: [`cuthill_mckee_ordering`] with the visit order
/// reversed — the classic bandwidth-reducing ordering.
pub fn rcm_ordering(adj: &Adjacency) -> Permutation {
    graph::rcm_ordering_on(adj)
}

/// Reversed breadth-first search: BFS from `seed` with the visit order
/// reversed — the ordering Munson & Hovland \[19\] found best for the
/// FeasNewt mesh-optimisation benchmark (paper §2).
pub fn bfs_reversed_ordering(adj: &Adjacency, seed: u32) -> Permutation {
    graph::bfs_reversed_ordering_on(adj, seed)
}

/// Uniform random ordering (Fisher–Yates), deterministic in `seed`.
/// The paper's worst-case baseline (Figure 1a).
pub fn random_ordering(n: usize, seed: u64) -> Permutation {
    let mut order: Vec<u32> = (0..n as u32).collect();
    order.shuffle(&mut SmallRng::seed_from_u64(seed));
    Permutation::from_new_to_old_unchecked(order)
}

#[cfg(test)]
mod tests {
    use super::*;
    use lms_mesh::{figure5_mesh, generators, Adjacency, TriMesh};

    fn fig5_adj() -> (TriMesh, Adjacency) {
        let m = figure5_mesh();
        let adj = Adjacency::build(&m);
        (m, adj)
    }

    #[test]
    fn bfs_starts_at_seed_and_expands_by_levels() {
        let (_, adj) = fig5_adj();
        let p = bfs_ordering(&adj, 0);
        let order = p.new_to_old();
        assert_eq!(order[0], 0);
        // All of vertex 0's neighbours appear before any distance-2 vertex.
        let pos = p.old_to_new();
        let max_nbr_pos = adj.neighbors(0).iter().map(|&w| pos[w as usize]).max().unwrap();
        // Vertex 12 is at graph distance ≥ 2 from vertex 0.
        assert!(pos[12] > max_nbr_pos);
    }

    #[test]
    fn bfs_is_a_permutation_on_every_seed() {
        let (m, adj) = fig5_adj();
        for seed in 0..m.num_vertices() as u32 {
            let p = bfs_ordering(&adj, seed);
            assert_eq!(p.len(), m.num_vertices());
            assert_eq!(p.new_to_old()[0], seed);
        }
    }

    #[test]
    fn dfs_goes_deep_first() {
        let (_, adj) = fig5_adj();
        let p = dfs_ordering(&adj, 0);
        let order = p.new_to_old();
        assert_eq!(order[0], 0);
        // second visited vertex is 0's lowest neighbour
        assert_eq!(order[1], adj.neighbors(0)[0]);
        assert_eq!(p.len(), 13);
    }

    #[test]
    fn bfs_reversed_is_reversed_bfs() {
        let (_, adj) = fig5_adj();
        let fwd = bfs_ordering(&adj, 0);
        let rev = bfs_reversed_ordering(&adj, 0);
        let mut expect = fwd.new_to_old().to_vec();
        expect.reverse();
        assert_eq!(rev.new_to_old(), &expect[..]);
        // the seed ends up last
        assert_eq!(*rev.new_to_old().last().unwrap(), 0);
    }

    #[test]
    fn rcm_reverses_cuthill_mckee() {
        let (_, adj) = fig5_adj();
        let cm = cuthill_mckee_ordering(&adj);
        let rcm = rcm_ordering(&adj);
        let mut reversed = cm.new_to_old().to_vec();
        reversed.reverse();
        assert_eq!(rcm.new_to_old(), &reversed[..]);
    }

    #[test]
    fn rcm_reduces_bandwidth_on_grid() {
        let m = generators::perturbed_grid(12, 12, 0.2, 3);
        let adj = Adjacency::build(&m);
        let bw = |p: &Permutation| {
            let pos = p.old_to_new();
            m.edges()
                .iter()
                .map(|&(a, b)| (pos[a as usize] as i64 - pos[b as usize] as i64).unsigned_abs())
                .max()
                .unwrap()
        };
        let id = Permutation::identity(m.num_vertices());
        let rnd = random_ordering(m.num_vertices(), 1);
        let rcm = rcm_ordering(&adj);
        assert!(bw(&rcm) <= bw(&id) * 2, "RCM should not blow up grid bandwidth");
        assert!(bw(&rcm) < bw(&rnd), "RCM must beat random bandwidth");
    }

    #[test]
    fn random_is_deterministic_and_bijective() {
        let a = random_ordering(100, 9);
        let b = random_ordering(100, 9);
        let c = random_ordering(100, 10);
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert!(!a.is_identity());
    }

    #[test]
    fn traversals_cover_disconnected_components() {
        // Two disjoint triangles.
        let coords = (0..6).map(|i| lms_mesh::Point2::new(i as f64, (i % 2) as f64)).collect();
        let m = TriMesh::new(coords, vec![[0, 1, 2], [3, 4, 5]]).unwrap();
        let adj = Adjacency::build(&m);
        for p in [bfs_ordering(&adj, 0), dfs_ordering(&adj, 0), rcm_ordering(&adj)] {
            assert_eq!(p.len(), 6);
            let mut sorted = p.new_to_old().to_vec();
            sorted.sort_unstable();
            assert_eq!(sorted, vec![0, 1, 2, 3, 4, 5]);
        }
    }

    #[test]
    fn empty_graph_yields_empty_permutations() {
        let m = TriMesh::new(Vec::new(), Vec::new()).unwrap();
        let adj = Adjacency::build(&m);
        assert!(bfs_ordering(&adj, 0).is_empty());
        assert!(dfs_ordering(&adj, 0).is_empty());
        assert!(rcm_ordering(&adj).is_empty());
        assert!(random_ordering(0, 0).is_empty());
    }
}
