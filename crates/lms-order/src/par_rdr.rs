//! Parallel RDR construction.
//!
//! §5.4 prices the serial reordering at "approximatively one iteration with
//! the ORI ordering", making RDR worthwhile from four smoothing iterations
//! on. Parallelising the *construction* moves that break-even point further
//! down: this module partitions the vertex index space into contiguous
//! chunks (the same static decomposition the paper's parallel smoother
//! uses), runs an independent Algorithm-2 walk inside each chunk with
//! rayon, and concatenates the per-chunk orders.
//!
//! The result is deterministic for every chunk count (the decomposition is
//! by index, not by thread), degrades locality only at the chunk seams, and
//! with `chunks = 1` reproduces the serial [`rdr_ordering_with`] exactly.
//!
//! [`rdr_ordering_with`]: crate::rdr::rdr_ordering_with

use crate::graph::Graph;
use crate::permutation::Permutation;
use crate::rdr::RdrOptions;
use rayon::prelude::*;

/// How the per-chunk orders are concatenated.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ChunkConcat {
    /// Chunks in index order — preserves the generator numbering's global
    /// coherence (default).
    #[default]
    IndexOrder,
    /// Chunks sorted by their worst (minimum) vertex quality — the closest
    /// parallel analogue of Algorithm 2's global worst-first outer loop.
    WorstQualityFirst,
}

/// Options for the parallel RDR construction.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct ParRdrOptions {
    /// The underlying Algorithm-2 options (quality binning, seeding).
    pub rdr: RdrOptions,
    /// Chunk concatenation policy.
    pub concat: ChunkConcat,
}

/// Algorithm 2 restricted to one index range `lo..hi`: walks only edges
/// whose both endpoints lie in the range, orders every range vertex exactly
/// once (chunk-relative Theorem 1).
fn rdr_walk_in_chunk<G: Graph>(
    graph: &G,
    interior: &[bool],
    quality: &[f64],
    options: &RdrOptions,
    lo: u32,
    hi: u32,
) -> Vec<u32> {
    let len = (hi - lo) as usize;
    let in_chunk = |v: u32| v >= lo && v < hi;
    let mut vnew: Vec<u32> = Vec::with_capacity(len);
    // chunk-relative flags
    let mut processed = vec![false; len];
    let mut sorted = vec![false; len];
    let rel = |v: u32| (v - lo) as usize;

    let mut seeds: Vec<u32> = (lo..hi).filter(|&v| interior[v as usize]).collect();
    options.sort_by_quality(&mut seeds, quality);

    let mut l: Vec<u32> = Vec::new();
    for &i in &seeds {
        if processed[rel(i)] {
            continue;
        }
        if !sorted[rel(i)] {
            vnew.push(i);
            sorted[rel(i)] = true;
        }
        processed[rel(i)] = true;

        l.clear();
        l.extend(graph.neighbors(i).iter().copied().filter(|&w| in_chunk(w) && !processed[rel(w)]));
        options.sort_by_quality(&mut l, quality);

        while !l.is_empty() {
            for &j in &l {
                if !sorted[rel(j)] {
                    vnew.push(j);
                    sorted[rel(j)] = true;
                }
            }
            let head = l[0];
            processed[rel(head)] = true;
            let next: Vec<u32> = graph
                .neighbors(head)
                .iter()
                .copied()
                .filter(|&w| in_chunk(w) && !processed[rel(w)])
                .collect();
            l.clear();
            l.extend(next);
            options.sort_by_quality(&mut l, quality);
        }
    }

    for v in lo..hi {
        if !sorted[rel(v)] {
            vnew.push(v);
            sorted[rel(v)] = true;
        }
    }
    vnew
}

/// Parallel RDR over `chunks` contiguous index ranges.
///
/// `interior[v]` and `quality[v]` are as in
/// [`rdr_ordering_on`](crate::graph::rdr_ordering_on). The chunk walks run
/// on the current rayon pool; wrap the call in
/// [`rayon::ThreadPool::install`] to bound the thread count.
pub fn par_rdr_ordering_on<G: Graph + Sync>(
    graph: &G,
    interior: &[bool],
    quality: &[f64],
    options: &ParRdrOptions,
    chunks: usize,
) -> Permutation {
    let n = graph.num_vertices();
    assert_eq!(quality.len(), n, "need one quality value per vertex");
    assert_eq!(interior.len(), n, "need one interior flag per vertex");
    assert!(chunks >= 1, "need at least one chunk");

    if chunks == 1 {
        return crate::graph::rdr_ordering_on(graph, interior, quality, &options.rdr);
    }

    let chunk = n.div_ceil(chunks).max(1);
    let ranges: Vec<(u32, u32)> = (0..chunks)
        .map(|c| (((c * chunk).min(n)) as u32, (((c + 1) * chunk).min(n)) as u32))
        .filter(|&(lo, hi)| lo < hi)
        .collect();

    let mut parts: Vec<Vec<u32>> = ranges
        .par_iter()
        .map(|&(lo, hi)| rdr_walk_in_chunk(graph, interior, quality, &options.rdr, lo, hi))
        .collect();

    if options.concat == ChunkConcat::WorstQualityFirst {
        // sort chunks by their worst member quality, ascending; ties by
        // first vertex id for determinism
        parts.sort_by(|a, b| {
            let worst =
                |p: &Vec<u32>| p.iter().map(|&v| quality[v as usize]).fold(f64::INFINITY, f64::min);
            worst(a)
                .partial_cmp(&worst(b))
                .unwrap_or(std::cmp::Ordering::Equal)
                .then(a.first().cmp(&b.first()))
        });
    }

    let mut vnew = Vec::with_capacity(n);
    for part in parts {
        vnew.extend(part);
    }
    Permutation::from_new_to_old_unchecked(vnew)
}

/// Parallel RDR on a triangle mesh end to end (adjacency, boundary and
/// qualities derived as in [`rdr_ordering_opts`](crate::rdr::rdr_ordering_opts)).
pub fn par_rdr_ordering(
    mesh: &lms_mesh::TriMesh,
    options: &ParRdrOptions,
    chunks: usize,
) -> Permutation {
    let adj = lms_mesh::Adjacency::build(mesh);
    let boundary = lms_mesh::Boundary::detect(mesh);
    let quality = lms_mesh::quality::vertex_qualities(mesh, &adj, options.rdr.metric);
    let interior: Vec<bool> =
        (0..mesh.num_vertices() as u32).map(|v| boundary.is_interior(v)).collect();
    par_rdr_ordering_on(&adj, &interior, &quality, options, chunks)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::layout_stats_permuted;
    use crate::rdr::rdr_ordering;
    use lms_mesh::{generators, Adjacency};

    fn check_bijection(p: &Permutation, n: usize) {
        assert_eq!(p.len(), n);
        let mut ids = p.new_to_old().to_vec();
        ids.sort_unstable();
        assert!(ids.iter().enumerate().all(|(i, &v)| i as u32 == v));
    }

    #[test]
    fn one_chunk_equals_serial_rdr() {
        let m = generators::perturbed_grid(16, 16, 0.35, 3);
        let par = par_rdr_ordering(&m, &ParRdrOptions::default(), 1);
        assert_eq!(par, rdr_ordering(&m));
    }

    #[test]
    fn any_chunk_count_is_a_bijection() {
        let m = generators::perturbed_grid(14, 12, 0.35, 5);
        for chunks in [2usize, 3, 4, 7, 16, 1000] {
            let p = par_rdr_ordering(&m, &ParRdrOptions::default(), chunks);
            check_bijection(&p, m.num_vertices());
        }
    }

    #[test]
    fn deterministic_regardless_of_parallelism() {
        let m = generators::perturbed_grid(15, 15, 0.3, 9);
        let opts = ParRdrOptions::default();
        let a = par_rdr_ordering(&m, &opts, 4);
        // run again inside a 1-thread pool: same decomposition, same result
        let pool = rayon::ThreadPoolBuilder::new().num_threads(1).build().unwrap();
        let b = pool.install(|| par_rdr_ordering(&m, &opts, 4));
        assert_eq!(a, b);
    }

    #[test]
    fn worst_quality_concat_is_also_a_bijection() {
        let m = generators::perturbed_grid(13, 13, 0.4, 2);
        let opts = ParRdrOptions { concat: ChunkConcat::WorstQualityFirst, ..Default::default() };
        let p = par_rdr_ordering(&m, &opts, 4);
        check_bijection(&p, m.num_vertices());
    }

    #[test]
    fn chunked_locality_stays_close_to_serial() {
        let m = generators::perturbed_grid(28, 28, 0.35, 7);
        let adj = Adjacency::build(&m);
        let serial = layout_stats_permuted(&m, &adj, &rdr_ordering(&m)).mean_span;
        let par4 =
            layout_stats_permuted(&m, &adj, &par_rdr_ordering(&m, &ParRdrOptions::default(), 4))
                .mean_span;
        // seams cost something, but the chunked layout must stay within 3x
        // of serial RDR and far below random
        let rnd = layout_stats_permuted(
            &m,
            &adj,
            &crate::traversals::random_ordering(m.num_vertices(), 1),
        )
        .mean_span;
        assert!(par4 < serial * 3.0, "par {par4} vs serial {serial}");
        assert!(par4 < rnd / 3.0, "par {par4} vs random {rnd}");
    }

    #[test]
    fn more_chunks_than_vertices_degenerates_gracefully() {
        let m = generators::perturbed_grid(4, 4, 0.2, 1);
        let p = par_rdr_ordering(&m, &ParRdrOptions::default(), 10_000);
        // every chunk is a single vertex: the order is the identity
        assert!(p.is_identity());
    }
}
