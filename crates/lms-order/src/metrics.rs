//! Layout-locality metrics for comparing orderings *before* running the
//! smoother: edge bandwidth, mean neighbour gap, and the access-span of a
//! hypothetical sweep (the quantity Figure 5 of the paper minimises).

use crate::permutation::Permutation;
use lms_mesh::{Adjacency, TriMesh};

/// Summary statistics of a vertex layout.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LayoutStats {
    /// max |pos(u) − pos(v)| over edges (matrix bandwidth).
    pub bandwidth: usize,
    /// mean |pos(u) − pos(v)| over edges.
    pub mean_gap: f64,
    /// mean over vertices of (max − min) position among {v} ∪ N(v) —
    /// the per-vertex access span of a smoothing step (Figure 5).
    pub mean_span: f64,
}

/// Compute layout statistics for `mesh` as currently numbered.
pub fn layout_stats(mesh: &TriMesh, adj: &Adjacency) -> LayoutStats {
    layout_stats_permuted(mesh, adj, &Permutation::identity(mesh.num_vertices()))
}

/// Compute layout statistics as if `perm` had been applied to the mesh
/// (without materialising the reordered mesh).
pub fn layout_stats_permuted(mesh: &TriMesh, adj: &Adjacency, perm: &Permutation) -> LayoutStats {
    assert_eq!(perm.len(), mesh.num_vertices());
    let pos = perm.old_to_new();
    let edges = mesh.edges();

    let mut bandwidth = 0usize;
    let mut gap_sum = 0f64;
    for &(a, b) in &edges {
        let gap = (pos[a as usize] as i64 - pos[b as usize] as i64).unsigned_abs() as usize;
        bandwidth = bandwidth.max(gap);
        gap_sum += gap as f64;
    }
    let mean_gap = if edges.is_empty() { 0.0 } else { gap_sum / edges.len() as f64 };

    let n = mesh.num_vertices();
    let mut span_sum = 0f64;
    for v in 0..n as u32 {
        let mut lo = pos[v as usize];
        let mut hi = pos[v as usize];
        for &w in adj.neighbors(v) {
            lo = lo.min(pos[w as usize]);
            hi = hi.max(pos[w as usize]);
        }
        span_sum += (hi - lo) as f64;
    }
    let mean_span = if n == 0 { 0.0 } else { span_sum / n as f64 };

    LayoutStats { bandwidth, mean_gap, mean_span }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::traversals::random_ordering;
    use lms_mesh::{generators, Adjacency};

    #[test]
    fn identity_stats_match_direct_stats() {
        let m = generators::perturbed_grid(10, 10, 0.2, 1);
        let adj = Adjacency::build(&m);
        let direct = layout_stats(&m, &adj);
        let via_perm = layout_stats_permuted(&m, &adj, &Permutation::identity(m.num_vertices()));
        assert_eq!(direct, via_perm);
    }

    #[test]
    fn grid_bandwidth_is_about_row_length() {
        let m = generators::structured_grid(16, 16);
        let adj = Adjacency::build(&m);
        let s = layout_stats(&m, &adj);
        // Row-major grid: neighbours are at ±1, ±nx, ±(nx+1).
        assert!(s.bandwidth <= 17, "bandwidth {} too large", s.bandwidth);
        assert!(s.mean_gap <= 17.0);
    }

    #[test]
    fn random_ordering_has_much_worse_locality() {
        let m = generators::structured_grid(20, 20);
        let adj = Adjacency::build(&m);
        let good = layout_stats(&m, &adj);
        let bad = layout_stats_permuted(&m, &adj, &random_ordering(m.num_vertices(), 3));
        assert!(bad.mean_gap > 4.0 * good.mean_gap);
        assert!(bad.mean_span > 4.0 * good.mean_span);
    }

    #[test]
    fn span_at_least_gap() {
        let m = generators::perturbed_grid(12, 8, 0.3, 2);
        let adj = Adjacency::build(&m);
        let s = layout_stats(&m, &adj);
        // A vertex's span covers its largest neighbour gap.
        assert!(s.mean_span + 1e-12 >= s.mean_gap);
    }

    #[test]
    fn empty_mesh_stats_are_zero() {
        let m = lms_mesh::TriMesh::new(Vec::new(), Vec::new()).unwrap();
        let adj = Adjacency::build(&m);
        let s = layout_stats(&m, &adj);
        assert_eq!(s.bandwidth, 0);
        assert_eq!(s.mean_gap, 0.0);
        assert_eq!(s.mean_span, 0.0);
    }
}
