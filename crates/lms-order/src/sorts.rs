//! Value-sorted orderings — ablation baselines that isolate *what part of
//! RDR does the work*.
//!
//! RDR (Algorithm 2) combines two ingredients: (i) rank vertices by their
//! initial quality, and (ii) walk the mesh graph so a vertex's neighbours
//! land next to it in storage. These baselines keep only ingredient (i):
//!
//! * [`quality_sort_ordering`] sorts all vertices globally by increasing
//!   initial quality — the §4.2 conjecture taken literally, with no
//!   neighbour chaining. If RDR's win came purely from matching the greedy
//!   sweep's *temporal* order, this ordering would match it; in fact it
//!   scatters neighbours (bad spatial locality) and loses badly, which is
//!   the evidence that the chaining step matters.
//! * [`degree_sort_ordering`] sorts by vertex degree — the same "sort by a
//!   scalar" shape with a quality-free key, separating "any stable sort"
//!   from "quality specifically".
//!
//! Both are deterministic (ties break by vertex index).

use crate::permutation::Permutation;
use lms_mesh::quality::{vertex_qualities, QualityMetric};
use lms_mesh::{Adjacency, TriMesh};

/// Sort every vertex by increasing initial quality (ties by index).
///
/// This is the "global quality sort" that seeds RDR's outer loop, used
/// *alone* as a full ordering.
pub fn quality_sort_ordering(
    mesh: &TriMesh,
    adj: &Adjacency,
    metric: QualityMetric,
) -> Permutation {
    let quality = vertex_qualities(mesh, adj, metric);
    quality_sort_from_values(&quality)
}

/// [`quality_sort_ordering`] from precomputed per-vertex values.
pub fn quality_sort_from_values(quality: &[f64]) -> Permutation {
    let mut order: Vec<u32> = (0..quality.len() as u32).collect();
    // qualities are finite and non-negative, so the IEEE bit pattern is
    // monotone in the value and gives a cheap total order
    order.sort_unstable_by_key(|&v| (quality[v as usize].max(0.0).to_bits(), v));
    Permutation::from_new_to_old_unchecked(order)
}

/// Sort every vertex by increasing degree (ties by index).
pub fn degree_sort_ordering(adj: &Adjacency) -> Permutation {
    let mut order: Vec<u32> = (0..adj.num_vertices() as u32).collect();
    order.sort_unstable_by_key(|&v| (adj.degree(v), v));
    Permutation::from_new_to_old_unchecked(order)
}

#[cfg(test)]
mod tests {
    use super::*;
    use lms_mesh::generators;

    #[test]
    fn quality_sort_is_monotone_in_quality() {
        let m = generators::perturbed_grid(14, 14, 0.35, 8);
        let adj = Adjacency::build(&m);
        let q = vertex_qualities(&m, &adj, QualityMetric::EdgeLengthRatio);
        let p = quality_sort_ordering(&m, &adj, QualityMetric::EdgeLengthRatio);
        let ordered: Vec<f64> = p.new_to_old().iter().map(|&v| q[v as usize]).collect();
        assert!(ordered.windows(2).all(|w| w[0] <= w[1]));
        assert_eq!(p.len(), m.num_vertices());
    }

    #[test]
    fn quality_sort_ties_break_by_index() {
        let p = quality_sort_from_values(&[0.5, 0.5, 0.25, 0.5]);
        assert_eq!(p.new_to_old(), &[2, 0, 1, 3]);
    }

    #[test]
    fn degree_sort_is_monotone_in_degree() {
        let m = generators::perturbed_grid(13, 17, 0.3, 5);
        let adj = Adjacency::build(&m);
        let p = degree_sort_ordering(&adj);
        let degs: Vec<usize> = p.new_to_old().iter().map(|&v| adj.degree(v)).collect();
        assert!(degs.windows(2).all(|w| w[0] <= w[1]));
    }

    #[test]
    fn sorts_are_permutations_even_on_degenerate_inputs() {
        assert!(quality_sort_from_values(&[]).is_empty());
        let uniform = quality_sort_from_values(&[0.7; 9]);
        assert!(uniform.is_identity());
    }

    #[test]
    fn quality_sort_scatters_neighbours() {
        // the point of this baseline: a pure quality sort has *worse*
        // spatial locality than the generator's numbering
        use crate::metrics::layout_stats_permuted;
        let m = generators::perturbed_grid(24, 24, 0.35, 6);
        let adj = Adjacency::build(&m);
        let id = layout_stats_permuted(&m, &adj, &Permutation::identity(m.num_vertices()));
        let qs = layout_stats_permuted(
            &m,
            &adj,
            &quality_sort_ordering(&m, &adj, QualityMetric::EdgeLengthRatio),
        );
        assert!(
            qs.mean_span > 2.0 * id.mean_span,
            "quality sort should scatter: {} vs {}",
            qs.mean_span,
            id.mean_span
        );
    }
}
