//! Greedy graph coloring — the scheduling substrate for deterministic
//! parallel Gauss–Seidel smoothing.
//!
//! An in-place Laplacian sweep updates each vertex from its neighbours'
//! *current* positions. Run naively in parallel that races (the paper's
//! chaotic OpenMP loop); run double-buffered it loses the Gauss–Seidel
//! convergence rate. The classical third way is **coloring**: partition
//! the vertices so no two adjacent vertices share a color, then sweep one
//! color class at a time with the class's vertices updated in parallel —
//! within a class there are no neighbour pairs, so in-place semantics are
//! race-free *and* independent of the execution order, making the sweep
//! bitwise-deterministic for any thread count.
//!
//! The greedy first-fit coloring here is deterministic (vertices in index
//! order, smallest available color) and uses at most `max_degree + 1`
//! colors — on triangulations typically 4–6 classes, plenty of
//! parallelism per class.

use crate::graph::Graph;
use crate::permutation::Permutation;

/// A proper vertex coloring with its color classes materialised as CSR
/// slices (class vertices in ascending vertex order).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Coloring {
    color: Vec<u32>,
    num_colors: u32,
    class_offsets: Vec<u32>,
    class_vertices: Vec<u32>,
}

impl Coloring {
    /// Number of vertices colored.
    #[inline]
    pub fn len(&self) -> usize {
        self.color.len()
    }

    /// True when no vertices were colored.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.color.is_empty()
    }

    /// Number of colors used.
    #[inline]
    pub fn num_colors(&self) -> u32 {
        self.num_colors
    }

    /// Color of vertex `v`.
    #[inline]
    pub fn color_of(&self, v: u32) -> u32 {
        self.color[v as usize]
    }

    /// Per-vertex color array.
    #[inline]
    pub fn colors(&self) -> &[u32] {
        &self.color
    }

    /// The vertices of color class `c`, ascending.
    #[inline]
    pub fn class(&self, c: u32) -> &[u32] {
        let lo = self.class_offsets[c as usize] as usize;
        let hi = self.class_offsets[c as usize + 1] as usize;
        &self.class_vertices[lo..hi]
    }

    /// Iterate the color classes in color order.
    pub fn classes(&self) -> impl Iterator<Item = &[u32]> {
        (0..self.num_colors).map(move |c| self.class(c))
    }

    /// Verify properness: no edge joins two vertices of the same color.
    pub fn is_proper<G: Graph>(&self, graph: &G) -> bool {
        (0..graph.num_vertices() as u32).all(|v| {
            graph.neighbors(v).iter().all(|&w| self.color[v as usize] != self.color[w as usize])
        })
    }

    /// The permutation that sorts vertices by `(color, vertex id)` — a
    /// layout where each class is contiguous, for locality studies of the
    /// colored sweep.
    pub fn class_major_ordering(&self) -> Permutation {
        Permutation::from_new_to_old(self.class_vertices.clone())
            .expect("class lists partition the vertex set")
    }
}

/// First-fit greedy coloring of `graph` in ascending vertex order.
///
/// Deterministic, proper by construction, and bounded by
/// `max_degree + 1` colors.
pub fn greedy_coloring_on<G: Graph>(graph: &G) -> Coloring {
    let n = graph.num_vertices();
    let mut color = vec![u32::MAX; n];
    // forbidden[c] == v marks color c as used by a neighbour of v
    let mut forbidden: Vec<u32> = Vec::new();
    let mut num_colors = 0u32;

    for v in 0..n as u32 {
        for &w in graph.neighbors(v) {
            let cw = color[w as usize];
            if cw != u32::MAX {
                if cw as usize >= forbidden.len() {
                    forbidden.resize(cw as usize + 1, u32::MAX);
                }
                forbidden[cw as usize] = v;
            }
        }
        let c = (0..).find(|&c| forbidden.get(c).copied().unwrap_or(u32::MAX) != v).unwrap();
        color[v as usize] = c as u32;
        num_colors = num_colors.max(c as u32 + 1);
    }

    // counting sort into class CSR (vertices ascending within a class)
    let mut class_offsets = vec![0u32; num_colors as usize + 1];
    for &c in &color {
        class_offsets[c as usize + 1] += 1;
    }
    for i in 0..num_colors as usize {
        class_offsets[i + 1] += class_offsets[i];
    }
    let mut cursor = class_offsets.clone();
    let mut class_vertices = vec![0u32; n];
    for (v, &c) in color.iter().enumerate() {
        let slot = &mut cursor[c as usize];
        class_vertices[*slot as usize] = v as u32;
        *slot += 1;
    }

    Coloring { color, num_colors, class_offsets, class_vertices }
}

/// [`greedy_coloring_on`] of a mesh adjacency.
pub fn greedy_coloring(adj: &lms_mesh::Adjacency) -> Coloring {
    greedy_coloring_on(adj)
}

#[cfg(test)]
mod tests {
    use super::*;
    use lms_mesh::{generators, Adjacency};

    fn color_grid(nx: usize, ny: usize, seed: u64) -> (Adjacency, Coloring) {
        let m = generators::perturbed_grid(nx, ny, 0.3, seed);
        let adj = Adjacency::build(&m);
        let coloring = greedy_coloring(&adj);
        (adj, coloring)
    }

    #[test]
    fn grid_coloring_is_proper_and_small() {
        let (adj, coloring) = color_grid(20, 17, 3);
        assert!(coloring.is_proper(&adj));
        assert!(coloring.num_colors() <= adj.max_degree() as u32 + 1);
        // a triangulated grid needs at least 3 colors (it contains triangles)
        assert!(coloring.num_colors() >= 3);
    }

    #[test]
    fn classes_partition_the_vertex_set() {
        let (_, coloring) = color_grid(13, 11, 7);
        let mut seen: Vec<u32> = coloring.classes().flatten().copied().collect();
        assert_eq!(seen.len(), coloring.len());
        seen.sort_unstable();
        assert!(seen.iter().enumerate().all(|(i, &v)| v as usize == i));
        // classes are ascending internally
        for class in coloring.classes() {
            assert!(class.windows(2).all(|w| w[0] < w[1]));
        }
        // class membership matches color_of
        for (c, class) in coloring.classes().enumerate() {
            assert!(class.iter().all(|&v| coloring.color_of(v) == c as u32));
        }
    }

    #[test]
    fn coloring_is_deterministic() {
        let (_, a) = color_grid(15, 15, 1);
        let (_, b) = color_grid(15, 15, 1);
        assert_eq!(a, b);
    }

    #[test]
    fn single_triangle_uses_three_colors() {
        let m = lms_mesh::TriMesh::new(
            vec![
                lms_mesh::Point2::new(0.0, 0.0),
                lms_mesh::Point2::new(1.0, 0.0),
                lms_mesh::Point2::new(0.0, 1.0),
            ],
            vec![[0, 1, 2]],
        )
        .unwrap();
        let adj = Adjacency::build(&m);
        let coloring = greedy_coloring(&adj);
        assert_eq!(coloring.num_colors(), 3);
        assert!(coloring.is_proper(&adj));
    }

    #[test]
    fn class_major_ordering_is_a_bijection() {
        let (_, coloring) = color_grid(9, 14, 5);
        let p = coloring.class_major_ordering();
        let mut ids = p.new_to_old().to_vec();
        ids.sort_unstable();
        assert!(ids.iter().enumerate().all(|(i, &v)| v as usize == i));
    }

    #[test]
    fn empty_graph_colors_trivially() {
        let offsets = [0u32];
        let neighbors: [u32; 0] = [];
        let g = crate::graph::CsrGraph::new(&offsets, &neighbors);
        let coloring = greedy_coloring_on(&g);
        assert_eq!(coloring.len(), 0);
        assert_eq!(coloring.num_colors(), 0);
        assert!(coloring.is_empty());
    }
}
