//! Edge topology: the edge → incident-triangle map and the diagonal-flip
//! primitive that mesh swapping is built on.
//!
//! A [`TriMesh`] stores triangles only; swapping needs to answer "which two
//! triangles share this edge?" and to rewire them in O(1). [`EdgeTopology`]
//! owns a working copy of the triangle list plus a hash map from the
//! undirected edge `(min, max)` to its (one or two) incident triangles, and
//! keeps both consistent across [`EdgeTopology::flip`] calls.

use lms_mesh::geometry::signed_area;
use lms_mesh::{Point2, TriMesh};
use std::collections::HashMap;

/// Sentinel for "no second triangle" (boundary edges).
const NONE: u32 = u32::MAX;

/// Errors detected while building the topology.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TopologyError {
    /// An edge is shared by more than two triangles — not a manifold
    /// triangulation.
    NonManifoldEdge { a: u32, b: u32 },
    /// A triangle repeats a vertex.
    DegenerateTriangle { tri: u32 },
}

impl std::fmt::Display for TopologyError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match *self {
            TopologyError::NonManifoldEdge { a, b } => {
                write!(f, "edge ({a}, {b}) has more than two incident triangles")
            }
            TopologyError::DegenerateTriangle { tri } => {
                write!(f, "triangle {tri} repeats a vertex")
            }
        }
    }
}

impl std::error::Error for TopologyError {}

/// Why a requested flip was rejected.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FlipError {
    /// The edge does not exist (any more).
    NoSuchEdge { a: u32, b: u32 },
    /// The edge lies on the boundary (only one incident triangle).
    BoundaryEdge { a: u32, b: u32 },
    /// The surrounding quad is not strictly convex, so flipping would
    /// create an inverted or degenerate triangle.
    NonConvexQuad,
    /// The opposite diagonal already exists as a mesh edge (flipping would
    /// create a duplicate edge — happens around degree-3 vertices).
    DiagonalExists { c: u32, d: u32 },
}

impl std::fmt::Display for FlipError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match *self {
            FlipError::NoSuchEdge { a, b } => write!(f, "no edge ({a}, {b})"),
            FlipError::BoundaryEdge { a, b } => write!(f, "edge ({a}, {b}) is on the boundary"),
            FlipError::NonConvexQuad => write!(f, "surrounding quad is not strictly convex"),
            FlipError::DiagonalExists { c, d } => {
                write!(f, "diagonal ({c}, {d}) already exists")
            }
        }
    }
}

impl std::error::Error for FlipError {}

#[inline]
fn key(a: u32, b: u32) -> (u32, u32) {
    if a < b {
        (a, b)
    } else {
        (b, a)
    }
}

/// Mutable edge-to-triangle topology of a triangulation.
#[derive(Debug, Clone)]
pub struct EdgeTopology {
    tris: Vec<[u32; 3]>,
    /// Undirected edge → its one or two incident triangle indices
    /// (second slot [`NONE`] on the boundary).
    edge_map: HashMap<(u32, u32), [u32; 2]>,
}

impl EdgeTopology {
    /// Build the topology of `mesh`.
    ///
    /// Fails on non-manifold edges or degenerate (vertex-repeating)
    /// triangles. The mesh's triangle orientation is taken as-is; callers
    /// that rely on signed-area checks (flips do) should orient the mesh
    /// counter-clockwise first ([`TriMesh::orient_ccw`]).
    pub fn build(mesh: &TriMesh) -> Result<Self, TopologyError> {
        Self::from_triangles(mesh.triangles().to_vec())
    }

    /// [`EdgeTopology::build`] from an owned triangle list.
    pub fn from_triangles(tris: Vec<[u32; 3]>) -> Result<Self, TopologyError> {
        let mut edge_map: HashMap<(u32, u32), [u32; 2]> =
            HashMap::with_capacity(tris.len() * 3 / 2 + 1);
        for (t, tri) in tris.iter().enumerate() {
            let [a, b, c] = *tri;
            if a == b || b == c || a == c {
                return Err(TopologyError::DegenerateTriangle { tri: t as u32 });
            }
            for (u, v) in [(a, b), (b, c), (c, a)] {
                let slot = edge_map.entry(key(u, v)).or_insert([NONE, NONE]);
                if slot[0] == NONE {
                    slot[0] = t as u32;
                } else if slot[1] == NONE {
                    slot[1] = t as u32;
                } else {
                    return Err(TopologyError::NonManifoldEdge { a: u, b: v });
                }
            }
        }
        Ok(EdgeTopology { tris, edge_map })
    }

    /// Current triangle list (kept consistent across flips).
    pub fn triangles(&self) -> &[[u32; 3]] {
        &self.tris
    }

    /// Number of undirected edges.
    pub fn num_edges(&self) -> usize {
        self.edge_map.len()
    }

    /// True when `(a, b)` is an edge with exactly one incident triangle.
    pub fn is_boundary_edge(&self, a: u32, b: u32) -> bool {
        matches!(self.edge_map.get(&key(a, b)), Some(&[_, second]) if second == NONE)
    }

    /// True when `(a, b)` is currently an edge of the triangulation.
    pub fn has_edge(&self, a: u32, b: u32) -> bool {
        self.edge_map.contains_key(&key(a, b))
    }

    /// All interior (two-triangle) edges, sorted for determinism.
    pub fn interior_edges(&self) -> Vec<(u32, u32)> {
        let mut edges: Vec<(u32, u32)> =
            self.edge_map.iter().filter(|(_, tris)| tris[1] != NONE).map(|(&e, _)| e).collect();
        edges.sort_unstable();
        edges
    }

    /// All boundary (one-triangle) edges, sorted for determinism.
    pub fn boundary_edges(&self) -> Vec<(u32, u32)> {
        let mut edges: Vec<(u32, u32)> =
            self.edge_map.iter().filter(|(_, tris)| tris[1] == NONE).map(|(&e, _)| e).collect();
        edges.sort_unstable();
        edges
    }

    /// The vertices opposite interior edge `(a, b)` — one per incident
    /// triangle — or `None` if the edge is missing or on the boundary.
    pub fn opposite_vertices(&self, a: u32, b: u32) -> Option<(u32, u32)> {
        let &[t0, t1] = self.edge_map.get(&key(a, b))?;
        if t1 == NONE {
            return None;
        }
        Some((
            third_vertex(self.tris[t0 as usize], a, b)?,
            third_vertex(self.tris[t1 as usize], a, b)?,
        ))
    }

    /// Flip interior edge `(a, b)`: retriangulate the surrounding quad with
    /// the opposite diagonal `(c, d)`. Returns the new diagonal.
    ///
    /// The flip is refused (and the topology left untouched) when the edge
    /// is missing/boundary, when the quad is not strictly convex under
    /// `coords` (either new triangle would have non-positive signed area),
    /// or when the opposite diagonal already exists elsewhere in the mesh.
    pub fn flip(&mut self, a: u32, b: u32, coords: &[Point2]) -> Result<(u32, u32), FlipError> {
        let &[t0, t1] = self.edge_map.get(&key(a, b)).ok_or(FlipError::NoSuchEdge { a, b })?;
        if t1 == NONE {
            return Err(FlipError::BoundaryEdge { a, b });
        }
        let c = third_vertex(self.tris[t0 as usize], a, b).expect("t0 must contain edge");
        let d = third_vertex(self.tris[t1 as usize], a, b).expect("t1 must contain edge");
        if self.has_edge(c, d) {
            return Err(FlipError::DiagonalExists { c, d });
        }
        // Orient the edge so that (a', b', c) is the positively-oriented
        // reading of triangle t0, then the flipped pair is (c, a', d) and
        // (d, b', c); both must be strictly positive for a valid flip.
        let (a, b) = orient_edge(self.tris[t0 as usize], a, b);
        let (pa, pb, pc, pd) =
            (coords[a as usize], coords[b as usize], coords[c as usize], coords[d as usize]);
        if signed_area(pc, pa, pd) <= 0.0 || signed_area(pd, pb, pc) <= 0.0 {
            return Err(FlipError::NonConvexQuad);
        }

        // rewire triangles
        self.tris[t0 as usize] = [c, a, d];
        self.tris[t1 as usize] = [d, b, c];

        // rewire the edge map: the diagonal changes, and the two quad edges
        // that switched triangles must be re-pointed
        self.edge_map.remove(&key(a, b));
        self.edge_map.insert(key(c, d), [t0, t1]);
        self.repoint(key(b, c), t0, t1); // (b,c) was in t0, now in t1
        self.repoint(key(a, d), t1, t0); // (a,d) was in t1, now in t0
        Ok((c, d))
    }

    /// Replace `from` with `to` in the edge record of `e`.
    fn repoint(&mut self, e: (u32, u32), from: u32, to: u32) {
        let slot = self.edge_map.get_mut(&e).expect("quad edge must exist");
        if slot[0] == from {
            slot[0] = to;
        } else {
            debug_assert_eq!(slot[1], from, "edge {e:?} not incident to tri {from}");
            slot[1] = to;
        }
    }

    /// Consume the topology and rebuild a [`TriMesh`] over `coords`.
    pub fn into_mesh(self, coords: Vec<Point2>) -> TriMesh {
        TriMesh::new_unchecked(coords, self.tris)
    }
}

/// The vertex of `tri` that is neither `a` nor `b`.
fn third_vertex(tri: [u32; 3], a: u32, b: u32) -> Option<u32> {
    tri.into_iter().find(|&v| v != a && v != b)
}

/// Return `(a, b)` ordered so they appear consecutively (cyclically) in
/// `tri`, i.e. so that `(a, b, third)` matches `tri`'s orientation.
fn orient_edge(tri: [u32; 3], a: u32, b: u32) -> (u32, u32) {
    let [x, y, z] = tri;
    if (x, y) == (a, b) || (y, z) == (a, b) || (z, x) == (a, b) {
        (a, b)
    } else {
        (b, a)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lms_mesh::generators;

    /// Unit square split along the (0,2) diagonal, CCW.
    fn square() -> TriMesh {
        let coords = vec![
            Point2::new(0.0, 0.0),
            Point2::new(1.0, 0.0),
            Point2::new(1.0, 1.0),
            Point2::new(0.0, 1.0),
        ];
        TriMesh::new(coords, vec![[0, 1, 2], [0, 2, 3]]).unwrap()
    }

    #[test]
    fn builds_edge_counts_of_a_square() {
        let m = square();
        let topo = EdgeTopology::build(&m).unwrap();
        assert_eq!(topo.num_edges(), 5);
        assert_eq!(topo.interior_edges(), vec![(0, 2)]);
        assert_eq!(topo.boundary_edges().len(), 4);
        assert!(topo.is_boundary_edge(0, 1));
        assert!(!topo.is_boundary_edge(0, 2));
        assert_eq!(topo.opposite_vertices(0, 2), Some((1, 3)));
        assert_eq!(topo.opposite_vertices(0, 1), None);
    }

    #[test]
    fn flip_swaps_the_square_diagonal() {
        let m = square();
        let mut topo = EdgeTopology::build(&m).unwrap();
        let (c, d) = topo.flip(0, 2, m.coords()).unwrap();
        assert_eq!(key(c, d), (1, 3));
        assert!(topo.has_edge(1, 3));
        assert!(!topo.has_edge(0, 2));
        assert_eq!(topo.num_edges(), 5);
        // both new triangles positively oriented
        for tri in topo.triangles() {
            let [a, b, c] = *tri;
            assert!(
                signed_area(m.coords()[a as usize], m.coords()[b as usize], m.coords()[c as usize])
                    > 0.0
            );
        }
        // flipping back restores the original diagonal
        let (c, d) = topo.flip(1, 3, m.coords()).unwrap();
        assert_eq!(key(c, d), (0, 2));
    }

    #[test]
    fn flip_refuses_boundary_and_missing_edges() {
        let m = square();
        let mut topo = EdgeTopology::build(&m).unwrap();
        assert_eq!(topo.flip(0, 1, m.coords()), Err(FlipError::BoundaryEdge { a: 0, b: 1 }));
        assert_eq!(topo.flip(1, 3, m.coords()), Err(FlipError::NoSuchEdge { a: 1, b: 3 }));
    }

    #[test]
    fn flip_refuses_nonconvex_quads() {
        // vertex 3 pulled inside triangle (0,1,2): quad 0-1-2-3 is not convex
        let coords = vec![
            Point2::new(0.0, 0.0),
            Point2::new(2.0, 0.0),
            Point2::new(1.0, 2.0),
            Point2::new(1.0, 0.5), // interior of (0,1,2)
        ];
        let m = TriMesh::new(coords, vec![[0, 1, 3], [1, 2, 3]]).unwrap();
        let mut topo = EdgeTopology::build(&m).unwrap();
        assert_eq!(topo.flip(1, 3, m.coords()), Err(FlipError::NonConvexQuad));
    }

    #[test]
    fn flip_refuses_existing_diagonal() {
        // two triangles sharing edge (0,1) where both opposite vertices are
        // joined through another pair of triangles — flipping (0,1) would
        // duplicate edge (2,3)
        let coords = vec![
            Point2::new(0.0, 0.0),
            Point2::new(1.0, 0.0),
            Point2::new(0.5, 1.0),
            Point2::new(0.5, -1.0),
            Point2::new(2.0, 0.0),
        ];
        let m = TriMesh::new(coords, vec![[0, 1, 2], [1, 0, 3], [1, 4, 2], [4, 1, 3], [2, 4, 3]])
            .unwrap();
        let mut topo = EdgeTopology::build(&m).unwrap();
        // tri (2,4,3) provides edge (2,3)... wait, it provides (2,4),(4,3),(3,2)
        assert!(topo.has_edge(2, 3));
        assert_eq!(topo.flip(0, 1, m.coords()), Err(FlipError::DiagonalExists { c: 2, d: 3 }));
    }

    #[test]
    fn rejects_nonmanifold_and_degenerate_input() {
        assert_eq!(
            EdgeTopology::from_triangles(vec![[0, 1, 2], [0, 1, 3], [1, 0, 4]]).unwrap_err(),
            TopologyError::NonManifoldEdge { a: 1, b: 0 }
        );
        assert_eq!(
            EdgeTopology::from_triangles(vec![[0, 0, 1]]).unwrap_err(),
            TopologyError::DegenerateTriangle { tri: 0 }
        );
    }

    #[test]
    fn grid_topology_satisfies_euler_counts() {
        let m = generators::perturbed_grid(9, 7, 0.2, 1);
        let topo = EdgeTopology::build(&m).unwrap();
        // Euler: V - E + F = 1 for a disc (F = triangles only)
        let v = m.num_vertices() as i64;
        let e = topo.num_edges() as i64;
        let f = m.num_triangles() as i64;
        assert_eq!(v - e + f, 1);
        assert_eq!(topo.interior_edges().len() + topo.boundary_edges().len(), topo.num_edges());
    }

    #[test]
    fn repeated_random_flips_keep_topology_consistent() {
        use rand::rngs::SmallRng;
        use rand::{Rng, SeedableRng};
        let mut m = generators::perturbed_grid(8, 8, 0.25, 7);
        m.orient_ccw();
        let mut topo = EdgeTopology::build(&m).unwrap();
        let mut rng = SmallRng::seed_from_u64(42);
        let mut flips = 0;
        for _ in 0..500 {
            let edges = topo.interior_edges();
            let (a, b) = edges[rng.gen_range(0..edges.len())];
            if topo.flip(a, b, m.coords()).is_ok() {
                flips += 1;
            }
        }
        assert!(flips > 50, "expected many successful flips, got {flips}");
        // rebuilding from scratch must agree with the incrementally
        // maintained map
        let rebuilt = EdgeTopology::from_triangles(topo.triangles().to_vec()).unwrap();
        assert_eq!(rebuilt.num_edges(), topo.num_edges());
        let mut a: Vec<_> = topo.edge_map.keys().copied().collect();
        let mut b: Vec<_> = rebuilt.edge_map.keys().copied().collect();
        a.sort_unstable();
        b.sort_unstable();
        assert_eq!(a, b);
    }
}
