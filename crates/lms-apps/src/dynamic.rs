//! Static vs dynamic reordering (Shontz & Knupp \[17\]).
//!
//! The paper's §2 recounts Shontz & Knupp's finding that *static* vertex
//! reordering (once, up front) beats *dynamic* reordering (every few
//! iterations) "because of the overhead of the additional reorderings",
//! and bases its own a-priori design on it. This module implements both
//! strategies so the `dynamic` experiment can re-test that finding on our
//! substrate:
//!
//! * the **static** strategy reorders once and smooths to convergence;
//! * the **dynamic** strategy re-reorders every `reorder_every` sweeps
//!   (vertex qualities change as the mesh smooths, so the RDR walk changes
//!   too), paying one reordering per round.
//!
//! Work is accounted in *sweep equivalents*: §5.4 prices one reordering at
//! ≈ 1 ORI smoothing iteration, so a strategy's total cost is
//! `sweeps + reorders × cost_per_reorder`.

use lms_mesh::quality::mesh_quality;
use lms_mesh::{Adjacency, TriMesh};
use lms_order::{compute_ordering, OrderingKind, Permutation};
use lms_smooth::{SmoothEngine, SmoothParams};

/// Strategy for when to (re)order.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReorderStrategy {
    /// Never reorder (the ORI baseline).
    Never,
    /// Reorder once before the first sweep (the paper's strategy).
    Static,
    /// Reorder before the first sweep and again after every
    /// `reorder_every` sweeps (Shontz & Knupp's dynamic scheme).
    Dynamic {
        /// Number of smoothing sweeps between reorderings (≥ 1).
        reorder_every: usize,
    },
}

impl ReorderStrategy {
    /// Short name for reports.
    pub fn name(self) -> &'static str {
        match self {
            ReorderStrategy::Never => "never",
            ReorderStrategy::Static => "static",
            ReorderStrategy::Dynamic { .. } => "dynamic",
        }
    }
}

/// One reorder-then-smooth round of a run.
#[derive(Debug, Clone, PartialEq)]
pub struct RoundStats {
    /// Round number, starting at 1.
    pub round: usize,
    /// Whether this round began with a reordering.
    pub reordered: bool,
    /// Sweeps executed this round.
    pub sweeps: usize,
    /// Global quality at the end of the round.
    pub quality_after: f64,
}

/// Outcome of a [`smooth_with_strategy`] run.
#[derive(Debug, Clone, PartialEq)]
pub struct DynamicReport {
    /// Strategy name.
    pub strategy: &'static str,
    /// Quality before anything ran.
    pub initial_quality: f64,
    /// Quality after the last sweep.
    pub final_quality: f64,
    /// Per-round statistics.
    pub rounds: Vec<RoundStats>,
    /// Total number of reorderings performed.
    pub reorders: usize,
    /// Total number of smoothing sweeps performed.
    pub sweeps: usize,
    /// True when the run stopped on the convergence criterion rather than
    /// the sweep cap.
    pub converged: bool,
}

impl DynamicReport {
    /// Total cost in sweep equivalents, pricing each reordering at
    /// `cost_per_reorder` sweeps (the paper's §5.4 estimate is 1.0).
    pub fn sweep_equivalents(&self, cost_per_reorder: f64) -> f64 {
        self.sweeps as f64 + self.reorders as f64 * cost_per_reorder
    }
}

/// Smooth `mesh` under `params`, (re)ordering with `ordering` according to
/// `strategy`. The mesh is renumbered in place (its final vertex order is
/// the last reordering applied).
///
/// Convergence matches Algorithm 1: stop when one sweep improves global
/// quality by less than `params.tol`, or when `params.max_iters` total
/// sweeps have run.
pub fn smooth_with_strategy(
    mesh: &mut TriMesh,
    params: &SmoothParams,
    ordering: OrderingKind,
    strategy: ReorderStrategy,
) -> DynamicReport {
    let initial_quality = {
        let adj = Adjacency::build(mesh);
        mesh_quality(mesh, &adj, params.metric)
    };
    let mut report = DynamicReport {
        strategy: strategy.name(),
        initial_quality,
        final_quality: initial_quality,
        rounds: Vec::new(),
        reorders: 0,
        sweeps: 0,
        converged: false,
    };

    let (reorder_first, round_sweeps) = match strategy {
        ReorderStrategy::Never => (false, params.max_iters),
        ReorderStrategy::Static => (true, params.max_iters),
        ReorderStrategy::Dynamic { reorder_every } => {
            assert!(reorder_every >= 1, "reorder_every must be at least 1");
            (true, reorder_every)
        }
    };

    let mut round = 0usize;
    let mut quality = initial_quality;
    while report.sweeps < params.max_iters && !report.converged {
        round += 1;
        let reorder_now = if round == 1 {
            reorder_first
        } else {
            matches!(strategy, ReorderStrategy::Dynamic { .. })
        };
        if reorder_now {
            let perm: Permutation = compute_ordering(mesh, ordering);
            *mesh = perm.apply_to_mesh(mesh);
            report.reorders += 1;
        }

        let budget = round_sweeps.min(params.max_iters - report.sweeps);
        let round_params = params.clone().with_max_iters(budget);
        let engine = SmoothEngine::new(mesh, round_params);
        let sub = engine.smooth(mesh);
        report.sweeps += sub.num_iterations();

        // Convergence: the sub-run converged before exhausting its budget,
        // i.e. its last sweep's improvement fell below tol.
        let new_quality = sub.final_quality;
        if sub.converged {
            report.converged = true;
        }
        quality = new_quality;
        report.rounds.push(RoundStats {
            round,
            reordered: reorder_now,
            sweeps: sub.num_iterations(),
            quality_after: new_quality,
        });
        if sub.num_iterations() == 0 {
            break; // nothing smoothable
        }
    }
    report.final_quality = quality;
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use lms_mesh::generators;

    fn mesh() -> TriMesh {
        generators::perturbed_grid(20, 20, 0.38, 11)
    }

    fn params() -> SmoothParams {
        SmoothParams::paper().with_max_iters(60)
    }

    #[test]
    fn static_reorders_exactly_once() {
        let mut m = mesh();
        let r = smooth_with_strategy(&mut m, &params(), OrderingKind::Rdr, ReorderStrategy::Static);
        assert_eq!(r.reorders, 1);
        assert!(r.converged);
        assert!(r.final_quality > r.initial_quality);
    }

    #[test]
    fn never_matches_plain_smoothing() {
        let base = mesh();
        let mut a = base.clone();
        let r = smooth_with_strategy(&mut a, &params(), OrderingKind::Rdr, ReorderStrategy::Never);
        assert_eq!(r.reorders, 0);
        let mut b = base.clone();
        let plain = params().smooth(&mut b);
        assert_eq!(a.coords(), b.coords());
        assert_eq!(r.sweeps, plain.num_iterations());
    }

    #[test]
    fn dynamic_reorders_every_k_sweeps() {
        let mut m = mesh();
        let r = smooth_with_strategy(
            &mut m,
            &params(),
            OrderingKind::Rdr,
            ReorderStrategy::Dynamic { reorder_every: 3 },
        );
        assert!(r.reorders >= 2, "expected several reorders, got {}", r.reorders);
        // every round except possibly the last runs exactly 3 sweeps
        for w in &r.rounds[..r.rounds.len() - 1] {
            assert_eq!(w.sweeps, 3);
            assert!(w.reordered);
        }
        assert!(r.converged);
    }

    #[test]
    fn strategies_reach_similar_quality() {
        let base = mesh();
        let run = |s| {
            let mut m = base.clone();
            smooth_with_strategy(&mut m, &params(), OrderingKind::Rdr, s)
        };
        let st = run(ReorderStrategy::Static);
        let dy = run(ReorderStrategy::Dynamic { reorder_every: 4 });
        assert!((st.final_quality - dy.final_quality).abs() < 0.02);
    }

    #[test]
    fn dynamic_costs_more_sweep_equivalents() {
        // the Shontz–Knupp finding on our substrate: same quality, more
        // total work for the dynamic strategy once reorders are priced in
        let base = mesh();
        let run = |s| {
            let mut m = base.clone();
            smooth_with_strategy(&mut m, &params(), OrderingKind::Rdr, s)
        };
        let st = run(ReorderStrategy::Static);
        let dy = run(ReorderStrategy::Dynamic { reorder_every: 2 });
        assert!(
            dy.sweep_equivalents(1.0) > st.sweep_equivalents(1.0),
            "dynamic {} vs static {}",
            dy.sweep_equivalents(1.0),
            st.sweep_equivalents(1.0)
        );
    }

    #[test]
    fn sweep_cap_is_respected() {
        let mut m = mesh();
        let tight = SmoothParams::paper().with_max_iters(5).with_tol(-1.0);
        let r = smooth_with_strategy(
            &mut m,
            &tight,
            OrderingKind::Bfs,
            ReorderStrategy::Dynamic { reorder_every: 2 },
        );
        assert_eq!(r.sweeps, 5);
        assert!(!r.converged);
    }

    #[test]
    fn report_bookkeeping_is_consistent() {
        let mut m = mesh();
        let r = smooth_with_strategy(
            &mut m,
            &params(),
            OrderingKind::Rdr,
            ReorderStrategy::Dynamic { reorder_every: 3 },
        );
        assert_eq!(r.sweeps, r.rounds.iter().map(|x| x.sweeps).sum::<usize>());
        assert_eq!(r.reorders, r.rounds.iter().filter(|x| x.reordered).count());
        assert_eq!(r.final_quality, r.rounds.last().unwrap().quality_after);
        assert!(r.sweep_equivalents(1.0) >= r.sweeps as f64);
    }
}
