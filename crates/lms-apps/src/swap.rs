//! Edge swapping (Freitag & Ollivier \[5\], 2D specialisation).
//!
//! The paper's conclusion (§6) conjectures that RDR-style orderings should
//! also accelerate *mesh swapping*. This module implements the 2D swapping
//! pass: visit interior edges and flip each diagonal when the flip improves
//! a criterion — either the Delaunay in-circle test or a direct quality
//! gain — repeating until a pass makes no flips.
//!
//! The visit order of the edges is derived from a vertex ordering (an edge
//! is keyed by the earlier of its endpoints' layout positions), so the same
//! ORI/BFS/RDR comparison the paper runs on smoothing can be run on
//! swapping; the `apps` experiment does exactly that.

use crate::edges::EdgeTopology;
use lms_mesh::geometry::in_circle;
use lms_mesh::quality::QualityMetric;
use lms_mesh::{Point2, TriMesh};
use lms_order::Permutation;

/// When to flip an edge.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum SwapCriterion {
    /// Flip when the opposite vertex lies strictly inside the circumcircle
    /// — converges to the Delaunay triangulation of the vertex set.
    Delaunay,
    /// Flip when the worse of the two new triangles beats the worse of the
    /// two old ones by more than `min_gain` under `metric`.
    Quality {
        /// Quality metric to improve.
        metric: QualityMetric,
        /// Minimum improvement of `min(q)` for a flip to be worth it
        /// (guards against flip/unflip cycling on near-ties).
        min_gain: f64,
    },
}

impl SwapCriterion {
    /// Quality-criterion shorthand with the paper's metric and a small
    /// anti-cycling gain.
    pub fn quality() -> Self {
        SwapCriterion::Quality { metric: QualityMetric::EdgeLengthRatio, min_gain: 1e-9 }
    }

    /// Should edge `(a, b)` with opposite vertices `(c, d)` be flipped?
    fn wants_flip(self, coords: &[Point2], a: u32, b: u32, c: u32, d: u32) -> bool {
        let (pa, pb, pc, pd) =
            (coords[a as usize], coords[b as usize], coords[c as usize], coords[d as usize]);
        match self {
            SwapCriterion::Delaunay => {
                // in_circle is sign-sensitive to orientation; evaluate on a
                // positively-oriented reading of triangle (a, b, c)
                let (pa, pb) = if lms_mesh::geometry::signed_area(pa, pb, pc) > 0.0 {
                    (pa, pb)
                } else {
                    (pb, pa)
                };
                // relative tolerance: the in-circle determinant scales as
                // length⁴; near-cocircular quads count as Delaunay, so the
                // flip pass and `is_delaunay` agree on the fixed point and
                // marginal flips (whose convexity test can fail by the
                // same hair) are never requested
                let s = (pa.dist_sq(pd) + pb.dist_sq(pd) + pc.dist_sq(pd)) / 3.0;
                in_circle(pa, pb, pc, pd) > 1e-9 * s * s
            }
            SwapCriterion::Quality { metric, min_gain } => {
                let old =
                    metric.triangle_quality(pa, pb, pc).min(metric.triangle_quality(pa, pb, pd));
                let new =
                    metric.triangle_quality(pc, pd, pa).min(metric.triangle_quality(pc, pd, pb));
                new > old + min_gain
            }
        }
    }
}

/// Knobs for [`swap_until_stable`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SwapOptions {
    /// Flip criterion.
    pub criterion: SwapCriterion,
    /// Hard cap on full passes over the edge list.
    pub max_passes: usize,
}

impl Default for SwapOptions {
    fn default() -> Self {
        SwapOptions { criterion: SwapCriterion::Delaunay, max_passes: 50 }
    }
}

/// Outcome of a swapping run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SwapReport {
    /// Flips performed in each pass (last entry is 0 when converged).
    pub flips_per_pass: Vec<usize>,
    /// True when the run stopped because a pass made no flips
    /// (false when it hit `max_passes`).
    pub converged: bool,
}

impl SwapReport {
    /// Total number of flips across all passes.
    pub fn total_flips(&self) -> usize {
        self.flips_per_pass.iter().sum()
    }

    /// Number of passes executed.
    pub fn num_passes(&self) -> usize {
        self.flips_per_pass.len()
    }
}

/// Sort `edges` by the earlier endpoint position under `ordering` (ties by
/// the later one), i.e. visit edges the way a sweep over reordered vertices
/// would reach them. `None` keeps the deterministic `(min, max)` edge order.
fn order_edges(edges: &mut [(u32, u32)], ordering: Option<&Permutation>) {
    let Some(perm) = ordering else { return };
    let pos = perm.old_to_new();
    edges.sort_unstable_by_key(|&(a, b)| {
        let (pa, pb) = (pos[a as usize], pos[b as usize]);
        (pa.min(pb), pa.max(pb))
    });
}

/// One swapping pass over all current interior edges; returns the number of
/// flips performed.
pub fn swap_pass(
    topo: &mut EdgeTopology,
    coords: &[Point2],
    criterion: SwapCriterion,
    ordering: Option<&Permutation>,
) -> usize {
    let mut edges = topo.interior_edges();
    order_edges(&mut edges, ordering);
    let mut flips = 0;
    for (a, b) in edges {
        // the edge may have been consumed by an earlier flip this pass
        let Some((c, d)) = topo.opposite_vertices(a, b) else {
            continue;
        };
        if criterion.wants_flip(coords, a, b, c, d) && topo.flip(a, b, coords).is_ok() {
            flips += 1;
        }
    }
    flips
}

/// Run swapping passes on `mesh` until stable (or `max_passes`), rewriting
/// its triangle list in place. Returns the per-pass flip counts.
///
/// The mesh is oriented counter-clockwise first — flips rely on signed-area
/// validity tests.
pub fn swap_until_stable(
    mesh: &mut TriMesh,
    opts: SwapOptions,
    ordering: Option<&Permutation>,
) -> SwapReport {
    mesh.orient_ccw();
    let mut topo = EdgeTopology::build(mesh).expect("manifold triangulation required");
    let mut flips_per_pass = Vec::new();
    let mut converged = false;
    for _ in 0..opts.max_passes {
        let flips = swap_pass(&mut topo, mesh.coords(), opts.criterion, ordering);
        flips_per_pass.push(flips);
        if flips == 0 {
            converged = true;
            break;
        }
    }
    let coords = mesh.coords().to_vec();
    *mesh = topo.into_mesh(coords);
    SwapReport { flips_per_pass, converged }
}

/// True when every interior edge of `mesh` satisfies the Delaunay
/// in-circle criterion (within the relative tolerance the flip pass uses).
///
/// On a planar-embedded triangulation this is exactly "swapping has
/// reached its fixed point". On a folded mesh (all-positive triangle
/// areas but locally overlapping regions — reachable by recovering from a
/// harsh tangle) some edges can fail the in-circle test while their flip
/// is geometrically inapplicable, so `false` can persist; the swap pass
/// still terminates because those flips are rejected.
pub fn is_delaunay(mesh: &TriMesh) -> bool {
    let topo = match EdgeTopology::build(mesh) {
        Ok(t) => t,
        Err(_) => return false,
    };
    let coords = mesh.coords();
    topo.interior_edges().into_iter().all(|(a, b)| {
        let Some((c, d)) = topo.opposite_vertices(a, b) else {
            return true;
        };
        !SwapCriterion::Delaunay.wants_flip(coords, a, b, c, d)
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use lms_mesh::quality::{mesh_quality, QualityMetric};
    use lms_mesh::{generators, Adjacency};
    use lms_order::{compute_ordering, OrderingKind};

    /// A flat kite triangulated with the long diagonal: two skinny
    /// triangles whose shared edge fails the in-circle test (a rectangle
    /// would not do — its four corners are cocircular, so either diagonal
    /// is Delaunay).
    fn skinny_kite() -> TriMesh {
        let coords = vec![
            Point2::new(0.0, 0.0),
            Point2::new(4.0, 0.0),
            Point2::new(2.0, 0.5),
            Point2::new(2.0, -0.5),
        ];
        TriMesh::new(coords, vec![[0, 1, 2], [1, 0, 3]]).unwrap()
    }

    #[test]
    fn delaunay_swap_fixes_the_skinny_kite() {
        let mut m = skinny_kite();
        assert!(!is_delaunay(&m));
        let report = swap_until_stable(&mut m, SwapOptions::default(), None);
        assert!(report.converged);
        assert_eq!(report.total_flips(), 1);
        assert!(is_delaunay(&m));
    }

    #[test]
    fn delaunay_swap_converges_on_perturbed_grids() {
        for seed in [1, 2, 3] {
            let mut m = generators::perturbed_grid(14, 14, 0.35, seed);
            let report = swap_until_stable(&mut m, SwapOptions::default(), None);
            assert!(report.converged, "seed {seed} did not converge");
            assert!(is_delaunay(&m), "seed {seed} not Delaunay after swapping");
        }
    }

    #[test]
    fn swapping_preserves_vertex_and_triangle_counts() {
        let before = generators::perturbed_grid(12, 10, 0.3, 9);
        let mut after = before.clone();
        swap_until_stable(&mut after, SwapOptions::default(), None);
        assert_eq!(before.num_vertices(), after.num_vertices());
        assert_eq!(before.num_triangles(), after.num_triangles());
        assert_eq!(before.coords(), after.coords());
        // area is preserved: flips retriangulate the same region
        assert!((before.total_area() - after.total_area()).abs() < 1e-9);
    }

    #[test]
    fn quality_swap_never_reduces_the_worst_triangle() {
        // each flip replaces a triangle pair with one whose *minimum*
        // quality is strictly better, so the global minimum can only go up
        let min_q = |m: &TriMesh| {
            lms_mesh::quality::triangle_qualities(m, QualityMetric::EdgeLengthRatio)
                .into_iter()
                .fold(f64::INFINITY, f64::min)
        };
        let mut m = generators::perturbed_grid(14, 14, 0.4, 5);
        let before = min_q(&m);
        let report = swap_until_stable(
            &mut m,
            SwapOptions { criterion: SwapCriterion::quality(), max_passes: 50 },
            None,
        );
        assert!(report.converged);
        assert!(min_q(&m) >= before - 1e-12, "worst triangle regressed: {before} -> {}", min_q(&m));
        assert!(report.total_flips() > 0, "expected some flips on a jittered grid");
    }

    #[test]
    fn quality_swap_typically_raises_mean_quality_too() {
        let mut m = generators::perturbed_grid(16, 16, 0.4, 11);
        let adj = Adjacency::build(&m);
        let before = mesh_quality(&m, &adj, QualityMetric::EdgeLengthRatio);
        swap_until_stable(
            &mut m,
            SwapOptions { criterion: SwapCriterion::quality(), max_passes: 50 },
            None,
        );
        let adj = Adjacency::build(&m);
        let after = mesh_quality(&m, &adj, QualityMetric::EdgeLengthRatio);
        assert!(after > before, "mean quality should improve: {before} -> {after}");
    }

    #[test]
    fn visit_order_changes_the_flip_schedule_not_the_fixed_point() {
        // Delaunay is unique (no four cocircular points on a jittered
        // grid), so any visit order must reach the same triangulation.
        let base = generators::perturbed_grid(12, 12, 0.35, 8);
        let mut edge_sets = Vec::new();
        for kind in [OrderingKind::Original, OrderingKind::Rdr, OrderingKind::Random { seed: 4 }] {
            let mut m = base.clone();
            let perm = compute_ordering(&m, kind);
            swap_until_stable(&mut m, SwapOptions::default(), Some(&perm));
            let mut edges = m.edges();
            edges.sort_unstable();
            edge_sets.push(edges);
        }
        assert_eq!(edge_sets[0], edge_sets[1]);
        assert_eq!(edge_sets[0], edge_sets[2]);
    }

    #[test]
    fn max_passes_caps_runaway_runs() {
        let mut m = generators::perturbed_grid(10, 10, 0.4, 3);
        let report = swap_until_stable(
            &mut m,
            SwapOptions { criterion: SwapCriterion::Delaunay, max_passes: 1 },
            None,
        );
        assert_eq!(report.num_passes(), 1);
    }
}
