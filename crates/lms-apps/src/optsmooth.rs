//! Optimization-based smoothing — a simplified FeasNewt/Mesquite-style
//! local solver (Munson & Hovland \[19\], Freitag et al. \[4\]).
//!
//! Laplacian smoothing moves a vertex to its neighbours' centroid whether
//! or not that helps the worst incident triangle. Optimization-based
//! smoothing instead moves each vertex to (approximately) **maximise the
//! minimum quality** of its incident triangles: slower per vertex, but it
//! directly attacks the bad elements and cannot create inversions when
//! started from a valid mesh (quality 0 bounds the objective from below
//! and any accepted move strictly improves it).
//!
//! The local solve is derivative-free coordinate ascent: finite-difference
//! subgradient direction plus a golden-section line search, bounded by the
//! ring scale. This is the robust core of what Mesquite's feasible-Newton
//! does, without the Hessian machinery — appropriate here because the
//! reproduction's interest is the *memory behaviour of the sweep*, which is
//! identical in shape to the Laplacian sweep (gather ring, update vertex).

use lms_mesh::quality::{global_quality, vertex_qualities, QualityMetric};
use lms_mesh::{Adjacency, Boundary, Point2, TriMesh};
use lms_smooth::{IterationStats, SmoothReport};

/// Knobs for [`opt_smooth`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OptSmoothOptions {
    /// Quality metric to maximise (paper default: edge-length ratio).
    pub metric: QualityMetric,
    /// Stop when a sweep improves global quality by less than this.
    pub tol: f64,
    /// Hard cap on sweeps.
    pub max_sweeps: usize,
    /// Ascent iterations per vertex visit.
    pub ascent_steps: usize,
}

impl Default for OptSmoothOptions {
    fn default() -> Self {
        OptSmoothOptions {
            metric: QualityMetric::EdgeLengthRatio,
            tol: 5e-6,
            max_sweeps: 30,
            ascent_steps: 6,
        }
    }
}

/// Minimum incident-triangle quality of `v` with `v` at `p`, made
/// orientation-aware: an inverted triangle (non-positive signed area under
/// its stored vertex order) scores its *negative area* instead of its
/// quality. Shape metrics like edge-length ratio are blind to orientation;
/// without this guard the ascent happily inverts elements. With it, any
/// accepted move from a valid configuration keeps the objective positive,
/// hence the mesh valid — and from a tangled start the ascent first pushes
/// the areas positive (the untangling objective) before chasing quality.
fn min_quality_at(
    mesh: &TriMesh,
    adj: &Adjacency,
    metric: QualityMetric,
    v: u32,
    p: Point2,
) -> f64 {
    let coords = mesh.coords();
    let at = |u: u32| if u == v { p } else { coords[u as usize] };
    adj.triangles_of(v)
        .iter()
        .map(|&t| {
            let [a, b, c] = mesh.triangles()[t as usize];
            let (pa, pb, pc) = (at(a), at(b), at(c));
            let area = lms_mesh::geometry::signed_area(pa, pb, pc);
            if area <= 0.0 {
                area
            } else {
                metric.triangle_quality(pa, pb, pc)
            }
        })
        .fold(f64::INFINITY, f64::min)
}

/// Golden-section search for the maximum of `f` on `[0, hi]`.
fn golden_max(mut f: impl FnMut(f64) -> f64, hi: f64, iters: usize) -> f64 {
    const INV_PHI: f64 = 0.618_033_988_749_894_8;
    let (mut lo, mut hi) = (0.0, hi);
    let mut x1 = hi - INV_PHI * (hi - lo);
    let mut x2 = lo + INV_PHI * (hi - lo);
    let (mut f1, mut f2) = (f(x1), f(x2));
    for _ in 0..iters {
        if f1 < f2 {
            lo = x1;
            x1 = x2;
            f1 = f2;
            x2 = lo + INV_PHI * (hi - lo);
            f2 = f(x2);
        } else {
            hi = x2;
            x2 = x1;
            f2 = f1;
            x1 = hi - INV_PHI * (hi - lo);
            f1 = f(x1);
        }
    }
    if f1 >= f2 {
        x1
    } else {
        x2
    }
}

/// One local max-min solve for vertex `v`; returns an improving position.
fn optimize_vertex(
    mesh: &TriMesh,
    adj: &Adjacency,
    opts: &OptSmoothOptions,
    v: u32,
) -> Option<Point2> {
    let pv = mesh.coords()[v as usize];
    let scale =
        adj.neighbors(v).iter().map(|&w| pv.dist(mesh.coords()[w as usize])).fold(0.0, f64::max);
    if scale <= 0.0 {
        return None;
    }
    let f = |p: Point2| min_quality_at(mesh, adj, opts.metric, v, p);
    let mut p = pv;
    let mut best = f(p);
    let start = best;
    let h = 1e-6 * scale;
    for _ in 0..opts.ascent_steps {
        // central-difference subgradient of the min-quality objective
        let gx = (f(p + Point2::new(h, 0.0)) - f(p + Point2::new(-h, 0.0))) / (2.0 * h);
        let gy = (f(p + Point2::new(0.0, h)) - f(p + Point2::new(0.0, -h))) / (2.0 * h);
        let g = Point2::new(gx, gy);
        let gn = g.norm();
        if gn < 1e-12 {
            break;
        }
        let dir = g / gn;
        let t = golden_max(|t| f(p + dir * t), 0.5 * scale, 20);
        let cand = p + dir * t;
        let val = f(cand);
        if val <= best + 1e-14 {
            break;
        }
        p = cand;
        best = val;
    }
    (best > start + 1e-14 && p.is_finite()).then_some(p)
}

/// Optimization-based smoothing sweep loop.
///
/// Visits interior vertices in storage order (Gauss–Seidel), so a vertex
/// reordering applied to the mesh changes layout and visit order together,
/// just like the Laplacian engine. Returns the usual [`SmoothReport`].
pub fn opt_smooth(mesh: &mut TriMesh, opts: &OptSmoothOptions) -> SmoothReport {
    let adj = Adjacency::build(mesh);
    let boundary = Boundary::detect(mesh);
    let interior = boundary.interior_vertices();

    let initial_quality = global_quality(&vertex_qualities(mesh, &adj, opts.metric));
    let mut prev = initial_quality;
    let mut iterations = Vec::new();
    let mut converged = false;

    for iter in 1..=opts.max_sweeps {
        for &v in &interior {
            if let Some(p) = optimize_vertex(mesh, &adj, opts, v) {
                mesh.coords_mut()[v as usize] = p;
            }
        }
        let quality = global_quality(&vertex_qualities(mesh, &adj, opts.metric));
        let improvement = quality - prev;
        iterations.push(IterationStats { iter, quality, improvement });
        prev = quality;
        if improvement < opts.tol {
            converged = true;
            break;
        }
    }

    let mut report = SmoothReport::starting(initial_quality);
    report.final_quality = prev;
    report.iterations = iterations;
    report.converged = converged;
    report
}

/// Worst vertex quality of `mesh` under `metric` (the objective opt-smooth
/// targets, exposed for experiments and tests).
pub fn worst_vertex_quality(mesh: &TriMesh, metric: QualityMetric) -> f64 {
    let adj = Adjacency::build(mesh);
    vertex_qualities(mesh, &adj, metric).into_iter().fold(f64::INFINITY, f64::min)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::untangle::count_inverted;
    use lms_mesh::generators;
    use lms_smooth::SmoothParams;

    #[test]
    fn improves_global_quality_and_converges() {
        let mut m = generators::perturbed_grid(14, 14, 0.4, 1);
        let report = opt_smooth(&mut m, &OptSmoothOptions::default());
        assert!(report.final_quality > report.initial_quality + 0.01);
        assert!(report.converged);
    }

    #[test]
    fn never_creates_inversions() {
        let mut m = generators::perturbed_grid(16, 16, 0.45, 3);
        m.orient_ccw();
        assert_eq!(count_inverted(&m), 0);
        opt_smooth(&mut m, &OptSmoothOptions::default());
        assert_eq!(count_inverted(&m), 0);
    }

    #[test]
    fn raises_the_worst_vertex_more_than_laplacian_on_harsh_jitter() {
        // Laplacian averages; opt-smooth lifts the floor. On harsh jitter
        // the floor matters.
        let base = generators::perturbed_grid(16, 16, 0.45, 7);
        let metric = QualityMetric::EdgeLengthRatio;

        let mut lap = base.clone();
        SmoothParams::paper().with_max_iters(30).smooth(&mut lap);

        let mut opt = base.clone();
        opt_smooth(&mut opt, &OptSmoothOptions::default());

        let worst_before = worst_vertex_quality(&base, metric);
        let worst_opt = worst_vertex_quality(&opt, metric);
        assert!(
            worst_opt > worst_before,
            "opt-smooth should lift the floor: {worst_before} -> {worst_opt}"
        );
    }

    #[test]
    fn boundary_stays_fixed() {
        let mut m = generators::perturbed_grid(12, 12, 0.35, 5);
        let boundary = lms_mesh::Boundary::detect(&m);
        let before: Vec<Point2> =
            boundary.boundary_vertices().iter().map(|&v| m.coords()[v as usize]).collect();
        opt_smooth(&mut m, &OptSmoothOptions::default());
        let after: Vec<Point2> =
            boundary.boundary_vertices().iter().map(|&v| m.coords()[v as usize]).collect();
        assert_eq!(before, after);
    }

    #[test]
    fn max_sweeps_caps_the_run() {
        let mut m = generators::perturbed_grid(10, 10, 0.4, 2);
        let report =
            opt_smooth(&mut m, &OptSmoothOptions { max_sweeps: 2, ..OptSmoothOptions::default() });
        assert!(report.num_iterations() <= 2);
    }
}
