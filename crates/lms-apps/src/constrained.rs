//! Constrained mesh smoothing (Parthasarathy & Kodiyalam \[13\]).
//!
//! Plain Laplacian smoothing pins every boundary vertex, which leaves the
//! quality of boundary-adjacent triangles on the table. The constrained
//! variant lets boundary vertices move **along the boundary polyline**:
//! each non-corner boundary vertex is pulled toward the midpoint of its two
//! boundary neighbours and the move is projected back onto its two incident
//! boundary segments, so the domain shape is preserved exactly (corners are
//! detected by turn angle and pinned). Interior vertices take the ordinary
//! Equation (1) Laplacian step. One of the paper's §6 target applications
//! for RDR-style orderings.

use crate::edges::EdgeTopology;
use lms_mesh::quality::{global_quality, vertex_qualities};
use lms_mesh::{Adjacency, Boundary, Point2, TriMesh};
use lms_smooth::{IterationStats, SmoothParams, SmoothReport};

/// Knobs for [`constrained_smooth`] beyond the shared [`SmoothParams`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ConstrainedOptions {
    /// A boundary vertex whose polyline turn deviates from straight by
    /// more than this angle (radians) is a corner and never moves.
    pub corner_angle: f64,
}

impl Default for ConstrainedOptions {
    fn default() -> Self {
        ConstrainedOptions {
            // ~20°: jittered-grid boundary wiggle slides, domain corners pin
            corner_angle: 0.35,
        }
    }
}

/// Per-vertex movement rule, resolved once before the sweeps.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Rule {
    /// Ordinary Laplacian update (interior vertex).
    Interior,
    /// Slide along the boundary between the two given neighbours.
    Slide { n1: u32, n2: u32 },
    /// Never move (corner / non-manifold boundary vertex).
    Pinned,
}

/// Project `p` onto segment `[a, b]`.
fn project_onto_segment(p: Point2, a: Point2, b: Point2) -> Point2 {
    let ab = b - a;
    let len_sq = ab.norm_sq();
    if len_sq <= 0.0 {
        return a;
    }
    let t = ((p - a).dot(ab) / len_sq).clamp(0.0, 1.0);
    a.lerp(b, t)
}

/// Resolve the movement rule of every vertex.
fn movement_rules(mesh: &TriMesh, boundary: &Boundary, opts: &ConstrainedOptions) -> Vec<Rule> {
    let n = mesh.num_vertices();
    let mut rules = vec![Rule::Interior; n];
    // collect each boundary vertex's boundary neighbours
    let mut bnbrs: Vec<Vec<u32>> = vec![Vec::new(); n];
    if let Ok(topo) = EdgeTopology::build(mesh) {
        for (a, b) in topo.boundary_edges() {
            bnbrs[a as usize].push(b);
            bnbrs[b as usize].push(a);
        }
    }
    for v in 0..n as u32 {
        if boundary.is_interior(v) {
            continue;
        }
        let nbrs = &bnbrs[v as usize];
        rules[v as usize] = if nbrs.len() == 2 {
            let (pv, p1, p2) = (
                mesh.coords()[v as usize],
                mesh.coords()[nbrs[0] as usize],
                mesh.coords()[nbrs[1] as usize],
            );
            let (u, w) = (p1 - pv, p2 - pv);
            let (nu, nw) = (u.norm(), w.norm());
            if nu <= 0.0 || nw <= 0.0 {
                Rule::Pinned
            } else {
                let turn = (u.dot(w) / (nu * nw)).clamp(-1.0, 1.0).acos();
                if (std::f64::consts::PI - turn).abs() <= opts.corner_angle {
                    Rule::Slide { n1: nbrs[0], n2: nbrs[1] }
                } else {
                    Rule::Pinned
                }
            }
        } else {
            Rule::Pinned
        };
    }
    rules
}

/// Constrained Laplacian smoothing: interior vertices follow Equation (1),
/// boundary vertices slide along the boundary, corners stay pinned.
///
/// Uses `params` for the quality metric, convergence tolerance, iteration
/// cap and the smart (non-regressing) guard; the update is always
/// Gauss–Seidel in storage order, so applying a vertex reordering to the
/// mesh changes both layout and visit order, exactly as in the paper's
/// smoother.
pub fn constrained_smooth(
    mesh: &mut TriMesh,
    params: &SmoothParams,
    opts: &ConstrainedOptions,
) -> SmoothReport {
    let adj = Adjacency::build(mesh);
    let boundary = Boundary::detect(mesh);
    let rules = movement_rules(mesh, &boundary, opts);

    let initial_quality = global_quality(&vertex_qualities(mesh, &adj, params.metric));
    let mut prev_quality = initial_quality;
    let mut iterations = Vec::new();
    let mut converged = false;

    for iter in 1..=params.max_iters {
        for v in 0..mesh.num_vertices() as u32 {
            let target = match rules[v as usize] {
                Rule::Pinned => continue,
                Rule::Interior => {
                    let nbrs = adj.neighbors(v);
                    if nbrs.is_empty() {
                        continue;
                    }
                    let mut acc = Point2::ZERO;
                    for &w in nbrs {
                        acc += mesh.coords()[w as usize];
                    }
                    // same expression as the engine's sweep, so the
                    // all-pinned configuration is bit-identical to it
                    acc / nbrs.len() as f64
                }
                Rule::Slide { n1, n2 } => {
                    let (pv, p1, p2) = (
                        mesh.coords()[v as usize],
                        mesh.coords()[n1 as usize],
                        mesh.coords()[n2 as usize],
                    );
                    let mid = p1.lerp(p2, 0.5);
                    // stay on the polyline: project the midpoint onto the
                    // two incident segments, keep the closer projection
                    let c1 = project_onto_segment(mid, p1, pv);
                    let c2 = project_onto_segment(mid, pv, p2);
                    if mid.dist_sq(c1) <= mid.dist_sq(c2) {
                        c1
                    } else {
                        c2
                    }
                }
            };
            if !target.is_finite() {
                continue;
            }
            if params.smart {
                // commit only if the local mean quality does not regress
                let local = |mesh: &TriMesh| {
                    let mut sum = 0.0;
                    let tris = adj.triangles_of(v);
                    for &t in tris {
                        let [a, b, c] = mesh.triangles()[t as usize];
                        sum += params.metric.triangle_quality(
                            mesh.coords()[a as usize],
                            mesh.coords()[b as usize],
                            mesh.coords()[c as usize],
                        );
                    }
                    sum / tris.len().max(1) as f64
                };
                let before = local(mesh);
                let old = mesh.coords()[v as usize];
                mesh.coords_mut()[v as usize] = target;
                if local(mesh) < before {
                    mesh.coords_mut()[v as usize] = old;
                }
            } else {
                mesh.coords_mut()[v as usize] = target;
            }
        }

        let quality = global_quality(&vertex_qualities(mesh, &adj, params.metric));
        let improvement = quality - prev_quality;
        iterations.push(IterationStats { iter, quality, improvement });
        prev_quality = quality;
        // signed comparison, exactly like the storage-order engine: any
        // sweep that gains less than `tol` (including regressions) stops
        if improvement < params.tol {
            converged = true;
            break;
        }
    }

    let mut report = SmoothReport::starting(initial_quality);
    report.final_quality = prev_quality;
    report.iterations = iterations;
    report.converged = converged;
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use lms_mesh::generators;

    fn corners_of(mesh: &TriMesh) -> Vec<u32> {
        let boundary = Boundary::detect(mesh);
        let rules = movement_rules(mesh, &boundary, &ConstrainedOptions::default());
        (0..mesh.num_vertices() as u32).filter(|&v| rules[v as usize] == Rule::Pinned).collect()
    }

    #[test]
    fn grid_detects_exactly_its_four_extreme_corners_as_pinned_or_more() {
        // a jittered grid boundary has wiggle, so more than 4 vertices may
        // exceed the corner angle — but the 4 bbox corners must be pinned
        let m = generators::perturbed_grid(12, 12, 0.2, 1);
        let (lo, hi) = m.bbox();
        let corners = corners_of(&m);
        let is_extreme = |p: Point2| {
            (p.x - lo.x).abs() < 1e-9 && (p.y - lo.y).abs() < 1e-9
                || (p.x - hi.x).abs() < 1e-9 && (p.y - hi.y).abs() < 1e-9
                || (p.x - lo.x).abs() < 1e-9 && (p.y - hi.y).abs() < 1e-9
                || (p.x - hi.x).abs() < 1e-9 && (p.y - lo.y).abs() < 1e-9
        };
        let extreme: Vec<u32> =
            (0..m.num_vertices() as u32).filter(|&v| is_extreme(m.coords()[v as usize])).collect();
        assert_eq!(extreme.len(), 4);
        for v in extreme {
            assert!(corners.contains(&v), "bbox corner {v} must be pinned");
        }
    }

    #[test]
    fn constrained_smoothing_improves_quality() {
        let mut m = generators::perturbed_grid(16, 16, 0.35, 7);
        let report = constrained_smooth(
            &mut m,
            &SmoothParams::paper().with_max_iters(50),
            &ConstrainedOptions::default(),
        );
        assert!(report.final_quality > report.initial_quality);
        assert!(report.converged);
    }

    /// Slide every non-corner boundary vertex tangentially (staying on its
    /// straight boundary line) by a deterministic bounded amount, so the
    /// boundary spacing becomes uneven. `perturbed_grid` keeps boundaries
    /// perfectly uniform, which leaves constrained smoothing no head-room.
    fn unevenize_boundary(mesh: &mut TriMesh, frac: f64) {
        let (lo, hi) = mesh.bbox();
        let eps = 1e-12;
        // smallest grid step, as a conservative tangential scale
        let n = mesh.num_vertices();
        let h = ((hi.x - lo.x) * (hi.y - lo.y) / n as f64).sqrt() * 0.5;
        for v in 0..n {
            let p = mesh.coords()[v];
            let on_x = (p.x - lo.x).abs() < eps || (p.x - hi.x).abs() < eps;
            let on_y = (p.y - lo.y).abs() < eps || (p.y - hi.y).abs() < eps;
            let shift = frac * h * (7.0 * v as f64).sin();
            if on_y && !on_x {
                mesh.coords_mut()[v].x += shift; // top/bottom edge: slide in x
            } else if on_x && !on_y {
                mesh.coords_mut()[v].y += shift; // left/right edge: slide in y
            }
        }
    }

    #[test]
    fn constrained_beats_interior_only_smoothing_on_boundary_heavy_meshes() {
        // narrow strip: most vertices are on the boundary, so sliding them
        // is where the quality head-room is
        let mut base = generators::perturbed_grid(40, 4, 0.25, 3);
        unevenize_boundary(&mut base, 0.6);
        let params = SmoothParams::paper().with_max_iters(60);

        let mut interior_only = base.clone();
        let plain = params.smooth(&mut interior_only);

        let mut constrained = base.clone();
        let cons = constrained_smooth(&mut constrained, &params, &ConstrainedOptions::default());

        assert!(
            cons.final_quality > plain.final_quality,
            "constrained {} should beat interior-only {}",
            cons.final_quality,
            plain.final_quality
        );
    }

    #[test]
    fn domain_bbox_is_preserved() {
        // sliding along the boundary must not change the domain's extent
        let mut m = generators::perturbed_grid(14, 14, 0.3, 5);
        let (lo0, hi0) = m.bbox();
        constrained_smooth(
            &mut m,
            &SmoothParams::paper().with_max_iters(40),
            &ConstrainedOptions::default(),
        );
        let (lo1, hi1) = m.bbox();
        assert!(lo0.dist(lo1) < 1e-9 && hi0.dist(hi1) < 1e-9);
    }

    #[test]
    fn smart_guard_still_improves_quality() {
        let mut m = generators::perturbed_grid(14, 14, 0.35, 9);
        let report = constrained_smooth(
            &mut m,
            &SmoothParams::paper().with_smart(true).with_max_iters(30),
            &ConstrainedOptions::default(),
        );
        assert!(report.final_quality > report.initial_quality);
    }

    #[test]
    fn pinned_everything_is_a_fixed_point() {
        // corner angle 0 with a fully wiggly boundary: all boundary pinned,
        // interior still smooths — equivalent to plain smoothing
        let mut a = generators::perturbed_grid(10, 10, 0.3, 2);
        let mut b = a.clone();
        let params = SmoothParams::paper().with_max_iters(20);
        let ra = params.smooth(&mut a);
        let rb = constrained_smooth(&mut b, &params, &ConstrainedOptions { corner_angle: -1.0 });
        assert!((ra.final_quality - rb.final_quality).abs() < 1e-12);
        assert_eq!(a.coords(), b.coords());
    }
}
