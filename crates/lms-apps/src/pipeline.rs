//! Mesh-improvement pipelines: compose reordering, untangling, swapping
//! and smoothing into one run with per-stage quality bookkeeping.
//!
//! This is the "downstream user" view of the reproduction: a practitioner
//! does not run Laplacian smoothing in isolation — they reorder once
//! (paper §5.4: the reordering pays for itself after ~4 iterations), then
//! untangle if needed, swap to fix connectivity, and smooth. The pipeline
//! makes that sequence a value.

use crate::constrained::{constrained_smooth, ConstrainedOptions};
use crate::optsmooth::{opt_smooth, OptSmoothOptions};
use crate::swap::{swap_until_stable, SwapOptions};
use crate::untangle::{untangle, UntangleOptions};
use lms_mesh::quality::{mesh_quality, QualityMetric};
use lms_mesh::{Adjacency, TriMesh};
use lms_order::{compute_ordering, OrderingKind};
use lms_part::PartitionMethod;
use lms_smooth::{PartitionedEngine, ResidentEngine, SmoothEngine, SmoothParams};

/// One step of an improvement pipeline.
#[derive(Debug, Clone, PartialEq)]
pub enum Stage {
    /// Renumber the mesh with the given ordering (changes layout and
    /// visit order of every following stage).
    Reorder(OrderingKind),
    /// Remove inverted elements.
    Untangle(UntangleOptions),
    /// Laplacian smoothing (interior vertices) on the serial
    /// incremental-quality hot path.
    Smooth(SmoothParams),
    /// Laplacian smoothing on a deterministic parallel engine with the
    /// given thread count (bitwise-identical results for any thread
    /// count): colored Gauss–Seidel for in-place params, static-chunk
    /// parallel Jacobi when `params.update` is
    /// [`lms_smooth::UpdateScheme::Jacobi`].
    ParallelSmooth(SmoothParams, usize),
    /// Laplacian smoothing on the domain-decomposed deterministic engine
    /// ([`lms_smooth::PartitionedEngine`]): part interiors sweep as
    /// cache-resident blocks in parallel, interface vertices through the
    /// colored schedule. Gauss–Seidel parameters only.
    PartitionedSmooth(SmoothParams, PartitionSpec),
    /// Laplacian smoothing on the resident halo-exchange engine
    /// ([`lms_smooth::ResidentEngine`]): blocks stay resident for the
    /// whole stage, interface vertices are smoothed inside their owning
    /// part with halo deltas exchanged between color steps, one disjoint
    /// scatter at the end. Gauss–Seidel parameters only; bit-identical
    /// to [`Stage::PartitionedSmooth`] over the same decomposition and
    /// the faster of the two.
    ResidentSmooth(SmoothParams, PartitionSpec),
    /// Laplacian smoothing on the multi-process distributed resident
    /// engine ([`lms_dist::DistResidentEngine`]): one forked rank
    /// process per part, halo deltas as wire frames over the substrate
    /// named by `spec.transport` (pipes, Unix or TCP stream sockets, or
    /// the Auto degradation ladder). `spec.threads` is ignored —
    /// parallelism is one OS process per part. Gauss–Seidel parameters
    /// only; bit-identical to [`Stage::ResidentSmooth`] over the same
    /// decomposition on every substrate.
    DistributedSmooth(SmoothParams, PartitionSpec),
    /// Constrained smoothing (boundary slides along the boundary).
    ConstrainedSmooth(SmoothParams, ConstrainedOptions),
    /// Edge swapping.
    Swap(SwapOptions),
    /// Optimization-based (max-min quality) smoothing.
    OptSmooth(OptSmoothOptions),
}

impl Stage {
    /// Short name for reports.
    pub fn name(&self) -> &'static str {
        match self {
            Stage::Reorder(_) => "reorder",
            Stage::Untangle(_) => "untangle",
            Stage::Smooth(_) => "smooth",
            Stage::ParallelSmooth(..) => "parsmooth",
            Stage::PartitionedSmooth(..) => "partsmooth",
            Stage::ResidentSmooth(..) => "ressmooth",
            Stage::DistributedSmooth(..) => "distsmooth",
            Stage::ConstrainedSmooth(..) => "constrained",
            Stage::Swap(_) => "swap",
            Stage::OptSmooth(_) => "optsmooth",
        }
    }
}

/// Configuration of a [`Stage::PartitionedSmooth`] stage.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PartitionSpec {
    /// Number of parts to decompose into.
    pub parts: usize,
    /// Geometric partitioner.
    pub method: PartitionMethod,
    /// Worker threads (the result is identical for any count).
    pub threads: usize,
    /// Rank substrate for [`Stage::DistributedSmooth`]: pipes, Unix or
    /// TCP sockets, or the [`lms_dist::TransportMode::Auto`] degradation
    /// ladder. Ignored by the in-process stages. The smoothed coords are
    /// identical on every substrate.
    pub transport: lms_dist::TransportMode,
}

impl Default for PartitionSpec {
    fn default() -> Self {
        PartitionSpec {
            parts: 4,
            method: PartitionMethod::Rcb,
            threads: 2,
            transport: lms_dist::TransportMode::Pipes,
        }
    }
}

/// Quality before/after one executed stage.
#[derive(Debug, Clone, PartialEq)]
pub struct StageOutcome {
    /// [`Stage::name`] of the stage.
    pub stage: &'static str,
    /// Mean mesh quality entering the stage.
    pub quality_before: f64,
    /// Mean mesh quality leaving the stage.
    pub quality_after: f64,
    /// Stage-specific headline number: flips for swap, moves for
    /// untangle, sweeps for the smoothers, 0 for reorder.
    pub work: usize,
}

/// Outcome of a full pipeline run.
#[derive(Debug, Clone, PartialEq)]
pub struct PipelineReport {
    /// Per-stage outcomes, in execution order.
    pub stages: Vec<StageOutcome>,
    /// Mesh quality before the first stage.
    pub initial_quality: f64,
    /// Mesh quality after the last stage.
    pub final_quality: f64,
}

impl PipelineReport {
    /// Total quality gained across the pipeline.
    pub fn total_improvement(&self) -> f64 {
        self.final_quality - self.initial_quality
    }
}

/// A reusable sequence of improvement stages.
#[derive(Debug, Clone, PartialEq)]
pub struct Pipeline {
    /// Stages, executed in order.
    pub stages: Vec<Stage>,
    /// Metric used for the between-stage quality bookkeeping.
    pub metric: QualityMetric,
}

impl Pipeline {
    /// Empty pipeline with the paper's metric.
    pub fn new() -> Self {
        Pipeline { stages: Vec::new(), metric: QualityMetric::EdgeLengthRatio }
    }

    /// Builder-style stage append.
    pub fn then(mut self, stage: Stage) -> Self {
        self.stages.push(stage);
        self
    }

    /// The standard improvement recipe: reorder (once, up front — §5.4),
    /// untangle, Delaunay-swap, then smart Laplacian smoothing.
    pub fn standard(ordering: OrderingKind) -> Self {
        Pipeline::new()
            .then(Stage::Reorder(ordering))
            .then(Stage::Untangle(UntangleOptions::default()))
            .then(Stage::Swap(SwapOptions::default()))
            .then(Stage::Smooth(SmoothParams::paper().with_smart(true)))
    }

    /// [`standard`](Self::standard) with the smoothing stage on the
    /// colored deterministic parallel Gauss–Seidel engine.
    pub fn standard_parallel(ordering: OrderingKind, threads: usize) -> Self {
        Pipeline::new()
            .then(Stage::Reorder(ordering))
            .then(Stage::Untangle(UntangleOptions::default()))
            .then(Stage::Swap(SwapOptions::default()))
            .then(Stage::ParallelSmooth(SmoothParams::paper().with_smart(true), threads))
    }

    /// [`standard`](Self::standard) with the smoothing stage on the
    /// domain-decomposed deterministic engine.
    pub fn standard_partitioned(ordering: OrderingKind, spec: PartitionSpec) -> Self {
        Pipeline::new()
            .then(Stage::Reorder(ordering))
            .then(Stage::Untangle(UntangleOptions::default()))
            .then(Stage::Swap(SwapOptions::default()))
            .then(Stage::PartitionedSmooth(SmoothParams::paper().with_smart(true), spec))
    }

    /// [`standard`](Self::standard) with the smoothing stage on the
    /// resident halo-exchange engine.
    pub fn standard_resident(ordering: OrderingKind, spec: PartitionSpec) -> Self {
        Pipeline::new()
            .then(Stage::Reorder(ordering))
            .then(Stage::Untangle(UntangleOptions::default()))
            .then(Stage::Swap(SwapOptions::default()))
            .then(Stage::ResidentSmooth(SmoothParams::paper().with_smart(true), spec))
    }

    /// [`standard`](Self::standard) with the smoothing stage on the
    /// multi-process distributed resident engine.
    pub fn standard_distributed(ordering: OrderingKind, spec: PartitionSpec) -> Self {
        Pipeline::new()
            .then(Stage::Reorder(ordering))
            .then(Stage::Untangle(UntangleOptions::default()))
            .then(Stage::Swap(SwapOptions::default()))
            .then(Stage::DistributedSmooth(SmoothParams::paper().with_smart(true), spec))
    }

    /// Run the pipeline on `mesh` in place.
    pub fn run(&self, mesh: &mut TriMesh) -> PipelineReport {
        let q = |mesh: &TriMesh| {
            let adj = Adjacency::build(mesh);
            mesh_quality(mesh, &adj, self.metric)
        };
        let initial_quality = q(mesh);
        let mut stages = Vec::with_capacity(self.stages.len());
        let mut before = initial_quality;
        for stage in &self.stages {
            let work = match stage {
                Stage::Reorder(kind) => {
                    let perm = compute_ordering(mesh, *kind);
                    *mesh = perm.apply_to_mesh(mesh);
                    0
                }
                Stage::Untangle(opts) => untangle(mesh, None, *opts).moves,
                Stage::Smooth(params) => params.smooth(mesh).num_iterations(),
                Stage::ParallelSmooth(params, threads) => {
                    let engine = SmoothEngine::new(mesh, params.clone());
                    let report = match params.update {
                        lms_smooth::UpdateScheme::GaussSeidel => {
                            engine.smooth_parallel_colored(mesh, *threads)
                        }
                        lms_smooth::UpdateScheme::Jacobi => engine.smooth_parallel(mesh, *threads),
                    };
                    report.num_iterations()
                }
                Stage::PartitionedSmooth(params, spec) => {
                    let engine =
                        PartitionedEngine::by_method(mesh, params.clone(), spec.parts, spec.method);
                    engine.smooth(mesh, spec.threads).num_iterations()
                }
                Stage::ResidentSmooth(params, spec) => {
                    let engine =
                        ResidentEngine::by_method(mesh, params.clone(), spec.parts, spec.method);
                    engine.smooth(mesh, spec.threads).num_iterations()
                }
                Stage::DistributedSmooth(params, spec) => {
                    let engine = lms_dist::DistResidentEngine::by_method(
                        mesh,
                        params.clone(),
                        spec.parts,
                        spec.method,
                    );
                    let opts = lms_dist::FtOptions {
                        mode: spec.transport,
                        ..lms_dist::FtOptions::default()
                    };
                    engine.smooth_with(mesh, &opts).num_iterations()
                }
                Stage::ConstrainedSmooth(params, opts) => {
                    constrained_smooth(mesh, params, opts).num_iterations()
                }
                Stage::Swap(opts) => swap_until_stable(mesh, *opts, None).total_flips(),
                Stage::OptSmooth(opts) => opt_smooth(mesh, opts).num_iterations(),
            };
            let after = q(mesh);
            stages.push(StageOutcome {
                stage: stage.name(),
                quality_before: before,
                quality_after: after,
                work,
            });
            before = after;
        }
        PipelineReport { stages, initial_quality, final_quality: before }
    }
}

impl Default for Pipeline {
    fn default() -> Self {
        Pipeline::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::untangle::{count_inverted, tangle_vertices};
    use lms_mesh::generators;

    #[test]
    fn standard_pipeline_repairs_and_improves_a_tangled_mesh() {
        let mut m = generators::perturbed_grid(16, 16, 0.35, 1);
        m.orient_ccw();
        tangle_vertices(&mut m, 30);
        assert!(count_inverted(&m) > 0);

        let report = Pipeline::standard(OrderingKind::Rdr).run(&mut m);
        assert_eq!(count_inverted(&m), 0);
        assert!(report.final_quality > report.initial_quality);
        assert_eq!(report.stages.len(), 4);
        assert_eq!(report.stages[0].stage, "reorder");
        assert!(report.stages[1].work > 0, "untangle should move vertices");
    }

    #[test]
    fn stage_bookkeeping_chains_quality_values() {
        let mut m = generators::perturbed_grid(12, 12, 0.3, 4);
        let report = Pipeline::standard(OrderingKind::Bfs).run(&mut m);
        assert_eq!(report.stages[0].quality_before, report.initial_quality);
        for w in report.stages.windows(2) {
            assert_eq!(w[0].quality_after, w[1].quality_before);
        }
        assert_eq!(report.stages.last().unwrap().quality_after, report.final_quality);
    }

    #[test]
    fn reorder_stage_alone_preserves_quality() {
        let mut m = generators::perturbed_grid(12, 12, 0.3, 6);
        let report = Pipeline::new().then(Stage::Reorder(OrderingKind::Rdr)).run(&mut m);
        // renumbering must not change geometry, hence not quality
        assert!((report.total_improvement()).abs() < 1e-12);
    }

    #[test]
    fn empty_pipeline_is_a_noop() {
        let mut m = generators::perturbed_grid(8, 8, 0.3, 2);
        let before = m.clone();
        let report = Pipeline::new().run(&mut m);
        assert_eq!(report.stages.len(), 0);
        assert_eq!(report.initial_quality, report.final_quality);
        assert_eq!(before.coords(), m.coords());
    }

    #[test]
    fn parallel_smooth_stage_matches_standard_quality() {
        let base = {
            let mut m = generators::perturbed_grid(16, 16, 0.35, 3);
            m.orient_ccw();
            m
        };
        let mut serial = base.clone();
        let rs = Pipeline::standard(OrderingKind::Rdr).run(&mut serial);
        let mut par = base.clone();
        let rp = Pipeline::standard_parallel(OrderingKind::Rdr, 3).run(&mut par);
        assert_eq!(rp.stages.last().unwrap().stage, "parsmooth");
        assert!(rp.final_quality > rp.initial_quality);
        // different Gauss-Seidel visit orders, same fixed point family
        assert!((rs.final_quality - rp.final_quality).abs() < 0.02);
        // and the parallel stage itself is thread-count invariant
        let mut par8 = base.clone();
        let rp8 = Pipeline::standard_parallel(OrderingKind::Rdr, 8).run(&mut par8);
        assert_eq!(par.coords(), par8.coords());
        assert_eq!(rp, rp8);
    }

    #[test]
    fn partitioned_smooth_stage_matches_standard_quality() {
        let base = {
            let mut m = generators::perturbed_grid(16, 16, 0.35, 7);
            m.orient_ccw();
            m
        };
        let mut serial = base.clone();
        let rs = Pipeline::standard(OrderingKind::Rdr).run(&mut serial);
        let spec = PartitionSpec {
            parts: 4,
            method: lms_part::PartitionMethod::Rcb,
            threads: 3,
            ..PartitionSpec::default()
        };
        let mut par = base.clone();
        let rp = Pipeline::standard_partitioned(OrderingKind::Rdr, spec).run(&mut par);
        assert_eq!(rp.stages.last().unwrap().stage, "partsmooth");
        assert!(rp.final_quality > rp.initial_quality);
        // same fixed-point family as the serial Gauss-Seidel pipeline
        assert!((rs.final_quality - rp.final_quality).abs() < 0.02);
        // and the partitioned stage is thread-count invariant
        let mut par8 = base.clone();
        let spec8 = PartitionSpec { threads: 8, ..spec };
        let rp8 = Pipeline::standard_partitioned(OrderingKind::Rdr, spec8).run(&mut par8);
        assert_eq!(par.coords(), par8.coords());
        assert_eq!(rp, rp8);
    }

    #[test]
    fn resident_smooth_stage_matches_partitioned_bitwise() {
        let base = {
            let mut m = generators::perturbed_grid(16, 16, 0.35, 7);
            m.orient_ccw();
            m
        };
        let spec = PartitionSpec {
            parts: 4,
            method: lms_part::PartitionMethod::Rcb,
            threads: 2,
            ..PartitionSpec::default()
        };
        let mut res = base.clone();
        let rr = Pipeline::standard_resident(OrderingKind::Rdr, spec).run(&mut res);
        assert_eq!(rr.stages.last().unwrap().stage, "ressmooth");
        assert!(rr.final_quality > rr.initial_quality);
        // the resident engine is the partitioned engine with the data
        // movement refactored away — stages must agree bit for bit
        let mut part = base.clone();
        Pipeline::standard_partitioned(OrderingKind::Rdr, spec).run(&mut part);
        assert_eq!(res.coords(), part.coords());
        // and thread-count invariant
        let mut res8 = base.clone();
        let rr8 =
            Pipeline::standard_resident(OrderingKind::Rdr, PartitionSpec { threads: 8, ..spec })
                .run(&mut res8);
        assert_eq!(res.coords(), res8.coords());
        assert_eq!(rr, rr8);
    }

    #[test]
    fn distributed_smooth_stage_matches_resident_bitwise() {
        let base = {
            let mut m = generators::perturbed_grid(14, 14, 0.35, 9);
            m.orient_ccw();
            m
        };
        let spec = PartitionSpec {
            parts: 3,
            method: lms_part::PartitionMethod::Rcb,
            threads: 2,
            ..PartitionSpec::default()
        };
        let mut dist = base.clone();
        let rd = Pipeline::standard_distributed(OrderingKind::Rdr, spec).run(&mut dist);
        assert_eq!(rd.stages.last().unwrap().stage, "distsmooth");
        assert!(rd.final_quality > rd.initial_quality);
        // the distributed stage is the resident stage over a process
        // transport — same decomposition, bit-identical coordinates
        let mut res = base.clone();
        let rr = Pipeline::standard_resident(OrderingKind::Rdr, spec).run(&mut res);
        assert_eq!(dist.coords(), res.coords());
        assert_eq!(rd.final_quality, rr.final_quality);
        // and substrate-invariant: the same stage over stream sockets
        // lands on the same bits as over pipes
        for transport in [lms_dist::TransportMode::UnixSocket, lms_dist::TransportMode::TcpLoopback]
        {
            let mut sock = base.clone();
            let rs = Pipeline::standard_distributed(
                OrderingKind::Rdr,
                PartitionSpec { transport, ..spec },
            )
            .run(&mut sock);
            assert_eq!(dist.coords(), sock.coords(), "substrate {transport:?} diverged");
            assert_eq!(rd.final_quality, rs.final_quality);
        }
    }

    #[test]
    fn parallel_smooth_stage_accepts_jacobi_params() {
        use lms_smooth::UpdateScheme;
        let mut m = generators::perturbed_grid(10, 10, 0.3, 5);
        let report = Pipeline::new()
            .then(Stage::ParallelSmooth(
                SmoothParams::paper().with_update(UpdateScheme::Jacobi).with_max_iters(5),
                3,
            ))
            .run(&mut m);
        assert_eq!(report.stages[0].stage, "parsmooth");
        assert!(report.final_quality > report.initial_quality);
    }

    #[test]
    fn full_stage_zoo_executes() {
        let mut m = generators::perturbed_grid(12, 12, 0.35, 8);
        let report = Pipeline::new()
            .then(Stage::Reorder(OrderingKind::Rdr))
            .then(Stage::Untangle(UntangleOptions::default()))
            .then(Stage::Swap(SwapOptions::default()))
            .then(Stage::Smooth(SmoothParams::paper().with_max_iters(10)))
            .then(Stage::ConstrainedSmooth(
                SmoothParams::paper().with_max_iters(10),
                ConstrainedOptions::default(),
            ))
            .then(Stage::OptSmooth(OptSmoothOptions::default()))
            .run(&mut m);
        assert_eq!(report.stages.len(), 6);
        assert!(report.final_quality >= report.initial_quality);
    }
}
