//! Tetrahedral improvement pipelines — the 3D face of [`crate::pipeline`],
//! riding the dimension-generic smoothing domain.
//!
//! The 2D [`Pipeline`](crate::pipeline::Pipeline) composes reordering and
//! smoothing stages over a `TriMesh`; this module is its `TetMesh` twin.
//! Since PR 4 the partitioned and resident engines are one generic code
//! path for both dimensions, so the 3D pipeline offers the full engine
//! menu: serial, colored/Jacobi parallel, domain-decomposed
//! ([`Stage3::PartitionedSmooth3`]) and resident halo-exchange
//! ([`Stage3::ResidentSmooth3`]) smoothing — all deterministic for any
//! thread count, all configured through the same
//! [`PartitionSpec`](crate::pipeline::PartitionSpec) as the 2D stages.

use crate::pipeline::{PartitionSpec, PipelineReport, StageOutcome};
use lms_mesh3d::order::{apply_permutation3, compute_ordering3, OrderingKind3};
use lms_mesh3d::quality::{mesh_quality, TetQualityMetric};
use lms_mesh3d::{
    Adjacency3, PartitionedEngine3, ResidentEngine3, SmoothEngine3, SmoothParams3, TetMesh,
    UpdateScheme3,
};

/// One step of a tetrahedral improvement pipeline.
#[derive(Debug, Clone, PartialEq)]
pub enum Stage3 {
    /// Renumber the mesh with the given 3D ordering (changes layout and
    /// visit order of every following stage).
    Reorder3(OrderingKind3),
    /// Laplacian smoothing (interior vertices) on the serial engine.
    Smooth3(SmoothParams3),
    /// Deterministic parallel smoothing with the given thread count:
    /// colored Gauss–Seidel for in-place params, static-chunk parallel
    /// Jacobi when `params.update` is [`UpdateScheme3::Jacobi`].
    ParallelSmooth3(SmoothParams3, usize),
    /// Laplacian smoothing on the domain-decomposed deterministic engine
    /// ([`PartitionedEngine3`]): part interiors sweep as cache-resident
    /// blocks in parallel, interface vertices through the colored
    /// schedule. Gauss–Seidel parameters only.
    PartitionedSmooth3(SmoothParams3, PartitionSpec),
    /// Laplacian smoothing on the resident halo-exchange engine
    /// ([`ResidentEngine3`]): blocks stay resident for the whole stage,
    /// moved halo deltas exchanged between color steps, one disjoint
    /// scatter at the end. Gauss–Seidel parameters only; bit-identical to
    /// [`Stage3::PartitionedSmooth3`] over the same decomposition.
    ResidentSmooth3(SmoothParams3, PartitionSpec),
    /// Laplacian smoothing on the multi-process distributed resident
    /// engine ([`lms_dist::DistResidentEngine3`]): one forked rank
    /// process per part, halo deltas as wire frames over the substrate
    /// named by `spec.transport` (pipes, Unix or TCP stream sockets, or
    /// the Auto degradation ladder). `spec.threads` is ignored —
    /// parallelism is one OS process per part. Gauss–Seidel parameters
    /// only; bit-identical to [`Stage3::ResidentSmooth3`] over the same
    /// decomposition on every substrate.
    DistributedSmooth3(SmoothParams3, PartitionSpec),
}

impl Stage3 {
    /// Short name for reports.
    pub fn name(&self) -> &'static str {
        match self {
            Stage3::Reorder3(_) => "reorder3",
            Stage3::Smooth3(_) => "smooth3",
            Stage3::ParallelSmooth3(..) => "parsmooth3",
            Stage3::PartitionedSmooth3(..) => "partsmooth3",
            Stage3::ResidentSmooth3(..) => "ressmooth3",
            Stage3::DistributedSmooth3(..) => "distsmooth3",
        }
    }
}

/// A reusable sequence of tetrahedral improvement stages.
#[derive(Debug, Clone, PartialEq)]
pub struct Pipeline3 {
    /// Stages, executed in order.
    pub stages: Vec<Stage3>,
    /// Metric used for the between-stage quality bookkeeping.
    pub metric: TetQualityMetric,
}

impl Pipeline3 {
    /// Empty pipeline with the paper's metric (edge-length ratio in 3D).
    pub fn new() -> Self {
        Pipeline3 { stages: Vec::new(), metric: TetQualityMetric::EdgeLengthRatio }
    }

    /// Builder-style stage append.
    pub fn then(mut self, stage: Stage3) -> Self {
        self.stages.push(stage);
        self
    }

    /// The standard 3D recipe: reorder once up front (§5.4's
    /// pay-once argument carries to 3D), then smart smoothing on the
    /// serial engine.
    pub fn standard3(ordering: OrderingKind3) -> Self {
        Pipeline3::new()
            .then(Stage3::Reorder3(ordering))
            .then(Stage3::Smooth3(SmoothParams3::paper().with_smart(true)))
    }

    /// [`standard3`](Self::standard3) with the smoothing stage on the
    /// domain-decomposed deterministic engine.
    pub fn standard_partitioned3(ordering: OrderingKind3, spec: PartitionSpec) -> Self {
        Pipeline3::new()
            .then(Stage3::Reorder3(ordering))
            .then(Stage3::PartitionedSmooth3(SmoothParams3::paper().with_smart(true), spec))
    }

    /// [`standard3`](Self::standard3) with the smoothing stage on the
    /// resident halo-exchange engine.
    pub fn standard_resident3(ordering: OrderingKind3, spec: PartitionSpec) -> Self {
        Pipeline3::new()
            .then(Stage3::Reorder3(ordering))
            .then(Stage3::ResidentSmooth3(SmoothParams3::paper().with_smart(true), spec))
    }

    /// [`standard3`](Self::standard3) with the smoothing stage on the
    /// multi-process distributed resident engine.
    pub fn standard_distributed3(ordering: OrderingKind3, spec: PartitionSpec) -> Self {
        Pipeline3::new()
            .then(Stage3::Reorder3(ordering))
            .then(Stage3::DistributedSmooth3(SmoothParams3::paper().with_smart(true), spec))
    }

    /// Run the pipeline on `mesh` in place.
    pub fn run(&self, mesh: &mut TetMesh) -> PipelineReport {
        let q = |mesh: &TetMesh| {
            let adj = Adjacency3::build(mesh);
            mesh_quality(mesh, &adj, self.metric)
        };
        let initial_quality = q(mesh);
        let mut stages = Vec::with_capacity(self.stages.len());
        let mut before = initial_quality;
        for stage in &self.stages {
            let work = match stage {
                Stage3::Reorder3(kind) => {
                    let perm = compute_ordering3(mesh, *kind);
                    *mesh = apply_permutation3(&perm, mesh);
                    0
                }
                Stage3::Smooth3(params) => params.smooth(mesh).num_iterations(),
                Stage3::ParallelSmooth3(params, threads) => {
                    let engine = SmoothEngine3::new(mesh, params.clone());
                    let report = match params.update {
                        UpdateScheme3::GaussSeidel => {
                            engine.smooth_parallel_colored(mesh, *threads)
                        }
                        UpdateScheme3::Jacobi => engine.smooth_parallel(mesh, *threads),
                    };
                    report.num_iterations()
                }
                Stage3::PartitionedSmooth3(params, spec) => {
                    let engine = PartitionedEngine3::by_method(
                        mesh,
                        params.clone(),
                        spec.parts,
                        spec.method,
                    );
                    engine.smooth(mesh, spec.threads).num_iterations()
                }
                Stage3::ResidentSmooth3(params, spec) => {
                    let engine =
                        ResidentEngine3::by_method(mesh, params.clone(), spec.parts, spec.method);
                    engine.smooth(mesh, spec.threads).num_iterations()
                }
                Stage3::DistributedSmooth3(params, spec) => {
                    let engine = lms_dist::DistResidentEngine3::by_method(
                        mesh,
                        params.clone(),
                        spec.parts,
                        spec.method,
                    );
                    let opts = lms_dist::FtOptions {
                        mode: spec.transport,
                        ..lms_dist::FtOptions::default()
                    };
                    engine.smooth_with(mesh, &opts).num_iterations()
                }
            };
            let after = q(mesh);
            stages.push(StageOutcome {
                stage: stage.name(),
                quality_before: before,
                quality_after: after,
                work,
            });
            before = after;
        }
        PipelineReport { stages, initial_quality, final_quality: before }
    }
}

impl Default for Pipeline3 {
    fn default() -> Self {
        Pipeline3::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lms_mesh3d::generators::perturbed_tet_grid;

    #[test]
    fn standard_resident3_improves_quality() {
        let mut m = perturbed_tet_grid(8, 8, 8, 0.4, 3);
        let spec = PartitionSpec {
            parts: 4,
            method: lms_part::PartitionMethod::Rcb,
            threads: 2,
            ..PartitionSpec::default()
        };
        let report = Pipeline3::standard_resident3(OrderingKind3::Rdr, spec).run(&mut m);
        assert_eq!(report.stages.len(), 2);
        assert_eq!(report.stages[0].stage, "reorder3");
        assert_eq!(report.stages[1].stage, "ressmooth3");
        assert!(report.final_quality > report.initial_quality);
    }

    #[test]
    fn resident3_stage_matches_partitioned3_bitwise() {
        let base = perturbed_tet_grid(7, 7, 6, 0.35, 5);
        let spec = PartitionSpec {
            parts: 4,
            method: lms_part::PartitionMethod::Rcb,
            threads: 2,
            ..PartitionSpec::default()
        };
        let mut res = base.clone();
        let rr = Pipeline3::standard_resident3(OrderingKind3::Hilbert, spec).run(&mut res);
        let mut part = base.clone();
        Pipeline3::standard_partitioned3(OrderingKind3::Hilbert, spec).run(&mut part);
        // the resident engine is the partitioned engine with the data
        // movement refactored away — stages must agree bit for bit
        assert_eq!(res.coords(), part.coords());
        // and thread-count invariant
        let mut res8 = base.clone();
        let rr8 = Pipeline3::standard_resident3(
            OrderingKind3::Hilbert,
            PartitionSpec { threads: 8, ..spec },
        )
        .run(&mut res8);
        assert_eq!(res.coords(), res8.coords());
        assert_eq!(rr, rr8);
    }

    #[test]
    fn distributed3_stage_matches_resident3_bitwise() {
        let base = perturbed_tet_grid(6, 6, 6, 0.35, 8);
        let spec = PartitionSpec {
            parts: 3,
            method: lms_part::PartitionMethod::Rcb,
            threads: 2,
            ..PartitionSpec::default()
        };
        let mut dist = base.clone();
        let rd = Pipeline3::standard_distributed3(OrderingKind3::Rdr, spec).run(&mut dist);
        assert_eq!(rd.stages.last().unwrap().stage, "distsmooth3");
        assert!(rd.final_quality > rd.initial_quality);
        let mut res = base.clone();
        let rr = Pipeline3::standard_resident3(OrderingKind3::Rdr, spec).run(&mut res);
        assert_eq!(dist.coords(), res.coords());
        assert_eq!(rd.final_quality, rr.final_quality);
    }

    #[test]
    fn stage_bookkeeping_chains_quality_values() {
        let mut m = perturbed_tet_grid(6, 6, 6, 0.3, 4);
        let spec = PartitionSpec::default();
        let report = Pipeline3::new()
            .then(Stage3::Reorder3(OrderingKind3::Bfs))
            .then(Stage3::ParallelSmooth3(SmoothParams3::paper().with_max_iters(5), 2))
            .then(Stage3::PartitionedSmooth3(
                SmoothParams3::paper().with_smart(true).with_max_iters(5),
                spec,
            ))
            .run(&mut m);
        assert_eq!(report.stages[0].quality_before, report.initial_quality);
        for w in report.stages.windows(2) {
            assert_eq!(w[0].quality_after, w[1].quality_before);
        }
        assert_eq!(report.stages.last().unwrap().quality_after, report.final_quality);
    }

    #[test]
    fn empty_pipeline3_is_a_noop() {
        let mut m = perturbed_tet_grid(5, 5, 5, 0.3, 2);
        let before = m.clone();
        let report = Pipeline3::new().run(&mut m);
        assert_eq!(report.stages.len(), 0);
        assert_eq!(report.initial_quality, report.final_quality);
        assert_eq!(before.coords(), m.coords());
    }
}
