//! Local optimization-based mesh untangling (Freitag & Plassmann \[6\]).
//!
//! Plain Laplacian smoothing can invert triangles; tangled meshes also come
//! out of mesh movement and morphing. Untangling restores a valid (all
//! positive-area) triangulation by moving one vertex at a time to the
//! position that **maximises the minimum signed area** of its incident
//! triangles. That objective is the minimum of functions *linear* in the
//! vertex position, hence concave and piecewise linear — exactly the linear
//! program Freitag & Plassmann solve. We maximise it with subgradient
//! ascent plus an exact-enough golden-section line search, which converges
//! to the LP optimum for this concave objective and needs no LP machinery.
//!
//! The sweep visits the vertices incident to inverted triangles in an order
//! derived from a vertex ordering, so the ORI/BFS/RDR locality comparison
//! extends to untangling (the paper's §6 conjecture; see the `apps`
//! experiment).

use lms_mesh::geometry::signed_area;
use lms_mesh::{Adjacency, Boundary, Point2, TriMesh};
use lms_order::Permutation;

/// Number of inverted (non-positive signed area) triangles.
///
/// The mesh is interpreted in counter-clockwise convention; call
/// [`TriMesh::orient_ccw`] first if the triangle orientation is unknown.
pub fn count_inverted(mesh: &TriMesh) -> usize {
    mesh.triangles()
        .iter()
        .filter(|t| {
            let [a, b, c] = **t;
            signed_area(
                mesh.coords()[a as usize],
                mesh.coords()[b as usize],
                mesh.coords()[c as usize],
            ) <= 0.0
        })
        .count()
}

/// Knobs for [`untangle`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct UntangleOptions {
    /// Hard cap on sweeps over the affected vertices.
    pub max_sweeps: usize,
    /// Subgradient-ascent steps per vertex visit.
    pub ascent_steps: usize,
}

impl Default for UntangleOptions {
    fn default() -> Self {
        UntangleOptions { max_sweeps: 50, ascent_steps: 12 }
    }
}

/// Outcome of an untangling run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct UntangleReport {
    /// Inverted triangles before the first sweep.
    pub inverted_before: usize,
    /// Inverted triangles after the last sweep.
    pub inverted_after: usize,
    /// Sweeps executed.
    pub sweeps: usize,
    /// Vertex relocations committed.
    pub moves: usize,
}

impl UntangleReport {
    /// True when the mesh ended fully untangled.
    pub fn succeeded(&self) -> bool {
        self.inverted_after == 0
    }
}

/// Minimum signed area over `v`'s incident triangles with `v` at `p`.
fn min_area_at(mesh: &TriMesh, adj: &Adjacency, v: u32, p: Point2) -> f64 {
    let coords = mesh.coords();
    let at = |u: u32| if u == v { p } else { coords[u as usize] };
    adj.triangles_of(v)
        .iter()
        .map(|&t| {
            let [a, b, c] = mesh.triangles()[t as usize];
            signed_area(at(a), at(b), at(c))
        })
        .fold(f64::INFINITY, f64::min)
}

/// Subgradient of the min-area objective at `p`: the gradient of (one of)
/// the currently-worst triangle's signed area with respect to `v`.
fn min_area_subgradient(mesh: &TriMesh, adj: &Adjacency, v: u32, p: Point2) -> Point2 {
    let coords = mesh.coords();
    let at = |u: u32| if u == v { p } else { coords[u as usize] };
    let mut worst = f64::INFINITY;
    let mut grad = Point2::new(0.0, 0.0);
    for &t in adj.triangles_of(v) {
        let [a, b, c] = mesh.triangles()[t as usize];
        let area = signed_area(at(a), at(b), at(c));
        if area < worst {
            worst = area;
            // rotate the triangle so v sits in the first slot; then
            // ∂ area(v, q, r) / ∂v = ½ · rot90(r − q)
            let (q, r) = if a == v {
                (at(b), at(c))
            } else if b == v {
                (at(c), at(a))
            } else {
                (at(a), at(b))
            };
            let e = r - q;
            grad = Point2::new(-e.y, e.x) * 0.5;
        }
    }
    grad
}

/// Golden-section search for the maximum of concave `f` on `[0, hi]`.
fn golden_max(mut f: impl FnMut(f64) -> f64, hi: f64, iters: usize) -> f64 {
    const INV_PHI: f64 = 0.618_033_988_749_894_8;
    let (mut lo, mut hi) = (0.0, hi);
    let mut x1 = hi - INV_PHI * (hi - lo);
    let mut x2 = lo + INV_PHI * (hi - lo);
    let (mut f1, mut f2) = (f(x1), f(x2));
    for _ in 0..iters {
        if f1 < f2 {
            lo = x1;
            x1 = x2;
            f1 = f2;
            x2 = lo + INV_PHI * (hi - lo);
            f2 = f(x2);
        } else {
            hi = x2;
            x2 = x1;
            f2 = f1;
            x1 = hi - INV_PHI * (hi - lo);
            f1 = f(x1);
        }
    }
    if f1 >= f2 {
        x1
    } else {
        x2
    }
}

/// Local scale of `v`'s ring: the longest incident edge.
fn ring_scale(mesh: &TriMesh, adj: &Adjacency, v: u32) -> f64 {
    let pv = mesh.coords()[v as usize];
    adj.neighbors(v).iter().map(|&w| pv.dist(mesh.coords()[w as usize])).fold(0.0, f64::max)
}

/// Maximise the min-area objective of vertex `v`; returns the improved
/// position if it beats the current one.
///
/// Two candidate generators, best wins: (i) subgradient ascent with a
/// golden-section line search — exact on the concave piecewise-linear
/// objective away from kinks; (ii) the ring centroid — a single step that
/// frequently lands inside the ring's kernel when the ascent stalls at a
/// kink whose active-triangle gradient is not an ascent direction.
fn optimize_vertex(
    mesh: &TriMesh,
    adj: &Adjacency,
    v: u32,
    opts: &UntangleOptions,
) -> Option<Point2> {
    let start = mesh.coords()[v as usize];
    let mut p = start;
    let mut best = min_area_at(mesh, adj, v, p);
    let start_best = best;
    let scale = ring_scale(mesh, adj, v).max(f64::MIN_POSITIVE);
    for _ in 0..opts.ascent_steps {
        let g = min_area_subgradient(mesh, adj, v, p);
        let gn = g.norm();
        if gn < 1e-300 {
            break;
        }
        let dir = g * (1.0 / gn);
        let t = golden_max(|t| min_area_at(mesh, adj, v, p + dir * t), 2.0 * scale, 24);
        let cand = p + dir * t;
        let cand_val = min_area_at(mesh, adj, v, cand);
        if cand_val <= best + 1e-15 * scale * scale {
            break;
        }
        p = cand;
        best = cand_val;
    }
    // fallback candidate: the ring centroid
    let nbrs = adj.neighbors(v);
    if !nbrs.is_empty() {
        let mut acc = Point2::new(0.0, 0.0);
        for &w in nbrs {
            acc += mesh.coords()[w as usize];
        }
        let centroid = acc * (1.0 / nbrs.len() as f64);
        if min_area_at(mesh, adj, v, centroid) > best {
            best = min_area_at(mesh, adj, v, centroid);
            p = centroid;
        }
    }
    (best > start_best && p.is_finite()).then_some(p)
}

/// Untangle `mesh` by sweeping the interior vertices incident to inverted
/// triangles, visiting them in the layout order of `ordering` (storage
/// order when `None`).
///
/// Boundary vertices never move. The mesh's stored triangle orientation is
/// the reference: a triangle is inverted when its signed area is
/// non-positive *under its stored vertex order*. (Deliberately no
/// `orient_ccw` here — flipping vertex order would define the inversions
/// away instead of moving vertices to fix them.)
pub fn untangle(
    mesh: &mut TriMesh,
    ordering: Option<&Permutation>,
    opts: UntangleOptions,
) -> UntangleReport {
    let adj = Adjacency::build(mesh);
    let boundary = Boundary::detect(mesh);
    let inverted_before = count_inverted(mesh);
    let pos = ordering.map(|p| p.old_to_new());
    let mut moves = 0;
    let mut sweeps = 0;

    // how many hops around the inverted triangles each sweep works on;
    // escalates when a sweep stalls — layered tangles need their *ring
    // neighbourhood* loosened before the trapped vertex has a kernel to
    // move into
    let mut ring = 1usize;
    const MAX_RING: usize = 3;

    while sweeps < opts.max_sweeps {
        let coords = mesh.coords();
        // corners of the inverted triangles
        let mut frontier: Vec<u32> = mesh
            .triangles()
            .iter()
            .filter(|t| {
                let [a, b, c] = **t;
                signed_area(coords[a as usize], coords[b as usize], coords[c as usize]) <= 0.0
            })
            .flatten()
            .copied()
            .collect();
        frontier.sort_unstable();
        frontier.dedup();
        if frontier.is_empty() {
            break;
        }
        // expand by `ring` hops
        let mut affected = frontier.clone();
        for _ in 0..ring {
            let mut next: Vec<u32> =
                affected.iter().flat_map(|&v| adj.neighbors(v).iter().copied()).collect();
            next.extend_from_slice(&affected);
            next.sort_unstable();
            next.dedup();
            affected = next;
        }
        affected.retain(|&v| boundary.is_interior(v));
        if affected.is_empty() {
            break; // all tangles pinned to the boundary: nothing movable
        }
        if let Some(pos) = &pos {
            affected.sort_unstable_by_key(|&v| pos[v as usize]);
        }
        sweeps += 1;
        let mut moved_this_sweep = 0;
        for v in affected {
            if let Some(p) = optimize_vertex(mesh, &adj, v, &opts) {
                mesh.coords_mut()[v as usize] = p;
                moved_this_sweep += 1;
            }
        }
        moves += moved_this_sweep;
        if moved_this_sweep == 0 {
            if ring >= MAX_RING {
                break; // stuck even with the widest neighbourhood
            }
            ring += 1;
        } else {
            ring = 1;
        }
    }

    UntangleReport { inverted_before, inverted_after: count_inverted(mesh), sweeps, moves }
}

/// Deterministically tangle `mesh` for tests and benchmarks: every
/// `stride`-th interior vertex is reflected far across its ring centroid,
/// which inverts some of its incident triangles. Returns how many vertices
/// were displaced.
pub fn tangle_vertices(mesh: &mut TriMesh, stride: usize) -> usize {
    assert!(stride > 0, "stride must be positive");
    let adj = Adjacency::build(mesh);
    let boundary = Boundary::detect(mesh);
    let interior = boundary.interior_vertices();
    let mut displaced = 0;
    for v in interior.into_iter().step_by(stride) {
        let nbrs = adj.neighbors(v);
        if nbrs.is_empty() {
            continue;
        }
        let mut cx = 0.0;
        let mut cy = 0.0;
        for &w in nbrs {
            cx += mesh.coords()[w as usize].x;
            cy += mesh.coords()[w as usize].y;
        }
        let n = nbrs.len() as f64;
        let c = Point2::new(cx / n, cy / n);
        let p = mesh.coords()[v as usize];
        // land well outside the ring polygon on the far side
        mesh.coords_mut()[v as usize] = c + (c - p) * 2.5;
        displaced += 1;
    }
    displaced
}

#[cfg(test)]
mod tests {
    use super::*;
    use lms_mesh::generators;
    use lms_order::{compute_ordering, OrderingKind};

    #[test]
    fn clean_meshes_have_no_inverted_triangles() {
        let mut m = generators::perturbed_grid(12, 12, 0.3, 1);
        m.orient_ccw();
        assert_eq!(count_inverted(&m), 0);
        let report = untangle(&mut m, None, UntangleOptions::default());
        assert_eq!(report.inverted_before, 0);
        assert_eq!(report.sweeps, 0);
        assert_eq!(report.moves, 0);
        assert!(report.succeeded());
    }

    #[test]
    fn tangling_inverts_triangles() {
        let mut m = generators::perturbed_grid(12, 12, 0.25, 2);
        m.orient_ccw();
        let displaced = tangle_vertices(&mut m, 20);
        assert!(displaced > 0);
        assert!(count_inverted(&m) > 0);
    }

    #[test]
    fn untangle_recovers_a_tangled_grid() {
        for seed in [1, 5, 9] {
            let mut m = generators::perturbed_grid(14, 14, 0.25, seed);
            m.orient_ccw();
            tangle_vertices(&mut m, 25);
            let before = count_inverted(&m);
            assert!(before > 0, "seed {seed}: tangle failed");
            let report = untangle(&mut m, None, UntangleOptions::default());
            assert!(
                report.succeeded(),
                "seed {seed}: {} inverted left after {} sweeps",
                report.inverted_after,
                report.sweeps
            );
            assert_eq!(report.inverted_before, before);
            assert!(report.moves > 0);
        }
    }

    #[test]
    fn untangle_never_moves_boundary_vertices() {
        let mut m = generators::perturbed_grid(12, 12, 0.25, 3);
        m.orient_ccw();
        tangle_vertices(&mut m, 15);
        let boundary = Boundary::detect(&m);
        let before: Vec<Point2> =
            boundary.boundary_vertices().iter().map(|&v| m.coords()[v as usize]).collect();
        untangle(&mut m, None, UntangleOptions::default());
        let after: Vec<Point2> =
            boundary.boundary_vertices().iter().map(|&v| m.coords()[v as usize]).collect();
        assert_eq!(before, after);
    }

    #[test]
    fn untangle_respects_visit_ordering_and_still_succeeds() {
        for kind in [OrderingKind::Rdr, OrderingKind::Random { seed: 2 }] {
            let mut m = generators::perturbed_grid(13, 13, 0.25, 4);
            m.orient_ccw();
            tangle_vertices(&mut m, 22);
            let perm = compute_ordering(&m, kind);
            let report = untangle(&mut m, Some(&perm), UntangleOptions::default());
            assert!(report.succeeded(), "{} failed to untangle", kind.name());
        }
    }

    #[test]
    fn max_sweeps_bounds_the_work() {
        let mut m = generators::perturbed_grid(12, 12, 0.25, 6);
        m.orient_ccw();
        tangle_vertices(&mut m, 3);
        assert!(count_inverted(&m) > 0, "tangling must invert something for this test");
        let report = untangle(&mut m, None, UntangleOptions { max_sweeps: 1, ascent_steps: 2 });
        assert_eq!(report.sweeps, 1);
    }

    #[test]
    fn golden_section_finds_concave_maxima() {
        // f(t) = -(t - 3)^2, max at 3 on [0, 10]
        let t = golden_max(|t| -(t - 3.0) * (t - 3.0), 10.0, 40);
        assert!((t - 3.0).abs() < 1e-6, "got {t}");
    }
}
