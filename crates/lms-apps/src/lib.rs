//! # lms-apps — mesh-improvement applications beyond Laplacian smoothing
//!
//! The paper's conclusion (§6) conjectures that the RDR ordering "could
//! improve other mesh application performances such as mesh untangling
//! \[6\], constraint mesh smoothing \[13\], and mesh swapping \[5\]". This crate
//! implements those applications so the conjecture can be tested (see the
//! `apps` experiment in `lms-bench`):
//!
//! * [`edges`] — the edge → triangle topology and the diagonal-flip
//!   primitive;
//! * [`swap`] — edge swapping to the Delaunay or a quality criterion
//!   (Freitag & Ollivier \[5\]);
//! * [`untangle`] — local min-area-maximising untangling
//!   (Freitag & Plassmann \[6\]);
//! * [`constrained`] — constrained smoothing with boundary vertices
//!   sliding along the boundary (Parthasarathy & Kodiyalam \[13\]);
//! * [`optsmooth`] — optimization-based max-min quality smoothing
//!   (FeasNewt/Mesquite-style, Munson & Hovland \[19\]);
//! * [`pipeline`] — composable improvement pipelines with per-stage
//!   quality bookkeeping;
//! * [`pipeline3`] — the tetrahedral pipeline twin, with the
//!   dimension-generic partitioned/resident smoothing stages
//!   (`Stage3::PartitionedSmooth3` / `Stage3::ResidentSmooth3`);
//! * [`dynamic`] — the static-vs-dynamic reordering study of
//!   Shontz & Knupp \[17\] (§2), re-run on this substrate.
//!
//! Every sweep-based application visits vertices (or edges) in an order
//! derived from the mesh numbering, so the paper's ORI/BFS/RDR comparison
//! extends to each of them.
//!
//! ```
//! use lms_apps::pipeline::Pipeline;
//! use lms_order::OrderingKind;
//!
//! let mut mesh = lms_mesh::generators::perturbed_grid(16, 16, 0.35, 1);
//! let report = Pipeline::standard(OrderingKind::Rdr).run(&mut mesh);
//! assert!(report.final_quality >= report.initial_quality);
//! ```

pub mod constrained;
pub mod dynamic;
pub mod edges;
pub mod optsmooth;
pub mod pipeline;
pub mod pipeline3;
pub mod swap;
pub mod untangle;

pub use constrained::{constrained_smooth, ConstrainedOptions};
pub use dynamic::{smooth_with_strategy, DynamicReport, ReorderStrategy, RoundStats};
pub use edges::{EdgeTopology, FlipError, TopologyError};
pub use optsmooth::{opt_smooth, worst_vertex_quality, OptSmoothOptions};
pub use pipeline::{PartitionSpec, Pipeline, PipelineReport, Stage, StageOutcome};
pub use pipeline3::{Pipeline3, Stage3};
pub use swap::{is_delaunay, swap_until_stable, SwapCriterion, SwapOptions, SwapReport};
pub use untangle::{count_inverted, tangle_vertices, untangle, UntangleOptions, UntangleReport};
