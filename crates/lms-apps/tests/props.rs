//! Property-based tests for the mesh-improvement applications.

use lms_apps::{
    count_inverted, is_delaunay, swap_until_stable, tangle_vertices, untangle, EdgeTopology,
    SwapCriterion, SwapOptions, UntangleOptions,
};
use lms_mesh::quality::{triangle_qualities, QualityMetric};
use lms_mesh::{generators, Boundary, Point2, TriMesh};
use lms_order::{compute_ordering, OrderingKind};
use proptest::prelude::*;

// jitter stays below 0.24: each vertex then remains inside a private
// half-cell box, so the triangulation is a planar embedding (no folded
// cells). Folded inputs make |area| sums non-invariant under flips and are
// exercised separately by the tangle/untangle tests.
fn arb_grid() -> impl Strategy<Value = TriMesh> {
    (4usize..14, 4usize..14, 0.0f64..0.24, 0u64..1000).prop_map(|(nx, ny, jitter, seed)| {
        let mut m = generators::perturbed_grid(nx, ny, jitter, seed);
        m.orient_ccw();
        m
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Any grid builds a manifold edge topology with disc Euler count.
    #[test]
    fn topology_satisfies_euler(m in arb_grid()) {
        let topo = EdgeTopology::build(&m).unwrap();
        let v = m.num_vertices() as i64;
        let e = topo.num_edges() as i64;
        let f = m.num_triangles() as i64;
        prop_assert_eq!(v - e + f, 1);
        prop_assert_eq!(
            topo.interior_edges().len() + topo.boundary_edges().len(),
            topo.num_edges()
        );
    }

    /// Random flip storms keep the edge and triangle counts invariant and
    /// the incremental edge map consistent with a from-scratch rebuild.
    #[test]
    fn flips_preserve_counts(m in arb_grid(), picks in proptest::collection::vec((0usize..64, 0usize..64), 0..60)) {
        let mut topo = EdgeTopology::build(&m).unwrap();
        let edges0 = topo.num_edges();
        let tris0 = topo.triangles().len();
        for (i, _) in picks {
            let interior = topo.interior_edges();
            if interior.is_empty() { break; }
            let (a, b) = interior[i % interior.len()];
            let _ = topo.flip(a, b, m.coords());
        }
        prop_assert_eq!(topo.num_edges(), edges0);
        prop_assert_eq!(topo.triangles().len(), tris0);
        let rebuilt = EdgeTopology::from_triangles(topo.triangles().to_vec());
        prop_assert!(rebuilt.is_ok());
        prop_assert_eq!(rebuilt.unwrap().num_edges(), edges0);
    }

    /// Delaunay swapping always converges on valid grids and reaches the
    /// Delaunay fixed point; geometry (vertex positions, total area) is
    /// untouched.
    #[test]
    fn delaunay_swap_converges(m in arb_grid()) {
        let mut work = m.clone();
        let report = swap_until_stable(&mut work, SwapOptions::default(), None);
        prop_assert!(report.converged);
        prop_assert!(is_delaunay(&work));
        prop_assert_eq!(work.coords(), m.coords());
        // flips retile the same region; FP rounding differs per flip, so
        // compare with a relative tolerance
        prop_assert!(
            (work.total_area() - m.total_area()).abs() < 1e-12 * m.num_triangles() as f64 + 1e-12
        );
        prop_assert_eq!(work.num_triangles(), m.num_triangles());
    }

    /// Quality swapping never lowers the worst triangle.
    #[test]
    fn quality_swap_raises_the_floor(m in arb_grid()) {
        let floor = |mesh: &TriMesh| {
            triangle_qualities(mesh, QualityMetric::EdgeLengthRatio)
                .into_iter()
                .fold(f64::INFINITY, f64::min)
        };
        let mut work = m.clone();
        let before = floor(&work);
        swap_until_stable(
            &mut work,
            SwapOptions { criterion: SwapCriterion::quality(), max_passes: 30 },
            None,
        );
        prop_assert!(floor(&work) >= before - 1e-12);
    }

    /// Untangling reports consistently, never moves boundary vertices, and
    /// never touches connectivity.
    #[test]
    fn untangle_reports_consistently(m in arb_grid(), stride in 5usize..40) {
        let mut work = m.clone();
        tangle_vertices(&mut work, stride);
        let before = count_inverted(&work);
        let tris0 = work.triangles().to_vec();
        let report = untangle(&mut work, None, UntangleOptions::default());
        prop_assert_eq!(report.inverted_before, before);
        prop_assert_eq!(report.inverted_after, count_inverted(&work));
        prop_assert_eq!(work.triangles(), &tris0[..]);
        let boundary = Boundary::detect(&m);
        for v in boundary.boundary_vertices() {
            prop_assert_eq!(work.coords()[v as usize], m.coords()[v as usize]);
        }
        // the tangles of a (moderate-jitter) grid always resolve
        if report.inverted_before > 0 {
            prop_assert!(report.moves > 0 || report.inverted_after == report.inverted_before);
        }
    }

    /// Swapping under any visit ordering reaches the same Delaunay edge
    /// set (uniqueness of the Delaunay triangulation in general position).
    #[test]
    fn swap_fixed_point_is_visit_order_independent(m in arb_grid(), seed in 0u64..50) {
        let edges_of = |kind: OrderingKind| {
            let mut work = m.clone();
            let perm = compute_ordering(&work, kind);
            swap_until_stable(&mut work, SwapOptions::default(), Some(&perm));
            let mut e = work.edges();
            e.sort_unstable();
            e
        };
        prop_assert_eq!(
            edges_of(OrderingKind::Original),
            edges_of(OrderingKind::Random { seed })
        );
    }

    /// All coordinates stay finite through tangle → untangle → swap.
    #[test]
    fn coordinates_stay_finite(m in arb_grid(), stride in 8usize..30) {
        let mut work = m.clone();
        tangle_vertices(&mut work, stride);
        untangle(&mut work, None, UntangleOptions { max_sweeps: 10, ascent_steps: 6 });
        swap_until_stable(&mut work, SwapOptions::default(), None);
        prop_assert!(work.coords().iter().all(|p: &Point2| p.is_finite()));
    }
}
