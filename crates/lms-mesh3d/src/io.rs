//! TetGen `.node` / `.ele` I/O for tetrahedral meshes.
//!
//! TetGen is the 3D sibling of the paper's mesh generator *Triangle* (same
//! author lineage, same file conventions with one more coordinate and one
//! more corner). Supporting its format makes the crate usable on real
//! tetrahedral meshes, exactly as `lms-mesh::io` does for Triangle's 2D
//! output.
//!
//! `.node`: header `<#points> <dim (3)> <#attrs> <#boundary markers>`,
//! then `<id> <x> <y> <z> [attrs...] [marker]` per line.
//! `.ele`: header `<#tets> <nodes per tet (4)> <#attrs>`, then
//! `<id> <v0> <v1> <v2> <v3> [attrs...]` per line. Ids may start at 0
//! or 1 (auto-detected, as TetGen allows both). `#` starts a comment.

use crate::geometry::Point3;
use crate::mesh::{Mesh3Error, TetMesh};
use std::io::{BufRead, BufReader, Read, Write};
use std::path::Path;

fn parse_err(msg: impl Into<String>) -> Mesh3Error {
    Mesh3Error::Parse(msg.into())
}

/// Write the `.node` file of `mesh`.
pub fn write_node3(mesh: &TetMesh, mut w: impl Write) -> Result<(), Mesh3Error> {
    let io = |e: std::io::Error| parse_err(format!("write: {e}"));
    writeln!(w, "{} 3 0 0", mesh.num_vertices()).map_err(io)?;
    for (i, p) in mesh.coords().iter().enumerate() {
        writeln!(w, "{} {:.17} {:.17} {:.17}", i, p.x, p.y, p.z).map_err(io)?;
    }
    Ok(())
}

/// Write the `.ele` file of `mesh`.
pub fn write_ele3(mesh: &TetMesh, mut w: impl Write) -> Result<(), Mesh3Error> {
    let io = |e: std::io::Error| parse_err(format!("write: {e}"));
    writeln!(w, "{} 4 0", mesh.num_tets()).map_err(io)?;
    for (i, t) in mesh.tets().iter().enumerate() {
        writeln!(w, "{} {} {} {} {}", i, t[0], t[1], t[2], t[3]).map_err(io)?;
    }
    Ok(())
}

/// Strip comments and collect whitespace-separated tokens per line.
fn data_lines(r: impl Read) -> Result<Vec<Vec<String>>, Mesh3Error> {
    let mut out = Vec::new();
    for line in BufReader::new(r).lines() {
        let line = line.map_err(|e| parse_err(format!("read: {e}")))?;
        let body = line.split('#').next().unwrap_or("");
        let tokens: Vec<String> = body.split_whitespace().map(str::to_string).collect();
        if !tokens.is_empty() {
            out.push(tokens);
        }
    }
    Ok(out)
}

/// Read a `.node` file into a coordinate array.
pub fn read_node3(r: impl Read) -> Result<Vec<Point3>, Mesh3Error> {
    let lines = data_lines(r)?;
    let header = lines.first().ok_or_else(|| parse_err("empty .node file"))?;
    let n: usize = header[0].parse().map_err(|e| parse_err(format!("bad point count: {e}")))?;
    let dim: usize = header
        .get(1)
        .map(|t| t.parse().unwrap_or(0))
        .ok_or_else(|| parse_err("missing dimension"))?;
    if dim != 3 {
        return Err(parse_err(format!("expected dimension 3, got {dim}")));
    }
    let body = &lines[1..];
    if body.len() != n {
        return Err(parse_err(format!("expected {n} points, found {}", body.len())));
    }
    let mut coords = Vec::with_capacity(n);
    for tokens in body {
        if tokens.len() < 4 {
            return Err(parse_err(format!("point line too short: {tokens:?}")));
        }
        let coord =
            |s: &str| s.parse::<f64>().map_err(|e| parse_err(format!("bad coordinate {s:?}: {e}")));
        coords.push(Point3::new(coord(&tokens[1])?, coord(&tokens[2])?, coord(&tokens[3])?));
    }
    Ok(coords)
}

/// Read a `.ele` file into a connectivity array (0- or 1-based ids
/// auto-detected from the first element's id).
pub fn read_ele3(r: impl Read) -> Result<Vec<[u32; 4]>, Mesh3Error> {
    let lines = data_lines(r)?;
    let header = lines.first().ok_or_else(|| parse_err("empty .ele file"))?;
    let n: usize = header[0].parse().map_err(|e| parse_err(format!("bad tet count: {e}")))?;
    let nodes_per: usize = header.get(1).map(|t| t.parse().unwrap_or(0)).unwrap_or(4);
    if nodes_per != 4 {
        return Err(parse_err(format!("expected 4 nodes per tet, got {nodes_per}")));
    }
    let body = &lines[1..];
    if body.len() != n {
        return Err(parse_err(format!("expected {n} tets, found {}", body.len())));
    }
    // TetGen numbers from 0 or 1; detect from the first element id
    let base: u32 = body.first().map(|t| t[0].parse().unwrap_or(0)).unwrap_or(0).min(1);
    let mut tets = Vec::with_capacity(n);
    for tokens in body {
        if tokens.len() < 5 {
            return Err(parse_err(format!("tet line too short: {tokens:?}")));
        }
        let idx = |s: &str| -> Result<u32, Mesh3Error> {
            let v: u32 = s.parse().map_err(|e| parse_err(format!("bad vertex id {s:?}: {e}")))?;
            v.checked_sub(base).ok_or_else(|| parse_err(format!("vertex id {v} below base {base}")))
        };
        tets.push([idx(&tokens[1])?, idx(&tokens[2])?, idx(&tokens[3])?, idx(&tokens[4])?]);
    }
    Ok(tets)
}

/// Save `mesh` as `<prefix>.node` + `<prefix>.ele`.
pub fn save_tetgen(mesh: &TetMesh, prefix: impl AsRef<Path>) -> Result<(), Mesh3Error> {
    let prefix = prefix.as_ref();
    let open = |ext: &str| {
        std::fs::File::create(prefix.with_extension(ext))
            .map_err(|e| parse_err(format!("create {}.{ext}: {e}", prefix.display())))
    };
    write_node3(mesh, open("node")?)?;
    write_ele3(mesh, open("ele")?)
}

/// Load `<prefix>.node` + `<prefix>.ele` into a validated [`TetMesh`].
pub fn load_tetgen(prefix: impl AsRef<Path>) -> Result<TetMesh, Mesh3Error> {
    let prefix = prefix.as_ref();
    let open = |ext: &str| {
        std::fs::File::open(prefix.with_extension(ext))
            .map_err(|e| parse_err(format!("open {}.{ext}: {e}", prefix.display())))
    };
    let coords = read_node3(open("node")?)?;
    let tets = read_ele3(open("ele")?)?;
    TetMesh::new(coords, tets)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators::perturbed_tet_grid;
    use crate::mesh::corner_tet;

    #[test]
    fn node_roundtrip_is_exact() {
        let m = perturbed_tet_grid(3, 3, 3, 0.3, 1);
        let mut buf = Vec::new();
        write_node3(&m, &mut buf).unwrap();
        let coords = read_node3(&buf[..]).unwrap();
        assert_eq!(coords, m.coords());
    }

    #[test]
    fn ele_roundtrip_is_exact() {
        let m = perturbed_tet_grid(2, 3, 2, 0.2, 5);
        let mut buf = Vec::new();
        write_ele3(&m, &mut buf).unwrap();
        let tets = read_ele3(&buf[..]).unwrap();
        assert_eq!(tets, m.tets());
    }

    #[test]
    fn one_based_ids_are_detected() {
        let ele = "1 4 0\n1 1 2 3 4\n";
        let tets = read_ele3(ele.as_bytes()).unwrap();
        assert_eq!(tets, vec![[0, 1, 2, 3]]);
    }

    #[test]
    fn comments_and_blank_lines_are_skipped() {
        let node = "# tetgen output\n4 3 0 0\n\n0 0 0 0 # origin\n1 1 0 0\n2 0 1 0\n3 0 0 1\n";
        let coords = read_node3(node.as_bytes()).unwrap();
        assert_eq!(coords.len(), 4);
        assert_eq!(coords[3], Point3::new(0.0, 0.0, 1.0));
    }

    #[test]
    fn wrong_dimension_is_rejected() {
        let node = "3 2 0 0\n0 0 0\n1 1 0\n2 0 1\n";
        assert!(read_node3(node.as_bytes()).is_err());
    }

    #[test]
    fn truncated_files_are_rejected() {
        assert!(read_node3("2 3 0 0\n0 0 0 0\n".as_bytes()).is_err());
        assert!(read_ele3("2 4 0\n0 0 1 2 3\n".as_bytes()).is_err());
        assert!(read_node3("".as_bytes()).is_err());
    }

    #[test]
    fn save_load_roundtrip_on_disk() {
        let dir = std::env::temp_dir().join(format!("lms3d_io_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let prefix = dir.join("mesh");
        let m = corner_tet();
        save_tetgen(&m, &prefix).unwrap();
        let loaded = load_tetgen(&prefix).unwrap();
        assert_eq!(loaded, m);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn load_validates_indices() {
        let dir = std::env::temp_dir().join(format!("lms3d_io_bad_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let prefix = dir.join("bad");
        std::fs::write(prefix.with_extension("node"), "1 3 0 0\n0 0 0 0\n").unwrap();
        std::fs::write(prefix.with_extension("ele"), "1 4 0\n0 0 1 2 3\n").unwrap();
        assert!(load_tetgen(&prefix).is_err());
        let _ = std::fs::remove_dir_all(&dir);
    }
}
