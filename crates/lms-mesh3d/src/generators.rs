//! Tetrahedral mesh generators.
//!
//! The 3D analogue of `lms-mesh`'s synthetic suite: structured box grids
//! split into tetrahedra by the Kuhn (6-tet) subdivision, optionally
//! jittered to spread per-vertex quality, and block-scrambled so the
//! "original" numbering has the moderate locality of a real generator
//! rather than the raw grid's perfect lexicographic order.

use crate::geometry::Point3;
use crate::mesh::TetMesh;
use rand::rngs::SmallRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};

/// The six tetrahedra of the Kuhn subdivision of the unit cube, as corner
/// offsets `(dx, dy, dz)`. All six share the main diagonal `(0,0,0)–(1,1,1)`
/// and triangulate the cube compatibly with its neighbours (each path
/// through the cube corresponds to a permutation of the axes).
const KUHN_TETS: [[(u32, u32, u32); 4]; 6] = [
    [(0, 0, 0), (1, 0, 0), (1, 1, 0), (1, 1, 1)],
    [(0, 0, 0), (1, 0, 0), (1, 0, 1), (1, 1, 1)],
    [(0, 0, 0), (0, 1, 0), (1, 1, 0), (1, 1, 1)],
    [(0, 0, 0), (0, 1, 0), (0, 1, 1), (1, 1, 1)],
    [(0, 0, 0), (0, 0, 1), (1, 0, 1), (1, 1, 1)],
    [(0, 0, 0), (0, 0, 1), (0, 1, 1), (1, 1, 1)],
];

/// Structured tetrahedral grid over the unit box: `nx × ny × nz` cells,
/// each split into 6 tets (Kuhn subdivision). Vertices are numbered
/// lexicographically (x fastest); all tets are positively oriented.
pub fn tet_grid(nx: usize, ny: usize, nz: usize) -> TetMesh {
    assert!(nx >= 1 && ny >= 1 && nz >= 1, "need at least one cell per axis");
    let (px, py, pz) = (nx + 1, ny + 1, nz + 1);
    let vid = |i: usize, j: usize, k: usize| ((k * py + j) * px + i) as u32;

    let mut coords = Vec::with_capacity(px * py * pz);
    for k in 0..pz {
        for j in 0..py {
            for i in 0..px {
                coords.push(Point3::new(
                    i as f64 / nx as f64,
                    j as f64 / ny as f64,
                    k as f64 / nz as f64,
                ));
            }
        }
    }

    let mut tets = Vec::with_capacity(6 * nx * ny * nz);
    for k in 0..nz {
        for j in 0..ny {
            for i in 0..nx {
                for corners in KUHN_TETS {
                    let tet = corners
                        .map(|(dx, dy, dz)| vid(i + dx as usize, j + dy as usize, k + dz as usize));
                    tets.push(tet);
                }
            }
        }
    }
    let mut mesh = TetMesh::new_unchecked(coords, tets);
    mesh.orient_positive();
    mesh
}

/// [`tet_grid`] with interior vertices displaced by a uniform jitter of up
/// to `jitter` × the cell size per axis, plus Gaussian-bump "bad regions"
/// that grade the quality field (mirroring the 2D suite's structure:
/// mostly-good mesh with localised bad patches). Boundary vertices stay
/// put, so the box shape survives and boundary detection is exact.
///
/// `jitter` up to ≈0.45 keeps all tets positively oriented in practice;
/// the constructor re-orients defensively either way.
pub fn perturbed_tet_grid(nx: usize, ny: usize, nz: usize, jitter: f64, seed: u64) -> TetMesh {
    let mut mesh = tet_grid(nx, ny, nz);
    let mut rng = SmallRng::seed_from_u64(seed);
    let cell = Point3::new(1.0 / nx as f64, 1.0 / ny as f64, 1.0 / nz as f64);

    // Bad regions: a few Gaussian bumps that scale the local jitter up.
    let bumps: Vec<(Point3, f64)> = (0..3)
        .map(|_| {
            let c = Point3::new(rng.gen::<f64>(), rng.gen::<f64>(), rng.gen::<f64>());
            let sigma = rng.gen_range(0.08..0.2);
            (c, sigma)
        })
        .collect();

    let boundary = |p: Point3| {
        let eps = 1e-12;
        p.x < eps || p.x > 1.0 - eps || p.y < eps || p.y > 1.0 - eps || p.z < eps || p.z > 1.0 - eps
    };

    for p in mesh.coords_mut() {
        if boundary(*p) {
            continue;
        }
        let bump: f64 = bumps
            .iter()
            .map(|&(c, sigma)| (-(p.dist_sq(c)) / (2.0 * sigma * sigma)).exp())
            .fold(0.0, f64::max);
        let amp = jitter * (0.35 + 0.65 * bump);
        let d = Point3::new(
            rng.gen_range(-1.0..1.0) * amp * cell.x,
            rng.gen_range(-1.0..1.0) * amp * cell.y,
            rng.gen_range(-1.0..1.0) * amp * cell.z,
        );
        *p += d;
    }
    mesh.orient_positive();
    mesh
}

/// Shuffle vertex ids within consecutive blocks of `block` vertices
/// (Fisher–Yates per block), renumbering the mesh accordingly — same
/// rationale as the 2D suite's `ORI_SCRAMBLE_BLOCK`: real generators emit
/// numberings that are globally coherent but locally scrambled.
pub fn block_scramble(mesh: TetMesh, block: usize, seed: u64) -> TetMesh {
    assert!(block >= 1, "block size must be positive");
    let n = mesh.num_vertices();
    let mut rng = SmallRng::seed_from_u64(seed ^ 0x5CA1AB1E);
    let mut new_to_old: Vec<u32> = (0..n as u32).collect();
    for chunk in new_to_old.chunks_mut(block) {
        chunk.shuffle(&mut rng);
    }
    let mut old_to_new = vec![0u32; n];
    for (new, &old) in new_to_old.iter().enumerate() {
        old_to_new[old as usize] = new as u32;
    }
    let (coords, mut tets) = mesh.into_parts();
    let new_coords: Vec<_> = new_to_old.iter().map(|&old| coords[old as usize]).collect();
    for tet in &mut tets {
        for v in tet.iter_mut() {
            *v = old_to_new[*v as usize];
        }
    }
    TetMesh::new_unchecked(new_coords, tets)
}

/// Specification of one 3D evaluation mesh.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Mesh3Spec {
    /// Short label (`T1`…).
    pub label: &'static str,
    /// Human name.
    pub name: &'static str,
    /// Cells per axis at scale 1.
    pub cells: (usize, usize, usize),
    /// Jitter amplitude.
    pub jitter_milli: u32,
}

/// The 3D evaluation suite: three box meshes of increasing size and
/// anisotropy (there is no Table 1 for 3D in the paper — these exercise
/// the §6 conjecture that RDR transfers to LMS extensions).
pub const SUITE3: [Mesh3Spec; 3] = [
    Mesh3Spec { label: "T1", name: "cube", cells: (16, 16, 16), jitter_milli: 350 },
    Mesh3Spec { label: "T2", name: "slab", cells: (32, 32, 6), jitter_milli: 380 },
    Mesh3Spec { label: "T3", name: "beam", cells: (64, 10, 10), jitter_milli: 330 },
];

/// Vertex-numbering block size for the 3D suite's ORI ordering.
pub const ORI3_SCRAMBLE_BLOCK: usize = 256;

/// Generate one suite mesh at `scale`× its cell counts (per axis scale is
/// `scale^(1/3)` so the vertex count grows ≈ linearly with `scale`).
pub fn generate3(spec: &Mesh3Spec, scale: f64) -> TetMesh {
    let s = scale.max(1e-3).cbrt();
    let (nx, ny, nz) = spec.cells;
    let scaled = |n: usize| ((n as f64 * s).round() as usize).max(2);
    let seed =
        0xC0FFEE ^ spec.label.bytes().fold(0u64, |h, b| h.wrapping_mul(131).wrapping_add(b as u64));
    let raw = perturbed_tet_grid(
        scaled(nx),
        scaled(ny),
        scaled(nz),
        spec.jitter_milli as f64 / 1000.0,
        seed,
    );
    block_scramble(raw, ORI3_SCRAMBLE_BLOCK, seed)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tet_grid_counts() {
        let m = tet_grid(3, 2, 4);
        assert_eq!(m.num_vertices(), 4 * 3 * 5);
        assert_eq!(m.num_tets(), 6 * 3 * 2 * 4);
    }

    #[test]
    fn tet_grid_is_positively_oriented_and_fills_the_box() {
        let m = tet_grid(4, 4, 4);
        assert!(m.is_positively_oriented());
        // Kuhn subdivision tiles the cube exactly: total volume = 1.
        assert!((m.total_volume() - 1.0).abs() < 1e-12);
        let (lo, hi) = m.bbox();
        assert_eq!(lo, Point3::ZERO);
        assert_eq!(hi, Point3::new(1.0, 1.0, 1.0));
    }

    #[test]
    fn kuhn_faces_are_conforming() {
        // Every internal face must be shared by exactly two tets: the
        // boundary face count then matches the box-surface formula.
        let m = tet_grid(3, 3, 3);
        let b = crate::boundary::Boundary3::detect(&m);
        assert_eq!(b.num_boundary_faces(), 4 * (9 + 9 + 9));
    }

    #[test]
    fn perturbed_grid_keeps_boundary_and_orientation() {
        let base = tet_grid(6, 6, 6);
        let m = perturbed_tet_grid(6, 6, 6, 0.35, 42);
        assert!(m.is_positively_oriented(), "jitter inverted a tet");
        let b = crate::boundary::Boundary3::detect(&m);
        for &v in &b.boundary_vertices() {
            assert_eq!(m.coords()[v as usize], base.coords()[v as usize]);
        }
        // interior vertices did move
        let moved = b
            .interior_vertices()
            .iter()
            .filter(|&&v| m.coords()[v as usize] != base.coords()[v as usize])
            .count();
        assert_eq!(moved, b.num_interior());
    }

    #[test]
    fn perturbation_is_deterministic_in_seed() {
        let a = perturbed_tet_grid(5, 5, 5, 0.3, 7);
        let b = perturbed_tet_grid(5, 5, 5, 0.3, 7);
        let c = perturbed_tet_grid(5, 5, 5, 0.3, 8);
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn scramble_preserves_geometry() {
        let m = perturbed_tet_grid(5, 5, 5, 0.3, 3);
        let s = block_scramble(m.clone(), 64, 3);
        assert_eq!(s.num_vertices(), m.num_vertices());
        assert_eq!(s.num_tets(), m.num_tets());
        assert!((s.total_volume() - m.total_volume()).abs() < 1e-12);
        assert_eq!(s.edges().len(), m.edges().len());
        assert_ne!(s.coords(), m.coords(), "scramble should move vertex storage");
    }

    #[test]
    fn suite_generates_valid_meshes() {
        for spec in &SUITE3 {
            let m = generate3(spec, 0.05);
            assert!(m.num_vertices() > 50, "{}", spec.name);
            assert!(m.is_positively_oriented(), "{}", spec.name);
        }
    }

    #[test]
    fn scale_grows_vertex_count() {
        let small = generate3(&SUITE3[0], 0.02);
        let big = generate3(&SUITE3[0], 0.16);
        assert!(big.num_vertices() > 4 * small.num_vertices());
    }
}
