//! The tetrahedral [`SmoothDomain`] implementation — what plugs `TetMesh`
//! into `lms-smooth`'s dimension-generic engine stack — plus the 3D
//! geometric partitioners feeding [`lms_part::Partition`].
//!
//! [`TetDomain`] is the 3D twin of `lms_smooth::TriDomain`: a borrowed
//! (adjacency, boundary, connectivity, metric) bundle. With it, the
//! serial incremental kernel, the colored parallel engine, and the
//! partitioned/resident halo-exchange engines all run on tetrahedral
//! meshes from the **same generic sweep bodies** as the 2D engines — no
//! copied code, and the bit-identity arguments (same-class vertices share
//! no element; part interiors have fully-owned 1-rings) carry over
//! verbatim because a tet's four corners are mutually adjacent.
//!
//! Partitioning reuses `lms_order::rcb_parts_nd` on 3-component
//! coordinates and this crate's 3D Hilbert/Morton curves through
//! `lms_part::sfc_chunk_assignment`, so [`partition_tet_mesh`] accepts
//! the same [`PartitionMethod`] menu as the 2D decompositions.

use crate::adjacency::Adjacency3;
use crate::boundary::Boundary3;
use crate::geometry::{edge_lengths, signed_volume, Point3};
use crate::mesh::TetMesh;
use crate::quality::{edge_length_ratio_from_lengths, TetQualityMetric};
use crate::sfc::{hilbert3_ordering, morton3_ordering};
use lms_order::{rcb_parts_nd, rcb_parts_weighted_nd};
use lms_part::{sfc_chunk_assignment, Partition, PartitionMethod};
use lms_smooth::domain::{DomainPoint, SmoothDomain};
use lms_smooth::soa::{SoaCoords, LANES};

impl DomainPoint for Point3 {
    const ZERO: Self = Point3::ZERO;
    const DIM: usize = 3;

    #[inline]
    fn push_components(self, out: &mut Vec<f64>) {
        out.push(self.x);
        out.push(self.y);
        out.push(self.z);
    }

    #[inline]
    fn from_components(comps: &[f64]) -> Self {
        Point3::new(comps[0], comps[1], comps[2])
    }

    #[inline]
    fn component(self, d: usize) -> f64 {
        match d {
            0 => self.x,
            1 => self.y,
            _ => self.z,
        }
    }

    #[inline]
    fn padd(self, other: Self) -> Self {
        self + other
    }

    #[inline]
    fn pscale(self, s: f64) -> Self {
        self * s
    }

    #[inline]
    fn pdiv(self, s: f64) -> Self {
        self / s
    }

    #[inline]
    fn pdist(self, other: Self) -> f64 {
        self.dist(other)
    }
}

/// The tetrahedral domain view: borrowed adjacency + boundary +
/// connectivity + metric. [`crate::SmoothEngine3`] and the 3D
/// partitioned/resident engines build one per call.
#[derive(Debug, Clone, Copy)]
pub struct TetDomain<'a> {
    adj: &'a Adjacency3,
    boundary: &'a Boundary3,
    tets: &'a [[u32; 4]],
    metric: TetQualityMetric,
}

impl<'a> TetDomain<'a> {
    /// Bundle a tet mesh's precomputed topology into a domain view.
    pub fn new(
        adj: &'a Adjacency3,
        boundary: &'a Boundary3,
        tets: &'a [[u32; 4]],
        metric: TetQualityMetric,
    ) -> Self {
        TetDomain { adj, boundary, tets, metric }
    }
}

impl SmoothDomain<4> for TetDomain<'_> {
    type Point = Point3;
    type Soa = SoaCoords<3>;

    #[inline]
    fn num_vertices(&self) -> usize {
        self.adj.num_vertices()
    }

    #[inline]
    fn elements(&self) -> &[[u32; 4]] {
        self.tets
    }

    #[inline]
    fn neighbors(&self, v: u32) -> &[u32] {
        self.adj.neighbors(v)
    }

    #[inline]
    fn elements_of(&self, v: u32) -> &[u32] {
        self.adj.tets_of(v)
    }

    #[inline]
    fn elements_offset(&self, v: u32) -> usize {
        self.adj.tets_offset(v)
    }

    #[inline]
    fn is_interior(&self, v: u32) -> bool {
        self.boundary.is_interior(v)
    }

    #[inline]
    fn score_points(&self, p: [Point3; 4]) -> (f64, bool) {
        (
            self.metric.tet_quality(p[0], p[1], p[2], p[3]),
            signed_volume(p[0], p[1], p[2], p[3]) > 0.0,
        )
    }

    fn score_batch(&self, coords: &SoaCoords<3>, rows: &[[u32; 4]], out: &mut [(f64, bool)]) {
        debug_assert_eq!(rows.len(), out.len());
        match self.metric {
            TetQualityMetric::EdgeLengthRatio => tet_elr_batch(coords, rows, out),
            // ablation metrics: per-lane scalar sequence, metric dispatch
            // hoisted out of the element loop
            _ => {
                let (xs, ys, zs) = (coords.axis(0), coords.axis(1), coords.axis(2));
                let at = |i: u32| Point3::new(xs[i as usize], ys[i as usize], zs[i as usize]);
                for (slot, &[ia, ib, ic, id]) in out.iter_mut().zip(rows) {
                    *slot = self.score_points([at(ia), at(ib), at(ic), at(id)]);
                }
            }
        }
    }
}

/// Lane-batched tetrahedral edge-length-ratio scoring over SoA columns:
/// fixed [`LANES`]-wide blocks with a scalar tail, each lane running the
/// exact scalar sequence of `TetQualityMetric::tet_quality` (via the
/// shared [`edge_length_ratio_from_lengths`] core) plus the
/// `signed_volume > 0` orientation test — bit-identical to the
/// per-element path by construction.
fn tet_elr_batch(coords: &SoaCoords<3>, rows: &[[u32; 4]], out: &mut [(f64, bool)]) {
    #[inline(always)]
    fn lane(xs: &[f64], ys: &[f64], zs: &[f64], [ia, ib, ic, id]: [u32; 4]) -> (f64, bool) {
        let a = Point3::new(xs[ia as usize], ys[ia as usize], zs[ia as usize]);
        let b = Point3::new(xs[ib as usize], ys[ib as usize], zs[ib as usize]);
        let c = Point3::new(xs[ic as usize], ys[ic as usize], zs[ic as usize]);
        let d = Point3::new(xs[id as usize], ys[id as usize], zs[id as usize]);
        (edge_length_ratio_from_lengths(edge_lengths(a, b, c, d)), signed_volume(a, b, c, d) > 0.0)
    }
    let (xs, ys, zs) = (coords.axis(0), coords.axis(1), coords.axis(2));
    let main = rows.len() - rows.len() % LANES;
    let (rows_main, rows_tail) = rows.split_at(main);
    let (out_main, out_tail) = out.split_at_mut(main);
    for (block, slots) in rows_main.chunks_exact(LANES).zip(out_main.chunks_exact_mut(LANES)) {
        let mut q = [0.0f64; LANES];
        let mut pos = [false; LANES];
        for l in 0..LANES {
            (q[l], pos[l]) = lane(xs, ys, zs, block[l]);
        }
        for l in 0..LANES {
            slots[l] = (q[l], pos[l]);
        }
    }
    for (slot, &row) in out_tail.iter_mut().zip(rows_tail) {
        *slot = lane(xs, ys, zs, row);
    }
}

/// Per-vertex volume weights: each vertex receives one quarter of the
/// absolute volume of every incident tetrahedron (the barycentric lumping
/// of the mesh volume) — the 3D twin of `lms_part::vertex_area_weights`,
/// and the input of [`PartitionMethod::RcbWeighted`] under
/// [`partition_tet_mesh`].
pub fn vertex_volume_weights(mesh: &TetMesh, adj: &Adjacency3) -> Vec<f64> {
    let tet_vol: Vec<f64> = (0..mesh.num_tets())
        .map(|t| {
            let [a, b, c, d] = mesh.tet_coords(t);
            signed_volume(a, b, c, d).abs() / 4.0
        })
        .collect();
    (0..mesh.num_vertices() as u32)
        .map(|v| adj.tets_of(v).iter().map(|&t| tet_vol[t as usize]).sum())
        .collect()
}

/// Compute the per-vertex part assignment of `method` for a 3D point set:
/// k-way RCB on the 3-component coordinates, or balanced chunking of the
/// 3D Hilbert/Morton curve orders.
pub fn partition_coords3(coords: &[Point3], num_parts: usize, method: PartitionMethod) -> Vec<u32> {
    assert!(num_parts >= 1, "need at least one part");
    if coords.is_empty() {
        return Vec::new();
    }
    match method {
        PartitionMethod::Rcb => {
            let nd: Vec<[f64; 3]> = coords.iter().map(|p| [p.x, p.y, p.z]).collect();
            rcb_parts_nd(&nd, num_parts)
        }
        // no mesh in sight: uniform weights, i.e. exactly Rcb
        PartitionMethod::RcbWeighted => {
            let nd: Vec<[f64; 3]> = coords.iter().map(|p| [p.x, p.y, p.z]).collect();
            rcb_parts_nd(&nd, num_parts)
        }
        PartitionMethod::Hilbert => sfc_chunk_assignment(&hilbert3_ordering(coords), num_parts),
        PartitionMethod::Morton => sfc_chunk_assignment(&morton3_ordering(coords), num_parts),
    }
}

/// Partition a tetrahedral mesh into `num_parts` parts with `method`,
/// building the full interface/halo decomposition over the 3D adjacency
/// — the tetrahedral twin of `lms_part::partition_mesh`, landing in the
/// same dimension-generic [`Partition`] (and hence the same
/// `ExchangeSchedule`).
pub fn partition_tet_mesh(
    mesh: &TetMesh,
    adj: &Adjacency3,
    num_parts: usize,
    method: PartitionMethod,
) -> Partition {
    let assignment = if method == PartitionMethod::RcbWeighted {
        let weights = vertex_volume_weights(mesh, adj);
        let nd: Vec<[f64; 3]> = mesh.coords().iter().map(|p| [p.x, p.y, p.z]).collect();
        rcb_parts_weighted_nd(&nd, &weights, num_parts)
    } else {
        partition_coords3(mesh.coords(), num_parts, method)
    };
    Partition::from_assignment(adj, assignment, num_parts as u32)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators::perturbed_tet_grid;
    use crate::quality::mesh_quality;

    #[test]
    fn tet_domain_quality_matches_mesh_quality_bitwise() {
        let m = perturbed_tet_grid(6, 5, 7, 0.35, 3);
        let adj = Adjacency3::build(&m);
        let b = Boundary3::detect(&m);
        let dom = TetDomain::new(&adj, &b, m.tets(), TetQualityMetric::EdgeLengthRatio);
        let generic = lms_smooth::domain_quality(&dom, m.coords());
        let concrete = mesh_quality(&m, &adj, TetQualityMetric::EdgeLengthRatio);
        assert_eq!(generic.to_bits(), concrete.to_bits());
    }

    #[test]
    fn partitions_are_balanced_and_cover() {
        let m = perturbed_tet_grid(7, 6, 5, 0.3, 9);
        let adj = Adjacency3::build(&m);
        for method in PartitionMethod::ALL {
            for k in [1usize, 2, 5, 8] {
                let p = partition_tet_mesh(&m, &adj, k, method);
                assert_eq!(p.len(), m.num_vertices(), "{} k={k}", method.name());
                let mut sizes = vec![0usize; k];
                for v in 0..m.num_vertices() as u32 {
                    sizes[p.part_of(v) as usize] += 1;
                }
                if method != PartitionMethod::RcbWeighted {
                    let (lo, hi) = (*sizes.iter().min().unwrap(), *sizes.iter().max().unwrap());
                    assert!(hi - lo <= 1, "{} k={k}: sizes {sizes:?}", method.name());
                }
            }
        }
    }

    #[test]
    fn rcb3_parts_are_geometric_blobs() {
        // a long thin bar (x span ≫ y, z spans) must be sliced along x:
        // part id monotone in x
        let coords: Vec<Point3> = (0..128)
            .map(|i| Point3::new(i as f64, (i % 3) as f64 * 0.05, (i % 5) as f64 * 0.04))
            .collect();
        let part = partition_coords3(&coords, 4, PartitionMethod::Rcb);
        let mut labelled: Vec<(f64, u32)> =
            coords.iter().zip(&part).map(|(p, &q)| (p.x, q)).collect();
        labelled.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap());
        for w in labelled.windows(2) {
            assert!(w[0].1 <= w[1].1, "part ids not monotone along the bar");
        }
    }

    #[test]
    fn weighted_rcb3_equals_rcb3_on_uniform_grids() {
        // zero jitter → all tets congruent → (nearly) uniform weights; we
        // assert only the API path: uniform point API degenerates to Rcb
        let m = perturbed_tet_grid(6, 6, 6, 0.25, 4);
        assert_eq!(
            partition_coords3(m.coords(), 6, PartitionMethod::RcbWeighted),
            partition_coords3(m.coords(), 6, PartitionMethod::Rcb),
        );
    }
}
