//! Vertex reorderings for tetrahedral meshes.
//!
//! Thin 3D front end over the graph-generic cores of [`lms_order::graph`]:
//! everything RDR needs — an adjacency structure, interior flags, and
//! per-vertex qualities — exists for [`TetMesh`], so Algorithm 2 runs
//! unchanged. This is the machinery behind the §6 conjecture experiment
//! (`lms-exp tet`).

use crate::adjacency::Adjacency3;
use crate::boundary::Boundary3;
use crate::mesh::TetMesh;
use crate::quality::{vertex_qualities, TetQualityMetric};
use lms_order::graph::{
    bfs_ordering_on, bfs_reversed_ordering_on, dfs_ordering_on, rcm_ordering_on, rdr_ordering_on,
};
use lms_order::rdr::RdrOptions;
use lms_order::{random_ordering, Permutation};

/// The orderings evaluated on tetrahedral meshes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OrderingKind3 {
    /// Keep the generator's numbering (ORI).
    Original,
    /// Uniform random shuffle with the given seed.
    Random {
        /// RNG seed.
        seed: u64,
    },
    /// Breadth-first search from vertex 0 (Strout & Hovland).
    Bfs,
    /// Reversed BFS (Munson & Hovland).
    BfsReversed,
    /// Depth-first search from vertex 0.
    Dfs,
    /// Reverse Cuthill–McKee.
    Rcm,
    /// 3D Hilbert space-filling curve.
    Hilbert,
    /// 3D Morton (Z-order) curve.
    Morton,
    /// Reuse-Distance-Reducing ordering (Algorithm 2).
    Rdr,
}

impl OrderingKind3 {
    /// Short lowercase name used in reports and CLI arguments.
    pub fn name(self) -> &'static str {
        match self {
            OrderingKind3::Original => "ori",
            OrderingKind3::Random { .. } => "random",
            OrderingKind3::Bfs => "bfs",
            OrderingKind3::BfsReversed => "bfsrev",
            OrderingKind3::Dfs => "dfs",
            OrderingKind3::Rcm => "rcm",
            OrderingKind3::Hilbert => "hilbert",
            OrderingKind3::Morton => "morton",
            OrderingKind3::Rdr => "rdr",
        }
    }

    /// Parse a CLI name; `random` gets seed 0.
    pub fn parse(name: &str) -> Option<OrderingKind3> {
        Some(match name.to_ascii_lowercase().as_str() {
            "ori" | "original" => OrderingKind3::Original,
            "random" | "rand" => OrderingKind3::Random { seed: 0 },
            "bfs" => OrderingKind3::Bfs,
            "bfsrev" | "rbfs" => OrderingKind3::BfsReversed,
            "dfs" => OrderingKind3::Dfs,
            "rcm" => OrderingKind3::Rcm,
            "hilbert" | "sfc" => OrderingKind3::Hilbert,
            "morton" | "zorder" => OrderingKind3::Morton,
            "rdr" => OrderingKind3::Rdr,
            _ => return None,
        })
    }

    /// The paper's main trio, 3D edition.
    pub const PAPER_TRIO: [OrderingKind3; 3] =
        [OrderingKind3::Original, OrderingKind3::Bfs, OrderingKind3::Rdr];

    /// Every 3D ordering, with `random` at seed 0.
    pub const ALL: [OrderingKind3; 9] = [
        OrderingKind3::Original,
        OrderingKind3::Random { seed: 0 },
        OrderingKind3::Bfs,
        OrderingKind3::BfsReversed,
        OrderingKind3::Dfs,
        OrderingKind3::Rcm,
        OrderingKind3::Hilbert,
        OrderingKind3::Morton,
        OrderingKind3::Rdr,
    ];
}

/// RDR (Algorithm 2) on a tetrahedral mesh with explicit inputs.
pub fn rdr_ordering3_with(
    adj: &Adjacency3,
    boundary: &Boundary3,
    quality: &[f64],
    options: &RdrOptions,
) -> Permutation {
    rdr_ordering_on(adj, &boundary.interior_flags(), quality, options)
}

/// Paper-default RDR on a tetrahedral mesh (edge-length-ratio qualities).
pub fn rdr_ordering3(mesh: &TetMesh) -> Permutation {
    let adj = Adjacency3::build(mesh);
    let boundary = Boundary3::detect(mesh);
    let quality = vertex_qualities(mesh, &adj, TetQualityMetric::EdgeLengthRatio);
    rdr_ordering3_with(&adj, &boundary, &quality, &RdrOptions::default())
}

/// Compute the permutation of `kind` for `mesh`, reusing a prebuilt
/// adjacency.
pub fn compute_ordering3_with(
    mesh: &TetMesh,
    adj: &Adjacency3,
    kind: OrderingKind3,
) -> Permutation {
    match kind {
        OrderingKind3::Original => Permutation::identity(mesh.num_vertices()),
        OrderingKind3::Random { seed } => random_ordering(mesh.num_vertices(), seed),
        OrderingKind3::Bfs => bfs_ordering_on(adj, 0),
        OrderingKind3::BfsReversed => bfs_reversed_ordering_on(adj, 0),
        OrderingKind3::Dfs => dfs_ordering_on(adj, 0),
        OrderingKind3::Rcm => rcm_ordering_on(adj),
        OrderingKind3::Hilbert => crate::sfc::hilbert3_ordering(mesh.coords()),
        OrderingKind3::Morton => crate::sfc::morton3_ordering(mesh.coords()),
        OrderingKind3::Rdr => {
            let boundary = Boundary3::detect(mesh);
            let quality = vertex_qualities(mesh, adj, TetQualityMetric::EdgeLengthRatio);
            rdr_ordering3_with(adj, &boundary, &quality, &RdrOptions::default())
        }
    }
}

/// Compute the permutation of `kind` for `mesh`.
pub fn compute_ordering3(mesh: &TetMesh, kind: OrderingKind3) -> Permutation {
    match kind {
        OrderingKind3::Original => Permutation::identity(mesh.num_vertices()),
        OrderingKind3::Random { seed } => random_ordering(mesh.num_vertices(), seed),
        OrderingKind3::Hilbert => crate::sfc::hilbert3_ordering(mesh.coords()),
        OrderingKind3::Morton => crate::sfc::morton3_ordering(mesh.coords()),
        _ => {
            let adj = Adjacency3::build(mesh);
            compute_ordering3_with(mesh, &adj, kind)
        }
    }
}

/// Renumber a tetrahedral mesh by `perm`: permutes the coordinate array and
/// rewrites every tet's indices. Geometry and connectivity are unchanged —
/// only the storage order moves.
pub fn apply_permutation3(perm: &Permutation, mesh: &TetMesh) -> TetMesh {
    assert_eq!(perm.len(), mesh.num_vertices(), "permutation length must match vertex count");
    let coords = perm.new_to_old().iter().map(|&old| mesh.coords()[old as usize]).collect();
    let old_to_new = perm.old_to_new();
    let tets = mesh.tets().iter().map(|tet| tet.map(|v| old_to_new[v as usize])).collect();
    TetMesh::new_unchecked(coords, tets)
}

/// Mean index span between a vertex and its neighbours — the scalar layout
/// statistic the 2D experiments use to rank orderings without running the
/// cache simulator.
pub fn mean_neighbor_span3(adj: &Adjacency3) -> f64 {
    let n = adj.num_vertices();
    if n == 0 {
        return 0.0;
    }
    let mut total = 0.0f64;
    let mut count = 0u64;
    for v in 0..n as u32 {
        for &w in adj.neighbors(v) {
            total += (v as i64 - w as i64).unsigned_abs() as f64;
            count += 1;
        }
    }
    if count == 0 {
        0.0
    } else {
        total / count as f64
    }
}

/// One serial smoothing sweep's access trace (vertex, then its neighbours,
/// interior vertices in storage order) — the stream `lms-cache` analyses.
pub fn sweep_trace3(adj: &Adjacency3, boundary: &Boundary3) -> Vec<u32> {
    let mut trace = Vec::new();
    for v in 0..adj.num_vertices() as u32 {
        if !boundary.is_interior(v) {
            continue;
        }
        let ns = adj.neighbors(v);
        if ns.is_empty() {
            continue;
        }
        trace.push(v);
        trace.extend_from_slice(ns);
    }
    trace
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators::{block_scramble, perturbed_tet_grid};

    fn test_mesh() -> TetMesh {
        block_scramble(perturbed_tet_grid(8, 8, 8, 0.35, 3), 64, 3)
    }

    #[test]
    fn all_kinds_produce_valid_permutations() {
        let m = test_mesh();
        for kind in OrderingKind3::ALL {
            let p = compute_ordering3(&m, kind);
            assert_eq!(p.len(), m.num_vertices(), "{}", kind.name());
            let mut ids = p.new_to_old().to_vec();
            ids.sort_unstable();
            assert!(ids.windows(2).all(|w| w[1] == w[0] + 1), "{} not bijective", kind.name());
        }
    }

    #[test]
    fn with_and_without_adjacency_agree() {
        let m = test_mesh();
        let adj = Adjacency3::build(&m);
        for kind in OrderingKind3::ALL {
            assert_eq!(
                compute_ordering3(&m, kind),
                compute_ordering3_with(&m, &adj, kind),
                "{}",
                kind.name()
            );
        }
    }

    #[test]
    fn parse_roundtrips_names() {
        for kind in OrderingKind3::ALL {
            assert_eq!(OrderingKind3::parse(kind.name()), Some(kind));
        }
        assert_eq!(OrderingKind3::parse("nope"), None);
    }

    #[test]
    fn apply_permutation_preserves_geometry() {
        let m = test_mesh();
        let p = compute_ordering3(&m, OrderingKind3::Rdr);
        let rm = apply_permutation3(&p, &m);
        assert_eq!(rm.num_vertices(), m.num_vertices());
        assert_eq!(rm.num_tets(), m.num_tets());
        assert!((rm.total_volume() - m.total_volume()).abs() < 1e-10);
        assert_eq!(rm.edges().len(), m.edges().len());
    }

    #[test]
    fn locality_ranking_matches_paper_in_3d() {
        // random ≫ ori; bfs, rcm and rdr all far below random.
        let m = test_mesh();
        let span = |kind| {
            let p = compute_ordering3(&m, kind);
            let rm = apply_permutation3(&p, &m);
            mean_neighbor_span3(&Adjacency3::build(&rm))
        };
        let ori = span(OrderingKind3::Original);
        let rnd = span(OrderingKind3::Random { seed: 1 });
        let bfs = span(OrderingKind3::Bfs);
        let rdr = span(OrderingKind3::Rdr);
        assert!(rnd > 2.0 * ori, "random {rnd} vs ori {ori}");
        assert!(bfs < rnd && rdr < rnd, "bfs {bfs} rdr {rdr} random {rnd}");
    }

    #[test]
    fn rdr_starts_from_a_worst_bin_interior_vertex() {
        let m = test_mesh();
        let adj = Adjacency3::build(&m);
        let boundary = Boundary3::detect(&m);
        let q = vertex_qualities(&m, &adj, TetQualityMetric::EdgeLengthRatio);
        let opts = RdrOptions { quality_bins: None, ..Default::default() };
        let p = rdr_ordering3_with(&adj, &boundary, &q, &opts);
        let first = p.new_to_old()[0];
        assert!(boundary.is_interior(first));
        let worst = (0..m.num_vertices() as u32)
            .filter(|&v| boundary.is_interior(v))
            .min_by(|&a, &b| q[a as usize].partial_cmp(&q[b as usize]).unwrap())
            .unwrap();
        assert_eq!(q[first as usize], q[worst as usize]);
    }

    #[test]
    fn sweep_trace_covers_interior_vertices() {
        let m = test_mesh();
        let adj = Adjacency3::build(&m);
        let b = Boundary3::detect(&m);
        let trace = sweep_trace3(&adj, &b);
        let expected: usize = b.interior_vertices().iter().map(|&v| 1 + adj.degree(v)).sum();
        assert_eq!(trace.len(), expected);
    }

    #[test]
    fn rdr_reduces_reuse_distance_vs_random_in_3d() {
        // The headline mechanism, 3D edition: mean reuse distance of the
        // sweep trace under RDR must be far below RANDOM and below ORI.
        use lms_cache::reuse::{ReuseDistanceAnalyzer, ReuseStats};
        let m = test_mesh();
        let mean_rd = |kind| {
            let p = compute_ordering3(&m, kind);
            let rm = apply_permutation3(&p, &m);
            let adj = Adjacency3::build(&rm);
            let b = Boundary3::detect(&rm);
            let trace = sweep_trace3(&adj, &b);
            let d = ReuseDistanceAnalyzer::analyze(&trace, rm.num_vertices());
            ReuseStats::from_distances(&d).mean
        };
        let rnd = mean_rd(OrderingKind3::Random { seed: 1 });
        let ori = mean_rd(OrderingKind3::Original);
        let rdr = mean_rd(OrderingKind3::Rdr);
        assert!(rdr < ori, "rdr {rdr} must beat ori {ori}");
        assert!(rdr < rnd / 4.0, "rdr {rdr} must crush random {rnd}");
    }
}
