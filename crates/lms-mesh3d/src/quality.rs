//! Tetrahedron quality metrics.
//!
//! The 3D analogues of the paper's edge-length-ratio metric (plus two
//! standard shape metrics), all normalised to `(0, 1]` with 1 attained by
//! the regular tetrahedron and 0 by degenerate elements.

use crate::adjacency::Adjacency3;
use crate::geometry::{circumradius, edge_lengths, inradius, volume, Point3};
use crate::mesh::TetMesh;

/// Quality metric for a single tetrahedron.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TetQualityMetric {
    /// Minimum edge length over maximum edge length — the direct 3D
    /// analogue of the paper's 2D metric (§3.2).
    EdgeLengthRatio,
    /// `3 · inradius / circumradius`: 1 for the regular tet, →0 for slivers.
    RadiusRatio,
    /// Mean ratio: `12 · (3V)^(2/3) / Σ ℓ²` — the algebraic shape metric of
    /// Knupp's framework \[7\], sensitive to both stretching and flattening.
    MeanRatio,
}

impl TetQualityMetric {
    /// Quality of tetrahedron `(a, b, c, d)`, in `[0, 1]`.
    pub fn tet_quality(self, a: Point3, b: Point3, c: Point3, d: Point3) -> f64 {
        match self {
            TetQualityMetric::EdgeLengthRatio => {
                edge_length_ratio_from_lengths(edge_lengths(a, b, c, d))
            }
            TetQualityMetric::RadiusRatio => {
                let r = inradius(a, b, c, d);
                match circumradius(a, b, c, d) {
                    Some(cr) if cr > 0.0 => (3.0 * r / cr).clamp(0.0, 1.0),
                    _ => 0.0,
                }
            }
            TetQualityMetric::MeanRatio => {
                let v = volume(a, b, c, d);
                let sum_sq: f64 = edge_lengths(a, b, c, d).iter().map(|l| l * l).sum();
                if sum_sq <= 0.0 {
                    0.0
                } else {
                    (12.0 * (3.0 * v).powf(2.0 / 3.0) / sum_sq).clamp(0.0, 1.0)
                }
            }
        }
    }

    /// Short lowercase name used in reports and CLI arguments.
    pub fn name(self) -> &'static str {
        match self {
            TetQualityMetric::EdgeLengthRatio => "edge-ratio",
            TetQualityMetric::RadiusRatio => "radius-ratio",
            TetQualityMetric::MeanRatio => "mean-ratio",
        }
    }
}

/// The tetrahedral edge-length-ratio core on precomputed edge lengths —
/// the one expression both the scalar metric and `lms-smooth`'s
/// lane-batched SoA scoring run (fold orders fixed: `min` seeded with
/// `+∞`, `max` seeded with `0`), so the two stay bit-identical by
/// construction. The degenerate case is a select, keeping the expression
/// lane-vectorizable.
#[inline(always)]
pub fn edge_length_ratio_from_lengths(ls: [f64; 6]) -> f64 {
    let min = ls.iter().fold(f64::INFINITY, |m, &l| m.min(l));
    let max = ls.iter().fold(0.0f64, |m, &l| m.max(l));
    let ratio = min / max;
    if max <= 0.0 || !min.is_finite() {
        0.0
    } else {
        ratio
    }
}

/// Quality of every tetrahedron under `metric`.
pub fn tet_qualities(mesh: &TetMesh, metric: TetQualityMetric) -> Vec<f64> {
    (0..mesh.num_tets())
        .map(|t| {
            let [a, b, c, d] = mesh.tet_coords(t);
            metric.tet_quality(a, b, c, d)
        })
        .collect()
}

/// Per-vertex quality: the mean quality of the tets incident to each vertex
/// (vertices with no incident tet score 0), exactly mirroring the paper's
/// per-vertex definition.
pub fn vertex_qualities(mesh: &TetMesh, adj: &Adjacency3, metric: TetQualityMetric) -> Vec<f64> {
    let tq = tet_qualities(mesh, metric);
    (0..mesh.num_vertices() as u32)
        .map(|v| {
            let ts = adj.tets_of(v);
            if ts.is_empty() {
                0.0
            } else {
                ts.iter().map(|&t| tq[t as usize]).sum::<f64>() / ts.len() as f64
            }
        })
        .collect()
}

/// Global mesh quality: the mean of the per-vertex qualities.
pub fn mesh_quality(mesh: &TetMesh, adj: &Adjacency3, metric: TetQualityMetric) -> f64 {
    let vq = vertex_qualities(mesh, adj, metric);
    if vq.is_empty() {
        0.0
    } else {
        vq.iter().sum::<f64>() / vq.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mesh::corner_tet;

    fn regular_tet() -> [Point3; 4] {
        let s = 1.0 / 2f64.sqrt();
        [
            Point3::new(1.0, 0.0, -s) * 0.5,
            Point3::new(-1.0, 0.0, -s) * 0.5,
            Point3::new(0.0, 1.0, s) * 0.5,
            Point3::new(0.0, -1.0, s) * 0.5,
        ]
    }

    #[test]
    fn regular_tet_scores_one_on_all_metrics() {
        let [a, b, c, d] = regular_tet();
        for metric in [
            TetQualityMetric::EdgeLengthRatio,
            TetQualityMetric::RadiusRatio,
            TetQualityMetric::MeanRatio,
        ] {
            let q = metric.tet_quality(a, b, c, d);
            assert!((q - 1.0).abs() < 1e-9, "{}: {q}", metric.name());
        }
    }

    #[test]
    fn degenerate_tet_scores_zero() {
        // Four coplanar points.
        let a = Point3::ZERO;
        let b = Point3::new(1.0, 0.0, 0.0);
        let c = Point3::new(0.0, 1.0, 0.0);
        let d = Point3::new(1.0, 1.0, 0.0);
        assert_eq!(TetQualityMetric::RadiusRatio.tet_quality(a, b, c, d), 0.0);
        assert_eq!(TetQualityMetric::MeanRatio.tet_quality(a, b, c, d), 0.0);
        // Edge ratio is a pure length metric: coplanarity does not zero it,
        // only collapsing an edge does.
        assert!(TetQualityMetric::EdgeLengthRatio.tet_quality(a, b, c, d) > 0.0);
        assert_eq!(TetQualityMetric::EdgeLengthRatio.tet_quality(a, a, c, d), 0.0);
    }

    #[test]
    fn sliver_scores_low_on_shape_metrics() {
        // Near-coplanar sliver: good edge lengths, terrible shape.
        let a = Point3::ZERO;
        let b = Point3::new(1.0, 0.0, 0.0);
        let c = Point3::new(0.0, 1.0, 0.0);
        let d = Point3::new(1.0, 1.0, 0.01);
        assert!(TetQualityMetric::RadiusRatio.tet_quality(a, b, c, d) < 0.1);
        assert!(TetQualityMetric::MeanRatio.tet_quality(a, b, c, d) < 0.1);
    }

    #[test]
    fn quality_is_scale_invariant() {
        let [a, b, c, d] = regular_tet();
        for metric in [
            TetQualityMetric::EdgeLengthRatio,
            TetQualityMetric::RadiusRatio,
            TetQualityMetric::MeanRatio,
        ] {
            let q1 = metric.tet_quality(a, b, c, d);
            let q2 = metric.tet_quality(a * 7.5, b * 7.5, c * 7.5, d * 7.5);
            assert!((q1 - q2).abs() < 1e-9, "{} not scale invariant", metric.name());
        }
    }

    #[test]
    fn corner_tet_quality_between_zero_and_one() {
        let m = corner_tet();
        let adj = Adjacency3::build(&m);
        for metric in [
            TetQualityMetric::EdgeLengthRatio,
            TetQualityMetric::RadiusRatio,
            TetQualityMetric::MeanRatio,
        ] {
            let q = mesh_quality(&m, &adj, metric);
            assert!(q > 0.0 && q < 1.0, "{}: {q}", metric.name());
        }
    }

    #[test]
    fn vertex_quality_is_mean_of_incident_tets() {
        let m = corner_tet();
        let adj = Adjacency3::build(&m);
        let tq = tet_qualities(&m, TetQualityMetric::MeanRatio);
        let vq = vertex_qualities(&m, &adj, TetQualityMetric::MeanRatio);
        // single tet: every vertex quality equals the tet quality
        for q in vq {
            assert!((q - tq[0]).abs() < 1e-15);
        }
    }
}
