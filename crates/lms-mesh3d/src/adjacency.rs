//! CSR adjacency for tetrahedral meshes.
//!
//! Mirrors [`lms_mesh::Adjacency`]: vertex→vertex neighbour lists (sorted,
//! deduplicated) drive the smoothing sweep and the orderings; vertex→tet
//! incidence drives quality evaluation. Implements [`lms_order::Graph`]
//! so every graph-generic ordering core (BFS, DFS, RCM, RDR, …) runs on
//! tetrahedral meshes unchanged.

use crate::mesh::TetMesh;

/// CSR vertex→vertex and vertex→tetrahedron adjacency.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Adjacency3 {
    vv_offsets: Vec<u32>,
    vv_neighbors: Vec<u32>,
    vt_offsets: Vec<u32>,
    vt_tets: Vec<u32>,
}

impl Adjacency3 {
    /// Build the adjacency of `mesh`.
    ///
    /// Neighbour lists are sorted ascending and deduplicated; tet lists are
    /// sorted ascending.
    pub fn build(mesh: &TetMesh) -> Self {
        let n = mesh.num_vertices();
        let nt = mesh.num_tets();

        // vertex -> tets (counting sort into CSR).
        let mut vt_offsets = vec![0u32; n + 1];
        for tet in mesh.tets() {
            for &v in tet {
                vt_offsets[v as usize + 1] += 1;
            }
        }
        for i in 0..n {
            vt_offsets[i + 1] += vt_offsets[i];
        }
        let mut vt_tets = vec![0u32; 4 * nt];
        let mut cursor = vt_offsets.clone();
        for (t, tet) in mesh.tets().iter().enumerate() {
            for &v in tet {
                let c = &mut cursor[v as usize];
                vt_tets[*c as usize] = t as u32;
                *c += 1;
            }
        }

        // vertex -> vertices: directed edge pairs, sorted, deduplicated.
        let mut pairs = Vec::with_capacity(12 * nt);
        for tet in mesh.tets() {
            for i in 0..4 {
                for j in 0..4 {
                    if i != j {
                        pairs.push((tet[i], tet[j]));
                    }
                }
            }
        }
        pairs.sort_unstable();
        pairs.dedup();

        let mut vv_offsets = vec![0u32; n + 1];
        for &(a, _) in &pairs {
            vv_offsets[a as usize + 1] += 1;
        }
        for i in 0..n {
            vv_offsets[i + 1] += vv_offsets[i];
        }
        let vv_neighbors = pairs.into_iter().map(|(_, b)| b).collect();

        Adjacency3 { vv_offsets, vv_neighbors, vt_offsets, vt_tets }
    }

    /// Number of vertices the adjacency was built for.
    #[inline]
    pub fn num_vertices(&self) -> usize {
        self.vv_offsets.len() - 1
    }

    /// Sorted neighbour vertices of `v`.
    #[inline]
    pub fn neighbors(&self, v: u32) -> &[u32] {
        let lo = self.vv_offsets[v as usize] as usize;
        let hi = self.vv_offsets[v as usize + 1] as usize;
        &self.vv_neighbors[lo..hi]
    }

    /// Sorted incident tetrahedra of `v`.
    #[inline]
    pub fn tets_of(&self, v: u32) -> &[u32] {
        let lo = self.vt_offsets[v as usize] as usize;
        let hi = self.vt_offsets[v as usize + 1] as usize;
        &self.vt_tets[lo..hi]
    }

    /// Flat offset of `v`'s incident-tet row in the CSR storage — lets
    /// star-layout consumers (the generic smoothing domain) address the
    /// per-incidence data contiguously.
    #[inline]
    pub fn tets_offset(&self, v: u32) -> usize {
        self.vt_offsets[v as usize] as usize
    }

    /// Degree (number of neighbour vertices) of `v`.
    #[inline]
    pub fn degree(&self, v: u32) -> usize {
        self.neighbors(v).len()
    }

    /// Total number of stored directed neighbour entries (2 × #edges).
    #[inline]
    pub fn num_directed_edges(&self) -> usize {
        self.vv_neighbors.len()
    }

    /// Maximum vertex degree.
    pub fn max_degree(&self) -> usize {
        (0..self.num_vertices() as u32).map(|v| self.degree(v)).max().unwrap_or(0)
    }

    /// Mean vertex degree.
    pub fn mean_degree(&self) -> f64 {
        if self.num_vertices() == 0 {
            return 0.0;
        }
        self.num_directed_edges() as f64 / self.num_vertices() as f64
    }

    /// True when `a` and `b` share an edge.
    pub fn are_adjacent(&self, a: u32, b: u32) -> bool {
        self.neighbors(a).binary_search(&b).is_ok()
    }
}

impl lms_order::Graph for Adjacency3 {
    #[inline]
    fn num_vertices(&self) -> usize {
        Adjacency3::num_vertices(self)
    }

    #[inline]
    fn neighbors(&self, v: u32) -> &[u32] {
        Adjacency3::neighbors(self, v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::geometry::Point3;
    use crate::mesh::corner_tet;

    fn double_tet() -> TetMesh {
        TetMesh::new(
            vec![
                Point3::ZERO,
                Point3::new(1.0, 0.0, 0.0),
                Point3::new(0.0, 1.0, 0.0),
                Point3::new(0.0, 0.0, 1.0),
                Point3::new(1.0, 1.0, 1.0),
            ],
            vec![[0, 1, 2, 3], [1, 2, 3, 4]],
        )
        .unwrap()
    }

    #[test]
    fn single_tet_is_a_clique() {
        let adj = Adjacency3::build(&corner_tet());
        for v in 0..4u32 {
            assert_eq!(adj.degree(v), 3);
            assert!(!adj.neighbors(v).contains(&v));
        }
        assert_eq!(adj.num_directed_edges(), 12);
    }

    #[test]
    fn shared_face_vertices_see_both_tets() {
        let adj = Adjacency3::build(&double_tet());
        for v in [1u32, 2, 3] {
            assert_eq!(adj.tets_of(v), &[0, 1]);
            assert_eq!(adj.degree(v), 4); // everyone but itself
        }
        assert_eq!(adj.tets_of(0), &[0]);
        assert_eq!(adj.tets_of(4), &[1]);
        assert_eq!(adj.neighbors(0), &[1, 2, 3]);
        assert_eq!(adj.neighbors(4), &[1, 2, 3]);
    }

    #[test]
    fn adjacency_is_symmetric_sorted_unique() {
        let adj = Adjacency3::build(&double_tet());
        for v in 0..adj.num_vertices() as u32 {
            let ns = adj.neighbors(v);
            assert!(ns.windows(2).all(|w| w[0] < w[1]));
            for &w in ns {
                assert!(adj.are_adjacent(w, v), "asymmetric pair ({v},{w})");
            }
        }
    }

    #[test]
    fn directed_edges_match_edge_count() {
        let m = double_tet();
        let adj = Adjacency3::build(&m);
        assert_eq!(adj.num_directed_edges(), 2 * m.edges().len());
    }

    #[test]
    fn graph_trait_runs_orderings() {
        use lms_order::graph::{bfs_ordering_on, rcm_ordering_on};
        let adj = Adjacency3::build(&double_tet());
        let bfs = bfs_ordering_on(&adj, 0);
        assert_eq!(bfs.len(), 5);
        assert_eq!(bfs.new_to_old()[0], 0);
        let rcm = rcm_ordering_on(&adj);
        assert_eq!(rcm.len(), 5);
    }

    #[test]
    fn tet_incidence_covers_all_corners() {
        let m = double_tet();
        let adj = Adjacency3::build(&m);
        let total: usize = (0..m.num_vertices() as u32).map(|v| adj.tets_of(v).len()).sum();
        assert_eq!(total, 4 * m.num_tets());
        for v in 0..m.num_vertices() as u32 {
            for &t in adj.tets_of(v) {
                assert!(m.tets()[t as usize].contains(&v));
            }
        }
    }
}
