//! Laplacian smoothing of tetrahedral meshes (the paper's Algorithm 1 in
//! 3D — §6 "extensions of Laplacian mesh smoothing").
//!
//! Equation (1) is dimension-agnostic: each interior vertex moves to the
//! arithmetic mean of its neighbours' positions. Since PR 4 the engine *is*
//! the 2D engine: [`SmoothEngine3`] is a thin wrapper that bundles the tet
//! mesh's topology into a [`TetDomain`](crate::domain::TetDomain) and runs
//! `lms-smooth`'s **dimension-generic** sweep bodies — the traced reference
//! path ([`lms_smooth::smooth_reference_on`]) for serial runs and the
//! colored deterministic Gauss–Seidel driver
//! ([`lms_smooth::colored::smooth_colored_on`]) for parallel ones. The
//! copy-pasted serial/colored sweep bodies this file used to carry are
//! gone; only the 3D-specific pieces (parameters, the static-chunk Jacobi
//! engine, the colored class computation) remain.
//!
//! Partitioned and resident (halo-exchange) smoothing over a tet-mesh
//! decomposition live in [`crate::part3`].

use crate::adjacency::Adjacency3;
use crate::boundary::Boundary3;
use crate::geometry::Point3;
use crate::mesh::TetMesh;
use crate::quality::{mesh_quality, TetQualityMetric};
use lms_smooth::domain::DomainConfig;
use lms_smooth::stats::{IterationStats, SmoothReport};
use lms_smooth::trace::{AccessSink, NullSink};
use lms_smooth::{UpdateScheme, Weighting};
use rayon::prelude::*;

/// Update scheme for the 3D sweep.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum UpdateScheme3 {
    /// In-place: later vertices in the sweep see already-moved neighbours.
    #[default]
    GaussSeidel,
    /// Double-buffered: every vertex reads the previous sweep's positions.
    Jacobi,
}

/// Parameters of a 3D smoothing run.
#[derive(Debug, Clone, PartialEq)]
pub struct SmoothParams3 {
    /// Quality metric for convergence tracking (and the smart guard).
    pub metric: TetQualityMetric,
    /// Stop when one sweep improves global quality by less than this
    /// (the paper uses `5e-6`).
    pub tol: f64,
    /// Hard sweep cap (Algorithm 1's maximum iteration count).
    pub max_iters: usize,
    /// Update scheme.
    pub update: UpdateScheme3,
    /// Smart commit: reject moves that lower the local mean quality or
    /// invert a currently valid vertex star.
    pub smart: bool,
    /// Force the pre-SoA per-element scalar scoring path (bench/oracle
    /// baseline; bit-identical to the default lane-batched scoring).
    pub scalar_scoring: bool,
}

impl SmoothParams3 {
    /// The paper's configuration transplanted to 3D: edge-length-ratio
    /// metric, `tol = 5e-6`, 200-sweep cap, plain Gauss–Seidel.
    pub fn paper() -> Self {
        SmoothParams3 {
            metric: TetQualityMetric::EdgeLengthRatio,
            tol: 5e-6,
            max_iters: 200,
            update: UpdateScheme3::GaussSeidel,
            smart: false,
            scalar_scoring: false,
        }
    }

    /// Replace the quality metric.
    pub fn with_metric(mut self, metric: TetQualityMetric) -> Self {
        self.metric = metric;
        self
    }

    /// Replace the convergence tolerance.
    pub fn with_tol(mut self, tol: f64) -> Self {
        self.tol = tol;
        self
    }

    /// Replace the sweep cap.
    pub fn with_max_iters(mut self, max_iters: usize) -> Self {
        self.max_iters = max_iters;
        self
    }

    /// Replace the update scheme.
    pub fn with_update(mut self, update: UpdateScheme3) -> Self {
        self.update = update;
        self
    }

    /// Toggle the smart commit rule.
    pub fn with_smart(mut self, smart: bool) -> Self {
        self.smart = smart;
        self
    }

    /// Toggle the scalar-scoring baseline path.
    pub fn with_scalar_scoring(mut self, scalar_scoring: bool) -> Self {
        self.scalar_scoring = scalar_scoring;
        self
    }

    /// Build a [`SmoothEngine3`] for `mesh` and run it.
    pub fn smooth(&self, mesh: &mut TetMesh) -> SmoothReport {
        SmoothEngine3::new(mesh, self.clone()).smooth(mesh)
    }

    /// The dimension-free parameter slice the generic engines consume
    /// (3D smoothing is always uniform-weighted — Equation (1)).
    pub fn domain_config(&self) -> DomainConfig {
        DomainConfig {
            tol: self.tol,
            max_iters: self.max_iters,
            update: match self.update {
                UpdateScheme3::GaussSeidel => UpdateScheme::GaussSeidel,
                UpdateScheme3::Jacobi => UpdateScheme::Jacobi,
            },
            smart: self.smart,
            weighting: Weighting::Uniform,
            scalar_scoring: self.scalar_scoring,
        }
    }
}

/// A 3D smoothing engine bound to one mesh topology — a thin wrapper over
/// the dimension-generic engines of `lms-smooth`.
#[derive(Debug, Clone)]
pub struct SmoothEngine3 {
    params: SmoothParams3,
    adj: Adjacency3,
    boundary: Boundary3,
    /// Interior vertices in sweep (storage) order.
    visit: Vec<u32>,
    tets: Vec<[u32; 4]>,
    /// Lazily-computed interior color classes for the colored parallel
    /// engine (topology-only, so one computation serves every run).
    colored_classes: std::sync::OnceLock<Vec<Vec<u32>>>,
    /// Cached persistent worker pool: the parallel engines spawn OS
    /// threads once per engine lifetime, not once per `smooth()` call.
    pub(crate) pool: lms_smooth::PoolCache,
}

impl SmoothEngine3 {
    /// Build an engine for `mesh` under `params`.
    pub fn new(mesh: &TetMesh, params: SmoothParams3) -> Self {
        let adj = Adjacency3::build(mesh);
        let boundary = Boundary3::detect(mesh);
        let visit = boundary.interior_vertices();
        SmoothEngine3 {
            params,
            adj,
            boundary,
            visit,
            tets: mesh.tets().to_vec(),
            colored_classes: std::sync::OnceLock::new(),
            pool: lms_smooth::PoolCache::new(),
        }
    }

    /// The engine's parameters.
    pub fn params(&self) -> &SmoothParams3 {
        &self.params
    }

    /// The precomputed adjacency.
    pub fn adjacency(&self) -> &Adjacency3 {
        &self.adj
    }

    /// The precomputed boundary classification.
    pub fn boundary(&self) -> &Boundary3 {
        &self.boundary
    }

    /// The sweep visit order (interior vertices in storage order).
    pub fn visit_order(&self) -> &[u32] {
        &self.visit
    }

    /// The engine's [`TetDomain`](crate::domain::TetDomain) view — the
    /// bundle the generic sweeps run against.
    pub fn domain(&self) -> crate::domain::TetDomain<'_> {
        crate::domain::TetDomain::new(&self.adj, &self.boundary, &self.tets, self.params.metric)
    }

    /// Replace the sweep visit order (the 3D twin of the 2D engine's
    /// iteration-reordering hook, and the serial-equivalence oracle for
    /// the partitioned/resident 3D engines). Non-interior vertices in
    /// `order` are dropped; each interior vertex must appear exactly once.
    pub fn with_visit_order(mut self, order: Vec<u32>) -> Self {
        let filtered: Vec<u32> =
            order.into_iter().filter(|&v| self.boundary.is_interior(v)).collect();
        assert_eq!(
            filtered.len(),
            self.boundary.num_interior(),
            "visit order must cover every interior vertex exactly once"
        );
        let mut seen = vec![false; self.adj.num_vertices()];
        for &v in &filtered {
            assert!(!seen[v as usize], "vertex {v} visited twice");
            seen[v as usize] = true;
        }
        self.visit = filtered;
        self
    }

    /// Smooth `mesh` in place until convergence or `max_iters`.
    pub fn smooth(&self, mesh: &mut TetMesh) -> SmoothReport {
        self.smooth_traced(mesh, &mut NullSink)
    }

    /// [`smooth`](Self::smooth) while reporting every vertex-record access
    /// to `sink` (one event for the smoothed vertex, one per gathered
    /// neighbour — the same stream shape the 2D engine emits, so the whole
    /// `lms-cache` pipeline applies unchanged). Runs the generic reference
    /// path ([`lms_smooth::smooth_reference_on`]) over the engine's
    /// [`TetDomain`](crate::domain::TetDomain).
    pub fn smooth_traced(&self, mesh: &mut TetMesh, sink: &mut impl AccessSink) -> SmoothReport {
        assert_eq!(
            mesh.num_vertices(),
            self.adj.num_vertices(),
            "engine was built for a different mesh"
        );
        let dom = self.domain();
        lms_smooth::smooth_reference_on(
            &dom,
            &self.params.domain_config(),
            &self.visit,
            mesh.coords_mut(),
            sink,
        )
    }

    /// Deterministic parallel smoothing: static contiguous vertex chunks,
    /// Jacobi (double-buffered) updates — the 3D twin of
    /// [`lms_smooth::SmoothEngine::smooth_parallel`]. Results are
    /// bit-identical for any `num_threads`. Workers come from the
    /// engine-cached persistent pool (spawned once per engine lifetime).
    pub fn smooth_parallel(&self, mesh: &mut TetMesh, num_threads: usize) -> SmoothReport {
        assert!(num_threads >= 1, "need at least one thread");
        let n = mesh.num_vertices();
        assert_eq!(n, self.adj.num_vertices(), "engine was built for a different mesh");
        let pool = self.pool.get(num_threads);

        let params = &self.params;
        let adj = &self.adj;
        let boundary = &self.boundary;

        let initial_quality = mesh_quality(mesh, adj, params.metric);
        let mut report = SmoothReport::starting(initial_quality);
        let mut quality = initial_quality;

        let mut prev: Vec<Point3> = mesh.coords().to_vec();
        let mut next: Vec<Point3> = prev.clone();
        let chunk = n.div_ceil(num_threads).max(1);

        for iter in 1..=params.max_iters {
            pool.install(|| {
                let prev_ref: &[Point3] = &prev;
                next.par_chunks_mut(chunk).enumerate().for_each(|(ci, out)| {
                    let base = ci * chunk;
                    for (off, slot) in out.iter_mut().enumerate() {
                        let v = (base + off) as u32;
                        if !boundary.is_interior(v) {
                            continue;
                        }
                        let ns = adj.neighbors(v);
                        if ns.is_empty() {
                            continue;
                        }
                        let mut sum = Point3::ZERO;
                        for &w in ns {
                            sum += prev_ref[w as usize];
                        }
                        *slot = sum / ns.len() as f64;
                    }
                });
            });
            std::mem::swap(&mut prev, &mut next);

            mesh.coords_mut().copy_from_slice(&prev);
            let new_quality = mesh_quality(mesh, adj, params.metric);
            let improvement = new_quality - quality;
            report.iterations.push(IterationStats { iter, quality: new_quality, improvement });
            quality = new_quality;
            if improvement < params.tol {
                report.converged = true;
                break;
            }
        }
        mesh.coords_mut().copy_from_slice(&prev);
        report.final_quality = quality;
        report
    }

    /// Interior vertices of each color class, ascending within a class.
    /// Computed once per engine (topology-only) and cached.
    pub fn interior_color_classes(&self) -> &[Vec<u32>] {
        self.colored_classes.get_or_init(|| {
            let coloring = lms_order::coloring::greedy_coloring_on(&self.adj);
            coloring
                .classes()
                .map(|class| {
                    class.iter().copied().filter(|&v| self.boundary.is_interior(v)).collect()
                })
                .collect()
        })
    }

    /// The class-major visit order: interior vertices grouped by color,
    /// ascending within each class — the serial order
    /// [`smooth_parallel_colored`](Self::smooth_parallel_colored) is
    /// exactly equal to (feed it to
    /// [`with_visit_order`](Self::with_visit_order)).
    pub fn colored_visit_order(&self) -> Vec<u32> {
        self.interior_color_classes().iter().flatten().copied().collect()
    }

    /// Colored deterministic parallel Gauss–Seidel (3D): the generic
    /// colored driver ([`lms_smooth::colored::smooth_colored_on`]) over
    /// the engine's domain view. All four corners of a tet are mutually
    /// adjacent, so same-class vertices share neither an edge nor a tet —
    /// in-place semantics are race-free and the result is
    /// bitwise-deterministic for any thread count. Honours `params.smart`
    /// through the same incremental quality-cache protocol as the 2D
    /// engine; rejects the Jacobi update scheme (use
    /// [`smooth_parallel`](Self::smooth_parallel), already deterministic).
    pub fn smooth_parallel_colored(&self, mesh: &mut TetMesh, num_threads: usize) -> SmoothReport {
        assert!(num_threads >= 1, "need at least one thread");
        let n = mesh.num_vertices();
        assert_eq!(n, self.adj.num_vertices(), "engine was built for a different mesh");
        assert_eq!(
            self.params.update,
            UpdateScheme3::GaussSeidel,
            "colored smoothing is an in-place (Gauss-Seidel) schedule"
        );
        let pool = self.pool.get(num_threads);
        let classes = self.interior_color_classes();
        let dom = self.domain();
        lms_smooth::colored::smooth_colored_on(
            &dom,
            &self.params.domain_config(),
            classes,
            mesh.coords_mut(),
            &pool,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators::perturbed_tet_grid;

    #[test]
    fn colored_is_bitwise_deterministic_across_threads_3d() {
        for smart in [false, true] {
            let m0 = perturbed_tet_grid(6, 5, 6, 0.35, 9);
            let params = SmoothParams3::paper().with_smart(smart).with_max_iters(4);
            let engine = SmoothEngine3::new(&m0, params);
            let mut one = m0.clone();
            let r1 = engine.smooth_parallel_colored(&mut one, 1);
            for threads in [2usize, 8] {
                let mut multi = m0.clone();
                let rt = engine.smooth_parallel_colored(&mut multi, threads);
                assert_eq!(one.coords(), multi.coords(), "smart={smart} threads={threads}");
                assert_eq!(r1, rt, "smart={smart} threads={threads}");
            }
        }
    }

    #[test]
    fn colored_improves_quality_and_pins_boundary_3d() {
        let m0 = perturbed_tet_grid(7, 7, 7, 0.35, 4);
        let engine = SmoothEngine3::new(&m0, SmoothParams3::paper());
        let mut m = m0.clone();
        let report = engine.smooth_parallel_colored(&mut m, 3);
        assert!(report.total_improvement() > 0.01);
        for v in engine.boundary().boundary_vertices() {
            assert_eq!(m.coords()[v as usize], m0.coords()[v as usize]);
        }
        let classes = engine.interior_color_classes();
        let total: usize = classes.iter().map(|c| c.len()).sum();
        assert_eq!(total, engine.boundary().num_interior());
    }

    #[test]
    fn colored_equals_serial_class_major_order_3d() {
        // the colored engine is exactly serial Gauss–Seidel under the
        // class-major visit order — the 2D bit-identity property, now
        // holding in 3D through the same generic sweep body
        for smart in [false, true] {
            let m0 = perturbed_tet_grid(6, 6, 5, 0.35, 7);
            let params = SmoothParams3::paper().with_smart(smart).with_max_iters(3).with_tol(-1.0);
            let engine = SmoothEngine3::new(&m0, params.clone());
            let mut colored = m0.clone();
            engine.smooth_parallel_colored(&mut colored, 3);
            let serial =
                SmoothEngine3::new(&m0, params).with_visit_order(engine.colored_visit_order());
            let mut ser = m0.clone();
            serial.smooth(&mut ser);
            assert_eq!(colored.coords(), ser.coords(), "smart={smart}");
        }
    }

    use lms_smooth::trace::{CountSink, VecSink};

    #[test]
    fn smoothing_improves_quality() {
        let mut m = perturbed_tet_grid(8, 8, 8, 0.4, 1);
        let report = SmoothParams3::paper().smooth(&mut m);
        assert!(
            report.final_quality > report.initial_quality + 0.01,
            "{} -> {}",
            report.initial_quality,
            report.final_quality
        );
        assert!(report.converged);
    }

    #[test]
    fn boundary_vertices_never_move() {
        let mut m = perturbed_tet_grid(6, 6, 6, 0.35, 2);
        let before = m.coords().to_vec();
        let engine = SmoothEngine3::new(&m, SmoothParams3::paper());
        engine.smooth(&mut m);
        for v in engine.boundary().boundary_vertices() {
            assert_eq!(m.coords()[v as usize], before[v as usize], "boundary vertex {v} moved");
        }
    }

    #[test]
    fn interior_vertex_moves_to_neighbour_mean() {
        // One sweep on a tiny grid: the first visited interior vertex of a
        // Jacobi sweep lands exactly on its neighbours' initial mean.
        let m0 = perturbed_tet_grid(3, 3, 3, 0.3, 5);
        let mut m = m0.clone();
        let engine = SmoothEngine3::new(
            &m,
            SmoothParams3::paper().with_update(UpdateScheme3::Jacobi).with_max_iters(1),
        );
        engine.smooth(&mut m);
        let v = engine.visit_order()[0];
        let ns = engine.adjacency().neighbors(v);
        let mut sum = Point3::ZERO;
        for &w in ns {
            sum += m0.coords()[w as usize];
        }
        let expect = sum / ns.len() as f64;
        let got = m.coords()[v as usize];
        assert!(got.dist(expect) < 1e-14);
    }

    #[test]
    fn trace_counts_match_topology() {
        let mut m = perturbed_tet_grid(5, 5, 5, 0.3, 7);
        let engine = SmoothEngine3::new(&m, SmoothParams3::paper().with_max_iters(3));
        let expected_per_iter: u64 =
            engine.visit_order().iter().map(|&v| 1 + engine.adjacency().degree(v) as u64).sum();
        let mut sink = CountSink::default();
        let report = engine.smooth_traced(&mut m, &mut sink);
        assert_eq!(sink.iterations as usize, report.num_iterations());
        assert_eq!(sink.count, expected_per_iter * report.num_iterations() as u64);
    }

    #[test]
    fn trace_structure_vertex_then_neighbours() {
        let mut m = perturbed_tet_grid(4, 4, 4, 0.25, 8);
        let engine = SmoothEngine3::new(&m, SmoothParams3::paper().with_max_iters(1));
        let mut sink = VecSink::new();
        engine.smooth_traced(&mut m, &mut sink);
        let v0 = engine.visit_order()[0];
        assert_eq!(sink.accesses[0], v0);
        let deg = engine.adjacency().degree(v0);
        let mut nbrs: Vec<u32> = sink.accesses[1..=deg].to_vec();
        nbrs.sort_unstable();
        assert_eq!(&nbrs[..], engine.adjacency().neighbors(v0));
    }

    #[test]
    fn parallel_jacobi_matches_serial_jacobi_exactly() {
        let m0 = perturbed_tet_grid(7, 7, 7, 0.35, 11);
        let params = SmoothParams3::paper().with_update(UpdateScheme3::Jacobi).with_max_iters(5);
        let mut serial = m0.clone();
        let sr = SmoothEngine3::new(&m0, params.clone()).smooth(&mut serial);
        let mut par = m0.clone();
        let pr = SmoothEngine3::new(&m0, params).smooth_parallel(&mut par, 4);
        assert_eq!(serial.coords(), par.coords(), "Jacobi must be schedule-independent");
        assert_eq!(sr.num_iterations(), pr.num_iterations());
    }

    #[test]
    fn parallel_is_deterministic_across_thread_counts() {
        let m0 = perturbed_tet_grid(6, 6, 6, 0.3, 2);
        let params = SmoothParams3::paper().with_max_iters(4);
        let mut a = m0.clone();
        let mut b = m0.clone();
        SmoothEngine3::new(&m0, params.clone()).smooth_parallel(&mut a, 1);
        SmoothEngine3::new(&m0, params).smooth_parallel(&mut b, 3);
        assert_eq!(a.coords(), b.coords());
    }

    #[test]
    fn parallel_engines_spawn_threads_once_per_engine() {
        // thread-pool reuse: repeated smooths on one engine must not grow
        // the global spawned-thread counter after the first run
        let m = perturbed_tet_grid(5, 5, 5, 0.3, 3);
        let params = SmoothParams3::paper().with_max_iters(2).with_tol(-1.0);
        let engine = SmoothEngine3::new(&m, params);
        engine.smooth_parallel(&mut m.clone(), 3);
        engine.smooth_parallel_colored(&mut m.clone(), 3);
        let after_first = rayon::spawned_thread_count();
        for _ in 0..4 {
            engine.smooth_parallel(&mut m.clone(), 3);
            engine.smooth_parallel_colored(&mut m.clone(), 3);
        }
        assert_eq!(
            rayon::spawned_thread_count(),
            after_first,
            "repeat runs must reuse the engine's parked workers"
        );
    }

    #[test]
    fn smart_smoothing_is_monotone_and_inversion_free() {
        for seed in [1u64, 9, 23] {
            let mut m = perturbed_tet_grid(6, 6, 6, 0.42, seed);
            m.orient_positive();
            assert!(m.is_positively_oriented());
            let report = SmoothParams3::paper().with_smart(true).with_max_iters(15).smooth(&mut m);
            for w in report.iterations.windows(2) {
                assert!(w[1].quality >= w[0].quality - 1e-12, "seed {seed} regressed");
            }
            assert!(m.is_positively_oriented(), "seed {seed}: smart smoothing inverted a tet");
        }
    }

    #[test]
    fn zero_tolerance_runs_to_max_iters() {
        let mut m = perturbed_tet_grid(4, 4, 4, 0.3, 3);
        let report = SmoothParams3::paper().with_tol(-1.0).with_max_iters(5).smooth(&mut m);
        assert_eq!(report.num_iterations(), 5);
        assert!(!report.converged);
    }

    #[test]
    fn engine_rejects_mismatched_mesh() {
        let m1 = perturbed_tet_grid(4, 4, 4, 0.2, 1);
        let mut m2 = perturbed_tet_grid(5, 5, 5, 0.2, 1);
        let engine = SmoothEngine3::new(&m1, SmoothParams3::paper());
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            engine.smooth(&mut m2);
        }));
        assert!(result.is_err());
    }
}
