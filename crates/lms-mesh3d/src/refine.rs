//! Uniform midpoint refinement of tetrahedra: split every tet into eight
//! at its edge midpoints (1→8 "red" refinement).
//!
//! The 3D twin of `lms-mesh`'s [`refine_midpoint`]: each refinement level
//! multiplies the tet count by 8 with identical geometry, giving the 3D
//! experiments a mesh-size axis. The four corner children are similar to
//! the parent; the central octahedron is split into four tets along one of
//! its diagonals (we use the fixed `m(a,c)–m(b,d)` diagonal, the standard
//! choice that keeps refinement deterministic).
//!
//! Vertex numbering: original vertices keep their ids, followed by one
//! midpoint per original edge in sorted-edge order — the refined ORI
//! numbering inherits the coarse mesh's locality structure.
//!
//! [`refine_midpoint`]: lms_mesh::refine::refine_midpoint

use crate::geometry::Point3;
use crate::mesh::TetMesh;
use std::collections::HashMap;

/// One level of uniform 1→8 midpoint refinement.
///
/// Counts transform as `V' = V + E`, `T' = 8T`; total volume is preserved
/// exactly (up to FP rounding of midpoints).
pub fn refine_midpoint3(mesh: &TetMesh) -> TetMesh {
    let mut coords: Vec<Point3> = mesh.coords().to_vec();
    let mut edges: Vec<(u32, u32)> = mesh.edges();
    edges.sort_unstable();
    let mut midpoint: HashMap<(u32, u32), u32> = HashMap::with_capacity(edges.len());
    for (a, b) in edges {
        let id = coords.len() as u32;
        let pa = mesh.coords()[a as usize];
        let pb = mesh.coords()[b as usize];
        coords.push((pa + pb) * 0.5);
        midpoint.insert((a, b), id);
    }
    let mid = |a: u32, b: u32| midpoint[&(a.min(b), a.max(b))];

    let mut tets = Vec::with_capacity(mesh.num_tets() * 8);
    for &[a, b, c, d] in mesh.tets() {
        let (mab, mac, mad) = (mid(a, b), mid(a, c), mid(a, d));
        let (mbc, mbd, mcd) = (mid(b, c), mid(b, d), mid(c, d));
        // four corner tets, similar to the parent
        tets.push([a, mab, mac, mad]);
        tets.push([mab, b, mbc, mbd]);
        tets.push([mac, mbc, c, mcd]);
        tets.push([mad, mbd, mcd, d]);
        // central octahedron (mab, mac, mad, mbc, mbd, mcd) split along the
        // mac–mbd diagonal into four tets
        tets.push([mab, mac, mad, mbd]);
        tets.push([mab, mac, mbd, mbc]);
        tets.push([mac, mad, mbd, mcd]);
        tets.push([mac, mbc, mbd, mcd]);
    }
    let mut out = TetMesh::new_unchecked(coords, tets);
    out.orient_positive();
    out
}

/// `levels` successive applications of [`refine_midpoint3`].
pub fn refine_levels3(mesh: &TetMesh, levels: usize) -> TetMesh {
    let mut out = mesh.clone();
    for _ in 0..levels {
        out = refine_midpoint3(&out);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators::{perturbed_tet_grid, tet_grid};
    use crate::mesh::corner_tet;

    #[test]
    fn counts_transform_as_expected() {
        let m = corner_tet();
        let r = refine_midpoint3(&m);
        assert_eq!(r.num_tets(), 8);
        assert_eq!(r.num_vertices(), 4 + 6); // V + E
    }

    #[test]
    fn volume_is_preserved_exactly() {
        let m = perturbed_tet_grid(3, 3, 3, 0.3, 1);
        let r = refine_midpoint3(&m);
        assert!((r.total_volume() - m.total_volume()).abs() < 1e-12);
        assert!(r.is_positively_oriented());
    }

    #[test]
    fn refined_mesh_is_conforming() {
        // every internal face shared by exactly 2 tets ⇒ the boundary face
        // count quadruples per level (each surface triangle splits into 4)
        let m = tet_grid(2, 2, 2);
        let b0 = crate::boundary::Boundary3::detect(&m).num_boundary_faces();
        let r = refine_midpoint3(&m);
        let b1 = crate::boundary::Boundary3::detect(&r).num_boundary_faces();
        assert_eq!(b1, 4 * b0);
    }

    #[test]
    fn original_vertices_keep_ids_and_positions() {
        let m = perturbed_tet_grid(2, 2, 2, 0.25, 4);
        let r = refine_midpoint3(&m);
        for v in 0..m.num_vertices() {
            assert_eq!(r.coords()[v], m.coords()[v]);
        }
    }

    #[test]
    fn two_levels_scale_by_64() {
        let m = corner_tet();
        let r = refine_levels3(&m, 2);
        assert_eq!(r.num_tets(), 64);
        assert!((r.total_volume() - m.total_volume()).abs() < 1e-12);
    }

    #[test]
    fn zero_levels_is_identity() {
        let m = perturbed_tet_grid(2, 2, 2, 0.2, 2);
        assert_eq!(refine_levels3(&m, 0), m);
    }
}
