//! The tetrahedral-mesh container.

use crate::geometry::{bounding_box, signed_volume, Point3};
use std::fmt;

/// Errors raised when constructing or validating a [`TetMesh`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Mesh3Error {
    /// A tetrahedron references a vertex index `idx >= num_vertices`.
    IndexOutOfRange {
        /// Offending tetrahedron.
        tet: usize,
        /// The out-of-range vertex index.
        index: u32,
    },
    /// A tetrahedron lists the same vertex twice.
    DegenerateTet {
        /// Offending tetrahedron.
        tet: usize,
    },
    /// The mesh has more vertices than `u32` can index.
    TooManyVertices {
        /// Actual vertex count.
        vertices: usize,
    },
    /// An I/O or parse failure (carries a human-readable message).
    Parse(String),
}

impl fmt::Display for Mesh3Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Mesh3Error::IndexOutOfRange { tet, index } => {
                write!(f, "tetrahedron {tet} references out-of-range vertex {index}")
            }
            Mesh3Error::DegenerateTet { tet } => {
                write!(f, "tetrahedron {tet} repeats a vertex")
            }
            Mesh3Error::TooManyVertices { vertices } => {
                write!(f, "{vertices} vertices exceed u32 indexing")
            }
            Mesh3Error::Parse(msg) => write!(f, "parse error: {msg}"),
        }
    }
}

impl std::error::Error for Mesh3Error {}

/// An indexed tetrahedral mesh.
///
/// The 3D analogue of [`lms_mesh::TriMesh`]: vertices in a flat coordinate
/// array (the array the paper's reorderings permute), connectivity as
/// vertex-index quadruples. Positive orientation means positive
/// [`signed_volume`] of `(v0, v1, v2, v3)`.
#[derive(Debug, Clone, PartialEq)]
pub struct TetMesh {
    coords: Vec<Point3>,
    tets: Vec<[u32; 4]>,
}

impl TetMesh {
    /// Build a mesh, validating all tetrahedron indices.
    pub fn new(coords: Vec<Point3>, tets: Vec<[u32; 4]>) -> Result<Self, Mesh3Error> {
        if coords.len() > u32::MAX as usize {
            return Err(Mesh3Error::TooManyVertices { vertices: coords.len() });
        }
        let n = coords.len() as u32;
        for (t, tet) in tets.iter().enumerate() {
            for &v in tet {
                if v >= n {
                    return Err(Mesh3Error::IndexOutOfRange { tet: t, index: v });
                }
            }
            for i in 0..4 {
                for j in i + 1..4 {
                    if tet[i] == tet[j] {
                        return Err(Mesh3Error::DegenerateTet { tet: t });
                    }
                }
            }
        }
        Ok(TetMesh { coords, tets })
    }

    /// Build a mesh without validation.
    ///
    /// Callers must guarantee every index is `< coords.len()` and no
    /// tetrahedron repeats a vertex; all other methods rely on it.
    pub fn new_unchecked(coords: Vec<Point3>, tets: Vec<[u32; 4]>) -> Self {
        debug_assert!(TetMesh::new(coords.clone(), tets.clone()).is_ok());
        TetMesh { coords, tets }
    }

    /// Number of vertices.
    #[inline]
    pub fn num_vertices(&self) -> usize {
        self.coords.len()
    }

    /// Number of tetrahedra.
    #[inline]
    pub fn num_tets(&self) -> usize {
        self.tets.len()
    }

    /// Vertex coordinate array.
    #[inline]
    pub fn coords(&self) -> &[Point3] {
        &self.coords
    }

    /// Mutable vertex coordinate array (used by the smoothing engines).
    #[inline]
    pub fn coords_mut(&mut self) -> &mut [Point3] {
        &mut self.coords
    }

    /// Tetrahedron connectivity array.
    #[inline]
    pub fn tets(&self) -> &[[u32; 4]] {
        &self.tets
    }

    /// Coordinates of tetrahedron `t`'s four corners.
    #[inline]
    pub fn tet_coords(&self, t: usize) -> [Point3; 4] {
        let [a, b, c, d] = self.tets[t];
        [
            self.coords[a as usize],
            self.coords[b as usize],
            self.coords[c as usize],
            self.coords[d as usize],
        ]
    }

    /// Deduplicated undirected edge list, each edge as `(lo, hi)` with
    /// `lo < hi`, sorted lexicographically.
    pub fn edges(&self) -> Vec<(u32, u32)> {
        let mut edges = Vec::with_capacity(self.tets.len() * 6);
        for tet in &self.tets {
            for i in 0..4 {
                for j in i + 1..4 {
                    let (a, b) = (tet[i], tet[j]);
                    edges.push((a.min(b), a.max(b)));
                }
            }
        }
        edges.sort_unstable();
        edges.dedup();
        edges
    }

    /// The four triangular faces of tetrahedron `t`, each with sorted vertex
    /// ids (the canonical form used for face matching).
    #[inline]
    pub fn tet_faces_sorted(tet: [u32; 4]) -> [[u32; 3]; 4] {
        let [a, b, c, d] = tet;
        let mut faces = [[b, c, d], [a, c, d], [a, b, d], [a, b, c]];
        for f in &mut faces {
            f.sort_unstable();
        }
        faces
    }

    /// Re-orient every tetrahedron to positive signed volume in place.
    ///
    /// Exactly degenerate (zero-volume) tets are left untouched.
    pub fn orient_positive(&mut self) {
        for t in 0..self.tets.len() {
            let [a, b, c, d] = self.tet_coords(t);
            if signed_volume(a, b, c, d) < 0.0 {
                self.tets[t].swap(2, 3);
            }
        }
    }

    /// True when every tetrahedron has strictly positive signed volume.
    pub fn is_positively_oriented(&self) -> bool {
        (0..self.num_tets()).all(|t| {
            let [a, b, c, d] = self.tet_coords(t);
            signed_volume(a, b, c, d) > 0.0
        })
    }

    /// Total unsigned volume of all tetrahedra.
    pub fn total_volume(&self) -> f64 {
        (0..self.num_tets())
            .map(|t| {
                let [a, b, c, d] = self.tet_coords(t);
                crate::geometry::volume(a, b, c, d)
            })
            .sum()
    }

    /// Axis-aligned bounding box of the vertex set.
    pub fn bbox(&self) -> (Point3, Point3) {
        bounding_box(&self.coords)
    }

    /// Consume the mesh, returning its raw parts `(coords, tets)`.
    pub fn into_parts(self) -> (Vec<Point3>, Vec<[u32; 4]>) {
        (self.coords, self.tets)
    }
}

/// A single positively oriented unit-corner tetrahedron (the 3D "hello
/// world" fixture used across tests and docs).
pub fn corner_tet() -> TetMesh {
    TetMesh::new(
        vec![
            Point3::ZERO,
            Point3::new(1.0, 0.0, 0.0),
            Point3::new(0.0, 1.0, 0.0),
            Point3::new(0.0, 0.0, 1.0),
        ],
        vec![[0, 1, 2, 3]],
    )
    .expect("corner tet is valid")
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Two tets sharing the face (1,2,3).
    fn double_tet() -> TetMesh {
        TetMesh::new(
            vec![
                Point3::ZERO,
                Point3::new(1.0, 0.0, 0.0),
                Point3::new(0.0, 1.0, 0.0),
                Point3::new(0.0, 0.0, 1.0),
                Point3::new(1.0, 1.0, 1.0),
            ],
            vec![[0, 1, 2, 3], [1, 2, 3, 4]],
        )
        .unwrap()
    }

    #[test]
    fn construction_validates_indices() {
        let err = TetMesh::new(vec![Point3::ZERO; 4], vec![[0, 1, 2, 4]]).unwrap_err();
        assert_eq!(err, Mesh3Error::IndexOutOfRange { tet: 0, index: 4 });
    }

    #[test]
    fn construction_rejects_degenerate_tets() {
        let err = TetMesh::new(vec![Point3::ZERO; 4], vec![[0, 1, 2, 2]]).unwrap_err();
        assert_eq!(err, Mesh3Error::DegenerateTet { tet: 0 });
    }

    #[test]
    fn corner_tet_volume_and_orientation() {
        let m = corner_tet();
        assert!(m.is_positively_oriented());
        assert!((m.total_volume() - 1.0 / 6.0).abs() < 1e-15);
    }

    #[test]
    fn double_tet_edges() {
        let m = double_tet();
        // 6 edges in each tet, 3 shared (the common face's edges): 9 total.
        assert_eq!(m.edges().len(), 9);
        assert!(m.edges().iter().all(|&(a, b)| a < b));
    }

    #[test]
    fn orient_positive_flips_negative_tets() {
        let mut m = TetMesh::new(
            vec![
                Point3::ZERO,
                Point3::new(1.0, 0.0, 0.0),
                Point3::new(0.0, 1.0, 0.0),
                Point3::new(0.0, 0.0, 1.0),
            ],
            vec![[0, 2, 1, 3]], // negative orientation
        )
        .unwrap();
        assert!(!m.is_positively_oriented());
        m.orient_positive();
        assert!(m.is_positively_oriented());
    }

    #[test]
    fn faces_are_sorted_and_opposite_each_vertex() {
        let faces = TetMesh::tet_faces_sorted([3, 1, 2, 0]);
        for f in faces {
            assert!(f[0] < f[1] && f[1] < f[2]);
        }
        // face k excludes vertex k of the tet
        assert!(!faces[0].contains(&3));
        assert!(!faces[1].contains(&1));
        assert!(!faces[2].contains(&2));
        assert!(!faces[3].contains(&0));
    }

    #[test]
    fn into_parts_roundtrips() {
        let m = double_tet();
        let (coords, tets) = m.clone().into_parts();
        assert_eq!(TetMesh::new(coords, tets).unwrap(), m);
    }

    #[test]
    fn bbox_spans_vertices() {
        let (lo, hi) = double_tet().bbox();
        assert_eq!(lo, Point3::ZERO);
        assert_eq!(hi, Point3::new(1.0, 1.0, 1.0));
    }
}
