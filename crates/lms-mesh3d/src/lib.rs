//! # lms-mesh3d — the tetrahedral extension
//!
//! The paper's §6 conjectures that RDR "outperforms extensions of Laplacian
//! mesh smoothing as well". This crate builds the most direct extension —
//! volumetric (tetrahedral) Laplacian smoothing — and re-runs the paper's
//! pipeline on it:
//!
//! * [`Point3`] and tetrahedron [`geometry`] predicates;
//! * the [`TetMesh`] container, its CSR [`Adjacency3`] (which implements
//!   [`lms_order::Graph`], so every graph-generic ordering runs on it), and
//!   [`Boundary3`] face-based boundary detection;
//! * [`quality`] — edge-length ratio (the paper's metric in 3D), radius
//!   ratio and mean ratio;
//! * [`generators`] — Kuhn-subdivision box grids, graded jitter, and the
//!   three-mesh 3D evaluation suite;
//! * [`SmoothEngine3`] — Algorithm 1 in 3D: Gauss–Seidel/Jacobi sweeps,
//!   the 5e-6 convergence criterion, smart commits, access tracing through
//!   the same [`lms_smooth::trace::AccessSink`] protocol the 2D engine
//!   uses, and a deterministic rayon-parallel variant;
//! * [`order`] — ORI/RANDOM/BFS/DFS/RCM/RDR on tetrahedral meshes;
//! * [`sfc`] — 3D Hilbert and Morton space-filling-curve orderings.
//!
//! ```
//! use lms_mesh3d::{generators, order, Adjacency3, SmoothParams3};
//!
//! let mut mesh = generators::perturbed_tet_grid(8, 8, 8, 0.35, 42);
//! let perm = order::compute_ordering3(&mesh, order::OrderingKind3::Rdr);
//! let mut reordered = order::apply_permutation3(&perm, &mesh);
//! let report = SmoothParams3::paper().smooth(&mut reordered);
//! assert!(report.final_quality > report.initial_quality);
//! ```

pub mod adjacency;
pub mod boundary;
pub mod domain;
pub mod generators;
pub mod geometry;
pub mod io;
pub mod mesh;
pub mod order;
pub mod part3;
pub mod quality;
pub mod refine;
pub mod sfc;
pub mod smooth;

pub use adjacency::Adjacency3;
pub use boundary::Boundary3;
pub use domain::{partition_coords3, partition_tet_mesh, vertex_volume_weights, TetDomain};
pub use geometry::Point3;
pub use mesh::{corner_tet, Mesh3Error, TetMesh};
pub use order::{apply_permutation3, compute_ordering3, rdr_ordering3, OrderingKind3};
pub use part3::{smooth_partitioned3, smooth_resident3, PartitionedEngine3, ResidentEngine3};
pub use quality::TetQualityMetric;
pub use refine::{refine_levels3, refine_midpoint3};
pub use sfc::{hilbert3_ordering, morton3_ordering};
pub use smooth::{SmoothEngine3, SmoothParams3, UpdateScheme3};
