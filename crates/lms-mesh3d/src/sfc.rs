//! 3D space-filling-curve orderings (Hilbert and Morton).
//!
//! The 3D counterparts of `lms-order`'s geometric baselines (Sastry et
//! al. \[14\]): vertices sorted by the index of their quantised coordinates
//! along a 3D Hilbert curve (Skilling's transpose algorithm) or the 3D
//! Morton (Z-order) curve (bit interleaving).

use crate::geometry::{bounding_box, Point3};
use lms_order::Permutation;

/// Bits per axis for quantisation (2^20 cells per axis; 60-bit keys).
const ORDER: u32 = 20;

/// 3D Morton code of grid cell `(x, y, z)` (each `< 2^ORDER`): bits
/// interleaved `z y x` from most significant down.
pub fn morton3_key(x: u32, y: u32, z: u32) -> u64 {
    debug_assert!(x < (1 << ORDER) && y < (1 << ORDER) && z < (1 << ORDER));
    let mut key = 0u64;
    for bit in (0..ORDER).rev() {
        key = (key << 3)
            | (((z >> bit) & 1) as u64) << 2
            | (((y >> bit) & 1) as u64) << 1
            | ((x >> bit) & 1) as u64;
    }
    key
}

/// 3D Hilbert index of grid cell `(x, y, z)` (each `< 2^ORDER`), via
/// Skilling's axes→transpose transform followed by bit interleaving.
pub fn hilbert3_key(x: u32, y: u32, z: u32) -> u64 {
    debug_assert!(x < (1 << ORDER) && y < (1 << ORDER) && z < (1 << ORDER));
    let mut ax = [x, y, z];
    axes_to_transpose(&mut ax, ORDER);
    // interleave transposed bits, axis 0 most significant within each level
    let mut key = 0u64;
    for bit in (0..ORDER).rev() {
        for a in ax {
            key = (key << 1) | ((a >> bit) & 1) as u64;
        }
    }
    key
}

/// Skilling's AxesToTranspose (John Skilling, "Programming the Hilbert
/// curve", AIP 2004): converts coordinates into the transposed Hilbert
/// index in place.
fn axes_to_transpose(x: &mut [u32; 3], bits: u32) {
    let n = 3usize;
    let m = 1u32 << (bits - 1);

    // Inverse undo
    let mut q = m;
    while q > 1 {
        let p = q - 1;
        for i in 0..n {
            if x[i] & q != 0 {
                x[0] ^= p;
            } else {
                let t = (x[0] ^ x[i]) & p;
                x[0] ^= t;
                x[i] ^= t;
            }
        }
        q >>= 1;
    }

    // Gray encode
    for i in 1..n {
        x[i] ^= x[i - 1];
    }
    let mut t = 0u32;
    let mut q = m;
    while q > 1 {
        if x[n - 1] & q != 0 {
            t ^= q - 1;
        }
        q >>= 1;
    }
    for v in x.iter_mut() {
        *v ^= t;
    }
}

/// Quantise `coords` onto the `2^ORDER` grid and sort by `key`.
fn sfc_ordering(coords: &[Point3], key: impl Fn(u32, u32, u32) -> u64) -> Permutation {
    let n = coords.len();
    if n == 0 {
        return Permutation::identity(0);
    }
    let (lo, hi) = bounding_box(coords);
    let w = |a: f64, b: f64| (b - a).max(f64::MIN_POSITIVE);
    let (wx, wy, wz) = (w(lo.x, hi.x), w(lo.y, hi.y), w(lo.z, hi.z));
    let cells = ((1u64 << ORDER) - 1) as f64;
    let mut keyed: Vec<(u64, u32)> = coords
        .iter()
        .enumerate()
        .map(|(i, p)| {
            let qx = (((p.x - lo.x) / wx) * cells) as u32;
            let qy = (((p.y - lo.y) / wy) * cells) as u32;
            let qz = (((p.z - lo.z) / wz) * cells) as u32;
            (key(qx, qy, qz), i as u32)
        })
        .collect();
    keyed.sort_unstable();
    Permutation::from_new_to_old_unchecked(keyed.into_iter().map(|(_, i)| i).collect())
}

/// 3D Hilbert-curve ordering of `coords`.
pub fn hilbert3_ordering(coords: &[Point3]) -> Permutation {
    sfc_ordering(coords, hilbert3_key)
}

/// 3D Morton (Z-order) ordering of `coords`.
pub fn morton3_ordering(coords: &[Point3]) -> Permutation {
    sfc_ordering(coords, morton3_key)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators::perturbed_tet_grid;

    #[test]
    fn morton_key_interleaves() {
        // lowest bit of x/y/z land in key bits 0/1/2
        assert_eq!(morton3_key(1, 0, 0), 0b001);
        assert_eq!(morton3_key(0, 1, 0), 0b010);
        assert_eq!(morton3_key(0, 0, 1), 0b100);
        assert_eq!(morton3_key(1, 1, 1), 0b111);
    }

    #[test]
    fn hilbert_keys_are_injective_on_a_small_grid() {
        let mut seen = std::collections::HashSet::new();
        for x in 0..8u32 {
            for y in 0..8u32 {
                for z in 0..8u32 {
                    let shift = ORDER - 3;
                    assert!(
                        seen.insert(hilbert3_key(x << shift, y << shift, z << shift)),
                        "collision at ({x},{y},{z})"
                    );
                }
            }
        }
        assert_eq!(seen.len(), 512);
    }

    #[test]
    fn hilbert_curve_visits_adjacent_cells() {
        // Consecutive Hilbert indices over a 2×2×2 grid must differ in
        // exactly one axis by one (the defining curve property).
        let shift = ORDER - 1;
        let mut cells: Vec<(u64, (u32, u32, u32))> = Vec::new();
        for x in 0..2u32 {
            for y in 0..2u32 {
                for z in 0..2u32 {
                    cells.push((hilbert3_key(x << shift, y << shift, z << shift), (x, y, z)));
                }
            }
        }
        cells.sort_unstable();
        for w in cells.windows(2) {
            let (a, b) = (w[0].1, w[1].1);
            let dist = (a.0 as i32 - b.0 as i32).abs()
                + (a.1 as i32 - b.1 as i32).abs()
                + (a.2 as i32 - b.2 as i32).abs();
            assert_eq!(dist, 1, "cells {a:?} and {b:?} not face-adjacent");
        }
    }

    #[test]
    fn orderings_are_bijections() {
        let m = perturbed_tet_grid(6, 6, 6, 0.3, 2);
        for p in [hilbert3_ordering(m.coords()), morton3_ordering(m.coords())] {
            assert_eq!(p.len(), m.num_vertices());
            let mut ids = p.new_to_old().to_vec();
            ids.sort_unstable();
            assert!(ids.iter().enumerate().all(|(i, &v)| i as u32 == v));
        }
    }

    #[test]
    fn sfc_beats_random_locality_in_3d() {
        use crate::order::{apply_permutation3, mean_neighbor_span3};
        use crate::Adjacency3;
        let m = crate::generators::block_scramble(perturbed_tet_grid(8, 8, 8, 0.3, 5), 64, 5);
        let span =
            |p: &Permutation| mean_neighbor_span3(&Adjacency3::build(&apply_permutation3(p, &m)));
        let rnd = span(&lms_order::random_ordering(m.num_vertices(), 1));
        let hil = span(&hilbert3_ordering(m.coords()));
        let mor = span(&morton3_ordering(m.coords()));
        assert!(hil < rnd / 3.0, "hilbert {hil} vs random {rnd}");
        assert!(mor < rnd / 3.0, "morton {mor} vs random {rnd}");
    }

    #[test]
    fn hilbert_no_worse_than_morton_on_grids() {
        // Hilbert has no long jumps; on structured grids its neighbour span
        // is at most ~Morton's (allow a small tolerance for quantisation).
        use crate::order::{apply_permutation3, mean_neighbor_span3};
        use crate::Adjacency3;
        let m = crate::generators::tet_grid(10, 10, 10);
        let span =
            |p: &Permutation| mean_neighbor_span3(&Adjacency3::build(&apply_permutation3(p, &m)));
        let hil = span(&hilbert3_ordering(m.coords()));
        let mor = span(&morton3_ordering(m.coords()));
        assert!(hil <= mor * 1.25, "hilbert {hil} much worse than morton {mor}");
    }

    #[test]
    fn degenerate_inputs() {
        assert!(hilbert3_ordering(&[]).is_empty());
        assert_eq!(morton3_ordering(&[Point3::ZERO; 5]).len(), 5);
    }
}
