//! 3D points and tetrahedron predicates.

use std::ops::{Add, AddAssign, Div, Mul, Neg, Sub};

/// A point (or vector) in 3D space.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Point3 {
    /// x coordinate.
    pub x: f64,
    /// y coordinate.
    pub y: f64,
    /// z coordinate.
    pub z: f64,
}

impl Point3 {
    /// The origin.
    pub const ZERO: Point3 = Point3 { x: 0.0, y: 0.0, z: 0.0 };

    /// Construct from components.
    #[inline]
    pub const fn new(x: f64, y: f64, z: f64) -> Point3 {
        Point3 { x, y, z }
    }

    /// Dot product.
    #[inline]
    pub fn dot(self, other: Point3) -> f64 {
        self.x * other.x + self.y * other.y + self.z * other.z
    }

    /// Cross product.
    #[inline]
    pub fn cross(self, other: Point3) -> Point3 {
        Point3::new(
            self.y * other.z - self.z * other.y,
            self.z * other.x - self.x * other.z,
            self.x * other.y - self.y * other.x,
        )
    }

    /// Squared Euclidean norm.
    #[inline]
    pub fn norm_sq(self) -> f64 {
        self.dot(self)
    }

    /// Euclidean norm.
    #[inline]
    pub fn norm(self) -> f64 {
        self.norm_sq().sqrt()
    }

    /// Squared distance to `other`.
    #[inline]
    pub fn dist_sq(self, other: Point3) -> f64 {
        (self - other).norm_sq()
    }

    /// Distance to `other`.
    #[inline]
    pub fn dist(self, other: Point3) -> f64 {
        self.dist_sq(other).sqrt()
    }

    /// Component-wise minimum.
    #[inline]
    pub fn min(self, other: Point3) -> Point3 {
        Point3::new(self.x.min(other.x), self.y.min(other.y), self.z.min(other.z))
    }

    /// Component-wise maximum.
    #[inline]
    pub fn max(self, other: Point3) -> Point3 {
        Point3::new(self.x.max(other.x), self.y.max(other.y), self.z.max(other.z))
    }

    /// True when all components are finite.
    #[inline]
    pub fn is_finite(self) -> bool {
        self.x.is_finite() && self.y.is_finite() && self.z.is_finite()
    }
}

impl Add for Point3 {
    type Output = Point3;
    #[inline]
    fn add(self, rhs: Point3) -> Point3 {
        Point3::new(self.x + rhs.x, self.y + rhs.y, self.z + rhs.z)
    }
}

impl AddAssign for Point3 {
    #[inline]
    fn add_assign(&mut self, rhs: Point3) {
        *self = *self + rhs;
    }
}

impl Sub for Point3 {
    type Output = Point3;
    #[inline]
    fn sub(self, rhs: Point3) -> Point3 {
        Point3::new(self.x - rhs.x, self.y - rhs.y, self.z - rhs.z)
    }
}

impl Mul<f64> for Point3 {
    type Output = Point3;
    #[inline]
    fn mul(self, s: f64) -> Point3 {
        Point3::new(self.x * s, self.y * s, self.z * s)
    }
}

impl Div<f64> for Point3 {
    type Output = Point3;
    #[inline]
    fn div(self, s: f64) -> Point3 {
        Point3::new(self.x / s, self.y / s, self.z / s)
    }
}

impl Neg for Point3 {
    type Output = Point3;
    #[inline]
    fn neg(self) -> Point3 {
        Point3::new(-self.x, -self.y, -self.z)
    }
}

/// Signed volume of tetrahedron `(a, b, c, d)`: positive when `d` lies on
/// the side of plane `(a, b, c)` that `(b-a)×(c-a)` points to.
#[inline]
pub fn signed_volume(a: Point3, b: Point3, c: Point3, d: Point3) -> f64 {
    (b - a).cross(c - a).dot(d - a) / 6.0
}

/// Unsigned volume of tetrahedron `(a, b, c, d)`.
#[inline]
pub fn volume(a: Point3, b: Point3, c: Point3, d: Point3) -> f64 {
    signed_volume(a, b, c, d).abs()
}

/// Area of triangle `(a, b, c)` in 3D.
#[inline]
pub fn triangle_area(a: Point3, b: Point3, c: Point3) -> f64 {
    (b - a).cross(c - a).norm() / 2.0
}

/// The six edge lengths of tetrahedron `(a, b, c, d)`, in the order
/// `ab, ac, ad, bc, bd, cd`.
#[inline]
pub fn edge_lengths(a: Point3, b: Point3, c: Point3, d: Point3) -> [f64; 6] {
    [a.dist(b), a.dist(c), a.dist(d), b.dist(c), b.dist(d), c.dist(d)]
}

/// Total surface area (sum of the four face areas) of a tetrahedron.
#[inline]
pub fn surface_area(a: Point3, b: Point3, c: Point3, d: Point3) -> f64 {
    triangle_area(a, b, c)
        + triangle_area(a, b, d)
        + triangle_area(a, c, d)
        + triangle_area(b, c, d)
}

/// Inradius of a tetrahedron: `3 V / S` where `S` is the surface area.
/// Returns 0 for degenerate (zero-surface) tets.
pub fn inradius(a: Point3, b: Point3, c: Point3, d: Point3) -> f64 {
    let s = surface_area(a, b, c, d);
    if s <= 0.0 {
        return 0.0;
    }
    3.0 * volume(a, b, c, d) / s
}

/// Circumcenter of a tetrahedron, or `None` when the four points are
/// (nearly) coplanar.
pub fn circumcenter(a: Point3, b: Point3, c: Point3, d: Point3) -> Option<Point3> {
    // Solve 2 (p_i - a) · x = |p_i|² - |a|² for x, i ∈ {b, c, d}.
    let rows = [b - a, c - a, d - a];
    let rhs = [
        (b.norm_sq() - a.norm_sq()) / 2.0,
        (c.norm_sq() - a.norm_sq()) / 2.0,
        (d.norm_sq() - a.norm_sq()) / 2.0,
    ];
    solve3(rows, rhs)
}

/// Circumradius of a tetrahedron, or `None` when degenerate.
pub fn circumradius(a: Point3, b: Point3, c: Point3, d: Point3) -> Option<f64> {
    circumcenter(a, b, c, d).map(|cc| cc.dist(a))
}

/// Solve the 3×3 linear system with rows `m` and right-hand side `rhs` by
/// Cramer's rule. Returns `None` when the determinant is (nearly) zero
/// relative to the matrix scale.
fn solve3(m: [Point3; 3], rhs: [f64; 3]) -> Option<Point3> {
    let det = m[0].dot(m[1].cross(m[2]));
    let scale = m[0].norm() * m[1].norm() * m[2].norm();
    if det.abs() <= 1e-14 * scale.max(f64::MIN_POSITIVE) {
        return None;
    }
    let dx = Point3::new(rhs[0], m[0].y, m[0].z)
        .cross_rows(Point3::new(rhs[1], m[1].y, m[1].z), Point3::new(rhs[2], m[2].y, m[2].z));
    let dy = Point3::new(m[0].x, rhs[0], m[0].z)
        .cross_rows(Point3::new(m[1].x, rhs[1], m[1].z), Point3::new(m[2].x, rhs[2], m[2].z));
    let dz = Point3::new(m[0].x, m[0].y, rhs[0])
        .cross_rows(Point3::new(m[1].x, m[1].y, rhs[1]), Point3::new(m[2].x, m[2].y, rhs[2]));
    Some(Point3::new(dx / det, dy / det, dz / det))
}

impl Point3 {
    /// 3×3 determinant with `self`, `r1`, `r2` as rows.
    #[inline]
    fn cross_rows(self, r1: Point3, r2: Point3) -> f64 {
        self.dot(r1.cross(r2))
    }
}

/// Axis-aligned bounding box of a point set; `(ZERO, ZERO)` when empty.
pub fn bounding_box(points: &[Point3]) -> (Point3, Point3) {
    let mut iter = points.iter();
    let Some(&first) = iter.next() else {
        return (Point3::ZERO, Point3::ZERO);
    };
    iter.fold((first, first), |(lo, hi), &p| (lo.min(p), hi.max(p)))
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The regular tetrahedron with unit edge length.
    pub(crate) fn regular_tet() -> [Point3; 4] {
        let s = 1.0 / 2f64.sqrt();
        [
            Point3::new(1.0, 0.0, -s) * 0.5,
            Point3::new(-1.0, 0.0, -s) * 0.5,
            Point3::new(0.0, 1.0, s) * 0.5,
            Point3::new(0.0, -1.0, s) * 0.5,
        ]
    }

    #[test]
    fn regular_tet_has_unit_edges() {
        let [a, b, c, d] = regular_tet();
        for len in edge_lengths(a, b, c, d) {
            assert!((len - 1.0).abs() < 1e-12, "edge {len}");
        }
    }

    #[test]
    fn unit_corner_tet_volume() {
        let v = signed_volume(
            Point3::ZERO,
            Point3::new(1.0, 0.0, 0.0),
            Point3::new(0.0, 1.0, 0.0),
            Point3::new(0.0, 0.0, 1.0),
        );
        assert!((v - 1.0 / 6.0).abs() < 1e-15);
    }

    #[test]
    fn swapping_vertices_flips_volume_sign() {
        let a = Point3::ZERO;
        let b = Point3::new(1.0, 0.0, 0.0);
        let c = Point3::new(0.0, 1.0, 0.0);
        let d = Point3::new(0.0, 0.0, 1.0);
        assert_eq!(signed_volume(a, b, c, d), -signed_volume(a, c, b, d));
    }

    #[test]
    fn regular_tet_radii_ratio_is_one_third() {
        let [a, b, c, d] = regular_tet();
        let r = inradius(a, b, c, d);
        let cr = circumradius(a, b, c, d).unwrap();
        assert!((r / cr - 1.0 / 3.0).abs() < 1e-12, "r/R = {}", r / cr);
    }

    #[test]
    fn circumcenter_is_equidistant() {
        let a = Point3::new(0.1, 0.2, 0.0);
        let b = Point3::new(1.3, 0.1, 0.2);
        let c = Point3::new(0.2, 1.1, -0.1);
        let d = Point3::new(0.4, 0.3, 1.2);
        let cc = circumcenter(a, b, c, d).unwrap();
        let r = cc.dist(a);
        for p in [b, c, d] {
            assert!((cc.dist(p) - r).abs() < 1e-10);
        }
    }

    #[test]
    fn coplanar_points_have_no_circumcenter() {
        let a = Point3::ZERO;
        let b = Point3::new(1.0, 0.0, 0.0);
        let c = Point3::new(0.0, 1.0, 0.0);
        let d = Point3::new(1.0, 1.0, 0.0);
        assert!(circumcenter(a, b, c, d).is_none());
    }

    #[test]
    fn triangle_area_of_unit_right_triangle() {
        let area =
            triangle_area(Point3::ZERO, Point3::new(1.0, 0.0, 0.0), Point3::new(0.0, 1.0, 0.0));
        assert!((area - 0.5).abs() < 1e-15);
    }

    #[test]
    fn vector_ops_behave() {
        let p = Point3::new(1.0, 2.0, 3.0);
        let q = Point3::new(4.0, 5.0, 6.0);
        assert_eq!(p + q, Point3::new(5.0, 7.0, 9.0));
        assert_eq!(q - p, Point3::new(3.0, 3.0, 3.0));
        assert_eq!(p * 2.0, Point3::new(2.0, 4.0, 6.0));
        assert_eq!(q / 2.0, Point3::new(2.0, 2.5, 3.0));
        assert_eq!(-p, Point3::new(-1.0, -2.0, -3.0));
        assert_eq!(p.dot(q), 32.0);
        assert_eq!(
            Point3::new(1.0, 0.0, 0.0).cross(Point3::new(0.0, 1.0, 0.0)),
            Point3::new(0.0, 0.0, 1.0)
        );
    }

    #[test]
    fn bounding_box_spans_points() {
        let pts = [Point3::new(1.0, -2.0, 0.5), Point3::new(-1.0, 3.0, 0.0)];
        let (lo, hi) = bounding_box(&pts);
        assert_eq!(lo, Point3::new(-1.0, -2.0, 0.0));
        assert_eq!(hi, Point3::new(1.0, 3.0, 0.5));
        assert_eq!(bounding_box(&[]), (Point3::ZERO, Point3::ZERO));
    }
}
