//! Partitioned and resident (halo-exchange) smoothing of tetrahedral
//! meshes — the 3D instantiation of `lms-smooth`'s dimension-generic
//! domain-decomposition engines.
//!
//! Nothing here sweeps: [`PartitionedEngine3`] and [`ResidentEngine3`]
//! bundle a [`TetDomain`](crate::domain::TetDomain) with an
//! [`lms_part::Partition`] built by [`crate::domain::partition_tet_mesh`]
//! and run the **same** generic block builders and drivers as the 2D
//! [`lms_smooth::PartitionedEngine`] / [`lms_smooth::ResidentEngine`].
//! The resident protocol — one full gather, moved-only halo-delta routing
//! per interface color step along the [`lms_part::ExchangeSchedule`], one
//! parallel disjoint scatter, [`lms_smooth::ExchangeVolume`] accounting —
//! therefore lands in 3D for free, and the determinism/serial-equivalence
//! guarantees carry over verbatim (property-tested in
//! `tests/resident3.rs` against serial part-major 3D Gauss–Seidel across
//! thread counts and part counts).

use crate::adjacency::Adjacency3;
use crate::domain::partition_tet_mesh;
use crate::mesh::TetMesh;
use crate::smooth::{SmoothEngine3, SmoothParams3, UpdateScheme3};
use lms_part::{ExchangeSchedule, Partition, PartitionMethod};
use lms_smooth::partitioned::{
    build_part_blocks, interface_classes, part_major_order, smooth_partitioned_on, PartBlock,
};
use lms_smooth::resident::{
    build_resident_blocks, resident_part_major_order, smooth_resident_on,
    smooth_resident_profiled_on, ResidentBlock,
};
use lms_smooth::SmoothReport;

/// Domain-decomposed deterministic Gauss–Seidel smoothing of tetrahedral
/// meshes: part interiors sweep as cache-resident local blocks fully in
/// parallel, interface vertices run through the colored schedule — the 3D
/// twin of [`lms_smooth::PartitionedEngine`], sharing its generic sweeps.
#[derive(Debug, Clone)]
pub struct PartitionedEngine3 {
    engine: SmoothEngine3,
    partition: Partition,
    blocks: Vec<PartBlock<4>>,
    interface_classes: Vec<Vec<u32>>,
}

impl PartitionedEngine3 {
    /// Build a partitioned 3D engine for `mesh` under `params` and an
    /// existing decomposition (Gauss–Seidel parameters only).
    pub fn new(mesh: &TetMesh, params: SmoothParams3, partition: Partition) -> Self {
        assert_eq!(
            partition.len(),
            mesh.num_vertices(),
            "partition was built for a different mesh"
        );
        assert_eq!(
            params.update,
            UpdateScheme3::GaussSeidel,
            "partitioned smoothing is an in-place (Gauss-Seidel) schedule; \
             use smooth_parallel for deterministic Jacobi"
        );
        let engine = SmoothEngine3::new(mesh, params);
        let interface_classes = interface_classes(engine.interior_color_classes(), &partition);
        let blocks = build_part_blocks(&engine.domain(), &partition);
        PartitionedEngine3 { engine, partition, blocks, interface_classes }
    }

    /// Convenience: decompose `mesh` into `num_parts` with `method`, then
    /// build the engine.
    pub fn by_method(
        mesh: &TetMesh,
        params: SmoothParams3,
        num_parts: usize,
        method: PartitionMethod,
    ) -> Self {
        let adj = Adjacency3::build(mesh);
        let partition = partition_tet_mesh(mesh, &adj, num_parts, method);
        PartitionedEngine3::new(mesh, params, partition)
    }

    /// The underlying serial engine (adjacency, boundary, parameters).
    pub fn engine(&self) -> &SmoothEngine3 {
        &self.engine
    }

    /// The decomposition the engine runs on.
    pub fn partition(&self) -> &Partition {
        &self.partition
    }

    /// The interface color classes the coordination phase sweeps.
    pub fn interface_classes(&self) -> &[Vec<u32>] {
        &self.interface_classes
    }

    /// The serial visit order this engine's sweep is exactly equal to
    /// (feed it to [`SmoothEngine3::with_visit_order`]).
    pub fn part_major_visit_order(&self) -> Vec<u32> {
        part_major_order(&self.blocks, &self.interface_classes)
    }

    /// Partitioned in-place 3D Gauss–Seidel smoothing: race-free,
    /// bitwise-deterministic for any `num_threads`, exactly serial
    /// Gauss–Seidel under
    /// [`part_major_visit_order`](Self::part_major_visit_order).
    pub fn smooth(&self, mesh: &mut TetMesh, num_threads: usize) -> SmoothReport {
        assert!(num_threads >= 1, "need at least one thread");
        assert_eq!(
            mesh.num_vertices(),
            self.engine.adjacency().num_vertices(),
            "engine was built for a different mesh"
        );
        let pool = self.engine.pool.get(num_threads);
        let dom = self.engine.domain();
        smooth_partitioned_on(
            &dom,
            &self.engine.params().domain_config(),
            &self.blocks,
            &self.interface_classes,
            mesh.coords_mut(),
            &pool,
        )
    }
}

/// Resident-block halo-exchange smoothing of tetrahedral meshes: blocks
/// stay resident for the whole run, only moved halo deltas travel between
/// interface color steps, one disjoint scatter at the end — the 3D twin
/// of [`lms_smooth::ResidentEngine`], sharing its generic protocol and
/// [`lms_smooth::ExchangeVolume`] accounting
/// (`full_gathers == 1 && full_scatters == 1`).
#[derive(Debug, Clone)]
pub struct ResidentEngine3 {
    engine: SmoothEngine3,
    partition: Partition,
    schedule: ExchangeSchedule,
    blocks: Vec<ResidentBlock<4>>,
    interface_classes: Vec<Vec<u32>>,
    /// Constant global element weights `w_t` of the quality functional.
    elem_w: Vec<f64>,
}

impl ResidentEngine3 {
    /// Build a resident 3D engine for `mesh` under `params` and an
    /// existing decomposition (Gauss–Seidel parameters only).
    pub fn new(mesh: &TetMesh, params: SmoothParams3, partition: Partition) -> Self {
        assert_eq!(
            partition.len(),
            mesh.num_vertices(),
            "partition was built for a different mesh"
        );
        assert_eq!(
            params.update,
            UpdateScheme3::GaussSeidel,
            "resident smoothing is an in-place (Gauss-Seidel) schedule; \
             use smooth_parallel for deterministic Jacobi"
        );
        let engine = SmoothEngine3::new(mesh, params);
        let interface_classes = interface_classes(engine.interior_color_classes(), &partition);
        let schedule = ExchangeSchedule::build(&partition);
        let (blocks, elem_w) =
            build_resident_blocks(&engine.domain(), &partition, &interface_classes);
        ResidentEngine3 { engine, partition, schedule, blocks, interface_classes, elem_w }
    }

    /// Convenience: decompose `mesh` into `num_parts` with `method`, then
    /// build the engine.
    pub fn by_method(
        mesh: &TetMesh,
        params: SmoothParams3,
        num_parts: usize,
        method: PartitionMethod,
    ) -> Self {
        let adj = Adjacency3::build(mesh);
        let partition = partition_tet_mesh(mesh, &adj, num_parts, method);
        ResidentEngine3::new(mesh, params, partition)
    }

    /// The underlying serial engine (adjacency, boundary, parameters).
    pub fn engine(&self) -> &SmoothEngine3 {
        &self.engine
    }

    /// The decomposition the engine runs on.
    pub fn partition(&self) -> &Partition {
        &self.partition
    }

    /// The static halo-exchange pattern the runs route moved deltas along.
    pub fn exchange_schedule(&self) -> &ExchangeSchedule {
        &self.schedule
    }

    /// The global interface color classes the interface phase steps
    /// through.
    pub fn interface_classes(&self) -> &[Vec<u32>] {
        &self.interface_classes
    }

    /// The per-part resident topologies — one block per part, the
    /// per-rank state of a distributed backend.
    pub fn blocks(&self) -> &[ResidentBlock<4>] {
        &self.blocks
    }

    /// The constant global element weights `w_t` of the quality
    /// functional.
    pub fn elem_weights(&self) -> &[f64] {
        &self.elem_w
    }

    /// The serial visit order this engine's sweep is exactly equal to —
    /// identical to [`PartitionedEngine3`]'s over the same decomposition.
    pub fn part_major_visit_order(&self) -> Vec<u32> {
        resident_part_major_order(&self.blocks, &self.interface_classes)
    }

    /// Resident in-place 3D Gauss–Seidel smoothing: one full gather,
    /// halo-delta exchange between color steps, one parallel disjoint
    /// scatter. Race-free, bitwise-deterministic for any `num_threads`,
    /// exactly serial Gauss–Seidel under
    /// [`part_major_visit_order`](Self::part_major_visit_order); the
    /// report carries the [`lms_smooth::ExchangeVolume`] counters.
    pub fn smooth(&self, mesh: &mut TetMesh, num_threads: usize) -> SmoothReport {
        assert!(num_threads >= 1, "need at least one thread");
        assert_eq!(
            mesh.num_vertices(),
            self.engine.adjacency().num_vertices(),
            "engine was built for a different mesh"
        );
        let pool = self.engine.pool.get(num_threads);
        let dom = self.engine.domain();
        smooth_resident_on(
            &dom,
            &self.engine.params().domain_config(),
            &self.blocks,
            &self.elem_w,
            &self.interface_classes,
            &self.schedule,
            mesh.coords_mut(),
            &pool,
        )
    }

    /// [`smooth`](Self::smooth) with phase profiling: the driver records
    /// its spans into the returned [`lms_trace::Recorder`] and the report
    /// comes back with `phase_breakdown` populated — coordinates and all
    /// other report fields bit-identical to the unprofiled run. The 3D
    /// twin of [`lms_smooth::ResidentEngine::smooth_profiled`].
    pub fn smooth_profiled(
        &self,
        mesh: &mut TetMesh,
        num_threads: usize,
    ) -> (SmoothReport, lms_trace::Recorder) {
        assert!(num_threads >= 1, "need at least one thread");
        assert_eq!(
            mesh.num_vertices(),
            self.engine.adjacency().num_vertices(),
            "engine was built for a different mesh"
        );
        let pool = self.engine.pool.get(num_threads);
        let dom = self.engine.domain();
        smooth_resident_profiled_on(
            &dom,
            &self.engine.params().domain_config(),
            &self.blocks,
            &self.elem_w,
            &self.interface_classes,
            &self.schedule,
            mesh.coords_mut(),
            &pool,
        )
    }
}

/// Convenience: decompose, build the partitioned 3D engine and run it in
/// one call. Parameters are moved, never cloned.
pub fn smooth_partitioned3(
    mesh: &mut TetMesh,
    params: SmoothParams3,
    num_parts: usize,
    method: PartitionMethod,
    num_threads: usize,
) -> SmoothReport {
    PartitionedEngine3::by_method(mesh, params, num_parts, method).smooth(mesh, num_threads)
}

/// Convenience: decompose, build the resident 3D engine and run it in one
/// call. Parameters are moved, never cloned.
pub fn smooth_resident3(
    mesh: &mut TetMesh,
    params: SmoothParams3,
    num_parts: usize,
    method: PartitionMethod,
    num_threads: usize,
) -> SmoothReport {
    ResidentEngine3::by_method(mesh, params, num_parts, method).smooth(mesh, num_threads)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators::perturbed_tet_grid;

    #[test]
    fn improves_quality_and_pins_boundary() {
        let mut m = perturbed_tet_grid(8, 8, 8, 0.4, 1);
        let before = m.coords().to_vec();
        let engine =
            ResidentEngine3::by_method(&m, SmoothParams3::paper(), 4, PartitionMethod::Rcb);
        let report = engine.smooth(&mut m, 2);
        assert!(report.final_quality > report.initial_quality + 0.01);
        for v in engine.engine().boundary().boundary_vertices() {
            assert_eq!(m.coords()[v as usize], before[v as usize], "boundary vertex {v} moved");
        }
    }

    #[test]
    fn single_part_equals_serial_storage_order() {
        let m = perturbed_tet_grid(6, 5, 6, 0.35, 3);
        let params = SmoothParams3::paper().with_smart(true).with_max_iters(4).with_tol(-1.0);
        let engine = ResidentEngine3::by_method(&m, params.clone(), 1, PartitionMethod::Rcb);
        assert!(engine.interface_classes().is_empty());
        let mut a = m.clone();
        let report = engine.smooth(&mut a, 3);
        let mut b = m.clone();
        SmoothEngine3::new(&m, params).smooth(&mut b);
        assert_eq!(a.coords(), b.coords());
        let volume = report.exchange.unwrap();
        assert_eq!(volume.full_gathers, 1);
        assert_eq!(volume.full_scatters, 1);
        assert_eq!(volume.halo_entries_sent, 0, "one part has nothing to exchange");
    }

    #[test]
    fn partitioned_and_resident_agree_bitwise() {
        let m = perturbed_tet_grid(6, 6, 6, 0.35, 5);
        let params = SmoothParams3::paper().with_smart(true).with_max_iters(3).with_tol(-1.0);
        let partitioned =
            PartitionedEngine3::by_method(&m, params.clone(), 4, PartitionMethod::Rcb);
        let resident = ResidentEngine3::by_method(&m, params, 4, PartitionMethod::Rcb);
        let mut a = m.clone();
        partitioned.smooth(&mut a, 2);
        let mut b = m.clone();
        resident.smooth(&mut b, 2);
        assert_eq!(a.coords(), b.coords());
        assert_eq!(
            partitioned.part_major_visit_order(),
            resident.part_major_visit_order(),
            "both engines must expose one serial-equivalence order"
        );
    }

    #[test]
    fn rejects_jacobi_params() {
        let m = perturbed_tet_grid(4, 4, 4, 0.2, 1);
        let params = SmoothParams3::paper().with_update(UpdateScheme3::Jacobi);
        for build in [
            (|m: &TetMesh, p: SmoothParams3| {
                PartitionedEngine3::by_method(m, p, 2, PartitionMethod::Rcb);
            }) as fn(&TetMesh, SmoothParams3),
            |m, p| {
                ResidentEngine3::by_method(m, p, 2, PartitionMethod::Rcb);
            },
        ] {
            let params = params.clone();
            let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                build(&m, params);
            }));
            assert!(r.is_err());
        }
    }

    #[test]
    fn convenience_wrappers_run() {
        let mut m = perturbed_tet_grid(6, 6, 5, 0.35, 2);
        let report = smooth_partitioned3(
            &mut m,
            SmoothParams3::paper().with_max_iters(8),
            3,
            PartitionMethod::Morton,
            2,
        );
        assert!(report.final_quality > report.initial_quality);
        let mut m = perturbed_tet_grid(6, 6, 5, 0.35, 2);
        let report = smooth_resident3(
            &mut m,
            SmoothParams3::paper().with_max_iters(8),
            3,
            PartitionMethod::Hilbert,
            2,
        );
        assert!(report.final_quality > report.initial_quality);
    }

    #[test]
    fn part_major_order_covers_interior_once() {
        let m = perturbed_tet_grid(6, 7, 5, 0.3, 9);
        let engine =
            ResidentEngine3::by_method(&m, SmoothParams3::paper(), 5, PartitionMethod::Hilbert);
        let order = engine.part_major_visit_order();
        assert_eq!(order.len(), engine.engine().boundary().num_interior());
        let mut seen = vec![false; m.num_vertices()];
        for &v in &order {
            assert!(engine.engine().boundary().is_interior(v));
            assert!(!seen[v as usize], "vertex {v} visited twice");
            seen[v as usize] = true;
        }
    }
}
