//! Boundary detection for tetrahedral meshes.
//!
//! A triangular face is a boundary face when it belongs to exactly one
//! tetrahedron; a vertex is a boundary vertex when it lies on at least one
//! boundary face. Smoothing (like the 2D engine) moves interior vertices
//! only.

use crate::mesh::TetMesh;

/// Boundary classification of a tetrahedral mesh's vertices.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Boundary3 {
    is_boundary: Vec<bool>,
    num_boundary_faces: usize,
}

impl Boundary3 {
    /// Detect the boundary of `mesh` by face counting.
    pub fn detect(mesh: &TetMesh) -> Self {
        let mut faces: Vec<[u32; 3]> = Vec::with_capacity(4 * mesh.num_tets());
        for &tet in mesh.tets() {
            faces.extend_from_slice(&TetMesh::tet_faces_sorted(tet));
        }
        faces.sort_unstable();

        let mut is_boundary = vec![false; mesh.num_vertices()];
        let mut num_boundary_faces = 0;
        let mut i = 0;
        while i < faces.len() {
            let mut j = i + 1;
            while j < faces.len() && faces[j] == faces[i] {
                j += 1;
            }
            if j - i == 1 {
                num_boundary_faces += 1;
                for &v in &faces[i] {
                    is_boundary[v as usize] = true;
                }
            }
            i = j;
        }
        Boundary3 { is_boundary, num_boundary_faces }
    }

    /// True when `v` lies on a boundary face.
    #[inline]
    pub fn is_boundary(&self, v: u32) -> bool {
        self.is_boundary[v as usize]
    }

    /// True when `v` is strictly interior.
    #[inline]
    pub fn is_interior(&self, v: u32) -> bool {
        !self.is_boundary[v as usize]
    }

    /// Number of boundary vertices.
    pub fn num_boundary(&self) -> usize {
        self.is_boundary.iter().filter(|&&b| b).count()
    }

    /// Number of interior vertices.
    pub fn num_interior(&self) -> usize {
        self.is_boundary.len() - self.num_boundary()
    }

    /// Number of boundary faces (the surface triangle count).
    pub fn num_boundary_faces(&self) -> usize {
        self.num_boundary_faces
    }

    /// Interior vertices in index order.
    pub fn interior_vertices(&self) -> Vec<u32> {
        (0..self.is_boundary.len() as u32).filter(|&v| self.is_interior(v)).collect()
    }

    /// Boundary vertices in index order.
    pub fn boundary_vertices(&self) -> Vec<u32> {
        (0..self.is_boundary.len() as u32).filter(|&v| self.is_boundary(v)).collect()
    }

    /// Interior flags, one per vertex (`true` = interior) — the form the
    /// graph-generic RDR core consumes.
    pub fn interior_flags(&self) -> Vec<bool> {
        self.is_boundary.iter().map(|&b| !b).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators::tet_grid;
    use crate::mesh::corner_tet;

    #[test]
    fn single_tet_is_all_boundary() {
        let b = Boundary3::detect(&corner_tet());
        assert_eq!(b.num_boundary(), 4);
        assert_eq!(b.num_interior(), 0);
        assert_eq!(b.num_boundary_faces(), 4);
    }

    #[test]
    fn grid_boundary_is_the_box_surface() {
        // A (nx,ny,nz) cell grid has (nx+1)(ny+1)(nz+1) vertices of which
        // the interior block is (nx-1)(ny-1)(nz-1).
        let m = tet_grid(4, 3, 5);
        let b = Boundary3::detect(&m);
        assert_eq!(b.num_interior(), 3 * 2 * 4);
        assert_eq!(b.num_boundary(), m.num_vertices() - 3 * 2 * 4);
    }

    #[test]
    fn surface_face_count_matches_box_formula() {
        // Kuhn subdivision splits every exterior cell face into 2 surface
        // triangles: total faces = 2·2(nx·ny + ny·nz + nx·nz).
        let (nx, ny, nz) = (3usize, 4, 2);
        let m = tet_grid(nx, ny, nz);
        let b = Boundary3::detect(&m);
        assert_eq!(b.num_boundary_faces(), 4 * (nx * ny + ny * nz + nx * nz));
    }

    #[test]
    fn flags_partition_vertices() {
        let m = tet_grid(3, 3, 3);
        let b = Boundary3::detect(&m);
        assert_eq!(b.num_boundary() + b.num_interior(), m.num_vertices());
        let interior = b.interior_vertices();
        let boundary = b.boundary_vertices();
        assert_eq!(interior.len() + boundary.len(), m.num_vertices());
        let flags = b.interior_flags();
        for &v in &interior {
            assert!(flags[v as usize]);
        }
        for &v in &boundary {
            assert!(!flags[v as usize]);
        }
    }
}
