//! Property-based invariants for the tetrahedral substrate.

use lms_mesh3d::generators::{block_scramble, perturbed_tet_grid, tet_grid};
use lms_mesh3d::order::{
    apply_permutation3, compute_ordering3, mean_neighbor_span3, OrderingKind3,
};
use lms_mesh3d::quality::{vertex_qualities, TetQualityMetric};
use lms_mesh3d::{Adjacency3, Boundary3, SmoothParams3, TetMesh};
use proptest::prelude::*;

/// Strategy: a small perturbed tet grid (2–6 cells per axis).
fn small_mesh() -> impl Strategy<Value = TetMesh> {
    (2usize..=6, 2usize..=6, 2usize..=6, 0u64..1000, 0.0..0.42f64)
        .prop_map(|(nx, ny, nz, seed, jitter)| perturbed_tet_grid(nx, ny, nz, jitter, seed))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn grids_are_valid_and_positively_oriented(m in small_mesh()) {
        prop_assert!(m.is_positively_oriented());
        // rebuilding through the validating constructor must succeed
        let (coords, tets) = m.clone().into_parts();
        prop_assert!(TetMesh::new(coords, tets).is_ok());
    }

    #[test]
    fn adjacency_is_symmetric_and_loop_free(m in small_mesh()) {
        let adj = Adjacency3::build(&m);
        for v in 0..adj.num_vertices() as u32 {
            let ns = adj.neighbors(v);
            prop_assert!(ns.windows(2).all(|w| w[0] < w[1]));
            prop_assert!(!ns.contains(&v));
            for &w in ns {
                prop_assert!(adj.are_adjacent(w, v));
            }
        }
    }

    #[test]
    fn all_orderings_are_bijections(m in small_mesh()) {
        for kind in OrderingKind3::ALL {
            let p = compute_ordering3(&m, kind);
            let mut ids = p.new_to_old().to_vec();
            ids.sort_unstable();
            prop_assert!(ids.iter().enumerate().all(|(i, &v)| i as u32 == v),
                "{} not a bijection", kind.name());
        }
    }

    #[test]
    fn reordering_preserves_volume_edges_boundary(m in small_mesh()) {
        let p = compute_ordering3(&m, OrderingKind3::Rdr);
        let rm = apply_permutation3(&p, &m);
        prop_assert!((rm.total_volume() - m.total_volume()).abs() < 1e-9);
        prop_assert_eq!(rm.edges().len(), m.edges().len());
        let b = Boundary3::detect(&m);
        let rb = Boundary3::detect(&rm);
        prop_assert_eq!(b.num_boundary(), rb.num_boundary());
        prop_assert_eq!(b.num_boundary_faces(), rb.num_boundary_faces());
    }

    #[test]
    fn qualities_are_in_unit_interval(m in small_mesh()) {
        let adj = Adjacency3::build(&m);
        for metric in [
            TetQualityMetric::EdgeLengthRatio,
            TetQualityMetric::RadiusRatio,
            TetQualityMetric::MeanRatio,
        ] {
            for q in vertex_qualities(&m, &adj, metric) {
                prop_assert!((0.0..=1.0).contains(&q), "{}: {q}", metric.name());
            }
        }
    }

    #[test]
    fn smoothing_never_moves_boundary_and_never_decreases_quality_much(m in small_mesh()) {
        let mut sm = m.clone();
        let report = SmoothParams3::paper().with_max_iters(20).smooth(&mut sm);
        let b = Boundary3::detect(&m);
        for &v in &b.boundary_vertices() {
            prop_assert_eq!(sm.coords()[v as usize], m.coords()[v as usize]);
        }
        // plain Laplacian can dip transiently but the run must not end much
        // below where it started on these convex grids
        prop_assert!(report.final_quality > report.initial_quality - 0.02);
    }

    #[test]
    fn scramble_then_rdr_beats_random_locality(
        (nx, seed) in (4usize..=7, 0u64..500)
    ) {
        let m = block_scramble(perturbed_tet_grid(nx, nx, nx, 0.35, seed), 32, seed);
        let span = |mesh: &TetMesh| mean_neighbor_span3(&Adjacency3::build(mesh));
        let rdr_perm = compute_ordering3(&m, OrderingKind3::Rdr);
        let rdr = span(&apply_permutation3(&rdr_perm, &m));
        let rnd_perm = compute_ordering3(&m, OrderingKind3::Random { seed });
        let rnd = span(&apply_permutation3(&rnd_perm, &m));
        // the walk must land far from the random regime on every input
        prop_assert!(rdr < rnd * 0.75, "rdr span {rdr} too close to random {rnd}");
    }
}

#[test]
fn kuhn_grid_volume_is_exact_for_many_sizes() {
    for (nx, ny, nz) in [(1, 1, 1), (2, 3, 4), (5, 2, 2), (3, 3, 3)] {
        let m = tet_grid(nx, ny, nz);
        assert!((m.total_volume() - 1.0).abs() < 1e-12, "{nx}x{ny}x{nz}");
        assert_eq!(m.num_tets(), 6 * nx * ny * nz);
    }
}
