//! Property tests for tetrahedral partition invariants — the 3D mirror of
//! `lms-part/tests/props.rs`, across every method and arbitrary perturbed
//! tet grids:
//!
//! * parts are disjoint and cover the vertex set, sizes within one
//!   (count-balanced methods; the volume-weighted splitter balances
//!   weight);
//! * interior + interface = owned, and the interface flag is exactly
//!   "has a cross-part neighbour";
//! * halos are exactly the out-of-part 1-ring closure of the interfaces;
//! * the halo-exchange schedule delivers to every halo slot exactly once
//!   — it covers exactly the 1-ring-of-interface closure, unchanged by
//!   the jump from triangles to tetrahedra (the schedule is built from
//!   the adjacency-generic `Partition` alone).

use lms_mesh3d::{partition_tet_mesh, Adjacency3, TetMesh};
use lms_part::{ExchangeSchedule, Partition, PartitionMethod};
use proptest::prelude::*;

fn arb_mesh() -> impl Strategy<Value = TetMesh> {
    (3usize..8, 3usize..8, 3usize..8, 0u64..1000, 0..40u32).prop_map(|(nx, ny, nz, seed, jit)| {
        lms_mesh3d::generators::perturbed_tet_grid(nx, ny, nz, jit as f64 / 100.0, seed)
    })
}

fn build(mesh: &TetMesh, k: usize, method_ix: usize) -> (Adjacency3, Partition) {
    let adj = Adjacency3::build(mesh);
    let p = partition_tet_mesh(mesh, &adj, k, PartitionMethod::ALL[method_ix]);
    (adj, p)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn parts_disjoint_cover_and_balanced(
        mesh in arb_mesh(), k in 1usize..9, method_ix in 0usize..4,
    ) {
        let (_, p) = build(&mesh, k, method_ix);
        let mut seen = vec![false; mesh.num_vertices()];
        let mut sizes = Vec::new();
        for q in 0..p.num_parts() {
            sizes.push(p.part(q).len());
            for &v in p.part(q) {
                prop_assert!(!seen[v as usize], "vertex {} owned twice", v);
                seen[v as usize] = true;
                prop_assert_eq!(p.part_of(v), q);
            }
        }
        prop_assert!(seen.iter().all(|&s| s), "some vertex unowned");
        // the weighted splitter balances volume shares, not counts — its
        // balance property is covered by the volume-balance test below
        if PartitionMethod::ALL[method_ix] != PartitionMethod::RcbWeighted {
            let (lo, hi) = (*sizes.iter().min().unwrap(), *sizes.iter().max().unwrap());
            prop_assert!(hi - lo <= 1, "unbalanced: {:?}", sizes);
        }
    }

    /// The exchange schedule covers exactly the halo — every halo slot of
    /// every part receives exactly one delivery, every delivery resolves
    /// to the right ghost-map local, and only interface vertices send.
    #[test]
    fn exchange_schedule_covers_exactly_the_halo(
        mesh in arb_mesh(), k in 1usize..9, method_ix in 0usize..4,
    ) {
        let (_, p) = build(&mesh, k, method_ix);
        let s = ExchangeSchedule::build(&p);
        prop_assert_eq!(s.num_entries(), p.total_halo());
        let mut deliveries: Vec<Vec<u32>> = (0..p.num_parts())
            .map(|q| vec![0u32; p.part(q).len() + p.halo(q).len()])
            .collect();
        for src in 0..p.num_parts() {
            for (i, &v) in p.part(src).iter().enumerate() {
                let out = s.outgoing(src, i as u32);
                if !out.is_empty() {
                    prop_assert!(p.is_interface(v), "non-interface {} sends", v);
                }
                for &(q, dst) in out {
                    prop_assert_eq!(p.local_of(q, v), Some(dst as usize));
                    deliveries[q as usize][dst as usize] += 1;
                }
            }
        }
        for q in 0..p.num_parts() {
            let owned = p.part(q).len();
            for (slot, &count) in deliveries[q as usize].iter().enumerate() {
                prop_assert_eq!(
                    count,
                    u32::from(slot >= owned),
                    "part {} slot {}", q, slot
                );
            }
        }
    }

    #[test]
    fn halo_is_one_ring_closure_of_interface(
        mesh in arb_mesh(), k in 2usize..9, method_ix in 0usize..4,
    ) {
        let (adj, p) = build(&mesh, k, method_ix);
        for q in 0..p.num_parts() {
            // 1-ring of the interface, outside the part
            let mut expect: Vec<u32> = p
                .interface(q)
                .iter()
                .flat_map(|&v| adj.neighbors(v).iter().copied())
                .filter(|&u| p.part_of(u) != q)
                .collect();
            expect.sort_unstable();
            expect.dedup();
            prop_assert_eq!(p.halo(q), &expect[..], "part {}", q);
        }
    }

    #[test]
    fn interface_flag_matches_topology(
        mesh in arb_mesh(), k in 1usize..9, method_ix in 0usize..4,
    ) {
        let (adj, p) = build(&mesh, k, method_ix);
        for v in 0..mesh.num_vertices() as u32 {
            let crosses = adj.neighbors(v).iter().any(|&w| p.part_of(w) != p.part_of(v));
            prop_assert_eq!(p.is_interface(v), crosses);
        }
    }

    #[test]
    fn interior_plus_interface_is_owned(
        mesh in arb_mesh(), k in 1usize..9, method_ix in 0usize..4,
    ) {
        let (_, p) = build(&mesh, k, method_ix);
        for q in 0..p.num_parts() {
            let mut merged: Vec<u32> = p.interior(q).to_vec();
            merged.extend_from_slice(p.interface(q));
            merged.sort_unstable();
            prop_assert_eq!(&merged[..], p.part(q), "part {}", q);
        }
    }
}

/// The volume-weighted splitter must beat count-balanced RCB on per-part
/// volume balance for a graded mesh (z-coordinates pushed through z³).
#[test]
fn weighted_rcb3_balances_volume_on_graded_meshes() {
    use lms_mesh3d::{vertex_volume_weights, Point3};
    let m = lms_mesh3d::generators::perturbed_tet_grid(10, 10, 10, 0.0, 0);
    let (coords, tets) = m.into_parts();
    let graded: Vec<Point3> =
        coords.into_iter().map(|p| Point3::new(p.x, p.y, p.z * p.z * p.z)).collect();
    let m = TetMesh::new(graded, tets).unwrap();
    let adj = Adjacency3::build(&m);
    let weights = vertex_volume_weights(&m, &adj);
    let total: f64 = weights.iter().sum();
    let k = 4usize;
    let max_share = |part: &Partition| -> f64 {
        let mut per = vec![0.0f64; k];
        for (v, &w) in weights.iter().enumerate() {
            per[part.part_of(v as u32) as usize] += w;
        }
        per.iter().copied().fold(0.0, f64::max)
    };
    let weighted = partition_tet_mesh(&m, &adj, k, PartitionMethod::RcbWeighted);
    let unweighted = partition_tet_mesh(&m, &adj, k, PartitionMethod::Rcb);
    let mean = total / k as f64;
    let wi = max_share(&weighted) / mean;
    let ui = max_share(&unweighted) / mean;
    assert!(wi < 1.3, "weighted volume imbalance {wi:.3}");
    assert!(wi < ui, "weighted ({wi:.3}) must beat count-balanced rcb ({ui:.3}) on volume");
}
