//! 3D half of the SoA bit-identity gate: `score_batch` on `TetDomain`
//! equals the per-element scalar `score` bit for bit for every
//! `TetQualityMetric`, and full 3D resident runs with the default
//! lane-batched kernel match the forced pre-SoA scalar path
//! (`SmoothParams3::with_scalar_scoring(true)`) exactly — coordinates and
//! reports — across threads and part counts.

use lms_mesh3d::{
    Adjacency3, Boundary3, ResidentEngine3, SmoothEngine3, SmoothParams3, TetDomain, TetMesh,
    TetQualityMetric,
};
use lms_part::PartitionMethod;
use lms_smooth::domain::SmoothDomain;
use lms_smooth::{SoaCoords, SoaLike};
use proptest::prelude::*;

const METRICS: [TetQualityMetric; 3] =
    [TetQualityMetric::EdgeLengthRatio, TetQualityMetric::RadiusRatio, TetQualityMetric::MeanRatio];

fn batch_equals_scalar_on(mesh: &TetMesh, metric: TetQualityMetric) {
    let adj = Adjacency3::build(mesh);
    let boundary = Boundary3::detect(mesh);
    let dom = TetDomain::new(&adj, &boundary, mesh.tets(), metric);
    let mut soa = SoaCoords::<3>::with_len(mesh.num_vertices());
    soa.gather_from(mesh.coords());
    let rows: Vec<[u32; 4]> = dom.elements().to_vec();
    let mut out = vec![(0.0, false); rows.len()];
    dom.score_batch(&soa, &rows, &mut out);
    for (i, &row) in rows.iter().enumerate() {
        let (q, pos) = dom.score(mesh.coords(), row);
        assert_eq!(q.to_bits(), out[i].0.to_bits(), "metric {metric:?}, element {i}");
        assert_eq!(pos, out[i].1, "metric {metric:?}, element {i}");
        let (qs, ps) = dom.score_soa(&soa, row);
        assert_eq!(q.to_bits(), qs.to_bits());
        assert_eq!(pos, ps);
    }
}

#[test]
fn score_batch_matches_scalar_for_every_tet_metric() {
    // ragged sizes: tet counts exercise every 4-lane tail length
    for (nx, ny, nz, seed) in [(4, 5, 4, 1), (6, 4, 5, 5), (5, 5, 5, 9)] {
        let mesh = lms_mesh3d::generators::perturbed_tet_grid(nx, ny, nz, 0.3, seed);
        for metric in METRICS {
            batch_equals_scalar_on(&mesh, metric);
        }
    }
}

fn arb_mesh() -> impl Strategy<Value = TetMesh> {
    (4usize..7, 4usize..7, 4usize..7, 0u64..1000).prop_map(|(nx, ny, nz, seed)| {
        lms_mesh3d::generators::perturbed_tet_grid(nx, ny, nz, 0.3, seed)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// 3D resident runs: lane-batched scoring == forced scalar scoring,
    /// bit for bit, across threads {1, 2, 4} × parts {2, 4, 8} ×
    /// smart/plain.
    #[test]
    fn resident3_batched_equals_scalar_oracle(
        mesh in arb_mesh(), smart in any::<bool>(),
        k_ix in 0usize..3, threads_ix in 0usize..3,
    ) {
        let parts = [2usize, 4, 8][k_ix];
        let threads = [1usize, 2, 4][threads_ix];
        let params = SmoothParams3::paper().with_smart(smart).with_max_iters(2).with_tol(-1.0);
        let batched = ResidentEngine3::by_method(&mesh, params.clone(), parts, PartitionMethod::Rcb);
        let scalar = ResidentEngine3::by_method(
            &mesh, params.with_scalar_scoring(true), parts, PartitionMethod::Rcb,
        );
        let mut a = mesh.clone();
        let ra = batched.smooth(&mut a, threads);
        let mut b = mesh.clone();
        let rb = scalar.smooth(&mut b, threads);
        prop_assert_eq!(a.coords(), b.coords());
        prop_assert_eq!(ra, rb);
    }

    /// The serial 3D engine under the same toggle.
    #[test]
    fn serial3_batched_equals_scalar(mesh in arb_mesh(), smart in any::<bool>()) {
        let params = SmoothParams3::paper().with_smart(smart).with_max_iters(2).with_tol(-1.0);
        let mut a = mesh.clone();
        let ra = SmoothEngine3::new(&mesh, params.clone()).smooth(&mut a);
        let mut b = mesh.clone();
        let rb = SmoothEngine3::new(&mesh, params.with_scalar_scoring(true)).smooth(&mut b);
        prop_assert_eq!(a.coords(), b.coords());
        prop_assert_eq!(ra, rb);
    }
}
