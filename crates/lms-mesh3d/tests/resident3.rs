//! Property tests for the 3D partitioned/resident halo-exchange engines —
//! the acceptance gate of the dimension-generic refactor:
//!
//! * 3D `ResidentEngine3` output is **bit-identical** to serial
//!   part-major 3D Gauss–Seidel, across threads {1, 2, 4} × parts
//!   {2, 4, 8}, smart and plain, every partition method;
//! * resident and partitioned 3D engines agree bit for bit over the same
//!   decomposition;
//! * the residency invariant holds in 3D exactly as in 2D:
//!   `full_gathers == 1 && full_scatters == 1` for any sweep count, one
//!   exchange round per color step, per-round traffic bounded by the
//!   static schedule;
//! * repeated smooths on one engine spawn no further OS threads
//!   (persistent-pool regression, via `rayon::spawned_thread_count`).

use lms_mesh3d::{PartitionedEngine3, ResidentEngine3, SmoothEngine3, SmoothParams3, TetMesh};
use lms_part::PartitionMethod;
use proptest::prelude::*;

fn arb_mesh() -> impl Strategy<Value = TetMesh> {
    (4usize..8, 4usize..8, 4usize..8, 0u64..1000, 0..40u32).prop_map(|(nx, ny, nz, seed, jit)| {
        lms_mesh3d::generators::perturbed_tet_grid(nx, ny, nz, jit as f64 / 100.0, seed)
    })
}

/// The acceptance part counts: {2, 4, 8}.
const PARTS: [usize; 3] = [2, 4, 8];

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Bitwise determinism: 1, 2 and 4 threads produce identical
    /// coordinates and identical reports (exchange accounting included),
    /// smart and plain alike, for every partition method.
    #[test]
    fn resident3_is_bitwise_deterministic_across_threads(
        mesh in arb_mesh(), smart in any::<bool>(), iters in 1usize..4,
        k_ix in 0usize..3, method_ix in 0usize..4,
    ) {
        let params = SmoothParams3::paper().with_smart(smart).with_max_iters(iters);
        let engine = ResidentEngine3::by_method(
            &mesh, params, PARTS[k_ix], PartitionMethod::ALL[method_ix],
        );
        let mut one = mesh.clone();
        let r1 = engine.smooth(&mut one, 1);
        for threads in [2usize, 4] {
            let mut multi = mesh.clone();
            let rt = engine.smooth(&mut multi, threads);
            prop_assert_eq!(one.coords(), multi.coords(), "threads={}", threads);
            prop_assert_eq!(&r1, &rt, "threads={}", threads);
        }
    }

    /// The 3D resident sweep is *exactly* serial 3D Gauss–Seidel under
    /// the part-major visit order — coordinates match bit for bit across
    /// the acceptance grid of thread counts × part counts. Tolerance
    /// disabled to pin the sweep count (the running-sum fold order
    /// differs in ulps between engines).
    #[test]
    fn resident3_equals_serial_part_major_order(
        mesh in arb_mesh(), smart in any::<bool>(), iters in 1usize..4,
        k_ix in 0usize..3, method_ix in 0usize..4, threads_ix in 0usize..3,
    ) {
        let params = SmoothParams3::paper()
            .with_smart(smart)
            .with_max_iters(iters)
            .with_tol(-1.0);
        let engine = ResidentEngine3::by_method(
            &mesh, params.clone(), PARTS[k_ix], PartitionMethod::ALL[method_ix],
        );

        let mut par = mesh.clone();
        engine.smooth(&mut par, [1usize, 2, 4][threads_ix]);

        let order = engine.part_major_visit_order();
        let serial = SmoothEngine3::new(&mesh, params).with_visit_order(order);
        let mut ser = mesh.clone();
        serial.smooth(&mut ser);

        prop_assert_eq!(par.coords(), ser.coords());
    }

    /// Resident and partitioned 3D engines are bit-identical over the
    /// same decomposition: the residency protocol changes the data
    /// movement, not one bit of the arithmetic — in 3D exactly as in 2D,
    /// because both are the same generic code path.
    #[test]
    fn resident3_equals_partitioned3(
        mesh in arb_mesh(), smart in any::<bool>(), iters in 1usize..4,
        k_ix in 0usize..3, method_ix in 0usize..4,
    ) {
        let params = SmoothParams3::paper()
            .with_smart(smart)
            .with_max_iters(iters)
            .with_tol(-1.0);
        let method = PartitionMethod::ALL[method_ix];
        let resident = ResidentEngine3::by_method(&mesh, params.clone(), PARTS[k_ix], method);
        let partitioned = PartitionedEngine3::by_method(&mesh, params, PARTS[k_ix], method);

        let mut a = mesh.clone();
        resident.smooth(&mut a, 2);
        let mut b = mesh.clone();
        partitioned.smooth(&mut b, 2);

        prop_assert_eq!(a.coords(), b.coords());
        prop_assert_eq!(
            resident.part_major_visit_order(),
            partitioned.part_major_visit_order(),
            "both engines must expose one serial-equivalence order"
        );
    }

    /// The residency invariant in 3D: one full gather, one full scatter,
    /// one exchange round per color step — for any sweep count. Per-round
    /// traffic never exceeds the static schedule size.
    #[test]
    fn residency3_invariant_holds_for_any_sweep_count(
        mesh in arb_mesh(), smart in any::<bool>(), iters in 1usize..5,
        k_ix in 0usize..3,
    ) {
        let params = SmoothParams3::paper()
            .with_smart(smart)
            .with_max_iters(iters)
            .with_tol(-1.0);
        let engine =
            ResidentEngine3::by_method(&mesh, params, PARTS[k_ix], PartitionMethod::Rcb);
        let mut work = mesh.clone();
        let report = engine.smooth(&mut work, 2);
        let volume = report.exchange.expect("resident runs report exchange accounting");
        prop_assert_eq!(volume.full_gathers, 1);
        prop_assert_eq!(volume.full_scatters, 1);
        prop_assert_eq!(
            volume.exchange_rounds,
            iters * engine.interface_classes().len()
        );
        prop_assert!(
            volume.halo_entries_sent
                <= volume.exchange_rounds * engine.exchange_schedule().num_entries(),
            "{} entries over {} rounds exceeds the static schedule ({})",
            volume.halo_entries_sent, volume.exchange_rounds,
            engine.exchange_schedule().num_entries()
        );
    }
}

/// Thread-pool reuse regression: after the first run at a thread count,
/// further runs on the same 3D engine spawn no OS threads at all.
#[test]
fn engine3_runs_spawn_threads_once() {
    let mesh = lms_mesh3d::generators::perturbed_tet_grid(6, 6, 6, 0.3, 7);
    let params = SmoothParams3::paper().with_smart(true).with_max_iters(2).with_tol(-1.0);
    let engine = ResidentEngine3::by_method(&mesh, params, 4, PartitionMethod::Rcb);
    // first run pays the one-time spawn for this engine's pool
    engine.smooth(&mut mesh.clone(), 3);
    let after_first = rayon::spawned_thread_count();
    for _ in 0..5 {
        engine.smooth(&mut mesh.clone(), 3);
    }
    assert_eq!(
        rayon::spawned_thread_count(),
        after_first,
        "repeat runs must reuse the engine's parked workers"
    );
}
