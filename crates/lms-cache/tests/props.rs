//! Property-based tests for the memory-behaviour substrate.

use lms_cache::{
    binned_means, count_above, estimate_max_elements, quantile, sampled_distances, CacheConfig,
    CacheHierarchy, CacheLevel, Fenwick, LogHistogram, MemoryConfig, NodeLayout,
    ReuseDistanceAnalyzer, StackDistanceModel, Tlb, TlbConfig, WritebackCache, COLD,
};
use proptest::prelude::*;

fn arb_trace() -> impl Strategy<Value = Vec<u32>> {
    proptest::collection::vec(0u32..32, 1..400)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Fenwick prefix sums always agree with a naive accumulator.
    #[test]
    fn fenwick_matches_naive(
        updates in proptest::collection::vec((0usize..24, -5i64..6), 1..120),
    ) {
        let mut f = Fenwick::new(24);
        let mut naive = [0i64; 24];
        for (i, d) in updates {
            f.add(i, d);
            naive[i] += d;
        }
        for q in 0..24 {
            let expect: i64 = naive[..=q].iter().sum();
            prop_assert_eq!(f.prefix_sum(q), expect);
        }
    }

    /// Streaming and batch reuse-distance analysis agree.
    #[test]
    fn streaming_equals_batch(trace in arb_trace()) {
        let batch = ReuseDistanceAnalyzer::analyze(&trace, 32);
        let mut streaming = ReuseDistanceAnalyzer::new(32, 8); // force growth
        let live: Vec<u64> = trace.iter().map(|&e| streaming.access(e)).collect();
        prop_assert_eq!(batch, live);
    }

    /// Exactly one cold access per distinct element; every non-cold
    /// distance is below the number of distinct elements.
    #[test]
    fn cold_counts_and_distance_bounds(trace in arb_trace()) {
        let d = ReuseDistanceAnalyzer::analyze(&trace, 32);
        let distinct: std::collections::HashSet<u32> = trace.iter().copied().collect();
        let cold = d.iter().filter(|&&x| x == COLD).count();
        prop_assert_eq!(cold, distinct.len());
        for &x in d.iter().filter(|&&x| x != COLD) {
            prop_assert!(x < distinct.len() as u64);
        }
    }

    /// Histogram and quantile bookkeeping are conservative: totals add up
    /// and quantiles are monotone in q.
    #[test]
    fn histogram_and_quantiles(trace in arb_trace()) {
        let d = ReuseDistanceAnalyzer::analyze(&trace, 32);
        let h = LogHistogram::from_distances(&d);
        prop_assert_eq!(h.total as usize, d.len());
        prop_assert_eq!(h.reuses() + h.cold, h.total);
        prop_assert_eq!(
            h.buckets.iter().sum::<u64>(),
            h.reuses()
        );
        if h.reuses() > 0 {
            let q50 = quantile(&d, 0.5).unwrap();
            let q90 = quantile(&d, 0.9).unwrap();
            let q100 = quantile(&d, 1.0).unwrap();
            prop_assert!(q50 <= q90 && q90 <= q100);
            prop_assert_eq!(count_above(&d, q100), 0);
        }
        let means = binned_means(&d, 7);
        prop_assert_eq!(means.len(), 7);
        prop_assert!(means.iter().all(|m| m.is_finite() && *m >= 0.0));
    }

    /// The stack-distance model is monotone: a bigger cache never has more
    /// misses, and miss counts never exceed the access count.
    #[test]
    fn stack_model_monotonicity(trace in arb_trace(), c1 in 1u64..8, grow in 1u64..8) {
        let d = ReuseDistanceAnalyzer::analyze(&trace, 32);
        let small = StackDistanceModel::new(vec![c1]).apply(&d, true);
        let large = StackDistanceModel::new(vec![c1 + grow]).apply(&d, true);
        prop_assert!(large.misses[0] <= small.misses[0]);
        prop_assert!(small.misses[0] <= small.accesses);
    }

    /// estimate_max_elements inverts the model's miss count back to a
    /// value no larger than the true capacity.
    #[test]
    fn capacity_estimation_is_consistent(trace in arb_trace(), cap in 1u64..16) {
        let d = ReuseDistanceAnalyzer::analyze(&trace, 32);
        let misses = StackDistanceModel::new(vec![cap]).apply(&d, false).misses[0];
        let est = estimate_max_elements(&d, misses);
        // the largest distance that fit is ≤ the capacity
        prop_assert!(est <= cap || misses == 0);
    }

    /// Cache counters are conserved at every level, and lookup counts are
    /// monotone outward (L2 only sees L1 misses, etc.).
    #[test]
    fn hierarchy_conservation(trace in arb_trace()) {
        let mut h = CacheHierarchy::new(
            vec![
                CacheConfig { name: "L1", size_bytes: 256, line_bytes: 64, associativity: 2, latency_cycles: 1 },
                CacheConfig { name: "L2", size_bytes: 512, line_bytes: 64, associativity: 4, latency_cycles: 2 },
            ],
            MemoryConfig { latency_cycles: 10 },
            NodeLayout::coords_only(),
        );
        h.run_trace(&trace);
        let stats = h.level_stats();
        for s in &stats {
            prop_assert_eq!(s.hits + s.misses, s.accesses);
        }
        prop_assert_eq!(stats[1].accesses, stats[0].misses);
        prop_assert_eq!(h.memory_accesses(), stats[1].misses);
    }

    /// A direct-mapped cache never beats a fully-associative cache of the
    /// same size on hit count... is NOT generally true (Belady anomalies
    /// exist for direct mapping), but both must agree on total accesses and
    /// cold misses.
    #[test]
    fn associativity_preserves_access_accounting(trace in arb_trace(), ways_pow in 0u32..3) {
        let lines = 8usize;
        let ways = 1usize << ways_pow;
        let mut c = CacheLevel::new(CacheConfig {
            name: "X",
            size_bytes: 64 * lines,
            line_bytes: 64,
            associativity: ways,
            latency_cycles: 1,
        });
        for &e in &trace {
            c.access_line(e as u64);
        }
        let s = c.stats();
        prop_assert_eq!(s.accesses as usize, trace.len());
        let distinct: std::collections::HashSet<u32> = trace.iter().copied().collect();
        prop_assert!(s.misses as usize >= distinct.len().min(trace.len()) / lines.max(1));
    }

    /// SHARDS at rate 1 (every element sampled) reproduces the exact
    /// analysis verbatim for any trace.
    #[test]
    fn shards_rate_one_is_exact(trace in arb_trace()) {
        let exact = ReuseDistanceAnalyzer::analyze(&trace, 32);
        let s = sampled_distances(&trace, 32, 0, 7);
        prop_assert_eq!(s.distances, exact);
        prop_assert_eq!(s.sampled_accesses, trace.len());
    }

    /// The SHARDS subtrace is exactly the accesses whose element hashes
    /// into the sample, regardless of trace content.
    #[test]
    fn shards_monitors_the_hash_sample(trace in arb_trace(), rate_log2 in 0u32..5) {
        let s = sampled_distances(&trace, 32, rate_log2, 11);
        let expect = trace
            .iter()
            .filter(|&&e| lms_cache::is_sampled(e, rate_log2, 11))
            .count();
        prop_assert_eq!(s.sampled_accesses, expect);
        prop_assert_eq!(s.distances.len(), expect);
    }

    /// TLB accounting: hits at both levels plus walks cover every access,
    /// and a repeat of the same address is always an L1 hit.
    #[test]
    fn tlb_accounting_is_complete(addrs in proptest::collection::vec(0u64..4096, 1..200)) {
        let mut tlb = Tlb::new(TlbConfig {
            page_bytes: 64,
            l1_entries: 4,
            l2_entries: 8,
            l2_latency: 5,
            walk_latency: 50,
        });
        for &a in &addrs {
            tlb.access(a);
            // immediate re-translation of the same page: L1 hit, zero cost
            prop_assert_eq!(tlb.access(a), 0);
        }
        let s = tlb.stats();
        prop_assert_eq!(s.l1_hits + s.l2_hits + s.walks, s.accesses);
        prop_assert_eq!(s.accesses as usize, addrs.len() * 2);
    }

    /// Write-back cache conservation: hits + fills = accesses, and every
    /// write-back or drained line corresponds to a distinct dirty fill.
    #[test]
    fn writeback_conservation(
        ops in proptest::collection::vec((0u64..64, proptest::bool::ANY), 1..300),
    ) {
        let mut c = WritebackCache::new(CacheConfig {
            name: "T",
            size_bytes: 64 * 8,
            line_bytes: 64,
            associativity: 8,
            latency_cycles: 1,
        });
        let mut writes = 0u64;
        for &(line, w) in &ops {
            c.access_line(line, w);
            writes += w as u64;
        }
        c.drain();
        let s = c.stats();
        prop_assert_eq!(s.hits + s.fills, s.accesses);
        prop_assert!(s.writebacks + s.drained <= s.fills.min(writes + 1));
        // a second drain must be a no-op
        let before = s;
        c.drain();
        prop_assert_eq!(c.stats(), before);
    }

    /// With no writes at all, no write-back traffic can ever appear.
    #[test]
    fn read_only_traces_never_write_back(trace in arb_trace()) {
        let mut c = WritebackCache::new(CacheConfig {
            name: "T",
            size_bytes: 64 * 4,
            line_bytes: 64,
            associativity: 4,
            latency_cycles: 1,
        });
        for &e in &trace {
            c.access_line(e as u64, false);
        }
        c.drain();
        prop_assert_eq!(c.stats().writebacks, 0);
        prop_assert_eq!(c.stats().drained, 0);
    }
}
