//! Sampled (SHARDS-style) reuse-distance analysis.
//!
//! The paper measured reuse distance with "a verbose run noting the data
//! locations being addressed" (§5.2.3) — an `O(N log M)` full-trace
//! analysis. Production monitors use *spatially hashed sampling* (SHARDS,
//! Waldspurger et al., FAST '15): pick a pseudo-random subset of elements
//! at rate `R`, track reuse distances only between accesses to sampled
//! elements, and rescale each measured distance by `1/R`. Because the
//! sample is by element (not by access), every access to a sampled element
//! is observed and the distance estimator is unbiased up to hash
//! uniformity.
//!
//! This module implements fixed-rate SHARDS over the same element-index
//! traces the exact [`ReuseDistanceAnalyzer`] consumes, so the `sampled`
//! experiment can quantify the accuracy/cost trade-off on LMS traces.
//!
//! [`ReuseDistanceAnalyzer`]: crate::reuse::ReuseDistanceAnalyzer

use crate::reuse::{ReuseDistanceAnalyzer, ReuseStats, COLD};

/// Result of a sampled analysis.
#[derive(Debug, Clone, PartialEq)]
pub struct SampledReuse {
    /// Rescaled distance estimates, one per access *to a sampled element*
    /// (cold accesses keep the [`COLD`] marker).
    pub distances: Vec<u64>,
    /// The sampling rate `R = 2^-rate_log2`.
    pub rate: f64,
    /// Number of trace accesses that hit a sampled element.
    pub sampled_accesses: usize,
    /// Total trace length.
    pub total_accesses: usize,
}

impl SampledReuse {
    /// Summary statistics over the rescaled estimates.
    pub fn stats(&self) -> ReuseStats {
        ReuseStats::from_distances(&self.distances)
    }

    /// Fraction of accesses that were monitored.
    pub fn sample_fraction(&self) -> f64 {
        if self.total_accesses == 0 {
            0.0
        } else {
            self.sampled_accesses as f64 / self.total_accesses as f64
        }
    }
}

/// SplitMix64 — the spatial hash deciding element membership.
#[inline]
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// True when element `e` is in the sample at rate `2^-rate_log2`.
#[inline]
pub fn is_sampled(e: u32, rate_log2: u32, seed: u64) -> bool {
    debug_assert!(rate_log2 < 64);
    splitmix64(e as u64 ^ seed) & ((1u64 << rate_log2) - 1) == 0
}

/// Fixed-rate SHARDS analysis of `trace` over `num_elements` element ids.
///
/// `rate_log2 = k` samples elements at rate `R = 2^-k` (`k = 0` keeps every
/// element and reproduces the exact analysis). Distances are measured in
/// the sampled subspace and rescaled by `2^k`.
pub fn sampled_distances(
    trace: &[u32],
    num_elements: usize,
    rate_log2: u32,
    seed: u64,
) -> SampledReuse {
    // Dense renumbering of the sampled elements so the exact analyzer can
    // run on the filtered subtrace.
    let mut dense = vec![u32::MAX; num_elements];
    let mut next = 0u32;
    let mut sub = Vec::new();
    for &e in trace {
        if is_sampled(e, rate_log2, seed) {
            let slot = &mut dense[e as usize];
            if *slot == u32::MAX {
                *slot = next;
                next += 1;
            }
            sub.push(*slot);
        }
    }
    let sub_distances = ReuseDistanceAnalyzer::analyze(&sub, next as usize);
    let scale = 1u64 << rate_log2;
    let distances = sub_distances
        .iter()
        .map(|&d| if d == COLD { COLD } else { d.saturating_mul(scale) })
        .collect();
    SampledReuse {
        distances,
        rate: 1.0 / scale as f64,
        sampled_accesses: sub.len(),
        total_accesses: trace.len(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reuse::quantile;

    /// A cyclic trace over `m` elements repeated `rounds` times: every
    /// re-access has exact reuse distance `m − 1`.
    fn cyclic_trace(m: u32, rounds: usize) -> Vec<u32> {
        (0..rounds).flat_map(|_| 0..m).collect()
    }

    #[test]
    fn rate_zero_reproduces_exact_analysis() {
        let trace = cyclic_trace(50, 4);
        let exact = ReuseDistanceAnalyzer::analyze(&trace, 50);
        let s = sampled_distances(&trace, 50, 0, 1);
        assert_eq!(s.distances, exact);
        assert_eq!(s.sampled_accesses, trace.len());
        assert_eq!(s.rate, 1.0);
    }

    #[test]
    fn sampling_reduces_monitored_accesses_roughly_by_rate() {
        let trace = cyclic_trace(4096, 2);
        let s = sampled_distances(&trace, 4096, 3, 42); // R = 1/8
        let frac = s.sample_fraction();
        assert!((0.06..0.20).contains(&frac), "expected ≈ 1/8 of accesses monitored, got {frac}");
    }

    #[test]
    fn cyclic_trace_estimates_are_near_exact() {
        // exact mean reuse distance is m−1 for every re-access
        let m = 4096u32;
        let trace = cyclic_trace(m, 3);
        let s = sampled_distances(&trace, m as usize, 4, 7); // R = 1/16
        let mean = s.stats().mean;
        let exact = (m - 1) as f64;
        let rel = (mean - exact).abs() / exact;
        assert!(rel < 0.12, "mean estimate {mean} vs exact {exact} (rel {rel})");
    }

    #[test]
    fn quantiles_track_exact_on_mixed_trace() {
        // mixture: hot pair (distance ~1) + cold sweep (distance ~m−1)
        let m = 2048u32;
        let mut trace = Vec::new();
        for round in 0..4 {
            for e in 0..m {
                trace.push(e);
                if round % 2 == 0 {
                    trace.push(e); // immediate re-access, distance 0
                }
            }
        }
        let exact_d = ReuseDistanceAnalyzer::analyze(&trace, m as usize);
        let s = sampled_distances(&trace, m as usize, 3, 3);
        for q in [0.5, 0.9] {
            let q_exact = quantile(&exact_d, q).unwrap().max(1) as f64;
            let q_est = quantile(&s.distances, q).unwrap().max(1) as f64;
            let ratio = q_est / q_exact;
            assert!(
                (0.5..=2.0).contains(&ratio),
                "q{q}: estimate {q_est} vs exact {q_exact} (ratio {ratio})"
            );
        }
    }

    #[test]
    fn cold_accesses_stay_cold() {
        let trace: Vec<u32> = (0..1000).collect();
        let s = sampled_distances(&trace, 1000, 2, 5);
        assert!(s.distances.iter().all(|&d| d == COLD));
    }

    #[test]
    fn deterministic_in_seed() {
        let trace = cyclic_trace(512, 2);
        let a = sampled_distances(&trace, 512, 3, 9);
        let b = sampled_distances(&trace, 512, 3, 9);
        let c = sampled_distances(&trace, 512, 3, 10);
        assert_eq!(a, b);
        assert_ne!(a.sampled_accesses, 0);
        // a different seed picks a different subset (with overwhelming
        // probability on 512 elements)
        assert_ne!(a.distances.len(), 0);
        let _ = c;
    }

    #[test]
    fn empty_trace_ok() {
        let s = sampled_distances(&[], 0, 4, 1);
        assert!(s.distances.is_empty());
        assert_eq!(s.sample_fraction(), 0.0);
    }
}
