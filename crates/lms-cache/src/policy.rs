//! Replacement-policy variants of the set-associative cache.
//!
//! The paper's analysis (§3.1) assumes LRU, "the algorithm caches often
//! follow". Real L3s use pseudo-random or not-recently-used variants; this
//! module provides FIFO and deterministic-random replacement next to LRU so
//! the ablation bench can check that the ordering ranking (RANDOM ≫ ORI >
//! BFS > RDR) is not an artefact of the LRU assumption.

use crate::cache::{CacheConfig, CacheStats};

/// How a full set chooses its victim.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReplacementPolicy {
    /// Evict the least-recently-used line (the paper's model).
    Lru,
    /// Evict the oldest-inserted line, ignoring hits.
    Fifo,
    /// Evict a pseudo-random line (xorshift64, deterministic in the seed).
    Random {
        /// RNG seed — runs with equal seeds are identical.
        seed: u64,
    },
}

impl ReplacementPolicy {
    /// Short lowercase name for reports.
    pub fn name(self) -> &'static str {
        match self {
            ReplacementPolicy::Lru => "lru",
            ReplacementPolicy::Fifo => "fifo",
            ReplacementPolicy::Random { .. } => "random",
        }
    }
}

/// A set-associative cache with a configurable replacement policy.
///
/// Behaviour-compatible with [`crate::cache::CacheLevel`] when the policy
/// is [`ReplacementPolicy::Lru`] (property-tested).
#[derive(Debug, Clone)]
pub struct PolicyCache {
    config: CacheConfig,
    policy: ReplacementPolicy,
    /// Per-set tags. LRU keeps most-recent LAST; FIFO keeps oldest FIRST
    /// and never reorders; random never reorders.
    sets: Vec<Vec<u64>>,
    stats: CacheStats,
    rng_state: u64,
}

impl PolicyCache {
    /// Build an empty cache.
    pub fn new(config: CacheConfig, policy: ReplacementPolicy) -> Self {
        assert!(config.line_bytes > 0 && config.size_bytes.is_multiple_of(config.line_bytes));
        assert!(config.associativity > 0, "associativity must be positive");
        let rng_state = match policy {
            // xorshift must not start at 0
            ReplacementPolicy::Random { seed } => seed | 1,
            _ => 0,
        };
        PolicyCache {
            sets: vec![Vec::with_capacity(config.associativity); config.num_sets()],
            config,
            policy,
            stats: CacheStats::default(),
            rng_state,
        }
    }

    /// The configuration.
    pub fn config(&self) -> &CacheConfig {
        &self.config
    }

    /// The replacement policy.
    pub fn policy(&self) -> ReplacementPolicy {
        self.policy
    }

    /// Counters so far.
    pub fn stats(&self) -> CacheStats {
        self.stats
    }

    fn next_random(&mut self) -> u64 {
        let mut x = self.rng_state;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.rng_state = x;
        x
    }

    /// Look up `line_addr`; returns true on hit.
    pub fn access_line(&mut self, line_addr: u64) -> bool {
        self.stats.accesses += 1;
        let set_idx = (line_addr % self.sets.len() as u64) as usize;
        let assoc = self.config.associativity;
        let hit_pos = self.sets[set_idx].iter().position(|&t| t == line_addr);
        if let Some(pos) = hit_pos {
            if self.policy == ReplacementPolicy::Lru {
                let set = &mut self.sets[set_idx];
                let tag = set.remove(pos);
                set.push(tag);
            }
            self.stats.hits += 1;
            return true;
        }
        self.stats.misses += 1;
        let victim = if self.sets[set_idx].len() == assoc {
            Some(match self.policy {
                ReplacementPolicy::Lru | ReplacementPolicy::Fifo => 0,
                ReplacementPolicy::Random { .. } => (self.next_random() % assoc as u64) as usize,
            })
        } else {
            None
        };
        let set = &mut self.sets[set_idx];
        if let Some(v) = victim {
            set.remove(v);
        }
        set.push(line_addr);
        false
    }

    /// Run a raw line-address trace; returns the final counters.
    pub fn run_line_trace(&mut self, trace: &[u64]) -> CacheStats {
        for &line in trace {
            self.access_line(line);
        }
        self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cache::CacheLevel;

    fn cfg(assoc: usize, lines: usize) -> CacheConfig {
        CacheConfig {
            name: "T",
            size_bytes: 64 * lines,
            line_bytes: 64,
            associativity: assoc,
            latency_cycles: 1,
        }
    }

    fn pseudo_trace(n: usize, universe: u64, mut x: u64) -> Vec<u64> {
        x |= 1;
        (0..n)
            .map(|_| {
                x ^= x << 13;
                x ^= x >> 7;
                x ^= x << 17;
                x % universe
            })
            .collect()
    }

    #[test]
    fn lru_policy_matches_the_reference_cache_level() {
        let trace = pseudo_trace(5000, 300, 7);
        let mut reference = CacheLevel::new(cfg(4, 32));
        let mut policy = PolicyCache::new(cfg(4, 32), ReplacementPolicy::Lru);
        for &line in &trace {
            assert_eq!(reference.access_line(line), policy.access_line(line));
        }
        assert_eq!(reference.stats(), policy.stats());
    }

    #[test]
    fn fifo_ignores_recency() {
        // 1-set, 2-way. FIFO: hit on 0 does not protect it.
        let mut fifo = PolicyCache::new(cfg(2, 2), ReplacementPolicy::Fifo);
        fifo.access_line(0);
        fifo.access_line(1);
        assert!(fifo.access_line(0)); // hit, but 0 stays oldest
        fifo.access_line(2); // evicts 0 under FIFO
        assert!(!fifo.access_line(0), "FIFO must have evicted 0");
        // same sequence under LRU keeps 0
        let mut lru = PolicyCache::new(cfg(2, 2), ReplacementPolicy::Lru);
        lru.access_line(0);
        lru.access_line(1);
        assert!(lru.access_line(0));
        lru.access_line(2); // evicts 1 under LRU
        assert!(lru.access_line(0), "LRU must have kept 0");
    }

    #[test]
    fn random_policy_is_deterministic_in_its_seed() {
        let trace = pseudo_trace(2000, 500, 3);
        let run = |seed| {
            PolicyCache::new(cfg(4, 16), ReplacementPolicy::Random { seed }).run_line_trace(&trace)
        };
        assert_eq!(run(1), run(1));
        // different seed → almost certainly different victim choices
        assert_ne!(run(1).hits, run(99).hits);
    }

    #[test]
    fn all_policies_agree_when_no_eviction_happens() {
        // working set fits: policy is irrelevant
        let trace: Vec<u64> = (0..16).chain(0..16).collect();
        for policy in
            [ReplacementPolicy::Lru, ReplacementPolicy::Fifo, ReplacementPolicy::Random { seed: 5 }]
        {
            let stats = PolicyCache::new(cfg(16, 16), policy).run_line_trace(&trace);
            assert_eq!(stats.hits, 16, "{}", policy.name());
            assert_eq!(stats.misses, 16, "{}", policy.name());
        }
    }

    #[test]
    fn loop_slightly_over_capacity_ranks_policies_sanely() {
        // cyclic scan over assoc+1 lines in one set: LRU = 0 hits; FIFO =
        // 0 hits; random replacement hits sometimes — the classic case
        // where random beats LRU.
        let trace: Vec<u64> = (0..1000u64).map(|i| (i % 5) * 8).collect(); // 8 sets: all map to set 0
        let lru = PolicyCache::new(cfg(4, 32), ReplacementPolicy::Lru).run_line_trace(&trace);
        let fifo = PolicyCache::new(cfg(4, 32), ReplacementPolicy::Fifo).run_line_trace(&trace);
        let rnd = PolicyCache::new(cfg(4, 32), ReplacementPolicy::Random { seed: 11 })
            .run_line_trace(&trace);
        assert_eq!(lru.hits, 0);
        assert_eq!(fifo.hits, 0);
        assert!(rnd.hits > 100, "random replacement should escape thrash, got {}", rnd.hits);
    }
}
