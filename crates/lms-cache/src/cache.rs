//! A single set-associative LRU cache level.

/// Static description of one cache level.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheConfig {
    /// Human-readable name (`"L1"`, `"L2"`, …).
    pub name: &'static str,
    /// Total capacity in bytes.
    pub size_bytes: usize,
    /// Line size in bytes (must divide `size_bytes`).
    pub line_bytes: usize,
    /// Number of ways per set (`0` is invalid; use `ways == num_lines` for
    /// fully associative).
    pub associativity: usize,
    /// Access latency in cycles (used by the cost model).
    pub latency_cycles: u64,
}

impl CacheConfig {
    /// Number of cache lines.
    pub fn num_lines(&self) -> usize {
        self.size_bytes / self.line_bytes
    }

    /// Number of sets.
    pub fn num_sets(&self) -> usize {
        (self.num_lines() / self.associativity).max(1)
    }

    /// Capacity in elements of `elem_bytes` each, under the paper's
    /// theoretical fully-associative model (§3.1 and footnote 1).
    pub fn capacity_elements(&self, elem_bytes: usize) -> u64 {
        (self.size_bytes / elem_bytes.max(1)) as u64
    }
}

/// Hit/miss counters of one level.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups that reached this level.
    pub accesses: u64,
    /// Lookups satisfied by this level.
    pub hits: u64,
    /// Lookups that had to go further out.
    pub misses: u64,
}

impl CacheStats {
    /// `misses / accesses` (0 when idle).
    pub fn miss_rate(&self) -> f64 {
        if self.accesses == 0 {
            0.0
        } else {
            self.misses as f64 / self.accesses as f64
        }
    }
}

/// A set-associative LRU cache over 64-bit line addresses.
#[derive(Debug, Clone)]
pub struct CacheLevel {
    config: CacheConfig,
    /// Per-set line tags, most recently used LAST.
    sets: Vec<Vec<u64>>,
    stats: CacheStats,
}

impl CacheLevel {
    /// Build an empty cache.
    pub fn new(config: CacheConfig) -> Self {
        assert!(config.line_bytes > 0 && config.size_bytes.is_multiple_of(config.line_bytes));
        assert!(config.associativity > 0, "associativity must be positive");
        let sets = vec![Vec::with_capacity(config.associativity); config.num_sets()];
        CacheLevel { config, sets, stats: CacheStats::default() }
    }

    /// The level's configuration.
    pub fn config(&self) -> &CacheConfig {
        &self.config
    }

    /// Counters so far.
    pub fn stats(&self) -> CacheStats {
        self.stats
    }

    /// Look up line `line_addr` (already divided by the line size), insert
    /// it as most-recently-used, and report whether it was a hit.
    pub fn access_line(&mut self, line_addr: u64) -> bool {
        self.stats.accesses += 1;
        let set_idx = (line_addr % self.sets.len() as u64) as usize;
        let set = &mut self.sets[set_idx];
        if let Some(pos) = set.iter().position(|&t| t == line_addr) {
            // hit: move to MRU position
            let tag = set.remove(pos);
            set.push(tag);
            self.stats.hits += 1;
            true
        } else {
            if set.len() == self.config.associativity {
                set.remove(0); // evict LRU
            }
            set.push(line_addr);
            self.stats.misses += 1;
            false
        }
    }

    /// Insert or refresh `line_addr` **without touching the demand
    /// counters** — the fill path of a hardware prefetcher. The line lands
    /// in the MRU position; the LRU line is evicted if the set is full.
    pub fn insert_line(&mut self, line_addr: u64) {
        let set_idx = (line_addr % self.sets.len() as u64) as usize;
        let set = &mut self.sets[set_idx];
        if let Some(pos) = set.iter().position(|&t| t == line_addr) {
            let tag = set.remove(pos);
            set.push(tag);
        } else {
            if set.len() == self.config.associativity {
                set.remove(0);
            }
            set.push(line_addr);
        }
    }

    /// True when `line_addr` is currently resident (no counter or LRU
    /// side effects).
    pub fn contains_line(&self, line_addr: u64) -> bool {
        let set_idx = (line_addr % self.sets.len() as u64) as usize;
        self.sets[set_idx].contains(&line_addr)
    }

    /// Drop all cached lines, keeping the counters.
    pub fn flush(&mut self) {
        for set in &mut self.sets {
            set.clear();
        }
    }

    /// Zero the counters, keeping the contents.
    pub fn reset_stats(&mut self) {
        self.stats = CacheStats::default();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny(assoc: usize, lines: usize) -> CacheLevel {
        CacheLevel::new(CacheConfig {
            name: "T",
            size_bytes: 64 * lines,
            line_bytes: 64,
            associativity: assoc,
            latency_cycles: 1,
        })
    }

    #[test]
    fn config_derived_quantities() {
        let c = CacheConfig {
            name: "L1",
            size_bytes: 32 * 1024,
            line_bytes: 64,
            associativity: 8,
            latency_cycles: 4,
        };
        assert_eq!(c.num_lines(), 512);
        assert_eq!(c.num_sets(), 64);
        assert_eq!(c.capacity_elements(66), 32 * 1024 / 66);
    }

    #[test]
    fn first_access_misses_second_hits() {
        let mut c = tiny(2, 4);
        assert!(!c.access_line(7));
        assert!(c.access_line(7));
        assert_eq!(c.stats().accesses, 2);
        assert_eq!(c.stats().hits, 1);
        assert_eq!(c.stats().misses, 1);
        assert!((c.stats().miss_rate() - 0.5).abs() < 1e-15);
    }

    #[test]
    fn lru_eviction_within_a_set() {
        // fully associative, 2 lines total
        let mut c = tiny(2, 2);
        c.access_line(0);
        c.access_line(2); // same set in a 1-set cache
        c.access_line(0); // refresh 0 → 2 is now LRU
        c.access_line(4); // evicts 2
        assert!(c.access_line(0), "0 must still be resident");
        assert!(!c.access_line(2), "2 must have been evicted");
    }

    #[test]
    fn set_mapping_separates_conflicts() {
        // 2 sets × 1 way: even lines → set 0, odd lines → set 1.
        let mut c = tiny(1, 2);
        c.access_line(0);
        c.access_line(1);
        assert!(c.access_line(0), "line 0 must not conflict with line 1");
        assert!(c.access_line(1));
    }

    #[test]
    fn flush_clears_content_not_stats() {
        let mut c = tiny(2, 4);
        c.access_line(3);
        c.flush();
        assert!(!c.access_line(3));
        assert_eq!(c.stats().accesses, 2);
    }

    #[test]
    fn reset_stats_keeps_content() {
        let mut c = tiny(2, 4);
        c.access_line(3);
        c.reset_stats();
        assert!(c.access_line(3));
        assert_eq!(c.stats().accesses, 1);
        assert_eq!(c.stats().hits, 1);
    }

    #[test]
    fn working_set_larger_than_cache_thrashes() {
        // 4-line fully-associative cache, cyclic scan over 8 lines: LRU
        // guarantees 100% misses after warmup.
        let mut c = tiny(4, 4);
        for _ in 0..4 {
            for line in 0..8u64 {
                c.access_line(line);
            }
        }
        assert_eq!(c.stats().hits, 0, "cyclic scan beyond capacity never hits under LRU");
    }
}
