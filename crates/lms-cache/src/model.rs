//! The paper's analytical models: the theoretical stack-distance miss model
//! (§3.1), the Equation (2) cycle-cost model, and the Table 3 estimators.

use crate::hierarchy::CacheHierarchy;
use crate::reuse::COLD;

/// Fully-associative LRU miss model over per-level capacities measured in
/// *elements*: an access misses level `X` iff its reuse distance exceeds
/// the capacity of `X` (cold accesses miss every level).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StackDistanceModel {
    /// Capacity of each level in elements, innermost first.
    pub capacities: Vec<u64>,
}

/// Per-level outcome of the stack-distance model.
#[derive(Debug, Clone, PartialEq)]
pub struct ModelOutcome {
    /// Total accesses analysed.
    pub accesses: u64,
    /// Misses per level (including cold misses when requested).
    pub misses: Vec<u64>,
}

impl ModelOutcome {
    /// `misses[level] / accesses`.
    pub fn miss_rates(&self) -> Vec<f64> {
        self.misses
            .iter()
            .map(|&m| if self.accesses == 0 { 0.0 } else { m as f64 / self.accesses as f64 })
            .collect()
    }
}

impl StackDistanceModel {
    /// Model with explicit per-level capacities.
    pub fn new(capacities: Vec<u64>) -> Self {
        assert!(!capacities.is_empty());
        assert!(
            capacities.windows(2).all(|w| w[0] <= w[1]),
            "capacities must be non-decreasing outward"
        );
        StackDistanceModel { capacities }
    }

    /// Capacities derived from a simulated hierarchy's sizes and layout.
    pub fn from_hierarchy(h: &CacheHierarchy) -> Self {
        StackDistanceModel::new(h.capacities_in_elements())
    }

    /// Apply the model to a reuse-distance stream.
    ///
    /// `count_cold` controls whether first-ever accesses are charged as
    /// misses at every level (true models a cold-start machine; the paper's
    /// Table 3 subtracts compulsory misses, i.e. `false`).
    pub fn apply(&self, distances: &[u64], count_cold: bool) -> ModelOutcome {
        let mut misses = vec![0u64; self.capacities.len()];
        for &d in distances {
            if d == COLD {
                if count_cold {
                    for m in misses.iter_mut() {
                        *m += 1;
                    }
                }
                continue;
            }
            for (level, &cap) in self.capacities.iter().enumerate() {
                if d > cap {
                    misses[level] += 1;
                }
            }
        }
        ModelOutcome { accesses: distances.len() as u64, misses }
    }
}

/// Cycle costs of the Equation (2) model: `c2`/`c3`/`cm` are the costs of
/// an access served by L2, L3 and memory respectively.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CostModel {
    /// Cost of an L2 access (paper: 10 cycles).
    pub c2: u64,
    /// Cost of an L3 access (paper: 38–170 cycles; midpoint default 100).
    pub c3: u64,
    /// Cost of a memory access (paper: 175–290 cycles; midpoint default 230).
    pub cm: u64,
}

impl CostModel {
    /// Westmere-EX costs from §5.1 (midpoints of reported ranges).
    pub fn westmere_ex() -> Self {
        CostModel { c2: 10, c3: 100, cm: 230 }
    }

    /// Equation (2) with miss *rates*:
    /// `(m1·c2 + m1·m2·c3 + m1·m2·m3·cm) · accesses`.
    pub fn extra_cycles_from_rates(&self, m1: f64, m2: f64, m3: f64, accesses: u64) -> f64 {
        (m1 * self.c2 as f64 + m1 * m2 * self.c3 as f64 + m1 * m2 * m3 * self.cm as f64)
            * accesses as f64
    }

    /// Equation (2) with absolute miss counts (`nX` = accesses missing LX):
    /// `n1·c2 + n2·c3 + n3·cm`.
    pub fn extra_cycles_from_misses(&self, n1: u64, n2: u64, n3: u64) -> u64 {
        n1 * self.c2 + n2 * self.c3 + n3 * self.cm
    }
}

/// Table 3's right half: assuming the `observed_misses` accesses with the
/// **largest** reuse distances are the ones that missed, estimate the
/// maximum number of elements the cache was effectively holding — the
/// smallest distance that still missed, minus nothing: we return the
/// largest distance that *fit* (the `(observed_misses+1)`-th largest).
///
/// Returns the maximum distance when nothing missed, and 0 when everything
/// (or more) missed. Cold accesses are ignored.
pub fn estimate_max_elements(distances: &[u64], observed_misses: u64) -> u64 {
    let mut finite: Vec<u64> = distances.iter().copied().filter(|&d| d != COLD).collect();
    if finite.is_empty() {
        return 0;
    }
    finite.sort_unstable_by(|a, b| b.cmp(a)); // descending
    let k = observed_misses as usize;
    if k >= finite.len() {
        0
    } else {
        finite[k]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::address::NodeLayout;

    #[test]
    fn model_thresholds_split_misses() {
        let m = StackDistanceModel::new(vec![4, 16]);
        let distances = vec![0, 3, 4, 5, 15, 16, 17, COLD];
        let out = m.apply(&distances, false);
        assert_eq!(out.accesses, 8);
        assert_eq!(out.misses, vec![4, 1]); // {5,15,16,17} > 4; {17} > 16
        let with_cold = m.apply(&distances, true);
        assert_eq!(with_cold.misses, vec![5, 2]);
    }

    #[test]
    fn miss_rates_normalise_by_accesses() {
        let m = StackDistanceModel::new(vec![1]);
        let out = m.apply(&[0, 2, 2, 0], false);
        assert_eq!(out.miss_rates(), vec![0.5]);
    }

    #[test]
    fn from_hierarchy_matches_capacities() {
        let h = CacheHierarchy::westmere_ex(NodeLayout::paper_66());
        let m = StackDistanceModel::from_hierarchy(&h);
        assert_eq!(m.capacities, vec![496, 3971, 381_300]);
    }

    #[test]
    #[should_panic]
    fn decreasing_capacities_rejected() {
        StackDistanceModel::new(vec![10, 5]);
    }

    #[test]
    fn eq2_rates_and_misses_agree() {
        let c = CostModel::westmere_ex();
        // 1000 accesses, rates 0.1 / 0.5 / 0.2 → n1=100, n2=50, n3=10.
        let via_rates = c.extra_cycles_from_rates(0.1, 0.5, 0.2, 1000);
        let via_misses = c.extra_cycles_from_misses(100, 50, 10) as f64;
        assert!((via_rates - via_misses).abs() < 1e-9);
    }

    #[test]
    fn eq2_zero_misses_cost_nothing() {
        let c = CostModel::westmere_ex();
        assert_eq!(c.extra_cycles_from_misses(0, 0, 0), 0);
        assert_eq!(c.extra_cycles_from_rates(0.0, 0.0, 0.0, 1_000_000), 0.0);
    }

    #[test]
    fn max_elements_estimation() {
        let d = vec![10, 50, 3, 7, 100, COLD];
        // 2 misses → the two largest (100, 50) missed; largest fitting is 10.
        assert_eq!(estimate_max_elements(&d, 2), 10);
        // 0 misses → everything fit; estimate is the max distance.
        assert_eq!(estimate_max_elements(&d, 0), 100);
        // ≥ all finite → nothing fit.
        assert_eq!(estimate_max_elements(&d, 5), 0);
        assert_eq!(estimate_max_elements(&[COLD], 1), 0);
    }

    #[test]
    fn model_and_estimator_are_inverse_ish() {
        // Apply the model, then re-estimate capacity from its miss count:
        // the estimate must be ≤ the true capacity and ≥ the largest
        // fitting distance.
        let caps = vec![8u64];
        let m = StackDistanceModel::new(caps.clone());
        let d: Vec<u64> = vec![1, 2, 3, 9, 10, 4, 20, 8];
        let out = m.apply(&d, false);
        let est = estimate_max_elements(&d, out.misses[0]);
        assert_eq!(est, 8);
        assert!(est <= caps[0]);
    }
}
