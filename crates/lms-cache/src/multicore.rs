//! Multicore cache simulation (the paper's §5.3 scaling study).
//!
//! The Westmere-EX machine has 4 sockets × 8 cores: private 32 KiB L1 and
//! 256 KiB L2 per core, one 24 MiB L3 per socket. This simulator runs one
//! access trace per thread against that topology, interleaving threads
//! round-robin (one element each per step) and charging per-thread cycle
//! costs; the wall-clock estimate is the maximum per-thread cycle count.
//!
//! This is the substitution for real 32-core runs (DESIGN.md §3): the paper
//! itself attributes its superlinear scaling to the growth of aggregate
//! cache capacity with the thread count (§5.3, Figure 11) — exactly the
//! mechanism simulated here.

use crate::address::NodeLayout;
use crate::cache::{CacheConfig, CacheLevel, CacheStats};
use crate::hierarchy::MemoryConfig;

/// How threads are pinned to sockets.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Affinity {
    /// Fill socket 0 first (`KMP_AFFINITY=compact`, the paper's setting).
    Compact,
    /// Round-robin across sockets (`scatter`) — the hypothesis the paper
    /// offers for the superlinear start (§5.3).
    Scatter,
}

/// Machine description for the multicore simulation.
#[derive(Debug, Clone)]
pub struct MachineConfig {
    /// Private per-core levels, innermost first (Westmere: L1, L2).
    pub private_levels: Vec<CacheConfig>,
    /// The per-socket shared level (Westmere: L3).
    pub shared_level: CacheConfig,
    /// Cores per socket sharing one `shared_level`.
    pub cores_per_socket: usize,
    /// Number of sockets available.
    pub num_sockets: usize,
    /// Memory latency.
    pub memory: MemoryConfig,
    /// Record layout.
    pub layout: NodeLayout,
    /// Thread pinning policy.
    pub affinity: Affinity,
}

impl MachineConfig {
    /// The paper's Westmere-EX (4 × 8 cores), compact affinity.
    pub fn westmere_ex(layout: NodeLayout) -> Self {
        MachineConfig {
            private_levels: vec![
                CacheConfig {
                    name: "L1",
                    size_bytes: 32 * 1024,
                    line_bytes: 64,
                    associativity: 8,
                    latency_cycles: 4,
                },
                CacheConfig {
                    name: "L2",
                    size_bytes: 256 * 1024,
                    line_bytes: 64,
                    associativity: 8,
                    latency_cycles: 10,
                },
            ],
            shared_level: CacheConfig {
                name: "L3",
                size_bytes: 24 * 1024 * 1024,
                line_bytes: 64,
                associativity: 24,
                latency_cycles: 100,
            },
            cores_per_socket: 8,
            num_sockets: 4,
            memory: MemoryConfig { latency_cycles: 230 },
            layout,
            affinity: Affinity::Compact,
        }
    }

    /// A scaled-down machine (~64× smaller caches) for fast experiments at
    /// reduced mesh scales.
    pub fn westmere_scaled(layout: NodeLayout, shrink: usize) -> Self {
        assert!(shrink >= 1);
        // keep sizes line-aligned and able to hold at least one full set
        let scaled = |c: &CacheConfig| {
            ((c.size_bytes / shrink) / c.line_bytes).max(c.associativity) * c.line_bytes
        };
        let mut m = MachineConfig::westmere_ex(layout);
        for l in &mut m.private_levels {
            l.size_bytes = scaled(l);
        }
        m.shared_level.size_bytes = scaled(&m.shared_level);
        m
    }

    /// Socket of thread `t` under the configured affinity.
    pub fn socket_of(&self, t: usize) -> usize {
        match self.affinity {
            Affinity::Compact => (t / self.cores_per_socket).min(self.num_sockets - 1),
            Affinity::Scatter => t % self.num_sockets,
        }
    }
}

/// Aggregated outcome of a multicore simulation.
#[derive(Debug, Clone, PartialEq)]
pub struct MulticoreResult {
    /// Number of threads simulated.
    pub num_threads: usize,
    /// Cycles charged to each thread.
    pub per_thread_cycles: Vec<u64>,
    /// Aggregate private-level stats, innermost first (summed over cores).
    pub private_stats: Vec<CacheStats>,
    /// Aggregate shared-level stats (summed over sockets).
    pub shared_stats: CacheStats,
    /// Accesses that went to memory.
    pub memory_accesses: u64,
}

impl MulticoreResult {
    /// Estimated wall-clock cycles: the busiest thread.
    pub fn wall_cycles(&self) -> u64 {
        self.per_thread_cycles.iter().copied().max().unwrap_or(0)
    }

    /// Sum of all per-thread cycles (total work).
    pub fn total_cycles(&self) -> u64 {
        self.per_thread_cycles.iter().sum()
    }
}

/// Simulate `thread_traces` (element-index streams, one per thread) on
/// `machine`. Threads advance round-robin, one element per step, so shared
/// L3 interleaving is approximated fairly.
pub fn simulate(machine: &MachineConfig, thread_traces: &[Vec<u32>]) -> MulticoreResult {
    let p = thread_traces.len();
    assert!(p > 0, "need at least one thread trace");
    assert!(p <= machine.cores_per_socket * machine.num_sockets, "more threads than cores");
    let line_bytes = machine.shared_level.line_bytes;

    // Private caches per thread, shared cache per socket.
    let mut privates: Vec<Vec<CacheLevel>> = (0..p)
        .map(|_| machine.private_levels.iter().map(|&c| CacheLevel::new(c)).collect())
        .collect();
    let sockets_in_use = (0..p).map(|t| machine.socket_of(t)).max().unwrap() + 1;
    let mut shared: Vec<CacheLevel> =
        (0..sockets_in_use).map(|_| CacheLevel::new(machine.shared_level)).collect();

    let mut cycles = vec![0u64; p];
    let mut cursors = vec![0usize; p];
    let mut memory_accesses = 0u64;
    let mut remaining = p;

    while remaining > 0 {
        remaining = 0;
        for t in 0..p {
            let trace = &thread_traces[t];
            if cursors[t] >= trace.len() {
                continue;
            }
            let elem = trace[cursors[t]];
            cursors[t] += 1;
            if cursors[t] < trace.len() {
                remaining += 1;
            }
            for line in machine.layout.lines_of(elem, line_bytes) {
                let mut served = false;
                for level in privates[t].iter_mut() {
                    cycles[t] += level.config().latency_cycles;
                    if level.access_line(line) {
                        served = true;
                        break;
                    }
                }
                if served {
                    continue;
                }
                let s = machine.socket_of(t);
                cycles[t] += shared[s].config().latency_cycles;
                if !shared[s].access_line(line) {
                    cycles[t] += machine.memory.latency_cycles;
                    memory_accesses += 1;
                }
            }
        }
    }

    // Aggregate stats.
    let mut private_stats = vec![CacheStats::default(); machine.private_levels.len()];
    for per_core in &privates {
        for (agg, level) in private_stats.iter_mut().zip(per_core) {
            let s = level.stats();
            agg.accesses += s.accesses;
            agg.hits += s.hits;
            agg.misses += s.misses;
        }
    }
    let mut shared_stats = CacheStats::default();
    for s in &shared {
        let st = s.stats();
        shared_stats.accesses += st.accesses;
        shared_stats.hits += st.hits;
        shared_stats.misses += st.misses;
    }

    MulticoreResult {
        num_threads: p,
        per_thread_cycles: cycles,
        private_stats,
        shared_stats,
        memory_accesses,
    }
}

/// Split a flat element trace into `p` contiguous chunks — the static
/// schedule of the paper ("evenly dividing the vertices"). The split is on
/// access counts, which matches vertex counts for near-uniform degrees.
pub fn split_static(trace: &[u32], p: usize) -> Vec<Vec<u32>> {
    assert!(p > 0);
    let n = trace.len();
    (0..p)
        .map(|t| {
            let lo = t * n / p;
            let hi = (t + 1) * n / p;
            trace[lo..hi].to_vec()
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_machine(affinity: Affinity) -> MachineConfig {
        MachineConfig {
            private_levels: vec![CacheConfig {
                name: "L1",
                size_bytes: 256,
                line_bytes: 64,
                associativity: 4,
                latency_cycles: 4,
            }],
            shared_level: CacheConfig {
                name: "L3",
                size_bytes: 1024,
                line_bytes: 64,
                associativity: 16,
                latency_cycles: 100,
            },
            cores_per_socket: 2,
            num_sockets: 2,
            memory: MemoryConfig { latency_cycles: 230 },
            layout: NodeLayout::with_bytes(64),
            affinity,
        }
    }

    #[test]
    fn single_thread_equivalent_to_hierarchy() {
        let m = small_machine(Affinity::Compact);
        let trace: Vec<u32> = vec![0, 1, 2, 0, 1, 2];
        let r = simulate(&m, &[trace]);
        // 64-byte records, one line each. 3 cold misses then 3 L1 hits
        // (3 lines fit in the 4-way 256-byte L1).
        assert_eq!(r.private_stats[0].misses, 3);
        assert_eq!(r.private_stats[0].hits, 3);
        assert_eq!(r.memory_accesses, 3);
        assert_eq!(r.wall_cycles(), r.total_cycles());
    }

    #[test]
    fn threads_have_private_l1s() {
        let m = small_machine(Affinity::Compact);
        // Both threads access the same elements: each gets its own cold miss.
        let r = simulate(&m, &[vec![0, 0], vec![0, 0]]);
        assert_eq!(r.private_stats[0].misses, 2);
        assert_eq!(r.private_stats[0].hits, 2);
        // But the L3 is shared within the socket: second thread's miss hits L3.
        assert_eq!(r.shared_stats.hits, 1);
        assert_eq!(r.memory_accesses, 1);
    }

    #[test]
    fn scatter_spreads_sockets_compact_fills() {
        let m_compact = small_machine(Affinity::Compact);
        let m_scatter = small_machine(Affinity::Scatter);
        assert_eq!(m_compact.socket_of(0), 0);
        assert_eq!(m_compact.socket_of(1), 0);
        assert_eq!(m_compact.socket_of(2), 1);
        assert_eq!(m_scatter.socket_of(0), 0);
        assert_eq!(m_scatter.socket_of(1), 1);
        assert_eq!(m_scatter.socket_of(2), 0);
    }

    #[test]
    fn scatter_gets_more_aggregate_l3() {
        // Two threads with disjoint working sets larger than one L3 but
        // fitting in two: scatter puts them on different sockets → fewer
        // memory accesses.
        let trace_a: Vec<u32> = (0..16).flat_map(|_| 0..16u32).collect();
        let trace_b: Vec<u32> = (0..16).flat_map(|_| 16..32u32).collect();
        let compact =
            simulate(&small_machine(Affinity::Compact), &[trace_a.clone(), trace_b.clone()]);
        let scatter = simulate(&small_machine(Affinity::Scatter), &[trace_a, trace_b]);
        assert!(
            scatter.memory_accesses < compact.memory_accesses,
            "scatter {} vs compact {}",
            scatter.memory_accesses,
            compact.memory_accesses
        );
    }

    #[test]
    fn wall_cycles_is_busiest_thread() {
        let m = small_machine(Affinity::Compact);
        let r = simulate(&m, &[vec![0; 100], vec![1; 2]]);
        assert_eq!(r.wall_cycles(), r.per_thread_cycles[0]);
        assert!(r.per_thread_cycles[0] > r.per_thread_cycles[1]);
    }

    #[test]
    fn split_static_partitions_evenly() {
        let trace: Vec<u32> = (0..10).collect();
        let parts = split_static(&trace, 3);
        assert_eq!(parts.len(), 3);
        assert_eq!(parts.concat(), trace);
        assert!(parts.iter().all(|p| (3..=4).contains(&p.len())));
    }

    #[test]
    fn too_many_threads_rejected() {
        let m = small_machine(Affinity::Compact);
        let traces = vec![vec![0u32]; 5]; // machine has 4 cores
        assert!(std::panic::catch_unwind(|| simulate(&m, &traces)).is_err());
    }
}
