//! Miss-ratio curves (MRC) from exact reuse distances.
//!
//! Under the paper's §3.1 stack-distance model a fully-associative LRU
//! cache of capacity `c` elements hits an access exactly when its reuse
//! distance is below `c` ("below a reuse distance of 496 there should not
//! be any L1 cache miss"). One pass over the exact distances therefore
//! yields the *entire* miss ratio vs cache size curve — the standard
//! Mattson-stack analysis. The MRC makes the paper's cache-size claims
//! visual: RDR's curve drops to the compulsory floor at a tiny capacity,
//! while ORI still misses at L3-scale capacities (the `mrc` experiment).

use crate::reuse::COLD;

/// A miss-ratio curve sampled at a set of capacities.
#[derive(Debug, Clone, PartialEq)]
pub struct MissRatioCurve {
    /// Capacities (in elements or lines — whatever unit the distances were
    /// measured in), strictly increasing.
    pub capacities: Vec<u64>,
    /// Miss count at each capacity (same length as `capacities`).
    pub misses: Vec<u64>,
    /// Total accesses.
    pub total: u64,
    /// Compulsory (cold) misses — the floor no capacity removes.
    pub cold: u64,
}

impl MissRatioCurve {
    /// Build from exact reuse distances (as produced by
    /// [`crate::reuse::ReuseDistanceAnalyzer`]) at the given capacities.
    ///
    /// A capacity of 0 misses every access; capacities are sorted and
    /// deduplicated.
    pub fn from_distances(distances: &[u64], capacities: &[u64]) -> MissRatioCurve {
        let mut caps: Vec<u64> = capacities.to_vec();
        caps.sort_unstable();
        caps.dedup();
        let total = distances.len() as u64;
        let cold = distances.iter().filter(|&&d| d == COLD).count() as u64;

        // histogram of finite distances, then misses(c) = cold + #{d >= c}
        // via a single sorted sweep
        let mut finite: Vec<u64> = distances.iter().copied().filter(|&d| d != COLD).collect();
        finite.sort_unstable();
        let misses = caps
            .iter()
            .map(|&c| {
                // number of finite distances >= c
                let below = finite.partition_point(|&d| d < c) as u64;
                cold + (finite.len() as u64 - below)
            })
            .collect();
        MissRatioCurve { capacities: caps, misses, total, cold }
    }

    /// Miss ratio at sample index `i` (0 when the trace is empty).
    pub fn ratio(&self, i: usize) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            self.misses[i] as f64 / self.total as f64
        }
    }

    /// `(capacity, miss ratio)` pairs.
    pub fn points(&self) -> Vec<(u64, f64)> {
        (0..self.capacities.len()).map(|i| (self.capacities[i], self.ratio(i))).collect()
    }

    /// Smallest sampled capacity whose miss ratio is at most `target`
    /// (`None` if no sampled capacity reaches it — e.g. below the cold
    /// floor).
    pub fn capacity_for(&self, target: f64) -> Option<u64> {
        (0..self.capacities.len()).find(|&i| self.ratio(i) <= target).map(|i| self.capacities[i])
    }

    /// The cold-miss floor as a ratio.
    pub fn cold_ratio(&self) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            self.cold as f64 / self.total as f64
        }
    }
}

/// Power-of-two capacities `1, 2, 4, … ≥ max` — the usual MRC x-axis.
pub fn pow2_capacities(max: u64) -> Vec<u64> {
    let mut caps = vec![0u64];
    let mut c = 1u64;
    while c < max {
        caps.push(c);
        c *= 2;
    }
    caps.push(c);
    caps
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reuse::ReuseDistanceAnalyzer;

    #[test]
    fn cyclic_scan_has_a_step_curve() {
        // round-robin over 8 elements: all reuse distances are 7, so the
        // curve steps from all-miss to cold-only exactly at capacity 8
        let trace: Vec<u32> = (0..80).map(|i| i % 8).collect();
        let d = ReuseDistanceAnalyzer::analyze(&trace, 8);
        let mrc = MissRatioCurve::from_distances(&d, &[0, 1, 4, 7, 8, 16]);
        assert_eq!(mrc.total, 80);
        assert_eq!(mrc.cold, 8);
        // capacity 7: distances are 7 → still misses
        let at = |c: u64| {
            let i = mrc.capacities.iter().position(|&x| x == c).unwrap();
            mrc.misses[i]
        };
        assert_eq!(at(0), 80);
        assert_eq!(at(7), 80);
        assert_eq!(at(8), 8, "at capacity 8 only cold misses remain");
        assert_eq!(at(16), 8);
    }

    #[test]
    fn curve_is_monotone_nonincreasing() {
        let trace: Vec<u32> = (0..500).map(|i| (i * i) as u32 % 97).collect();
        let d = ReuseDistanceAnalyzer::analyze(&trace, 97);
        let mrc = MissRatioCurve::from_distances(&d, &pow2_capacities(256));
        for w in mrc.misses.windows(2) {
            assert!(w[1] <= w[0]);
        }
        assert_eq!(*mrc.misses.last().unwrap(), mrc.cold);
        assert!((mrc.ratio(mrc.capacities.len() - 1) - mrc.cold_ratio()).abs() < 1e-15);
    }

    #[test]
    fn capacity_for_finds_the_knee() {
        let trace: Vec<u32> = (0..100).map(|i| i % 10).collect();
        let d = ReuseDistanceAnalyzer::analyze(&trace, 10);
        let mrc = MissRatioCurve::from_distances(&d, &pow2_capacities(64));
        // cold ratio = 10/100 = 0.1; reachable only from capacity 16 (the
        // first pow2 ≥ 10)
        assert_eq!(mrc.capacity_for(0.1), Some(16));
        assert_eq!(mrc.capacity_for(0.05), None);
        assert_eq!(mrc.capacity_for(1.0), Some(0));
    }

    #[test]
    fn empty_and_degenerate_inputs() {
        let mrc = MissRatioCurve::from_distances(&[], &[0, 1]);
        assert_eq!(mrc.total, 0);
        assert_eq!(mrc.ratio(0), 0.0);
        assert_eq!(mrc.cold_ratio(), 0.0);
        assert_eq!(pow2_capacities(1), vec![0, 1]);
        assert!(pow2_capacities(1000).contains(&1024));
    }

    #[test]
    fn agrees_with_direct_lru_simulation() {
        use crate::opt::lru_misses;
        let mut x = 99u64;
        let trace: Vec<u32> = (0..2000)
            .map(|_| {
                x ^= x << 13;
                x ^= x >> 7;
                x ^= x << 17;
                (x % 61) as u32
            })
            .collect();
        let d = ReuseDistanceAnalyzer::analyze(&trace, 61);
        let caps = [1u64, 2, 5, 16, 33, 61, 100];
        let mrc = MissRatioCurve::from_distances(&d, &caps);
        let trace64: Vec<u64> = trace.iter().map(|&t| t as u64).collect();
        for (i, &c) in mrc.capacities.iter().enumerate() {
            let sim = lru_misses(&trace64, c as usize).misses;
            assert_eq!(mrc.misses[i], sim, "capacity {c}");
        }
    }
}
