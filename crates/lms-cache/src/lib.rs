//! # lms-cache — the memory-behaviour substrate
//!
//! The paper measures its claims with PAPI hardware counters and verbose
//! reuse-distance traces on a Westmere-EX machine. This crate rebuilds that
//! measurement stack in software (substitution #2 of DESIGN.md):
//!
//! * [`reuse`] — exact LRU reuse-distance analysis (Fenwick-tree based,
//!   `O(log n)` per access) with the quantile statistics of Table 2;
//! * [`histogram`] — log-bucket histograms and the binned profiles of
//!   Figures 1 and 6;
//! * [`cache`] / [`hierarchy`] — a set-associative, line-granular,
//!   inclusive multi-level LRU simulator with the Westmere-EX preset
//!   (32 KiB L1 / 256 KiB L2 / 24 MiB L3, 64-byte lines);
//! * [`address`] — element-index → byte-address layouts (the paper's
//!   66-byte node estimate among them);
//! * [`model`] — the §3.1 stack-distance miss model, the Equation (2)
//!   cycle-cost model, and Table 3's max-elements estimator;
//! * [`multicore`] — private-L1/L2, shared-per-socket-L3 simulation of the
//!   4×8-core machine, for the §5.3 scaling study;
//! * [`sampled`] — SHARDS-style fixed-rate sampled reuse-distance analysis
//!   (the production-monitoring alternative to the verbose run);
//! * [`tlb`] — a two-level LRU data-TLB model (layouts shrink the page
//!   working set too);
//! * [`traffic`] — write-back/write-allocate traffic accounting for the
//!   smoother's read-write access stream.
//!
//! ```
//! use lms_cache::{address::NodeLayout, hierarchy::CacheHierarchy, reuse::ReuseDistanceAnalyzer};
//!
//! let trace = [0u32, 1, 2, 0, 1, 2];
//! let distances = ReuseDistanceAnalyzer::analyze(&trace, 3);
//! assert_eq!(distances[3], 2); // two distinct elements between the 0s
//!
//! let mut cache = CacheHierarchy::westmere_ex(NodeLayout::paper_66());
//! cache.run_trace(&trace);
//! assert!(cache.stats_of("L1").unwrap().hits > 0);
//! ```

pub mod address;
pub mod cache;
pub mod fenwick;
pub mod hierarchy;
pub mod histogram;
pub mod model;
pub mod mrc;
pub mod multicore;
pub mod opt;
pub mod policy;
pub mod prefetch;
pub mod reuse;
pub mod sampled;
pub mod tlb;
pub mod traffic;

pub use address::NodeLayout;
pub use cache::{CacheConfig, CacheLevel, CacheStats};
pub use fenwick::Fenwick;
pub use hierarchy::{CacheHierarchy, MemoryConfig};
pub use histogram::{binned_means, count_above, LogHistogram};
pub use model::{estimate_max_elements, CostModel, ModelOutcome, StackDistanceModel};
pub use mrc::{pow2_capacities, MissRatioCurve};
pub use multicore::{simulate, split_static, Affinity, MachineConfig, MulticoreResult};
pub use opt::{belady_misses, compulsory_misses, element_line_trace, lru_misses, OptComparison};
pub use policy::{PolicyCache, ReplacementPolicy};
pub use prefetch::{NextLinePrefetcher, PrefetchStats};
pub use reuse::{quantile, ReuseDistanceAnalyzer, ReuseStats, COLD};
pub use sampled::{is_sampled, sampled_distances, SampledReuse};
pub use tlb::{Tlb, TlbConfig, TlbStats};
pub use traffic::{sweep_rw_trace, RwAccess, TrafficStats, WritebackCache};
