//! Element-index → address mapping.
//!
//! The traced smoother emits *vertex storage indices*; the cache simulator
//! needs byte addresses. A [`NodeLayout`] places vertex records
//! contiguously, `bytes_per_node` apart — the paper's footnote 1 estimates
//! a node at 66 bytes (2 doubles + ~6 long-int neighbour ids + 1 int flag)
//! and notes the real size "can be many more times this".

/// A secondary element region (e.g. the triangle-connectivity array that
/// the quality update streams): element ids `>= first_id` live there.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AuxRegion {
    /// First element id belonging to the auxiliary region.
    pub first_id: u32,
    /// Bytes per auxiliary record (a triangle is 3 × `u32` = 12 bytes).
    pub bytes_per_elem: usize,
}

/// Contiguous array-of-structs layout for vertex records, with an optional
/// auxiliary region laid out right after it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NodeLayout {
    /// Bytes occupied by one vertex record.
    pub bytes_per_node: usize,
    /// Base address of the array (line-aligned by default).
    pub base: u64,
    /// Optional auxiliary region for ids `>= aux.first_id`.
    pub aux: Option<AuxRegion>,
}

impl NodeLayout {
    /// The paper's 66-byte estimate (footnote 1 of §5.2.3).
    pub fn paper_66() -> Self {
        NodeLayout { bytes_per_node: 66, base: 0, aux: None }
    }

    /// Coordinates only: two `f64`s per vertex.
    pub fn coords_only() -> Self {
        NodeLayout { bytes_per_node: 16, base: 0, aux: None }
    }

    /// This library's actual hot record: `Point2` coordinates plus the CSR
    /// neighbour slice (assume the paper's mean degree 6 × 4-byte ids,
    /// rounded up): 16 + 24 + 8 ≈ 48 bytes.
    pub fn lms_actual() -> Self {
        NodeLayout { bytes_per_node: 48, base: 0, aux: None }
    }

    /// Arbitrary record size.
    pub fn with_bytes(bytes_per_node: usize) -> Self {
        assert!(bytes_per_node > 0);
        NodeLayout { bytes_per_node, base: 0, aux: None }
    }

    /// Add an auxiliary region: ids `>= first_id` are records of
    /// `bytes_per_elem` bytes laid out after the vertex array (next line
    /// boundary). Used for the triangle-connectivity accesses of the
    /// quality update (ids `num_vertices + t`).
    pub fn with_aux(mut self, first_id: u32, bytes_per_elem: usize) -> Self {
        assert!(bytes_per_elem > 0);
        self.aux = Some(AuxRegion { first_id, bytes_per_elem });
        self
    }

    /// Base address of the auxiliary region (line-aligned, after the
    /// vertex array).
    fn aux_base(&self, aux: &AuxRegion) -> u64 {
        let end = self.base + aux.first_id as u64 * self.bytes_per_node as u64;
        end.div_ceil(64) * 64
    }

    /// Byte address range `(start, len)` of element `idx`.
    #[inline]
    pub fn addr_range(&self, idx: u32) -> (u64, usize) {
        if let Some(aux) = self.aux {
            if idx >= aux.first_id {
                let off = (idx - aux.first_id) as u64 * aux.bytes_per_elem as u64;
                return (self.aux_base(&aux) + off, aux.bytes_per_elem);
            }
        }
        (self.base + idx as u64 * self.bytes_per_node as u64, self.bytes_per_node)
    }

    /// The cache lines (of `line_bytes`) touched by element `idx`.
    pub fn lines_of(&self, idx: u32, line_bytes: usize) -> std::ops::RangeInclusive<u64> {
        let (start, len) = self.addr_range(idx);
        let first = start / line_bytes as u64;
        let last = (start + len as u64 - 1) / line_bytes as u64;
        first..=last
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn address_ranges_are_contiguous() {
        let l = NodeLayout::paper_66();
        let (a0, s0) = l.addr_range(0);
        let (a1, _) = l.addr_range(1);
        assert_eq!(a0, 0);
        assert_eq!(s0, 66);
        assert_eq!(a1, 66);
    }

    #[test]
    fn lines_of_small_record_within_one_line() {
        let l = NodeLayout::coords_only();
        // 16-byte records: records 0..3 share line 0 (64 B).
        assert_eq!(l.lines_of(0, 64), 0..=0);
        assert_eq!(l.lines_of(3, 64), 0..=0);
        assert_eq!(l.lines_of(4, 64), 1..=1);
    }

    #[test]
    fn lines_of_record_straddling_lines() {
        let l = NodeLayout::paper_66();
        // record 0: bytes 0..66 → lines 0 and 1.
        assert_eq!(l.lines_of(0, 64), 0..=1);
        // record 1: bytes 66..132 → lines 1 and 2.
        assert_eq!(l.lines_of(1, 64), 1..=2);
    }

    #[test]
    fn base_offsets_shift_lines() {
        let l = NodeLayout { bytes_per_node: 64, base: 128, aux: None };
        assert_eq!(l.lines_of(0, 64), 2..=2);
    }

    #[test]
    fn aux_region_is_laid_out_after_vertices() {
        // 4 vertices of 66 B (264 B, next line boundary at 320), then
        // 12-byte triangle records.
        let l = NodeLayout::paper_66().with_aux(4, 12);
        let (a, s) = l.addr_range(4); // first triangle
        assert_eq!(a, 320);
        assert_eq!(s, 12);
        let (b, _) = l.addr_range(5);
        assert_eq!(b, 332);
        // vertex addressing unchanged
        assert_eq!(l.addr_range(1), (66, 66));
        // 12-B records starting at 320: id 4 → 320..332 (line 5),
        // id 9 → 380..392 (straddles lines 5 and 6)
        assert_eq!(l.lines_of(4, 64), 5..=5);
        assert_eq!(l.lines_of(9, 64), 5..=6);
    }

    #[test]
    fn preset_sizes() {
        assert_eq!(NodeLayout::paper_66().bytes_per_node, 66);
        assert_eq!(NodeLayout::coords_only().bytes_per_node, 16);
        assert_eq!(NodeLayout::lms_actual().bytes_per_node, 48);
        assert_eq!(NodeLayout::with_bytes(100).bytes_per_node, 100);
    }
}
