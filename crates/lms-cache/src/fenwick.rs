//! Fenwick (binary indexed) tree over `i64` counts.
//!
//! Backbone of the exact reuse-distance analyser: one slot per trace
//! position, holding 1 where a data element's most recent access sits.

/// A Fenwick tree supporting point update and prefix sum in `O(log n)`.
#[derive(Debug, Clone)]
pub struct Fenwick {
    tree: Vec<i64>,
}

impl Fenwick {
    /// A tree over `n` slots, all zero.
    pub fn new(n: usize) -> Self {
        Fenwick { tree: vec![0; n + 1] }
    }

    /// Number of slots.
    pub fn len(&self) -> usize {
        self.tree.len() - 1
    }

    /// True when the tree has no slots.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Add `delta` to slot `i` (0-based).
    pub fn add(&mut self, i: usize, delta: i64) {
        let mut i = i + 1;
        while i < self.tree.len() {
            self.tree[i] += delta;
            i += i & i.wrapping_neg();
        }
    }

    /// Sum of slots `0..=i` (0-based, inclusive).
    pub fn prefix_sum(&self, i: usize) -> i64 {
        let mut i = (i + 1).min(self.tree.len() - 1);
        let mut s = 0;
        while i > 0 {
            s += self.tree[i];
            i -= i & i.wrapping_neg();
        }
        s
    }

    /// Sum of slots in `lo..=hi` (0-based, inclusive); 0 for an empty range.
    pub fn range_sum(&self, lo: usize, hi: usize) -> i64 {
        if lo > hi {
            return 0;
        }
        let below = if lo == 0 { 0 } else { self.prefix_sum(lo - 1) };
        self.prefix_sum(hi) - below
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_tree() {
        let f = Fenwick::new(0);
        assert!(f.is_empty());
        assert_eq!(f.len(), 0);
    }

    #[test]
    fn point_updates_and_prefix_sums() {
        let mut f = Fenwick::new(8);
        f.add(0, 1);
        f.add(3, 2);
        f.add(7, 5);
        assert_eq!(f.prefix_sum(0), 1);
        assert_eq!(f.prefix_sum(2), 1);
        assert_eq!(f.prefix_sum(3), 3);
        assert_eq!(f.prefix_sum(7), 8);
    }

    #[test]
    fn range_sums() {
        let mut f = Fenwick::new(10);
        for i in 0..10 {
            f.add(i, i as i64);
        }
        assert_eq!(f.range_sum(0, 9), 45);
        assert_eq!(f.range_sum(3, 5), 3 + 4 + 5);
        assert_eq!(f.range_sum(5, 5), 5);
        assert_eq!(f.range_sum(6, 3), 0); // empty range
    }

    #[test]
    fn negative_deltas() {
        let mut f = Fenwick::new(4);
        f.add(2, 3);
        f.add(2, -3);
        assert_eq!(f.prefix_sum(3), 0);
    }

    #[test]
    fn matches_naive_reference() {
        let mut f = Fenwick::new(32);
        let mut naive = vec![0i64; 32];
        let mut state = 12345u64;
        for _ in 0..200 {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            let i = (state >> 33) as usize % 32;
            let d = ((state >> 17) as i64 % 7) - 3;
            f.add(i, d);
            naive[i] += d;
            let q = (state >> 5) as usize % 32;
            let expect: i64 = naive[..=q].iter().sum();
            assert_eq!(f.prefix_sum(q), expect);
        }
    }
}
