//! Exact LRU reuse-distance (stack-distance) analysis.
//!
//! The reuse distance of an access is "the number of distinct data accesses
//! between two consecutive accesses of the same data element" (§1). Under a
//! fully associative LRU cache of capacity `C` elements, an access misses
//! iff its reuse distance exceeds `C` — the theoretical model of §3.1 that
//! the paper uses throughout Tables 2–3.
//!
//! The analyser runs the classic Bennett–Kruskal/Olken algorithm: a Fenwick
//! tree over trace positions marks each element's most recent access; the
//! distance of a re-access is the number of marks strictly between the two
//! accesses. `O(log n)` per access.

use crate::fenwick::Fenwick;

/// Sentinel distance for a first-ever (cold) access.
pub const COLD: u64 = u64::MAX;

/// Streaming exact reuse-distance analyser over element ids.
#[derive(Debug, Clone)]
pub struct ReuseDistanceAnalyzer {
    /// most recent trace position of each element (usize::MAX = never seen)
    last_pos: Vec<usize>,
    marks: Fenwick,
    time: usize,
}

impl ReuseDistanceAnalyzer {
    /// Analyser for element ids `< num_elements` over a trace of at most
    /// `trace_capacity` accesses (grown automatically when exceeded).
    pub fn new(num_elements: usize, trace_capacity: usize) -> Self {
        ReuseDistanceAnalyzer {
            last_pos: vec![usize::MAX; num_elements],
            marks: Fenwick::new(trace_capacity),
            time: 0,
        }
    }

    /// Feed one access; returns its reuse distance ([`COLD`] when first).
    pub fn access(&mut self, elem: u32) -> u64 {
        let e = elem as usize;
        assert!(e < self.last_pos.len(), "element id {elem} out of range");
        if self.time >= self.marks.len() {
            // Grow: rebuild a tree twice the size with current marks.
            let mut bigger = Fenwick::new((self.marks.len() * 2).max(64));
            for &p in self.last_pos.iter().filter(|&&p| p != usize::MAX) {
                bigger.add(p, 1);
            }
            self.marks = bigger;
        }
        let dist = match self.last_pos[e] {
            usize::MAX => COLD,
            last => {
                let d = if self.time > last + 1 {
                    self.marks.range_sum(last + 1, self.time - 1)
                } else {
                    0
                };
                self.marks.add(last, -1);
                d as u64
            }
        };
        self.marks.add(self.time, 1);
        self.last_pos[e] = self.time;
        self.time += 1;
        dist
    }

    /// Distances of a whole trace at once.
    pub fn analyze(trace: &[u32], num_elements: usize) -> Vec<u64> {
        let mut a = ReuseDistanceAnalyzer::new(num_elements, trace.len());
        trace.iter().map(|&e| a.access(e)).collect()
    }
}

/// Summary statistics of a distance stream (cold accesses excluded from the
/// mean/quantiles but counted separately — the paper's Table 2 lists the
/// maximum over *reuses*).
#[derive(Debug, Clone, PartialEq)]
pub struct ReuseStats {
    /// Total accesses, including cold ones.
    pub accesses: usize,
    /// First-ever accesses.
    pub cold: usize,
    /// Mean reuse distance over re-accesses.
    pub mean: f64,
    /// Maximum reuse distance over re-accesses (0 when none).
    pub max: u64,
}

impl ReuseStats {
    /// Compute summary statistics from a distance stream.
    pub fn from_distances(distances: &[u64]) -> ReuseStats {
        let accesses = distances.len();
        let mut cold = 0usize;
        let mut sum = 0u128;
        let mut max = 0u64;
        let mut reuses = 0usize;
        for &d in distances {
            if d == COLD {
                cold += 1;
            } else {
                sum += d as u128;
                max = max.max(d);
                reuses += 1;
            }
        }
        let mean = if reuses == 0 { 0.0 } else { sum as f64 / reuses as f64 };
        ReuseStats { accesses, cold, mean, max }
    }
}

/// The `q`-quantile (`0 ≤ q ≤ 1`) of the re-access distances: the smallest
/// value with at least a proportion `q` of the population at or below it
/// (the paper's Table 2 definition). Returns `None` when there are no
/// re-accesses.
pub fn quantile(distances: &[u64], q: f64) -> Option<u64> {
    let mut finite: Vec<u64> = distances.iter().copied().filter(|&d| d != COLD).collect();
    if finite.is_empty() {
        return None;
    }
    finite.sort_unstable();
    let rank = ((q * finite.len() as f64).ceil() as usize).clamp(1, finite.len());
    Some(finite[rank - 1])
}

#[cfg(test)]
mod tests {
    use super::*;

    /// O(n²) reference: count distinct elements strictly between accesses.
    fn naive_distances(trace: &[u32]) -> Vec<u64> {
        let mut out = Vec::with_capacity(trace.len());
        for (i, &e) in trace.iter().enumerate() {
            let last = trace[..i].iter().rposition(|&x| x == e);
            match last {
                None => out.push(COLD),
                Some(j) => {
                    let mut seen = std::collections::HashSet::new();
                    for &x in &trace[j + 1..i] {
                        seen.insert(x);
                    }
                    out.push(seen.len() as u64);
                }
            }
        }
        out
    }

    #[test]
    fn textbook_example() {
        // a b c a : distance of the second `a` is 2 (b and c in between).
        let d = ReuseDistanceAnalyzer::analyze(&[0, 1, 2, 0], 3);
        assert_eq!(d, vec![COLD, COLD, COLD, 2]);
    }

    #[test]
    fn immediate_reuse_has_distance_zero() {
        let d = ReuseDistanceAnalyzer::analyze(&[5, 5, 5], 6);
        assert_eq!(d, vec![COLD, 0, 0]);
    }

    #[test]
    fn repeated_intermediates_count_once() {
        // a b b b a : only ONE distinct element between the two a's.
        let d = ReuseDistanceAnalyzer::analyze(&[0, 1, 1, 1, 0], 2);
        assert_eq!(*d.last().unwrap(), 1);
    }

    #[test]
    fn matches_naive_on_random_traces() {
        let mut state = 99u64;
        for n_elems in [3u32, 8, 17] {
            let trace: Vec<u32> = (0..300)
                .map(|_| {
                    state =
                        state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                    ((state >> 33) % n_elems as u64) as u32
                })
                .collect();
            assert_eq!(
                ReuseDistanceAnalyzer::analyze(&trace, n_elems as usize),
                naive_distances(&trace),
                "mismatch for {n_elems} elements"
            );
        }
    }

    #[test]
    fn analyzer_grows_beyond_initial_capacity() {
        let mut a = ReuseDistanceAnalyzer::new(4, 2); // deliberately tiny
        let trace = [0u32, 1, 2, 3, 0, 1, 2, 3];
        let got: Vec<u64> = trace.iter().map(|&e| a.access(e)).collect();
        assert_eq!(got, naive_distances(&trace));
    }

    #[test]
    fn stats_separate_cold_and_reuse() {
        let d = vec![COLD, COLD, 4, 2, COLD, 0];
        let s = ReuseStats::from_distances(&d);
        assert_eq!(s.accesses, 6);
        assert_eq!(s.cold, 3);
        assert_eq!(s.max, 4);
        assert!((s.mean - 2.0).abs() < 1e-12);
    }

    #[test]
    fn stats_of_all_cold_stream() {
        let s = ReuseStats::from_distances(&[COLD, COLD]);
        assert_eq!(s.mean, 0.0);
        assert_eq!(s.max, 0);
        assert_eq!(s.cold, 2);
    }

    #[test]
    fn quantiles_match_definition() {
        // distances 1..=100 (no cold): the X quantile is the smallest value
        // with proportion ≥ X below-or-equal.
        let d: Vec<u64> = (1..=100).collect();
        assert_eq!(quantile(&d, 0.5), Some(50));
        assert_eq!(quantile(&d, 0.75), Some(75));
        assert_eq!(quantile(&d, 0.9), Some(90));
        assert_eq!(quantile(&d, 1.0), Some(100));
        assert_eq!(quantile(&[COLD], 0.5), None);
    }

    #[test]
    fn sequential_scan_is_all_cold_then_full_distance() {
        // 0..n then 0..n again: second pass distances are all n-1.
        let n = 50u32;
        let mut trace: Vec<u32> = (0..n).collect();
        trace.extend(0..n);
        let d = ReuseDistanceAnalyzer::analyze(&trace, n as usize);
        for &x in &d[..n as usize] {
            assert_eq!(x, COLD);
        }
        for &x in &d[n as usize..] {
            assert_eq!(x, (n - 1) as u64);
        }
    }
}
