//! Belady's MIN (OPT) — the offline-optimal replacement policy.
//!
//! §5.2.3 of the paper argues RDR is "quasi-optimal amongst the possible
//! reordering algorithms" because its remaining L2/L3 misses are not
//! reuse-related. MIN makes that claim quantitative: it evicts the line
//! whose next use lies farthest in the future, which minimises misses for
//! a *fixed* trace and cache size (Belady 1966). Comparing each ordering's
//! LRU misses against its own MIN misses (same trace, same capacity)
//! separates "misses an ideal cache would also take" (compulsory +
//! capacity under OPT) from "misses LRU causes"; an ordering whose LRU
//! count sits on its MIN count has nothing left for *any* replacement
//! policy — and a fortiori for cache-oblivious layout tweaks — to recover.
//!
//! Both simulators here are fully associative with capacity counted in
//! lines, matching the paper's §3.1 theoretical model; use
//! [`element_line_trace`] to lower an element-id trace onto cache lines
//! first.

use crate::address::NodeLayout;
use crate::cache::CacheStats;
use std::collections::{BTreeSet, HashMap};

/// Index meaning "never used again" in a next-use chain.
pub const NEVER: u64 = u64::MAX;

/// For every position `i` of `trace`, the position of the next access to
/// the same key (or [`NEVER`]).
pub fn next_use_chain(trace: &[u64]) -> Vec<u64> {
    let mut next = vec![NEVER; trace.len()];
    let mut last_seen: HashMap<u64, usize> = HashMap::new();
    for (i, &key) in trace.iter().enumerate().rev() {
        if let Some(&j) = last_seen.get(&key) {
            next[i] = j as u64;
        }
        last_seen.insert(key, i);
    }
    next
}

/// Misses of a fully-associative cache of `capacity` lines running `trace`
/// under Belady's MIN replacement.
///
/// `capacity == 0` degenerates to "every access misses".
pub fn belady_misses(trace: &[u64], capacity: usize) -> CacheStats {
    let mut stats = CacheStats { accesses: trace.len() as u64, ..CacheStats::default() };
    if capacity == 0 {
        stats.misses = stats.accesses;
        return stats;
    }
    let next = next_use_chain(trace);
    // resident lines keyed by their next use; (next_use, key) is unique
    // because two lines cannot share the same next-use position
    let mut by_next_use: BTreeSet<(u64, u64)> = BTreeSet::new();
    let mut resident: HashMap<u64, u64> = HashMap::new(); // key → next_use

    for (i, &key) in trace.iter().enumerate() {
        let this_next = next[i];
        if let Some(&old_next) = resident.get(&key) {
            stats.hits += 1;
            by_next_use.remove(&(old_next, key));
        } else {
            stats.misses += 1;
            if resident.len() == capacity {
                // evict the resident line used farthest in the future
                let &(far_next, victim) = by_next_use.iter().next_back().expect("cache full");
                by_next_use.remove(&(far_next, victim));
                resident.remove(&victim);
            }
        }
        resident.insert(key, this_next);
        by_next_use.insert((this_next, key));
    }
    stats
}

/// Misses of a fully-associative **LRU** cache of `capacity` lines on the
/// same kind of key trace — the apples-to-apples partner of
/// [`belady_misses`].
pub fn lru_misses(trace: &[u64], capacity: usize) -> CacheStats {
    let mut stats = CacheStats { accesses: trace.len() as u64, ..CacheStats::default() };
    if capacity == 0 {
        stats.misses = stats.accesses;
        return stats;
    }
    let mut by_age: BTreeSet<(u64, u64)> = BTreeSet::new(); // (stamp, key)
    let mut resident: HashMap<u64, u64> = HashMap::new(); // key → stamp

    for (stamp, &key) in (0u64..).zip(trace.iter()) {
        if let Some(&old) = resident.get(&key) {
            stats.hits += 1;
            by_age.remove(&(old, key));
        } else {
            stats.misses += 1;
            if resident.len() == capacity {
                let &(oldest, victim) = by_age.iter().next().expect("cache full");
                by_age.remove(&(oldest, victim));
                resident.remove(&victim);
            }
        }
        resident.insert(key, stamp);
        by_age.insert((stamp, key));
    }
    stats
}

/// Number of distinct keys in `trace` — the compulsory (cold) misses that
/// no replacement policy can avoid.
pub fn compulsory_misses(trace: &[u64]) -> u64 {
    let mut seen: std::collections::HashSet<u64> = std::collections::HashSet::new();
    trace.iter().filter(|&&k| seen.insert(k)).count() as u64
}

/// Lower an element-id trace to the cache-line trace it induces under
/// `layout` (one entry per touched line, in access order) — the input
/// [`belady_misses`] and [`lru_misses`] expect.
pub fn element_line_trace(trace: &[u32], layout: &NodeLayout, line_bytes: usize) -> Vec<u64> {
    let mut out = Vec::with_capacity(trace.len());
    for &idx in trace {
        for line in layout.lines_of(idx, line_bytes) {
            out.push(line);
        }
    }
    out
}

/// LRU-vs-OPT gap of one trace at one capacity, as used by the `opt`
/// experiment: how many of LRU's misses even an offline-optimal policy
/// must take, and how many are LRU's own fault.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OptComparison {
    /// Cache capacity in lines.
    pub capacity: usize,
    /// Misses under LRU.
    pub lru_misses: u64,
    /// Misses under Belady MIN.
    pub opt_misses: u64,
    /// Cold misses (distinct lines).
    pub compulsory: u64,
}

impl OptComparison {
    /// Run both simulators on `trace`.
    pub fn measure(trace: &[u64], capacity: usize) -> OptComparison {
        OptComparison {
            capacity,
            lru_misses: lru_misses(trace, capacity).misses,
            opt_misses: belady_misses(trace, capacity).misses,
            compulsory: compulsory_misses(trace),
        }
    }

    /// `lru / opt` miss ratio (1.0 = LRU is already optimal; ∞-safe).
    pub fn lru_over_opt(&self) -> f64 {
        if self.opt_misses == 0 {
            if self.lru_misses == 0 {
                1.0
            } else {
                f64::INFINITY
            }
        } else {
            self.lru_misses as f64 / self.opt_misses as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn next_use_chain_links_repeats() {
        let next = next_use_chain(&[5, 7, 5, 5, 7]);
        assert_eq!(next, vec![2, 4, 3, NEVER, NEVER]);
        assert_eq!(next_use_chain(&[]), Vec::<u64>::new());
    }

    #[test]
    fn belady_on_the_textbook_example() {
        // classic: trace 1..5 with capacity 3 — OPT keeps what's reused
        let trace = [1u64, 2, 3, 4, 1, 2, 5, 1, 2, 3, 4, 5];
        let opt = belady_misses(&trace, 3);
        // known OPT result for this FIFO/LRU teaching trace: 7 faults
        assert_eq!(opt.misses, 7);
        let lru = lru_misses(&trace, 3);
        assert_eq!(lru.misses, 10);
        assert!(opt.misses <= lru.misses);
    }

    #[test]
    fn opt_never_beats_compulsory_and_never_loses_to_lru() {
        // pseudo-random trace, several capacities
        let mut x: u64 = 0x9e3779b97f4a7c15;
        let trace: Vec<u64> = (0..4000)
            .map(|_| {
                x ^= x << 13;
                x ^= x >> 7;
                x ^= x << 17;
                x % 97
            })
            .collect();
        let cold = compulsory_misses(&trace);
        for cap in [1, 2, 8, 32, 64, 97, 128] {
            let opt = belady_misses(&trace, cap);
            let lru = lru_misses(&trace, cap);
            assert!(opt.misses >= cold, "cap {cap}: OPT below compulsory");
            assert!(opt.misses <= lru.misses, "cap {cap}: OPT worse than LRU");
            assert_eq!(opt.accesses, trace.len() as u64);
            assert_eq!(opt.hits + opt.misses, opt.accesses);
        }
    }

    #[test]
    fn cache_as_large_as_the_universe_only_takes_cold_misses() {
        let trace: Vec<u64> = (0..100).map(|i| i % 10).collect();
        assert_eq!(belady_misses(&trace, 10).misses, 10);
        assert_eq!(lru_misses(&trace, 10).misses, 10);
    }

    #[test]
    fn sequential_scan_defeats_lru_but_not_opt() {
        // cyclic scan over capacity+1 lines: LRU misses everything, OPT
        // keeps capacity-1 of them resident
        let trace: Vec<u64> = (0..400).map(|i| i % 5).collect();
        let lru = lru_misses(&trace, 4);
        let opt = belady_misses(&trace, 4);
        assert_eq!(lru.misses, 400, "LRU thrashes the cyclic scan");
        assert!(opt.misses < 400 / 3, "OPT must mostly hit, got {} misses", opt.misses);
    }

    #[test]
    fn zero_capacity_misses_everything() {
        let trace = [1u64, 1, 1];
        assert_eq!(belady_misses(&trace, 0).misses, 3);
        assert_eq!(lru_misses(&trace, 0).misses, 3);
    }

    #[test]
    fn element_trace_lowering_matches_layout() {
        // 66-byte records, 64-byte lines: element k spans bytes
        // [66k, 66k+65], i.e. lines 66k/64 ..= (66k+65)/64 — two lines
        let layout = NodeLayout::paper_66();
        let lines = element_line_trace(&[0, 1], &layout, 64);
        assert_eq!(lines.len(), 4);
        assert_eq!(lines[0], 0);
        assert_eq!(lines[1], 1);
    }

    #[test]
    fn comparison_ratio_is_safe() {
        let c = OptComparison::measure(&[1, 2, 3], 8);
        assert_eq!(c.lru_misses, c.opt_misses);
        assert!((c.lru_over_opt() - 1.0).abs() < 1e-15);
        let empty = OptComparison::measure(&[], 8);
        assert_eq!(empty.lru_over_opt(), 1.0);
    }
}
