//! Multi-level inclusive cache hierarchy (the Westmere-EX of §5.1).

use crate::address::NodeLayout;
use crate::cache::{CacheConfig, CacheLevel, CacheStats};

/// Memory access latency used beyond the last cache level.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MemoryConfig {
    /// Cycles per access that misses every cache (paper: 175–290).
    pub latency_cycles: u64,
}

/// An inclusive multi-level LRU cache simulator driven by element indices.
#[derive(Debug, Clone)]
pub struct CacheHierarchy {
    levels: Vec<CacheLevel>,
    memory: MemoryConfig,
    layout: NodeLayout,
    memory_accesses: u64,
}

impl CacheHierarchy {
    /// Build from level configs (ordered L1 → LLC) and a record layout.
    pub fn new(configs: Vec<CacheConfig>, memory: MemoryConfig, layout: NodeLayout) -> Self {
        assert!(!configs.is_empty(), "need at least one cache level");
        let line = configs[0].line_bytes;
        assert!(
            configs.iter().all(|c| c.line_bytes == line),
            "all levels must share one line size"
        );
        CacheHierarchy {
            levels: configs.into_iter().map(CacheLevel::new).collect(),
            memory,
            layout,
            memory_accesses: 0,
        }
    }

    /// The Intel Westmere-EX (Xeon E7-8837) of the paper's §5.1: 32 KiB
    /// 8-way L1, 256 KiB 8-way L2, 24 MiB 24-way shared L3, 64-byte lines;
    /// latencies 4 / 10 / ~100 (L3 reported 38–170) / ~230 (memory 175–290).
    pub fn westmere_ex(layout: NodeLayout) -> Self {
        CacheHierarchy::new(
            vec![
                CacheConfig {
                    name: "L1",
                    size_bytes: 32 * 1024,
                    line_bytes: 64,
                    associativity: 8,
                    latency_cycles: 4,
                },
                CacheConfig {
                    name: "L2",
                    size_bytes: 256 * 1024,
                    line_bytes: 64,
                    associativity: 8,
                    latency_cycles: 10,
                },
                CacheConfig {
                    name: "L3",
                    size_bytes: 24 * 1024 * 1024,
                    line_bytes: 64,
                    associativity: 24,
                    latency_cycles: 100,
                },
            ],
            MemoryConfig { latency_cycles: 230 },
            layout,
        )
    }

    /// A deliberately small hierarchy for tests and fast experiments:
    /// capacities scaled down ~256× with the same shape.
    pub fn tiny(layout: NodeLayout) -> Self {
        CacheHierarchy::new(
            vec![
                CacheConfig {
                    name: "L1",
                    size_bytes: 1024,
                    line_bytes: 64,
                    associativity: 4,
                    latency_cycles: 4,
                },
                CacheConfig {
                    name: "L2",
                    size_bytes: 8 * 1024,
                    line_bytes: 64,
                    associativity: 8,
                    latency_cycles: 10,
                },
                CacheConfig {
                    name: "L3",
                    size_bytes: 96 * 1024,
                    line_bytes: 64,
                    associativity: 12,
                    latency_cycles: 100,
                },
            ],
            MemoryConfig { latency_cycles: 230 },
            layout,
        )
    }

    /// Number of cache levels.
    pub fn num_levels(&self) -> usize {
        self.levels.len()
    }

    /// The record layout in use.
    pub fn layout(&self) -> NodeLayout {
        self.layout
    }

    /// Access every cache line of element `idx`: L1 first, descending on
    /// miss; filled lines are inserted at every level on the way back
    /// (inclusive hierarchy).
    pub fn access_element(&mut self, idx: u32) {
        let line_bytes = self.levels[0].config().line_bytes;
        for line in self.layout.lines_of(idx, line_bytes) {
            self.access_line(line);
        }
    }

    /// Access one line address.
    pub fn access_line(&mut self, line: u64) {
        self.access_line_tracked(line);
    }

    /// [`CacheHierarchy::access_line`] reporting which level satisfied the
    /// access: `0` = L1 hit, …, `num_levels()` = served from memory.
    pub fn access_line_tracked(&mut self, line: u64) -> usize {
        for (depth, level) in self.levels.iter_mut().enumerate() {
            if level.access_line(line) {
                return depth;
            }
        }
        self.memory_accesses += 1;
        self.levels.len()
    }

    /// Install `line` in every level without touching the demand counters
    /// — a prefetch fill (inclusive hierarchy: all levels receive it).
    pub fn prefetch_line(&mut self, line: u64) {
        for level in &mut self.levels {
            level.insert_line(line);
        }
    }

    /// Run a whole element-index trace.
    pub fn run_trace(&mut self, trace: &[u32]) {
        for &idx in trace {
            self.access_element(idx);
        }
    }

    /// Per-level counters, L1 outward.
    pub fn level_stats(&self) -> Vec<CacheStats> {
        self.levels.iter().map(|l| l.stats()).collect()
    }

    /// Per-level configurations, L1 outward.
    pub fn level_configs(&self) -> Vec<CacheConfig> {
        self.levels.iter().map(|l| *l.config()).collect()
    }

    /// Stats of the level called `name` (`"L1"`…).
    pub fn stats_of(&self, name: &str) -> Option<CacheStats> {
        self.levels.iter().find(|l| l.config().name == name).map(|l| l.stats())
    }

    /// Accesses that missed every level.
    pub fn memory_accesses(&self) -> u64 {
        self.memory_accesses
    }

    /// Total simulated cycles: each level charges its latency for every
    /// lookup that reached it, memory charges for full misses. (This is the
    /// additive form of the paper's Equation (2).)
    pub fn total_cycles(&self) -> u64 {
        let mut cycles = 0;
        for level in &self.levels {
            cycles += level.stats().accesses * level.config().latency_cycles;
        }
        cycles + self.memory_accesses * self.memory.latency_cycles
    }

    /// Per-level capacity in elements of the configured layout, under the
    /// paper's theoretical model (§3.1).
    pub fn capacities_in_elements(&self) -> Vec<u64> {
        self.levels
            .iter()
            .map(|l| l.config().capacity_elements(self.layout.bytes_per_node))
            .collect()
    }

    /// Empty all levels, keeping counters.
    pub fn flush(&mut self) {
        for l in &mut self.levels {
            l.flush();
        }
    }

    /// Zero all counters, keeping contents.
    pub fn reset_stats(&mut self) {
        for l in &mut self.levels {
            l.reset_stats();
        }
        self.memory_accesses = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn h() -> CacheHierarchy {
        CacheHierarchy::tiny(NodeLayout::coords_only())
    }

    #[test]
    fn westmere_preset_shape() {
        let w = CacheHierarchy::westmere_ex(NodeLayout::paper_66());
        assert_eq!(w.num_levels(), 3);
        let caps = w.capacities_in_elements();
        // §5.2.3's orders of magnitude: below reuse distance ~496 no L1
        // miss, ~3970 no L2 miss, ~372k no L3 miss (66-byte nodes). Exact
        // integer division gives 496 / 3971 / 381300.
        assert_eq!(caps[0], 496);
        assert_eq!(caps[1], 3971);
        assert_eq!(caps[2], 381_300);
    }

    #[test]
    fn single_element_hits_after_cold_miss() {
        let mut c = h();
        c.access_element(5);
        c.access_element(5);
        let l1 = c.stats_of("L1").unwrap();
        assert_eq!(l1.misses, 1);
        assert_eq!(l1.hits, 1);
        // L2/L3 saw only the cold miss
        assert_eq!(c.stats_of("L2").unwrap().accesses, 1);
        assert_eq!(c.memory_accesses(), 1);
    }

    #[test]
    fn working_set_between_l1_and_l2_hits_in_l2() {
        let mut c = h(); // L1 1 KiB = 64 coord elements; L2 8 KiB = 512
                         // Cycle over 128 elements (2 KiB > L1, < L2): after warmup, L1
                         // misses but L2 hits.
        let trace: Vec<u32> = (0..128).collect();
        for _ in 0..4 {
            c.run_trace(&trace);
        }
        let l2 = c.stats_of("L2").unwrap();
        assert!(l2.hits > 0, "L2 must absorb L1 capacity misses");
        assert_eq!(c.memory_accesses(), 32, "only the 32 cold line fills reach memory");
    }

    #[test]
    fn sequential_scan_has_spatial_locality() {
        // 4 coord records per 64-B line → ~75% L1 hits on a cold scan.
        let mut c = h();
        let trace: Vec<u32> = (0..256).collect();
        c.run_trace(&trace);
        let l1 = c.stats_of("L1").unwrap();
        assert_eq!(l1.misses, 64);
        assert_eq!(l1.hits, 192);
    }

    #[test]
    fn cycles_accumulate_per_level() {
        let mut c = h();
        c.access_element(0); // cold: L1+L2+L3+mem = 4+10+100+230
        assert_eq!(c.total_cycles(), 344);
        c.access_element(0); // L1 hit: +4
        assert_eq!(c.total_cycles(), 348);
    }

    #[test]
    fn straddling_records_touch_two_lines() {
        let mut c = CacheHierarchy::tiny(NodeLayout::paper_66());
        c.access_element(0); // 66 bytes → 2 lines
        assert_eq!(c.stats_of("L1").unwrap().accesses, 2);
    }

    #[test]
    fn flush_and_reset() {
        let mut c = h();
        c.access_element(1);
        c.reset_stats();
        assert_eq!(c.stats_of("L1").unwrap().accesses, 0);
        assert_eq!(c.memory_accesses(), 0);
        c.access_element(1); // still cached
        assert_eq!(c.stats_of("L1").unwrap().hits, 1);
        c.flush();
        c.access_element(1);
        assert_eq!(c.stats_of("L1").unwrap().misses, 1);
    }

    #[test]
    fn mismatched_line_sizes_rejected() {
        let bad = std::panic::catch_unwind(|| {
            CacheHierarchy::new(
                vec![
                    CacheConfig {
                        name: "A",
                        size_bytes: 1024,
                        line_bytes: 64,
                        associativity: 2,
                        latency_cycles: 1,
                    },
                    CacheConfig {
                        name: "B",
                        size_bytes: 2048,
                        line_bytes: 128,
                        associativity: 2,
                        latency_cycles: 2,
                    },
                ],
                MemoryConfig { latency_cycles: 10 },
                NodeLayout::coords_only(),
            )
        });
        assert!(bad.is_err());
    }
}
