//! Distance histograms and binned profiles (Figures 1 and 6).

use crate::reuse::COLD;

/// Power-of-two-bucket histogram of reuse distances.
///
/// Bucket `k` counts distances in `[2^k, 2^(k+1))`; bucket 0 additionally
/// holds distance 0. Cold accesses are tallied separately.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct LogHistogram {
    /// Counts per power-of-two bucket.
    pub buckets: Vec<u64>,
    /// Number of cold (first-ever) accesses.
    pub cold: u64,
    /// Total accesses observed.
    pub total: u64,
}

impl LogHistogram {
    /// Build from a distance stream.
    pub fn from_distances(distances: &[u64]) -> Self {
        let mut h = LogHistogram::default();
        for &d in distances {
            h.push(d);
        }
        h
    }

    /// Add one distance.
    pub fn push(&mut self, d: u64) {
        self.total += 1;
        if d == COLD {
            self.cold += 1;
            return;
        }
        let bucket = if d == 0 { 0 } else { 64 - d.leading_zeros() as usize - 1 };
        if bucket >= self.buckets.len() {
            self.buckets.resize(bucket + 1, 0);
        }
        self.buckets[bucket] += 1;
    }

    /// Number of re-accesses with distance strictly greater than `threshold`
    /// — an upper-bound count via bucket granularity is avoided by storing
    /// exact per-bucket ranges, so this walks buckets above the threshold's
    /// bucket and conservatively includes the threshold's own bucket when it
    /// straddles. Prefer exact counting on the raw stream when available.
    pub fn approx_count_above(&self, threshold: u64) -> u64 {
        let tb = if threshold == 0 { 0 } else { 64 - threshold.leading_zeros() as usize - 1 };
        self.buckets.iter().enumerate().filter(|&(k, _)| k > tb).map(|(_, &c)| c).sum()
    }

    /// Re-access count (total minus cold).
    pub fn reuses(&self) -> u64 {
        self.total - self.cold
    }
}

/// Mean of the finite distances within each of `num_bins` equal slices of
/// the stream — the curve plotted in Figures 1 and 6 ("each time step is
/// the average of ~20,000 consecutive data accesses"). Bins with only cold
/// accesses yield 0.
pub fn binned_means(distances: &[u64], num_bins: usize) -> Vec<f64> {
    assert!(num_bins > 0, "need at least one bin");
    if distances.is_empty() {
        return vec![0.0; num_bins];
    }
    let mut out = Vec::with_capacity(num_bins);
    let n = distances.len();
    for b in 0..num_bins {
        let lo = b * n / num_bins;
        let hi = ((b + 1) * n / num_bins).max(lo);
        let slice = &distances[lo..hi];
        let mut sum = 0u128;
        let mut cnt = 0usize;
        for &d in slice {
            if d != COLD {
                sum += d as u128;
                cnt += 1;
            }
        }
        out.push(if cnt == 0 { 0.0 } else { sum as f64 / cnt as f64 });
    }
    out
}

/// Exact count of re-accesses with distance strictly greater than
/// `threshold` (cold accesses are *not* counted).
pub fn count_above(distances: &[u64], threshold: u64) -> u64 {
    distances.iter().filter(|&&d| d != COLD && d > threshold).count() as u64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_buckets_powers_of_two() {
        let h = LogHistogram::from_distances(&[0, 1, 2, 3, 4, 7, 8, COLD]);
        // bucket 0: {0, 1}, bucket 1: {2, 3}, bucket 2: {4, 7}, bucket 3: {8}
        assert_eq!(h.buckets, vec![2, 2, 2, 1]);
        assert_eq!(h.cold, 1);
        assert_eq!(h.total, 8);
        assert_eq!(h.reuses(), 7);
    }

    #[test]
    fn binned_means_averages_slices() {
        let d = vec![2, 4, 10, 20];
        let m = binned_means(&d, 2);
        assert_eq!(m, vec![3.0, 15.0]);
    }

    #[test]
    fn binned_means_skips_cold() {
        let d = vec![COLD, 4, COLD, COLD];
        let m = binned_means(&d, 2);
        assert_eq!(m, vec![4.0, 0.0]);
    }

    #[test]
    fn binned_means_handles_more_bins_than_data() {
        let m = binned_means(&[5], 4);
        assert_eq!(m.len(), 4);
        assert_eq!(m.iter().filter(|&&x| x > 0.0).count(), 1);
    }

    #[test]
    fn count_above_ignores_cold() {
        let d = vec![COLD, 5, 10, 2];
        assert_eq!(count_above(&d, 4), 2);
        assert_eq!(count_above(&d, 10), 0);
        assert_eq!(count_above(&d, 0), 3);
    }

    #[test]
    fn empty_inputs() {
        let h = LogHistogram::from_distances(&[]);
        assert_eq!(h.total, 0);
        assert_eq!(binned_means(&[], 3), vec![0.0, 0.0, 0.0]);
        assert_eq!(count_above(&[], 0), 0);
    }
}
