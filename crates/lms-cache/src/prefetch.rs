//! Sequential (next-line) hardware prefetching on top of the hierarchy.
//!
//! §3.1 of the paper notes the real machine's behaviour deviates from the
//! pure stack-distance model because "the fetching is done by cache lines
//! … and not by elements", and hardware prefetchers amplify exactly the
//! property good orderings create: *sequential* line access. This module
//! models the simplest such prefetcher — on every demand L1 miss to line
//! `ℓ`, fill lines `ℓ+1 … ℓ+degree` — so the ablation bench can measure
//! how much of each ordering's win survives, or is amplified, when the
//! hardware already prefetches.
//!
//! Prefetch fills do not touch the demand counters (hardware counters like
//! PAPI's `L1_DCM` count demand misses; fills arrive silently), so the
//! per-level miss rates stay comparable with the non-prefetching runs.

use crate::hierarchy::CacheHierarchy;

/// Counters of a prefetching run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PrefetchStats {
    /// Prefetch fills issued (degree × triggering misses).
    pub issued: u64,
    /// Demand L1 misses that triggered a prefetch burst.
    pub triggers: u64,
}

/// A next-`degree`-lines prefetcher. `degree == 0` disables prefetching
/// (the run degenerates to [`CacheHierarchy::run_trace`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NextLinePrefetcher {
    /// Lines fetched ahead on each triggering miss.
    pub degree: usize,
}

impl NextLinePrefetcher {
    /// Common hardware default: fetch the adjacent line.
    pub fn adjacent() -> Self {
        NextLinePrefetcher { degree: 1 }
    }

    /// Drive one demand line access through `hier`, issuing prefetches on
    /// an L1 miss.
    pub fn access_line(&self, hier: &mut CacheHierarchy, line: u64, stats: &mut PrefetchStats) {
        let served_at = hier.access_line_tracked(line);
        if served_at > 0 && self.degree > 0 {
            stats.triggers += 1;
            for ahead in 1..=self.degree as u64 {
                hier.prefetch_line(line + ahead);
                stats.issued += 1;
            }
        }
    }

    /// Run a whole element-index trace with prefetching; element → line
    /// lowering uses the hierarchy's configured layout, exactly like
    /// [`CacheHierarchy::run_trace`].
    pub fn run_trace(&self, hier: &mut CacheHierarchy, trace: &[u32]) -> PrefetchStats {
        let mut stats = PrefetchStats::default();
        let line_bytes = self.line_bytes(hier);
        for &idx in trace {
            let layout = hier.layout();
            for line in layout.lines_of(idx, line_bytes) {
                self.access_line(hier, line, &mut stats);
            }
        }
        stats
    }

    fn line_bytes(&self, hier: &CacheHierarchy) -> usize {
        // all levels share one line size (asserted at construction)
        hier.level_configs()[0].line_bytes
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::address::NodeLayout;

    fn tiny() -> CacheHierarchy {
        CacheHierarchy::tiny(NodeLayout::coords_only())
    }

    #[test]
    fn zero_degree_matches_plain_run() {
        let trace: Vec<u32> = (0..200).map(|i| (i * 7) % 50).collect();
        let mut plain = tiny();
        plain.run_trace(&trace);
        let mut pf = tiny();
        let stats = NextLinePrefetcher { degree: 0 }.run_trace(&mut pf, &trace);
        assert_eq!(stats, PrefetchStats::default());
        assert_eq!(plain.level_stats(), pf.level_stats());
        assert_eq!(plain.memory_accesses(), pf.memory_accesses());
    }

    #[test]
    fn sequential_scan_benefits_massively_from_prefetch() {
        // long forward scan: every line is prefetched right before its use
        let trace: Vec<u32> = (0..2000).collect();
        let mut plain = tiny();
        plain.run_trace(&trace);
        let mut pf = tiny();
        let stats = NextLinePrefetcher::adjacent().run_trace(&mut pf, &trace);
        assert!(stats.issued > 0);
        let plain_miss = plain.stats_of("L1").unwrap().misses;
        let pf_miss = pf.stats_of("L1").unwrap().misses;
        // degree-1 on a pure scan halves the misses exactly: a miss on
        // line ℓ prefetches ℓ+1, which hits silently and so never
        // prefetches ℓ+2
        assert!(
            pf_miss * 2 <= plain_miss,
            "prefetch should halve sequential misses: {pf_miss} vs {plain_miss}"
        );
        // higher degree almost eliminates them
        let mut deep = tiny();
        NextLinePrefetcher { degree: 8 }.run_trace(&mut deep, &trace);
        let deep_miss = deep.stats_of("L1").unwrap().misses;
        assert!(
            deep_miss * 4 <= plain_miss,
            "degree-8 should cut sequential misses 4x+: {deep_miss} vs {plain_miss}"
        );
    }

    #[test]
    fn prefetch_fills_do_not_inflate_demand_counters() {
        let trace: Vec<u32> = (0..500).collect();
        let mut pf = tiny();
        NextLinePrefetcher { degree: 4 }.run_trace(&mut pf, &trace);
        let l1 = pf.stats_of("L1").unwrap();
        // demand accesses = lines touched by the trace, not fills
        let line_bytes = 64;
        let expected: u64 =
            trace.iter().map(|&i| pf.layout().lines_of(i, line_bytes).count() as u64).sum();
        assert_eq!(l1.accesses, expected);
    }

    #[test]
    fn random_trace_gains_little() {
        // pseudo-random order: next-line prefetches are mostly wasted
        let mut x: u64 = 12345;
        let trace: Vec<u32> = (0..3000)
            .map(|_| {
                x ^= x << 13;
                x ^= x >> 7;
                x ^= x << 17;
                (x % 3000) as u32
            })
            .collect();
        let mut plain = tiny();
        plain.run_trace(&trace);
        let mut pf = tiny();
        NextLinePrefetcher::adjacent().run_trace(&mut pf, &trace);
        let plain_miss = plain.stats_of("L1").unwrap().misses as f64;
        let pf_miss = pf.stats_of("L1").unwrap().misses as f64;
        // some accidental gain is fine; an 2x sequential-style gain is not
        assert!(
            pf_miss > 0.5 * plain_miss,
            "random trace should not benefit like a scan: {pf_miss} vs {plain_miss}"
        );
    }
}
