//! Write-back traffic modeling.
//!
//! The Gauss–Seidel smoothing sweep is not read-only: every interior
//! vertex's record is *written* after its neighbours are gathered. A
//! write-back cache keeps the written line dirty until eviction, so the
//! memory-bound cost of a layout has two components: demand fills (misses)
//! and dirty evictions (write-backs). A good reordering reduces both — a
//! dirty line whose vertex is re-gathered soon stays resident instead of
//! bouncing — and this module measures the second component the plain
//! simulator in [`crate::cache`] ignores.

use crate::address::NodeLayout;
use crate::cache::CacheConfig;

/// One read or write access to an element record.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RwAccess {
    /// Element (vertex or aux-region) index.
    pub elem: u32,
    /// True for a write (the smoothed vertex's position update).
    pub write: bool,
}

/// Expand a smoothing sweep trace into a read/write trace: within each
/// vertex group (`v, n₁, …, n_d` — as produced by the traced engines), the
/// leading vertex is read *and then written* (Equation (1) stores the new
/// position), neighbours are reads.
///
/// `group_heads[v] = true` marks elements that head a group (interior
/// vertices). Consecutive accesses to a head element become read+write.
pub fn sweep_rw_trace(trace: &[u32], group_heads: &[bool]) -> Vec<RwAccess> {
    let mut out = Vec::with_capacity(trace.len() + trace.len() / 4);
    for &e in trace {
        if (e as usize) < group_heads.len() && group_heads[e as usize] {
            out.push(RwAccess { elem: e, write: false }); // gather own position
            out.push(RwAccess { elem: e, write: true }); // store the update
        } else {
            out.push(RwAccess { elem: e, write: false });
        }
    }
    out
}

/// Traffic counters of a write-back cache.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TrafficStats {
    /// Total accesses (reads + writes).
    pub accesses: u64,
    /// Accesses that hit.
    pub hits: u64,
    /// Demand fills (miss → line brought in).
    pub fills: u64,
    /// Dirty lines written back on eviction.
    pub writebacks: u64,
    /// Dirty lines remaining at the last [`WritebackCache::drain`].
    pub drained: u64,
}

impl TrafficStats {
    /// Total line transfers to/from the next level: fills + write-backs
    /// (+ the final drain).
    pub fn line_traffic(&self) -> u64 {
        self.fills + self.writebacks + self.drained
    }

    /// Bytes moved, given the line size.
    pub fn bytes_traffic(&self, line_bytes: usize) -> u64 {
        self.line_traffic() * line_bytes as u64
    }
}

/// A set-associative LRU cache with per-line dirty bits and write-back,
/// write-allocate semantics.
#[derive(Debug, Clone)]
pub struct WritebackCache {
    config: CacheConfig,
    /// Per-set `(tag, dirty)`, most recently used last.
    sets: Vec<Vec<(u64, bool)>>,
    stats: TrafficStats,
}

impl WritebackCache {
    /// Build an empty cache.
    pub fn new(config: CacheConfig) -> Self {
        assert!(config.line_bytes > 0 && config.size_bytes.is_multiple_of(config.line_bytes));
        assert!(config.associativity > 0, "associativity must be positive");
        let sets = vec![Vec::with_capacity(config.associativity); config.num_sets()];
        WritebackCache { config, sets, stats: TrafficStats::default() }
    }

    /// The configuration.
    pub fn config(&self) -> &CacheConfig {
        &self.config
    }

    /// Counters so far.
    pub fn stats(&self) -> TrafficStats {
        self.stats
    }

    /// Access line `line_addr`; `write` marks it dirty. Returns true on hit.
    pub fn access_line(&mut self, line_addr: u64, write: bool) -> bool {
        self.stats.accesses += 1;
        let num_sets = self.sets.len() as u64;
        let set = &mut self.sets[(line_addr % num_sets) as usize];
        if let Some(pos) = set.iter().position(|&(t, _)| t == line_addr) {
            let (tag, dirty) = set.remove(pos);
            set.push((tag, dirty || write));
            self.stats.hits += 1;
            true
        } else {
            self.stats.fills += 1;
            if set.len() == self.config.associativity {
                let (_, dirty) = set.remove(0);
                if dirty {
                    self.stats.writebacks += 1;
                }
            }
            set.push((line_addr, write));
            false
        }
    }

    /// Run a read/write element trace under `layout`, touching every line
    /// of each element record.
    pub fn run_trace(&mut self, trace: &[RwAccess], layout: &NodeLayout) {
        for &RwAccess { elem, write } in trace {
            for line in layout.lines_of(elem, self.config.line_bytes) {
                self.access_line(line, write);
            }
        }
    }

    /// Flush all remaining dirty lines (end of run), counting them into
    /// [`TrafficStats::drained`].
    pub fn drain(&mut self) {
        for set in &mut self.sets {
            for &(_, dirty) in set.iter() {
                if dirty {
                    self.stats.drained += 1;
                }
            }
            set.clear();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny(lines: usize) -> CacheConfig {
        CacheConfig {
            name: "T",
            size_bytes: 64 * lines,
            line_bytes: 64,
            associativity: lines, // fully associative
            latency_cycles: 1,
        }
    }

    #[test]
    fn clean_evictions_produce_no_writebacks() {
        let mut c = WritebackCache::new(tiny(2));
        for line in 0..10u64 {
            c.access_line(line, false);
        }
        c.drain();
        let s = c.stats();
        assert_eq!(s.fills, 10);
        assert_eq!(s.writebacks, 0);
        assert_eq!(s.drained, 0);
        assert_eq!(s.line_traffic(), 10);
    }

    #[test]
    fn dirty_eviction_counts_once() {
        let mut c = WritebackCache::new(tiny(1));
        c.access_line(0, true); // fill + dirty
        c.access_line(1, false); // evicts dirty line 0 -> 1 writeback
        c.drain(); // line 1 clean
        let s = c.stats();
        assert_eq!(s.writebacks, 1);
        assert_eq!(s.drained, 0);
        assert_eq!(s.fills, 2);
    }

    #[test]
    fn write_hit_marks_dirty_without_traffic() {
        let mut c = WritebackCache::new(tiny(2));
        c.access_line(0, false);
        assert!(c.access_line(0, true)); // hit, now dirty
        c.drain();
        let s = c.stats();
        assert_eq!(s.fills, 1);
        assert_eq!(s.drained, 1);
        assert_eq!(s.line_traffic(), 2);
    }

    #[test]
    fn dirty_bit_survives_reads() {
        let mut c = WritebackCache::new(tiny(1));
        c.access_line(0, true);
        c.access_line(0, false); // read hit must not clean the line
        c.access_line(1, false); // eviction must write back
        assert_eq!(c.stats().writebacks, 1);
    }

    #[test]
    fn rw_trace_expansion_marks_heads() {
        let heads = vec![true, false, false];
        let rw = sweep_rw_trace(&[0, 1, 2], &heads);
        assert_eq!(
            rw,
            vec![
                RwAccess { elem: 0, write: false },
                RwAccess { elem: 0, write: true },
                RwAccess { elem: 1, write: false },
                RwAccess { elem: 2, write: false },
            ]
        );
    }

    #[test]
    fn good_locality_means_fewer_writebacks() {
        // Two layouts of the same write stream: a working set that fits
        // keeps dirty lines resident; scattered writes bounce them.
        let cfg = tiny(16);
        let seq: Vec<RwAccess> =
            (0..4096u32).map(|i| RwAccess { elem: i % 8, write: true }).collect();
        let scattered: Vec<RwAccess> = (0..4096u32)
            .map(|i| RwAccess { elem: i.wrapping_mul(2654435761) % 4096, write: true })
            .collect();
        let layout = NodeLayout::with_bytes(64);
        let mut a = WritebackCache::new(cfg);
        a.run_trace(&seq, &layout);
        a.drain();
        let mut b = WritebackCache::new(cfg);
        b.run_trace(&scattered, &layout);
        b.drain();
        assert!(
            a.stats().line_traffic() * 10 < b.stats().line_traffic(),
            "sequential {} vs scattered {}",
            a.stats().line_traffic(),
            b.stats().line_traffic()
        );
    }

    #[test]
    fn stats_are_consistent() {
        let mut c = WritebackCache::new(tiny(4));
        for i in 0..100u64 {
            c.access_line(i % 8, i % 3 == 0);
        }
        c.drain();
        let s = c.stats();
        assert_eq!(s.accesses, 100);
        assert_eq!(s.hits + s.fills, s.accesses);
        assert!(s.writebacks + s.drained <= s.fills);
    }
}
