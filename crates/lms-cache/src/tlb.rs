//! TLB (translation lookaside buffer) simulation.
//!
//! Cache misses are not the only penalty of a scattered layout: every
//! distinct 4 KiB page touched must have its translation resident in the
//! TLB, and a TLB miss costs a page-table walk (tens to hundreds of
//! cycles on Westmere). A vertex reordering that shrinks reuse distance
//! also shrinks the *page working set*, so RDR's benefit extends below the
//! cache level — this module measures that effect (`tlb` experiment).
//!
//! The model is a two-level fully-LRU TLB with the Westmere-EX DTLB shape:
//! 64-entry L1 DTLB and 512-entry unified L2 TLB over 4 KiB pages, with a
//! fixed walk penalty for misses in both.

use crate::address::NodeLayout;

/// Configuration of a two-level data TLB.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TlbConfig {
    /// Page size in bytes (power of two).
    pub page_bytes: u64,
    /// L1 DTLB entries.
    pub l1_entries: usize,
    /// L2 TLB entries (0 disables the second level).
    pub l2_entries: usize,
    /// Cycles added by an L1 miss that hits L2.
    pub l2_latency: u64,
    /// Cycles of a full page-table walk (miss in both levels).
    pub walk_latency: u64,
}

impl TlbConfig {
    /// The Westmere-EX DTLB: 64-entry L1, 512-entry L2, 4 KiB pages,
    /// 7-cycle L2 hit, 30-cycle walk (Molka et al. \[9\] ballpark).
    pub fn westmere_ex() -> Self {
        TlbConfig {
            page_bytes: 4096,
            l1_entries: 64,
            l2_entries: 512,
            l2_latency: 7,
            walk_latency: 30,
        }
    }
}

/// TLB access counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct TlbStats {
    /// Total translations requested.
    pub accesses: u64,
    /// L1 DTLB hits.
    pub l1_hits: u64,
    /// L1 misses that hit the L2 TLB.
    pub l2_hits: u64,
    /// Full page-table walks.
    pub walks: u64,
}

impl TlbStats {
    /// L1 miss rate.
    pub fn l1_miss_rate(&self) -> f64 {
        if self.accesses == 0 {
            0.0
        } else {
            (self.accesses - self.l1_hits) as f64 / self.accesses as f64
        }
    }

    /// Fraction of accesses that required a full walk.
    pub fn walk_rate(&self) -> f64 {
        if self.accesses == 0 {
            0.0
        } else {
            self.walks as f64 / self.accesses as f64
        }
    }
}

/// A two-level LRU TLB.
#[derive(Debug, Clone)]
pub struct Tlb {
    config: TlbConfig,
    /// L1 entries, most recent last.
    l1: Vec<u64>,
    /// L2 entries, most recent last.
    l2: Vec<u64>,
    stats: TlbStats,
}

impl Tlb {
    /// Build an empty TLB.
    pub fn new(config: TlbConfig) -> Self {
        assert!(config.page_bytes.is_power_of_two(), "page size must be a power of two");
        assert!(config.l1_entries >= 1, "need at least one L1 entry");
        Tlb { config, l1: Vec::new(), l2: Vec::new(), stats: TlbStats::default() }
    }

    /// The configuration.
    pub fn config(&self) -> &TlbConfig {
        &self.config
    }

    /// Counters so far.
    pub fn stats(&self) -> TlbStats {
        self.stats
    }

    /// Translate the page of byte address `addr`; returns the cycle cost of
    /// this translation (0 for an L1 hit).
    pub fn access(&mut self, addr: u64) -> u64 {
        let page = addr / self.config.page_bytes;
        self.stats.accesses += 1;

        if touch_lru(&mut self.l1, page, self.config.l1_entries) {
            self.stats.l1_hits += 1;
            // keep L2 inclusive-ish: refresh recency there too
            if self.config.l2_entries > 0 {
                touch_lru(&mut self.l2, page, self.config.l2_entries);
            }
            return 0;
        }
        if self.config.l2_entries > 0 && touch_lru(&mut self.l2, page, self.config.l2_entries) {
            self.stats.l2_hits += 1;
            return self.config.l2_latency;
        }
        self.stats.walks += 1;
        if self.config.l2_entries > 0 {
            touch_lru(&mut self.l2, page, self.config.l2_entries);
        }
        self.config.walk_latency
    }

    /// Run a whole element-index trace under `layout`, translating the
    /// first byte of every element record. Returns total translation
    /// cycles.
    pub fn run_trace(&mut self, trace: &[u32], layout: &NodeLayout) -> u64 {
        let mut cycles = 0;
        for &e in trace {
            let (addr, _) = layout.addr_range(e);
            cycles += self.access(addr);
        }
        cycles
    }

    /// Clear entries and counters.
    pub fn reset(&mut self) {
        self.l1.clear();
        self.l2.clear();
        self.stats = TlbStats::default();
    }
}

/// LRU-touch `page` in `entries` (most recent last, capacity `cap`).
/// Returns true on hit.
fn touch_lru(entries: &mut Vec<u64>, page: u64, cap: usize) -> bool {
    if let Some(pos) = entries.iter().position(|&p| p == page) {
        entries.remove(pos);
        entries.push(page);
        true
    } else {
        if entries.len() == cap {
            entries.remove(0);
        }
        entries.push(page);
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> TlbConfig {
        TlbConfig { page_bytes: 64, l1_entries: 2, l2_entries: 4, l2_latency: 5, walk_latency: 50 }
    }

    #[test]
    fn first_access_walks_second_hits() {
        let mut tlb = Tlb::new(tiny());
        assert_eq!(tlb.access(0), 50);
        assert_eq!(tlb.access(8), 0); // same page
        let s = tlb.stats();
        assert_eq!(s.walks, 1);
        assert_eq!(s.l1_hits, 1);
    }

    #[test]
    fn l1_evicts_to_l2() {
        let mut tlb = Tlb::new(tiny());
        // touch pages 0,1,2: page 0 leaves the 2-entry L1 but stays in L2
        tlb.access(0);
        tlb.access(64);
        tlb.access(128);
        let cost = tlb.access(0);
        assert_eq!(cost, 5, "page 0 should hit the L2 TLB");
        assert_eq!(tlb.stats().l2_hits, 1);
    }

    #[test]
    fn lru_order_is_respected() {
        let mut tlb = Tlb::new(tiny());
        tlb.access(0); // pages 0
        tlb.access(64); // 1
        tlb.access(0); // refresh 0 -> LRU victim is now 1
        tlb.access(128); // evicts page 1 from L1
        assert_eq!(tlb.access(0), 0, "page 0 must still be L1-resident");
    }

    #[test]
    fn sequential_pages_miss_once_each() {
        let mut tlb = Tlb::new(tiny());
        let mut cost = 0;
        for page in 0..100u64 {
            for off in 0..8 {
                cost += tlb.access(page * 64 + off * 8);
            }
        }
        let s = tlb.stats();
        assert_eq!(s.walks, 100);
        assert_eq!(s.accesses, 800);
        assert_eq!(cost, 100 * 50);
        assert!((s.l1_miss_rate() - 0.125).abs() < 1e-12);
    }

    #[test]
    fn trace_runner_uses_layout() {
        use crate::address::NodeLayout;
        let layout = NodeLayout::with_bytes(64); // one element per page line
        let mut tlb = Tlb::new(tiny());
        // elements 0 and 1 share the 64-byte "page"? page_bytes=64, element
        // 0 at [0,64), element 1 at [64,128): distinct pages.
        let cycles = tlb.run_trace(&[0, 1, 0, 1], &layout);
        assert_eq!(tlb.stats().walks, 2);
        assert_eq!(cycles, 100);
    }

    #[test]
    fn westmere_preset_shape() {
        let c = TlbConfig::westmere_ex();
        assert_eq!(c.page_bytes, 4096);
        assert_eq!(c.l1_entries, 64);
        assert_eq!(c.l2_entries, 512);
        let mut tlb = Tlb::new(c);
        tlb.access(0);
        tlb.reset();
        assert_eq!(tlb.stats().accesses, 0);
    }

    #[test]
    fn scattered_beats_nothing_dense_wins() {
        // dense walk over 32 pages vs random-ish jumps over 4096 pages:
        // the dense walk must produce a far lower walk rate.
        let cfg = TlbConfig::westmere_ex();
        let layout = NodeLayout::with_bytes(64);
        let dense: Vec<u32> = (0..20_000u32).map(|i| i % 2048).collect(); // 32 pages
        let scattered: Vec<u32> =
            (0..20_000u32).map(|i| (i.wrapping_mul(2654435761)) % 262_144).collect();
        let mut a = Tlb::new(cfg);
        a.run_trace(&dense, &layout);
        let mut b = Tlb::new(cfg);
        b.run_trace(&scattered, &layout);
        assert!(
            a.stats().walk_rate() < b.stats().walk_rate() / 10.0,
            "dense {} vs scattered {}",
            a.stats().walk_rate(),
            b.stats().walk_rate()
        );
    }
}
