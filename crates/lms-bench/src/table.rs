//! Plain-text tables and CSV output for the experiment reports.

use std::fmt::Write as _;
use std::path::Path;

/// Column alignment.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Align {
    Left,
    Right,
}

/// A simple aligned text table that can also serialise itself as CSV.
#[derive(Debug, Clone)]
pub struct Table {
    title: String,
    headers: Vec<String>,
    aligns: Vec<Align>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// New table with the given title and column headers (all
    /// right-aligned except the first column).
    pub fn new(title: impl Into<String>, headers: &[&str]) -> Self {
        let aligns = headers
            .iter()
            .enumerate()
            .map(|(i, _)| if i == 0 { Align::Left } else { Align::Right })
            .collect();
        Table {
            title: title.into(),
            headers: headers.iter().map(|s| s.to_string()).collect(),
            aligns,
            rows: Vec::new(),
        }
    }

    /// Override column alignments.
    pub fn with_aligns(mut self, aligns: &[Align]) -> Self {
        assert_eq!(aligns.len(), self.headers.len());
        self.aligns = aligns.to_vec();
        self
    }

    /// Append a row (must match the header count).
    pub fn row(&mut self, cells: Vec<String>) -> &mut Self {
        assert_eq!(cells.len(), self.headers.len(), "row width mismatch");
        self.rows.push(cells);
        self
    }

    /// Number of data rows.
    pub fn num_rows(&self) -> usize {
        self.rows.len()
    }

    /// Render the aligned text form.
    pub fn render(&self) -> String {
        let ncols = self.headers.len();
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.len());
            }
        }
        let mut out = String::new();
        if !self.title.is_empty() {
            let _ = writeln!(out, "## {}", self.title);
        }
        let fmt_row = |cells: &[String], widths: &[usize], aligns: &[Align]| -> String {
            let mut line = String::new();
            for i in 0..ncols {
                if i > 0 {
                    line.push_str("  ");
                }
                match aligns[i] {
                    Align::Left => {
                        let _ = write!(line, "{:<width$}", cells[i], width = widths[i]);
                    }
                    Align::Right => {
                        let _ = write!(line, "{:>width$}", cells[i], width = widths[i]);
                    }
                }
            }
            line.trim_end().to_string()
        };
        let _ = writeln!(out, "{}", fmt_row(&self.headers, &widths, &self.aligns));
        let total: usize = widths.iter().sum::<usize>() + 2 * (ncols - 1);
        let _ = writeln!(out, "{}", "-".repeat(total));
        for row in &self.rows {
            let _ = writeln!(out, "{}", fmt_row(row, &widths, &self.aligns));
        }
        out
    }

    /// Render as CSV (RFC-4180-ish; quotes cells containing separators).
    pub fn to_csv(&self) -> String {
        let escape = |s: &str| -> String {
            if s.contains(',') || s.contains('"') || s.contains('\n') {
                format!("\"{}\"", s.replace('"', "\"\""))
            } else {
                s.to_string()
            }
        };
        let mut out = String::new();
        let _ = writeln!(
            out,
            "{}",
            self.headers.iter().map(|h| escape(h)).collect::<Vec<_>>().join(",")
        );
        for row in &self.rows {
            let _ =
                writeln!(out, "{}", row.iter().map(|c| escape(c)).collect::<Vec<_>>().join(","));
        }
        out
    }

    /// Write the CSV form to `dir/<slug>.csv` (directory created if needed).
    pub fn write_csv(&self, dir: &Path, slug: &str) -> std::io::Result<()> {
        std::fs::create_dir_all(dir)?;
        std::fs::write(dir.join(format!("{slug}.csv")), self.to_csv())
    }
}

/// Format a float with `prec` decimals.
pub fn f(x: f64, prec: usize) -> String {
    format!("{x:.prec$}")
}

/// Format a count scaled by 10³ with one decimal (Table 2/3 style).
pub fn k(x: u64) -> String {
    format!("{:.1}", x as f64 / 1e3)
}

/// Format a percentage with one decimal.
pub fn pct(x: f64) -> String {
    format!("{:.1}%", 100.0 * x)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Table {
        let mut t = Table::new("demo", &["mesh", "value"]);
        t.row(vec!["carabiner".into(), "1.50".into()]);
        t.row(vec!["ocean".into(), "12.25".into()]);
        t
    }

    #[test]
    fn renders_aligned_columns() {
        let s = sample().render();
        assert!(s.contains("## demo"));
        let lines: Vec<&str> = s.lines().collect();
        assert!(lines[1].starts_with("mesh"));
        assert!(lines[3].starts_with("carabiner"));
        // numeric column right-aligned: "12.25" ends at same column as "1.50"
        let end3 = lines[3].len();
        let end4 = lines[4].len();
        assert_eq!(end3, end4);
    }

    #[test]
    fn csv_escapes_commas_and_quotes() {
        let mut t = Table::new("", &["a", "b"]);
        t.row(vec!["x,y".into(), "he said \"hi\"".into()]);
        let csv = t.to_csv();
        assert!(csv.contains("\"x,y\""));
        assert!(csv.contains("\"he said \"\"hi\"\"\""));
    }

    #[test]
    #[should_panic]
    fn row_width_mismatch_panics() {
        Table::new("", &["a", "b"]).row(vec!["only-one".into()]);
    }

    #[test]
    fn formatting_helpers() {
        assert_eq!(f(1.23456, 2), "1.23");
        assert_eq!(k(12_345), "12.3");
        assert_eq!(pct(0.256), "25.6%");
    }

    #[test]
    fn csv_file_roundtrip() {
        let dir = std::env::temp_dir().join("lms_bench_table_test");
        sample().write_csv(&dir, "demo").unwrap();
        let text = std::fs::read_to_string(dir.join("demo.csv")).unwrap();
        assert!(text.starts_with("mesh,value"));
        let _ = std::fs::remove_dir_all(&dir);
    }
}
