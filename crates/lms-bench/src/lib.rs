//! # lms-bench — the experiment harness
//!
//! Regenerates every table and figure of the paper's evaluation (§5) from
//! the `lms-mesh` / `lms-order` / `lms-smooth` / `lms-cache` stack. See
//! DESIGN.md for the experiment index and EXPERIMENTS.md for measured
//! results.
//!
//! The `lms-exp` binary is the entry point:
//!
//! ```text
//! lms-exp all --scale 0.02
//! lms-exp fig8 --scale 0.1
//! lms-exp table2 --mesh ocean --csv-dir results/
//! ```

pub mod common;
pub mod experiments;
pub mod table;

pub use common::ExpConfig;
pub use experiments::{run, run_all, ALL};
