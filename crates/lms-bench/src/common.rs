//! Shared experiment plumbing: configuration, mesh preparation, tracing and
//! timing helpers.

use lms_cache::NodeLayout;
use lms_mesh::suite::{self, NamedMesh};
use lms_mesh::TriMesh;
use lms_order::{compute_ordering, OrderingKind};
use lms_smooth::{trace::chunked_sweep_traces, SmoothEngine, SmoothParams, VecSink};
use std::path::PathBuf;
use std::time::{Duration, Instant};

/// Configuration shared by every experiment runner.
#[derive(Debug, Clone)]
pub struct ExpConfig {
    /// Suite scale: 1.0 = the paper's 300–400k-vertex meshes.
    pub scale: f64,
    /// Restrict to one suite mesh (label or name), `None` = all nine.
    pub mesh: Option<String>,
    /// Sweep cap for traced runs.
    pub max_iters: usize,
    /// Thread counts for the scaling experiments.
    pub threads: Vec<usize>,
    /// Where to drop CSVs (`None` = don't write files).
    pub csv_dir: Option<PathBuf>,
    /// Record layout for cache simulations.
    pub layout: NodeLayout,
}

impl Default for ExpConfig {
    fn default() -> Self {
        ExpConfig {
            // 2% of paper scale ≈ 6–8k vertices per mesh: every experiment
            // finishes in seconds on a laptop while preserving the shape of
            // the results. Use --scale 1.0 for paper-scale runs.
            scale: 0.02,
            mesh: None,
            max_iters: 50,
            threads: vec![1, 2, 4, 8, 16, 24, 32],
            csv_dir: None,
            layout: NodeLayout::paper_66(),
        }
    }
}

impl ExpConfig {
    /// The meshes selected by this config.
    pub fn meshes(&self) -> Vec<NamedMesh> {
        match &self.mesh {
            None => suite::suite(self.scale),
            Some(key) => {
                let spec =
                    suite::find_spec(key).unwrap_or_else(|| panic!("unknown suite mesh {key:?}"));
                vec![NamedMesh { spec, mesh: suite::generate(spec, self.scale) }]
            }
        }
    }

    /// A cache hierarchy scaled to the mesh scale: at paper scale the real
    /// Westmere-EX sizes; below, capacities shrink proportionally so the
    /// working-set-to-cache ratios (and therefore the miss-rate *shape*)
    /// match the paper's.
    pub fn hierarchy(&self) -> lms_cache::CacheHierarchy {
        scaled_westmere(self.scale, self.layout)
    }

    /// Machine config for the multicore simulation, same scaling rule.
    pub fn machine(&self) -> lms_cache::MachineConfig {
        let shrink = shrink_factor(self.scale);
        if shrink <= 1 {
            lms_cache::MachineConfig::westmere_ex(self.layout)
        } else {
            lms_cache::MachineConfig::westmere_scaled(self.layout, shrink)
        }
    }

    /// Layout for a full-application trace of `mesh`: vertex records plus
    /// the triangle-connectivity region (12-byte records at ids
    /// `num_vertices + t`).
    pub fn layout_with_triangles(&self, mesh: &TriMesh) -> NodeLayout {
        self.layout.with_aux(mesh.num_vertices() as u32, 12)
    }

    /// [`ExpConfig::hierarchy`] with the triangle region of `mesh`.
    pub fn hierarchy_for(&self, mesh: &TriMesh) -> lms_cache::CacheHierarchy {
        scaled_westmere(self.scale, self.layout_with_triangles(mesh))
    }

    /// [`ExpConfig::machine`] with the triangle region of `mesh`.
    pub fn machine_for(&self, mesh: &TriMesh) -> lms_cache::MachineConfig {
        let layout = self.layout_with_triangles(mesh);
        let shrink = shrink_factor(self.scale);
        if shrink <= 1 {
            lms_cache::MachineConfig::westmere_ex(layout)
        } else {
            lms_cache::MachineConfig::westmere_scaled(layout, shrink)
        }
    }
}

/// Cache shrink factor for a given mesh scale (1 at paper scale).
pub fn shrink_factor(scale: f64) -> usize {
    if scale >= 1.0 {
        1
    } else {
        (1.0 / scale).round().max(1.0) as usize
    }
}

/// A Westmere-EX hierarchy with capacities divided by [`shrink_factor`].
pub fn scaled_westmere(scale: f64, layout: NodeLayout) -> lms_cache::CacheHierarchy {
    use lms_cache::{CacheConfig, CacheHierarchy, MemoryConfig};
    let shrink = shrink_factor(scale);
    // keep sizes line-aligned and able to hold at least one full set
    let scale_bytes = |b: usize, line: usize, assoc: usize| ((b / shrink) / line).max(assoc) * line;
    CacheHierarchy::new(
        vec![
            CacheConfig {
                name: "L1",
                size_bytes: scale_bytes(32 * 1024, 64, 8),
                line_bytes: 64,
                associativity: 8,
                latency_cycles: 4,
            },
            CacheConfig {
                name: "L2",
                size_bytes: scale_bytes(256 * 1024, 64, 8),
                line_bytes: 64,
                associativity: 8,
                latency_cycles: 10,
            },
            CacheConfig {
                name: "L3",
                size_bytes: scale_bytes(24 * 1024 * 1024, 64, 24),
                line_bytes: 64,
                associativity: 24,
                latency_cycles: 100,
            },
        ],
        MemoryConfig { latency_cycles: 230 },
        layout,
    )
}

/// Apply `kind`'s permutation to `mesh`, returning the renumbered mesh.
pub fn ordered_mesh(mesh: &TriMesh, kind: OrderingKind) -> TriMesh {
    compute_ordering(mesh, kind).apply_to_mesh(mesh)
}

/// Access trace of the *first* smoothing sweep of `mesh`, vertex records
/// only (paper Table 2 / Figure 1 analyse the node-array accesses).
pub fn first_sweep_trace(mesh: &TriMesh) -> Vec<u32> {
    let engine = SmoothEngine::new(mesh, SmoothParams::paper().with_max_iters(1));
    let mut sink = VecSink::new();
    engine.smooth_traced(&mut mesh.clone(), &mut sink);
    sink.accesses
}

/// Access trace of a full smoothing run (up to `max_iters` sweeps), vertex
/// records only, with iteration boundaries.
pub fn full_trace(mesh: &TriMesh, max_iters: usize) -> VecSink {
    let engine = SmoothEngine::new(mesh, SmoothParams::paper().with_max_iters(max_iters));
    let mut sink = VecSink::new();
    engine.smooth_traced(&mut mesh.clone(), &mut sink);
    sink
}

/// Full-application trace of a smoothing run: vertex records *plus* the
/// quality update's triangle records (element ids `num_vertices + t`).
/// This is the stream the cache simulations run, mirroring the shared-L3
/// pressure of the paper's full application.
pub fn full_trace_with_quality(mesh: &TriMesh, max_iters: usize) -> VecSink {
    let engine = SmoothEngine::new(mesh, SmoothParams::paper().with_max_iters(max_iters));
    let mut sink = VecSink::new();
    engine.smooth_traced_with_quality(&mut mesh.clone(), &mut sink);
    sink
}

/// One-sweep access traces for `p` static chunks of `mesh` (the parallel
/// schedule's per-thread traces), vertex records only.
pub fn parallel_sweep_traces(mesh: &TriMesh, p: usize) -> Vec<Vec<u32>> {
    let engine = SmoothEngine::new(mesh, SmoothParams::paper());
    chunked_sweep_traces(engine.adjacency(), engine.boundary(), p)
}

/// [`parallel_sweep_traces`] including quality-update triangle accesses —
/// the full-application stream for the multicore simulation.
pub fn parallel_sweep_traces_full(mesh: &TriMesh, p: usize) -> Vec<Vec<u32>> {
    let engine = SmoothEngine::new(mesh, SmoothParams::paper());
    lms_smooth::trace::chunked_sweep_traces_opts(engine.adjacency(), engine.boundary(), p, true)
}

/// Run `f`, returning its result and the wall-clock duration.
pub fn time_it<T>(f: impl FnOnce() -> T) -> (T, Duration) {
    let start = Instant::now();
    let out = f();
    (out, start.elapsed())
}

/// Duration in milliseconds as `f64`.
pub fn ms(d: Duration) -> f64 {
    d.as_secs_f64() * 1e3
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> ExpConfig {
        ExpConfig { scale: 0.003, mesh: Some("carabiner".into()), ..Default::default() }
    }

    #[test]
    fn config_selects_single_mesh() {
        let meshes = cfg().meshes();
        assert_eq!(meshes.len(), 1);
        assert_eq!(meshes[0].spec.label, "M1");
    }

    #[test]
    fn shrink_factor_scales_inversely() {
        assert_eq!(shrink_factor(1.0), 1);
        assert_eq!(shrink_factor(2.0), 1);
        assert_eq!(shrink_factor(0.1), 10);
        assert_eq!(shrink_factor(0.02), 50);
    }

    #[test]
    fn scaled_hierarchy_keeps_level_ordering() {
        let h = scaled_westmere(0.01, NodeLayout::paper_66());
        let caps = h.capacities_in_elements();
        assert!(caps[0] < caps[1] && caps[1] < caps[2]);
    }

    #[test]
    fn first_sweep_trace_is_nonempty_and_in_range() {
        let meshes = cfg().meshes();
        let trace = first_sweep_trace(&meshes[0].mesh);
        assert!(!trace.is_empty());
        let n = meshes[0].mesh.num_vertices() as u32;
        assert!(trace.iter().all(|&v| v < n));
    }

    #[test]
    fn parallel_traces_cover_serial_trace() {
        let meshes = cfg().meshes();
        let serial = first_sweep_trace(&meshes[0].mesh);
        let chunks = parallel_sweep_traces(&meshes[0].mesh, 4);
        assert_eq!(chunks.concat(), serial);
    }

    #[test]
    fn ordered_mesh_preserves_size() {
        let meshes = cfg().meshes();
        let m = &meshes[0].mesh;
        let rm = ordered_mesh(m, OrderingKind::Rdr);
        assert_eq!(rm.num_vertices(), m.num_vertices());
        assert_eq!(rm.num_triangles(), m.num_triangles());
    }

    #[test]
    fn time_it_measures() {
        let (v, d) = time_it(|| 21 * 2);
        assert_eq!(v, 42);
        assert!(ms(d) >= 0.0);
    }
}
