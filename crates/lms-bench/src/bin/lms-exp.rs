//! `lms-exp` — regenerate the paper's tables and figures.
//!
//! ```text
//! USAGE: lms-exp <experiment|all|list> [options]
//!
//! experiments: every table and figure of the paper (table1, fig1–fig13,
//!              table2, table3, cost, cost-model) plus the extension
//!              studies (opt, apps, zoo, prefetch, mrc, growth, policy,
//!              tlb, sampled, writeback, parrdr, iter-reorder, tet,
//!              tet-quality, tet-scaling, dynamic, real-scaling) and the
//!              engine comparisons (engines, hotpath, partition,
//!              scaling) — run `lms-exp list` for the authoritative list
//!
//! options:
//!   --scale <f64>      suite scale, 1.0 = paper size      [default 0.02]
//!   --mesh <name>      restrict to one suite mesh (label or name)
//!   --iters <n>        sweep cap for traced runs          [default 50]
//!   --threads a,b,c    core counts for scaling figures    [default 1,2,4,8,16,24,32]
//!   --csv-dir <dir>    also write CSVs into <dir>
//! ```

use lms_bench::{run, run_all, ExpConfig, ALL};
use std::process::ExitCode;

fn usage() -> String {
    format!(
        "USAGE: lms-exp <experiment|all|list> [--scale f] [--mesh name] [--iters n] \
         [--threads a,b,c] [--csv-dir dir]\nexperiments: {}",
        ALL.join(" ")
    )
}

fn parse_args(args: &[String]) -> Result<(String, ExpConfig), String> {
    let mut cfg = ExpConfig::default();
    let mut cmd: Option<String> = None;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--scale" => {
                cfg.scale = it
                    .next()
                    .ok_or("--scale needs a value")?
                    .parse()
                    .map_err(|e| format!("bad --scale: {e}"))?;
                if cfg.scale <= 0.0 {
                    return Err("--scale must be positive".into());
                }
            }
            "--mesh" => cfg.mesh = Some(it.next().ok_or("--mesh needs a value")?.clone()),
            "--iters" => {
                cfg.max_iters = it
                    .next()
                    .ok_or("--iters needs a value")?
                    .parse()
                    .map_err(|e| format!("bad --iters: {e}"))?;
            }
            "--threads" => {
                cfg.threads = it
                    .next()
                    .ok_or("--threads needs a value")?
                    .split(',')
                    .map(|s| s.trim().parse::<usize>())
                    .collect::<Result<_, _>>()
                    .map_err(|e| format!("bad --threads: {e}"))?;
                if cfg.threads.is_empty() || cfg.threads.contains(&0) {
                    return Err("--threads must be positive integers".into());
                }
            }
            "--csv-dir" => {
                cfg.csv_dir = Some(it.next().ok_or("--csv-dir needs a value")?.into());
            }
            "--help" | "-h" => return Err(usage()),
            other if cmd.is_none() && !other.starts_with('-') => cmd = Some(other.to_string()),
            other => return Err(format!("unknown argument {other:?}\n{}", usage())),
        }
    }
    Ok((cmd.ok_or_else(usage)?, cfg))
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let (cmd, cfg) = match parse_args(&args) {
        Ok(v) => v,
        Err(msg) => {
            eprintln!("{msg}");
            return ExitCode::FAILURE;
        }
    };
    match cmd.as_str() {
        "list" => {
            println!("{}", ALL.join("\n"));
            ExitCode::SUCCESS
        }
        "all" => {
            println!("{}", run_all(&cfg));
            ExitCode::SUCCESS
        }
        name => match run(name, &cfg) {
            Some(report) => {
                println!("{report}");
                ExitCode::SUCCESS
            }
            None => {
                eprintln!("unknown experiment {name:?}\n{}", usage());
                ExitCode::FAILURE
            }
        },
    }
}
