//! `lms-tool` — the downstream-user CLI: generate, inspect, reorder,
//! improve and render meshes without writing any Rust.
//!
//! ```text
//! USAGE: lms-tool <command> [options]
//!
//! commands:
//!   generate <suite-name|grid> [--scale f] [--nx n --ny n --jitter f --seed n]
//!            --out <prefix>           write Triangle .node/.ele (or .off)
//!   info     <prefix|file.off>        mesh statistics
//!   order    <prefix|file.off> --ordering <name> --out <prefix>
//!   improve  <prefix|file.off> [--ordering <name>] [--tangle n] --out <prefix>
//!   render   <prefix|file.off> --out <file.svg>
//!   generate3 <cube|slab|beam|grid> [--scale f] [--nx --ny --nz --jitter --seed]
//!            --out <prefix>           write TetGen .node/.ele (3D)
//!   info3    <prefix>                 tetrahedral mesh statistics
//!   order3   <prefix> --ordering <name> --out <prefix>
//!   render3  <prefix> --out <file.svg>   render the boundary surface
//!   trace-smoke <out.json> [--nx --ny --jitter --seed]
//!            profiled resident run, export + validate a chrome trace
//!   trace-validate <file.json>           check well-formedness + B/E balance
//!   bench-smoke [baseline.json] [--nx n --iters n]
//!            CI perf gate: measure the resident sweep kernel's
//!            batched-vs-scalar speedup and the distributed
//!            coordinator's serialized-vs-overlap idle poll-wait ratio
//!            (both ratio-based, so host speed cancels) and fail if
//!            either regresses >25% below the checked-in baseline
//!            (default ci/bench_baseline.json)
//!   dist-worker --connect <tcp:host:port|unix:/path> --rank <r>
//!            [--nx --ny --jitter --seed --parts k --method m --plain
//!             --iters n --tol f]
//!            serve one standalone smoothing rank: rebuild the engine
//!            from the shared workload parameters (MPI input-deck
//!            style), dial the coordinator with supervised retry/backoff
//!            and serve wire frames until Shutdown — the multi-node
//!            deployment shape of `lms-dist`'s socket transport
//!
//! mesh files: a `prefix` reads/writes Triangle `<prefix>.node` +
//! `<prefix>.ele`; a path ending in `.off` reads/writes OFF.
//! orderings (2D): ori random bfs bfsrev dfs rcm sloan hilbert morton rcb
//! spectral qsort degsort rdr
//! orderings (3D): ori random bfs bfsrev dfs rcm hilbert morton rdr
//! ```

use lms_apps::{tangle_vertices, Pipeline};
use lms_mesh::quality::{mesh_quality, vertex_qualities, QualityMetric};
use lms_mesh::{generators, io, suite, Adjacency, Boundary, TriMesh};
use lms_mesh3d::generators as gen3;
use lms_mesh3d::order::{
    apply_permutation3, compute_ordering3, mean_neighbor_span3, OrderingKind3,
};
use lms_mesh3d::{io as io3, Adjacency3, Boundary3, TetMesh, TetQualityMetric};
use lms_order::{compute_ordering, layout_stats, OrderingKind};
use lms_viz::{render_mesh, render_tet_surface, Mesh3Style, MeshStyle};
use std::path::Path;
use std::process::ExitCode;

struct Opts {
    positional: Vec<String>,
    scale: f64,
    nx: usize,
    ny: usize,
    jitter: f64,
    seed: u64,
    ordering: OrderingKind,
    ordering3: OrderingKind3,
    nz: usize,
    tangle: Option<usize>,
    out: Option<String>,
    connect: Option<String>,
    rank: Option<u32>,
    parts: usize,
    method: lms_part::PartitionMethod,
    plain: bool,
    iters: usize,
    tol: f64,
}

fn parse(args: &[String]) -> Result<Opts, String> {
    let mut o = Opts {
        positional: Vec::new(),
        scale: 0.02,
        nx: 50,
        ny: 50,
        jitter: 0.35,
        seed: 1,
        ordering: OrderingKind::Rdr,
        ordering3: OrderingKind3::Rdr,
        nz: 12,
        tangle: None,
        out: None,
        connect: None,
        rank: None,
        parts: 4,
        method: lms_part::PartitionMethod::Rcb,
        plain: false,
        iters: 4,
        tol: -1.0,
    };
    let mut it = args.iter();
    while let Some(a) = it.next() {
        let mut val = |name: &str| -> Result<&String, String> {
            it.next().ok_or_else(|| format!("{name} needs a value"))
        };
        match a.as_str() {
            "--scale" => {
                o.scale = val("--scale")?.parse().map_err(|e| format!("bad --scale: {e}"))?
            }
            "--nx" => o.nx = val("--nx")?.parse().map_err(|e| format!("bad --nx: {e}"))?,
            "--ny" => o.ny = val("--ny")?.parse().map_err(|e| format!("bad --ny: {e}"))?,
            "--jitter" => {
                o.jitter = val("--jitter")?.parse().map_err(|e| format!("bad --jitter: {e}"))?
            }
            "--seed" => o.seed = val("--seed")?.parse().map_err(|e| format!("bad --seed: {e}"))?,
            "--tangle" => {
                o.tangle = Some(val("--tangle")?.parse().map_err(|e| format!("bad --tangle: {e}"))?)
            }
            "--nz" => o.nz = val("--nz")?.parse().map_err(|e| format!("bad --nz: {e}"))?,
            "--ordering" => {
                let name = val("--ordering")?;
                o.ordering = OrderingKind::parse(name)
                    .ok_or_else(|| format!("unknown ordering {name:?}"))?;
                if let Some(k3) = OrderingKind3::parse(name) {
                    o.ordering3 = k3;
                }
            }
            "--out" => o.out = Some(val("--out")?.clone()),
            "--connect" => o.connect = Some(val("--connect")?.clone()),
            "--rank" => {
                o.rank = Some(val("--rank")?.parse().map_err(|e| format!("bad --rank: {e}"))?)
            }
            "--parts" => {
                o.parts = val("--parts")?.parse().map_err(|e| format!("bad --parts: {e}"))?
            }
            "--method" => {
                let name = val("--method")?;
                o.method = lms_part::PartitionMethod::parse(name)
                    .ok_or_else(|| format!("unknown partition method {name:?}"))?;
            }
            "--plain" => o.plain = true,
            "--iters" => {
                o.iters = val("--iters")?.parse().map_err(|e| format!("bad --iters: {e}"))?
            }
            "--tol" => o.tol = val("--tol")?.parse().map_err(|e| format!("bad --tol: {e}"))?,
            other if !other.starts_with('-') => o.positional.push(other.to_string()),
            other => return Err(format!("unknown option {other:?}")),
        }
    }
    Ok(o)
}

fn load(path: &str) -> Result<TriMesh, String> {
    if path.ends_with(".off") {
        let file = std::fs::File::open(path).map_err(|e| format!("{path}: {e}"))?;
        io::read_off(file).map_err(|e| format!("{path}: {e}"))
    } else {
        io::load_triangle(path).map_err(|e| format!("{path}: {e}"))
    }
}

fn save(mesh: &TriMesh, path: &str) -> Result<(), String> {
    if path.ends_with(".off") {
        let file = std::fs::File::create(path).map_err(|e| format!("{path}: {e}"))?;
        io::write_off(mesh, file).map_err(|e| format!("{path}: {e}"))
    } else {
        io::save_triangle(mesh, path).map_err(|e| format!("{path}: {e}"))
    }
}

fn cmd_generate(o: &Opts) -> Result<String, String> {
    let which = o.positional.first().ok_or("generate needs a mesh name or `grid`")?;
    let mesh = if which == "grid" {
        generators::perturbed_grid(o.nx, o.ny, o.jitter, o.seed)
    } else {
        let spec = suite::find_spec(which).ok_or_else(|| {
            format!(
                "unknown suite mesh {which:?}; names: {}",
                suite::SUITE.iter().map(|s| s.name).collect::<Vec<_>>().join(" ")
            )
        })?;
        suite::generate(spec, o.scale)
    };
    let out = o.out.as_deref().ok_or("generate needs --out")?;
    save(&mesh, out)?;
    Ok(format!(
        "wrote {} ({} vertices, {} triangles)",
        out,
        mesh.num_vertices(),
        mesh.num_triangles()
    ))
}

fn cmd_info(o: &Opts) -> Result<String, String> {
    let path = o.positional.first().ok_or("info needs a mesh path")?;
    let mesh = load(path)?;
    let adj = Adjacency::build(&mesh);
    let boundary = Boundary::detect(&mesh);
    let metric = QualityMetric::EdgeLengthRatio;
    let vq = vertex_qualities(&mesh, &adj, metric);
    let worst = vq.iter().copied().fold(f64::INFINITY, f64::min);
    let stats = layout_stats(&mesh, &adj);
    let mut out = String::new();
    out.push_str(&format!("mesh:        {path}\n"));
    out.push_str(&format!("vertices:    {}\n", mesh.num_vertices()));
    out.push_str(&format!("triangles:   {}\n", mesh.num_triangles()));
    out.push_str(&format!(
        "boundary:    {} vertices ({} interior)\n",
        boundary.num_boundary(),
        boundary.num_interior()
    ));
    out.push_str(&format!("euler:       {}\n", mesh.euler_characteristic()));
    out.push_str(&format!(
        "degree:      mean {:.2}, max {}\n",
        adj.mean_degree(),
        adj.max_degree()
    ));
    out.push_str(&format!(
        "quality:     mean {:.4}, worst vertex {:.4} ({})\n",
        mesh_quality(&mesh, &adj, metric),
        worst,
        metric.name()
    ));
    out.push_str(&format!(
        "layout:      mean neighbour span {:.1}, bandwidth {}\n",
        stats.mean_span, stats.bandwidth
    ));
    Ok(out)
}

fn cmd_order(o: &Opts) -> Result<String, String> {
    let path = o.positional.first().ok_or("order needs a mesh path")?;
    let out = o.out.as_deref().ok_or("order needs --out")?;
    let mesh = load(path)?;
    let adj = Adjacency::build(&mesh);
    let before = layout_stats(&mesh, &adj).mean_span;
    let perm = compute_ordering(&mesh, o.ordering);
    let mesh = perm.apply_to_mesh(&mesh);
    let adj = Adjacency::build(&mesh);
    let after = layout_stats(&mesh, &adj).mean_span;
    save(&mesh, out)?;
    Ok(format!(
        "applied {}: mean neighbour span {before:.1} -> {after:.1}; wrote {out}",
        o.ordering.name()
    ))
}

fn cmd_improve(o: &Opts) -> Result<String, String> {
    let path = o.positional.first().ok_or("improve needs a mesh path")?;
    let out = o.out.as_deref().ok_or("improve needs --out")?;
    let mut mesh = load(path)?;
    mesh.orient_ccw();
    if let Some(stride) = o.tangle {
        let displaced = tangle_vertices(&mut mesh, stride);
        eprintln!("tangled {displaced} vertices (--tangle {stride})");
    }
    let report = Pipeline::standard(o.ordering).run(&mut mesh);
    save(&mesh, out)?;
    let mut msg = String::new();
    for s in &report.stages {
        msg.push_str(&format!(
            "{:<10} {:.4} -> {:.4} (work {})\n",
            s.stage, s.quality_before, s.quality_after, s.work
        ));
    }
    msg.push_str(&format!(
        "quality {:.4} -> {:.4}; wrote {out}",
        report.initial_quality, report.final_quality
    ));
    Ok(msg)
}

fn cmd_render(o: &Opts) -> Result<String, String> {
    let path = o.positional.first().ok_or("render needs a mesh path")?;
    let out = o.out.as_deref().ok_or("render needs --out (an .svg path)")?;
    let mesh = load(path)?;
    render_mesh(&mesh, &MeshStyle::default())
        .write_to(Path::new(out))
        .map_err(|e| format!("{out}: {e}"))?;
    Ok(format!("rendered {} triangles to {out}", mesh.num_triangles()))
}

fn load3(prefix: &str) -> Result<TetMesh, String> {
    io3::load_tetgen(prefix).map_err(|e| format!("{prefix}: {e}"))
}

fn cmd_generate3(o: &Opts) -> Result<String, String> {
    let which = o.positional.first().ok_or("generate3 needs a mesh name or `grid`")?;
    let mesh = if which == "grid" {
        gen3::block_scramble(
            gen3::perturbed_tet_grid(o.nx, o.ny, o.nz, o.jitter, o.seed),
            gen3::ORI3_SCRAMBLE_BLOCK,
            o.seed,
        )
    } else {
        let spec = gen3::SUITE3
            .iter()
            .find(|s| s.name.eq_ignore_ascii_case(which) || s.label.eq_ignore_ascii_case(which))
            .ok_or_else(|| {
                format!(
                    "unknown 3D suite mesh {which:?}; names: {}",
                    gen3::SUITE3.iter().map(|s| s.name).collect::<Vec<_>>().join(" ")
                )
            })?;
        gen3::generate3(spec, o.scale * 50.0)
    };
    let out = o.out.as_deref().ok_or("generate3 needs --out")?;
    io3::save_tetgen(&mesh, out).map_err(|e| format!("{out}: {e}"))?;
    Ok(format!("wrote {} ({} vertices, {} tets)", out, mesh.num_vertices(), mesh.num_tets()))
}

fn cmd_info3(o: &Opts) -> Result<String, String> {
    let path = o.positional.first().ok_or("info3 needs a mesh prefix")?;
    let mesh = load3(path)?;
    let adj = Adjacency3::build(&mesh);
    let boundary = Boundary3::detect(&mesh);
    let metric = TetQualityMetric::EdgeLengthRatio;
    let q = lms_mesh3d::quality::mesh_quality(&mesh, &adj, metric);
    let mut out = String::new();
    out.push_str(&format!("mesh:        {path} (tetrahedral)\n"));
    out.push_str(&format!("vertices:    {}\n", mesh.num_vertices()));
    out.push_str(&format!("tets:        {}\n", mesh.num_tets()));
    out.push_str(&format!(
        "boundary:    {} vertices ({} interior), {} surface faces\n",
        boundary.num_boundary(),
        boundary.num_interior(),
        boundary.num_boundary_faces()
    ));
    out.push_str(&format!(
        "degree:      mean {:.2}, max {}\n",
        adj.mean_degree(),
        adj.max_degree()
    ));
    out.push_str(&format!("quality:     mean {:.4} ({})\n", q, metric.name()));
    out.push_str(&format!("layout:      mean neighbour span {:.1}\n", mean_neighbor_span3(&adj)));
    Ok(out)
}

fn cmd_order3(o: &Opts) -> Result<String, String> {
    let path = o.positional.first().ok_or("order3 needs a mesh prefix")?;
    let out = o.out.as_deref().ok_or("order3 needs --out")?;
    let mesh = load3(path)?;
    let before = mean_neighbor_span3(&Adjacency3::build(&mesh));
    let perm = compute_ordering3(&mesh, o.ordering3);
    let mesh = apply_permutation3(&perm, &mesh);
    let after = mean_neighbor_span3(&Adjacency3::build(&mesh));
    io3::save_tetgen(&mesh, out).map_err(|e| format!("{out}: {e}"))?;
    Ok(format!(
        "applied {}: mean neighbour span {before:.1} -> {after:.1}; wrote {out}",
        o.ordering3.name()
    ))
}

fn cmd_render3(o: &Opts) -> Result<String, String> {
    let path = o.positional.first().ok_or("render3 needs a mesh prefix")?;
    let out = o.out.as_deref().ok_or("render3 needs --out (an .svg path)")?;
    let mesh = load3(path)?;
    render_tet_surface(&mesh, &Mesh3Style::default())
        .write_to(Path::new(out))
        .map_err(|e| format!("{out}: {e}"))?;
    let b = Boundary3::detect(&mesh);
    Ok(format!("rendered {} surface faces to {out}", b.num_boundary_faces()))
}

fn cmd_trace_smoke(o: &Opts) -> Result<String, String> {
    let out = o
        .out
        .as_deref()
        .or_else(|| o.positional.first().map(|s| s.as_str()))
        .ok_or("trace-smoke needs an output path (positional or --out)")?;
    let mesh = generators::perturbed_grid(o.nx.max(8), o.ny.max(8), o.jitter, o.seed);
    let params =
        lms_smooth::SmoothParams::paper().with_smart(true).with_max_iters(4).with_tol(-1.0);
    let engine =
        lms_smooth::ResidentEngine::by_method(&mesh, params, 4, lms_part::PartitionMethod::Rcb);
    let mut work = mesh;
    let (report, recorder) = engine.smooth_profiled(&mut work, 2);
    let json = lms_trace::chrome_trace_json(recorder.events());
    let events = lms_trace::validate_chrome_trace(&json)
        .map_err(|e| format!("freshly exported trace failed validation (bug): {e}"))?;
    std::fs::write(out, &json).map_err(|e| format!("{out}: {e}"))?;
    let breakdown = report.phase_breakdown.ok_or("profiled run attached no phase breakdown")?;
    Ok(format!(
        "wrote {out}: {events} span events, balanced; {} iterations smoothed\n{}",
        report.iterations.len(),
        breakdown.summary_table()
    ))
}

/// Serve one standalone smoothing rank over a stream socket. The worker
/// rebuilds the whole engine — mesh, decomposition, blocks, schedule —
/// from the same generation parameters the coordinator used (MPI
/// input-deck style), so only run state (coordinates, scores, halo
/// deltas) ever crosses the wire, and the coordinator's cross-transport
/// oracle still holds bit for bit.
fn cmd_dist_worker(o: &Opts) -> Result<String, String> {
    let addr =
        o.connect.as_deref().ok_or("dist-worker needs --connect <tcp:host:port|unix:/path>")?;
    let spec = lms_dist::SocketSpec::parse(addr)?;
    let rank = o.rank.ok_or("dist-worker needs --rank <r>")?;
    if rank as usize >= o.parts {
        return Err(format!("--rank {rank} out of range for --parts {}", o.parts));
    }
    let mesh = generators::perturbed_grid(o.nx, o.ny, o.jitter, o.seed);
    let params = lms_smooth::SmoothParams::paper()
        .with_smart(!o.plain)
        .with_max_iters(o.iters)
        .with_tol(o.tol);
    let engine = lms_smooth::ResidentEngine::by_method(&mesh, params, o.parts, o.method);
    lms_dist::serve_standalone_tri(&engine, rank, &spec, &lms_dist::Supervisor::default())
        .map_err(|e| format!("rank {rank} serving {spec}: {e}"))?;
    Ok(format!("rank {rank}/{} served {spec} to clean shutdown", o.parts))
}

/// Pull `"<key>": <x>` out of a baseline JSON by string search — the
/// whole file is repo-controlled, so a real parser (and a serde
/// dependency) would be overkill for a couple of numeric fields.
fn read_baseline_key(path: &str, name: &str) -> Result<f64, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
    let key = format!("\"{name}\"");
    let at = text.find(&key).ok_or_else(|| format!("{path}: missing {key}"))?;
    let rest = text[at + key.len()..]
        .trim_start()
        .strip_prefix(':')
        .ok_or_else(|| format!("{path}: malformed {key} (expected a colon)"))?;
    let end = rest.find(&[',', '\n', '}'][..]).unwrap_or(rest.len());
    rest[..end].trim().parse().map_err(|e| format!("{path}: bad {key} value: {e}"))
}

fn read_baseline_speedup(path: &str) -> Result<f64, String> {
    read_baseline_key(path, "batched_speedup_vs_scalar")
}

/// The PR-10 half of the CI perf gate: the overlap multiplexer's
/// *idle* poll-wait on a small profiled distributed run must stay well
/// below the serialized drain loop's total poll-wait — the ratio is
/// self-normalizing (same host, same workload, back to back), so
/// runner speed cancels exactly as in the batched/scalar gate. Returns
/// `Ok(None)` when rank processes cannot be spawned at all (sandboxed
/// runners without fork): a backend that cannot run has no perf to
/// regress, and correctness degradation is gated elsewhere.
fn overlap_poll_gate(
    mesh: &TriMesh,
    parts: usize,
    sweeps: usize,
    baseline_path: &str,
) -> Result<Option<String>, String> {
    let baseline = read_baseline_key(baseline_path, "overlap_poll_wait_ratio")?;
    let params =
        lms_smooth::SmoothParams::paper().with_smart(true).with_max_iters(sweeps).with_tol(-1.0);
    let engine = lms_dist::DistResidentEngine::by_method(
        mesh,
        params,
        parts,
        lms_part::PartitionMethod::Rcb,
    );
    let one = |overlap: bool| -> Result<Option<u64>, String> {
        let mut work = mesh.clone();
        let opts = lms_dist::FtOptions { overlap, ..lms_dist::FtOptions::default() };
        match engine.smooth_profiled(&mut work, &opts) {
            Ok((report, _, _)) => {
                let bd = report
                    .phase_breakdown
                    .ok_or("profiled distributed run attached no phase breakdown")?;
                Ok(Some(bd.transport.poll_wait_ns.max(1)))
            }
            Err(lms_dist::DistError::Spawn(_) | lms_dist::DistError::ConnRefused { .. }) => {
                Ok(None)
            }
            Err(e) => Err(format!("profiled distributed run: {e}")),
        }
    };
    // best of 3 paired reps: background load on a shared runner inflates
    // the multiplexed run's idle wait (it cannot hide behind compute
    // that was descheduled), biasing the ratio down — max is the
    // noise-robust side for a regression gate with 25% slack
    let mut best = 0.0f64;
    for _ in 0..3 {
        let (Some(on), Some(off)) = (one(true)?, one(false)?) else {
            return Ok(None);
        };
        best = best.max(off as f64 / on as f64);
    }
    let floor = baseline / 1.25;
    let verdict = format!(
        "overlap poll-wait: serialized/multiplexed idle-wait ratio {best:.2} \
         (baseline {baseline:.2}, floor {floor:.2})"
    );
    if best < floor {
        return Err(format!(
            "{verdict}\nREGRESSION: the overlap multiplexer stopped hiding poll wait \
             relative to the checked-in baseline ({baseline_path})"
        ));
    }
    Ok(Some(verdict))
}

/// CI bench-regression smoke: the SoA lane-batched sweep kernel vs the
/// forced scalar path on one decomposition. The scalar run doubles as a
/// host-speed normalizer — the *ratio* is compared against the baseline,
/// so slow CI runners don't trip the gate; only a genuine regression of
/// the batched kernel relative to its own scalar reference does. The
/// bit-identity gate runs first: perf is meaningless if the kernels
/// diverge.
fn cmd_bench_smoke(o: &Opts) -> Result<String, String> {
    let baseline_path =
        o.positional.first().map(|s| s.as_str()).unwrap_or("ci/bench_baseline.json");
    let baseline = read_baseline_speedup(baseline_path)?;
    let side = o.nx.max(120);
    let sweeps = o.iters.max(6);
    let mesh = generators::perturbed_grid(side, side, o.jitter, o.seed);
    let params =
        lms_smooth::SmoothParams::paper().with_smart(true).with_max_iters(sweeps).with_tol(-1.0);
    let batched = lms_smooth::ResidentEngine::by_method(
        &mesh,
        params.clone(),
        o.parts,
        lms_part::PartitionMethod::Rcb,
    );
    let scalar = lms_smooth::ResidentEngine::by_method(
        &mesh,
        params.with_scalar_scoring(true),
        o.parts,
        lms_part::PartitionMethod::Rcb,
    );

    let mut a = mesh.clone();
    batched.smooth(&mut a, 1);
    let mut b = mesh.clone();
    scalar.smooth(&mut b, 1);
    if a.coords() != b.coords() {
        return Err("bench-smoke: batched scoring diverged from the scalar path \
                    (bit-identity gate failed — fix correctness before timing)"
            .into());
    }

    // min over interleaved reps: the workload is deterministic, so
    // background load only ever adds time — and alternating the two
    // engines inside one rep loop keeps slow host phases (CPU frequency
    // drift, noisy neighbours on a shared 1-core runner) from landing
    // entirely on one side of the ratio
    let one = |engine: &lms_smooth::ResidentEngine| -> Result<(u64, u64), String> {
        let mut work = mesh.clone();
        let (report, _) = engine.smooth_profiled(&mut work, 1);
        let bd = report.phase_breakdown.ok_or("profiled run attached no phase breakdown")?;
        let ns = bd.per_part_sweep_ns().iter().sum();
        let moved = bd.transport.rank_phases.iter().map(|r| r.moved).sum::<u64>().max(1);
        Ok((ns, moved))
    };
    // Host noise on a shared 1-core runner comes in two flavours, and
    // each breaks a different estimator: slow multiplicative drift makes
    // independently-taken per-side minima land in different speed
    // windows (skewing the min-ratio), while short additive spikes
    // inflate both runs of a back-to-back pair equally (compressing the
    // per-pair ratio toward 1). Both estimators are downward-biased
    // under their own failure mode and sound under the other's, so the
    // max of the two is the stable choice for a regression gate that
    // already carries 25% slack.
    let mut batched_ns = u64::MAX;
    let mut scalar_ns = u64::MAX;
    let mut moved = 1;
    let mut ratios = Vec::new();
    for _ in 0..8 {
        let (b_ns, m) = one(&batched)?;
        batched_ns = batched_ns.min(b_ns);
        moved = m;
        let (s_ns, _) = one(&scalar)?;
        scalar_ns = scalar_ns.min(s_ns);
        ratios.push(s_ns as f64 / b_ns as f64);
    }
    ratios.sort_by(|a, b| a.total_cmp(b));
    let batched_per = batched_ns as f64 / moved as f64;
    let scalar_per = scalar_ns as f64 / moved as f64;
    let median = (ratios[ratios.len() / 2 - 1] + ratios[ratios.len() / 2]) / 2.0;
    let speedup = (scalar_per / batched_per).max(median);
    let floor = baseline / 1.25;
    let verdict = format!(
        "bench-smoke: {side}x{side} grid, {sweeps} sweeps, {}-way rcb, 1 thread\n\
         ns/moved-vertex — batched {batched_per:.0}, scalar {scalar_per:.0}\n\
         batched speedup vs scalar (max of min-ratio and pair-median): {speedup:.3} \
         (baseline {baseline:.3}, floor {floor:.3})",
        o.parts
    );
    if speedup < floor {
        return Err(format!(
            "{verdict}\nREGRESSION: batched kernel speedup fell more than 25% below \
             the checked-in baseline ({baseline_path})"
        ));
    }
    let overlap_line = match overlap_poll_gate(&mesh, o.parts, sweeps, baseline_path)? {
        Some(line) => line,
        None => "overlap poll-wait: skipped (rank processes cannot be spawned here)".to_string(),
    };
    Ok(format!("{verdict}\n{overlap_line}"))
}

fn cmd_trace_validate(o: &Opts) -> Result<String, String> {
    let path = o.positional.first().ok_or("trace-validate needs a trace file path")?;
    let json = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
    let events = lms_trace::validate_chrome_trace(&json).map_err(|e| format!("{path}: {e}"))?;
    Ok(format!("{path}: valid chrome trace, {events} events, all B/E spans balanced"))
}

fn usage() -> &'static str {
    "USAGE: lms-tool <generate|info|order|improve|render|generate3|info3|order3|render3\
     |trace-smoke|trace-validate|bench-smoke|dist-worker> [options]\n\
     run with a command and no arguments for its specific requirements;\n\
     see the crate docs for the full synopsis"
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some((cmd, rest)) = args.split_first() else {
        eprintln!("{}", usage());
        return ExitCode::FAILURE;
    };
    let opts = match parse(rest) {
        Ok(o) => o,
        Err(e) => {
            eprintln!("{e}");
            return ExitCode::FAILURE;
        }
    };
    let result = match cmd.as_str() {
        "generate" => cmd_generate(&opts),
        "info" => cmd_info(&opts),
        "order" => cmd_order(&opts),
        "improve" => cmd_improve(&opts),
        "render" => cmd_render(&opts),
        "generate3" => cmd_generate3(&opts),
        "info3" => cmd_info3(&opts),
        "order3" => cmd_order3(&opts),
        "render3" => cmd_render3(&opts),
        "trace-smoke" => cmd_trace_smoke(&opts),
        "trace-validate" => cmd_trace_validate(&opts),
        "bench-smoke" => cmd_bench_smoke(&opts),
        "dist-worker" => cmd_dist_worker(&opts),
        other => Err(format!("unknown command {other:?}\n{}", usage())),
    };
    match result {
        Ok(msg) => {
            println!("{msg}");
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("{e}");
            ExitCode::FAILURE
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(list: &[&str]) -> Vec<String> {
        list.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn parse_accepts_known_flags() {
        let o = parse(&args(&[
            "grid",
            "--nx",
            "10",
            "--ny",
            "12",
            "--jitter",
            "0.2",
            "--seed",
            "9",
            "--ordering",
            "sloan",
            "--out",
            "x",
        ]))
        .unwrap();
        assert_eq!(o.positional, vec!["grid"]);
        assert_eq!((o.nx, o.ny, o.seed), (10, 12, 9));
        assert_eq!(o.ordering, OrderingKind::Sloan);
        assert_eq!(o.out.as_deref(), Some("x"));
    }

    #[test]
    fn parse_accepts_3d_flags() {
        let o = parse(&args(&["cube", "--nz", "7", "--ordering", "rdr", "--out", "y"])).unwrap();
        assert_eq!(o.nz, 7);
        assert_eq!(o.ordering3, OrderingKind3::Rdr);
        // a 3D-only name leaves the 2D ordering untouched but is accepted
        assert!(parse(&args(&["cube", "--ordering", "bfs"])).is_ok());
    }

    #[test]
    fn generate3_and_order3_roundtrip() {
        let dir = std::env::temp_dir().join(format!("lms_tool3_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let out = dir.join("box");
        let o = Opts {
            positional: vec!["grid".into()],
            scale: 0.02,
            nx: 5,
            ny: 5,
            nz: 5,
            jitter: 0.3,
            seed: 1,
            ordering: OrderingKind::Rdr,
            ordering3: OrderingKind3::Rdr,
            tangle: None,
            out: Some(out.to_string_lossy().into_owned()),
            ..parse(&[]).unwrap()
        };
        let msg = cmd_generate3(&o).unwrap();
        assert!(msg.contains("vertices"));
        let info = cmd_info3(&Opts {
            positional: vec![out.to_string_lossy().into_owned()],
            out: None,
            ..o
        })
        .unwrap();
        assert!(info.contains("tetrahedral"));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn parse_rejects_unknown() {
        assert!(parse(&args(&["--bogus"])).is_err());
        assert!(parse(&args(&["--scale"])).is_err());
        assert!(parse(&args(&["--ordering", "nope"])).is_err());
    }

    #[test]
    fn generate_info_order_improve_render_roundtrip() {
        let dir = std::env::temp_dir().join(format!("lms_tool_test_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let prefix = dir.join("m").to_string_lossy().to_string();

        // generate a small grid
        let o = parse(&args(&[
            "grid", "--nx", "14", "--ny", "14", "--jitter", "0.3", "--out", &prefix,
        ]))
        .unwrap();
        cmd_generate(&o).unwrap();
        assert!(Path::new(&format!("{prefix}.node")).exists());

        // info
        let o = parse(&args(&[&prefix])).unwrap();
        let info = cmd_info(&o).unwrap();
        assert!(info.contains("vertices:    196"));

        // order
        let ordered = dir.join("o").to_string_lossy().to_string();
        let o = parse(&args(&[&prefix, "--ordering", "rdr", "--out", &ordered])).unwrap();
        cmd_order(&o).unwrap();

        // improve (with tangling)
        let improved = dir.join("i").to_string_lossy().to_string();
        let o = parse(&args(&[&ordered, "--tangle", "20", "--out", &improved])).unwrap();
        let msg = cmd_improve(&o).unwrap();
        assert!(msg.contains("untangle"));

        // render
        let svg = dir.join("m.svg").to_string_lossy().to_string();
        let o = parse(&args(&[&improved, "--out", &svg])).unwrap();
        cmd_render(&o).unwrap();
        assert!(std::fs::read_to_string(&svg).unwrap().contains("<svg"));

        // OFF roundtrip
        let off = dir.join("m.off").to_string_lossy().to_string();
        let o = parse(&args(&["crake", "--scale", "0.002", "--out", &off])).unwrap();
        cmd_generate(&o).unwrap();
        let o = parse(&args(&[&off])).unwrap();
        assert!(cmd_info(&o).unwrap().contains("triangles"));

        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn trace_smoke_writes_a_valid_chrome_trace() {
        let dir = std::env::temp_dir().join(format!("lms_trace_smoke_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let out = dir.join("trace.json").to_string_lossy().to_string();
        let o = parse(&args(&[&out, "--nx", "10", "--ny", "10"])).unwrap();
        let msg = cmd_trace_smoke(&o).unwrap();
        assert!(msg.contains("span events, balanced"), "{msg}");
        assert!(msg.contains("interior"), "summary table missing: {msg}");
        let o = parse(&args(&[&out])).unwrap();
        let msg = cmd_trace_validate(&o).unwrap();
        assert!(msg.contains("valid chrome trace"), "{msg}");
        // a corrupted file must fail validation
        std::fs::write(&out, "{not json").unwrap();
        assert!(cmd_trace_validate(&o).is_err());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn bench_smoke_gates_against_the_baseline() {
        let dir = std::env::temp_dir().join(format!("lms_bench_smoke_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let baseline = dir.join("baseline.json").to_string_lossy().to_string();

        // tiny baselines: any real measurement clears both floors
        std::fs::write(
            &baseline,
            "{\n  \"batched_speedup_vs_scalar\": 0.01,\n  \"overlap_poll_wait_ratio\": 0.01\n}\n",
        )
        .unwrap();
        assert_eq!(read_baseline_speedup(&baseline).unwrap(), 0.01);
        assert_eq!(read_baseline_key(&baseline, "overlap_poll_wait_ratio").unwrap(), 0.01);
        let o = parse(&args(&[&baseline, "--nx", "120", "--iters", "6"])).unwrap();
        let msg = cmd_bench_smoke(&o).unwrap();
        assert!(msg.contains("batched speedup vs scalar"), "{msg}");
        assert!(msg.contains("ns/moved-vertex"), "{msg}");
        assert!(msg.contains("overlap poll-wait"), "{msg}");

        // an absurdly high baseline must trip the regression gate
        std::fs::write(
            &baseline,
            "{\"batched_speedup_vs_scalar\": 1000.0, \"overlap_poll_wait_ratio\": 0.01}",
        )
        .unwrap();
        let err = cmd_bench_smoke(&o).unwrap_err();
        assert!(err.contains("REGRESSION"), "{err}");

        // ...and so must a collapsed overlap poll-wait ratio (unless the
        // runner cannot spawn rank processes, in which case the gate
        // reports the skip instead)
        std::fs::write(
            &baseline,
            "{\"batched_speedup_vs_scalar\": 0.01, \"overlap_poll_wait_ratio\": 1000.0}",
        )
        .unwrap();
        match cmd_bench_smoke(&o) {
            Err(err) => assert!(err.contains("REGRESSION") && err.contains("overlap"), "{err}"),
            Ok(msg) => assert!(msg.contains("skipped"), "{msg}"),
        }

        // malformed / missing baselines are hard errors, not silent passes
        std::fs::write(&baseline, "{\"something_else\": 1.0}").unwrap();
        assert!(read_baseline_speedup(&baseline).is_err());
        assert!(read_baseline_speedup("/nonexistent/baseline.json").is_err());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn missing_files_report_errors() {
        let o = parse(&args(&["/nonexistent/mesh"])).unwrap();
        assert!(cmd_info(&o).is_err());
        let o = parse(&args(&["/nonexistent/mesh.off"])).unwrap();
        assert!(cmd_info(&o).is_err());
    }
}
