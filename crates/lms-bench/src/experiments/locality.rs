//! Locality-substrate extension experiments: TLB behaviour, sampled
//! reuse-distance monitoring, write-back traffic, and parallel RDR
//! construction.

use crate::common::{first_sweep_trace, full_trace, ordered_mesh, time_it, ExpConfig};
use crate::table::{f, pct, Table};
use lms_cache::reuse::ReuseStats;
use lms_cache::sampled::sampled_distances;
use lms_cache::tlb::{Tlb, TlbConfig};
use lms_cache::traffic::{sweep_rw_trace, WritebackCache};
use lms_cache::{CacheConfig, ReuseDistanceAnalyzer};
use lms_order::{layout_stats_permuted, par_rdr_ordering, OrderingKind, ParRdrOptions};
use lms_smooth::SmoothParams;
use std::fmt::Write as _;

/// `tlb` — data-TLB behaviour of the first smoothing sweep per ordering.
///
/// The reorderings shrink the *page* working set as well as the line
/// working set; the walk rate drops ORI → BFS → RDR just like the cache
/// miss rates of Figure 9.
pub fn tlb(cfg: &ExpConfig) -> String {
    // Scale the TLB reach with the mesh scale (same rule as the cache
    // hierarchy): at paper scale the real 64/512-entry Westmere DTLB; at
    // reduced scale the entry counts shrink so the page-working-set-to-TLB
    // ratio — and therefore the walk-rate *shape* — matches the paper's.
    let shrink = crate::common::shrink_factor(cfg.scale);
    let tlb_config = TlbConfig {
        l1_entries: (64 / shrink).max(4),
        l2_entries: (512 / shrink).max(8),
        ..TlbConfig::westmere_ex()
    };
    let mut table = Table::new(
        format!(
            "TLB — walk rate of one sweep ({}-entry L1 / {}-entry L2 DTLB), scale {}",
            tlb_config.l1_entries, tlb_config.l2_entries, cfg.scale
        ),
        &[
            "mesh",
            "ORI walks",
            "BFS walks",
            "RDR walks",
            "ORI walk rate",
            "RDR walk rate",
            "RDR cycles saved vs ORI",
        ],
    );
    for named in cfg.meshes() {
        let mut walks = Vec::new();
        let mut rates = Vec::new();
        let mut cycles = Vec::new();
        for kind in OrderingKind::PAPER_TRIO {
            let m = ordered_mesh(&named.mesh, kind);
            let trace = first_sweep_trace(&m);
            let mut tlb = Tlb::new(tlb_config);
            let cost = tlb.run_trace(&trace, &cfg.layout);
            walks.push(tlb.stats().walks);
            rates.push(tlb.stats().walk_rate());
            cycles.push(cost);
        }
        table.row(vec![
            named.spec.name.to_string(),
            walks[0].to_string(),
            walks[1].to_string(),
            walks[2].to_string(),
            pct(rates[0]),
            pct(rates[2]),
            format!("{}", cycles[0].saturating_sub(cycles[2])),
        ]);
    }
    if let Some(dir) = &cfg.csv_dir {
        let _ = table.write_csv(dir, "tlb");
    }
    let mut out = table.render();
    out.push_str("\nexpected: walk counts drop ORI -> BFS -> RDR (same mechanism as Figure 9, page granularity).\n");
    out
}

/// `sampled` — SHARDS-style sampled reuse-distance monitoring vs the exact
/// analysis: accuracy and analysis-time trade-off on one full LMS trace.
pub fn sampled(cfg: &ExpConfig) -> String {
    let named = &cfg.meshes()[0];
    let sink = full_trace(&named.mesh, cfg.max_iters.min(4));
    let n = named.mesh.num_vertices();

    let (exact, t_exact) = time_it(|| ReuseDistanceAnalyzer::analyze(&sink.accesses, n));
    let exact_mean = ReuseStats::from_distances(&exact).mean;

    let mut table = Table::new(
        format!(
            "Sampled reuse distance (SHARDS) — {} ({} accesses), exact mean {:.1}",
            named.spec.name,
            sink.accesses.len(),
            exact_mean
        ),
        &["rate", "monitored", "mean estimate", "rel err", "analysis ms", "speedup"],
    );
    table.row(vec![
        "1".into(),
        pct(1.0),
        f(exact_mean, 1),
        pct(0.0),
        f(t_exact.as_secs_f64() * 1e3, 2),
        f(1.0, 1),
    ]);
    for rate_log2 in [2u32, 4, 6] {
        let (s, t) = time_it(|| sampled_distances(&sink.accesses, n, rate_log2, 0xACE));
        let mean = s.stats().mean;
        let rel = if exact_mean > 0.0 { (mean - exact_mean).abs() / exact_mean } else { 0.0 };
        table.row(vec![
            format!("1/{}", 1u64 << rate_log2),
            pct(s.sample_fraction()),
            f(mean, 1),
            pct(rel),
            f(t.as_secs_f64() * 1e3, 2),
            f(t_exact.as_secs_f64() / t.as_secs_f64().max(1e-9), 1),
        ]);
    }
    if let Some(dir) = &cfg.csv_dir {
        let _ = table.write_csv(dir, "sampled");
    }
    let mut out = table.render();
    out.push_str("\nSHARDS: hash-sampling elements keeps the estimator unbiased while analysing a fraction of the trace.\n");
    out
}

/// `writeback` — write-back traffic of one sweep under an L2-sized
/// write-back/write-allocate cache: the smoother *writes* every interior
/// vertex, and a good layout keeps dirty lines resident.
pub fn writeback(cfg: &ExpConfig) -> String {
    let mut table = Table::new(
        format!("Write-back traffic of one sweep (L2-sized write-back cache), scale {}", cfg.scale),
        &["mesh", "ORI fills", "ORI wbacks", "RDR fills", "RDR wbacks", "traffic cut"],
    );
    // reuse the scaled L2 shape from the hierarchy preset
    let l2 = cfg.hierarchy().level_configs()[1];
    for named in cfg.meshes() {
        let mut traffic = Vec::new();
        let mut fills = Vec::new();
        let mut wbacks = Vec::new();
        for kind in [OrderingKind::Original, OrderingKind::Rdr] {
            let m = ordered_mesh(&named.mesh, kind);
            let engine = lms_smooth::SmoothEngine::new(&m, SmoothParams::paper().with_max_iters(1));
            let trace = first_sweep_trace(&m);
            let heads: Vec<bool> = {
                let b = engine.boundary();
                (0..m.num_vertices() as u32).map(|v| b.is_interior(v)).collect()
            };
            let rw = sweep_rw_trace(&trace, &heads);
            let mut cache = WritebackCache::new(CacheConfig { name: "L2wb", ..l2 });
            cache.run_trace(&rw, &cfg.layout);
            cache.drain();
            let s = cache.stats();
            traffic.push(s.line_traffic());
            fills.push(s.fills);
            wbacks.push(s.writebacks + s.drained);
        }
        let cut = if traffic[0] > 0 { 1.0 - traffic[1] as f64 / traffic[0] as f64 } else { 0.0 };
        table.row(vec![
            named.spec.name.to_string(),
            fills[0].to_string(),
            wbacks[0].to_string(),
            fills[1].to_string(),
            wbacks[1].to_string(),
            pct(cut),
        ]);
    }
    if let Some(dir) = &cfg.csv_dir {
        let _ = table.write_csv(dir, "writeback");
    }
    let mut out = table.render();
    out.push_str("\nexpected: RDR cuts both demand fills and dirty write-backs (the cost Figure 9 does not count).\n");
    out
}

/// `parrdr` — parallel RDR construction: §5.4 prices the serial reordering
/// at one ORI sweep; chunked construction divides that cost while giving up
/// a little locality at the chunk seams.
pub fn parrdr(cfg: &ExpConfig) -> String {
    let mut out = String::new();
    for named in cfg.meshes() {
        let adj = lms_mesh::Adjacency::build(&named.mesh);
        let mut table = Table::new(
            format!(
                "Parallel RDR construction — {} ({} vertices)",
                named.spec.name,
                named.mesh.num_vertices()
            ),
            &["chunks", "construct ms", "mean span", "smooth ms", "construct speedup"],
        );
        let mut base_ms = 0.0;
        for &chunks in &[1usize, 2, 4, 8] {
            let opts = ParRdrOptions::default();
            let (perm, t) = time_it(|| par_rdr_ordering(&named.mesh, &opts, chunks));
            let span = layout_stats_permuted(&named.mesh, &adj, &perm).mean_span;
            let m = perm.apply_to_mesh(&named.mesh);
            let params = SmoothParams::paper().with_max_iters(cfg.max_iters.min(8));
            let (_, t_smooth) = time_it(|| params.smooth(&mut m.clone()));
            let t_ms = t.as_secs_f64() * 1e3;
            if chunks == 1 {
                base_ms = t_ms;
            }
            table.row(vec![
                chunks.to_string(),
                f(t_ms, 2),
                f(span, 1),
                f(t_smooth.as_secs_f64() * 1e3, 2),
                f(base_ms / t_ms.max(1e-9), 2),
            ]);
        }
        if let Some(dir) = &cfg.csv_dir {
            let _ = table.write_csv(dir, &format!("parrdr_{}", named.spec.label));
        }
        out.push_str(&table.render());
    }
    let _ = writeln!(
        out,
        "\nchunked walks lower the reordering cost (and the §5.4 break-even point) at a small span penalty."
    );
    out
}

/// `iter-reorder` — data reordering vs iteration reordering
/// (Strout & Hovland \[18\] distinguish the two; the paper's renumbering
/// performs both at once because the sweep walks the array in storage
/// order). Four configurations per mesh:
///
/// * `none`       — original layout, storage-order sweep (baseline);
/// * `iter-only`  — original layout, sweep visits vertices in RDR order;
/// * `data-only`  — RDR layout, sweep visits vertices in the *original*
///   sequence (iteration pattern preserved, data moved);
/// * `both`       — RDR layout, storage-order sweep (the paper's RDR).
pub fn iter_reorder(cfg: &ExpConfig) -> String {
    use lms_cache::reuse::ReuseStats;
    use lms_smooth::{SmoothEngine, VecSink};
    let mut table = Table::new(
        format!("Data vs iteration reordering (Strout & Hovland), scale {}", cfg.scale),
        &["mesh", "config", "mean RD", "L1 miss", "L2 miss"],
    );
    for named in cfg.meshes() {
        let perm = lms_order::rdr_ordering(&named.mesh);
        let rdr_mesh = perm.apply_to_mesh(&named.mesh);
        let params = SmoothParams::paper().with_max_iters(1);

        // visit sequences
        let interior_in_rdr_order: Vec<u32> = perm.new_to_old().to_vec();
        // in the RDR-renumbered mesh, "the original sequence" is the image
        // of 0..n under old→new
        let original_seq_in_new_ids: Vec<u32> = perm.old_to_new();

        let configs: Vec<(&str, &lms_mesh::TriMesh, Option<Vec<u32>>)> = vec![
            ("none", &named.mesh, None),
            ("iter-only", &named.mesh, Some(interior_in_rdr_order)),
            ("data-only", &rdr_mesh, Some(original_seq_in_new_ids)),
            ("both", &rdr_mesh, None),
        ];
        for (name, mesh, visit) in configs {
            let mut engine = SmoothEngine::new(mesh, params.clone());
            if let Some(order) = visit {
                engine = engine.with_visit_order(order);
            }
            let mut sink = VecSink::new();
            engine.smooth_traced(&mut mesh.clone(), &mut sink);
            let distances = ReuseDistanceAnalyzer::analyze(&sink.accesses, mesh.num_vertices());
            let mean_rd = ReuseStats::from_distances(&distances).mean;
            let mut h = cfg.hierarchy();
            h.run_trace(&sink.accesses);
            let stats = h.level_stats();
            table.row(vec![
                named.spec.name.to_string(),
                name.to_string(),
                f(mean_rd, 1),
                pct(stats[0].miss_rate()),
                pct(stats[1].miss_rate()),
            ]);
        }
    }
    if let Some(dir) = &cfg.csv_dir {
        let _ = table.write_csv(dir, "iter_reorder");
    }
    let mut out = table.render();
    out.push_str(
        "\nStrout & Hovland: data and iteration reordering compose; the paper's renumbering\n\
         does both at once, which is why `both` dominates and `iter-only` alone cannot fix\n\
         the layout.\n",
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_cfg() -> ExpConfig {
        ExpConfig {
            scale: 0.002,
            mesh: Some("carabiner".into()),
            max_iters: 3,
            ..Default::default()
        }
    }

    #[test]
    fn tlb_reports_walks() {
        let out = tlb(&tiny_cfg());
        assert!(out.contains("walk rate"));
        assert!(out.contains("carabiner"));
    }

    #[test]
    fn sampled_reports_rates() {
        let out = sampled(&tiny_cfg());
        assert!(out.contains("1/16"));
        assert!(out.contains("rel err"));
    }

    #[test]
    fn writeback_reports_traffic_cut() {
        let out = writeback(&tiny_cfg());
        assert!(out.contains("traffic cut"));
    }

    #[test]
    fn parrdr_reports_speedup() {
        let out = parrdr(&tiny_cfg());
        assert!(out.contains("construct speedup"));
        assert!(out.contains("chunks"));
    }

    #[test]
    fn iter_reorder_lists_all_four_configs() {
        let out = iter_reorder(&tiny_cfg());
        for config in ["none", "iter-only", "data-only", "both"] {
            assert!(out.contains(config), "missing {config} in\n{out}");
        }
    }
}
