//! Tables 1, 2 and 3 of the paper.

use crate::common::{first_sweep_trace, full_trace, ordered_mesh, ExpConfig};
use crate::table::{k, Table};
use lms_cache::{estimate_max_elements, quantile, ReuseDistanceAnalyzer, StackDistanceModel};
use lms_order::OrderingKind;
use std::fmt::Write as _;

/// Table 1: the mesh inventory — paper counts vs generated counts at the
/// configured scale.
pub fn table1(cfg: &ExpConfig) -> String {
    let mut table = Table::new(
        format!("Table 1 — input mesh configuration (scale {})", cfg.scale),
        &["label", "mesh", "paper vertices", "paper triangles", "gen vertices", "gen triangles"],
    );
    for named in cfg.meshes() {
        table.row(vec![
            named.spec.label.to_string(),
            named.spec.name.to_string(),
            named.spec.paper_vertices.to_string(),
            named.spec.paper_triangles.to_string(),
            named.mesh.num_vertices().to_string(),
            named.mesh.num_triangles().to_string(),
        ]);
    }
    if let Some(dir) = &cfg.csv_dir {
        let _ = table.write_csv(dir, "table1_meshes");
    }
    table.render()
}

/// Table 2: reuse-distance quantiles (50/75/90/100%) of the first
/// iteration, per mesh and ordering, plus the total access count of a full
/// run.
pub fn table2(cfg: &ExpConfig) -> String {
    let mut table = Table::new(
        "Table 2 — reuse-distance quantiles of the first iteration",
        &["mesh", "ordering", "50%", "75%", "90%", "100%", "#accesses (full run)"],
    );
    for named in cfg.meshes() {
        for kind in OrderingKind::PAPER_TRIO {
            let m = ordered_mesh(&named.mesh, kind);
            let trace = first_sweep_trace(&m);
            let distances = ReuseDistanceAnalyzer::analyze(&trace, m.num_vertices());
            let sink = full_trace(&m, cfg.max_iters);
            let q = |p: f64| {
                quantile(&distances, p).map(|v| v.to_string()).unwrap_or_else(|| "-".into())
            };
            table.row(vec![
                named.spec.name.to_string(),
                kind.name().to_string(),
                q(0.5),
                q(0.75),
                q(0.9),
                q(1.0),
                sink.accesses.len().to_string(),
            ]);
        }
    }
    if let Some(dir) = &cfg.csv_dir {
        let _ = table.write_csv(dir, "table2_quantiles");
    }
    let mut out = table.render();
    let _ = writeln!(
        out,
        "\npaper shape: RDR's quantiles collapse to single digits (50%=1, 90%≤11) and its\nmaximum sits orders of magnitude below ORI/BFS (e.g. carabiner: 1,942 vs 1.9M)."
    );
    out
}

/// Table 3: per the §3.1 theoretical model — estimated number of misses per
/// cache level (cold misses excluded, as the paper subtracts compulsory
/// misses) and the estimated maximum number of elements each cache
/// effectively held.
pub fn table3(cfg: &ExpConfig) -> String {
    let model = StackDistanceModel::from_hierarchy(&cfg.hierarchy());
    let mut table = Table::new(
        "Table 3 — estimated misses (x10^3) and max elements fitting each cache (x10^3)",
        &["mesh", "ordering", "L1 miss", "L2 miss", "L3 miss", "L1 elems", "L2 elems", "L3 elems"],
    );
    for named in cfg.meshes() {
        for kind in OrderingKind::PAPER_TRIO {
            let m = ordered_mesh(&named.mesh, kind);
            let trace = first_sweep_trace(&m);
            let distances = ReuseDistanceAnalyzer::analyze(&trace, m.num_vertices());
            let outcome = model.apply(&distances, false);
            let elems: Vec<u64> =
                outcome.misses.iter().map(|&n| estimate_max_elements(&distances, n)).collect();
            table.row(vec![
                named.spec.name.to_string(),
                kind.name().to_string(),
                k(outcome.misses[0]),
                k(outcome.misses[1]),
                k(outcome.misses[2]),
                k(elems[0]),
                k(elems[1]),
                k(elems[2]),
            ]);
        }
    }
    if let Some(dir) = &cfg.csv_dir {
        let _ = table.write_csv(dir, "table3_model");
    }
    let mut out = table.render();
    let _ = writeln!(
        out,
        "\npaper shape: RDR has (near-)zero L3 misses, and its estimated max-elements are\nnearly identical across L1/L2/L3 — the quasi-optimality argument of §5.2.3."
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_cfg() -> ExpConfig {
        ExpConfig { scale: 0.002, mesh: Some("valve".into()), max_iters: 3, ..Default::default() }
    }

    #[test]
    fn table1_lists_paper_counts() {
        let out = table1(&tiny_cfg());
        assert!(out.contains("300985")); // valve's Table-1 vertex count
    }

    #[test]
    fn table2_has_quantile_columns() {
        let out = table2(&tiny_cfg());
        assert!(out.contains("50%"));
        assert!(out.contains("rdr"));
    }

    #[test]
    fn table3_reports_model() {
        let out = table3(&tiny_cfg());
        assert!(out.contains("L3 elems"));
    }
}
