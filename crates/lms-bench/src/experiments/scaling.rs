//! Figures 10–13: multicore scaling, via the socket-aware cache simulator
//! (substitution #3 of DESIGN.md) plus real rayon wall-clock runs for the
//! thread counts this host actually has.

use crate::common::{ordered_mesh, time_it, ExpConfig};
use crate::table::{f, pct, Table};
use lms_cache::{multicore, MulticoreResult};
use lms_order::OrderingKind;
use lms_part::PartitionMethod;
use lms_smooth::{PartitionedEngine, ResidentEngine, SmoothEngine, SmoothParams};
use std::collections::HashMap;
use std::fmt::Write as _;

/// Simulated wall cycles for (mesh, ordering, p). One sweep's traces are
/// enough: every sweep has the same access pattern, so ratios are exact.
fn sim_wall_cycles(
    cfg: &ExpConfig,
    mesh: &lms_mesh::TriMesh,
    kind: OrderingKind,
    p: usize,
) -> MulticoreResult {
    let m = ordered_mesh(mesh, kind);
    let traces = crate::common::parallel_sweep_traces_full(&m, p);
    multicore::simulate(&cfg.machine_for(&m), &traces)
}

/// All simulated results keyed by `(mesh_label, ordering_name, p)`.
fn simulate_all(cfg: &ExpConfig) -> HashMap<(String, &'static str, usize), MulticoreResult> {
    let mut out = HashMap::new();
    for named in cfg.meshes() {
        for kind in OrderingKind::PAPER_TRIO {
            for &p in &cfg.threads {
                let r = sim_wall_cycles(cfg, &named.mesh, kind, p);
                out.insert((named.spec.label.to_string(), kind.name(), p), r);
            }
        }
    }
    out
}

/// Figure 10: per-mesh speedup relative to the serial ORI baseline
/// (`T_ORI(1) / T_ordering(p)`), one table per core count.
pub fn fig10(cfg: &ExpConfig) -> String {
    let sims = simulate_all(cfg);
    let meshes = cfg.meshes();
    let mut out = String::new();
    for &p in &cfg.threads {
        let mut table = Table::new(
            format!("Figure 10 — simulated speedup vs serial ORI, {p} cores"),
            &["mesh", "ORI", "BFS", "RDR"],
        );
        for named in &meshes {
            let base = sims[&(named.spec.label.to_string(), "ori", 1)].wall_cycles() as f64;
            let mut cells = vec![named.spec.name.to_string()];
            for kind in OrderingKind::PAPER_TRIO {
                let w = sims[&(named.spec.label.to_string(), kind.name(), p)].wall_cycles() as f64;
                cells.push(f(base / w, 2));
            }
            table.row(cells);
        }
        if let Some(dir) = &cfg.csv_dir {
            let _ = table.write_csv(dir, &format!("fig10_{p}cores"));
        }
        out.push_str(&table.render());
        out.push('\n');
    }
    out.push_str("paper shape: supra-linear speedups for all orderings (aggregate cache grows with cores); RDR on top.\n");
    out
}

/// Figure 11: number of accesses reaching L2 / L3 / memory per core as the
/// core count grows (ORI ordering). The decline explains the superlinear
/// speedups.
pub fn fig11(cfg: &ExpConfig) -> String {
    let meshes: Vec<_> = cfg.meshes().into_iter().take(3).collect();
    let mut out = String::new();
    for named in &meshes {
        let mut table = Table::new(
            format!("Figure 11 — per-core access counts vs cores ({}, ORI)", named.spec.name),
            &["cores", "L2 accesses/core", "L3 accesses/core", "memory accesses/core"],
        );
        for &p in &cfg.threads {
            let r = sim_wall_cycles(cfg, &named.mesh, OrderingKind::Original, p);
            let l2 = r.private_stats.get(1).map(|s| s.accesses).unwrap_or(0);
            table.row(vec![
                p.to_string(),
                f(l2 as f64 / p as f64, 0),
                f(r.shared_stats.accesses as f64 / p as f64, 0),
                f(r.memory_accesses as f64 / p as f64, 0),
            ]);
        }
        if let Some(dir) = &cfg.csv_dir {
            let _ = table.write_csv(dir, &format!("fig11_{}", named.spec.name));
        }
        out.push_str(&table.render());
        out.push('\n');
    }
    out.push_str("paper shape: the distance data is fetched from decreases with the core count.\n");
    out
}

/// Figure 12: mean (over the suite) speedup per ordering as a function of
/// the core count. Paper: RDR exceeds 75× at 32 cores.
pub fn fig12(cfg: &ExpConfig) -> String {
    let sims = simulate_all(cfg);
    let meshes = cfg.meshes();
    let mut table = Table::new(
        "Figure 12 — mean simulated speedup vs serial ORI",
        &["cores", "ORI", "BFS", "RDR"],
    );
    for &p in &cfg.threads {
        let mut cells = vec![p.to_string()];
        for kind in OrderingKind::PAPER_TRIO {
            let mean: f64 = meshes
                .iter()
                .map(|named| {
                    let base = sims[&(named.spec.label.to_string(), "ori", 1)].wall_cycles() as f64;
                    let w =
                        sims[&(named.spec.label.to_string(), kind.name(), p)].wall_cycles() as f64;
                    base / w
                })
                .sum::<f64>()
                / meshes.len() as f64;
            cells.push(f(mean, 2));
        }
        table.row(cells);
    }
    if let Some(dir) = &cfg.csv_dir {
        let _ = table.write_csv(dir, "fig12_mean_speedup");
    }
    let mut out = table.render();
    out.push_str("\npaper: rdr > bfs > ori at every core count; rdr reaches ~75x at 32 cores.\n");
    out
}

/// Figure 13: gain in execution time of RDR over ORI and BFS,
/// `(T_algo(p) − T_RDR(p)) / T_algo(p)`, averaged over the suite.
pub fn fig13(cfg: &ExpConfig) -> String {
    let sims = simulate_all(cfg);
    let meshes = cfg.meshes();
    let mut table = Table::new(
        "Figure 13 — mean gain of RDR in execution time",
        &["cores", "vs ORI", "vs BFS"],
    );
    for &p in &cfg.threads {
        let mut gains = [0.0f64; 2];
        for named in &meshes {
            let rdr = sims[&(named.spec.label.to_string(), "rdr", p)].wall_cycles() as f64;
            for (g, alg) in gains.iter_mut().zip(["ori", "bfs"]) {
                let t = sims[&(named.spec.label.to_string(), alg, p)].wall_cycles() as f64;
                *g += (t - rdr) / t;
            }
        }
        table.row(vec![
            p.to_string(),
            pct(gains[0] / meshes.len() as f64),
            pct(gains[1] / meshes.len() as f64),
        ]);
    }
    if let Some(dir) = &cfg.csv_dir {
        let _ = table.write_csv(dir, "fig13_gains");
    }
    let mut out = table.render();
    out.push_str("\npaper: 20–30% gain over ORI, 10–30% over BFS, across core counts.\n");
    out
}

/// Real rayon wall-clock scaling on this host (complements the simulation;
/// thread counts beyond the host's cores are skipped).
pub fn real_scaling(cfg: &ExpConfig) -> String {
    let host_cores = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
    let meshes = cfg.meshes();
    let mut table = Table::new(
        format!("Real rayon scaling on this host ({host_cores} cores)"),
        &["mesh", "threads", "ORI (ms)", "RDR (ms)", "gain"],
    );
    for named in meshes.iter().take(3) {
        for &p in cfg.threads.iter().filter(|&&p| p <= host_cores) {
            let mut row = vec![named.spec.name.to_string(), p.to_string()];
            let mut times = Vec::new();
            for kind in [OrderingKind::Original, OrderingKind::Rdr] {
                let m = ordered_mesh(&named.mesh, kind);
                let engine =
                    SmoothEngine::new(&m, SmoothParams::paper().with_max_iters(cfg.max_iters));
                let (_, wall) = time_it(|| engine.smooth_parallel(&mut m.clone(), p));
                times.push(wall.as_secs_f64() * 1e3);
            }
            row.push(f(times[0], 1));
            row.push(f(times[1], 1));
            row.push(pct((times[0] - times[1]) / times[0]));
            table.row(row);
        }
    }
    let mut out = table.render();
    let _ = writeln!(
        out,
        "\n(simulated 1–32-core results are in fig10–fig13; this host exposes {host_cores} hardware threads)"
    );
    out
}

/// Parallel-engine shoot-out on this host: deterministic Jacobi, chaotic
/// (racy) Gauss–Seidel, and colored deterministic Gauss–Seidel, per
/// thread count — plus a determinism audit of the colored engine.
pub fn engines(cfg: &ExpConfig) -> String {
    let host_cores = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
    let meshes = cfg.meshes();
    let mut table = Table::new(
        format!("Parallel engines on this host ({host_cores} cores), RDR ordering"),
        &["mesh", "threads", "jacobi (ms)", "chaotic (ms)", "colored (ms)", "colored q"],
    );
    let mut deterministic = true;
    for named in meshes.iter().take(3) {
        let m = ordered_mesh(&named.mesh, OrderingKind::Rdr);
        let engine = SmoothEngine::new(&m, SmoothParams::paper().with_max_iters(cfg.max_iters));
        let mut reference: Option<Vec<lms_mesh::Point2>> = None;
        for &p in cfg.threads.iter().filter(|&&p| p <= host_cores.max(2)) {
            let mut jacobi = m.clone();
            let (_, tj) = time_it(|| engine.smooth_parallel(&mut jacobi, p));
            let mut chaotic = m.clone();
            let (_, tc) = time_it(|| engine.smooth_parallel_chaotic(&mut chaotic, p));
            let mut colored = m.clone();
            let (rg, tg) = time_it(|| engine.smooth_parallel_colored(&mut colored, p));
            match &reference {
                None => reference = Some(colored.coords().to_vec()),
                Some(r) => deterministic &= r.as_slice() == colored.coords(),
            }
            table.row(vec![
                named.spec.name.to_string(),
                p.to_string(),
                f(tj.as_secs_f64() * 1e3, 1),
                f(tc.as_secs_f64() * 1e3, 1),
                f(tg.as_secs_f64() * 1e3, 1),
                f(rg.final_quality, 4),
            ]);
        }
    }
    if let Some(dir) = &cfg.csv_dir {
        let _ = table.write_csv(dir, "parallel_engines");
    }
    let mut out = table.render();
    let _ = writeln!(
        out,
        "
colored engine bitwise-deterministic across thread counts: {}",
        if deterministic { "yes" } else { "NO (bug!)" }
    );
    out
}

/// The `scaling` experiment: wall-clock thread scaling of the three
/// deterministic Gauss–Seidel engines — colored (PR-1), partitioned
/// (PR-2) and resident halo-exchange (PR-3) — on the smart workload,
/// with a bit-identity gate between the resident engine and serial
/// Gauss–Seidel under the part-major order. The text/CSV companion of
/// `bench_scaling.rs` (which tracks the 512² numbers in
/// `BENCH_scaling.json`).
pub fn thread_scaling(cfg: &ExpConfig) -> String {
    let host_cores = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
    let meshes = cfg.meshes();
    let params =
        SmoothParams::paper().with_smart(true).with_max_iters(cfg.max_iters.min(10)).with_tol(-1.0);
    let mut table = Table::new(
        format!("Engine thread scaling on this host ({host_cores} cores), smart GS, 8-way rcb"),
        &[
            "mesh",
            "threads",
            "colored (ms)",
            "partitioned (ms)",
            "resident (ms)",
            "res speedup vs 1t",
        ],
    );
    let mut gate_ok = true;
    for named in meshes.iter().take(2) {
        let colored = SmoothEngine::new(&named.mesh, params.clone());
        let partitioned =
            PartitionedEngine::by_method(&named.mesh, params.clone(), 8, PartitionMethod::Rcb);
        let resident =
            ResidentEngine::by_method(&named.mesh, params.clone(), 8, PartitionMethod::Rcb);
        // correctness gate: resident == serial part-major GS, bit for bit
        {
            let mut a = named.mesh.clone();
            resident.smooth(&mut a, 2);
            let serial = SmoothEngine::new(&named.mesh, params.clone())
                .with_visit_order(resident.part_major_visit_order());
            let mut b = named.mesh.clone();
            serial.smooth(&mut b);
            gate_ok &= a.coords() == b.coords();
        }
        let mut res_1t = f64::NAN;
        for &threads in cfg.threads.iter().filter(|&&t| t <= 8) {
            let (_, tc) =
                time_it(|| colored.smooth_parallel_colored(&mut named.mesh.clone(), threads));
            let (_, tp) = time_it(|| partitioned.smooth(&mut named.mesh.clone(), threads));
            let (_, tr) = time_it(|| resident.smooth(&mut named.mesh.clone(), threads));
            let tr_ms = tr.as_secs_f64() * 1e3;
            if threads == 1 {
                res_1t = tr_ms;
            }
            // the self-speedup needs a measured 1-thread baseline: with a
            // thread list that omits 1 (or lists it late) print a dash
            // instead of NaN/garbage
            let speedup = if res_1t.is_finite() { f(res_1t / tr_ms, 2) } else { "-".to_string() };
            table.row(vec![
                named.spec.name.to_string(),
                threads.to_string(),
                f(tc.as_secs_f64() * 1e3, 1),
                f(tp.as_secs_f64() * 1e3, 1),
                f(tr_ms, 1),
                speedup,
            ]);
        }
    }
    if let Some(dir) = &cfg.csv_dir {
        let _ = table.write_csv(dir, "thread_scaling");
    }
    let mut out = table.render();
    let _ = writeln!(
        out,
        "\nresident == serial part-major Gauss-Seidel bitwise: {}\n\
         (speedups above the host core count ({host_cores}) cannot exceed 1)",
        if gate_ok { "yes" } else { "NO (bug!)" }
    );
    // one-line comparable throughput counters from a profiled resident
    // run: sweep nanos come from PhaseBreakdown, scored elements from
    // the SoA kernel's rank-local counter
    if let Some(named) = meshes.first() {
        let resident =
            ResidentEngine::by_method(&named.mesh, params.clone(), 8, PartitionMethod::Rcb);
        let (report, _) = resident.smooth_profiled(&mut named.mesh.clone(), 1);
        let _ = writeln!(
            out,
            "throughput ({}, 1 thread) — {:.2}k moved vertices/s, {:.2}M scored elements/s",
            named.spec.name,
            report.moved_vertices_per_sec().unwrap_or(f64::NAN) / 1e3,
            report.scored_elements_per_sec().unwrap_or(f64::NAN) / 1e6,
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_cfg() -> ExpConfig {
        ExpConfig {
            scale: 0.002,
            mesh: Some("crake".into()),
            max_iters: 3,
            threads: vec![1, 2, 4],
            ..Default::default()
        }
    }

    #[test]
    fn fig10_has_one_table_per_core_count() {
        let out = fig10(&tiny_cfg());
        assert!(out.contains("1 cores"));
        assert!(out.contains("4 cores"));
    }

    #[test]
    fn fig11_counts_decrease_columns_exist() {
        let out = fig11(&tiny_cfg());
        assert!(out.contains("L2 accesses/core"));
    }

    #[test]
    fn fig12_and_13_cover_thread_axis() {
        let cfg = tiny_cfg();
        let out12 = fig12(&cfg);
        let out13 = fig13(&cfg);
        assert!(out12.contains("cores"));
        assert!(out13.contains("vs ORI"));
    }

    #[test]
    fn real_scaling_runs_on_host() {
        let out = real_scaling(&tiny_cfg());
        assert!(out.contains("Real rayon scaling"));
    }

    #[test]
    fn engines_reports_deterministic_colored() {
        let out = engines(&tiny_cfg());
        assert!(out.contains("colored (ms)"));
        assert!(out.contains("deterministic across thread counts: yes"));
    }

    #[test]
    fn thread_scaling_gates_resident_on_serial_equality() {
        let out = thread_scaling(&tiny_cfg());
        assert!(out.contains("resident (ms)"));
        assert!(out.contains("bitwise: yes"), "serial-equivalence gate must hold:\n{out}");
        assert!(out.contains("moved vertices/s"), "throughput line missing:\n{out}");
        assert!(out.contains("scored elements/s"), "throughput line missing:\n{out}");
    }
}
