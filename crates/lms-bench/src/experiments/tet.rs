//! `tet` — the §6 conjecture on tetrahedral meshes: RDR transfers to
//! volumetric Laplacian smoothing.
//!
//! For each 3D suite mesh and each of ORI / BFS / RDR, the experiment
//! measures the mean reuse distance of one smoothing sweep, the simulated
//! L1/L2/L3 miss counts of the scaled Westmere-EX hierarchy, and the
//! wall-clock smoothing time — the 3D twins of Table 2, Figure 9 and
//! Figure 8.

use crate::common::{scaled_westmere, time_it, ExpConfig};
use crate::table::{f, k, Table};
use lms_cache::reuse::{ReuseDistanceAnalyzer, ReuseStats};
use lms_mesh3d::generators::{generate3, SUITE3};
use lms_mesh3d::order::{apply_permutation3, compute_ordering3, sweep_trace3, OrderingKind3};
use lms_mesh3d::{Adjacency3, Boundary3, SmoothParams3};
use std::fmt::Write as _;

/// The 3D suite scale corresponding to an [`ExpConfig::scale`]: the base
/// 3D meshes are already laptop-sized, so the default 2D scale of 0.02
/// maps to 1.0 here.
fn scale3(cfg: &ExpConfig) -> f64 {
    (cfg.scale * 50.0).max(1e-3)
}

/// Run the `tet` experiment (see module docs).
pub fn tet(cfg: &ExpConfig) -> String {
    let mut out = String::new();
    let mut speedups = Vec::new();
    for spec in &SUITE3 {
        let base = generate3(spec, scale3(cfg));
        let mut table = Table::new(
            format!(
                "Tetrahedral LMS — {} ({} vertices, {} tets)",
                spec.name,
                base.num_vertices(),
                base.num_tets()
            ),
            &["ordering", "mean RD", "L1 misses", "L2 misses", "L3 misses", "smooth ms"],
        );
        let mut times = Vec::new();
        for kind in OrderingKind3::PAPER_TRIO {
            let perm = compute_ordering3(&base, kind);
            let m = apply_permutation3(&perm, &base);
            let adj = Adjacency3::build(&m);
            let boundary = Boundary3::detect(&m);

            let trace = sweep_trace3(&adj, &boundary);
            let distances = ReuseDistanceAnalyzer::analyze(&trace, m.num_vertices());
            let mean_rd = ReuseStats::from_distances(&distances).mean;

            let mut h = scaled_westmere(cfg.scale, cfg.layout);
            h.run_trace(&trace);
            let stats = h.level_stats();

            let params = SmoothParams3::paper().with_max_iters(cfg.max_iters.min(20));
            let (_, wall) = time_it(|| params.smooth(&mut m.clone()));
            times.push(wall.as_secs_f64() * 1e3);

            table.row(vec![
                kind.name().to_string(),
                f(mean_rd, 1),
                k(stats[0].misses),
                k(stats[1].misses),
                k(stats[2].misses),
                f(wall.as_secs_f64() * 1e3, 1),
            ]);
        }
        speedups.push(times[0] / times[2].max(1e-9));
        if let Some(dir) = &cfg.csv_dir {
            let _ = table.write_csv(dir, &format!("tet_{}", spec.label));
        }
        out.push_str(&table.render());
    }
    let mean = speedups.iter().sum::<f64>() / speedups.len().max(1) as f64;
    let _ = writeln!(
        out,
        "\nmean RDR/ORI smoothing speedup in 3D: {mean:.2}x — the §6 conjecture holds when > 1."
    );
    out
}

/// `tet-quality` — 3D smoothing quality sanity: orderings must not change
/// convergence (the paper notes "the orderings did not change the number of
/// iterations needed").
pub fn tet_quality(cfg: &ExpConfig) -> String {
    let spec = &SUITE3[0];
    let base = generate3(spec, scale3(cfg));
    let mut table = Table::new(
        format!("3D ordering-invariance — {} (Jacobi sweeps)", spec.name),
        &["ordering", "initial q", "final q", "iterations", "converged"],
    );
    for kind in OrderingKind3::PAPER_TRIO {
        let perm = compute_ordering3(&base, kind);
        let m = apply_permutation3(&perm, &base);
        // Jacobi: bit-identical results under any vertex numbering
        let params = SmoothParams3::paper()
            .with_update(lms_mesh3d::UpdateScheme3::Jacobi)
            .with_max_iters(cfg.max_iters.min(40));
        let report = params.smooth(&mut m.clone());
        table.row(vec![
            kind.name().to_string(),
            f(report.initial_quality, 4),
            f(report.final_quality, 4),
            report.num_iterations().to_string(),
            report.converged.to_string(),
        ]);
    }
    if let Some(dir) = &cfg.csv_dir {
        let _ = table.write_csv(dir, "tet_quality");
    }
    let mut out = table.render();
    out.push_str("\nexpected: identical final quality and iteration count across orderings (Jacobi is numbering-invariant).\n");
    out
}

/// `tet-scaling` — the Figure 10/12 shape on a tetrahedral mesh: simulated
/// multicore speedup (private L1/L2, shared L3 per socket) of the 3D sweep
/// per ordering and core count, relative to serial ORI.
pub fn tet_scaling(cfg: &ExpConfig) -> String {
    use lms_cache::split_static;
    let spec = &SUITE3[0];
    let base = generate3(spec, scale3(cfg));
    let machine = {
        let shrink = crate::common::shrink_factor(cfg.scale);
        if shrink <= 1 {
            lms_cache::MachineConfig::westmere_ex(cfg.layout)
        } else {
            lms_cache::MachineConfig::westmere_scaled(cfg.layout, shrink)
        }
    };

    let mut table = Table::new(
        format!(
            "3D simulated speedup vs serial ORI — {} ({} vertices)",
            spec.name,
            base.num_vertices()
        ),
        &["cores", "ORI", "BFS", "RDR"],
    );
    // serial ORI baseline
    let trace_of = |kind: OrderingKind3| {
        let perm = compute_ordering3(&base, kind);
        let m = apply_permutation3(&perm, &base);
        let adj = Adjacency3::build(&m);
        let b = Boundary3::detect(&m);
        sweep_trace3(&adj, &b)
    };
    let traces: Vec<(OrderingKind3, Vec<u32>)> =
        OrderingKind3::PAPER_TRIO.iter().map(|&k| (k, trace_of(k))).collect();
    let baseline =
        lms_cache::simulate(&machine, &split_static(&traces[0].1, 1)).wall_cycles() as f64;

    for &p in &cfg.threads {
        if p > 32 {
            continue;
        }
        let mut cells = vec![p.to_string()];
        for (_, trace) in &traces {
            let w = lms_cache::simulate(&machine, &split_static(trace, p)).wall_cycles() as f64;
            cells.push(f(baseline / w, 2));
        }
        table.row(cells);
    }
    if let Some(dir) = &cfg.csv_dir {
        let _ = table.write_csv(dir, "tet_scaling");
    }
    let mut out = table.render();
    out.push_str(
        "\nexpected: the Figure 10/12 shape in 3D — speedups grow with cores, RDR/BFS above ORI.\n",
    );
    out
}

/// `scaling3d` — wall-clock thread scaling of the 3D engines over a tet
/// grid: serial reference vs colored deterministic Gauss–Seidel vs the
/// partitioned and resident halo-exchange engines (all one generic code
/// path with the 2D engines since the dimension-generic refactor). Gated
/// on the bit-identity of the resident sweep with serial part-major 3D
/// Gauss–Seidel before any timing, exactly like the 2D `scaling`
/// experiment.
pub fn scaling3d(cfg: &ExpConfig) -> String {
    use lms_mesh3d::{PartitionedEngine3, ResidentEngine3, SmoothEngine3};
    use lms_part::PartitionMethod;

    let host_cores = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
    let spec = &SUITE3[0];
    let base = generate3(spec, scale3(cfg));
    let params =
        SmoothParams3::paper().with_smart(true).with_max_iters(cfg.max_iters.min(8)).with_tol(-1.0);
    let parts = 8usize;

    let serial = SmoothEngine3::new(&base, params.clone());
    let colored = SmoothEngine3::new(&base, params.clone());
    let partitioned =
        PartitionedEngine3::by_method(&base, params.clone(), parts, PartitionMethod::Rcb);
    let resident = ResidentEngine3::by_method(&base, params.clone(), parts, PartitionMethod::Rcb);

    // correctness gate: resident == serial part-major 3D GS, bit for bit
    let gate_ok = {
        let mut a = base.clone();
        let report = resident.smooth(&mut a, 2);
        let oracle = SmoothEngine3::new(&base, params.clone())
            .with_visit_order(resident.part_major_visit_order());
        let mut b = base.clone();
        oracle.smooth(&mut b);
        let volume = report.exchange.expect("resident runs report exchange accounting");
        a.coords() == b.coords() && volume.full_gathers == 1 && volume.full_scatters == 1
    };

    let mut table = Table::new(
        format!(
            "3D engine thread scaling — {} ({} vertices, {} tets), smart GS, {parts}-way rcb, \
             host has {host_cores} cores",
            spec.name,
            base.num_vertices(),
            base.num_tets()
        ),
        &["threads", "serial (ms)", "colored (ms)", "partitioned (ms)", "resident (ms)"],
    );
    let (_, ts) = time_it(|| serial.smooth(&mut base.clone()));
    for &threads in cfg.threads.iter().filter(|&&t| t <= 8) {
        let (_, tc) = time_it(|| colored.smooth_parallel_colored(&mut base.clone(), threads));
        let (_, tp) = time_it(|| partitioned.smooth(&mut base.clone(), threads));
        let (_, tr) = time_it(|| resident.smooth(&mut base.clone(), threads));
        table.row(vec![
            threads.to_string(),
            f(ts.as_secs_f64() * 1e3, 1),
            f(tc.as_secs_f64() * 1e3, 1),
            f(tp.as_secs_f64() * 1e3, 1),
            f(tr.as_secs_f64() * 1e3, 1),
        ]);
    }
    if let Some(dir) = &cfg.csv_dir {
        let _ = table.write_csv(dir, "scaling3d");
    }
    let mut out = table.render();
    let _ = writeln!(
        out,
        "\nresident == serial part-major 3D GS (bitwise, one gather / one scatter): {}",
        if gate_ok { "PASS" } else { "FAIL" }
    );
    assert!(gate_ok, "3D resident engine diverged from serial part-major Gauss-Seidel");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_cfg() -> ExpConfig {
        ExpConfig { scale: 0.004, max_iters: 3, ..Default::default() }
    }

    #[test]
    fn tet_reports_all_three_meshes() {
        let out = tet(&tiny_cfg());
        assert!(out.contains("cube"));
        assert!(out.contains("slab"));
        assert!(out.contains("beam"));
        assert!(out.contains("mean RDR/ORI"));
    }

    #[test]
    fn tet_scaling_reports_speedups() {
        let cfg = ExpConfig { threads: vec![1, 4], ..tiny_cfg() };
        let out = tet_scaling(&cfg);
        assert!(out.contains("cores"));
        assert!(out.contains("RDR"));
    }

    #[test]
    fn scaling3d_gates_resident_on_serial_equality() {
        let cfg = ExpConfig { threads: vec![1, 2], ..tiny_cfg() };
        let out = scaling3d(&cfg);
        assert!(out.contains("resident"));
        assert!(out.contains("PASS"), "{out}");
    }

    #[test]
    fn tet_quality_is_ordering_invariant() {
        let out = tet_quality(&tiny_cfg());
        // all three rows must report the same iteration count: extract the
        // "iterations" column values and compare
        let iters: Vec<&str> = out
            .lines()
            .filter(|l| l.contains("ori") || l.contains("bfs") || l.contains("rdr"))
            .collect();
        assert_eq!(iters.len(), 3, "{out}");
    }
}
