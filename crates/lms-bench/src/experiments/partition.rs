//! Partition experiment: decomposition quality across methods and part
//! counts, and the partitioned engine's wall clock against the colored
//! parallel engine — the text/CSV companion of `bench_partition.rs`
//! (which tracks the same comparison in `BENCH_partition.json`).

use crate::common::{time_it, ExpConfig};
use crate::table::{f, pct, Table};
use lms_mesh::{Adjacency, Point2, TriMesh};
use lms_part::{partition_mesh, repartition_measured, PartitionMethod};
use lms_smooth::{PartitionedEngine, ResidentEngine, SmoothEngine, SmoothParams};
use std::fmt::Write as _;

/// Decomposition quality (edge cut, interface/halo, balance) for every
/// method at several part counts, plus engine timings: partitioned vs
/// colored Gauss–Seidel at the config's small thread counts.
pub fn partition(cfg: &ExpConfig) -> String {
    let mut out = String::new();

    // --- decomposition quality over the suite --------------------------
    let mut table = Table::new(
        format!("Partition quality, scale {} (k = 8)", cfg.scale),
        &["mesh", "method", "edge cut", "interior/interface", "halo ratio", "imbalance"],
    );
    for named in cfg.meshes().iter().take(4) {
        let adj = Adjacency::build(&named.mesh);
        for method in PartitionMethod::ALL {
            let s = partition_mesh(&named.mesh, &adj, 8, method).stats();
            table.row(vec![
                named.spec.name.to_string(),
                method.name().to_string(),
                s.edge_cut.to_string(),
                f(s.interior_interface_ratio(), 1),
                pct(s.halo_ratio),
                f(s.imbalance, 3),
            ]);
        }
    }
    if let Some(dir) = &cfg.csv_dir {
        let _ = table.write_csv(dir, "partition_quality");
    }
    out.push_str(&table.render());

    // --- cut growth with k on one mesh ----------------------------------
    if let Some(named) = cfg.meshes().into_iter().next() {
        let adj = Adjacency::build(&named.mesh);
        let mut ktable = Table::new(
            format!("Cut / interface growth with k — {}", named.spec.name),
            &["k", "edge cut", "interface", "interior %", "halo ratio"],
        );
        for k in [2usize, 4, 8, 16] {
            let s = partition_mesh(&named.mesh, &adj, k, PartitionMethod::Rcb).stats();
            ktable.row(vec![
                k.to_string(),
                s.edge_cut.to_string(),
                s.interface_vertices.to_string(),
                pct(s.interior_fraction),
                pct(s.halo_ratio),
            ]);
        }
        if let Some(dir) = &cfg.csv_dir {
            let _ = ktable.write_csv(dir, "partition_k_growth");
        }
        out.push('\n');
        out.push_str(&ktable.render());
    }

    // --- engine wall clock: partitioned vs colored ----------------------
    let mut etable = Table::new(
        "Partitioned vs colored deterministic Gauss-Seidel (smart, 10 sweeps)".to_string(),
        &["mesh", "threads", "colored (ms)", "partitioned (ms)", "speedup", "serial-equal"],
    );
    let params = SmoothParams::paper().with_smart(true).with_max_iters(10).with_tol(-1.0);
    for named in cfg.meshes().iter().take(2) {
        let colored_engine = SmoothEngine::new(&named.mesh, params.clone());
        let part_engine =
            PartitionedEngine::by_method(&named.mesh, params.clone(), 8, PartitionMethod::Rcb);
        // correctness gate: partitioned == serial under the part-major order
        let mut a = named.mesh.clone();
        part_engine.smooth(&mut a, 2);
        let serial = SmoothEngine::new(&named.mesh, params.clone())
            .with_visit_order(part_engine.part_major_visit_order());
        let mut b = named.mesh.clone();
        serial.smooth(&mut b);
        let equal = a.coords() == b.coords();
        for &threads in cfg.threads.iter().filter(|&&t| t <= 4) {
            let (_, tc) = time_it(|| {
                colored_engine.smooth_parallel_colored(&mut named.mesh.clone(), threads)
            });
            let (_, tp) = time_it(|| part_engine.smooth(&mut named.mesh.clone(), threads));
            etable.row(vec![
                named.spec.name.to_string(),
                threads.to_string(),
                f(tc.as_secs_f64() * 1e3, 1),
                f(tp.as_secs_f64() * 1e3, 1),
                f(tc.as_secs_f64() / tp.as_secs_f64(), 2),
                equal.to_string(),
            ]);
        }
    }
    if let Some(dir) = &cfg.csv_dir {
        let _ = etable.write_csv(dir, "partition_engines");
    }
    out.push('\n');
    out.push_str(&etable.render());
    let _ = writeln!(
        out,
        "\nspeedup = colored / partitioned wall clock; both engines are \
         bitwise-deterministic for any thread count."
    );
    out
}

/// An x³-graded grid: vertex density varies by orders of magnitude
/// across the domain, so an area-balanced decomposition is strongly
/// *count*- (and hence sweep-*time*-) imbalanced.
pub fn graded_mesh(side: usize) -> TriMesh {
    let m = lms_mesh::generators::perturbed_grid(side, side, 0.0, 0);
    let (coords, tris) = m.into_parts();
    let graded: Vec<Point2> =
        coords.into_iter().map(|p| Point2::new(p.x * p.x * p.x, p.y)).collect();
    TriMesh::new(graded, tris).unwrap()
}

/// Profile `runs` resident smoothings and keep each part's *minimum*
/// sweep time — the noise-robust estimate of its deterministic work.
pub fn profiled_sweep_ns(engine: &ResidentEngine, mesh: &TriMesh, runs: usize) -> Vec<u64> {
    let mut best: Vec<u64> = Vec::new();
    for _ in 0..runs.max(1) {
        let mut work = mesh.clone();
        let (report, _) = engine.smooth_profiled(&mut work, 2);
        let per_part = report.phase_breakdown.expect("profiled run").per_part_sweep_ns();
        if best.is_empty() {
            best = per_part;
        } else {
            for (b, ns) in best.iter_mut().zip(per_part) {
                *b = (*b).min(ns);
            }
        }
    }
    best
}

/// `rebalance`: the measured repartition closing the observability loop.
///
/// A profiled warm-up run on a deliberately time-skewed decomposition
/// (area-balanced rcbw on an x³-graded mesh) measures each part's sweep
/// time; those timings become per-vertex weights for
/// [`lms_part::repartition_measured`], and the re-split run is profiled
/// again — the per-part sweep-time spread must narrow.
pub fn rebalance(cfg: &ExpConfig) -> String {
    let side = ((cfg.scale.sqrt() * 512.0) as usize).clamp(24, 512);
    let mesh = graded_mesh(side);
    let adj = Adjacency::build(&mesh);
    let k = 8usize;
    let params = SmoothParams::paper()
        .with_smart(true)
        .with_max_iters(cfg.max_iters.clamp(3, 10))
        .with_tol(-1.0);

    // the skewed baseline: equal *area* per part => wildly unequal vertex
    // counts (and sweep times) under the x^3 grading
    let before_parts = partition_mesh(&mesh, &adj, k, PartitionMethod::RcbWeighted);
    let before_engine = ResidentEngine::new(&mesh, params.clone(), before_parts);
    let before_ns = profiled_sweep_ns(&before_engine, &mesh, 3);

    // feed the measured per-part sweep times back as weights and re-split
    let after_parts = repartition_measured(&mesh, &adj, before_engine.partition(), &before_ns);
    let after_engine = ResidentEngine::new(&mesh, params, after_parts);
    let after_ns = profiled_sweep_ns(&after_engine, &mesh, 3);

    let mut table = Table::new(
        format!("Measured repartition — x\u{b3}-graded {side}x{side} grid, {k} parts"),
        &["part", "vertices before", "sweep ms before", "vertices after", "sweep ms after"],
    );
    let count_of = |assignment: &[u32], p: u32| assignment.iter().filter(|&&q| q == p).count();
    for p in 0..k {
        table.row(vec![
            p.to_string(),
            count_of(before_engine.partition().assignment(), p as u32).to_string(),
            f(before_ns[p] as f64 / 1e6, 3),
            count_of(after_engine.partition().assignment(), p as u32).to_string(),
            f(after_ns[p] as f64 / 1e6, 3),
        ]);
    }
    if let Some(dir) = &cfg.csv_dir {
        let _ = table.write_csv(dir, "rebalance");
    }
    let spread = |ns: &[u64]| ns.iter().max().unwrap() - ns.iter().min().unwrap();
    let (sb, sa) = (spread(&before_ns), spread(&after_ns));
    let mut out = table.render();
    let _ = writeln!(
        out,
        "\nper-part sweep-time spread (max-min): {:.3} ms before -> {:.3} ms after: {}\n\
         (baseline = area-balanced rcbw, time-skewed by construction on the graded mesh; \
         weights = measured per-part sweep ns from a profiled warm-up, min of 3 runs)",
        sb as f64 / 1e6,
        sa as f64 / 1e6,
        if sa < sb { "narrowed" } else { "NOT narrowed" },
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rebalance_narrows_the_measured_spread() {
        let cfg = ExpConfig { scale: 0.01, max_iters: 3, ..Default::default() };
        let out = rebalance(&cfg);
        assert!(out.contains("Measured repartition"), "{out}");
        assert!(out.contains("narrowed"), "{out}");
        assert!(!out.contains("NOT narrowed"), "spread must narrow strictly:\n{out}");
    }

    #[test]
    fn partition_experiment_reports_all_sections() {
        let cfg = ExpConfig {
            scale: 0.002,
            mesh: Some("carabiner".into()),
            max_iters: 4,
            threads: vec![1, 2],
            ..Default::default()
        };
        let out = partition(&cfg);
        assert!(out.contains("Partition quality"));
        assert!(out.contains("rcb") && out.contains("hilbert") && out.contains("morton"));
        assert!(out.contains("Cut / interface growth"));
        assert!(out.contains("Partitioned vs colored"));
        assert!(out.contains("true"), "serial-equivalence gate must hold");
    }
}
