//! Partition experiment: decomposition quality across methods and part
//! counts, and the partitioned engine's wall clock against the colored
//! parallel engine — the text/CSV companion of `bench_partition.rs`
//! (which tracks the same comparison in `BENCH_partition.json`).

use crate::common::{time_it, ExpConfig};
use crate::table::{f, pct, Table};
use lms_mesh::Adjacency;
use lms_part::{partition_mesh, PartitionMethod};
use lms_smooth::{PartitionedEngine, SmoothEngine, SmoothParams};
use std::fmt::Write as _;

/// Decomposition quality (edge cut, interface/halo, balance) for every
/// method at several part counts, plus engine timings: partitioned vs
/// colored Gauss–Seidel at the config's small thread counts.
pub fn partition(cfg: &ExpConfig) -> String {
    let mut out = String::new();

    // --- decomposition quality over the suite --------------------------
    let mut table = Table::new(
        format!("Partition quality, scale {} (k = 8)", cfg.scale),
        &["mesh", "method", "edge cut", "interior/interface", "halo ratio", "imbalance"],
    );
    for named in cfg.meshes().iter().take(4) {
        let adj = Adjacency::build(&named.mesh);
        for method in PartitionMethod::ALL {
            let s = partition_mesh(&named.mesh, &adj, 8, method).stats();
            table.row(vec![
                named.spec.name.to_string(),
                method.name().to_string(),
                s.edge_cut.to_string(),
                f(s.interior_interface_ratio(), 1),
                pct(s.halo_ratio),
                f(s.imbalance, 3),
            ]);
        }
    }
    if let Some(dir) = &cfg.csv_dir {
        let _ = table.write_csv(dir, "partition_quality");
    }
    out.push_str(&table.render());

    // --- cut growth with k on one mesh ----------------------------------
    if let Some(named) = cfg.meshes().into_iter().next() {
        let adj = Adjacency::build(&named.mesh);
        let mut ktable = Table::new(
            format!("Cut / interface growth with k — {}", named.spec.name),
            &["k", "edge cut", "interface", "interior %", "halo ratio"],
        );
        for k in [2usize, 4, 8, 16] {
            let s = partition_mesh(&named.mesh, &adj, k, PartitionMethod::Rcb).stats();
            ktable.row(vec![
                k.to_string(),
                s.edge_cut.to_string(),
                s.interface_vertices.to_string(),
                pct(s.interior_fraction),
                pct(s.halo_ratio),
            ]);
        }
        if let Some(dir) = &cfg.csv_dir {
            let _ = ktable.write_csv(dir, "partition_k_growth");
        }
        out.push('\n');
        out.push_str(&ktable.render());
    }

    // --- engine wall clock: partitioned vs colored ----------------------
    let mut etable = Table::new(
        "Partitioned vs colored deterministic Gauss-Seidel (smart, 10 sweeps)".to_string(),
        &["mesh", "threads", "colored (ms)", "partitioned (ms)", "speedup", "serial-equal"],
    );
    let params = SmoothParams::paper().with_smart(true).with_max_iters(10).with_tol(-1.0);
    for named in cfg.meshes().iter().take(2) {
        let colored_engine = SmoothEngine::new(&named.mesh, params.clone());
        let part_engine =
            PartitionedEngine::by_method(&named.mesh, params.clone(), 8, PartitionMethod::Rcb);
        // correctness gate: partitioned == serial under the part-major order
        let mut a = named.mesh.clone();
        part_engine.smooth(&mut a, 2);
        let serial = SmoothEngine::new(&named.mesh, params.clone())
            .with_visit_order(part_engine.part_major_visit_order());
        let mut b = named.mesh.clone();
        serial.smooth(&mut b);
        let equal = a.coords() == b.coords();
        for &threads in cfg.threads.iter().filter(|&&t| t <= 4) {
            let (_, tc) = time_it(|| {
                colored_engine.smooth_parallel_colored(&mut named.mesh.clone(), threads)
            });
            let (_, tp) = time_it(|| part_engine.smooth(&mut named.mesh.clone(), threads));
            etable.row(vec![
                named.spec.name.to_string(),
                threads.to_string(),
                f(tc.as_secs_f64() * 1e3, 1),
                f(tp.as_secs_f64() * 1e3, 1),
                f(tc.as_secs_f64() / tp.as_secs_f64(), 2),
                equal.to_string(),
            ]);
        }
    }
    if let Some(dir) = &cfg.csv_dir {
        let _ = etable.write_csv(dir, "partition_engines");
    }
    out.push('\n');
    out.push_str(&etable.render());
    let _ = writeln!(
        out,
        "\nspeedup = colored / partitioned wall clock; both engines are \
         bitwise-deterministic for any thread count."
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn partition_experiment_reports_all_sections() {
        let cfg = ExpConfig {
            scale: 0.002,
            mesh: Some("carabiner".into()),
            max_iters: 4,
            threads: vec![1, 2],
            ..Default::default()
        };
        let out = partition(&cfg);
        assert!(out.contains("Partition quality"));
        assert!(out.contains("rcb") && out.contains("hilbert") && out.contains("morton"));
        assert!(out.contains("Cut / interface growth"));
        assert!(out.contains("Partitioned vs colored"));
        assert!(out.contains("true"), "serial-equivalence gate must hold");
    }
}
