//! Figures 1, 4, 5 and 6: reuse-distance profiles and access traces.

use crate::common::{first_sweep_trace, full_trace, ordered_mesh, time_it, ExpConfig};
use crate::table::{f, Table};
use lms_cache::{binned_means, ReuseDistanceAnalyzer, ReuseStats};
use lms_mesh::suite;
use lms_order::OrderingKind;
use lms_smooth::SmoothParams;
use std::fmt::Write as _;

/// Figure 1: reuse-distance profile of the first LMS iteration on the ocean
/// mesh under RANDOM / ORI / BFS (we add RDR as the punchline), with the
/// average reuse distance, the simulated L1 miss rate and the measured
/// execution time of the full smoothing run.
pub fn fig1(cfg: &ExpConfig) -> String {
    let spec = suite::find_spec(cfg.mesh.as_deref().unwrap_or("ocean")).expect("known mesh");
    let base = suite::generate(spec, cfg.scale);
    let orderings = [
        OrderingKind::Random { seed: 0 },
        OrderingKind::Original,
        OrderingKind::Bfs,
        OrderingKind::Rdr,
    ];

    let mut table = Table::new(
        format!(
            "Figure 1 — reuse distance & cache behaviour of the first LMS iteration ({} @ scale {}, {} vertices)",
            spec.name,
            cfg.scale,
            base.num_vertices()
        ),
        &["ordering", "avg reuse dist", "max reuse dist", "L1 miss rate", "exec time (ms)", "iters"],
    );
    let mut profiles: Vec<(&'static str, Vec<f64>)> = Vec::new();

    for kind in orderings {
        let m = ordered_mesh(&base, kind);
        let trace = first_sweep_trace(&m);
        let distances = ReuseDistanceAnalyzer::analyze(&trace, m.num_vertices());
        let stats = ReuseStats::from_distances(&distances);
        profiles.push((kind.name(), binned_means(&distances, 100)));

        let mut hierarchy = cfg.hierarchy();
        hierarchy.run_trace(&trace);
        let l1 = hierarchy.stats_of("L1").expect("L1 exists");

        let (report, wall) =
            time_it(|| SmoothParams::paper().with_max_iters(cfg.max_iters).smooth(&mut m.clone()));

        table.row(vec![
            kind.name().to_string(),
            f(stats.mean, 1),
            stats.max.to_string(),
            crate::table::pct(l1.miss_rate()),
            f(wall.as_secs_f64() * 1e3, 1),
            report.num_iterations().to_string(),
        ]);
    }

    if let Some(dir) = &cfg.csv_dir {
        let mut prof = Table::new("", &["bin", "random", "ori", "bfs", "rdr"]);
        for b in 0..100 {
            prof.row(
                std::iter::once(b.to_string())
                    .chain(profiles.iter().map(|(_, p)| f(p[b], 1)))
                    .collect(),
            );
        }
        let _ = prof.write_csv(dir, "fig1_profiles");
    }

    let mut out = table.render();
    let _ = writeln!(
        out,
        "\npaper shape: random ≫ ori > bfs on all three columns; RDR (our addition here)\nmust sit below BFS. Paper Fig. 1 values at full scale: 90k / 4450 / 2910 mean reuse distance."
    );
    out
}

/// Figure 4: partial node-visit traces under DFS vs BFS ordering. The
/// numbers are the storage locations touched; closer numbers = shorter
/// reuse distances.
pub fn fig4(cfg: &ExpConfig) -> String {
    let spec = suite::find_spec(cfg.mesh.as_deref().unwrap_or("carabiner")).expect("known mesh");
    let base = suite::generate(spec, cfg.scale.min(0.005)); // small: trace excerpt is for reading
    let mut out = String::new();
    let _ = writeln!(out, "## Figure 4 — partial access traces ({})", spec.name);
    for kind in [OrderingKind::Dfs, OrderingKind::Bfs] {
        let m = ordered_mesh(&base, kind);
        let trace = first_sweep_trace(&m);
        let mid = trace.len() / 2;
        let excerpt: Vec<String> =
            trace[mid..(mid + 21).min(trace.len())].iter().map(|v| v.to_string()).collect();
        let _ = writeln!(out, "\n({}) … {} …", kind.name(), excerpt.join(","));
        // span of the excerpt = spread of storage locations
        let lo = trace[mid..(mid + 21).min(trace.len())].iter().min().unwrap();
        let hi = trace[mid..(mid + 21).min(trace.len())].iter().max().unwrap();
        let _ = writeln!(out, "    window span: {} storage slots", hi - lo);
    }
    let _ =
        writeln!(out, "\npaper shape: the BFS window spans far fewer slots than the DFS window.");
    out
}

/// Figure 5: the 13-vertex worked example — the span of storage positions
/// accessed when the worst vertex and its neighbourhood are processed,
/// under DFS vs BFS numbering.
pub fn fig5(_cfg: &ExpConfig) -> String {
    let base = lms_mesh::figure5_mesh();
    let mut table = Table::new(
        "Figure 5 — access span on the 13-vertex example mesh",
        &["ordering", "read data (first vertex + neighbours)", "span"],
    );
    for kind in [OrderingKind::Dfs, OrderingKind::Bfs, OrderingKind::Rdr] {
        let m = ordered_mesh(&base, kind);
        let trace = first_sweep_trace(&m);
        let engine = lms_smooth::SmoothEngine::new(&m, SmoothParams::paper());
        let first = engine.visit_order()[0];
        let take = 1 + engine.adjacency().degree(first);
        let head = &trace[..take];
        let span = head.iter().max().unwrap() - head.iter().min().unwrap();
        table.row(vec![
            kind.name().to_string(),
            head.iter().map(|v| v.to_string()).collect::<Vec<_>>().join(","),
            span.to_string(),
        ]);
    }
    let mut out = table.render();
    out.push_str("\npaper shape: BFS span < DFS span (paper: 7 vs 10); RDR at least ties BFS.\n");
    out
}

/// Figure 6: reuse-distance profile across all iterations of a full run on
/// the carabiner mesh with the original ordering, 100 bins per iteration.
pub fn fig6(cfg: &ExpConfig) -> String {
    let spec = suite::find_spec(cfg.mesh.as_deref().unwrap_or("carabiner")).expect("known mesh");
    let base = suite::generate(spec, cfg.scale);
    let sink = full_trace(&base, cfg.max_iters);
    let distances = ReuseDistanceAnalyzer::analyze(&sink.accesses, base.num_vertices());

    let mut table = Table::new(
        format!("Figure 6 — per-iteration reuse-distance profile ({}, ORI ordering)", spec.name),
        &["iteration", "accesses", "mean dist", "max dist"],
    );
    let mut iter_means = Vec::new();
    let mut profile_rows: Vec<Vec<String>> = Vec::new();
    for it in 0..sink.num_iterations() {
        let start = if it == 0 { 0 } else { sink.iteration_ends[it - 1] };
        let end = sink.iteration_ends[it];
        let slice = &distances[start..end];
        let stats = ReuseStats::from_distances(slice);
        iter_means.push(stats.mean);
        table.row(vec![
            (it + 1).to_string(),
            (end - start).to_string(),
            f(stats.mean, 1),
            stats.max.to_string(),
        ]);
        for (b, v) in binned_means(slice, 100).into_iter().enumerate() {
            profile_rows.push(vec![(it + 1).to_string(), b.to_string(), f(v, 1)]);
        }
    }
    if let Some(dir) = &cfg.csv_dir {
        let mut prof = Table::new("", &["iteration", "bin", "mean_distance"]);
        for r in profile_rows {
            prof.row(r);
        }
        let _ = prof.write_csv(dir, "fig6_profile");
    }

    // The paper's observation: the profile barely changes across iterations.
    let mean_of_means = iter_means.iter().sum::<f64>() / iter_means.len().max(1) as f64;
    let var = iter_means.iter().map(|m| (m - mean_of_means).powi(2)).sum::<f64>()
        / iter_means.len().max(1) as f64;
    let cv = if mean_of_means > 0.0 { var.sqrt() / mean_of_means } else { 0.0 };
    let mut out = table.render();
    let _ = writeln!(
        out,
        "\ncross-iteration coefficient of variation of the mean reuse distance: {:.3}\npaper shape: profiles are nearly identical across iterations (the basis for a static a-priori ordering).",
        cv
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_cfg() -> ExpConfig {
        ExpConfig { scale: 0.002, max_iters: 4, ..Default::default() }
    }

    #[test]
    fn fig1_reports_all_orderings() {
        let out = fig1(&tiny_cfg());
        for name in ["random", "ori", "bfs", "rdr"] {
            assert!(out.contains(name), "missing {name} in:\n{out}");
        }
    }

    #[test]
    fn fig4_produces_two_traces() {
        let out = fig4(&tiny_cfg());
        assert!(out.contains("(dfs)"));
        assert!(out.contains("(bfs)"));
        assert!(out.contains("window span"));
    }

    #[test]
    fn fig5_spans_are_reported() {
        let out = fig5(&tiny_cfg());
        assert!(out.contains("dfs"));
        assert!(out.contains("span"));
    }

    #[test]
    fn fig6_segments_iterations() {
        let out = fig6(&tiny_cfg());
        assert!(out.contains("iteration"));
        assert!(out.contains("coefficient of variation"));
    }
}
