//! The distributed-backend experiment: multi-process resident smoothing
//! (forked rank processes over pipes, `lms-dist`) against the in-process
//! resident engine on the same decomposition — correctness-gated bit for
//! bit, with the coalesced-exchange traffic accounting alongside the
//! wall times.

use crate::common::{time_it, ExpConfig};
use crate::table::{f, Table};
use lms_dist::{DistResidentEngine, FtOptions};
use lms_part::{MessagePlan, PartitionMethod};
use lms_smooth::{ResidentEngine, SmoothParams};
use std::fmt::Write as _;

const PARTS: usize = 4;

/// `dist`: in-process vs multi-process resident smoothing.
pub fn dist(cfg: &ExpConfig) -> String {
    let host_cores = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
    let params =
        SmoothParams::paper().with_smart(true).with_max_iters(cfg.max_iters.min(10)).with_tol(-1.0);
    let mut table = Table::new(
        format!(
            "In-process vs multi-process resident smoothing, smart GS, {PARTS}-way rcb \
             ({host_cores}-core host)"
        ),
        &[
            "mesh",
            "resident 1t (ms)",
            "resident 2t (ms)",
            &format!("dist {PARTS} ranks (ms)"),
            "msgs/round",
            "entries/msg",
            "wire KiB",
        ],
    );
    let mut gate_ok = true;
    let mut volume_line = String::new();
    for named in cfg.meshes().iter().take(2) {
        let resident =
            ResidentEngine::by_method(&named.mesh, params.clone(), PARTS, PartitionMethod::Rcb);
        let dist_engine =
            DistResidentEngine::by_method(&named.mesh, params.clone(), PARTS, PartitionMethod::Rcb);
        // correctness gate: the process backend must reproduce the
        // in-process engine bit for bit — coordinates and report
        let (dist_mesh, report) = {
            let mut m = named.mesh.clone();
            let r = dist_engine.smooth(&mut m);
            (m, r)
        };
        {
            let mut m = named.mesh.clone();
            let local = resident.smooth(&mut m, 2);
            gate_ok &= dist_mesh.coords() == m.coords() && report == local;
        }
        let volume = report.exchange.expect("resident runs report exchange accounting");
        let plan = MessagePlan::build(resident.exchange_schedule());
        let (_, t1) = time_it(|| resident.smooth(&mut named.mesh.clone(), 1));
        let (_, t2) = time_it(|| resident.smooth(&mut named.mesh.clone(), 2));
        let (_, td) = time_it(|| dist_engine.smooth(&mut named.mesh.clone()));
        let rounds = volume.exchange_rounds.max(1);
        table.row(vec![
            named.spec.name.to_string(),
            f(t1.as_secs_f64() * 1e3, 1),
            f(t2.as_secs_f64() * 1e3, 1),
            f(td.as_secs_f64() * 1e3, 1),
            f(volume.halo_messages_sent as f64 / rounds as f64, 1),
            f(volume.halo_entries_sent as f64 / volume.halo_messages_sent.max(1) as f64, 1),
            f(volume.halo_bytes_sent as f64 / 1024.0, 1),
        ]);
        if volume_line.is_empty() {
            let _ = write!(
                volume_line,
                "{}: gathers {}, scatters {}, {} rounds, {} msgs / {} entries \
                 (plan ceiling {} pairs/round)",
                named.spec.name,
                volume.full_gathers,
                volume.full_scatters,
                volume.exchange_rounds,
                volume.halo_messages_sent,
                volume.halo_entries_sent,
                plan.num_pairs(),
            );
        }
    }
    if let Some(dir) = &cfg.csv_dir {
        let _ = table.write_csv(dir, "dist");
    }
    let mut out = table.render();
    let _ = writeln!(
        out,
        "\nmulti-process == in-process resident bitwise (coords + report): {}\n\
         exchange accounting — {volume_line}\n\
         (dist wall time includes forking {PARTS} rank processes per run; rank \
         parallelism is bounded by host_cores = {host_cores})",
        if gate_ok { "yes" } else { "NO (bug!)" }
    );

    // --- phase breakdown of one profiled distributed run ----------------
    // wire v3: rank sweep timings ride back in every Report frame, the
    // coordinator times its own routing, and the driver spans the phases
    if let Some(named) = cfg.meshes().into_iter().next() {
        let dist_engine =
            DistResidentEngine::by_method(&named.mesh, params.clone(), PARTS, PartitionMethod::Rcb);
        let mut work = named.mesh.clone();
        if let Ok((report, _, recorder)) =
            dist_engine.smooth_profiled(&mut work, &FtOptions::default())
        {
            let moved = report.moved_vertices_per_sec();
            let scored = report.scored_elements_per_sec();
            let breakdown = report.phase_breakdown.expect("profiled run attaches a breakdown");
            let _ = writeln!(
                out,
                "\nphase breakdown — {} ({PARTS} ranks, {} span events recorded):\n{}",
                named.spec.name,
                recorder.events().len(),
                breakdown.summary_table()
            );
            // scored-elements/sec is rank-local and not shipped over wire
            // v3, so the process transport reports only the moved rate
            let _ = writeln!(
                out,
                "throughput — {:.2}k moved vertices/s, scored elements/s: {}",
                moved.unwrap_or(f64::NAN) / 1e3,
                scored
                    .map(|s| format!("{:.2}M", s / 1e6))
                    .unwrap_or_else(|| "n/a (not shipped over the wire)".into()),
            );
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_cfg() -> ExpConfig {
        ExpConfig {
            scale: 0.002,
            mesh: Some("crake".into()),
            max_iters: 3,
            threads: vec![1, 2],
            ..ExpConfig::default()
        }
    }

    #[test]
    fn dist_gates_on_bitwise_equality() {
        let out = dist(&tiny_cfg());
        assert!(out.contains("dist 4 ranks"), "{out}");
        assert!(out.contains("bitwise (coords + report): yes"), "gate must hold:\n{out}");
        assert!(out.contains("phase breakdown"), "profiled section missing:\n{out}");
        assert!(out.contains("interior"), "summary table missing phases:\n{out}");
        assert!(out.contains("moved vertices/s"), "throughput line missing:\n{out}");
    }
}
