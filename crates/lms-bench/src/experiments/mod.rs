//! Experiment runners — one per table/figure of the paper (see the
//! per-experiment index in DESIGN.md §4).

pub mod dist;
pub mod extensions;
pub mod figures;
pub mod locality;
pub mod partition;
pub mod performance;
pub mod scaling;
pub mod tables;
pub mod tet;

use crate::common::ExpConfig;

/// All experiment names accepted by [`run`], in run-all order.
pub const ALL: &[&str] = &[
    "table1",
    "fig1",
    "fig4",
    "fig5",
    "fig6",
    "fig8",
    "fig9",
    "table2",
    "table3",
    "fig10",
    "fig11",
    "fig12",
    "fig13",
    "cost",
    "cost-model",
    "dynamic",
    "real-scaling",
    "opt",
    "apps",
    "zoo",
    "prefetch",
    "mrc",
    "growth",
    "policy",
    "tlb",
    "sampled",
    "writeback",
    "parrdr",
    "iter-reorder",
    "tet",
    "tet-quality",
    "tet-scaling",
    "scaling3d",
    "engines",
    "hotpath",
    "hotpath_soa",
    "kernel_soa",
    "partition",
    "rebalance",
    "scaling",
    "dist",
];

/// Run one experiment by name; `None` for an unknown name.
pub fn run(name: &str, cfg: &ExpConfig) -> Option<String> {
    Some(match name {
        "fig1" => figures::fig1(cfg),
        "fig4" => figures::fig4(cfg),
        "fig5" => figures::fig5(cfg),
        "fig6" => figures::fig6(cfg),
        "fig8" => performance::fig8(cfg),
        "fig9" => performance::fig9(cfg),
        "fig10" => scaling::fig10(cfg),
        "fig11" => scaling::fig11(cfg),
        "fig12" => scaling::fig12(cfg),
        "fig13" => scaling::fig13(cfg),
        "table1" => tables::table1(cfg),
        "table2" => tables::table2(cfg),
        "table3" => tables::table3(cfg),
        "cost" => performance::cost(cfg),
        "cost-model" => performance::cost_model(cfg),
        "dynamic" => performance::dynamic_vs_static(cfg),
        "real-scaling" => scaling::real_scaling(cfg),
        "engines" => scaling::engines(cfg),
        "hotpath" => performance::hotpath(cfg),
        "hotpath_soa" => performance::hotpath_soa(cfg),
        "kernel_soa" => performance::kernel_soa(cfg),
        "partition" => partition::partition(cfg),
        "rebalance" => partition::rebalance(cfg),
        "scaling" => scaling::thread_scaling(cfg),
        "dist" => dist::dist(cfg),
        "opt" => extensions::opt_bound(cfg),
        "apps" => extensions::apps(cfg),
        "zoo" => extensions::ordering_zoo(cfg),
        "prefetch" => extensions::prefetch(cfg),
        "mrc" => extensions::mrc(cfg),
        "growth" => extensions::growth(cfg),
        "policy" => extensions::policy(cfg),
        "tlb" => locality::tlb(cfg),
        "sampled" => locality::sampled(cfg),
        "writeback" => locality::writeback(cfg),
        "parrdr" => locality::parrdr(cfg),
        "iter-reorder" => locality::iter_reorder(cfg),
        "tet" => tet::tet(cfg),
        "tet-quality" => tet::tet_quality(cfg),
        "tet-scaling" => tet::tet_scaling(cfg),
        "scaling3d" => tet::scaling3d(cfg),
        _ => return None,
    })
}

/// Run every experiment, concatenating the reports.
pub fn run_all(cfg: &ExpConfig) -> String {
    let mut out = String::new();
    for name in ALL {
        out.push_str(&format!("\n================ {name} ================\n"));
        out.push_str(&run(name, cfg).expect("ALL entries are valid"));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unknown_experiment_is_none() {
        assert!(run("fig99", &ExpConfig::default()).is_none());
    }

    #[test]
    fn all_names_are_unique_and_nonempty() {
        let mut seen = std::collections::HashSet::new();
        for name in ALL {
            assert!(!name.is_empty());
            assert!(seen.insert(name), "duplicate experiment name {name}");
        }
        assert_eq!(ALL.len(), 41);
    }
}
