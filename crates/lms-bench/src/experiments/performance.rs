//! Figure 8 (serial execution time), Figure 9 (cache miss rates) and the
//! §5.4 reordering-cost / Equation (2) analyses.

use crate::common::{first_sweep_trace, ordered_mesh, time_it, ExpConfig};
use crate::table::{f, pct, Table};
use lms_cache::{CostModel, ReuseDistanceAnalyzer, StackDistanceModel};
use lms_order::{rdr_ordering, OrderingKind};
use lms_smooth::{SmoothEngine, SmoothParams};
use std::fmt::Write as _;

/// Figure 8: serial execution time of the full smoothing run per mesh and
/// ordering, plus the RDR speedups (paper: 1.39× vs ORI, 1.19× vs BFS).
pub fn fig8(cfg: &ExpConfig) -> String {
    let mut table = Table::new(
        format!("Figure 8 — serial execution time (ms), scale {}", cfg.scale),
        &["mesh", "ORI", "BFS", "RDR", "RDR/ORI speedup", "RDR/BFS speedup"],
    );
    let mut su_ori = Vec::new();
    let mut su_bfs = Vec::new();
    for named in cfg.meshes() {
        let mut times = Vec::new();
        for kind in OrderingKind::PAPER_TRIO {
            let m = ordered_mesh(&named.mesh, kind);
            let params = SmoothParams::paper().with_max_iters(cfg.max_iters);
            let (_, wall) = time_it(|| params.smooth(&mut m.clone()));
            times.push(wall.as_secs_f64() * 1e3);
        }
        let (ori, bfs, rdr) = (times[0], times[1], times[2]);
        su_ori.push(ori / rdr);
        su_bfs.push(bfs / rdr);
        table.row(vec![
            named.spec.name.to_string(),
            f(ori, 1),
            f(bfs, 1),
            f(rdr, 1),
            f(ori / rdr, 2),
            f(bfs / rdr, 2),
        ]);
    }
    let mean = |v: &[f64]| v.iter().sum::<f64>() / v.len().max(1) as f64;
    if let Some(dir) = &cfg.csv_dir {
        let _ = table.write_csv(dir, "fig8_serial_times");
    }
    let mut out = table.render();
    let _ = writeln!(
        out,
        "\nmean RDR speedup: {:.2}x vs ORI (paper: 1.39x), {:.2}x vs BFS (paper: 1.19x)",
        mean(&su_ori),
        mean(&su_bfs)
    );
    out
}

/// Per-mesh, per-ordering cache miss rates from the Westmere-EX simulator,
/// driven by the full-application stream (vertex gathers + quality-update
/// triangle accesses, as in the paper's PAPI measurements).
fn miss_rates_for(
    cfg: &ExpConfig,
    mesh: &lms_mesh::TriMesh,
    kind: OrderingKind,
) -> (Vec<f64>, Vec<u64>) {
    let m = ordered_mesh(mesh, kind);
    let sink = crate::common::full_trace_with_quality(&m, cfg.max_iters.min(8));
    let mut h = cfg.hierarchy_for(&m);
    h.run_trace(&sink.accesses);
    let stats = h.level_stats();
    (stats.iter().map(|s| s.miss_rate()).collect(), stats.iter().map(|s| s.misses).collect())
}

/// Figure 9: L1/L2/L3 miss rates on one core for ORI/BFS/RDR across the
/// suite (paper: RDR cuts misses by 25% / 71% / 84% vs ORI on average).
pub fn fig9(cfg: &ExpConfig) -> String {
    let mut out = String::new();
    let mut tables: Vec<Table> = (0..3)
        .map(|lvl| {
            Table::new(
                format!("Figure 9{} — L{} miss rate", ['a', 'b', 'c'][lvl], lvl + 1),
                &["mesh", "ORI", "BFS", "RDR"],
            )
        })
        .collect();
    // miss *count* reductions vs ORI and BFS, per level
    let mut reductions_ori = [Vec::new(), Vec::new(), Vec::new()];
    let mut reductions_bfs = [Vec::new(), Vec::new(), Vec::new()];

    for named in cfg.meshes() {
        let mut rates = Vec::new();
        let mut misses = Vec::new();
        for kind in OrderingKind::PAPER_TRIO {
            let (r, m) = miss_rates_for(cfg, &named.mesh, kind);
            rates.push(r);
            misses.push(m);
        }
        for lvl in 0..3 {
            tables[lvl].row(vec![
                named.spec.name.to_string(),
                pct(rates[0][lvl]),
                pct(rates[1][lvl]),
                pct(rates[2][lvl]),
            ]);
            if misses[0][lvl] > 0 {
                reductions_ori[lvl].push(1.0 - misses[2][lvl] as f64 / misses[0][lvl] as f64);
            }
            if misses[1][lvl] > 0 {
                reductions_bfs[lvl].push(1.0 - misses[2][lvl] as f64 / misses[1][lvl] as f64);
            }
        }
    }
    let mean = |v: &[f64]| v.iter().sum::<f64>() / v.len().max(1) as f64;
    for (lvl, t) in tables.iter().enumerate() {
        out.push_str(&t.render());
        let _ = writeln!(
            out,
            "mean L{} miss-count reduction: {} vs ORI, {} vs BFS\n",
            lvl + 1,
            pct(mean(&reductions_ori[lvl])),
            pct(mean(&reductions_bfs[lvl]))
        );
        if let Some(dir) = &cfg.csv_dir {
            let _ = t.write_csv(dir, &format!("fig9_l{}", lvl + 1));
        }
    }
    let _ = writeln!(
        out,
        "paper: RDR reduces misses vs ORI (resp. BFS) by 25% (6.3%) L1, 71% (51%) L2, 84% (65%) L3."
    );
    out
}

/// §5.4: the pre-computation (reordering) cost, measured against one ORI
/// sweep, plus the break-even iteration count. Paper: the RDR reordering
/// costs about one ORI iteration; worth it beyond ~4 iterations.
pub fn cost(cfg: &ExpConfig) -> String {
    let mut table = Table::new(
        "Section 5.4 — reordering cost vs smoothing iterations",
        &[
            "mesh",
            "reorder (ms)",
            "ORI iter (ms)",
            "RDR iter (ms)",
            "cost (iters)",
            "break-even iters",
        ],
    );
    for named in cfg.meshes() {
        let (perm, reorder_t) = time_it(|| rdr_ordering(&named.mesh));
        let one_iter = SmoothParams::paper().with_max_iters(1);
        let (_, t_ori) = time_it(|| one_iter.smooth(&mut named.mesh.clone()));
        let rdr_mesh = perm.apply_to_mesh(&named.mesh);
        let (_, t_rdr) = time_it(|| one_iter.smooth(&mut rdr_mesh.clone()));
        let reorder_ms = reorder_t.as_secs_f64() * 1e3;
        let ori_ms = t_ori.as_secs_f64() * 1e3;
        let rdr_ms = t_rdr.as_secs_f64() * 1e3;
        let gain = (ori_ms - rdr_ms).max(1e-9);
        table.row(vec![
            named.spec.name.to_string(),
            f(reorder_ms, 2),
            f(ori_ms, 2),
            f(rdr_ms, 2),
            f(reorder_ms / ori_ms, 2),
            f(reorder_ms / gain, 1),
        ]);
    }
    if let Some(dir) = &cfg.csv_dir {
        let _ = table.write_csv(dir, "cost_reordering");
    }
    let mut out = table.render();
    out.push_str(
        "\npaper: reordering ≈ 1 ORI iteration; pays off beyond ~4 smoothing iterations.\n",
    );
    out
}

/// Static vs dynamic reordering (Shontz & Knupp, paper §2): reorder once
/// up front vs re-reorder every couple of sweeps. Their finding — which
/// the paper builds on by choosing an a-priori static ordering — is that
/// the extra reorderings never pay for themselves.
pub fn dynamic_vs_static(cfg: &ExpConfig) -> String {
    use lms_apps::dynamic::{smooth_with_strategy, ReorderStrategy};
    const REORDER_EVERY: usize = 2;
    let mut table = Table::new(
        "Static vs dynamic reordering (Shontz & Knupp comparison)",
        &[
            "mesh",
            "static ms",
            "dynamic ms",
            "static sweeps+reorders",
            "dynamic sweeps+reorders",
            "final q delta",
            "static wins",
        ],
    );
    for named in cfg.meshes() {
        let params = SmoothParams::paper().with_max_iters(cfg.max_iters);

        let (rs, t_static) = time_it(|| {
            let mut m = named.mesh.clone();
            smooth_with_strategy(&mut m, &params, OrderingKind::Rdr, ReorderStrategy::Static)
        });
        let (rd, t_dynamic) = time_it(|| {
            let mut m = named.mesh.clone();
            smooth_with_strategy(
                &mut m,
                &params,
                OrderingKind::Rdr,
                ReorderStrategy::Dynamic { reorder_every: REORDER_EVERY },
            )
        });

        let (s, d) = (t_static.as_secs_f64() * 1e3, t_dynamic.as_secs_f64() * 1e3);
        table.row(vec![
            named.spec.name.to_string(),
            f(s, 1),
            f(d, 1),
            format!("{}+{}", rs.sweeps, rs.reorders),
            format!("{}+{}", rd.sweeps, rd.reorders),
            f(rd.final_quality - rs.final_quality, 5),
            (s < d).to_string(),
        ]);
    }
    if let Some(dir) = &cfg.csv_dir {
        let _ = table.write_csv(dir, "dynamic_vs_static");
    }
    let mut out = table.render();
    out.push_str(
        "\nShontz & Knupp (and the paper): same final quality, but the extra reorderings never pay\n\
         for themselves — static a-priori reordering wins.\n",
    );
    out
}

/// Equation (2) worked example: additional cycles caused by cache misses
/// (paper, carabiner at full scale: ORI 927k, BFS 528k, RDR 210k cycles).
pub fn cost_model(cfg: &ExpConfig) -> String {
    let spec = lms_mesh::suite::find_spec(cfg.mesh.as_deref().unwrap_or("carabiner")).unwrap();
    let base = lms_mesh::suite::generate(spec, cfg.scale);
    let costs = CostModel::westmere_ex();
    let model = StackDistanceModel::from_hierarchy(&cfg.hierarchy());

    let mut table = Table::new(
        format!("Equation (2) — extra cycles from cache misses ({})", spec.name),
        &["ordering", "L1 misses", "L2 misses", "L3 misses", "extra cycles (k)"],
    );
    for kind in OrderingKind::PAPER_TRIO {
        let m = ordered_mesh(&base, kind);
        let trace = first_sweep_trace(&m);
        let distances = ReuseDistanceAnalyzer::analyze(&trace, m.num_vertices());
        let outcome = model.apply(&distances, false);
        let cycles =
            costs.extra_cycles_from_misses(outcome.misses[0], outcome.misses[1], outcome.misses[2]);
        table.row(vec![
            kind.name().to_string(),
            outcome.misses[0].to_string(),
            outcome.misses[1].to_string(),
            outcome.misses[2].to_string(),
            f(cycles as f64 / 1e3, 1),
        ]);
    }
    let mut out = table.render();
    out.push_str("\npaper (full scale): ORI 927k, BFS 528k, RDR 210k extra cycles.\n");
    out
}

/// Serial hot-path audit: smart (quality-guarded) smoothing on the
/// incremental-quality kernel vs the full-recompute reference, with a
/// bitwise equality check on the output coordinates.
pub fn hotpath(cfg: &ExpConfig) -> String {
    let meshes = cfg.meshes();
    let mut table = Table::new(
        "Incremental-quality hot path vs full recompute (smart Gauss-Seidel)",
        &["mesh", "vertices", "incremental (ms)", "full (ms)", "speedup", "bit-identical"],
    );
    for named in meshes.iter().take(4) {
        let m = &named.mesh;
        let params = SmoothParams::paper().with_smart(true).with_max_iters(cfg.max_iters);
        let engine = SmoothEngine::new(m, params);
        let mut fast = m.clone();
        let (_, ti) = time_it(|| engine.smooth(&mut fast));
        let mut slow = m.clone();
        let (_, tf) = time_it(|| engine.smooth_full_recompute(&mut slow));
        table.row(vec![
            named.spec.name.to_string(),
            m.num_vertices().to_string(),
            f(ti.as_secs_f64() * 1e3, 1),
            f(tf.as_secs_f64() * 1e3, 1),
            f(tf.as_secs_f64() / ti.as_secs_f64(), 2),
            (fast.coords() == slow.coords()).to_string(),
        ]);
    }
    if let Some(dir) = &cfg.csv_dir {
        let _ = table.write_csv(dir, "hotpath");
    }
    table.render()
}

/// `hotpath_soa`: the lane-batched SoA scoring kernel against the pre-SoA
/// per-element scalar path on the serial smart engine. Both paths run the
/// identical scalar IEEE operation sequence per element (the batch just
/// pins four elements per lane-chunk), so the coordinates must agree bit
/// for bit — the speedup is pure layout + auto-vectorization.
pub fn hotpath_soa(cfg: &ExpConfig) -> String {
    let meshes = cfg.meshes();
    let mut table = Table::new(
        "SoA lane-batched scoring vs scalar path (smart Gauss-Seidel, serial)",
        &["mesh", "vertices", "batched (ms)", "scalar (ms)", "speedup", "bit-identical"],
    );
    for named in meshes.iter().take(4) {
        let m = &named.mesh;
        let params =
            SmoothParams::paper().with_smart(true).with_max_iters(cfg.max_iters).with_tol(-1.0);
        let batched_engine = SmoothEngine::new(m, params.clone());
        let scalar_engine = SmoothEngine::new(m, params.with_scalar_scoring(true));
        let mut fast = m.clone();
        let (_, tb) = time_it(|| batched_engine.smooth(&mut fast));
        let mut slow = m.clone();
        let (_, ts) = time_it(|| scalar_engine.smooth(&mut slow));
        table.row(vec![
            named.spec.name.to_string(),
            m.num_vertices().to_string(),
            f(tb.as_secs_f64() * 1e3, 1),
            f(ts.as_secs_f64() * 1e3, 1),
            f(ts.as_secs_f64() / tb.as_secs_f64(), 2),
            (fast.coords() == slow.coords()).to_string(),
        ]);
    }
    if let Some(dir) = &cfg.csv_dir {
        let _ = table.write_csv(dir, "hotpath_soa");
    }
    let mut out = table.render();
    out.push_str(
        "\nevery lane of the batched kernel runs the identical scalar IEEE op sequence on its\n\
         own element, so coordinates are bit-identical by construction.\n",
    );
    out
}

/// `kernel_soa`: the resident sweep kernel under profiling — lane-batched
/// vs scalar scoring on the same 4-way decomposition, with the per-part
/// sweep nanoseconds from `PhaseBreakdown` as the evidence and the
/// ns-per-moved-vertex / scored-elements-per-second throughput counters
/// every future perf PR can compare against.
pub fn kernel_soa(cfg: &ExpConfig) -> String {
    use lms_part::PartitionMethod;
    use lms_smooth::ResidentEngine;
    const PARTS: usize = 4;
    let meshes = cfg.meshes();
    let mut table = Table::new(
        format!("Resident sweep kernel: SoA batched vs scalar scoring ({PARTS}-way rcb, profiled)"),
        &[
            "mesh",
            "batched sweep (ms)",
            "scalar sweep (ms)",
            "speedup",
            "ns/moved-vertex",
            "bit-identical",
        ],
    );
    let mut throughput_line = String::new();
    for named in meshes.iter().take(3) {
        let params =
            SmoothParams::paper().with_smart(true).with_max_iters(cfg.max_iters).with_tol(-1.0);
        let batched =
            ResidentEngine::by_method(&named.mesh, params.clone(), PARTS, PartitionMethod::Rcb);
        let scalar = ResidentEngine::by_method(
            &named.mesh,
            params.with_scalar_scoring(true),
            PARTS,
            PartitionMethod::Rcb,
        );
        let mut a = named.mesh.clone();
        let (ra, _) = batched.smooth_profiled(&mut a, 1);
        let mut b = named.mesh.clone();
        let (rb, _) = scalar.smooth_profiled(&mut b, 1);
        let sweep_ns = |r: &lms_smooth::SmoothReport| -> u64 {
            r.phase_breakdown
                .as_ref()
                .map(|p| p.per_part_sweep_ns().iter().sum())
                .unwrap_or(0)
                .max(1)
        };
        let (na, nb) = (sweep_ns(&ra), sweep_ns(&rb));
        let moved: u64 = ra
            .phase_breakdown
            .as_ref()
            .map(|p| p.transport.rank_phases.iter().map(|r| r.moved).sum())
            .unwrap_or(0);
        table.row(vec![
            named.spec.name.to_string(),
            f(na as f64 / 1e6, 2),
            f(nb as f64 / 1e6, 2),
            f(nb as f64 / na as f64, 2),
            f(na as f64 / moved.max(1) as f64, 0),
            (a.coords() == b.coords() && ra.final_quality == rb.final_quality).to_string(),
        ]);
        if throughput_line.is_empty() {
            let mvs = ra.moved_vertices_per_sec().unwrap_or(f64::NAN);
            let eps = ra.scored_elements_per_sec().unwrap_or(f64::NAN);
            throughput_line = format!(
                "{}: {:.2}k moved vertices/s, {:.2}M scored elements/s (batched kernel)",
                named.spec.name,
                mvs / 1e3,
                eps / 1e6
            );
        }
    }
    if let Some(dir) = &cfg.csv_dir {
        let _ = table.write_csv(dir, "kernel_soa");
    }
    let mut out = table.render();
    let _ = writeln!(out, "\nthroughput — {throughput_line}");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_cfg() -> ExpConfig {
        ExpConfig {
            scale: 0.002,
            mesh: Some("carabiner".into()),
            max_iters: 4,
            ..Default::default()
        }
    }

    #[test]
    fn fig8_reports_speedups() {
        let out = fig8(&tiny_cfg());
        assert!(out.contains("RDR/ORI"));
        assert!(out.contains("mean RDR speedup"));
    }

    #[test]
    fn fig9_emits_three_levels() {
        let out = fig9(&tiny_cfg());
        assert!(out.contains("Figure 9a"));
        assert!(out.contains("Figure 9b"));
        assert!(out.contains("Figure 9c"));
    }

    #[test]
    fn cost_reports_break_even() {
        let out = cost(&tiny_cfg());
        assert!(out.contains("break-even"));
    }

    #[test]
    fn cost_model_orders_cycles_sanely() {
        let out = cost_model(&tiny_cfg());
        assert!(out.contains("extra cycles"));
        assert!(out.contains("rdr"));
    }

    #[test]
    fn hotpath_soa_is_bit_identical() {
        let out = hotpath_soa(&tiny_cfg());
        assert!(out.contains("batched (ms)"));
        assert!(out.contains("true"), "SoA path must be bit-identical:\n{out}");
        assert!(!out.contains("false"), "SoA path must be bit-identical:\n{out}");
    }

    #[test]
    fn kernel_soa_reports_throughput() {
        let out = kernel_soa(&tiny_cfg());
        assert!(out.contains("ns/moved-vertex"));
        assert!(out.contains("scored elements/s"));
        assert!(out.contains("true"), "batched resident run must be bit-identical:\n{out}");
        assert!(!out.contains("false"), "batched resident run must be bit-identical:\n{out}");
    }
}
