//! Experiments beyond the paper's tables and figures: the OPT bound behind
//! the §5.2.3 "quasi-optimal" claim, the §6 conjecture on other mesh
//! applications, the full ordering zoo, and the prefetcher ablation.

use crate::common::{first_sweep_trace, ms, ordered_mesh, time_it, ExpConfig};
use crate::table::{f, pct, Table};
use lms_apps::{
    opt_smooth, swap_until_stable, tangle_vertices, untangle, OptSmoothOptions, SwapOptions,
    UntangleOptions,
};
use lms_cache::{element_line_trace, NextLinePrefetcher, OptComparison};
use lms_mesh::Adjacency;
use lms_order::{compute_ordering_with, layout_stats_permuted, OrderingKind};
use std::fmt::Write as _;

/// `opt`: LRU vs Belady-MIN misses of the first-iteration line trace, per
/// mesh and ordering, at the (scaled) L2 and L3 capacities.
///
/// Quantifies §5.2.3: the paper argues RDR's surviving L2/L3 misses are
/// not reuse-related, i.e. that no replacement policy — and a fortiori no
/// further reordering — could avoid them. If that is right, RDR's LRU
/// miss count must sit essentially on its own OPT count (ratio → 1.0),
/// while ORI's LRU count must sit well above its OPT count.
pub fn opt_bound(cfg: &ExpConfig) -> String {
    let mut table = Table::new(
        "OPT bound — LRU vs Belady misses of the first iteration (line granular)",
        &["mesh", "ordering", "level", "lines", "compulsory", "LRU miss", "OPT miss", "LRU/OPT"],
    );
    let configs = cfg.hierarchy().level_configs();
    for named in cfg.meshes() {
        let layout = cfg.layout;
        let line_bytes = configs[0].line_bytes;
        for kind in OrderingKind::PAPER_TRIO {
            let m = ordered_mesh(&named.mesh, kind);
            let lines = element_line_trace(&first_sweep_trace(&m), &layout, line_bytes);
            for level in &configs[1..] {
                let c = OptComparison::measure(&lines, level.num_lines());
                table.row(vec![
                    named.spec.name.to_string(),
                    kind.name().to_string(),
                    level.name.to_string(),
                    level.num_lines().to_string(),
                    c.compulsory.to_string(),
                    c.lru_misses.to_string(),
                    c.opt_misses.to_string(),
                    f(c.lru_over_opt(), 3),
                ]);
            }
        }
    }
    if let Some(dir) = &cfg.csv_dir {
        let _ = table.write_csv(dir, "opt_bound");
    }
    let mut out = table.render();
    let _ = writeln!(
        out,
        "\npaper shape (§5.2.3): RDR's LRU/OPT ratio ≈ 1 at L2 and L3 (its misses are ones\neven an offline-optimal cache takes); ORI's ratio is far above 1."
    );
    out
}

/// `apps`: the §6 conjecture — does the RDR ordering also speed up mesh
/// untangling, edge swapping and optimization-based smoothing?
///
/// Each application runs on the same mesh under ORI / BFS / RDR layouts;
/// we report wall time plus the layout's mean neighbour span (the locality
/// proxy that explains the timing).
pub fn apps(cfg: &ExpConfig) -> String {
    let mut table = Table::new(
        "§6 conjecture — other mesh applications under the paper's orderings",
        &["mesh", "ordering", "span", "untangle ms", "swap ms", "optsmooth ms"],
    );
    for named in cfg.meshes() {
        let adj = Adjacency::build(&named.mesh);
        for kind in OrderingKind::PAPER_TRIO {
            let perm = compute_ordering_with(&named.mesh, &adj, kind);
            let span = layout_stats_permuted(&named.mesh, &adj, &perm).mean_span;
            let base = perm.apply_to_mesh(&named.mesh);

            // untangle a deterministically tangled copy
            let mut tangled = base.clone();
            tangled.orient_ccw();
            tangle_vertices(&mut tangled, 40);
            let (_, t_untangle) =
                time_it(|| untangle(&mut tangled, None, UntangleOptions::default()));

            // Delaunay swapping
            let mut to_swap = base.clone();
            let (_, t_swap) =
                time_it(|| swap_until_stable(&mut to_swap, SwapOptions::default(), None));

            // optimization smoothing (few sweeps: per-sweep cost dominates)
            let mut to_opt = base.clone();
            let opts = OptSmoothOptions { max_sweeps: 3, ..OptSmoothOptions::default() };
            let (_, t_opt) = time_it(|| opt_smooth(&mut to_opt, &opts));

            table.row(vec![
                named.spec.name.to_string(),
                kind.name().to_string(),
                f(span, 1),
                f(ms(t_untangle), 2),
                f(ms(t_swap), 2),
                f(ms(t_opt), 2),
            ]);
        }
    }
    if let Some(dir) = &cfg.csv_dir {
        let _ = table.write_csv(dir, "apps_conjecture");
    }
    let mut out = table.render();
    let _ = writeln!(
        out,
        "\nexpected shape (§6): the locality orderings (BFS, RDR) keep their advantage on\nthe other sweep-shaped applications; gaps grow with mesh scale as the working\nset falls out of cache."
    );
    out
}

/// `zoo`: every ordering the crate implements × the selected meshes —
/// layout span plus simulated L1/L2/L3 miss rates of the first iteration.
pub fn ordering_zoo(cfg: &ExpConfig) -> String {
    let mut table = Table::new(
        "Ordering zoo — mean over selected meshes, first iteration",
        &["ordering", "mean span", "L1 miss", "L2 miss", "L3 miss"],
    );
    let meshes = cfg.meshes();
    for kind in OrderingKind::ALL {
        let mut span_sum = 0.0;
        let mut miss = [0.0f64; 3];
        for named in &meshes {
            let adj = Adjacency::build(&named.mesh);
            let perm = compute_ordering_with(&named.mesh, &adj, kind);
            span_sum += layout_stats_permuted(&named.mesh, &adj, &perm).mean_span;
            let m = perm.apply_to_mesh(&named.mesh);
            let mut hier = cfg.hierarchy();
            hier.run_trace(&first_sweep_trace(&m));
            for (i, stats) in hier.level_stats().iter().enumerate() {
                miss[i] += stats.miss_rate();
            }
        }
        let n = meshes.len() as f64;
        table.row(vec![
            kind.name().to_string(),
            f(span_sum / n, 1),
            pct(miss[0] / n),
            pct(miss[1] / n),
            pct(miss[2] / n),
        ]);
    }
    if let Some(dir) = &cfg.csv_dir {
        let _ = table.write_csv(dir, "ordering_zoo");
    }
    let mut out = table.render();
    let _ = writeln!(
        out,
        "\nreading: the graph/geometry orderings (bfs, rcm, sloan, hilbert, morton, rdr)\ncluster far below random and the pure value sorts (qsort/degsort) — sorting by\nquality *without* the neighbour-chaining walk destroys locality, which is the\nablation evidence that RDR's chaining step, not its quality sort, does the\nwork. Exact within-cluster ranking wobbles at small --scale."
    );
    out
}

/// `prefetch`: do the ordering wins survive a next-line hardware
/// prefetcher? ORI/BFS/RDR × prefetch degree 0/1/4, L1 demand miss rate of
/// the first iteration.
pub fn prefetch(cfg: &ExpConfig) -> String {
    let mut table = Table::new(
        "Prefetch ablation — L1 demand miss rate, first iteration",
        &["mesh", "ordering", "degree 0", "degree 1", "degree 4"],
    );
    for named in cfg.meshes() {
        for kind in OrderingKind::PAPER_TRIO {
            let m = ordered_mesh(&named.mesh, kind);
            let trace = first_sweep_trace(&m);
            let mut cells = vec![named.spec.name.to_string(), kind.name().to_string()];
            for degree in [0usize, 1, 4] {
                let mut hier = cfg.hierarchy();
                NextLinePrefetcher { degree }.run_trace(&mut hier, &trace);
                cells.push(pct(hier.stats_of("L1").expect("L1 exists").miss_rate()));
            }
            table.row(cells);
        }
    }
    if let Some(dir) = &cfg.csv_dir {
        let _ = table.write_csv(dir, "prefetch_ablation");
    }
    let mut out = table.render();
    let _ = writeln!(
        out,
        "\nreading: prefetching shrinks every ordering's miss rate, but the ORI→BFS→RDR\nranking must survive — RDR's near-sequential line stream is in fact the\npattern next-line prefetchers are built for (§4.1's streaming intuition)."
    );
    out
}

/// `mrc`: miss-ratio curves per ordering — the whole cache-size axis from
/// one pass over the exact reuse distances (Mattson stack analysis).
///
/// The capacity where each curve reaches its cold floor tells how much
/// cache an ordering *needs*; the paper's Table 3 "max elements" analysis
/// is a two-point sample of exactly this curve.
pub fn mrc(cfg: &ExpConfig) -> String {
    use lms_cache::{pow2_capacities, MissRatioCurve, ReuseDistanceAnalyzer};
    let mut table = Table::new(
        "Miss-ratio curves — fully-associative LRU, element granular, first iteration",
        &["mesh", "ordering", "cold floor", "capacity@10%", "capacity@2x cold", "max capacity"],
    );
    for named in cfg.meshes() {
        for kind in OrderingKind::PAPER_TRIO {
            let m = ordered_mesh(&named.mesh, kind);
            let trace = first_sweep_trace(&m);
            let distances = ReuseDistanceAnalyzer::analyze(&trace, m.num_vertices());
            let curve = MissRatioCurve::from_distances(
                &distances,
                &pow2_capacities(m.num_vertices() as u64),
            );
            let fmt_cap = |c: Option<u64>| c.map(|v| v.to_string()).unwrap_or_else(|| "-".into());
            table.row(vec![
                named.spec.name.to_string(),
                kind.name().to_string(),
                pct(curve.cold_ratio()),
                fmt_cap(curve.capacity_for(0.10)),
                fmt_cap(curve.capacity_for(2.0 * curve.cold_ratio())),
                fmt_cap(curve.capacity_for(curve.cold_ratio() + 1e-12)),
            ]);
        }
    }
    if let Some(dir) = &cfg.csv_dir {
        let _ = table.write_csv(dir, "mrc");
    }
    let mut out = table.render();
    let _ = writeln!(
        out,
        "\nreading: RDR reaches its cold floor at a tiny capacity (its reuse distances\nare single digits, Table 2); ORI needs orders of magnitude more cache for the\nsame miss ratio."
    );
    out
}

/// `growth`: ordering gains vs mesh size — one suite mesh refined 0..N
/// levels, simulated L2/L3 miss rates for ORI vs RDR at each size.
pub fn growth(cfg: &ExpConfig) -> String {
    use lms_mesh::refine::refine_midpoint;
    let mut table = Table::new(
        "Growth — miss rates vs mesh size (midpoint refinement of crake)",
        &["level", "vertices", "ORI L2", "RDR L2", "ORI L3", "RDR L3"],
    );
    let spec = lms_mesh::suite::find_spec("crake").expect("crake is in the suite");
    let mut mesh = lms_mesh::suite::generate(spec, (cfg.scale * 0.25).max(0.001));
    for level in 0..3 {
        let mut rates = Vec::new(); // [ori_l2, rdr_l2, ori_l3, rdr_l3]
        for li in 1..=2 {
            for kind in [OrderingKind::Original, OrderingKind::Rdr] {
                let m = ordered_mesh(&mesh, kind);
                let mut hier = cfg.hierarchy();
                hier.run_trace(&first_sweep_trace(&m));
                rates.push((li, kind, hier.level_stats()[li].miss_rate()));
            }
        }
        table.row(vec![
            level.to_string(),
            mesh.num_vertices().to_string(),
            pct(rates[0].2),
            pct(rates[1].2),
            pct(rates[2].2),
            pct(rates[3].2),
        ]);
        mesh = refine_midpoint(&mesh);
    }
    if let Some(dir) = &cfg.csv_dir {
        let _ = table.write_csv(dir, "growth");
    }
    let mut out = table.render();
    let _ = writeln!(
        out,
        "\nreading: as refinement pushes the working set past each cache level, ORI\ndegrades first; RDR's near-streaming accesses keep its miss rates low longer\n— the size axis behind the paper's fixed-size results."
    );
    out
}

/// `policy`: is the ordering ranking an artefact of the LRU assumption?
/// ORI/BFS/RDR × {LRU, FIFO, random} replacement at the scaled L2, line
/// granular, first iteration.
pub fn policy(cfg: &ExpConfig) -> String {
    use lms_cache::{PolicyCache, ReplacementPolicy};
    let l2 = cfg.hierarchy().level_configs()[1];
    let mut table = Table::new(
        format!("Replacement-policy ablation — {} miss rate, first iteration", l2.name),
        &["mesh", "ordering", "lru", "fifo", "random"],
    );
    for named in cfg.meshes() {
        for kind in OrderingKind::PAPER_TRIO {
            let m = ordered_mesh(&named.mesh, kind);
            let lines = element_line_trace(&first_sweep_trace(&m), &cfg.layout, l2.line_bytes);
            let mut cells = vec![named.spec.name.to_string(), kind.name().to_string()];
            for pol in [
                ReplacementPolicy::Lru,
                ReplacementPolicy::Fifo,
                ReplacementPolicy::Random { seed: 1 },
            ] {
                let stats = PolicyCache::new(l2, pol).run_line_trace(&lines);
                cells.push(pct(stats.miss_rate()));
            }
            table.row(cells);
        }
    }
    if let Some(dir) = &cfg.csv_dir {
        let _ = table.write_csv(dir, "policy_ablation");
    }
    let mut out = table.render();
    let _ = writeln!(
        out,
        "\nreading: the ORI > BFS > RDR ranking must hold under every policy — the\npaper's §3.1 analysis assumes LRU, but its conclusion does not depend on it."
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_cfg() -> ExpConfig {
        ExpConfig {
            scale: 0.004,
            mesh: Some("carabiner".into()),
            max_iters: 5,
            ..ExpConfig::default()
        }
    }

    #[test]
    fn opt_bound_reports_rdr_closest_to_opt() {
        let report = opt_bound(&tiny_cfg());
        assert!(report.contains("rdr"));
        assert!(report.contains("LRU/OPT"));
    }

    #[test]
    fn apps_runs_all_three_applications() {
        let report = apps(&tiny_cfg());
        for col in ["untangle", "swap", "optsmooth"] {
            assert!(report.contains(col), "missing column {col}");
        }
    }

    #[test]
    fn zoo_lists_every_ordering() {
        let report = ordering_zoo(&tiny_cfg());
        for kind in OrderingKind::ALL {
            assert!(report.contains(kind.name()), "missing {}", kind.name());
        }
    }

    #[test]
    fn prefetch_reports_three_degrees() {
        let report = prefetch(&tiny_cfg());
        assert!(report.contains("degree 4"));
    }

    #[test]
    fn mrc_reports_cold_floor_per_ordering() {
        let report = mrc(&tiny_cfg());
        assert!(report.contains("cold floor"));
        assert!(report.contains("rdr"));
    }

    #[test]
    fn policy_reports_three_policies() {
        let report = policy(&tiny_cfg());
        assert!(report.contains("fifo") && report.contains("random"));
    }

    #[test]
    fn growth_reports_three_levels() {
        let report = growth(&tiny_cfg());
        assert!(report.contains("level"));
        assert!(report.matches('\n').count() > 5);
    }
}
