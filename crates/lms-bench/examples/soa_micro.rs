//! Bulk scoring microbench: every element of a 512x512 perturbed grid
//! scored through one lane-batched `score_batch` call vs one per-element
//! `score_soa` call, interleaved min-of-50 on identical SoA inputs.
//! The same measurement feeds the `bulk_scoring` block of
//! `BENCH_smooth.json`; this standalone binary exists for quick hand
//! runs while tuning the kernel.

use lms_mesh::quality::QualityMetric;
use lms_mesh::{generators, Adjacency, Boundary};
use lms_smooth::domain::{SmoothDomain, TriDomain};
use lms_smooth::{SoaCoords, SoaLike};
use std::time::Instant;

fn main() {
    let m = generators::perturbed_grid(512, 512, 0.35, 42);
    let adj = Adjacency::build(&m);
    let boundary = Boundary::detect(&m);
    let dom = TriDomain::new(&adj, &boundary, m.triangles(), QualityMetric::EdgeLengthRatio);
    let mut soa = SoaCoords::<2>::with_len(m.num_vertices());
    soa.gather_from(m.coords());
    let rows: Vec<[u32; 3]> = dom.elements().to_vec();
    let mut out = vec![(0.0, false); rows.len()];
    let reps = 50;

    let mut best_b = u128::MAX;
    let mut best_s = u128::MAX;
    for _ in 0..reps {
        let t = Instant::now();
        dom.score_batch(&soa, &rows, &mut out);
        best_b = best_b.min(t.elapsed().as_nanos());
        std::hint::black_box(&out);
        let t = Instant::now();
        for (slot, &row) in out.iter_mut().zip(&rows) {
            *slot = dom.score_soa(&soa, row);
        }
        best_s = best_s.min(t.elapsed().as_nanos());
        std::hint::black_box(&out);
    }
    let n = rows.len() as f64;
    println!("elements: {}", rows.len());
    println!(
        "batched: {:.2} ns/elem   scalar(score_soa): {:.2} ns/elem   speedup {:.3}",
        best_b as f64 / n,
        best_s as f64 / n,
        best_s as f64 / best_b as f64
    );
}
