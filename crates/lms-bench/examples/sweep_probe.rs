//! Ad-hoc probe: where does a resident smart sweep spend its time?
//! Prints totals (sweep ns, moved, scored elements) for the batched and
//! scalar-scoring resident engines, plus an interleaved serial-engine
//! A/B, so the scoring fraction of the sweep and the lane-batching win
//! can be estimated on the current host.
//!
//! Env knobs: `PROBE_SIDE` (grid side, default 120) and `PROBE_PARTS`
//! (resident decomposition, default 4). Built for quick hand runs while
//! tuning — the tracked numbers live in `BENCH_smooth.json` /
//! `BENCH_scaling.json`; the CI gate is `lms-tool bench-smoke`.

use lms_part::PartitionMethod;
use lms_smooth::{ResidentEngine, SmoothEngine, SmoothParams};

fn main() {
    let side: usize = std::env::var("PROBE_SIDE").ok().and_then(|s| s.parse().ok()).unwrap_or(120);
    let sweeps = 6;
    let mesh = lms_mesh::generators::perturbed_grid(side, side, 0.3, 7);
    let params = SmoothParams::paper().with_smart(true).with_max_iters(sweeps).with_tol(-1.0);
    for (name, p) in
        [("batched", params.clone()), ("scalar ", params.clone().with_scalar_scoring(true))]
    {
        let engine = ResidentEngine::by_method(
            &mesh,
            p,
            std::env::var("PROBE_PARTS").ok().and_then(|s| s.parse().ok()).unwrap_or(4),
            PartitionMethod::Rcb,
        );
        let mut best = u64::MAX;
        let mut last = None;
        for _ in 0..5 {
            let mut work = mesh.clone();
            let (report, _) = engine.smooth_profiled(&mut work, 1);
            let bd = report.phase_breakdown.clone().expect("phase breakdown");
            let ns: u64 = bd.per_part_sweep_ns().iter().sum();
            if ns < best {
                best = ns;
                last = Some((report, bd));
            }
        }
        let (report, bd) = last.unwrap();
        let moved: u64 = bd.transport.rank_phases.iter().map(|r| r.moved).sum();
        let scored = bd.transport.scored_elements;
        println!(
            "{name}: sweep {:>9} ns  moved {:>6}  scored {:>7}  iters {}  ns/scored {:.1}",
            best,
            moved,
            scored,
            report.iterations.len(),
            best as f64 / scored.max(1) as f64,
        );
    }
    // serial engine end-to-end, interleaved min-of-4
    let batched = SmoothEngine::new(&mesh, params.clone());
    let scalar = SmoothEngine::new(&mesh, params.with_scalar_scoring(true));
    let mut best_b = u64::MAX;
    let mut best_s = u64::MAX;
    for _ in 0..4 {
        for (engine, best) in [(&batched, &mut best_b), (&scalar, &mut best_s)] {
            let mut work = mesh.clone();
            let t0 = std::time::Instant::now();
            engine.smooth(&mut work);
            *best = (*best).min(t0.elapsed().as_nanos() as u64);
        }
    }
    println!(
        "serial: batched {best_b} ns  scalar {best_s} ns  ratio {:.3}",
        best_s as f64 / best_b as f64
    );
}
