//! The distributed-backend benchmark behind the perf-tracking file
//! `BENCH_dist.json`: smart (quality-guarded) resident smoothing on a
//! perturbed grid for 10 sweeps over an 8-way RCB decomposition,
//! comparing
//!
//! * the **in-process resident** engine (PR-3/PR-5 `InProcessTransport`,
//!   pool threads) at 1/2/4 threads, and
//! * the **multi-process distributed** engine (`lms-dist`: one forked
//!   rank process per part, wire frames over pipes), fork cost included.
//!
//! The distributed run is gated before timing: coordinates *and* report
//! (exchange accounting included) must match the in-process engine bit
//! for bit, and the run must hold `full_gathers == 1 && full_scatters ==
//! 1`.
//!
//! Run with `cargo bench -p lms-bench --bench bench_dist`. Set
//! `LMS_BENCH_GRID` to override the grid side (default 384). The
//! summary — median/min ms per engine, the dist-vs-resident-1t ratio,
//! the coalesced exchange-traffic counters and the host core count — is
//! written to `BENCH_dist.json` at the workspace root.

use criterion::{BenchmarkId, Criterion};
use lms_dist::{DistResidentEngine, FtOptions, TransportMode};
use lms_part::PartitionMethod;
use lms_smooth::{FtPolicy, ResidentEngine, SmoothParams};

fn grid_side() -> usize {
    std::env::var("LMS_BENCH_GRID").ok().and_then(|s| s.parse().ok()).unwrap_or(384)
}

const PARTS: usize = 8;

/// Everything the profiled (non-criterion) runs measured: the exchange
/// accounting plus one phase breakdown per drain mode.
struct Profiles {
    volume: lms_smooth::ExchangeVolume,
    overlap_on: lms_trace::PhaseBreakdown,
    overlap_off: lms_trace::PhaseBreakdown,
}

fn bench_dist(c: &mut Criterion) -> Profiles {
    let side = grid_side();
    let mesh = lms_mesh::generators::perturbed_grid(side, side, 0.35, 42);
    // fixed 10 sweeps: tol disabled so both engines do identical work
    let params = SmoothParams::paper().with_smart(true).with_max_iters(10).with_tol(-1.0);
    let resident = ResidentEngine::by_method(&mesh, params.clone(), PARTS, PartitionMethod::Rcb);
    let dist = DistResidentEngine::by_method(&mesh, params, PARTS, PartitionMethod::Rcb);

    // correctness gate before timing: the process backend must reproduce
    // the in-process resident engine bit for bit
    let mut a = mesh.clone();
    let dist_report = dist.smooth(&mut a);
    let mut b = mesh.clone();
    let local_report = resident.smooth(&mut b, 2);
    assert_eq!(a.coords(), b.coords(), "distributed run diverged from in-process resident");
    assert_eq!(dist_report, local_report, "reports diverged (exchange accounting included)");
    // and the socket rung must agree too before its timings mean anything
    let tcp = FtOptions { mode: TransportMode::TcpLoopback, ..FtOptions::default() };
    let mut t = mesh.clone();
    let tcp_report = dist.smooth_with(&mut t, &tcp);
    assert_eq!(t.coords(), b.coords(), "tcp-loopback run diverged from in-process resident");
    assert_eq!(tcp_report, local_report, "tcp-loopback report diverged");
    let volume = dist_report.exchange.expect("resident runs report exchange accounting");
    assert_eq!(volume.full_gathers, 1, "rank blocks must gather exactly once");
    assert_eq!(volume.full_scatters, 1, "one disjoint write-back at the end");

    // one profiled (wire v4) run per drain mode, outside the criterion
    // timing loops: rank sweep timings come back in the Report frames,
    // the coordinator times its own encode/decode/poll-wait — this is
    // what lets the JSON separate fork/pipe overhead from compute, and
    // the on/off pair is what proves the overlap multiplexer's poll-wait
    // cut is hiding (idle/hidden split) rather than shifted cost
    let profiled = |overlap: bool| {
        let mut work = mesh.clone();
        let (report, _, _) = dist
            .smooth_profiled(&mut work, &FtOptions { overlap, ..FtOptions::default() })
            .expect("profiled distributed run");
        assert_eq!(work.coords(), b.coords(), "profiling must be observation-only");
        report.phase_breakdown.expect("profiled run attaches a breakdown")
    };
    let breakdown_on = profiled(true);
    let breakdown_off = profiled(false);

    let mut group = c.benchmark_group("dist");
    group.sample_size(10);
    for threads in [1usize, 2, 4] {
        group.bench_with_input(
            BenchmarkId::new(format!("resident_{threads}t"), side),
            &mesh,
            |bch, m| {
                bch.iter(|| {
                    let mut work = m.clone();
                    resident.smooth(&mut work, threads)
                })
            },
        );
    }
    group.bench_with_input(BenchmarkId::new("dist_8ranks", side), &mesh, |bch, m| {
        bch.iter(|| {
            let mut work = m.clone();
            dist.smooth(&mut work)
        })
    });
    // same run with the checkpoint cadence dialed down to the mandatory
    // final boundary: isolates the wire-v2 checksum cost (which this
    // variant still pays on every frame) from the recovery-checkpoint
    // cost (which it doesn't)
    let min_ckpt = FtOptions {
        policy: FtPolicy { checkpoint_every: usize::MAX, ..FtPolicy::default() },
        ..FtOptions::default()
    };
    group.bench_with_input(BenchmarkId::new("dist_8ranks_minckpt", side), &mesh, |bch, m| {
        bch.iter(|| {
            let mut work = m.clone();
            dist.smooth_with(&mut work, &min_ckpt)
        })
    });
    // the serialized drain loop the overlap multiplexer replaced, kept
    // as FtOptions { overlap: false }: its gap to the default run is
    // the wall-clock value of compute/communication overlap (small on a
    // saturated host, where ranks timeshare the cores the coordinator
    // would hide behind — the honest headline is the poll-wait split in
    // the profiled breakdown, not this wall-clock delta)
    let no_overlap = FtOptions { overlap: false, ..FtOptions::default() };
    group.bench_with_input(BenchmarkId::new("dist_8ranks_overlap_off", side), &mesh, |bch, m| {
        bch.iter(|| {
            let mut work = m.clone();
            dist.smooth_with(&mut work, &no_overlap)
        })
    });
    // the same run over TCP loopback (PR 8's socket transport): identical
    // frames and results, but every byte now crosses the kernel's TCP
    // stack — the single-host measurement of the multi-node deployment tax
    group.bench_with_input(BenchmarkId::new("dist_8ranks_tcp", side), &mesh, |bch, m| {
        bch.iter(|| {
            let mut work = m.clone();
            dist.smooth_with(&mut work, &tcp)
        })
    });
    group.finish();
    Profiles { volume, overlap_on: breakdown_on, overlap_off: breakdown_off }
}

fn export_json(c: &Criterion, side: usize, profiles: &Profiles) {
    let volume = &profiles.volume;
    let breakdown = &profiles.overlap_on;
    let find = |needle: &str, min: bool| {
        c.summaries()
            .iter()
            .find(|s| s.id.contains(needle))
            .map(|s| if min { s.min_ns / 1e6 } else { s.median_ns / 1e6 })
            .unwrap_or(f64::NAN)
    };
    let host_cores = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
    // deterministic workloads: background load only ever adds time, so
    // the fastest-sample ratio is the noise-robust estimate (same
    // reasoning as the other BENCH files); keep the JSON valid if a
    // summary is missing
    let ratio = |a: f64, b: f64| {
        let r = a / b;
        if r.is_finite() {
            format!("{r:.3}")
        } else {
            "null".to_string()
        }
    };
    let dist_vs_res1 = ratio(find("resident_1t", true), find("dist_8ranks/", true));
    let ms = |ns: u64| ns as f64 / 1e6;
    let t = &breakdown.transport;
    let sweeps = t
        .rank_phases
        .iter()
        .map(|r| format!("{:.2}", ms(r.sweep_ns())))
        .collect::<Vec<_>>()
        .join(", ");
    let compute_ms: f64 = t.rank_phases.iter().map(|r| ms(r.sweep_ns())).sum();
    let pipe_ms = ms(t.encode_ns + t.decode_ns + t.poll_wait_ns + t.hidden_wait_ns);
    let off = &profiles.overlap_off.transport;
    let poll_cut = ms(off.poll_wait_ns) / ms(t.poll_wait_ns).max(1e-9);
    let phase_json = format!(
        "  \"phase_breakdown_ms\": {{\n    \"driver\": {{ \"gather\": {:.2}, \"interior\": {:.2}, \"color_step\": {:.2}, \"finish\": {:.2}, \"scatter\": {:.2}, \"checkpoint\": {:.2} }},\n    \"coordinator\": {{ \"frame_encode\": {:.2}, \"frame_decode\": {:.2}, \"poll_wait\": {:.2}, \"hidden_wait\": {:.2} }},\n    \"rank_sweep_compute\": [{sweeps}],\n    \"rank_sweep_compute_total\": {compute_ms:.2},\n    \"pipe_overhead_total\": {pipe_ms:.2},\n    \"note\": \"one profiled run (wire v4) with the overlap multiplexer on, not criterion-timed. rank_sweep_compute is measured inside each forked rank (interior + color + finish ns from the Report frames) — the actual compute. pipe_overhead_total = coordinator frame encode + decode + total poll(2) time: the fork/pipe transport tax. poll_wait is the genuinely-idle-at-a-dependence share; hidden_wait is poll time overlapped with released rank work — a color round issued ahead of the one being drained, or a deferred checkpoint round whose sparse replies are still outstanding. Driver spans include time blocked on ranks, so they overlap both\"\n  }},\n  \"overlap\": {{\n    \"poll_wait_ms_overlap_on\": {:.2},\n    \"hidden_wait_ms_overlap_on\": {:.2},\n    \"poll_wait_ms_overlap_off\": {:.2},\n    \"hidden_wait_ms_overlap_off\": {:.2},\n    \"idle_poll_wait_reduction\": {poll_cut:.2},\n    \"note\": \"idle_poll_wait_reduction = serialized poll_wait / overlap idle poll_wait, from one profiled run each. The serialized loop charges ALL its waiting as idle; the multiplexer reclassifies wait that overlaps released rank compute as hidden_wait, so on+hidden vs off shows the reduction is hiding, not shifted cost. The remainder is idle at a true dependence (initial gather, the first iteration's first round, report collection, the final scatter). The serialized loop's biggest idle block — the per-iteration checkpoint collection barrier — is gone outright: overlap mode defers each boundary's sparse ScatterDelta replies into the next iteration's drains (wire v4), so they arrive under waits the coordinator was paying anyway\"\n  }},\n",
        ms(breakdown.gather_ns),
        ms(breakdown.interior_ns),
        ms(breakdown.color_step_ns),
        ms(breakdown.finish_ns),
        ms(breakdown.scatter_ns),
        ms(breakdown.checkpoint_ns),
        ms(t.encode_ns),
        ms(t.decode_ns),
        ms(t.poll_wait_ns),
        ms(t.hidden_wait_ns),
        ms(t.poll_wait_ns),
        ms(t.hidden_wait_ns),
        ms(off.poll_wait_ns),
        ms(off.hidden_wait_ns),
    );
    let json = format!(
        "{{\n  \"benchmark\": \"dist\",\n  \"workload\": \"smart Gauss-Seidel, {side}x{side} perturbed grid (jitter 0.35, seed 42), 10 sweeps, {PARTS}-way rcb\",\n  \"host_cores\": {host_cores},\n  \"median_ms\": {{\n    \"resident_1_threads\": {:.2},\n    \"resident_2_threads\": {:.2},\n    \"resident_4_threads\": {:.2},\n    \"dist_{PARTS}_ranks\": {:.2},\n    \"dist_{PARTS}_ranks_min_checkpoints\": {:.2},\n    \"dist_{PARTS}_ranks_tcp_loopback\": {:.2},\n    \"dist_{PARTS}_ranks_overlap_off\": {:.2}\n  }},\n  \"min_ms\": {{\n    \"resident_1_threads\": {:.2},\n    \"resident_2_threads\": {:.2},\n    \"resident_4_threads\": {:.2},\n    \"dist_{PARTS}_ranks\": {:.2},\n    \"dist_{PARTS}_ranks_min_checkpoints\": {:.2},\n    \"dist_{PARTS}_ranks_tcp_loopback\": {:.2},\n    \"dist_{PARTS}_ranks_overlap_off\": {:.2}\n  }},\n  \"dist_speedup_vs_resident_1t\": {dist_vs_res1},\n  \"speedup_estimator\": \"min-vs-min (deterministic workload)\",\n  \"note\": \"dist times include forking {PARTS} rank processes per run plus the full fault-tolerance machinery: per-frame CRC32c checksums (since wire v2) and, in the default configuration, one checkpoint round per iteration — sparse and pipelined under overlap (wire v4 ScatterDelta frames collected during the next iteration's drains), a full scatter barrier with overlap off. The min_checkpoints variant checkpoints only the mandatory final boundary, isolating the checksum cost — its gap to the seed-era numbers is the negligible checksum overhead, while the default-vs-min_checkpoints gap is the price of per-iteration recovery points. Rank parallelism is bounded by host_cores; on a 1-core host the distributed run adds pure fork+pipe overhead over resident_1t. The tcp_loopback variant runs the identical frames over the socket transport (forked workers dialling 127.0.0.1) — its gap to the pipe run is the kernel TCP tax, the single-host proxy for multi-node deployment. The overlap_off variant runs the serialized drain loop the overlap multiplexer replaced (same frames, no eager forwarding/release) — see the overlap object for the poll-wait split that is the honest measure of what overlap buys\",\n  \"exchange_volume_per_10_sweeps\": {{\n    \"full_gathers\": {},\n    \"full_scatters\": {},\n    \"exchange_rounds\": {},\n    \"halo_entries_sent\": {},\n    \"halo_messages_sent\": {},\n    \"halo_bytes_sent\": {},\n    \"entries_per_message\": {:.1}\n  }},\n{phase_json}  \"coords_and_report_bit_identical_to_in_process\": true\n}}\n",
        find("resident_1t", false),
        find("resident_2t", false),
        find("resident_4t", false),
        find("dist_8ranks/", false),
        find("dist_8ranks_minckpt", false),
        find("dist_8ranks_tcp", false),
        find("dist_8ranks_overlap_off", false),
        find("resident_1t", true),
        find("resident_2t", true),
        find("resident_4t", true),
        find("dist_8ranks/", true),
        find("dist_8ranks_minckpt", true),
        find("dist_8ranks_tcp", true),
        find("dist_8ranks_overlap_off", true),
        volume.full_gathers,
        volume.full_scatters,
        volume.exchange_rounds,
        volume.halo_entries_sent,
        volume.halo_messages_sent,
        volume.halo_bytes_sent,
        volume.halo_entries_sent as f64 / volume.halo_messages_sent.max(1) as f64,
    );
    // workspace root (this bench runs with the crate as manifest dir)
    let root = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
    let path = root.join("BENCH_dist.json");
    std::fs::write(&path, &json).expect("write BENCH_dist.json");
    println!("\nwrote {} :\n{json}", path.display());
}

fn main() {
    let mut criterion = Criterion::new();
    let profiles = bench_dist(&mut criterion);
    export_json(&criterion, grid_side(), &profiles);
}
