//! Ablation benches for the design choices called out in DESIGN.md §5:
//! iteration policy, update scheme, quality metric, and RDR seeding.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use lms_mesh::quality::QualityMetric;
use lms_mesh::suite;
use lms_order::rdr::{rdr_ordering_opts, RdrOptions};
use lms_smooth::{IterationPolicy, SmoothParams, UpdateScheme};

fn iteration_policy(c: &mut Criterion) {
    let base = suite::generate(&suite::SUITE[2], 0.01); // dialog
    let mut group = c.benchmark_group("ablation_iteration_policy");
    group.sample_size(10);
    for (name, policy) in
        [("storage", IterationPolicy::StorageOrder), ("greedy", IterationPolicy::GreedyQuality)]
    {
        let params = SmoothParams::paper().with_policy(policy).with_max_iters(6);
        group.bench_with_input(BenchmarkId::new("policy", name), &base, |b, m| {
            b.iter(|| params.smooth(&mut m.clone()))
        });
    }
    group.finish();
}

fn update_scheme(c: &mut Criterion) {
    let base = suite::generate(&suite::SUITE[2], 0.01);
    let mut group = c.benchmark_group("ablation_update_scheme");
    group.sample_size(10);
    for (name, update) in
        [("gauss_seidel", UpdateScheme::GaussSeidel), ("jacobi", UpdateScheme::Jacobi)]
    {
        let params = SmoothParams::paper().with_update(update).with_max_iters(6);
        group.bench_with_input(BenchmarkId::new("update", name), &base, |b, m| {
            b.iter(|| params.smooth(&mut m.clone()))
        });
    }
    group.finish();
}

fn rdr_variants(c: &mut Criterion) {
    let base = suite::generate(&suite::SUITE[2], 0.01);
    let mut group = c.benchmark_group("ablation_rdr_variants");
    group.sample_size(10);
    for (name, opts) in [
        ("paper", RdrOptions::default()),
        ("single_seed", RdrOptions { global_quality_seeding: false, ..Default::default() }),
        ("minangle_metric", RdrOptions { metric: QualityMetric::MinAngle, ..Default::default() }),
    ] {
        group.bench_with_input(BenchmarkId::new("rdr", name), &base, |b, m| {
            b.iter(|| rdr_ordering_opts(m, &opts))
        });
    }
    group.finish();
}

criterion_group!(benches, iteration_policy, update_scheme, rdr_variants);
criterion_main!(benches);
